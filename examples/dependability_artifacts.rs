//! Export the design-time dependability artefacts as Graphviz DOT: the
//! UAV-loss fault tree (with its lifetime models' PoF curve), the
//! ROS-message-spoofing attack tree (quiet and under attack), and the
//! Fig. 1 ConSert network with a live evaluation highlighted.
//!
//! ```text
//! cargo run --example dependability_artifacts > artifacts.dot
//! dot -Tsvg artifacts.dot -o artifacts.svg   # (graphviz, optional)
//! ```

use sesame::conserts::catalog::{self, UavEvidence};
use sesame::safedrones::fta::{FaultTree, Node};
use sesame::safedrones::models::{BasicEventModel, TimedFaultTree};
use sesame::security::catalog as attacks;
use std::collections::HashSet;

fn main() {
    // -- the UAV-loss fault tree with handbook-style lifetime models --
    let tree = FaultTree::new(Node::or(vec![
        Node::basic("battery"),
        Node::at_least(
            2,
            vec![
                Node::basic("motor1"),
                Node::basic("motor2"),
                Node::basic("motor3"),
                Node::basic("motor4"),
                Node::basic("motor5"),
                Node::basic("motor6"),
            ],
        ),
        Node::and(vec![Node::basic("gps"), Node::basic("vision")]),
    ]))
    .expect("well-formed tree");
    println!("// ---- UAV-loss fault tree ----");
    println!("{}", sesame::safedrones::export::to_dot(&tree, "uav_loss"));

    let timed = TimedFaultTree::new(tree)
        .with_model(
            "battery",
            BasicEventModel::Weibull {
                shape: 2.2,
                scale: 9_000.0,
            },
        )
        .with_model("gps", BasicEventModel::Exponential { lambda: 2e-5 })
        .with_model("vision", BasicEventModel::Exponential { lambda: 5e-5 })
        .with_model("motor1", BasicEventModel::Exponential { lambda: 1e-5 })
        .with_model("motor2", BasicEventModel::Exponential { lambda: 1e-5 })
        .with_model("motor3", BasicEventModel::Exponential { lambda: 1e-5 })
        .with_model("motor4", BasicEventModel::Exponential { lambda: 1e-5 })
        .with_model("motor5", BasicEventModel::Exponential { lambda: 1e-5 })
        .with_model("motor6", BasicEventModel::Exponential { lambda: 1e-5 });
    println!("// PoF(t) from the design-time models:");
    for (t, p) in timed.curve(3_600.0, 6).expect("models bound to every leaf") {
        println!("//   t = {t:>6.0} s -> PoF {p:.5}");
    }

    // -- the ROS-message-spoofing attack tree, quiet and under attack --
    let spoofing = attacks::ros_message_spoofing();
    println!("\n// ---- attack tree (quiet) ----");
    println!(
        "{}",
        sesame::security::export::to_dot(&spoofing, &HashSet::new())
    );
    let mut triggered = HashSet::new();
    triggered.insert("unsigned_publisher".to_string());
    triggered.insert("waypoint_deviation".to_string());
    println!("// ---- attack tree (root reached, path highlighted) ----");
    println!(
        "{}",
        sesame::security::export::to_dot(&spoofing, &triggered)
    );

    // -- the Fig. 1 ConSert network with a live evaluation --
    let network = catalog::uav_consert_network("uav1");
    let results = network.evaluate(
        &UavEvidence {
            gps_usable: false,
            ..UavEvidence::nominal()
        }
        .to_evidence(),
    );
    println!("// ---- ConSert network (GPS lost, fulfilled guarantees green) ----");
    println!(
        "{}",
        sesame::conserts::export::to_dot(&network, Some(&results))
    );
}
