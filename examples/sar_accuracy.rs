//! The §V-B scenario: uncertainty-driven altitude adaptation.
//!
//! The fleet starts scanning from 60 m, where SafeML, DeepKnowledge and
//! SINADRA report a combined uncertainty above the 90 % threshold. The
//! adaptation policy descends the fleet to 25 m, the uncertainty settles
//! around 75 %, and detection accuracy rises to the detector's 99.8 %
//! operating point.
//!
//! ```text
//! cargo run --release --example sar_accuracy
//! ```

use sesame::core::experiments;

fn main() {
    println!("== §V-B SAR accuracy via altitude adaptation ==\n");
    let r = experiments::sar_accuracy(42);

    println!(
        "high-altitude (60 m) combined uncertainty: {:.1}%  (paper: >90%)",
        r.high_altitude_uncertainty * 100.0
    );
    println!(
        "descent commanded at {}",
        r.descent_commanded_secs
            .map(|s| format!("{s:.0} s"))
            .unwrap_or_else(|| "never".into())
    );
    println!(
        "post-descent (25 m) combined uncertainty: {:.1}%  (paper: ≈75%)",
        r.low_altitude_uncertainty * 100.0
    );
    println!(
        "detector accuracy model: {:.1}% @25 m vs {:.1}% @60 m  (paper: 99.8%)",
        r.accuracy_low * 100.0,
        r.accuracy_high * 100.0
    );
    println!(
        "empirical fleet detection accuracy: {:.1}% adaptive vs {:.1}% fixed-altitude",
        r.measured_accuracy * 100.0,
        r.baseline_accuracy * 100.0
    );

    println!("\ncombined uncertainty over the adaptive run:");
    for (t, u) in r.uncertainty_series.iter().step_by(20) {
        let bar = "#".repeat((u * 50.0) as usize);
        println!("  {t:>5.0} s  {:>5.1}%  {bar}", u * 100.0);
    }
}
