//! A guided tour of the ConSert machinery (Fig. 1) without the simulator:
//! build the per-UAV certificate network, feed it evidence snapshots, and
//! watch the navigation levels and UAV actions respond; then fold three
//! UAVs' actions through the mission-level decider.
//!
//! ```text
//! cargo run --example conserts_tour
//! ```

use sesame::conserts::catalog::{self, MissionDecision, UavAction, UavEvidence};

fn main() {
    let network = catalog::uav_consert_network("uav1");

    println!("== ConSert walk-through (Fig. 1) ==\n");
    let situations: Vec<(&str, UavEvidence)> = vec![
        ("all systems nominal", UavEvidence::nominal()),
        (
            "GPS degraded, collaborators in range",
            UavEvidence {
                gps_usable: false,
                ..UavEvidence::nominal()
            },
        ),
        (
            "spoofing attack detected",
            UavEvidence {
                no_attack: false,
                ..UavEvidence::nominal()
            },
        ),
        (
            "attack while isolated (vision only)",
            UavEvidence {
                no_attack: false,
                comm_ok: false,
                neighbors_available: false,
                ..UavEvidence::nominal()
            },
        ),
        (
            "SafeDrones reports low reliability",
            UavEvidence {
                rel_high: false,
                rel_low: true,
                ..UavEvidence::nominal()
            },
        ),
    ];

    for (label, evidence) in &situations {
        let results = network.evaluate(&evidence.to_evidence());
        let nav = results
            .get("uav1/navigation")
            .and_then(|r| r.top.clone())
            .unwrap_or_else(|| "<none>".into());
        let accuracy = catalog::certified_navigation_accuracy_m(&network, "uav1", evidence)
            .map(|m| format!("accuracy < {m} m"))
            .unwrap_or_else(|| "no certified accuracy (emergency level)".into());
        let action = catalog::evaluate_uav(&network, "uav1", evidence)
            .map(|a| a.to_string())
            .unwrap_or_else(|| "<none>".into());
        println!("{label}:");
        println!("  navigation guarantee: {nav} ({accuracy})");
        println!("  UAV action:           {action}\n");
    }

    println!("== mission-level decider (Σ over UAVs) ==\n");
    let fleets = vec![
        (
            "all three continue",
            vec![
                UavAction::ContinueCanTakeMore,
                UavAction::ContinueMission,
                UavAction::ContinueMission,
            ],
        ),
        (
            "one aborts, spare capacity exists",
            vec![
                UavAction::ContinueCanTakeMore,
                UavAction::ContinueMission,
                UavAction::EmergencyLand,
            ],
        ),
        (
            "one aborts, no spare capacity",
            vec![
                UavAction::ContinueMission,
                UavAction::ContinueMission,
                UavAction::ReturnToBase,
            ],
        ),
    ];
    for (label, actions) in fleets {
        let decision: MissionDecision = catalog::decide_mission(&actions);
        println!("{label}: {decision}");
    }
}
