//! Quickstart: run a nominal three-UAV SAR mission with the full SESAME
//! stack and print the ground-control view.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use sesame::core::platform::map_view::{render_map, MapScene};
use sesame::core::scenario::ScenarioBuilder;
use sesame::types::events::SystemEvent;

fn main() {
    // A three-UAV fleet over a 150 m × 100 m search area, SESAME enabled:
    // SafeDrones, SafeML, DeepKnowledge, SINADRA, the Security EDDI, the
    // ConSert network and collaborative localization are all live.
    let outcome = ScenarioBuilder::new(42).build().run();

    println!("== SESAME quickstart: nominal SAR mission ==");
    println!(
        "coverage completed: {:.1}% at {}",
        outcome.metrics.mission_completed_fraction * 100.0,
        outcome
            .metrics
            .mission_complete_secs
            .map(|s| format!("{s:.0} s"))
            .unwrap_or_else(|| "n/a".into()),
    );
    println!(
        "persons found: {} (fleet detection accuracy {:.1}%)",
        outcome.metrics.persons_found,
        outcome.metrics.detection_accuracy * 100.0
    );
    for (i, a) in outcome.metrics.availability.iter().enumerate() {
        println!("uav{} availability: {:.1}%", i + 1, a * 100.0);
    }

    // The Fig. 4 map pane, headless: coverage lanes per UAV, persons (o),
    // confirmed findings (*).
    println!("\ncoverage map:");
    let (width_m, height_m) = outcome.area_extent_m;
    let scene = MapScene {
        origin: outcome.area_origin,
        width_m,
        height_m,
        tracks: outcome
            .trajectories
            .iter()
            .map(|t| t.iter().map(|(_, p)| *p).collect())
            .collect(),
        persons: outcome.persons.clone(),
        findings: outcome.findings.clone(),
    };
    print!("{}", render_map(&scene, 60, 16));

    println!("\nmission event history:");
    for e in outcome.events.iter().take(30) {
        match &e.event {
            SystemEvent::TakeOff(u) => println!("  [{}] {u} took off", e.time),
            SystemEvent::PersonDetected {
                uav, confidence, ..
            } => println!(
                "  [{}] {uav} detected a person (confidence {confidence:.2})",
                e.time
            ),
            SystemEvent::MissionComplete { .. } => {
                println!("  [{}] mission complete", e.time)
            }
            SystemEvent::Landed(u, why) => println!("  [{}] {u} landed ({why})", e.time),
            _ => {}
        }
    }
}
