//! The §V-C scenario (Fig. 6 + Fig. 7): a spoofing attack on the area
//! mapping system, with and without SESAME.
//!
//! Without SESAME the falsified position feed bends the UAV's real
//! trajectory hundreds of metres off its mapping lanes. With SESAME the
//! Security EDDI reaches the attack-tree root within a tick of the first
//! forged message, ConSerts trigger collaborative localization, and the
//! two assisting UAVs guide the (now GPS-denied) victim onto a precise
//! safe-landing spot.
//!
//! ```text
//! cargo run --release --example spoofing_attack
//! ```

use sesame::core::experiments;

fn main() {
    println!("== §V-C spoofing attack (Fig. 6 / Fig. 7) ==\n");

    let f6 = experiments::fig6(42);
    println!("-- area-mapping corruption (Fig. 6) --");
    println!("attack starts at {:.0} s", f6.attack_start_secs);
    println!(
        "without SESAME: trajectory deviates up to {:.0} m from the correct lanes",
        f6.max_deviation_m
    );
    println!(
        "with SESAME: detected {} after attack start, deviation at detection {:.1} m",
        f6.detection_latency_secs
            .map(|s| format!("{s:.1} s"))
            .unwrap_or_else(|| "never".into()),
        f6.deviation_at_detection_m
    );
    println!("\ndeviation over time (unprotected run):");
    for (t, d) in f6.deviation_series.iter().step_by(30) {
        let bar = "#".repeat((d / 10.0) as usize);
        println!("  {t:>5.0} s  {d:>7.1} m  {bar}");
    }

    let f7 = experiments::fig7(42);
    println!("\n-- collaborative safe landing (Fig. 7) --");
    println!(
        "attack detected at {}; GPS denied: {}",
        f7.detected_secs
            .map(|s| format!("{s:.0} s"))
            .unwrap_or_else(|| "never".into()),
        f7.gps_denied
    );
    println!(
        "touchdown at {} with a landing miss of {}",
        f7.landed_secs
            .map(|s| format!("{s:.0} s"))
            .unwrap_or_else(|| "n/a".into()),
        f7.landing_miss_m
            .map(|m| format!("{m:.2} m"))
            .unwrap_or_else(|| "n/a".into())
    );
    println!(
        "collaborative fixes: {} with mean position error {:.2} m",
        f7.cl_error_series.len(),
        f7.mean_cl_error_m
    );
}
