//! The §V-A scenario (Fig. 5): a battery thermal-runaway fault at
//! t = 250 s, run with and without the SESAME technologies.
//!
//! With SESAME, SafeDrones tracks the probability of failure against the
//! 0.9 abort threshold and the UAV keeps flying until the mission is
//! essentially done; the baseline aborts at the first symptom and pays a
//! 60 s battery swap.
//!
//! ```text
//! cargo run --release --example battery_failure
//! ```

use sesame::core::experiments;

fn main() {
    println!("== §V-A battery-failure scenario (Fig. 5) ==\n");
    let r = experiments::fig5(42);

    println!("{:<28} {:>12} {:>12}", "", "SESAME", "baseline");
    println!(
        "{:<28} {:>11.1}% {:>11.1}%",
        "affected-UAV availability",
        r.with_sesame.affected_availability * 100.0,
        r.baseline.affected_availability * 100.0
    );
    println!(
        "{:<28} {:>11.1}% {:>11.1}%",
        "fleet-mean availability",
        r.with_sesame.mean_availability * 100.0,
        r.baseline.mean_availability * 100.0
    );
    println!(
        "{:<28} {:>10.0} s {:>10.0} s",
        "mission completion",
        r.with_sesame.completion_secs.unwrap_or(f64::NAN),
        r.baseline.completion_secs.unwrap_or(f64::NAN)
    );
    println!(
        "\ncompletion-time improvement: {:.1}% (paper: 11%)",
        r.completion_time_improvement.unwrap_or(f64::NAN) * 100.0
    );
    println!(
        "PoF crossed the 0.9 threshold at {} (fault at 250 s; paper: ≈510 s)",
        r.threshold_crossed_secs
            .map(|s| format!("{s:.0} s"))
            .unwrap_or_else(|| "never".into())
    );

    println!("\nPoF(t) of the affected UAV (SESAME run):");
    for (t, p) in r.pof_series.iter().step_by(30) {
        let bar = "#".repeat((p * 50.0) as usize);
        println!("  {t:>5.0} s  {p:>6.3}  {bar}");
    }
}
