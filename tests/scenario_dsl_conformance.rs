//! Differential conformance gate for the scenario DSL: every `.sesame`
//! port of a hand-written Rust scenario must be **bit-identical** to the
//! original, not merely similar.
//!
//! Three layers of identity, each strictly stronger:
//!
//! 1. **Description identity** — the compiled builder's full `Debug`
//!    rendering equals the hand-written builder's, across 50 seeds and
//!    every experiment leg. This pins config, fault schedules, attack
//!    blocks and deadlines field-for-field.
//! 2. **Run identity** — full simulated runs from both builders produce
//!    the same [`digest_platform`] value (series, trajectories, event
//!    log, trace and metrics all folded into one FNV digest), serial and
//!    sharded, at a shortened deadline that still crosses the Fig. 6
//!    attack onset.
//! 3. **Campaign identity** — a chaos campaign seeded from the DSL
//!    template renders byte-for-byte the same full report as one built
//!    by `ChaosCampaign::new`, across 50 seeded runs: the DSL template
//!    is a drop-in for the campaign's own base scenario.

use sesame::core::chaos::{CampaignConfig, ChaosCampaign};
use sesame::core::checkpoint::digest_platform;
use sesame::core::experiments::{fig6_scenario, FIG6_LEGS};
use sesame::core::fleet::{FleetSpec, ShardPolicy};
use sesame::core::scenario::{ScenarioBuilder, SpoofAttack};
use sesame::scenario_dsl::{CompiledScenario, Compiler};
use sesame::types::geo::Vec3;
use sesame::types::time::{SimDuration, SimTime};
use std::path::PathBuf;

fn scenario_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("scenarios")
        .join(name)
}

fn compile_fig6(sesame: bool, attack: bool) -> CompiledScenario {
    let mut scenarios = Compiler::new()
        .param("sesame", sesame)
        .param("attack", attack)
        .compile_file(scenario_path("fig6_spoofing.sesame"))
        .unwrap_or_else(|e| panic!("{}", e.render()));
    assert_eq!(scenarios.len(), 1);
    scenarios.remove(0)
}

/// Runs a scenario description to its deadline and digests the full
/// observable platform state.
fn run_digest(builder: ScenarioBuilder) -> u64 {
    let mut scenario = builder.build();
    scenario.launch();
    let mut now = scenario.platform().now();
    while !scenario.should_stop(now) {
        now = scenario.step_once();
    }
    digest_platform(scenario.platform())
}

// ---------------------------------------------------------------------
// Layer 1: description identity, 50 seeds per leg
// ---------------------------------------------------------------------

#[test]
fn fig6_dsl_builders_are_field_identical_across_50_seeds() {
    for (sesame, attack) in FIG6_LEGS {
        let compiled = compile_fig6(sesame, attack);
        for seed in 0..50u64 {
            let dsl = compiled.builder(seed);
            let hand = fig6_scenario(seed, sesame, attack);
            assert_eq!(
                format!("{dsl:?}"),
                format!("{hand:?}"),
                "leg (sesame={sesame}, attack={attack}), seed {seed}"
            );
        }
    }
}

// ---------------------------------------------------------------------
// Layer 2: run identity (serial and sharded)
// ---------------------------------------------------------------------

/// Shortened deadline for the run-identity layer: past the Fig. 6 attack
/// onset (120 s) so the spoofing dynamics are in the digest, short
/// enough to keep nine full debug-build runs affordable in tier 1.
fn run_deadline() -> SimTime {
    SimTime::from_secs(150)
}

#[test]
fn fig6_dsl_runs_are_digest_identical_to_hand_written_runs() {
    for (sesame, attack) in FIG6_LEGS {
        let compiled = compile_fig6(sesame, attack).with_deadline_clamped(run_deadline());
        for seed in [3u64, 19, 41] {
            let dsl = run_digest(compiled.builder(seed));
            let hand = run_digest(fig6_scenario(seed, sesame, attack).deadline(run_deadline()));
            assert_eq!(
                dsl, hand,
                "run digests diverged: leg (sesame={sesame}, attack={attack}), seed {seed}"
            );
        }
    }
}

/// The sharded twin of the Fig. 6 protected leg: a four-UAV fleet split
/// over two shards, written once in DSL text and once against the Rust
/// builder API.
const SHARDED_FIG6: &str = r#"
scenario "sharded_fig6" {
    world {
        area = (420.0, 300.0)
        persons = 5
    }
    fleet {
        uavs = 4
        shards = fixed(2)
    }
    mission {
        sesame = true
        deadline = 150s
    }
    attack {
        start = 120s
        uav = 0
        drift = (0.0, 4.0, 0.0)
        forge_waypoints = true
    }
}
"#;

fn sharded_fig6_hand(seed: u64) -> ScenarioBuilder {
    let mut b = ScenarioBuilder::new(seed)
        .sesame(true)
        .deadline(run_deadline())
        .spoof_attack(SpoofAttack {
            start: SimTime::from_secs(120),
            uav_index: 0,
            gps_drift: Vec3::new(0.0, 4.0, 0.0),
            forge_waypoints: true,
        });
    b.config_mut().area_width_m = 420.0;
    b.config_mut().area_height_m = 300.0;
    b.config_mut().person_count = 5;
    b.config_mut().fleet = FleetSpec::builder()
        .uavs(4)
        .shard_policy(ShardPolicy::Fixed { shards: 2 })
        .build();
    b
}

#[test]
fn sharded_dsl_scenario_matches_hand_written_builder_and_run() {
    let compiled = sesame::scenario_dsl::compile_str("sharded_fig6", SHARDED_FIG6)
        .unwrap_or_else(|e| panic!("{}", e.render()));
    for seed in 0..50u64 {
        assert_eq!(
            format!("{:?}", compiled.builder(seed)),
            format!("{:?}", sharded_fig6_hand(seed)),
            "sharded builder diverged at seed {seed}"
        );
    }
    for seed in [5u64, 29] {
        assert_eq!(
            run_digest(compiled.builder(seed)),
            run_digest(sharded_fig6_hand(seed)),
            "sharded run digest diverged at seed {seed}"
        );
    }
}

// ---------------------------------------------------------------------
// Layer 3: campaign identity, 50 seeded runs
// ---------------------------------------------------------------------

#[test]
fn chaos_campaign_from_dsl_template_renders_byte_identical() {
    let config = CampaignConfig {
        runs: 50,
        base_seed: 4000,
        deadline: SimTime::from_secs(45),
        ..CampaignConfig::default()
    };

    let mut scenarios = Compiler::new()
        .param("sesame", config.sesame)
        .param(
            "deadline",
            SimDuration::from_millis(config.deadline.as_millis()),
        )
        .compile_file(scenario_path("chaos_base.sesame"))
        .unwrap_or_else(|e| panic!("{}", e.render()));
    let template = scenarios.remove(0).template();

    let from_dsl = ChaosCampaign::with_template(config.clone(), template)
        .run()
        .render_full();
    let from_new = ChaosCampaign::new(config).run().render_full();
    assert_eq!(
        from_dsl, from_new,
        "campaign reports diverged between DSL template and ChaosCampaign::new"
    );
}
