//! Scenario variants beyond the paper's headline runs: fault-tolerant
//! airframes, degraded visibility, and replay attacks.

use sesame::core::fleet::{FleetSpec, UavProfile};
use sesame::core::orchestrator::PlatformConfig;
use sesame::core::scenario::ScenarioBuilder;
use sesame::middleware::attack::{AttackInjector, AttackKind};
use sesame::types::events::SystemEvent;
use sesame::types::time::SimTime;
use sesame::uav_sim::faults::FaultKind;

fn config(seed: u64) -> PlatformConfig {
    PlatformConfig {
        area_width_m: 200.0,
        area_height_m: 140.0,
        person_count: 4,
        seed,
        ..PlatformConfig::default()
    }
}

/// The deprecated `uav_count` builder shim produces a config identical
/// to the `FleetSpec::uniform` it forwards to.
#[test]
fn uav_count_shim_matches_uniform_fleet() {
    #[allow(deprecated)]
    let shimmed = PlatformConfig::builder().uav_count(3).build().unwrap();
    let spec = PlatformConfig::builder()
        .fleet(FleetSpec::uniform(3))
        .build()
        .unwrap();
    assert_eq!(shimmed.fleet, spec.fleet);
    assert_eq!(shimmed.fleet, FleetSpec::default());
}

/// A hexacopter fleet flies through a motor failure without losing the
/// airframe or the strip — no redistribution needed.
#[test]
fn hexa_fleet_survives_motor_failure() {
    let mut cfg = config(21);
    // The whole fleet flies hexacopter airframes tolerating one motor
    // loss — declared per-group through the FleetSpec builder.
    cfg.fleet = FleetSpec::builder()
        .group(3, UavProfile::default().motors(6, 1))
        .build();
    let outcome = ScenarioBuilder::new(21)
        .with_config(cfg)
        .fault(
            SimTime::from_secs(40),
            2,
            FaultKind::MotorFailure { motor: 0 },
        )
        .deadline(SimTime::from_secs(900))
        .build()
        .run();
    assert!(
        outcome.metrics.mission_completed_fraction > 0.99,
        "hexa fleet completes: {}",
        outcome.metrics.mission_completed_fraction
    );
    // The airframe survived: no crash event for uav3.
    assert!(!outcome.events.iter().any(
        |e| matches!(&e.event, SystemEvent::Landed(u, why) if u.index() == 3 && why == "crashed")
    ));

    // The same fault on a quad fleet kills the airframe.
    let quad = ScenarioBuilder::new(21)
        .with_config(config(21))
        .fault(
            SimTime::from_secs(40),
            2,
            FaultKind::MotorFailure { motor: 0 },
        )
        .deadline(SimTime::from_secs(900))
        .build()
        .run();
    assert!(quad.events.iter().any(
        |e| matches!(&e.event, SystemEvent::Landed(u, why) if u.index() == 3 && why == "crashed")
    ));
}

/// Poor visibility measurably hurts detection accuracy.
#[test]
fn poor_visibility_degrades_detection() {
    let clear = ScenarioBuilder::new(33)
        .with_config(config(33))
        .build()
        .run();
    let mut hazy_cfg = config(33);
    hazy_cfg.visibility = 0.4;
    let hazy = ScenarioBuilder::new(33).with_config(hazy_cfg).build().run();
    assert!(
        hazy.metrics.detection_accuracy < clear.metrics.detection_accuracy - 0.1,
        "hazy {} should trail clear {}",
        hazy.metrics.detection_accuracy,
        clear.metrics.detection_accuracy
    );
}

/// Steady wind displaces the airframes but the autopilot's GPS feedback
/// loop still completes the survey.
#[test]
fn mission_completes_in_wind() {
    let mut scenario = ScenarioBuilder::new(66)
        .with_config(config(66))
        .deadline(SimTime::from_secs(900))
        .build();
    scenario
        .platform_mut()
        .sim_mut()
        .environment_mut()
        .set_wind(5.0, 240.0);
    let outcome = scenario.run();
    assert!(
        outcome.metrics.mission_completed_fraction > 0.99,
        "completed {}",
        outcome.metrics.mission_completed_fraction
    );
}

/// Telemetry packet loss does not break the mission: the decision loop
/// degrades gracefully when a third of the telemetry stream vanishes.
#[test]
fn telemetry_loss_degrades_gracefully() {
    let mut scenario = ScenarioBuilder::new(55)
        .with_config(config(55))
        .deadline(SimTime::from_secs(900))
        .build();
    scenario
        .platform_mut()
        .bus_mut()
        .set_loss("/+/telemetry", 0.3);
    let outcome = scenario.run();
    assert!(
        outcome.metrics.mission_completed_fraction > 0.99,
        "completed {}",
        outcome.metrics.mission_completed_fraction
    );
    assert!(
        outcome.metrics.attack_detected_secs.is_none(),
        "loss is not an attack"
    );
}

/// A replay attack (recorded legitimate commands re-published later) is
/// caught by the IDS's sequence-freshness rule and reaches the replay-DoS
/// tree root.
#[test]
fn replay_attack_detected_by_sequence_freshness() {
    let mut scenario = ScenarioBuilder::new(44)
        .with_config(config(44))
        .deadline(SimTime::from_secs(400))
        .build();
    // Arm a recorder on UAV 1's command topic.
    let mut attacker = AttackInjector::arm(
        scenario.platform_mut().bus_mut(),
        AttackKind::Replay {
            pattern: "/uav1/cmd/#".into(),
        },
    );
    scenario.platform_mut().launch();
    // Let the route upload happen, record it, then replay it.
    let mut replayed = false;
    let mut detected_at = None;
    for _ in 0..3000 {
        let now = scenario.platform_mut().step();
        attacker.observe(scenario.platform_mut().bus_mut());
        if !replayed && now >= SimTime::from_secs(60) && !attacker.recorded().is_empty() {
            attacker.replay_all(scenario.platform_mut().bus_mut(), now);
            replayed = true;
        }
        if let Some(t) = scenario.platform_mut().series().attack_detected_at() {
            detected_at = Some(t);
            break;
        }
    }
    assert!(replayed, "commands must have been recorded and replayed");
    let t = detected_at.expect("replayed stale sequence numbers must be detected");
    assert!(t >= SimTime::from_secs(60));
}
