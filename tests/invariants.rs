//! Property-based invariants spanning the workspace, checked with
//! proptest: geodesy identities, fault-tree probability bounds, ConSert
//! monotonicity, distance-measure axioms and factor-algebra laws.

use proptest::prelude::*;
use sesame::conserts::engine::{evidence_from, ConsertNetwork};
use sesame::conserts::model::{Consert, Guarantee, Tree};
use sesame::safedrones::fta::{BasicEventId, FaultTree, Node};
use sesame::safeml::distance::DistanceMeasure;
use sesame::sinadra::factor::Factor;
use sesame::types::geo::GeoPoint;
use std::collections::HashMap;

fn lat() -> impl Strategy<Value = f64> {
    -60.0..60.0f64
}

fn lon() -> impl Strategy<Value = f64> {
    -179.0..179.0f64
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Haversine distance is symmetric and zero on the diagonal.
    #[test]
    fn haversine_symmetry(a_lat in lat(), a_lon in lon(), b_lat in lat(), b_lon in lon()) {
        let a = GeoPoint::new(a_lat, a_lon, 0.0);
        let b = GeoPoint::new(b_lat, b_lon, 0.0);
        let ab = a.haversine_distance_m(&b);
        let ba = b.haversine_distance_m(&a);
        prop_assert!((ab - ba).abs() < 1e-6);
        prop_assert!(a.haversine_distance_m(&a) < 1e-9);
        prop_assert!(ab >= 0.0);
    }

    /// destination() and bearing/distance round-trip.
    #[test]
    fn destination_round_trip(
        a_lat in lat(), a_lon in lon(),
        bearing in 0.0..360.0f64,
        dist in 1.0..50_000.0f64,
    ) {
        let a = GeoPoint::new(a_lat, a_lon, 0.0);
        let b = a.destination(bearing, dist);
        prop_assert!((a.haversine_distance_m(&b) - dist).abs() < 1e-3);
    }

    /// ENU conversion round-trips at mission scales.
    #[test]
    fn enu_round_trip(
        a_lat in lat(), a_lon in lon(),
        east in -3000.0..3000.0f64, north in -3000.0..3000.0f64,
        up in -100.0..100.0f64,
    ) {
        let origin = GeoPoint::new(a_lat, a_lon, 50.0);
        let p = GeoPoint::from_enu(&origin, sesame::types::geo::Enu::new(east, north, up));
        let back = p.to_enu(&origin);
        prop_assert!((back.east_m - east).abs() < 0.5);
        prop_assert!((back.north_m - north).abs() < 0.5);
        prop_assert!((back.up_m - up).abs() < 1e-9);
    }

    /// Fault-tree outputs are probabilities, monotone in every leaf.
    #[test]
    fn fault_tree_bounded_and_monotone(
        p1 in 0.0..1.0f64, p2 in 0.0..1.0f64, p3 in 0.0..1.0f64,
        bump in 0.0..0.5f64,
    ) {
        let tree = FaultTree::new(Node::or(vec![
            Node::and(vec![Node::basic("a"), Node::basic("b")]),
            Node::at_least(2, vec![Node::basic("a"), Node::basic("b"), Node::basic("c")]),
        ])).unwrap();
        let eval = |a: f64, b: f64, c: f64| {
            let mut m = HashMap::new();
            m.insert(BasicEventId::new("a"), a);
            m.insert(BasicEventId::new("b"), b);
            m.insert(BasicEventId::new("c"), c);
            tree.evaluate(&m).unwrap()
        };
        let base = eval(p1, p2, p3);
        prop_assert!((0.0..=1.0).contains(&base));
        let bumped = eval((p1 + bump).min(1.0), p2, p3);
        prop_assert!(bumped >= base - 1e-12, "monotonicity: {base} -> {bumped}");
    }

    /// Adding evidence to a (negation-free) ConSert network never removes
    /// fulfilled guarantees.
    #[test]
    fn conserts_monotone_in_evidence(extra in proptest::collection::vec(0usize..4, 0..4)) {
        let net = ConsertNetwork::new(vec![
            Consert::new("s", vec![Guarantee::new("ok", Tree::evidence("e0"))]),
            Consert::new("n", vec![
                Guarantee::new("best", Tree::And(vec![
                    Tree::demand("s", "ok"), Tree::evidence("e1"),
                ])),
                Guarantee::new("mid", Tree::Or(vec![
                    Tree::evidence("e2"), Tree::evidence("e3"),
                ])),
                Guarantee::new("fallback", Tree::Always),
            ]),
        ]).unwrap();
        let all = ["e0", "e1", "e2", "e3"];
        let small: Vec<&str> = extra.iter().map(|i| all[*i]).collect();
        let small_set = evidence_from(small.clone());
        let mut big: Vec<&str> = small;
        big.push("e0");
        let big_set = evidence_from(big);
        let r_small = net.evaluate(&small_set);
        let r_big = net.evaluate(&big_set);
        for (name, res) in &r_small {
            for g in &res.fulfilled {
                prop_assert!(
                    r_big[name].fulfilled.contains(g),
                    "guarantee {g} of {name} lost when adding evidence"
                );
            }
        }
    }

    /// Every distance measure is non-negative, symmetric, and zero on
    /// identical samples.
    #[test]
    fn distance_axioms(
        xs in proptest::collection::vec(-100.0..100.0f64, 5..40),
        shift in -50.0..50.0f64,
    ) {
        let ys: Vec<f64> = xs.iter().map(|x| x + shift).collect();
        for m in DistanceMeasure::ALL {
            let d = m.compute(&xs, &ys);
            let rev = m.compute(&ys, &xs);
            prop_assert!(d >= 0.0, "{m} negative: {d}");
            prop_assert!((d - rev).abs() < 1e-9, "{m} asymmetric");
            let self_d = m.compute(&xs, &xs);
            prop_assert!(self_d.abs() < 1e-9, "{m} self-distance {self_d}");
        }
    }

    /// KS is scale-free: rescaling both samples leaves it unchanged.
    #[test]
    fn ks_scale_invariance(
        xs in proptest::collection::vec(-10.0..10.0f64, 5..30),
        ys in proptest::collection::vec(-10.0..10.0f64, 5..30),
        scale in 0.1..100.0f64,
    ) {
        let d1 = DistanceMeasure::KolmogorovSmirnov.compute(&xs, &ys);
        let sx: Vec<f64> = xs.iter().map(|x| x * scale).collect();
        let sy: Vec<f64> = ys.iter().map(|y| y * scale).collect();
        let d2 = DistanceMeasure::KolmogorovSmirnov.compute(&sx, &sy);
        prop_assert!((d1 - d2).abs() < 1e-9);
    }

    /// Factor product preserves total mass for distributions over disjoint
    /// variables, and marginalization sums to the same total.
    #[test]
    fn factor_mass_conservation(
        a0 in 0.01..1.0f64, b0 in 0.01..1.0f64,
    ) {
        let fa = Factor::new(vec![(0, 2)], vec![a0, 1.0 - a0 * 0.5]).unwrap();
        let fb = Factor::new(vec![(1, 2)], vec![b0, 1.3 - b0]).unwrap();
        let prod = fa.product(&fb);
        let expected = fa.sum() * fb.sum();
        prop_assert!((prod.sum() - expected).abs() < 1e-9);
        let marg = prod.marginalize(0);
        prop_assert!((marg.sum() - expected).abs() < 1e-9);
    }
}
