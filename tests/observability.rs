//! Cross-crate integration of the observability layer: a fig6-like
//! attacked run must leave a structured audit trail — tampered bus
//! traffic traced by the middleware and absorbed into the platform log,
//! IDS alerts traced by the orchestrator, and the metrics registry
//! mirroring the bus counters.

use sesame::core::orchestrator::{Platform, PlatformConfig};
use sesame::middleware::attack::{AttackInjector, AttackKind};
use sesame::middleware::message::Payload;
use sesame::types::geo::GeoPoint;
use sesame::types::ids::UavId;

fn attacked_platform() -> Platform {
    let config = PlatformConfig::builder()
        .area_m(150.0, 100.0)
        .person_count(3)
        .seed(42)
        .build()
        .expect("valid config");
    let mut p = Platform::new(config);
    // A man-in-the-middle on UAV 1's command channel: every waypoint is
    // shifted, which breaks its signature — the §V-C tampering surface.
    p.bus_mut().install_tamper(
        "/uav1/cmd/#",
        Box::new(|m| {
            if let Payload::WaypointCommand { waypoint, .. } = &mut m.payload {
                waypoint.lat_deg += 0.0005;
                true
            } else {
                false
            }
        }),
    );
    p
}

#[test]
fn attacked_run_traces_tampers_and_ids_alerts() {
    let mut p = attacked_platform();
    // A spoofing adversary also forges unsigned waypoints, exercising
    // the IDS path independently of the tamper.
    let mut atk = AttackInjector::arm(
        p.bus_mut(),
        AttackKind::Spoof {
            impersonate: "node:gcs".into(),
            topic: "/uav1/cmd/waypoint".into(),
        },
    );
    p.launch();
    for i in 0..1200 {
        let now = p.step();
        // Forge one waypoint per simulated second once airborne.
        if i >= 100 && now.as_millis().is_multiple_of(1000) {
            atk.spoof_waypoint(
                p.bus_mut(),
                now,
                UavId::new(1),
                GeoPoint::new(35.06, 33.21, 30.0),
            );
        }
        let trace = p.trace();
        if trace.count_kind("message_tampered") >= 1 && trace.count_kind("ids_alert") >= 1 {
            break;
        }
    }

    let trace = p.trace();
    assert!(
        trace.count_kind("message_tampered") >= 1,
        "the MITM tamper must be traced; kinds seen: {:?}",
        trace.iter().map(|r| r.event.kind()).collect::<Vec<_>>()
    );
    assert!(
        trace.count_kind("ids_alert") >= 1,
        "the IDS must trace at least one alert; kinds seen: {:?}",
        trace.iter().map(|r| r.event.kind()).collect::<Vec<_>>()
    );

    // The registry mirrors the bus counters and counts the same alerts.
    let m = p.metrics();
    assert!(m.counter("bus.tampered") >= 1);
    assert!(m.counter("ids.alerts") >= 1);
    assert!(m.counter("platform.ticks") > 0);
    assert!(m.histogram("tick.total").is_some());
}

#[test]
fn clean_run_stays_quiet_but_still_measures() {
    let config = PlatformConfig::builder()
        .area_m(150.0, 100.0)
        .person_count(3)
        .seed(7)
        .build()
        .expect("valid config");
    let mut p = Platform::new(config);
    p.launch();
    for _ in 0..300 {
        p.step();
    }
    assert_eq!(p.trace().count_kind("message_tampered"), 0);
    assert_eq!(p.metrics().counter("bus.tampered"), 0);
    // …but the timing instrumentation runs regardless.
    assert_eq!(p.metrics().counter("platform.ticks"), 300);
    let total = p.metrics().histogram("tick.total").expect("always timed");
    assert_eq!(total.count(), 300);
}
