#![allow(clippy::field_reassign_with_default)]
//! Cross-crate integration: simulator faults → SafeDrones reliability →
//! ConSert decisions, without the full platform loop.

use sesame::conserts::catalog::{self, UavAction, UavEvidence};
use sesame::safedrones::monitor::{ReliabilityAction, SafeDronesConfig, SafeDronesMonitor};
use sesame::safedrones::ReliabilityLevel;
use sesame::types::geo::GeoPoint;
use sesame::types::time::{SimDuration, SimTime};
use sesame::uav_sim::faults::FaultKind;
use sesame::uav_sim::sim::{Simulator, UavConfig};
use sesame::uav_sim::world::World;

fn world() -> World {
    World::rectangle(GeoPoint::new(35.0, 33.0, 0.0), 300.0, 200.0, 0)
}

/// The simulator's battery fault drives the SafeDrones monitor from High
/// to Low reliability and eventually to an emergency-land recommendation.
#[test]
fn battery_fault_escalates_through_safedrones() {
    let mut sim = Simulator::new(world(), 3);
    let uav = sim.add_uav(UavConfig::default());
    sim.command_takeoff(uav, 30.0);
    sim.faults_mut().add(
        SimTime::from_secs(60),
        uav.id(),
        FaultKind::BatteryOverTemp { soc_drop: 0.4 },
    );

    let mut cfg = SafeDronesConfig::default();
    cfg.battery.activation_energy_ev = 1.0;
    cfg.battery.lambda_base = 3.0e-6;
    let mut monitor = SafeDronesMonitor::new(cfg);
    monitor.set_remaining_mission(SimDuration::from_secs(300));

    let mut level_at_50 = None;
    let mut first_low = None;
    let mut first_abort = None;
    for _ in 0..6000 {
        let now = sim.step();
        if !now.as_millis().is_multiple_of(1000) {
            continue;
        }
        let tel = sim.telemetry(uav);
        monitor.ingest(&tel);
        monitor.advance(SimDuration::from_secs(1));
        let est = monitor.estimate();
        if now == SimTime::from_secs(50) {
            level_at_50 = Some(est.level);
        }
        if est.level == ReliabilityLevel::Low && first_low.is_none() {
            first_low = Some(now);
        }
        if est.action == ReliabilityAction::EmergencyLand && first_abort.is_none() {
            first_abort = Some(now);
            break;
        }
    }
    assert_eq!(level_at_50, Some(ReliabilityLevel::High), "healthy before");
    let low = first_low.expect("reliability must degrade");
    assert!(low > SimTime::from_secs(60), "degradation after the fault");
    let abort = first_abort.expect("the 0.9 threshold must be crossed");
    assert!(abort > low, "Low precedes the abort threshold");
}

/// A motor failure on a quad is immediately fatal for the reliability
/// estimate — and the ConSert network orders the only sane action.
#[test]
fn motor_loss_on_quad_forces_emergency_land() {
    let mut sim = Simulator::new(world(), 4);
    let uav = sim.add_uav(UavConfig {
        motor_count: 6,
        tolerated_motor_failures: 1,
        ..UavConfig::default()
    });
    sim.command_takeoff(uav, 30.0);
    sim.run_until(SimTime::from_secs(20));
    sim.faults_mut().add(
        SimTime::from_secs(21),
        uav.id(),
        FaultKind::MotorFailure { motor: 0 },
    );
    sim.faults_mut().add(
        SimTime::from_secs(22),
        uav.id(),
        FaultKind::MotorFailure { motor: 1 },
    );
    sim.run_until(SimTime::from_secs(23));

    let mut cfg = SafeDronesConfig::default();
    cfg.layout = sesame::safedrones::propulsion::MotorLayout::Hexa;
    let mut monitor = SafeDronesMonitor::new(cfg);
    let tel = sim.telemetry(uav);
    assert_eq!(tel.failed_motors(), 2);
    monitor.ingest(&tel);
    let est = monitor.estimate();
    assert_eq!(est.level, ReliabilityLevel::Low);
    assert_eq!(est.action, ReliabilityAction::EmergencyLand);

    // Fold through the certificate: low reliability with intact
    // navigation = return to base; with navigation also gone = emergency.
    let network = catalog::uav_consert_network("uav1");
    let ev = UavEvidence {
        rel_high: false,
        rel_low: true,
        ..UavEvidence::nominal()
    };
    assert_eq!(
        catalog::evaluate_uav(&network, "uav1", &ev).unwrap(),
        UavAction::ReturnToBase
    );
}

/// GPS loss in the simulator degrades the fix and the navigation
/// certificate falls back to the collaborative level.
#[test]
fn gps_loss_downgrades_navigation_certificate() {
    let mut sim = Simulator::new(world(), 5);
    let uav = sim.add_uav(UavConfig::default());
    sim.command_takeoff(uav, 30.0);
    sim.run_until(SimTime::from_secs(15));
    sim.faults_mut()
        .add(SimTime::from_secs(16), uav.id(), FaultKind::GpsLoss);
    sim.run_until(SimTime::from_secs(17));
    let tel = sim.telemetry(uav);
    assert!(!tel.gps.is_usable());

    let network = catalog::uav_consert_network("uav1");
    let ev = UavEvidence {
        gps_usable: tel.gps.is_usable(),
        ..UavEvidence::nominal()
    };
    let results = network.evaluate(&ev.to_evidence());
    assert_eq!(
        results["uav1/navigation"].top.as_deref(),
        Some("collaborative_0_75m")
    );
    // Restore brings the high-performance level back.
    sim.faults_mut()
        .add(SimTime::from_secs(18), uav.id(), FaultKind::GpsRestore);
    sim.run_until(SimTime::from_secs(19));
    let tel = sim.telemetry(uav);
    assert!(tel.gps.is_usable());
}
