//! Cross-crate integration: the collaborative-localization chain from
//! vision sightings through fusion to a GPS-denied landing, driven by the
//! real simulator kinematics.

use sesame::collab_loc::agent::CollaborativeAgent;
use sesame::collab_loc::session::{CollabSession, LandingGuidance};
use sesame::types::geo::GeoPoint;
use sesame::types::telemetry::FlightMode;
use sesame::types::time::SimTime;
use sesame::uav_sim::faults::FaultKind;
use sesame::uav_sim::sim::{Simulator, UavConfig};
use sesame::uav_sim::world::World;

/// Three simulated UAVs: one loses GPS, the other two hover nearby and
/// guide it down through the session's velocity commands.
#[test]
fn gps_denied_uav_lands_on_cl_guidance() {
    let world = World::rectangle(GeoPoint::new(35.0, 33.0, 0.0), 300.0, 200.0, 0);
    let base = world.base();
    let mut sim = Simulator::new(world, 9);
    let affected = sim.add_uav(UavConfig::default());
    let helper_a = sim.add_uav(UavConfig::default());
    let helper_b = sim.add_uav(UavConfig::default());

    // Position the fleet: affected in the middle, helpers 30 m either side.
    for (h, alt) in [(affected, 30.0), (helper_a, 35.0), (helper_b, 35.0)] {
        sim.command_takeoff(h, alt);
    }
    sim.run_until(SimTime::from_secs(15));
    let center = base.destination(45.0, 60.0).with_alt(30.0);
    sim.command(
        affected,
        sesame::uav_sim::autopilot::FlightCommand::SetMission(vec![center]),
    );
    sim.command(
        helper_a,
        sesame::uav_sim::autopilot::FlightCommand::SetMission(vec![center
            .destination(90.0, 30.0)
            .with_alt(36.0)]),
    );
    sim.command(
        helper_b,
        sesame::uav_sim::autopilot::FlightCommand::SetMission(vec![center
            .destination(270.0, 30.0)
            .with_alt(36.0)]),
    );
    sim.run_until(SimTime::from_secs(60));

    // GPS denial on the affected airframe.
    sim.faults_mut()
        .add(SimTime::from_secs(61), affected.id(), FaultKind::GpsLoss);
    sim.run_until(SimTime::from_secs(62));
    assert!(!sim.telemetry(affected).gps.is_usable());

    // CL session: helpers observe, fusion + tracking smooth, guidance
    // steers through the velocity-override channel.
    let pad = sim.true_position(affected).with_alt(0.0);
    let mut session = CollabSession::new(
        vec![
            CollaborativeAgent::new("helper-a", 100),
            CollaborativeAgent::new("helper-b", 200),
        ],
        pad,
    );
    let guidance = LandingGuidance::new(pad);

    let mut landed = false;
    for _ in 0..3000 {
        let now = sim.step();
        let observers = [sim.true_position(helper_a), sim.true_position(helper_b)];
        let truth = sim.true_position(affected);
        if let Some(fix) = session.step(now, &observers, &truth) {
            let v = guidance.velocity_command(&fix.position);
            sim.command_velocity(affected, Some(v));
            if guidance.is_landed(&fix.position) {
                landed = true;
                break;
            }
        }
        if sim.mode(affected) == FlightMode::Grounded {
            landed = true;
            break;
        }
    }
    assert!(landed, "the CL-guided landing must complete");
    let miss = sim.true_position(affected).haversine_distance_m(&pad);
    assert!(miss < 8.0, "landing miss {miss} m");
    assert!(sim.true_position(affected).alt_m < 1.0);
    assert!(session.database().len() > 50, "fix database populated");
}

/// Fusion accuracy grows with the number of collaborating observers.
#[test]
fn more_collaborators_give_tighter_fixes() {
    let anchor = GeoPoint::new(35.0, 33.0, 0.0);
    let target = anchor.destination(45.0, 40.0).with_alt(30.0);
    let run = |n: usize| -> f64 {
        let agents = (0..n)
            .map(|i| CollaborativeAgent::new(format!("c{i}"), 300 + i as u64))
            .collect();
        let mut session = CollabSession::new(agents, anchor);
        let observers: Vec<GeoPoint> = (0..n)
            .map(|i| {
                anchor
                    .destination(i as f64 * 360.0 / n as f64, 25.0)
                    .with_alt(34.0)
            })
            .collect();
        let mut err = 0.0;
        let mut count = 0;
        for s in 1..=300u64 {
            if let Some(fix) = session.step(SimTime::from_millis(s * 100), &observers, &target) {
                if s > 100 {
                    err += fix.position.distance_3d_m(&target);
                    count += 1;
                }
            }
        }
        err / count.max(1) as f64
    };
    let two = run(2);
    let five = run(5);
    assert!(
        five < two,
        "five observers ({five:.2} m) must beat two ({two:.2} m)"
    );
}
