//! Tier-1 determinism conformance gate for the parallel campaign
//! executor: the same campaign swept at `--jobs 1`, `--jobs 4` and
//! `--jobs 8` must produce bit-identical per-seed outcomes and
//! identical merged aggregates. `--jobs 4` runs twice, because a
//! scheduling-order bug (reduction in completion order instead of seed
//! order) is exactly the kind of nondeterminism two runs at the same
//! worker count can catch while one cannot.

use sesame::core::chaos::{CampaignConfig, CampaignReport, ChaosCampaign};
use sesame::types::time::SimTime;
use sesame_bench::parallel;

/// Small enough to keep tier-1 affordable in debug builds (every sweep
/// is a full scenario run per seed), large enough that workers
/// genuinely interleave (mixed fault schedules, more seeds than the
/// smaller pools).
fn campaign() -> ChaosCampaign {
    ChaosCampaign::new(CampaignConfig {
        runs: 4,
        base_seed: 900,
        deadline: SimTime::from_secs(50),
        ..CampaignConfig::default()
    })
}

/// Full structural equality of two campaign reports: per-seed rows,
/// per-seed deterministic obs snapshots, merged aggregates, and the
/// rendered bytes the check.sh diff gate compares.
fn assert_reports_identical(a: &CampaignReport, b: &CampaignReport, label: &str) {
    assert_eq!(a.runs.len(), b.runs.len(), "{label}: run count");
    for (ra, rb) in a.runs.iter().zip(&b.runs) {
        assert_eq!(ra.seed, rb.seed, "{label}: seed order");
        assert_eq!(
            ra.fault_labels, rb.fault_labels,
            "{label}: seed {}",
            ra.seed
        );
        assert_eq!(
            ra.completed_fraction.to_bits(),
            rb.completed_fraction.to_bits(),
            "{label}: completion of seed {} must be bit-identical",
            ra.seed
        );
        assert_eq!(
            ra.health_transitions, rb.health_transitions,
            "{label}: seed {}",
            ra.seed
        );
        assert_eq!(
            ra.safe_fallbacks, rb.safe_fallbacks,
            "{label}: seed {}",
            ra.seed
        );
        assert_eq!(
            ra.command_retries, rb.command_retries,
            "{label}: seed {}",
            ra.seed
        );
        assert_eq!(ra.violations, rb.violations, "{label}: seed {}", ra.seed);
        assert_eq!(
            ra.obs, rb.obs,
            "{label}: deterministic obs snapshot of seed {}",
            ra.seed
        );
    }
    assert_eq!(a.merged_obs(), b.merged_obs(), "{label}: merged aggregates");
    assert_eq!(a.render_full(), b.render_full(), "{label}: rendered bytes");
}

#[test]
fn campaign_is_bit_identical_across_worker_counts() {
    let campaign = campaign();
    // jobs=1 takes the executor's inline path — the serial reference
    // (`ChaosCampaign::run` is the same per-seed computation reduced
    // the same way; the cheap equivalence is pinned in the test below).
    let jobs1 = parallel::run_campaign(&campaign, 1);
    let jobs4 = parallel::run_campaign(&campaign, 4);
    let jobs4_again = parallel::run_campaign(&campaign, 4);
    let jobs8 = parallel::run_campaign(&campaign, 8);

    assert_reports_identical(&jobs1, &jobs4, "jobs=1 vs jobs=4");
    assert_reports_identical(&jobs4, &jobs4_again, "jobs=4 vs jobs=4 rerun");
    assert_reports_identical(&jobs1, &jobs8, "jobs=1 vs jobs=8");
}

#[test]
fn parallel_matches_serial_and_is_substantive() {
    // The executor must agree with the plain serial runner, and — to
    // guard against the degenerate way to "pass" a determinism gate —
    // the reports must actually contain ran scenarios, not be
    // trivially-identical empty shells.
    let campaign = campaign();
    let serial = campaign.run();
    let report = parallel::run_campaign(&campaign, 2);
    assert_reports_identical(&serial, &report, "ChaosCampaign::run vs jobs=2");
    assert_eq!(report.runs.len(), 4);
    let merged = report.merged_obs();
    assert!(merged.counter("platform.ticks") > 0, "scenarios really ran");
    assert!(
        merged
            .histograms
            .keys()
            .all(|k| !k.starts_with("tick.phase.")),
        "wall-clock timings must not leak into the deterministic aggregate"
    );
    for run in &report.runs {
        assert!(
            run.obs.counter("platform.ticks") > 0,
            "seed {} ticked",
            run.seed
        );
    }
}

#[test]
fn generic_executor_reduces_seed_keyed() {
    // The executor itself (not just the campaign wrapper) must reduce
    // identically: same seeds, different worker counts, same BTreeMap.
    let seeds: Vec<u64> = (0..32).map(|k| 1000 + k * 7).collect();
    let f = |s: u64| s.wrapping_mul(0x9E37_79B9_7F4A_7C15).rotate_left(17);
    let serial = parallel::run_seeds(1, &seeds, f);
    for jobs in [2, 4, 8] {
        assert_eq!(parallel::run_seeds(jobs, &seeds, f), serial, "jobs={jobs}");
    }
}
