#![allow(clippy::field_reassign_with_default)]
//! End-to-end platform scenarios (small areas so they run fast in debug).

use sesame::core::orchestrator::PlatformConfig;
use sesame::core::scenario::{ScenarioBuilder, SpoofAttack};
use sesame::types::events::SystemEvent;
use sesame::types::geo::Vec3;
use sesame::types::time::SimTime;
use sesame::uav_sim::faults::FaultKind;

fn small_config(seed: u64, sesame: bool) -> PlatformConfig {
    PlatformConfig {
        sesame_enabled: sesame,
        area_width_m: 150.0,
        area_height_m: 100.0,
        person_count: 3,
        seed,
        ..PlatformConfig::default()
    }
}

#[test]
fn sesame_and_baseline_both_complete_nominal_missions() {
    for sesame in [true, false] {
        let outcome = ScenarioBuilder::new(5)
            .with_config(small_config(5, sesame))
            .build()
            .run();
        assert!(
            outcome.metrics.mission_completed_fraction > 0.99,
            "sesame={sesame}: completed {}",
            outcome.metrics.mission_completed_fraction
        );
        assert!(outcome.metrics.persons_found > 0, "sesame={sesame}");
    }
}

fn mid_config(seed: u64, sesame: bool) -> PlatformConfig {
    PlatformConfig {
        area_width_m: 240.0,
        area_height_m: 160.0,
        ..small_config(seed, sesame)
    }
}

#[test]
fn spoofed_run_without_sesame_corrupts_coverage() {
    let clean = ScenarioBuilder::new(8)
        .with_config(mid_config(8, false))
        .build()
        .run();
    let attacked = ScenarioBuilder::new(8)
        .with_config(mid_config(8, false))
        .spoof_attack(SpoofAttack {
            start: SimTime::from_secs(40),
            uav_index: 0,
            gps_drift: Vec3::new(0.0, 4.0, 0.0),
            forge_waypoints: false,
        })
        .deadline(SimTime::from_secs(600))
        .build()
        .run();
    // Attack is silent (no SESAME): nothing detected, but the true
    // trajectory diverges from the clean run's.
    assert!(attacked.metrics.attack_detected_secs.is_none());
    let max_dev = clean.trajectories[0]
        .iter()
        .filter_map(|(t, p)| {
            attacked.trajectories[0]
                .iter()
                .find(|(ta, _)| (ta - t).abs() < 0.5)
                .map(|(_, pa)| p.haversine_distance_m(pa))
        })
        .fold(0.0, f64::max);
    assert!(max_dev > 30.0, "deviation {max_dev} m");
}

#[test]
fn spoofed_run_with_sesame_detects_and_safely_lands() {
    let outcome = ScenarioBuilder::new(8)
        .with_config(mid_config(8, true))
        .spoof_attack(SpoofAttack {
            start: SimTime::from_secs(40),
            uav_index: 0,
            gps_drift: Vec3::new(0.0, 4.0, 0.0),
            forge_waypoints: true,
        })
        .deadline(SimTime::from_secs(600))
        .build()
        .run();
    let detected = outcome
        .metrics
        .attack_detected_secs
        .expect("the Security EDDI must detect the attack");
    assert!((40.0..70.0).contains(&detected), "detected at {detected}");
    let landing = outcome.metrics.cl_landing.expect("CL landing must happen");
    assert!(landing.miss_m < 10.0, "landing miss {}", landing.miss_m);
    // The CL fixes and the GPS-denial must both be on record.
    assert!(outcome
        .events
        .iter()
        .any(|e| matches!(e.event, SystemEvent::CollabFix { .. })));
    assert!(outcome.events.iter().any(
        |e| matches!(&e.event, SystemEvent::FaultInjected { fault, .. } if fault == "gps_loss")
    ));
}

#[test]
fn lost_uav_triggers_task_redistribution_under_sesame() {
    // UAV 3 loses a motor mid-survey (fatal for a quad); the decider hands
    // its unfinished strip to a capable teammate.
    let outcome = ScenarioBuilder::new(13)
        .with_config(mid_config(13, true))
        .fault(
            SimTime::from_secs(40),
            2,
            FaultKind::MotorFailure { motor: 0 },
        )
        .deadline(SimTime::from_secs(900))
        .build()
        .run();
    let reallocated = outcome
        .events
        .iter()
        .any(|e| matches!(e.event, SystemEvent::TaskReallocated { .. }));
    assert!(reallocated, "the decider must redistribute the strip");
    assert!(
        outcome.metrics.mission_completed_fraction > 0.95,
        "remaining UAVs must finish the area: {}",
        outcome.metrics.mission_completed_fraction
    );
}

#[test]
fn coengineering_verdict_tracks_the_attack() {
    use sesame::core::coengineering::DependabilityVerdict;
    let mut scenario = ScenarioBuilder::new(8)
        .with_config(mid_config(8, true))
        .spoof_attack(SpoofAttack {
            start: SimTime::from_secs(40),
            uav_index: 0,
            gps_drift: Vec3::new(0.0, 4.0, 0.0),
            forge_waypoints: false,
        })
        .deadline(SimTime::from_secs(600))
        .build();
    scenario.platform_mut().launch();
    // Before the attack: dependable, full navigation accuracy certified.
    for _ in 0..300 {
        scenario.platform_mut().step();
    }
    let before = scenario
        .platform_mut()
        .dependability_report(0)
        .expect("SESAME on");
    assert_eq!(before.verdict, DependabilityVerdict::Dependable);
    assert_eq!(
        scenario.platform_mut().certified_nav_accuracy_m(0),
        Some(0.5)
    );
    // Step through the attack until detection.
    for _ in 0..3000 {
        scenario.platform_mut().step();
        if scenario
            .platform_mut()
            .series()
            .attack_detected_at()
            .is_some()
        {
            break;
        }
    }
    scenario.platform_mut().step();
    let after = scenario
        .platform_mut()
        .dependability_report(0)
        .expect("SESAME on");
    assert!(
        after.verdict >= DependabilityVerdict::Compromised,
        "verdict after detection: {}",
        after.verdict
    );
    assert!(!after.interactions.is_empty());
}

#[test]
fn gcs_snapshots_render_throughout_the_run() {
    let mut scenario = ScenarioBuilder::new(3)
        .with_config(small_config(3, true))
        .build();
    scenario.platform_mut().launch();
    for _ in 0..600 {
        scenario.platform_mut().step();
    }
    let gcs = scenario.platform_mut().gcs().log().to_vec();
    assert!(gcs.len() >= 10, "one snapshot per 5 s");
    let text = gcs.last().unwrap().render();
    assert!(text.contains("uav1"));
    assert!(text.contains("complete"));
}
