//! Checkpoint / recovery conformance: periodic copy-on-write checkpoints
//! must cost nothing observable, and `Checkpoint::recover` must rebuild
//! a run bit-for-bit — same series bits, trajectories, event log and
//! (checkpoint-counter-free) metrics as a run that was never
//! interrupted. Fault schedules ride along: a checkpoint captured while
//! a UAV is quarantined mid-panic-window must recover too.

use sesame::core::checkpoint::RecoverError;
use sesame::core::containment::ComputeFaultKind;
use sesame::core::scenario::{ScenarioBuilder, ScenarioOutcome};
use sesame::middleware::chaos::CommFaultKind;
use sesame::obs::MetricsSnapshot;
use sesame::types::ids::UavId;
use sesame::types::time::{SimDuration, SimTime};

/// A scenario with both fault planes live: a link blackout and an EDDI
/// panic window, so checkpoints span supervision and containment state.
fn faulted_scenario(seed: u64) -> ScenarioBuilder {
    ScenarioBuilder::new(seed)
        .comm_fault(
            SimTime::from_secs(20),
            SimDuration::from_secs(8),
            CommFaultKind::LinkBlackout { uav: UavId::new(3) },
        )
        .compute_fault(
            SimTime::from_secs(25),
            SimDuration::from_secs(2),
            ComputeFaultKind::EddiPanic { uav: 1 },
        )
        .deadline(SimTime::from_secs(80))
}

/// The deterministic metrics projection minus the `checkpoint.*`
/// bookkeeping — the only keys capture and recovery are allowed to
/// touch.
fn comparable_metrics(m: &MetricsSnapshot) -> MetricsSnapshot {
    let mut m = m.without_wall_clock();
    m.counters.retain(|k, _| !k.starts_with("checkpoint."));
    m
}

/// Bit-identity across every observable surface of two outcomes, modulo
/// the digest-excluded `checkpoint.*` counters.
fn assert_outcomes_bit_identical(a: &ScenarioOutcome, b: &ScenarioOutcome, ctx: &str) {
    assert_eq!(a.pof_series.len(), b.pof_series.len(), "pof length: {ctx}");
    for (x, y) in a.pof_series.iter().zip(&b.pof_series) {
        assert_eq!(x.1.to_bits(), y.1.to_bits(), "pof bits: {ctx}");
    }
    for (x, y) in a.uncertainty_series.iter().zip(&b.uncertainty_series) {
        assert_eq!(x.1.to_bits(), y.1.to_bits(), "uncertainty bits: {ctx}");
    }
    assert_eq!(
        a.trajectories.len(),
        b.trajectories.len(),
        "fleet size: {ctx}"
    );
    for (i, (ta, tb)) in a.trajectories.iter().zip(&b.trajectories).enumerate() {
        assert_eq!(ta.len(), tb.len(), "trajectory length uav{i}: {ctx}");
        for (x, y) in ta.iter().zip(tb) {
            assert_eq!(x.0.to_bits(), y.0.to_bits(), "trajectory t uav{i}: {ctx}");
            assert_eq!(
                x.1.lat_deg.to_bits(),
                y.1.lat_deg.to_bits(),
                "trajectory lat uav{i}: {ctx}"
            );
            assert_eq!(
                x.1.lon_deg.to_bits(),
                y.1.lon_deg.to_bits(),
                "trajectory lon uav{i}: {ctx}"
            );
            assert_eq!(
                x.1.alt_m.to_bits(),
                y.1.alt_m.to_bits(),
                "trajectory alt uav{i}: {ctx}"
            );
        }
    }
    let ea: Vec<_> = a.events.iter().collect();
    let eb: Vec<_> = b.events.iter().collect();
    assert_eq!(ea, eb, "event log: {ctx}");
    assert_eq!(
        format!("{:?}", a.findings),
        format!("{:?}", b.findings),
        "findings: {ctx}"
    );
    assert_eq!(
        comparable_metrics(&a.obs_metrics),
        comparable_metrics(&b.obs_metrics),
        "metrics: {ctx}"
    );
}

/// Capturing checkpoints is observably free: a run that checkpoints
/// every 25 ticks produces the exact outcome of one that never does,
/// and every capture is on-cadence and accounted for.
#[test]
fn checkpointed_run_matches_uninterrupted_run() {
    let uninterrupted = faulted_scenario(57).build().run();
    let (outcome, checkpoints) = faulted_scenario(57).build().run_with_checkpoints(25);
    assert_outcomes_bit_identical(&uninterrupted, &outcome, "checkpointing every 25 ticks");
    assert!(
        checkpoints.len() >= 3,
        "an 80 s run must cross several 25-tick cadences"
    );
    for cp in &checkpoints {
        assert_eq!(cp.tick() % 25, 0, "captures happen on the cadence");
    }
    assert_eq!(
        outcome.obs_metrics.counter("checkpoint.captures"),
        checkpoints.len() as u64
    );
}

/// The tentpole gate: recover a mid-run checkpoint — replaying the
/// scenario log up to the captured tick and verifying the state digest
/// — then resume it to completion. The recovered run's outcome is
/// bit-identical to a run that was never interrupted.
#[test]
fn recovered_run_completes_identically_to_an_uninterrupted_one() {
    let uninterrupted = faulted_scenario(57).build().run();
    let (_, checkpoints) = faulted_scenario(57).build().run_with_checkpoints(100);
    // A checkpoint captured after the panic window opened: quarantine,
    // probe and watchdog state are all part of what replay rebuilds.
    let cp = checkpoints
        .iter()
        .find(|cp| cp.tick() >= 300)
        .expect("a checkpoint past the fault windows");
    let recovered = cp.recover().expect("digest must verify");
    assert_eq!(recovered.platform().total_ticks(), cp.tick());
    let outcome = recovered.resume();
    assert_outcomes_bit_identical(&uninterrupted, &outcome, "recover + resume");
    // The recovery itself is recorded — in the digest-excluded keys.
    assert_eq!(outcome.obs_metrics.counter("checkpoint.recoveries"), 1);
    assert_eq!(
        outcome.obs_metrics.counter("checkpoint.replayed_ticks"),
        cp.tick()
    );
}

/// Every checkpoint of a faulted run recovers — including ones captured
/// while a UAV was quarantined or a blackout was in flight.
#[test]
fn every_checkpoint_of_a_faulted_run_recovers() {
    let (_, checkpoints) = faulted_scenario(91).build().run_with_checkpoints(75);
    assert!(checkpoints.len() >= 2);
    for cp in &checkpoints {
        let recovered = cp
            .recover()
            .unwrap_or_else(|e| panic!("checkpoint at tick {} failed: {e}", cp.tick()));
        assert_eq!(recovered.platform().total_ticks(), cp.tick());
    }
}

/// The error surface is stable API: a digest mismatch names both values
/// and travels as a std error.
#[test]
fn recover_error_is_a_std_error_with_both_digests() {
    let err: Box<dyn std::error::Error> = Box::new(RecoverError::DigestMismatch {
        expected: 0xabc,
        actual: 0xdef,
    });
    let text = err.to_string();
    assert!(text.contains("mismatch"), "{text}");
    assert!(text.contains("0xabc") || text.contains("abc"), "{text}");
}
