//! Tier-1 chaos gate: seeded random fault campaigns over full scenario
//! runs must never panic, always produce an outcome, react to link loss
//! through the supervision layer, and replay identically per seed.
//!
//! The full 50-seed campaign lives in the release bench binary
//! (`cargo run -p sesame-bench --release --bin chaos`); this test keeps
//! a smaller deterministic slice in the default suite.

use sesame::core::chaos::{CampaignConfig, ChaosCampaign};
use sesame::core::containment::ComputeFaultKind;
use sesame::core::scenario::ScenarioBuilder;
use sesame::core::supervision::HealthState;
use sesame::middleware::chaos::CommFaultKind;
use sesame::types::ids::UavId;
use sesame::types::time::{SimDuration, SimTime};

#[test]
fn seeded_campaign_is_panic_free_with_outcomes() {
    let report = ChaosCampaign::new(CampaignConfig {
        runs: 5,
        base_seed: 100,
        deadline: SimTime::from_secs(120),
        ..CampaignConfig::default()
    })
    .run();
    assert_eq!(report.runs.len(), 5, "every seed yields a report");
    assert!(report.all_clean(), "violations:\n{}", report.render());
    for run in &report.runs {
        assert_eq!(run.fault_labels.len(), 4, "four faults per schedule");
    }
}

#[test]
fn campaign_seed_replays_identically() {
    let report = ChaosCampaign::new(CampaignConfig {
        runs: 1,
        base_seed: 7,
        deadline: SimTime::from_secs(120),
        replay_check: true,
        ..CampaignConfig::default()
    })
    .run();
    assert!(
        report.all_clean(),
        "replay-checked run failed:\n{}",
        report.render()
    );
}

#[test]
fn baseline_platform_survives_chaos_too() {
    // With SESAME off there is no IDS and no signing, but the platform
    // must still not panic and must still produce an outcome.
    let report = ChaosCampaign::new(CampaignConfig {
        runs: 2,
        base_seed: 300,
        deadline: SimTime::from_secs(120),
        sesame: false,
        ..CampaignConfig::default()
    })
    .run();
    assert!(report.all_clean(), "violations:\n{}", report.render());
}

#[test]
fn compute_fault_campaign_is_abort_free_and_quarantines() {
    // Compute faults ride on top of the vehicle/comm mix: scheduled EDDI
    // panics must be isolated (the campaign-level catch_unwind turning a
    // leak into a "panicked during run" violation), and the quarantine
    // invariant inside `check_invariants` must hold per run.
    let report = ChaosCampaign::new(CampaignConfig {
        runs: 6,
        base_seed: 500,
        deadline: SimTime::from_secs(120),
        compute_faults_per_run: 2,
        ..CampaignConfig::default()
    })
    .run();
    assert!(report.all_clean(), "violations:\n{}", report.render());
    for run in &report.runs {
        assert_eq!(
            run.fault_labels.len(),
            6,
            "four vehicle/comm + two compute faults per schedule"
        );
    }
    // Across the sweep at least one schedule drew an EDDI panic and the
    // merged aggregate shows the containment layer at work.
    let merged = report.merged_obs();
    assert!(
        merged.counter("chaos.compute_faults_activated") >= 1,
        "no compute fault ever activated:\n{}",
        report.render_full()
    );
    assert!(
        merged.counter("uav.fault.isolated") + merged.counter("uav.fault.solver_stall_ticks") >= 1,
        "compute faults activated but none was observed by containment"
    );
}

#[test]
fn compute_fault_campaign_replays_identically() {
    let report = ChaosCampaign::new(CampaignConfig {
        runs: 2,
        base_seed: 621,
        deadline: SimTime::from_secs(120),
        compute_faults_per_run: 2,
        replay_check: true,
        ..CampaignConfig::default()
    })
    .run();
    assert!(
        report.all_clean(),
        "replay-checked compute-fault runs failed:\n{}",
        report.render()
    );
}

#[test]
fn scenario_eddi_panic_quarantines_and_recovers() {
    // A direct scenario-level window (no campaign sampling): the panic
    // is isolated, the UAV quarantined and RTB'd, then re-admitted once
    // the window closes and the probe streak runs clean.
    let outcome = ScenarioBuilder::new(29)
        .compute_fault(
            SimTime::from_secs(25),
            SimDuration::from_secs(2),
            ComputeFaultKind::EddiPanic { uav: 1 },
        )
        .deadline(SimTime::from_secs(90))
        .build()
        .run();
    let m = &outcome.obs_metrics;
    assert!(
        m.counter("chaos.compute_fault_transitions") >= 2,
        "on + off"
    );
    assert!(m.counter("uav.fault.isolated") >= 1);
    assert!(m.counter("uav.fault.phase.injected") >= 1);
    assert_eq!(m.counter("uav.quarantine.entered"), 1);
    assert_eq!(m.counter("uav.quarantine.released"), 1);
    assert!(m.counter("supervision.to_quarantined") >= 1);
    assert!(m.counter("platform.ticks") > 0);
    assert_eq!(HealthState::Quarantined.as_gauge(), 3.0);
}

#[test]
fn scenario_blackout_reaches_safe_fallback_and_completes_collection() {
    let outcome = ScenarioBuilder::new(13)
        .comm_fault(
            SimTime::from_secs(30),
            SimDuration::from_secs(12),
            CommFaultKind::LinkBlackout { uav: UavId::new(2) },
        )
        .deadline(SimTime::from_secs(90))
        .build()
        .run();
    let m = &outcome.obs_metrics;
    assert!(m.counter("chaos.comm_faults_activated") >= 1);
    assert!(
        m.counter("supervision.to_safe_fallback") >= 1,
        "a 12 s blackout must outlast the 6 s fallback window"
    );
    assert!(m.counter("supervision.heartbeats_sent") > 0);
    assert!(m.counter("platform.ticks") > 0);
    // The gauge encoding is stable API for dashboards.
    assert_eq!(HealthState::SafeFallback.as_gauge(), 2.0);
}
