//! Sharded-fleet conformance: the shard-partitioned tick against the
//! serial oracle.
//!
//! The fleet-scale redesign claims that the [`ShardPolicy`] only chooses
//! how much of the tick runs concurrently — never what it computes. This
//! suite holds sharded runs to the same standard the EDDI fast path is
//! held to: **bit-identical** series, trajectories, event logs, traces,
//! ConSert decisions and (wall-clock-free) metrics, including the EDDI
//! cache hit/miss counters, at every shard count. Edge cases from the
//! issue ride along: more shards than UAVs (empty shards), non-divisible
//! fleet/shard combinations, and a single-UAV fleet.

use sesame::core::fleet::{FleetSpec, ShardPolicy};
use sesame::core::orchestrator::{Platform, PlatformConfig};
use sesame::obs::MetricsSnapshot;

fn config(seed: u64, uavs: usize, policy: ShardPolicy) -> PlatformConfig {
    PlatformConfig {
        area_width_m: 150.0,
        area_height_m: 100.0,
        person_count: 3,
        seed,
        fleet: FleetSpec::builder().uavs(uavs).shard_policy(policy).build(),
        ..PlatformConfig::default()
    }
}

fn run(cfg: PlatformConfig, steps: usize) -> Platform {
    let mut p = Platform::new(cfg);
    p.launch();
    for _ in 0..steps {
        p.step();
    }
    p
}

/// Asserts every observable output of two platform runs is bit-identical:
/// the per-second series, every trajectory, the full event log, the
/// structured trace, per-UAV ConSert accuracy bounds and the
/// wall-clock-free metrics (cache counters included).
fn assert_runs_bit_identical(a: &Platform, b: &Platform, ctx: &str) {
    let (sa, sb) = (a.series(), b.series());
    assert_eq!(sa.pof().len(), sb.pof().len(), "pof length: {ctx}");
    for (x, y) in sa.pof().iter().zip(sb.pof()) {
        assert_eq!(x.1.to_bits(), y.1.to_bits(), "pof bits: {ctx}");
    }
    for (x, y) in sa.uncertainty().iter().zip(sb.uncertainty()) {
        assert_eq!(x.1.to_bits(), y.1.to_bits(), "uncertainty bits: {ctx}");
    }
    assert_eq!(
        sa.attack_detected_at(),
        sb.attack_detected_at(),
        "attack detection: {ctx}"
    );
    for i in 0..a.uav_count() {
        let (ta, tb) = (sa.trajectory(i), sb.trajectory(i));
        assert_eq!(ta.len(), tb.len(), "trajectory length uav{i}: {ctx}");
        for (x, y) in ta.iter().zip(tb) {
            assert_eq!(x.0.to_bits(), y.0.to_bits(), "trajectory t uav{i}: {ctx}");
            assert_eq!(
                x.1.lat_deg.to_bits(),
                y.1.lat_deg.to_bits(),
                "trajectory lat uav{i}: {ctx}"
            );
            assert_eq!(
                x.1.lon_deg.to_bits(),
                y.1.lon_deg.to_bits(),
                "trajectory lon uav{i}: {ctx}"
            );
            assert_eq!(
                x.1.alt_m.to_bits(),
                y.1.alt_m.to_bits(),
                "trajectory alt uav{i}: {ctx}"
            );
        }
        assert_eq!(
            a.certified_nav_accuracy_m(i),
            b.certified_nav_accuracy_m(i),
            "nav accuracy uav{i}: {ctx}"
        );
        assert_eq!(a.health(i), b.health(i), "health uav{i}: {ctx}");
    }
    // Record-for-record: order matters, not just counts.
    let ea: Vec<_> = a.events().iter().collect();
    let eb: Vec<_> = b.events().iter().collect();
    assert_eq!(ea, eb, "event log: {ctx}");
    let tra: Vec<_> = a.trace().iter().collect();
    let trb: Vec<_> = b.trace().iter().collect();
    assert_eq!(tra, trb, "trace: {ctx}");
    let ma: MetricsSnapshot = a.metrics_snapshot().without_wall_clock();
    let mb: MetricsSnapshot = b.metrics_snapshot().without_wall_clock();
    assert_eq!(ma, mb, "metrics: {ctx}");
}

/// The issue's conformance gate: the paper's three-UAV fleet, sharded in
/// two, replays the serial run bit for bit.
#[test]
fn sharded_three_uav_run_matches_serial_bit_for_bit() {
    for seed in [3u64, 17] {
        let serial = run(config(seed, 3, ShardPolicy::Serial), 150);
        let sharded = run(config(seed, 3, ShardPolicy::Fixed { shards: 2 }), 150);
        assert_eq!(serial.shard_count(), 1);
        assert_eq!(sharded.shard_count(), 2, "sharding must actually engage");
        assert_runs_bit_identical(&serial, &sharded, &format!("3 UAVs, 2 shards, seed {seed}"));
    }
}

/// More shards than UAVs: the excess shards are empty and harmless.
#[test]
fn empty_shards_are_harmless() {
    let serial = run(config(7, 3, ShardPolicy::Serial), 100);
    let sharded = run(config(7, 3, ShardPolicy::Fixed { shards: 8 }), 100);
    assert_eq!(sharded.shard_count(), 8);
    assert_runs_bit_identical(&serial, &sharded, "3 UAVs, 8 shards");
}

/// A single-UAV fleet survives any shard request.
#[test]
fn single_uav_fleet_shards_trivially() {
    let serial = run(config(11, 1, ShardPolicy::Serial), 100);
    let sharded = run(config(11, 1, ShardPolicy::Fixed { shards: 4 }), 100);
    assert_runs_bit_identical(&serial, &sharded, "1 UAV, 4 shards");
}

/// A 50-UAV fleet under a non-divisible shard count (50 / 7) and across
/// several worker counts: every partition replays the serial oracle.
#[test]
fn fifty_uav_fleet_is_shard_count_invariant() {
    let serial = run(config(23, 50, ShardPolicy::Serial), 40);
    for shards in [4usize, 7, 8] {
        let sharded = run(config(23, 50, ShardPolicy::Fixed { shards }), 40);
        assert_eq!(sharded.shard_count(), shards);
        assert_runs_bit_identical(&serial, &sharded, &format!("50 UAVs, {shards} shards"));
    }
}

/// The Auto policy stays serial for small fleets (the paper's 3-UAV demo
/// pays no sharding overhead) and engages for large ones.
#[test]
fn auto_policy_scales_with_fleet_size() {
    let small = Platform::new(config(5, 3, ShardPolicy::Auto));
    assert_eq!(small.shard_count(), 1, "3 UAVs stay serial under Auto");
    let large = Platform::new(config(5, 64, ShardPolicy::Auto));
    assert!(large.shard_count() >= 1);
    // Sharding requires the fast path: the reference engines always run
    // the serial oracle regardless of policy.
    let mut cfg = config(5, 64, ShardPolicy::Fixed { shards: 4 });
    cfg.eddi_fast_path = false;
    assert_eq!(Platform::new(cfg).shard_count(), 1);
    // ... and the SESAME stack: the baseline fleet has no EDDIs to batch.
    let mut cfg = config(5, 64, ShardPolicy::Fixed { shards: 4 });
    cfg.sesame_enabled = false;
    assert_eq!(Platform::new(cfg).shard_count(), 1);
}
