//! Sharded-fleet conformance: the shard-partitioned tick against the
//! serial oracle.
//!
//! The fleet-scale redesign claims that the [`ShardPolicy`] only chooses
//! how much of the tick runs concurrently — never what it computes. This
//! suite holds sharded runs to the same standard the EDDI fast path is
//! held to: **bit-identical** series, trajectories, event logs, traces,
//! ConSert decisions and (wall-clock-free) metrics, including the EDDI
//! cache hit/miss counters, at every shard count. Edge cases from the
//! issue ride along: more shards than UAVs (empty shards), non-divisible
//! fleet/shard combinations, and a single-UAV fleet.

use sesame::core::containment::ComputeFaultKind;
use sesame::core::fleet::{FleetSpec, ShardPolicy};
use sesame::core::orchestrator::{Platform, PlatformConfig};
use sesame::core::supervision::HealthState;
use sesame::obs::MetricsSnapshot;
use sesame::types::time::{SimDuration, SimTime};

fn config(seed: u64, uavs: usize, policy: ShardPolicy) -> PlatformConfig {
    PlatformConfig {
        area_width_m: 150.0,
        area_height_m: 100.0,
        person_count: 3,
        seed,
        fleet: FleetSpec::builder().uavs(uavs).shard_policy(policy).build(),
        ..PlatformConfig::default()
    }
}

fn run(cfg: PlatformConfig, steps: usize) -> Platform {
    run_with_faults(cfg, steps, &[])
}

fn run_with_faults(
    cfg: PlatformConfig,
    steps: usize,
    faults: &[(SimTime, SimDuration, ComputeFaultKind)],
) -> Platform {
    let mut p = Platform::new(cfg);
    for &(at, duration, kind) in faults {
        p.compute_faults_mut().schedule(at, duration, kind);
    }
    p.launch();
    for _ in 0..steps {
        p.step();
    }
    p
}

/// Asserts every observable output of two platform runs is bit-identical:
/// the per-second series, every trajectory, the full event log, the
/// structured trace, per-UAV ConSert accuracy bounds and the
/// wall-clock-free metrics (cache counters included).
fn assert_runs_bit_identical(a: &Platform, b: &Platform, ctx: &str) {
    let (sa, sb) = (a.series(), b.series());
    assert_eq!(sa.pof().len(), sb.pof().len(), "pof length: {ctx}");
    for (x, y) in sa.pof().iter().zip(sb.pof()) {
        assert_eq!(x.1.to_bits(), y.1.to_bits(), "pof bits: {ctx}");
    }
    for (x, y) in sa.uncertainty().iter().zip(sb.uncertainty()) {
        assert_eq!(x.1.to_bits(), y.1.to_bits(), "uncertainty bits: {ctx}");
    }
    assert_eq!(
        sa.attack_detected_at(),
        sb.attack_detected_at(),
        "attack detection: {ctx}"
    );
    for i in 0..a.uav_count() {
        let (ta, tb) = (sa.trajectory(i), sb.trajectory(i));
        assert_eq!(ta.len(), tb.len(), "trajectory length uav{i}: {ctx}");
        for (x, y) in ta.iter().zip(tb) {
            assert_eq!(x.0.to_bits(), y.0.to_bits(), "trajectory t uav{i}: {ctx}");
            assert_eq!(
                x.1.lat_deg.to_bits(),
                y.1.lat_deg.to_bits(),
                "trajectory lat uav{i}: {ctx}"
            );
            assert_eq!(
                x.1.lon_deg.to_bits(),
                y.1.lon_deg.to_bits(),
                "trajectory lon uav{i}: {ctx}"
            );
            assert_eq!(
                x.1.alt_m.to_bits(),
                y.1.alt_m.to_bits(),
                "trajectory alt uav{i}: {ctx}"
            );
        }
        assert_eq!(
            a.certified_nav_accuracy_m(i),
            b.certified_nav_accuracy_m(i),
            "nav accuracy uav{i}: {ctx}"
        );
        assert_eq!(a.health(i), b.health(i), "health uav{i}: {ctx}");
    }
    // Record-for-record: order matters, not just counts.
    let ea: Vec<_> = a.events().iter().collect();
    let eb: Vec<_> = b.events().iter().collect();
    assert_eq!(ea, eb, "event log: {ctx}");
    let tra: Vec<_> = a.trace().iter().collect();
    let trb: Vec<_> = b.trace().iter().collect();
    assert_eq!(tra, trb, "trace: {ctx}");
    let ma: MetricsSnapshot = a.metrics_snapshot().without_wall_clock();
    let mb: MetricsSnapshot = b.metrics_snapshot().without_wall_clock();
    assert_eq!(ma, mb, "metrics: {ctx}");
}

/// The issue's conformance gate: the paper's three-UAV fleet, sharded in
/// two, replays the serial run bit for bit.
#[test]
fn sharded_three_uav_run_matches_serial_bit_for_bit() {
    for seed in [3u64, 17] {
        let serial = run(config(seed, 3, ShardPolicy::Serial), 150);
        let sharded = run(config(seed, 3, ShardPolicy::Fixed { shards: 2 }), 150);
        assert_eq!(serial.shard_count(), 1);
        assert_eq!(sharded.shard_count(), 2, "sharding must actually engage");
        assert_runs_bit_identical(&serial, &sharded, &format!("3 UAVs, 2 shards, seed {seed}"));
    }
}

/// More shards than UAVs: the excess shards are empty and harmless.
#[test]
fn empty_shards_are_harmless() {
    let serial = run(config(7, 3, ShardPolicy::Serial), 100);
    let sharded = run(config(7, 3, ShardPolicy::Fixed { shards: 8 }), 100);
    assert_eq!(sharded.shard_count(), 8);
    assert_runs_bit_identical(&serial, &sharded, "3 UAVs, 8 shards");
}

/// A single-UAV fleet survives any shard request.
#[test]
fn single_uav_fleet_shards_trivially() {
    let serial = run(config(11, 1, ShardPolicy::Serial), 100);
    let sharded = run(config(11, 1, ShardPolicy::Fixed { shards: 4 }), 100);
    assert_runs_bit_identical(&serial, &sharded, "1 UAV, 4 shards");
}

/// A 50-UAV fleet under a non-divisible shard count (50 / 7) and across
/// several worker counts: every partition replays the serial oracle.
#[test]
fn fifty_uav_fleet_is_shard_count_invariant() {
    let serial = run(config(23, 50, ShardPolicy::Serial), 40);
    for shards in [4usize, 7, 8] {
        let sharded = run(config(23, 50, ShardPolicy::Fixed { shards }), 40);
        assert_eq!(sharded.shard_count(), shards);
        assert_runs_bit_identical(&serial, &sharded, &format!("50 UAVs, {shards} shards"));
    }
}

/// A mixed compute-fault schedule — an EDDI panic, a solver stall and a
/// NaN-telemetry window — covering every containment path at once.
fn mixed_faults() -> Vec<(SimTime, SimDuration, ComputeFaultKind)> {
    vec![
        (
            SimTime::from_millis(2000),
            SimDuration::from_millis(800),
            ComputeFaultKind::EddiPanic { uav: 1 },
        ),
        (
            SimTime::from_millis(2500),
            SimDuration::from_millis(1200),
            ComputeFaultKind::SolverStall { uav: 4 },
        ),
        (
            SimTime::from_millis(3000),
            SimDuration::from_millis(600),
            ComputeFaultKind::TelemetryNan { uav: 7 },
        ),
    ]
}

/// The tentpole gate: a run with injected panics, solver stalls and NaN
/// telemetry is bit-identical at every shard count. Panic isolation,
/// quarantine entry, RTB commands, watchdog demotion and revival probes
/// all happen at the same ticks with the same observable records
/// regardless of the execution plan.
#[test]
fn injected_faults_are_shard_count_invariant() {
    let faults = mixed_faults();
    let serial = run_with_faults(config(31, 12, ShardPolicy::Serial), 140, &faults);
    // The schedule actually exercised the machinery.
    let m = serial.metrics_snapshot();
    assert!(m.counter("uav.fault.isolated") >= 2, "panic + NaN isolated");
    assert!(m.counter("uav.quarantine.entered") >= 2);
    assert!(m.counter("uav.fault.solver_stall_ticks") >= 1);
    assert!(m.counter("watchdog.trip") >= 1, "stall streak must trip");
    for shards in [4usize, 8] {
        let sharded = run_with_faults(config(31, 12, ShardPolicy::Fixed { shards }), 140, &faults);
        assert_runs_bit_identical(
            &serial,
            &sharded,
            &format!("12 UAVs, {shards} shards, injected faults"),
        );
    }
}

/// Quarantine is a round trip: the faulted UAV is excised, probed on
/// backoff, and deterministically re-admitted once its window closes and
/// the probe streak comes back clean — ending Nominal with a fresh
/// engine, not stuck in a terminal state.
#[test]
fn quarantined_uav_is_released_after_the_fault_clears() {
    let faults = [(
        SimTime::from_millis(2000),
        SimDuration::from_millis(500),
        ComputeFaultKind::EddiPanic { uav: 2 },
    )];
    let p = run_with_faults(
        config(41, 6, ShardPolicy::Fixed { shards: 2 }),
        200,
        &faults,
    );
    let m = p.metrics_snapshot();
    assert_eq!(m.counter("uav.quarantine.entered"), 1);
    assert_eq!(m.counter("uav.quarantine.released"), 1);
    assert!(m.counter("uav.quarantine.probes") >= 1);
    assert_eq!(
        p.health(2),
        HealthState::Nominal,
        "released UAV must be Nominal again"
    );
    // Replaying the exact run re-admits at the same tick with the same
    // records: the lifecycle is deterministic, not timing-dependent.
    let q = run_with_faults(
        config(41, 6, ShardPolicy::Fixed { shards: 2 }),
        200,
        &faults,
    );
    assert_runs_bit_identical(&p, &q, "quarantine lifecycle replay");
}

/// A probe that lands while the panic window is still open fails and
/// backs off exponentially; the UAV stays quarantined for the duration.
#[test]
fn probes_fail_while_the_fault_window_is_open() {
    // Window long enough (8 s = 80 ticks) that the first probes (backoff
    // base 16 ticks) land inside it.
    let faults = [(
        SimTime::from_millis(2000),
        SimDuration::from_millis(8000),
        ComputeFaultKind::EddiPanic { uav: 0 },
    )];
    let p = run_with_faults(config(43, 4, ShardPolicy::Serial), 70, &faults);
    let m = p.metrics_snapshot();
    assert_eq!(m.counter("uav.quarantine.entered"), 1);
    assert!(m.counter("uav.quarantine.probe_failures") >= 1);
    assert_eq!(m.counter("uav.quarantine.released"), 0);
    assert_eq!(p.health(0), HealthState::Quarantined);
}

/// The watchdog demotion is bounded: the sharded plan is restored after
/// the cooldown, and the demotion bookkeeping is plan-independent (the
/// counters appear even on a serial run, where demotion is a no-op).
#[test]
fn watchdog_demotion_expires_and_restores_the_plan() {
    let faults = [(
        SimTime::from_millis(2000),
        SimDuration::from_millis(1000),
        ComputeFaultKind::SolverStall { uav: 1 },
    )];
    // 20 + 64 cooldown ticks all inside a 160-step run.
    let sharded = run_with_faults(
        config(47, 8, ShardPolicy::Fixed { shards: 4 }),
        160,
        &faults,
    );
    let serial = run_with_faults(config(47, 8, ShardPolicy::Serial), 160, &faults);
    let m = sharded.metrics_snapshot();
    assert!(m.counter("watchdog.trip") >= 1);
    assert!(m.counter("watchdog.demotions") >= 1);
    assert!(m.counter("watchdog.demoted_ticks") >= 1);
    assert_runs_bit_identical(&serial, &sharded, "watchdog demotion, 8 UAVs");
}

/// The arena-build gate at fleet scale: a 96-UAV run pushes the inline
/// small-vector collections (solve-class member lists, route tables,
/// detection buffers) past their spill boundaries and keeps every
/// solve-class batch full, so any divergence between the inline/spilled
/// representations or the in-place CTMC rate rewrites would surface as a
/// bit difference against the serial oracle.
#[test]
fn large_fleet_spilled_collections_match_serial_bit_for_bit() {
    let serial = run(config(53, 96, ShardPolicy::Serial), 25);
    let sharded = run(config(53, 96, ShardPolicy::Fixed { shards: 6 }), 25);
    assert_eq!(sharded.shard_count(), 6);
    assert_runs_bit_identical(&serial, &sharded, "96 UAVs, 6 shards");
}

/// The Auto policy stays serial for small fleets (the paper's 3-UAV demo
/// pays no sharding overhead) and engages for large ones.
#[test]
fn auto_policy_scales_with_fleet_size() {
    let small = Platform::new(config(5, 3, ShardPolicy::Auto));
    assert_eq!(small.shard_count(), 1, "3 UAVs stay serial under Auto");
    let large = Platform::new(config(5, 64, ShardPolicy::Auto));
    assert!(large.shard_count() >= 1);
    // Sharding requires the fast path: the reference engines always run
    // the serial oracle regardless of policy.
    let mut cfg = config(5, 64, ShardPolicy::Fixed { shards: 4 });
    cfg.eddi_fast_path = false;
    assert_eq!(Platform::new(cfg).shard_count(), 1);
    // ... and the SESAME stack: the baseline fleet has no EDDIs to batch.
    let mut cfg = config(5, 64, ShardPolicy::Fixed { shards: 4 });
    cfg.sesame_enabled = false;
    assert_eq!(Platform::new(cfg).shard_count(), 1);
}
