//! Lockstep conformance: the incremental EDDI fast path against the
//! naive reference path.
//!
//! The fast path (solver profile cache, presorted SafeML, SINADRA factor
//! caches, fingerprint-gated ConSerts) claims **bit-identical** results,
//! not approximately-equal ones. This suite proves it three ways:
//!
//! 1. 200+ randomized evidence schedules driven through paired runtimes,
//!    comparing every output field, the evidence snapshot and the ConSert
//!    decision bit for bit each tick;
//! 2. full platform runs with `eddi_fast_path` on and off, comparing
//!    series, events, traces and metrics (minus the `eddi.cache.*`
//!    counters only the fast path maintains);
//! 3. the issue's explicit edge cases: NaN-bearing telemetry, evidence
//!    toggling every tick, and cache behaviour across degraded-mode
//!    communication-fault transitions.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use sesame::conserts::catalog::{
    certified_navigation_accuracy_m, evaluate_uav, uav_consert_network,
};
use sesame::conserts::{ConsertDecision, IncrementalConsertNetwork};
use sesame::core::orchestrator::{Platform, PlatformConfig};
use sesame::core::reference::ReferenceEddiRuntime;
use sesame::core::{EddiOutputs, UavEddiRuntime};
use sesame::safedrones::monitor::SafeDronesConfig;
use sesame::types::geo::GeoPoint;
use sesame::types::ids::UavId;
use sesame::types::telemetry::UavTelemetry;
use sesame::types::time::{SimDuration, SimTime};
use sesame::vision::features::SceneCondition;

fn home() -> GeoPoint {
    GeoPoint::new(35.0, 33.0, 0.0)
}

/// One randomized telemetry + scene draw. Every stochastic field a real
/// mission varies is varied here; both paths receive the same values.
fn random_inputs(rng: &mut StdRng, tick: u64) -> (UavTelemetry, SceneCondition) {
    let alt = 5.0 + rng.random::<f64>() * 65.0;
    let pos = home()
        .destination(rng.random::<f64>() * 360.0, rng.random::<f64>() * 200.0)
        .with_alt(alt);
    let mut tel = UavTelemetry::nominal(UavId::new(1), SimTime::from_millis(tick * 100), pos);
    // The reported fix drifts off truth now and then (spoof-ish jitter).
    tel.gps.position = if rng.random::<f64>() < 0.2 {
        pos.destination(rng.random::<f64>() * 360.0, rng.random::<f64>() * 30.0)
            .with_alt(alt)
    } else {
        pos
    };
    if rng.random::<f64>() < 0.1 {
        tel.gps.satellites = 4; // unusable fix
    }
    tel.battery_soc = 0.2 + rng.random::<f64>() * 0.8;
    tel.battery_temp_c = 15.0 + rng.random::<f64>() * 45.0;
    tel.vision_health = rng.random::<f64>();
    tel.link_quality = rng.random::<f64>();
    let scene = SceneCondition {
        altitude_m: alt,
        visibility: 0.4 + rng.random::<f64>() * 0.6,
    };
    (tel, scene)
}

/// Asserts every field of two [`EddiOutputs`] is bit-identical.
fn assert_outputs_bit_equal(f: &EddiOutputs, r: &EddiOutputs, ctx: &str) {
    assert_eq!(
        f.reliability.pof.to_bits(),
        r.reliability.pof.to_bits(),
        "pof diverged: {ctx}"
    );
    assert_eq!(f.reliability.level, r.reliability.level, "level: {ctx}");
    assert_eq!(
        f.safeml_uncertainty.to_bits(),
        r.safeml_uncertainty.to_bits(),
        "safeml: {ctx}"
    );
    assert_eq!(f.safeml_verdict, r.safeml_verdict, "verdict: {ctx}");
    assert_eq!(
        f.dk_uncertainty.to_bits(),
        r.dk_uncertainty.to_bits(),
        "dk: {ctx}"
    );
    assert_eq!(
        f.combined_uncertainty.to_bits(),
        r.combined_uncertainty.to_bits(),
        "combined: {ctx}"
    );
    assert_eq!(
        f.risk.missed_person_prob.to_bits(),
        r.risk.missed_person_prob.to_bits(),
        "missed: {ctx}"
    );
    assert_eq!(
        f.risk.criticality_high_prob.to_bits(),
        r.risk.criticality_high_prob.to_bits(),
        "criticality: {ctx}"
    );
    assert_eq!(
        f.risk.rescan_advised, r.risk.rescan_advised,
        "rescan: {ctx}"
    );
    assert_eq!(f.spoof.spoofed, r.spoof.spoofed, "spoofed: {ctx}");
    assert_eq!(
        f.spoof.innovation_m.to_bits(),
        r.spoof.innovation_m.to_bits(),
        "innovation: {ctx}"
    );
}

/// The tentpole acceptance gate: 200 randomized evidence schedules, every
/// tick compared bit for bit — outputs, evidence and ConSert decision.
#[test]
fn fast_path_locksteps_with_reference_over_200_randomized_schedules() {
    for schedule in 0u64..200 {
        let seed = 0xEDD1 ^ (schedule << 8);
        let mut fast = UavEddiRuntime::new(seed, SafeDronesConfig::default(), home());
        let mut reference = ReferenceEddiRuntime::new(seed, SafeDronesConfig::default(), home());
        let mut inc = IncrementalConsertNetwork::new("uav1");
        let naive_net = uav_consert_network("uav1");
        let mut rng = StdRng::seed_from_u64(seed ^ 0x5EED);
        let remaining = SimDuration::from_secs(60 + schedule * 3);
        fast.set_remaining_mission(remaining);
        reference.set_remaining_mission(remaining);
        for tick in 0..12 {
            let (tel, scene) = random_inputs(&mut rng, tick);
            let f = fast.tick(&tel, &scene);
            let r = reference.tick(&tel, &scene);
            assert_outputs_bit_equal(&f, &r, &format!("schedule {schedule} tick {tick}"));

            let attack = rng.random::<bool>();
            let neighbors = rng.random::<bool>();
            let ev_fast = fast.evidence(&tel, attack, neighbors);
            let ev_ref = reference.evidence(&tel, attack, neighbors);
            assert_eq!(ev_fast, ev_ref, "evidence: schedule {schedule} tick {tick}");

            let fast_decision = inc.decide(&ev_fast);
            let naive_decision = ConsertDecision {
                action: evaluate_uav(&naive_net, "uav1", &ev_ref),
                nav_accuracy_m: certified_navigation_accuracy_m(&naive_net, "uav1", &ev_ref),
            };
            assert_eq!(
                fast_decision, naive_decision,
                "consert decision: schedule {schedule} tick {tick}"
            );
        }
    }
}

/// NaN-bearing telemetry (dead vision sensor, garbage GPS coordinates)
/// must flow through both paths identically — caches key on exact bit
/// patterns, so NaNs may only hit against the very same NaN.
#[test]
fn nan_bearing_telemetry_stays_in_lockstep() {
    let mut fast = UavEddiRuntime::new(77, SafeDronesConfig::default(), home());
    let mut reference = ReferenceEddiRuntime::new(77, SafeDronesConfig::default(), home());
    let scene = SceneCondition {
        altitude_m: 30.0,
        visibility: 1.0,
    };
    for tick in 0u64..30 {
        let pos = home().with_alt(30.0);
        let mut tel = UavTelemetry::nominal(UavId::new(1), SimTime::from_millis(tick * 100), pos);
        tel.gps.position = pos;
        match tick % 3 {
            // A dead vision sensor reports NaN health.
            0 => tel.vision_health = f64::NAN,
            // A garbage fix: NaN coordinates poison the spoof innovation.
            1 => tel.gps.position = GeoPoint::new(f64::NAN, 33.0, 30.0),
            _ => {}
        }
        let f = fast.tick(&tel, &scene);
        let r = reference.tick(&tel, &scene);
        assert_outputs_bit_equal(&f, &r, &format!("nan tick {tick}"));
        assert_eq!(
            fast.evidence(&tel, false, true),
            reference.evidence(&tel, false, true),
            "nan evidence at tick {tick}"
        );
    }
}

/// Evidence toggling every tick: the last-tick ConSert cache must never
/// hit, and the answers must stay correct anyway.
#[test]
fn toggling_evidence_defeats_the_cache_but_not_correctness() {
    let mut fast = UavEddiRuntime::new(13, SafeDronesConfig::default(), home());
    let mut reference = ReferenceEddiRuntime::new(13, SafeDronesConfig::default(), home());
    let mut inc = IncrementalConsertNetwork::new("uav1");
    let naive_net = uav_consert_network("uav1");
    let scene = SceneCondition {
        altitude_m: 30.0,
        visibility: 1.0,
    };
    for tick in 0u64..24 {
        let pos = home().with_alt(30.0);
        let mut tel = UavTelemetry::nominal(UavId::new(1), SimTime::from_millis(tick * 100), pos);
        tel.gps.position = pos;
        // The link flaps every tick, flipping comm_ok in the evidence.
        tel.link_quality = if tick % 2 == 0 { 1.0 } else { 0.1 };
        let f = fast.tick(&tel, &scene);
        let r = reference.tick(&tel, &scene);
        assert_outputs_bit_equal(&f, &r, &format!("toggle tick {tick}"));
        let ev = fast.evidence(&tel, false, true);
        assert_eq!(ev, reference.evidence(&tel, false, true));
        let fast_decision = inc.decide(&ev);
        let naive_decision = ConsertDecision {
            action: evaluate_uav(&naive_net, "uav1", &ev),
            nav_accuracy_m: certified_navigation_accuracy_m(&naive_net, "uav1", &ev),
        };
        assert_eq!(fast_decision, naive_decision, "toggle tick {tick}");
    }
    assert_eq!(inc.stats().hits, 0, "alternating evidence must never hit");
    assert_eq!(inc.stats().misses, 24);
}

/// The arena-build gate: a slow battery drain walks the reliability tier
/// ladder (high → medium → low), which stresses exactly the machinery the
/// zero-alloc work rewrote — the in-place CTMC rate rewrite on every
/// telemetry tick, the inline `SolveKey` cache lookups, and the compiled
/// ConSert evaluator's miss path (each tier flip changes the evidence
/// fingerprint and forces a fresh decide). Every tick must stay bit-
/// identical to the naive reference, and the decision must match the
/// naive tree walk.
#[test]
fn battery_drain_tier_ladder_stays_in_lockstep() {
    let mut fast = UavEddiRuntime::new(4242, SafeDronesConfig::default(), home());
    let mut reference = ReferenceEddiRuntime::new(4242, SafeDronesConfig::default(), home());
    let mut inc = IncrementalConsertNetwork::new("uav1");
    let naive_net = uav_consert_network("uav1");
    fast.set_remaining_mission(SimDuration::from_secs(900));
    reference.set_remaining_mission(SimDuration::from_secs(900));
    let scene = SceneCondition {
        altitude_m: 30.0,
        visibility: 1.0,
    };
    let mut decisions = std::collections::HashSet::new();
    for tick in 0u64..120 {
        let pos = home().with_alt(30.0);
        let mut tel = UavTelemetry::nominal(UavId::new(1), SimTime::from_millis(tick * 100), pos);
        tel.gps.position = pos;
        // Drain from full charge to 5% while heating up: the SoC-stress
        // and Arrhenius terms sweep the whole rate ladder, and the
        // reliability tier crosses both thresholds.
        tel.battery_soc = (1.0 - tick as f64 / 126.0).max(0.05);
        tel.battery_temp_c = 25.0 + tick as f64 * 0.25;
        let f = fast.tick(&tel, &scene);
        let r = reference.tick(&tel, &scene);
        assert_outputs_bit_equal(&f, &r, &format!("drain tick {tick}"));
        let ev = fast.evidence(&tel, false, true);
        assert_eq!(ev, reference.evidence(&tel, false, true), "tick {tick}");
        let fast_decision = inc.decide(&ev);
        let naive_decision = ConsertDecision {
            action: evaluate_uav(&naive_net, "uav1", &ev),
            nav_accuracy_m: certified_navigation_accuracy_m(&naive_net, "uav1", &ev),
        };
        assert_eq!(fast_decision, naive_decision, "drain tick {tick}");
        decisions.insert(format!("{fast_decision:?}"));
    }
    assert!(
        decisions.len() >= 2,
        "the drain must actually flip the decision at least once \
         (saw {decisions:?})"
    );
    assert!(
        inc.stats().misses >= 2,
        "tier flips must force compiled-evaluator misses"
    );
}

fn platform_config(seed: u64, fast: bool) -> PlatformConfig {
    PlatformConfig {
        area_width_m: 150.0,
        area_height_m: 100.0,
        person_count: 3,
        seed,
        eddi_fast_path: fast,
        ..PlatformConfig::default()
    }
}

/// Strips the fast-path-only cache counters from a snapshot so the two
/// paths' metrics become comparable.
fn comparable_metrics(p: &Platform) -> sesame::obs::MetricsSnapshot {
    let mut snap = p.metrics_snapshot().without_wall_clock();
    snap.counters
        .retain(|name, _| !name.starts_with("eddi.cache."));
    snap
}

/// Full platform runs with the fast path on and off: identical trace
/// logs, series bits, decisions and metrics (minus `eddi.cache.*`).
#[test]
fn platform_runs_are_bit_identical_across_the_fast_path_switch() {
    for seed in [3u64, 17, 99] {
        let mut fast = Platform::new(platform_config(seed, true));
        let mut reference = Platform::new(platform_config(seed, false));
        fast.launch();
        reference.launch();
        for _ in 0..120 {
            fast.step();
            reference.step();
        }
        let (fs, rs) = (fast.series(), reference.series());
        assert_eq!(fs.pof().len(), rs.pof().len(), "seed {seed}");
        for (a, b) in fs.pof().iter().zip(rs.pof()) {
            assert_eq!(a.1.to_bits(), b.1.to_bits(), "pof diverged, seed {seed}");
        }
        for (a, b) in fs.uncertainty().iter().zip(rs.uncertainty()) {
            assert_eq!(
                a.1.to_bits(),
                b.1.to_bits(),
                "uncertainty diverged, seed {seed}"
            );
        }
        for i in 0..fast.uav_count() {
            assert_eq!(
                fast.certified_nav_accuracy_m(i),
                reference.certified_nav_accuracy_m(i),
                "nav accuracy diverged for uav{i}, seed {seed}"
            );
        }
        // Traces and events record every decision, alert and transition:
        // record-for-record equality is the strongest obs-level check.
        let fast_trace: Vec<_> = fast.trace().iter().collect();
        let ref_trace: Vec<_> = reference.trace().iter().collect();
        assert_eq!(fast_trace, ref_trace, "trace diverged, seed {seed}");
        assert_eq!(
            fast.events().iter().count(),
            reference.events().iter().count(),
            "event counts diverged, seed {seed}"
        );
        assert_eq!(
            comparable_metrics(&fast),
            comparable_metrics(&reference),
            "metrics diverged, seed {seed}"
        );
        // The switch itself did something: only the fast run caches.
        assert!(fast.metrics().counter("eddi.cache.hit") > 0, "seed {seed}");
        assert_eq!(reference.metrics().counter("eddi.cache.hit"), 0);
    }
}

/// A degraded-mode communication-fault transition (link blackout →
/// supervision demotion → recovery) must invalidate caches, not corrupt
/// them: the fast and reference platforms stay bit-identical through the
/// whole episode, and the fast path keeps missing (re-evaluating) as the
/// evidence shifts.
#[test]
fn comm_fault_transitions_invalidate_but_stay_in_lockstep() {
    use sesame::middleware::chaos::CommFaultKind;

    let mut fast = Platform::new(platform_config(7, true));
    let mut reference = Platform::new(platform_config(7, false));
    fast.launch();
    reference.launch();
    for _ in 0..50 {
        fast.step();
        reference.step();
    }
    let misses_before = fast.metrics().counter("eddi.cache.miss");
    // Cut uav1 off for 10 s on both platforms: supervision demotes it
    // through Degraded into SafeFallback, and the ConSert evidence flips.
    for p in [&mut fast, &mut reference] {
        let now = p.now();
        p.comm_faults_mut().schedule(
            now,
            SimDuration::from_secs(10),
            CommFaultKind::LinkBlackout { uav: UavId::new(1) },
        );
    }
    for _ in 0..150 {
        fast.step();
        reference.step();
    }
    assert_eq!(fast.health(0), reference.health(0), "health diverged");
    let fast_trace: Vec<_> = fast.trace().iter().collect();
    let ref_trace: Vec<_> = reference.trace().iter().collect();
    assert_eq!(fast_trace, ref_trace, "trace diverged across the fault");
    assert_eq!(comparable_metrics(&fast), comparable_metrics(&reference));
    let misses_after = fast.metrics().counter("eddi.cache.miss");
    assert!(
        misses_after > misses_before,
        "the transition must force re-evaluations ({misses_before} -> {misses_after})"
    );
}
