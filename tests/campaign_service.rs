//! Tier-1 campaign-service gate: the full client-to-replay path over a
//! live TCP server, including a kill-and-restart with the digest-chained
//! run log as the only surviving state.
//!
//! The CI-scale soak (8 clients × 34 campaigns with latency gates) lives
//! in `serverbench`; this test keeps a deterministic, seconds-scale
//! slice of the same guarantees in the default suite:
//!
//! * submit → run → stream → replay over the wire, bit-identical;
//! * kill mid-campaign, restart on the same log, recovered and fresh
//!   runs agree; and
//! * the replay digest equals the live digest computed by the plain
//!   batch path (`ScenarioBuilder` + `digest_platform`) for the same
//!   source and seed — the service adds scheduling, never simulation
//!   drift.

use sesame::core::checkpoint::digest_platform;
use sesame::scenario_dsl::Compiler;
use sesame::server::{
    replay_offline, Client, JobId, JobSpec, JobState, Server, ServerConfig, ServerRuntime,
    StreamEvent,
};
use sesame::types::time::SimTime;
use std::path::PathBuf;

const SRC: &str = r#"
scenario "campaign_gate" {
    world { area = (80.0, 60.0), persons = 2 }
    mission { deadline = 120s }
}
"#;
const CLAMP_MS: u64 = 8_000;

fn tmp(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!(
        "sesame-campaign-{}-{name}.runlog",
        std::process::id()
    ));
    p
}

fn config(workers: usize) -> ServerConfig {
    ServerConfig {
        workers,
        snapshot_every_ticks: 10,
    }
}

/// The digest the plain batch path computes for one seed of `SRC`,
/// bypassing the service entirely.
fn batch_digest(seed: u64) -> u64 {
    let compiled = Compiler::new()
        .compile_str("campaign_gate", SRC)
        .expect("compiles")
        .into_iter()
        .next()
        .expect("one scenario")
        .with_deadline_clamped(SimTime::from_millis(CLAMP_MS));
    let mut scenario = compiled.builder(seed).build();
    scenario.launch();
    loop {
        let now = scenario.step_once();
        if scenario.should_stop(now) {
            break;
        }
    }
    digest_platform(scenario.platform())
}

#[test]
fn service_run_equals_batch_run_and_replays_over_the_wire() {
    let path = tmp("wire");
    std::fs::remove_file(&path).ok();
    let rt = ServerRuntime::start(&path, config(2)).expect("start");
    let mut server = Server::bind(rt.clone(), "127.0.0.1:0").expect("bind");
    let mut client = Client::connect(server.addr()).expect("connect");

    let id = client
        .submit(&JobSpec::new("campaign_gate", SRC, 5, 2).clamp_ms(CLAMP_MS))
        .expect("submit");
    let status = client.wait(id).expect("wait");
    assert!(status.is_completed(), "campaign finished: {}", status.line);
    assert_eq!(status.completed_runs, 2);

    // Replay over the wire is digest-identical for every seed.
    for seed in [5, 6] {
        assert!(client.replay(id, seed).expect("replay"), "seed {seed}");
    }
    // And the service computed exactly what the batch path computes —
    // the job runtime adds scheduling, not simulation drift.
    let report = rt.replay(id, 5).expect("replay in-process");
    assert_eq!(report.logged.digest, batch_digest(5));

    // The event stream for a finished job closes cleanly.
    let mut streamer = Client::connect(server.addr()).expect("connect streamer");
    streamer.stream(Some(id), |_| {}).expect("stream closes");

    server.stop();
    rt.shutdown();
    std::fs::remove_file(&path).ok();
}

#[test]
fn kill_and_restart_preserves_and_completes_campaigns() {
    let path = tmp("restart");
    std::fs::remove_file(&path).ok();

    // Life 1: one worker, a campaign wider than the pool, killed as
    // soon as the first run is durably logged.
    let rt = ServerRuntime::start(&path, config(1)).expect("start");
    let id = rt
        .submit(JobSpec::new("campaign_gate", SRC, 0, 4).clamp_ms(CLAMP_MS))
        .expect("submit");
    let rx = rt.subscribe(Some(id));
    loop {
        let ev = rx.recv().expect("stream open");
        if matches!(&*ev, StreamEvent::RunCompleted { .. }) {
            break;
        }
    }
    rt.shutdown();
    let mid = rt.status(id).expect("status");
    assert!(
        mid.completed_runs < 4,
        "kill landed mid-campaign ({} runs)",
        mid.completed_runs
    );
    let logged_before = mid.digests.clone();

    // Life 2: a differently sized pool recovers the same log and
    // finishes the campaign.
    let rt2 = ServerRuntime::start(&path, config(3)).expect("restart");
    let done = rt2.wait(id).expect("wait");
    assert_eq!(done.state, JobState::Completed);
    assert_eq!(done.completed_runs, 4);
    assert!(done.recovered_runs >= 1, "log carried runs across the kill");
    // Pre-kill digests survive verbatim; every seed replays
    // bit-identically; and both process lives agree with the batch path.
    for (seed, fact) in &logged_before {
        assert_eq!(done.digests.get(seed), Some(fact));
    }
    for seed in 0..4 {
        assert!(rt2.replay(id, seed).expect("replay").matches());
        assert_eq!(done.digests[&seed].digest, batch_digest(seed));
    }
    rt2.shutdown();

    // The log alone — no server — still proves what ran.
    let offline = replay_offline(&path, id, 0).expect("offline replay");
    assert!(offline.matches());
    std::fs::remove_file(&path).ok();
}

#[test]
fn concurrent_campaigns_multiplex_one_pool_without_interference() {
    let path = tmp("multiplex");
    std::fs::remove_file(&path).ok();
    let rt = ServerRuntime::start(&path, config(3)).expect("start");
    // Three campaigns over overlapping seed ranges, submitted at once.
    let ids: Vec<JobId> = (0..3)
        .map(|i| {
            rt.submit(JobSpec::new("campaign_gate", SRC, i, 2).clamp_ms(CLAMP_MS))
                .expect("submit")
        })
        .collect();
    for id in &ids {
        let status = rt.wait(*id).expect("wait");
        assert_eq!(
            status.state,
            JobState::Completed,
            "{}",
            status.render_line()
        );
    }
    // Overlapping seeds agree across campaigns: the digest depends on
    // (source, seed), never on which job or worker ran it.
    let a = rt.status(ids[0]).expect("status a");
    let b = rt.status(ids[1]).expect("status b");
    assert_eq!(a.digests[&1], b.digests[&1]);
    rt.shutdown();
    std::fs::remove_file(&path).ok();
}
