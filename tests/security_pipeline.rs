//! Cross-crate integration: the full security pipeline outside the
//! platform — forged traffic on the bus → IDS → alert broker → Security
//! EDDI attack-tree root → mitigation evidence in the ConSert network.

use sesame::conserts::catalog::{self, UavAction, UavEvidence};
use sesame::middleware::attack::{AttackInjector, AttackKind};
use sesame::middleware::auth::{AuthKey, MessageAuth};
use sesame::middleware::broker::AlertBroker;
use sesame::middleware::bus::MessageBus;
use sesame::middleware::message::Payload;
use sesame::security::catalog as attack_catalog;
use sesame::security::eddi::SecurityEddi;
use sesame::security::ids::{Ids, IdsConfig};
use sesame::types::geo::GeoPoint;
use sesame::types::ids::UavId;
use sesame::types::time::SimTime;

/// Drives forged waypoints through bus → IDS → broker → EDDI and checks
/// the root is reached, then flips the ConSert evidence and observes the
/// mitigation action.
#[test]
fn forged_waypoints_reach_attack_tree_root_and_flip_conserts() {
    let auth = MessageAuth::new(AuthKey::new(77));
    let mut bus = MessageBus::seeded(1);
    let tap = bus.subscribe("#");
    let mut ids = Ids::new(IdsConfig::default(), Some(auth));
    let mut broker = AlertBroker::new();
    let mut eddi = SecurityEddi::attach(attack_catalog::ros_message_spoofing(), &mut broker);

    let uav = UavId::new(1);
    let base = GeoPoint::new(35.0, 33.0, 0.0);
    // The legitimate plan runs east; register it with the IDS.
    let plan: Vec<GeoPoint> = (0..5)
        .map(|i| base.destination(90.0, i as f64 * 50.0).with_alt(30.0))
        .collect();
    ids.register_plan(uav, plan);

    // The adversary forges an unsigned waypoint a kilometre off the plan.
    let mut attacker = AttackInjector::arm(
        &mut bus,
        AttackKind::Spoof {
            impersonate: "node:gcs".into(),
            topic: format!("/{uav}/cmd/waypoint"),
        },
    );
    attacker.spoof_waypoint(
        &mut bus,
        SimTime::from_secs(10),
        uav,
        base.destination(0.0, 1000.0).with_alt(30.0),
    );
    bus.step(SimTime::from_secs(11));

    // IDS inspects the tapped traffic and publishes alerts.
    let mut n_alerts = 0;
    for msg in bus.drain(tap).expect("tap is live") {
        for alert in ids.inspect(&msg, SimTime::from_secs(11)) {
            n_alerts += 1;
            broker.publish(
                SimTime::from_secs(11),
                "ids",
                format!("ids/alerts/{}", alert.subject),
                Payload::Alert {
                    rule: alert.rule,
                    subject: alert.subject,
                    detail: alert.detail,
                },
            );
        }
    }
    assert!(
        n_alerts >= 2,
        "unsigned_publisher and waypoint_deviation must both fire, got {n_alerts}"
    );

    // The Security EDDI reaches the adversary's goal.
    let detections = eddi.poll(&mut broker, SimTime::from_secs(11));
    assert_eq!(detections.len(), 1);
    let status = &detections[0];
    assert_eq!(status.uav, uav);
    assert!(status
        .attack_path
        .iter()
        .any(|s| s.contains("forge waypoint")));

    // The detection flows into the ConSert layer as `no_attack = false`:
    // GPS navigation is decertified and the fleet falls back.
    let network = catalog::uav_consert_network("uav1");
    let nominal = catalog::evaluate_uav(&network, "uav1", &UavEvidence::nominal()).unwrap();
    assert_eq!(nominal, UavAction::ContinueCanTakeMore);
    let attacked = catalog::evaluate_uav(
        &network,
        "uav1",
        &UavEvidence {
            no_attack: false,
            ..UavEvidence::nominal()
        },
    )
    .unwrap();
    assert_eq!(
        attacked,
        UavAction::ContinueMission,
        "collaborative fallback"
    );
}

/// Signed traffic passes the same pipeline silently.
#[test]
fn signed_traffic_raises_no_alerts() {
    let auth = MessageAuth::new(AuthKey::new(77));
    let mut bus = MessageBus::seeded(1);
    let tap = bus.subscribe("#");
    let mut ids = Ids::new(IdsConfig::default(), Some(auth));
    let uav = UavId::new(1);
    let base = GeoPoint::new(35.0, 33.0, 0.0);
    ids.register_plan(uav, vec![base.with_alt(30.0)]);

    // A legitimate, signed, on-plan command.
    let mut msg = sesame::middleware::message::Message::new(
        format!("/{uav}/cmd/waypoint"),
        "node:gcs",
        0,
        SimTime::from_secs(1),
        Payload::WaypointCommand {
            uav,
            waypoint: base.with_alt(30.0),
        },
    );
    auth.sign(&mut msg);
    bus.publish_message(msg);
    bus.step(SimTime::from_secs(2));
    let mut alerts = 0;
    for m in bus.drain(tap).expect("tap is live") {
        alerts += ids.inspect(&m, SimTime::from_secs(2)).len();
    }
    assert_eq!(alerts, 0);
}

/// A man-in-the-middle tamper invalidates the signature and the IDS flags
/// it, reaching the MITM tree root.
#[test]
fn mitm_tamper_detected_end_to_end() {
    let auth = MessageAuth::new(AuthKey::new(9));
    let mut bus = MessageBus::seeded(2);
    let tap = bus.subscribe("#");
    let mut ids = Ids::new(IdsConfig::default(), Some(auth));
    let mut broker = AlertBroker::new();
    let mut eddi = SecurityEddi::attach(attack_catalog::mitm_command_channel(), &mut broker);

    let uav = UavId::new(2);
    let base = GeoPoint::new(35.0, 33.0, 0.0);
    ids.register_plan(uav, vec![base.with_alt(30.0)]);

    let mut attacker = AttackInjector::arm(
        &mut bus,
        AttackKind::Mitm {
            pattern: format!("/{uav}/cmd/#"),
        },
    );
    // The offset is large enough to also leave the plan corridor.
    attacker.install_waypoint_offset(&mut bus, 0.01, 0.0);

    let mut msg = sesame::middleware::message::Message::new(
        format!("/{uav}/cmd/waypoint"),
        "node:gcs",
        0,
        SimTime::from_secs(1),
        Payload::WaypointCommand {
            uav,
            waypoint: base.with_alt(30.0),
        },
    );
    auth.sign(&mut msg);
    bus.publish_message(msg);
    bus.step(SimTime::from_secs(2));

    let mut rules = Vec::new();
    for m in bus.drain(tap).expect("tap is live") {
        for alert in ids.inspect(&m, SimTime::from_secs(2)) {
            rules.push(alert.rule.clone());
            broker.publish(
                SimTime::from_secs(2),
                "ids",
                format!("ids/alerts/{}", alert.subject),
                Payload::Alert {
                    rule: alert.rule,
                    subject: alert.subject,
                    detail: alert.detail,
                },
            );
        }
    }
    assert!(rules.contains(&"bad_signature".to_string()), "{rules:?}");
    // The MITM tree needs bad_signature + waypoint deviation; the IDS maps
    // plan deviation to "waypoint_deviation" which belongs to the spoofing
    // tree, so feed the MITM-specific leaf from the deviation finding.
    if rules.contains(&"waypoint_deviation".to_string()) {
        broker.publish(
            SimTime::from_secs(2),
            "ids",
            format!("ids/alerts/{uav}"),
            Payload::Alert {
                rule: "waypoint_deviation_mitm".into(),
                subject: uav,
                detail: "plan deviation on tampered channel".into(),
            },
        );
    }
    let detections = eddi.poll(&mut broker, SimTime::from_secs(2));
    assert_eq!(detections.len(), 1, "MITM goal must be reached");
}
