//! TK-coverage: the adequacy score of a test set.
//!
//! DeepKnowledge "provides a coverage score that captures model behaviour"
//! (§III-A3). For each transfer-knowledge neuron, its in-domain activation
//! interval is divided into `k` bins; a test set *covers* a bin when some
//! test input drives the neuron's activation into it. The coverage score
//! is the covered fraction over all TK neurons — a test set that never
//! exercises the knowledge-carrying regions scores low, however large it
//! is.

use crate::nn::Mlp;
use crate::transfer::TransferAnalyzer;

/// The result of a coverage evaluation.
#[derive(Debug, Clone, PartialEq)]
pub struct CoverageReport {
    /// Covered bins / total bins, in `[0, 1]`.
    pub score: f64,
    /// Per-TK-neuron covered-bin counts.
    pub per_neuron_covered: Vec<usize>,
    /// Bins per neuron used for the evaluation.
    pub bins: usize,
}

/// Computes the TK-coverage of `test_set` on `model` under a prior
/// [`TransferAnalyzer`] run.
///
/// # Panics
///
/// Panics if `bins == 0` or the test set is empty.
///
/// # Examples
///
/// ```
/// use sesame_deepknowledge::coverage::tk_coverage;
/// use sesame_deepknowledge::nn::{Activation, Mlp};
/// use sesame_deepknowledge::transfer::TransferAnalyzer;
///
/// let model = Mlp::new(&[2, 6, 1], Activation::Tanh, 2);
/// let data: Vec<Vec<f64>> = (0..60).map(|i| vec![(i as f64 * 0.1).sin(), 0.3]).collect();
/// let analyzer = TransferAnalyzer::analyze(&model, &data, &data, 0.5);
/// let report = tk_coverage(&model, &analyzer, &data, 10);
/// assert!(report.score > 0.2);
/// ```
pub fn tk_coverage(
    model: &Mlp,
    analyzer: &TransferAnalyzer,
    test_set: &[Vec<f64>],
    bins: usize,
) -> CoverageReport {
    assert!(bins > 0, "need at least one bin");
    assert!(!test_set.is_empty(), "test set must not be empty");
    let tk = analyzer.tk_neurons();
    let intervals = analyzer.reference_intervals();
    let mut covered = vec![vec![false; bins]; tk.len()];
    for input in test_set {
        let (_, trace) = model.forward_traced(input);
        for (t, (id, (lo, hi))) in tk.iter().zip(intervals.iter()).enumerate() {
            let a = trace[id.0];
            let width = (hi - lo).max(1e-12);
            let pos = (a - lo) / width;
            if (0.0..=1.0).contains(&pos) {
                let bin = ((pos * bins as f64) as usize).min(bins - 1);
                covered[t][bin] = true;
            }
        }
    }
    let per_neuron_covered: Vec<usize> = covered
        .iter()
        .map(|c| c.iter().filter(|b| **b).count())
        .collect();
    let total = bins * tk.len();
    let score = per_neuron_covered.iter().sum::<usize>() as f64 / total as f64;
    CoverageReport {
        score,
        per_neuron_covered,
        bins,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nn::Activation;

    fn setup() -> (Mlp, TransferAnalyzer, Vec<Vec<f64>>) {
        let model = Mlp::new(&[2, 8, 1], Activation::Tanh, 4);
        let data: Vec<Vec<f64>> = (0..100)
            .map(|i| vec![(i as f64 * 0.17).sin(), (i as f64 * 0.07).cos()])
            .collect();
        let analyzer = TransferAnalyzer::analyze(&model, &data, &data, 0.5);
        (model, analyzer, data)
    }

    #[test]
    fn full_training_set_covers_well() {
        let (model, analyzer, data) = setup();
        let r = tk_coverage(&model, &analyzer, &data, 8);
        assert!(r.score > 0.5, "score = {}", r.score);
        assert_eq!(r.bins, 8);
        assert_eq!(r.per_neuron_covered.len(), analyzer.tk_neurons().len());
    }

    #[test]
    fn single_input_covers_little() {
        let (model, analyzer, data) = setup();
        let one = vec![data[0].clone()];
        let r = tk_coverage(&model, &analyzer, &one, 8);
        // One input hits at most one bin per neuron.
        assert!(r.score <= 1.0 / 8.0 + 1e-12);
        assert!(r.per_neuron_covered.iter().all(|c| *c <= 1));
    }

    #[test]
    fn coverage_is_monotone_in_test_set() {
        let (model, analyzer, data) = setup();
        let small = tk_coverage(&model, &analyzer, &data[..5], 8).score;
        let large = tk_coverage(&model, &analyzer, &data, 8).score;
        assert!(large >= small);
    }

    #[test]
    fn out_of_interval_activations_do_not_count() {
        let (model, analyzer, _) = setup();
        // Inputs far outside the training manifold saturate tanh neurons
        // outside their reference intervals.
        let wild: Vec<Vec<f64>> = (0..20).map(|i| vec![100.0 + i as f64, -100.0]).collect();
        let r = tk_coverage(&model, &analyzer, &wild, 8);
        assert!(r.score < 0.3, "score = {}", r.score);
    }

    #[test]
    #[should_panic(expected = "at least one bin")]
    fn zero_bins_panics() {
        let (model, analyzer, data) = setup();
        let _ = tk_coverage(&model, &analyzer, &data, 0);
    }

    #[test]
    #[should_panic(expected = "test set")]
    fn empty_test_set_panics() {
        let (model, analyzer, _) = setup();
        let _ = tk_coverage(&model, &analyzer, &[], 4);
    }
}
