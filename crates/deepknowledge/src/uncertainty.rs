//! Runtime uncertainty from TK-neuron activation traces.
//!
//! The runtime phase of DeepKnowledge: for each incoming input, check how
//! many transfer-knowledge neurons are activated *outside* their in-domain
//! reference interval. The farther the trace strays from known behaviour,
//! the less the model's prediction should be trusted. The per-input score
//! is smoothed over a sliding window so the ConSert layer sees a stable
//! signal.

use crate::nn::Mlp;
use crate::transfer::TransferAnalyzer;
use std::collections::VecDeque;

/// The runtime uncertainty monitor.
///
/// # Examples
///
/// ```
/// use sesame_deepknowledge::nn::{Activation, Mlp};
/// use sesame_deepknowledge::transfer::TransferAnalyzer;
/// use sesame_deepknowledge::uncertainty::UncertaintyMonitor;
///
/// let model = Mlp::new(&[2, 6, 1], Activation::Tanh, 2);
/// let data: Vec<Vec<f64>> = (0..60).map(|i| vec![(i as f64 * 0.1).sin(), 0.2]).collect();
/// let analyzer = TransferAnalyzer::analyze(&model, &data, &data, 0.5);
/// let mut mon = UncertaintyMonitor::new(analyzer, 10);
/// let u = mon.assess(&model, &data[0]);
/// assert!((0.0..=1.0).contains(&u));
/// ```
#[derive(Debug, Clone)]
pub struct UncertaintyMonitor {
    analyzer: TransferAnalyzer,
    window: VecDeque<f64>,
    window_len: usize,
    /// Forward-pass working buffers (output, trace, ping-pong), reused
    /// across ticks so steady-state assessments allocate nothing. Pure
    /// accelerator state.
    fwd_out: Vec<f64>,
    fwd_trace: Vec<f64>,
    fwd_scratch: Vec<f64>,
}

impl UncertaintyMonitor {
    /// Creates a monitor smoothing over `window_len` inputs.
    ///
    /// # Panics
    ///
    /// Panics if `window_len == 0`.
    pub fn new(analyzer: TransferAnalyzer, window_len: usize) -> Self {
        assert!(window_len > 0, "window must hold at least one sample");
        UncertaintyMonitor {
            analyzer,
            window: VecDeque::new(),
            window_len,
            fwd_out: Vec::new(),
            fwd_trace: Vec::new(),
            fwd_scratch: Vec::new(),
        }
    }

    /// Scores one input and folds it into the window; returns the smoothed
    /// uncertainty in `[0, 1]`. Reuses the monitor's forward-pass buffers:
    /// with a warm monitor this performs zero heap allocations and is
    /// bit-identical to scoring via [`UncertaintyMonitor::raw_uncertainty`].
    pub fn assess(&mut self, model: &Mlp, input: &[f64]) -> f64 {
        model.forward_traced_into(
            input,
            &mut self.fwd_out,
            &mut self.fwd_trace,
            &mut self.fwd_scratch,
        );
        let raw = Self::score_trace(&self.analyzer, &self.fwd_trace);
        if self.window.len() == self.window_len {
            self.window.pop_front();
        }
        self.window.push_back(raw);
        self.uncertainty()
    }

    /// The instantaneous (unsmoothed) uncertainty of one input: the
    /// fraction of TK neurons activated outside their reference interval,
    /// with a soft margin of 10 % of the interval width.
    pub fn raw_uncertainty(&self, model: &Mlp, input: &[f64]) -> f64 {
        let (_, trace) = model.forward_traced(input);
        Self::score_trace(&self.analyzer, &trace)
    }

    fn score_trace(analyzer: &TransferAnalyzer, trace: &[f64]) -> f64 {
        let tk = analyzer.tk_neurons();
        let intervals = analyzer.reference_intervals();
        let mut outside = 0.0;
        for (id, (lo, hi)) in tk.iter().zip(intervals.iter()) {
            let a = trace[id.0];
            let margin = 0.1 * (hi - lo).max(1e-9);
            if a < lo - margin || a > hi + margin {
                outside += 1.0;
            }
        }
        outside / tk.len() as f64
    }

    /// The current smoothed uncertainty (0 before any input).
    pub fn uncertainty(&self) -> f64 {
        if self.window.is_empty() {
            return 0.0;
        }
        self.window.iter().sum::<f64>() / self.window.len() as f64
    }

    /// The design-time generalization score carried over from analysis.
    pub fn generalization_score(&self) -> f64 {
        self.analyzer.generalization_score()
    }
}

#[cfg(test)]
#[allow(clippy::field_reassign_with_default)]
mod tests {
    use super::*;
    use crate::nn::Activation;

    fn setup() -> (Mlp, UncertaintyMonitor, Vec<Vec<f64>>) {
        let model = Mlp::new(&[2, 10, 1], Activation::Tanh, 6);
        let data: Vec<Vec<f64>> = (0..100)
            .map(|i| vec![(i as f64 * 0.13).sin(), (i as f64 * 0.19).cos()])
            .collect();
        let analyzer = TransferAnalyzer::analyze(&model, &data, &data, 0.5);
        let mon = UncertaintyMonitor::new(analyzer, 20);
        (model, mon, data)
    }

    #[test]
    fn in_domain_inputs_are_low_uncertainty() {
        let (model, mut mon, data) = setup();
        for input in &data {
            mon.assess(&model, input);
        }
        assert!(mon.uncertainty() < 0.25, "u = {}", mon.uncertainty());
    }

    #[test]
    fn out_of_domain_inputs_raise_uncertainty() {
        let (model, mut mon, data) = setup();
        for input in &data {
            mon.assess(&model, input);
        }
        let low = mon.uncertainty();
        for i in 0..40 {
            mon.assess(&model, &[50.0 + i as f64, -40.0]);
        }
        let high = mon.uncertainty();
        assert!(high > low + 0.3, "{low} -> {high}");
    }

    #[test]
    fn window_recovers_after_shift_ends() {
        let (model, mut mon, data) = setup();
        for i in 0..30 {
            mon.assess(&model, &[50.0 + i as f64, -40.0]);
        }
        let bad = mon.uncertainty();
        for input in &data {
            mon.assess(&model, input);
        }
        assert!(mon.uncertainty() < bad);
    }

    #[test]
    fn empty_monitor_reports_zero() {
        let (_, mon, _) = setup();
        assert_eq!(mon.uncertainty(), 0.0);
        assert!(mon.generalization_score() > 0.9);
    }

    #[test]
    #[should_panic(expected = "window")]
    fn zero_window_panics() {
        let (_, mon, _) = setup();
        let _ = UncertaintyMonitor::new(mon.analyzer, 0);
    }
}
