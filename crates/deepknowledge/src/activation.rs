//! Per-neuron activation statistics over datasets.

use crate::nn::Mlp;

/// Statistics of one hidden neuron's activations over a dataset.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NeuronStats {
    /// Sample mean.
    pub mean: f64,
    /// Sample standard deviation.
    pub std: f64,
    /// Minimum observed activation.
    pub min: f64,
    /// Maximum observed activation.
    pub max: f64,
    /// 5th percentile.
    pub q05: f64,
    /// 95th percentile.
    pub q95: f64,
}

/// Activation traces of a whole dataset: one column of values per hidden
/// neuron.
///
/// # Examples
///
/// ```
/// use sesame_deepknowledge::activation::ActivationStats;
/// use sesame_deepknowledge::nn::{Activation, Mlp};
///
/// let mlp = Mlp::new(&[2, 4, 1], Activation::Tanh, 1);
/// let data: Vec<Vec<f64>> = (0..50).map(|i| vec![i as f64 * 0.01, 0.5]).collect();
/// let stats = ActivationStats::collect(&mlp, &data);
/// assert_eq!(stats.neuron_count(), 4);
/// ```
#[derive(Debug, Clone)]
pub struct ActivationStats {
    /// columns[neuron] = activations over the dataset.
    columns: Vec<Vec<f64>>,
}

impl ActivationStats {
    /// Runs `model` over every input in `dataset` and collects the hidden
    /// traces.
    ///
    /// # Panics
    ///
    /// Panics if the dataset is empty or inputs have the wrong width.
    pub fn collect(model: &Mlp, dataset: &[Vec<f64>]) -> Self {
        assert!(!dataset.is_empty(), "dataset must not be empty");
        let width = model.hidden_neuron_count();
        let mut columns = vec![Vec::with_capacity(dataset.len()); width];
        for input in dataset {
            let (_, trace) = model.forward_traced(input);
            for (c, v) in trace.into_iter().enumerate() {
                columns[c].push(v);
            }
        }
        ActivationStats { columns }
    }

    /// Number of hidden neurons traced.
    pub fn neuron_count(&self) -> usize {
        self.columns.len()
    }

    /// The raw activation column of one neuron.
    ///
    /// # Panics
    ///
    /// Panics if `neuron` is out of range.
    pub fn column(&self, neuron: usize) -> &[f64] {
        &self.columns[neuron]
    }

    /// Summary statistics for one neuron.
    ///
    /// # Panics
    ///
    /// Panics if `neuron` is out of range.
    pub fn stats(&self, neuron: usize) -> NeuronStats {
        let col = &self.columns[neuron];
        let n = col.len() as f64;
        let mean = col.iter().sum::<f64>() / n;
        let var = col.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / n;
        let mut sorted = col.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        let q = |p: f64| {
            let idx = ((p * n).ceil() as usize).clamp(1, sorted.len()) - 1;
            sorted[idx]
        };
        NeuronStats {
            mean,
            std: var.sqrt(),
            min: sorted[0],
            max: *sorted.last().unwrap(),
            q05: q(0.05),
            q95: q(0.95),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nn::Activation;

    fn model() -> Mlp {
        Mlp::new(&[2, 6, 3, 1], Activation::Tanh, 11)
    }

    fn dataset(n: usize) -> Vec<Vec<f64>> {
        (0..n)
            .map(|i| vec![(i as f64 * 0.37).sin(), (i as f64 * 0.71).cos()])
            .collect()
    }

    #[test]
    fn collects_one_column_per_hidden_neuron() {
        let m = model();
        let st = ActivationStats::collect(&m, &dataset(40));
        assert_eq!(st.neuron_count(), 9);
        assert_eq!(st.column(0).len(), 40);
    }

    #[test]
    fn stats_are_internally_consistent() {
        let m = model();
        let st = ActivationStats::collect(&m, &dataset(100));
        for n in 0..st.neuron_count() {
            let s = st.stats(n);
            assert!(s.min <= s.q05 && s.q05 <= s.q95 && s.q95 <= s.max);
            assert!(s.min <= s.mean && s.mean <= s.max);
            assert!(s.std >= 0.0);
        }
    }

    #[test]
    fn constant_input_gives_zero_std() {
        let m = model();
        let data = vec![vec![0.5, 0.5]; 30];
        let st = ActivationStats::collect(&m, &data);
        for n in 0..st.neuron_count() {
            assert!(st.stats(n).std < 1e-12);
        }
    }

    #[test]
    #[should_panic(expected = "must not be empty")]
    fn empty_dataset_panics() {
        let m = model();
        let _ = ActivationStats::collect(&m, &[]);
    }
}
