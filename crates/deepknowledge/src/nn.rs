//! A from-scratch multilayer perceptron with activation capture.
//!
//! Small, dependency-free, deterministic. Hidden layers use a configurable
//! activation; the output layer is sigmoid (the network is used as a
//! detector-confidence head). Training is plain SGD on squared error —
//! enough to make activation-trace analysis meaningful on a *really
//! trained* model rather than random weights.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Hidden-layer activation functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Activation {
    /// max(0, x)
    Relu,
    /// tanh(x)
    Tanh,
}

impl Activation {
    fn apply(&self, x: f64) -> f64 {
        match self {
            Activation::Relu => x.max(0.0),
            Activation::Tanh => x.tanh(),
        }
    }

    fn derivative(&self, y: f64) -> f64 {
        // In terms of the *output* y = f(x).
        match self {
            Activation::Relu => {
                if y > 0.0 {
                    1.0
                } else {
                    0.0
                }
            }
            Activation::Tanh => 1.0 - y * y,
        }
    }
}

#[derive(Debug, Clone)]
struct Layer {
    /// weights[out][in]
    weights: Vec<Vec<f64>>,
    biases: Vec<f64>,
}

/// The multilayer perceptron. See the crate docs for a training example.
#[derive(Debug, Clone)]
pub struct Mlp {
    layers: Vec<Layer>,
    hidden_activation: Activation,
    sizes: Vec<usize>,
}

impl Mlp {
    /// Creates a network with the given layer sizes (`[input, hidden...,
    /// output]`), Xavier-ish random init from `seed`.
    ///
    /// # Panics
    ///
    /// Panics if fewer than two sizes are given or any size is zero.
    pub fn new(sizes: &[usize], hidden_activation: Activation, seed: u64) -> Self {
        assert!(sizes.len() >= 2, "need at least input and output layers");
        assert!(sizes.iter().all(|s| *s > 0), "layer sizes must be positive");
        let mut rng = StdRng::seed_from_u64(seed);
        let mut layers = Vec::with_capacity(sizes.len() - 1);
        for w in sizes.windows(2) {
            let (n_in, n_out) = (w[0], w[1]);
            let scale = (2.0 / (n_in + n_out) as f64).sqrt();
            let weights = (0..n_out)
                .map(|_| {
                    (0..n_in)
                        .map(|_| (rng.random::<f64>() * 2.0 - 1.0) * scale)
                        .collect()
                })
                .collect();
            layers.push(Layer {
                weights,
                biases: vec![0.0; n_out],
            });
        }
        Mlp {
            layers,
            hidden_activation,
            sizes: sizes.to_vec(),
        }
    }

    /// Layer sizes including input and output.
    pub fn sizes(&self) -> &[usize] {
        &self.sizes
    }

    /// Total number of hidden neurons (the trace width).
    pub fn hidden_neuron_count(&self) -> usize {
        self.sizes[1..self.sizes.len() - 1].iter().sum()
    }

    /// Forward pass; returns the output vector.
    ///
    /// # Panics
    ///
    /// Panics if `input` length differs from the input layer size.
    pub fn forward(&self, input: &[f64]) -> Vec<f64> {
        self.forward_traced(input).0
    }

    /// Forward pass returning `(output, hidden_activations)` where the
    /// trace is the concatenation of every hidden layer's activations —
    /// the raw material of DeepKnowledge analysis.
    pub fn forward_traced(&self, input: &[f64]) -> (Vec<f64>, Vec<f64>) {
        let mut output = Vec::new();
        let mut trace = Vec::with_capacity(self.hidden_neuron_count());
        let mut scratch = Vec::new();
        self.forward_traced_into(input, &mut output, &mut trace, &mut scratch);
        (output, trace)
    }

    /// [`Mlp::forward_traced`] into caller-provided buffers — the tick
    /// loop's zero-alloc path. `output` receives the network output,
    /// `trace` the concatenated hidden activations, and `scratch` is the
    /// layer ping-pong buffer; all three are cleared first. The weighted
    /// sums run in the same order as the allocating pass, so the results
    /// are bit-identical.
    ///
    /// # Panics
    ///
    /// Panics if `input` length differs from the input layer size.
    pub fn forward_traced_into(
        &self,
        input: &[f64],
        output: &mut Vec<f64>,
        trace: &mut Vec<f64>,
        scratch: &mut Vec<f64>,
    ) {
        assert_eq!(input.len(), self.sizes[0], "input size mismatch");
        trace.clear();
        output.clear();
        output.extend_from_slice(input);
        let last = self.layers.len() - 1;
        for (li, layer) in self.layers.iter().enumerate() {
            scratch.clear();
            for (row, b) in layer.weights.iter().zip(layer.biases.iter()) {
                let z: f64 = row
                    .iter()
                    .zip(output.iter())
                    .map(|(w, xi)| w * xi)
                    .sum::<f64>()
                    + b;
                let y = if li == last {
                    sigmoid(z)
                } else {
                    self.hidden_activation.apply(z)
                };
                scratch.push(y);
            }
            if li != last {
                trace.extend_from_slice(scratch);
            }
            std::mem::swap(output, scratch);
        }
    }

    /// One SGD step on squared error toward `target`. Returns the loss
    /// before the step.
    ///
    /// # Panics
    ///
    /// Panics on size mismatches or a non-positive learning rate.
    pub fn train_step(&mut self, input: &[f64], target: &[f64], lr: f64) -> f64 {
        assert!(lr > 0.0, "learning rate must be positive");
        assert_eq!(target.len(), *self.sizes.last().unwrap(), "target size");
        // Forward pass keeping every layer's outputs.
        let mut outputs: Vec<Vec<f64>> = vec![input.to_vec()];
        let last = self.layers.len() - 1;
        for (li, layer) in self.layers.iter().enumerate() {
            let x = outputs.last().unwrap();
            let mut next = Vec::with_capacity(layer.biases.len());
            for (row, b) in layer.weights.iter().zip(layer.biases.iter()) {
                let z: f64 = row.iter().zip(x.iter()).map(|(w, xi)| w * xi).sum::<f64>() + b;
                next.push(if li == last {
                    sigmoid(z)
                } else {
                    self.hidden_activation.apply(z)
                });
            }
            outputs.push(next);
        }
        let y = outputs.last().unwrap();
        let loss: f64 = y
            .iter()
            .zip(target.iter())
            .map(|(o, t)| (o - t) * (o - t))
            .sum::<f64>()
            / y.len() as f64;

        // Backward pass.
        // delta for output layer: dL/dz = 2(y - t)/n * σ'(z), σ' = y(1-y).
        let mut delta: Vec<f64> = y
            .iter()
            .zip(target.iter())
            .map(|(o, t)| 2.0 * (o - t) / y.len() as f64 * o * (1.0 - o))
            .collect();
        for li in (0..self.layers.len()).rev() {
            let x = outputs[li].clone();
            // Propagate before mutating weights.
            let prev_delta: Vec<f64> = if li > 0 {
                (0..self.layers[li].weights[0].len())
                    .map(|i| {
                        let upstream: f64 = self.layers[li]
                            .weights
                            .iter()
                            .zip(delta.iter())
                            .map(|(row, d)| row[i] * d)
                            .sum();
                        upstream * self.hidden_activation.derivative(outputs[li][i])
                    })
                    .collect()
            } else {
                Vec::new()
            };
            let layer = &mut self.layers[li];
            for (j, d) in delta.iter().enumerate() {
                for (i, xi) in x.iter().enumerate() {
                    layer.weights[j][i] -= lr * d * xi;
                }
                layer.biases[j] -= lr * d;
            }
            if li > 0 {
                delta = prev_delta;
            }
        }
        loss
    }
}

fn sigmoid(x: f64) -> f64 {
    1.0 / (1.0 + (-x).exp())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shapes_and_trace_width() {
        let mlp = Mlp::new(&[3, 5, 4, 2], Activation::Relu, 1);
        assert_eq!(mlp.sizes(), &[3, 5, 4, 2]);
        assert_eq!(mlp.hidden_neuron_count(), 9);
        let (out, trace) = mlp.forward_traced(&[0.1, 0.2, 0.3]);
        assert_eq!(out.len(), 2);
        assert_eq!(trace.len(), 9);
        assert!(out.iter().all(|o| (0.0..=1.0).contains(o)), "sigmoid out");
    }

    #[test]
    fn deterministic_init() {
        let a = Mlp::new(&[2, 4, 1], Activation::Tanh, 7);
        let b = Mlp::new(&[2, 4, 1], Activation::Tanh, 7);
        assert_eq!(a.forward(&[0.5, -0.5]), b.forward(&[0.5, -0.5]));
        let c = Mlp::new(&[2, 4, 1], Activation::Tanh, 8);
        assert_ne!(a.forward(&[0.5, -0.5]), c.forward(&[0.5, -0.5]));
    }

    #[test]
    fn training_reduces_loss() {
        let mut mlp = Mlp::new(&[2, 6, 1], Activation::Tanh, 3);
        let x = [0.3, -0.7];
        let t = [0.9];
        let first = mlp.train_step(&x, &t, 0.5);
        let mut last = first;
        for _ in 0..200 {
            last = mlp.train_step(&x, &t, 0.5);
        }
        assert!(last < first / 10.0, "loss {first} -> {last}");
    }

    #[test]
    fn learns_xor() {
        let mut mlp = Mlp::new(&[2, 8, 1], Activation::Relu, 42);
        let xs = [[0.0, 0.0], [0.0, 1.0], [1.0, 0.0], [1.0, 1.0]];
        let ys = [[0.0], [1.0], [1.0], [0.0]];
        for _ in 0..4000 {
            for (x, y) in xs.iter().zip(ys.iter()) {
                mlp.train_step(x, y, 0.1);
            }
        }
        for (x, y) in xs.iter().zip(ys.iter()) {
            let out = mlp.forward(x)[0];
            assert!(
                (out - y[0]).abs() < 0.4,
                "xor({x:?}) = {out}, want {}",
                y[0]
            );
        }
    }

    #[test]
    fn backprop_matches_finite_differences() {
        // One SGD step with learning rate ε changes the loss by about
        // −ε·‖∇L‖². Verify the analytic gradient against a numerical
        // directional derivative: perturbing the input of train_step via
        // the loss decrease it reports.
        let x = [0.4, -0.2];
        let t = [0.7];
        let lr = 1e-4;
        let mut a = Mlp::new(&[2, 5, 1], Activation::Tanh, 9);
        let loss_before = {
            let y = a.forward(&x)[0];
            (y - t[0]) * (y - t[0])
        };
        let reported = a.train_step(&x, &t, lr);
        assert!(
            (reported - loss_before).abs() < 1e-12,
            "train_step reports pre-step loss"
        );
        let loss_after = {
            let y = a.forward(&x)[0];
            (y - t[0]) * (y - t[0])
        };
        let decrease = loss_before - loss_after;
        // The decrease must be positive and of order lr (gradient descent
        // on a smooth function with a tiny step).
        assert!(
            decrease > 0.0,
            "loss must decrease: {loss_before} -> {loss_after}"
        );
        assert!(decrease < loss_before, "a tiny step cannot erase the loss");
        // Second-order check: halving the learning rate roughly halves the
        // first-order decrease.
        let mut b = Mlp::new(&[2, 5, 1], Activation::Tanh, 9);
        b.train_step(&x, &t, lr / 2.0);
        let half_after = {
            let y = b.forward(&x)[0];
            (y - t[0]) * (y - t[0])
        };
        let half_decrease = loss_before - half_after;
        let ratio = decrease / half_decrease;
        assert!(
            (1.6..2.4).contains(&ratio),
            "linear regime ratio {ratio} (expected ≈2)"
        );
    }

    #[test]
    fn relu_trace_is_nonnegative() {
        let mlp = Mlp::new(&[2, 10, 1], Activation::Relu, 5);
        let (_, trace) = mlp.forward_traced(&[1.0, -1.0]);
        assert!(trace.iter().all(|a| *a >= 0.0));
    }

    #[test]
    #[should_panic(expected = "input size mismatch")]
    fn wrong_input_size_panics() {
        let mlp = Mlp::new(&[2, 3, 1], Activation::Relu, 1);
        let _ = mlp.forward(&[1.0]);
    }

    #[test]
    #[should_panic(expected = "at least input and output")]
    fn too_few_layers_panics() {
        let _ = Mlp::new(&[3], Activation::Relu, 1);
    }
}
