//! DeepKnowledge — generalisation-driven DNN testing and runtime
//! uncertainty.
//!
//! Reproduces the DeepKnowledge technology of the paper (§III-A3, \[33\]):
//! "whereas SafeML evaluates the difference between ML input and training
//! reference data, DeepKnowledge assesses the internal neuron behaviours of
//! the given ML model". The pipeline:
//!
//! 1. [`nn::Mlp`] — a real, from-scratch multilayer perceptron (forward
//!    pass with activation capture, SGD backprop training) standing in for
//!    tiny YOLOv4's backbone;
//! 2. [`activation`] — per-neuron activation statistics over datasets;
//! 3. [`transfer::TransferAnalyzer`] — the design-time phase: identify
//!    *transfer-knowledge (TK) neurons* whose activation behaviour is
//!    stable under domain shift (they carry generalizable semantics);
//! 4. [`coverage`] — the TK-coverage adequacy score for a test set;
//! 5. [`uncertainty::UncertaintyMonitor`] — the runtime phase: per-input
//!    uncertainty from how far the TK neurons' activations leave their
//!    reference intervals.
//!
//! # Examples
//!
//! ```
//! use sesame_deepknowledge::nn::{Activation, Mlp};
//!
//! let mut mlp = Mlp::new(&[2, 8, 1], Activation::Relu, 42);
//! // Learn XOR.
//! let xs = [[0.0, 0.0], [0.0, 1.0], [1.0, 0.0], [1.0, 1.0]];
//! let ys = [[0.0], [1.0], [1.0], [0.0]];
//! for _ in 0..4000 {
//!     for (x, y) in xs.iter().zip(ys.iter()) {
//!         mlp.train_step(x, y, 0.1);
//!     }
//! }
//! assert!(mlp.forward(&[1.0, 0.0])[0] > 0.5);
//! assert!(mlp.forward(&[1.0, 1.0])[0] < 0.5);
//! ```

pub mod activation;
pub mod coverage;
pub mod nn;
pub mod tester;
pub mod transfer;
pub mod uncertainty;

pub use activation::ActivationStats;
pub use coverage::CoverageReport;
pub use nn::{Activation, Mlp};
pub use transfer::{NeuronId, TransferAnalyzer};
pub use uncertainty::UncertaintyMonitor;
