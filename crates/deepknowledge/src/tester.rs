//! Generalisation-driven test selection (design-time phase).
//!
//! DeepKnowledge "enables systematic testing for computer vision
//! components" (§III-A3): beyond scoring a test set's adequacy, it guides
//! *which* inputs are worth adding. [`select_tests`] greedily picks, from
//! a candidate pool, the inputs that open the most previously-unexercised
//! TK-neuron bins — a small selected suite reaches the coverage a much
//! larger random suite would.

use crate::nn::Mlp;
use crate::transfer::TransferAnalyzer;
use std::collections::HashSet;

/// The outcome of a greedy selection round.
#[derive(Debug, Clone, PartialEq)]
pub struct SelectionReport {
    /// Indices into the candidate pool, in pick order.
    pub selected: Vec<usize>,
    /// Coverage score after each pick.
    pub coverage_trajectory: Vec<f64>,
}

/// Computes the set of (TK-neuron, bin) cells an input exercises.
fn cells_of(
    model: &Mlp,
    analyzer: &TransferAnalyzer,
    input: &[f64],
    bins: usize,
) -> HashSet<(usize, usize)> {
    let (_, trace) = model.forward_traced(input);
    let mut cells = HashSet::new();
    for (t, (id, (lo, hi))) in analyzer
        .tk_neurons()
        .iter()
        .zip(analyzer.reference_intervals().iter())
        .enumerate()
    {
        let a = trace[id.0];
        let width = (hi - lo).max(1e-12);
        let pos = (a - lo) / width;
        if (0.0..=1.0).contains(&pos) {
            let bin = ((pos * bins as f64) as usize).min(bins - 1);
            cells.insert((t, bin));
        }
    }
    cells
}

/// Greedily selects up to `budget` candidates maximizing TK coverage.
///
/// Selection stops early when no remaining candidate opens a new cell.
///
/// # Panics
///
/// Panics if `bins == 0`.
///
/// # Examples
///
/// ```
/// use sesame_deepknowledge::nn::{Activation, Mlp};
/// use sesame_deepknowledge::tester::select_tests;
/// use sesame_deepknowledge::transfer::TransferAnalyzer;
///
/// let model = Mlp::new(&[2, 6, 1], Activation::Tanh, 2);
/// let data: Vec<Vec<f64>> = (0..80).map(|i| vec![(i as f64 * 0.1).sin(), 0.3]).collect();
/// let analyzer = TransferAnalyzer::analyze(&model, &data, &data, 0.5);
/// let report = select_tests(&model, &analyzer, &data, 8, 5);
/// assert!(report.selected.len() <= 5);
/// ```
pub fn select_tests(
    model: &Mlp,
    analyzer: &TransferAnalyzer,
    candidates: &[Vec<f64>],
    bins: usize,
    budget: usize,
) -> SelectionReport {
    assert!(bins > 0, "need at least one bin");
    let total_cells = (bins * analyzer.tk_neurons().len()).max(1);
    let candidate_cells: Vec<HashSet<(usize, usize)>> = candidates
        .iter()
        .map(|c| cells_of(model, analyzer, c, bins))
        .collect();
    let mut covered: HashSet<(usize, usize)> = HashSet::new();
    let mut remaining: Vec<usize> = (0..candidates.len()).collect();
    let mut selected = Vec::new();
    let mut coverage_trajectory = Vec::new();
    while selected.len() < budget {
        let best = remaining
            .iter()
            .copied()
            .max_by_key(|&i| candidate_cells[i].difference(&covered).count());
        let Some(best) = best else { break };
        let gain = candidate_cells[best].difference(&covered).count();
        if gain == 0 {
            break;
        }
        covered.extend(candidate_cells[best].iter().copied());
        remaining.retain(|&i| i != best);
        selected.push(best);
        coverage_trajectory.push(covered.len() as f64 / total_cells as f64);
    }
    SelectionReport {
        selected,
        coverage_trajectory,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coverage::tk_coverage;
    use crate::nn::Activation;

    fn setup() -> (Mlp, TransferAnalyzer, Vec<Vec<f64>>) {
        let model = Mlp::new(&[2, 10, 1], Activation::Tanh, 8);
        let data: Vec<Vec<f64>> = (0..200)
            .map(|i| vec![(i as f64 * 0.11).sin() * 2.0, (i as f64 * 0.07).cos() * 2.0])
            .collect();
        let analyzer = TransferAnalyzer::analyze(&model, &data, &data, 0.5);
        (model, analyzer, data)
    }

    #[test]
    fn selection_respects_budget_and_is_distinct() {
        let (model, analyzer, data) = setup();
        let report = select_tests(&model, &analyzer, &data, 8, 10);
        assert!(report.selected.len() <= 10);
        let mut distinct = report.selected.clone();
        distinct.sort_unstable();
        distinct.dedup();
        assert_eq!(distinct.len(), report.selected.len());
        assert_eq!(report.coverage_trajectory.len(), report.selected.len());
    }

    #[test]
    fn coverage_trajectory_is_strictly_increasing() {
        let (model, analyzer, data) = setup();
        let report = select_tests(&model, &analyzer, &data, 8, 20);
        for w in report.coverage_trajectory.windows(2) {
            assert!(w[1] > w[0], "every pick must open a new cell");
        }
    }

    #[test]
    fn selected_suite_beats_random_prefix_of_same_size() {
        let (model, analyzer, data) = setup();
        let k = 8;
        let report = select_tests(&model, &analyzer, &data, 8, k);
        let selected_set: Vec<Vec<f64>> =
            report.selected.iter().map(|&i| data[i].clone()).collect();
        let random_prefix: Vec<Vec<f64>> = data[..k].to_vec();
        let sel_cov = tk_coverage(&model, &analyzer, &selected_set, 8).score;
        let rand_cov = tk_coverage(&model, &analyzer, &random_prefix, 8).score;
        assert!(
            sel_cov >= rand_cov,
            "greedy {sel_cov} must not lose to the prefix {rand_cov}"
        );
    }

    #[test]
    fn duplicate_candidates_add_nothing() {
        let (model, analyzer, data) = setup();
        let dup: Vec<Vec<f64>> = vec![data[0].clone(); 30];
        let report = select_tests(&model, &analyzer, &dup, 8, 10);
        assert_eq!(report.selected.len(), 1, "one copy exhausts the gain");
    }

    #[test]
    fn empty_pool_selects_nothing() {
        let (model, analyzer, _) = setup();
        let report = select_tests(&model, &analyzer, &[], 8, 5);
        assert!(report.selected.is_empty());
        assert!(report.coverage_trajectory.is_empty());
    }
}
