//! Transfer-knowledge neuron identification (design-time phase).
//!
//! DeepKnowledge is "built on foundational concepts of model
//! generalization" (\[33\], \[34\]): it probes which neurons keep a stable
//! activation behaviour when the input domain shifts — those neurons carry
//! *transferable* knowledge, and the model's reliability on new data is
//! judged through them. We quantify per-neuron behaviour change as the
//! Kolmogorov–Smirnov distance between the neuron's activation
//! distributions on the in-domain and shifted datasets and select the
//! most stable fraction as TK neurons.

use crate::activation::ActivationStats;
use crate::nn::Mlp;
use sesame_safeml::distance::kolmogorov_smirnov;

/// Index of a hidden neuron (position in the concatenated trace).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NeuronId(pub usize);

/// Result of the design-time analysis.
#[derive(Debug, Clone)]
pub struct TransferAnalyzer {
    tk_neurons: Vec<NeuronId>,
    shifts: Vec<f64>,
    /// Reference `[q05, q95]` interval per TK neuron, from in-domain data.
    reference_intervals: Vec<(f64, f64)>,
    generalization_score: f64,
}

impl TransferAnalyzer {
    /// Runs the design-time analysis: trace `model` over the in-domain and
    /// shifted datasets, rank neurons by activation-distribution shift, and
    /// keep the most stable `tk_fraction` as TK neurons.
    ///
    /// # Panics
    ///
    /// Panics if either dataset is empty or `tk_fraction` is outside
    /// `(0, 1]`.
    pub fn analyze(
        model: &Mlp,
        in_domain: &[Vec<f64>],
        shifted: &[Vec<f64>],
        tk_fraction: f64,
    ) -> Self {
        assert!(
            tk_fraction > 0.0 && tk_fraction <= 1.0,
            "tk_fraction must be in (0, 1]"
        );
        let base = ActivationStats::collect(model, in_domain);
        let moved = ActivationStats::collect(model, shifted);
        let n = base.neuron_count();
        let shifts: Vec<f64> = (0..n)
            .map(|i| {
                let a = base.column(i);
                let b = moved.column(i);
                // Constant columns (dead ReLU units) carry no knowledge.
                if is_constant(a) && is_constant(b) {
                    1.0
                } else {
                    kolmogorov_smirnov(a, b)
                }
            })
            .collect();
        let mut order: Vec<usize> = (0..n).collect();
        order.sort_by(|&a, &b| shifts[a].partial_cmp(&shifts[b]).expect("finite"));
        let keep = ((n as f64 * tk_fraction).ceil() as usize).max(1);
        let mut tk: Vec<NeuronId> = order[..keep].iter().map(|&i| NeuronId(i)).collect();
        tk.sort();
        let reference_intervals = tk
            .iter()
            .map(|id| {
                let s = base.stats(id.0);
                (s.q05, s.q95)
            })
            .collect();
        // Generalization score: how little the TK neurons move (1 = fully
        // stable).
        let generalization_score =
            1.0 - tk.iter().map(|id| shifts[id.0]).sum::<f64>() / tk.len() as f64;
        TransferAnalyzer {
            tk_neurons: tk,
            shifts,
            reference_intervals,
            generalization_score,
        }
    }

    /// The selected TK neurons, ascending by id.
    pub fn tk_neurons(&self) -> &[NeuronId] {
        &self.tk_neurons
    }

    /// Per-neuron KS shift for every hidden neuron.
    pub fn shifts(&self) -> &[f64] {
        &self.shifts
    }

    /// Reference `[q05, q95]` activation interval of each TK neuron (same
    /// order as [`TransferAnalyzer::tk_neurons`]).
    pub fn reference_intervals(&self) -> &[(f64, f64)] {
        &self.reference_intervals
    }

    /// Design-time generalization score in `[0, 1]` (1 = TK neurons fully
    /// stable under the probe shift).
    pub fn generalization_score(&self) -> f64 {
        self.generalization_score
    }
}

fn is_constant(xs: &[f64]) -> bool {
    xs.windows(2).all(|w| (w[0] - w[1]).abs() < 1e-12)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nn::Activation;

    fn datasets() -> (Vec<Vec<f64>>, Vec<Vec<f64>>) {
        let in_domain: Vec<Vec<f64>> = (0..80)
            .map(|i| vec![(i as f64 * 0.13).sin(), (i as f64 * 0.29).cos()])
            .collect();
        let shifted: Vec<Vec<f64>> = (0..80)
            .map(|i| vec![(i as f64 * 0.13).sin() + 1.5, (i as f64 * 0.29).cos() - 1.5])
            .collect();
        (in_domain, shifted)
    }

    #[test]
    fn selects_requested_fraction() {
        let m = Mlp::new(&[2, 10, 5, 1], Activation::Tanh, 3);
        let (a, b) = datasets();
        let t = TransferAnalyzer::analyze(&m, &a, &b, 0.4);
        assert_eq!(t.tk_neurons().len(), 6); // ceil(15 * 0.4)
        assert_eq!(t.shifts().len(), 15);
        assert_eq!(t.reference_intervals().len(), 6);
    }

    #[test]
    fn tk_neurons_have_smallest_shifts() {
        let m = Mlp::new(&[2, 12, 1], Activation::Tanh, 5);
        let (a, b) = datasets();
        let t = TransferAnalyzer::analyze(&m, &a, &b, 0.25);
        let tk_max = t
            .tk_neurons()
            .iter()
            .map(|id| t.shifts()[id.0])
            .fold(0.0, f64::max);
        let non_tk_min = (0..t.shifts().len())
            .filter(|i| !t.tk_neurons().contains(&NeuronId(*i)))
            .map(|i| t.shifts()[i])
            .fold(f64::INFINITY, f64::min);
        assert!(tk_max <= non_tk_min + 1e-12);
    }

    #[test]
    fn identical_domains_give_perfect_generalization() {
        let m = Mlp::new(&[2, 8, 1], Activation::Tanh, 7);
        let (a, _) = datasets();
        let t = TransferAnalyzer::analyze(&m, &a, &a, 0.5);
        assert!((t.generalization_score() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn strong_shift_lowers_generalization() {
        let m = Mlp::new(&[2, 8, 1], Activation::Tanh, 7);
        let (a, b) = datasets();
        let same = TransferAnalyzer::analyze(&m, &a, &a, 0.5).generalization_score();
        let moved = TransferAnalyzer::analyze(&m, &a, &b, 0.5).generalization_score();
        assert!(moved < same);
    }

    #[test]
    fn intervals_are_ordered() {
        let m = Mlp::new(&[2, 8, 1], Activation::Relu, 9);
        let (a, b) = datasets();
        let t = TransferAnalyzer::analyze(&m, &a, &b, 1.0);
        for (lo, hi) in t.reference_intervals() {
            assert!(lo <= hi);
        }
    }

    #[test]
    #[should_panic(expected = "tk_fraction")]
    fn bad_fraction_panics() {
        let m = Mlp::new(&[2, 4, 1], Activation::Tanh, 1);
        let (a, b) = datasets();
        let _ = TransferAnalyzer::analyze(&m, &a, &b, 0.0);
    }
}
