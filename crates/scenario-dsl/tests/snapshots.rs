//! Golden-snapshot tests for the scenario DSL.
//!
//! Two fixture families, both under `tests/golden/`:
//!
//! - **Library snapshots** — every `.sesame` file in the workspace's
//!   `scenarios/` library compiles (default parameters) and its
//!   [`CompiledScenario::describe`] rendering is pinned byte-for-byte.
//!   A byte of drift means the compiler's output changed for that
//!   source: a changed default, a reordered schedule, a renamed field.
//! - **Error snapshots** — every `tests/inputs/err_*.sesame` fails to
//!   compile and its rendered error (message, file:line:col, source
//!   line, caret) is pinned, so error quality is a tested property, not
//!   an accident.
//!
//! Regenerate intentionally changed fixtures with:
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test -p sesame-scenario-dsl --test snapshots
//! ```

use sesame_scenario_dsl::compiler::Compiler;
use sesame_scenario_dsl::CompiledScenario;
use std::fs;
use std::path::PathBuf;

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(name)
}

fn check_golden(name: &str, actual: &str) {
    let path = golden_path(name);
    if std::env::var("UPDATE_GOLDEN").as_deref() == Ok("1") {
        fs::create_dir_all(path.parent().unwrap()).unwrap();
        fs::write(&path, actual).unwrap();
        eprintln!("regenerated {}", path.display());
        return;
    }
    let expected = fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden fixture {} ({e}); regenerate with \
             UPDATE_GOLDEN=1 cargo test -p sesame-scenario-dsl --test snapshots",
            path.display()
        )
    });
    assert_eq!(
        actual,
        expected,
        "output drifted from {}; if intentional, regenerate with \
         UPDATE_GOLDEN=1 cargo test -p sesame-scenario-dsl --test snapshots and commit",
        path.display()
    );
}

/// The workspace scenario library: every top-level `scenarios/*.sesame`,
/// sorted by file name so the walk order is machine-independent.
fn library_files() -> Vec<PathBuf> {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../scenarios");
    let mut files: Vec<PathBuf> = fs::read_dir(&dir)
        .unwrap_or_else(|e| panic!("missing scenario library {}: {e}", dir.display()))
        .filter_map(|entry| {
            let path = entry.unwrap().path();
            (path.extension().and_then(|e| e.to_str()) == Some("sesame")).then_some(path)
        })
        .collect();
    files.sort();
    files
}

fn error_inputs() -> Vec<PathBuf> {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/inputs");
    let mut files: Vec<PathBuf> = fs::read_dir(&dir)
        .unwrap_or_else(|e| panic!("missing error inputs {}: {e}", dir.display()))
        .filter_map(|entry| {
            let path = entry.unwrap().path();
            let name = path.file_name().unwrap().to_string_lossy().into_owned();
            (name.starts_with("err_") && name.ends_with(".sesame")).then_some(path)
        })
        .collect();
    files.sort();
    files
}

#[test]
fn every_library_scenario_compiles_and_matches_its_snapshot() {
    let files = library_files();
    assert!(
        files.len() >= 12,
        "the scenario library shrank to {} files",
        files.len()
    );
    for path in files {
        let stem = path.file_stem().unwrap().to_string_lossy().into_owned();
        let scenarios = Compiler::new()
            .compile_file(&path)
            .unwrap_or_else(|e| panic!("{stem}: {}", e.render()));
        assert!(
            !scenarios.is_empty(),
            "{stem}: the file declares no scenario"
        );
        let rendered: String = scenarios
            .iter()
            .map(CompiledScenario::describe)
            .collect::<Vec<_>>()
            .join("\n");
        check_golden(&format!("{stem}.txt"), &rendered);
    }
}

#[test]
fn every_library_scenario_validates_and_freezes_as_a_template() {
    for path in library_files() {
        let stem = path.file_stem().unwrap().to_string_lossy().into_owned();
        for compiled in Compiler::new().compile_file(&path).unwrap() {
            // builder() must produce a buildable description for any
            // seed (validate is seed-independent, but exercise two).
            for seed in [0u64, 42] {
                compiled
                    .builder(seed)
                    .validate()
                    .unwrap_or_else(|e| panic!("{stem} seed {seed}: {e}"));
            }
            // Freezing as a template must preserve the deadline.
            assert_eq!(
                compiled.template().deadline(),
                compiled.deadline(),
                "{stem}"
            );
        }
    }
}

#[test]
fn every_malformed_input_fails_with_its_pinned_rendering() {
    let files = error_inputs();
    assert!(
        files.len() >= 8,
        "the malformed-input corpus shrank to {} files",
        files.len()
    );
    for path in files {
        let stem = path.file_stem().unwrap().to_string_lossy().into_owned();
        let err = Compiler::new()
            .compile_file(&path)
            .expect_err(&format!("{stem} compiled but must fail"));
        assert!(err.span.line >= 1, "{stem}: error has no line");
        assert!(err.span.col >= 1, "{stem}: error has no column");
        check_golden(&format!("{stem}.txt"), &err.render());
    }
}
