//! Property-based fuzzing of the DSL front end.
//!
//! Three properties, in rising order of strength:
//!
//! 1. **Never panic** — arbitrary printable soup and near-miss token
//!    soup through `lex`/`parse`/`compile_str` return `Ok` or a spanned
//!    `Err`; they never unwind. The whole front end is panic-free on
//!    hostile input.
//! 2. **Spans are real** — every error out of generated source carries
//!    a 1-based line/column lying inside the source, so `render()` can
//!    always draw its caret.
//! 3. **Print is a fixed point** — for generated well-formed source,
//!    `print(parse(print(parse(s)))) == print(parse(s))`: one trip
//!    through the canonical printer reaches a form the parser/printer
//!    pair maps to itself. (ASTs carry spans, so the fixed point is
//!    stated on the canonical text, which is span-free.)
//!
//! The case budget defaults to proptest's 64 per property and can be
//! raised in CI via `SESAME_FUZZ_CASES` (see `scripts/check.sh`).

use proptest::collection::vec;
use proptest::prelude::*;
use sesame_scenario_dsl::{compile_str, lexer, parser};

fn cases() -> u32 {
    std::env::var("SESAME_FUZZ_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(64)
}

fn config() -> ProptestConfig {
    ProptestConfig::with_cases(cases())
}

/// `Option`-valued strategy: `None` half the time. (The vendored
/// proptest has no `proptest::option::of`.)
fn maybe<S>(s: S) -> impl Strategy<Value = Option<S::Value>>
where
    S: Strategy + 'static,
    S::Value: Clone + 'static,
{
    prop_oneof![Just(None), s.prop_map(Some).boxed()]
}

// ---------------------------------------------------------------------
// Source generators
// ---------------------------------------------------------------------

/// Fragments the lexer and parser actually care about: keywords,
/// punctuation, numbers, durations, strings (some unterminated),
/// comments, and junk. Concatenating these hits far deeper paths than
/// uniform random characters.
fn token_soup() -> impl Strategy<Value = String> {
    let word = prop_oneof![
        Just("scenario"),
        Just("param"),
        Just("let"),
        Just("include"),
        Just("for"),
        Just("in"),
        Just("group"),
        Just("at"),
        Just("uav"),
        Just("comm"),
        Just("compute"),
        Just("world"),
        Just("fleet"),
        Just("mission"),
        Just("faults"),
        Just("attack"),
        Just("true"),
        Just("false"),
        Just("auto"),
        Just("serial"),
        Just("{"),
        Just("}"),
        Just("("),
        Just(")"),
        Just("="),
        Just(","),
        Just(".."),
        Just("+"),
        Just("-"),
        Just("*"),
        Just("/"),
        Just("%"),
        Just("\"str\""),
        Just("\"unterminated"),
        Just("# comment"),
        Just("\n"),
    ];
    let fragment = prop_oneof![
        word.prop_map(str::to_string).boxed(),
        (i64::MIN..i64::MAX).prop_map(|n| n.to_string()).boxed(),
        (-1.0e9..1.0e9f64).prop_map(|f| format!("{f:?}")).boxed(),
        (0u64..10_000_000).prop_map(|n| format!("{n}s")).boxed(),
        (0u64..10_000_000).prop_map(|n| format!("{n}ms")).boxed(),
        "[a-z_][a-z0-9_]{0,8}".boxed(),
    ];
    vec(fragment, 0..48).prop_map(|frags| frags.join(" "))
}

/// An identifier that can never collide with a keyword or contextual
/// keyword: every DSL keyword starts with another letter, so a leading
/// `v`/`q`/`z` is always safe.
fn ident() -> impl Strategy<Value = String> {
    "[vqz][a-z0-9_]{0,6}"
}

/// A literal with a canonical spelling: its printed form is exactly its
/// source form, so it cannot break the text fixed point.
fn literal_expr() -> impl Strategy<Value = String> {
    prop_oneof![
        (0i64..100_000).prop_map(|n| n.to_string()).boxed(),
        (0u32..1_600_000)
            .prop_map(|n| format!("{:?}", f64::from(n) / 16.0))
            .boxed(),
        Just("true".to_string()).boxed(),
        Just("false".to_string()).boxed(),
        (0u64..5_000).prop_map(|n| format!("{n}s")).boxed(),
        (1u64..1_000)
            .prop_map(|n| format!("{}ms", n * 2 + 1)) // odd: never a whole second
            .boxed(),
    ]
}

/// Nested integer arithmetic over bound names; fully parenthesised so
/// the generator never has to reason about precedence.
fn arith_expr() -> impl Strategy<Value = String> {
    let leaf = prop_oneof![
        (0i64..1_000).prop_map(|n| n.to_string()).boxed(),
        Just("i".to_string()).boxed(),
    ];
    leaf.prop_recursive(3, 16, 2, |inner| {
        (
            inner.clone(),
            prop_oneof![Just("+"), Just("-"), Just("*"), Just("/"), Just("%")],
            inner,
        )
            .prop_map(|(a, op, b)| format!("({a} {op} {b})"))
    })
}

fn world_section() -> impl Strategy<Value = String> {
    ((1u32..2_000, 1u32..2_000), 0u32..20, maybe(0u32..17u32)).prop_map(|((w, h), persons, vis)| {
        let mut s = String::from("    world {\n");
        s.push_str(&format!(
            "        area = ({:?}, {:?})\n",
            f64::from(w),
            f64::from(h)
        ));
        s.push_str(&format!("        persons = {persons}\n"));
        if let Some(v) = vis {
            s.push_str(&format!("        visibility = {:?}\n", f64::from(v) / 16.0));
        }
        s.push_str("    }\n");
        s
    })
}

fn fleet_section() -> impl Strategy<Value = String> {
    (
        maybe(1u32..12u32),
        maybe((1u32..6u32, prop_oneof![Just(4u32), Just(6), Just(8)])),
        maybe(prop_oneof![
            Just("auto".to_string()).boxed(),
            Just("serial".to_string()).boxed(),
            (1u32..8).prop_map(|n| format!("fixed({n})")).boxed(),
        ]),
    )
        .prop_map(|(uavs, grp, shards)| {
            let mut s = String::from("    fleet {\n");
            if let Some(n) = uavs {
                s.push_str(&format!("        uavs = {n}\n"));
            }
            if let Some((count, motors)) = grp {
                s.push_str(&format!(
                    "        group {count} {{\n            motors = {motors}\n            tolerated = 1\n        }}\n"
                ));
            }
            if let Some(p) = shards {
                s.push_str(&format!("        shards = {p}\n"));
            }
            s.push_str("    }\n");
            s
        })
}

fn faults_section() -> impl Strategy<Value = String> {
    let entry = prop_oneof![
        (0u64..2_000u64, 0u32..8u32)
            .prop_map(|(t, u)| format!("        at {t}s uav {u} gps_loss()\n"))
            .boxed(),
        (0u64..2_000u64, 0u32..8u32, 1u64..120u64)
            .prop_map(|(t, u, w)| {
                format!("        at {t}s for {w}s comm link_blackout(uav = {u})\n")
            })
            .boxed(),
        (0u64..2_000u64, 0u32..8u32, 1u64..120u64)
            .prop_map(|(t, u, w)| {
                format!("        at {t}s for {w}s compute eddi_panic(uav = {u})\n")
            })
            .boxed(),
        (1u32..6u32, arith_expr())
            .prop_map(|(n, e)| {
                format!(
                    "        for i in 0..{n} {{\n            at secs(100 + i * 7) \
                     uav {e} % 3 gps_restore()\n        }}\n"
                )
            })
            .boxed(),
    ];
    vec(entry, 0..5).prop_map(|entries| {
        let mut s = String::from("    faults {\n");
        for e in &entries {
            s.push_str(e);
        }
        s.push_str("    }\n");
        s
    })
}

/// A well-formed (grammatically valid) scenario source. It may still be
/// semantically rejected — an out-of-range visibility, a zero division
/// deep in a loop bound — which is exactly the mix the compiler
/// properties want.
fn scenario_source() -> impl Strategy<Value = String> {
    (
        ident(),
        maybe(world_section()),
        maybe(fleet_section()),
        maybe(faults_section()),
        vec((ident(), literal_expr()), 0..3),
    )
        .prop_map(|(name, world, fleet, faults, lets)| {
            let mut src = String::new();
            for (i, (n, v)) in lets.iter().enumerate() {
                src.push_str(&format!("let {n}_{i} = {v}\n"));
            }
            src.push_str(&format!("scenario \"{name}\" {{\n"));
            if let Some(w) = world {
                src.push_str(&w);
            }
            if let Some(f) = fleet {
                src.push_str(&f);
            }
            if let Some(f) = faults {
                src.push_str(&f);
            }
            src.push_str("}\n");
            src
        })
}

// ---------------------------------------------------------------------
// Properties
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(config())]

    /// Arbitrary printable soup never panics any front-end stage.
    #[test]
    fn arbitrary_source_never_panics(src in "[ -~\n\t]{0,256}") {
        let _ = lexer::lex(&src);
        let _ = parser::parse(&src);
        let _ = compile_str("fuzz", &src);
    }

    /// Near-miss token soup (real keywords and literals in random
    /// order) never panics, and any error carries an in-range span.
    #[test]
    fn token_soup_never_panics_and_spans_are_in_range(src in token_soup()) {
        for span in [
            lexer::lex(&src).err().map(|e| e.span),
            parser::parse(&src).err().map(|e| e.span),
            compile_str("fuzz", &src).err().map(|e| e.span),
        ].into_iter().flatten() {
            prop_assert!(span.line >= 1, "span line {} < 1", span.line);
            prop_assert!(span.col >= 1, "span col {} < 1", span.col);
            let lines = src.lines().count().max(1) as u32;
            prop_assert!(
                span.line <= lines + 1,
                "span line {} beyond {} source lines",
                span.line,
                lines
            );
        }
    }

    /// Generated well-formed source parses, and one round through the
    /// canonical printer reaches a fixed point of parse∘print.
    #[test]
    fn pretty_print_is_a_parse_fixed_point(src in scenario_source()) {
        let ast = parser::parse(&src).map_err(|e| TestCaseError::fail(format!(
            "generator emitted unparsable source: {}\n{src}",
            e.render()
        )))?;
        let printed = ast.to_string();
        let reparsed = parser::parse(&printed).map_err(|e| TestCaseError::fail(format!(
            "printer emitted unparsable source: {}\n{printed}",
            e.render()
        )))?;
        prop_assert_eq!(
            reparsed.to_string(),
            printed,
            "print(parse(print)) diverged for source:\n{}",
            src
        );
    }

    /// Compiling generated source never panics; success and spanned
    /// failure (e.g. a generated fleet the validator rejects, or a
    /// division by zero in a loop bound) are both acceptable outcomes.
    #[test]
    fn generated_scenarios_compile_or_fail_cleanly(src in scenario_source()) {
        match compile_str("fuzz", &src) {
            Ok(compiled) => {
                // Compilation ran validate, so the builder it hands out
                // must also validate for any seed.
                prop_assert!(compiled.builder(7).validate().is_ok());
            }
            Err(e) => {
                prop_assert!(e.span.line >= 1);
                prop_assert!(!e.message.is_empty());
            }
        }
    }
}
