//! The compiler: AST → [`CompiledScenario`].
//!
//! Compilation happens exactly once per source; the output is a frozen
//! [`ScenarioBuilder`] prototype that instantiates per-seed builders
//! field-for-field identical to hand-written Rust ones (both start from
//! [`ScenarioBuilder::base_config`] and apply the same public builder
//! calls), which is what the differential conformance suite pins.
//! Evaluation is total: integer arithmetic is checked, float results
//! must stay finite, loops and schedules are size-capped, and every
//! failure is a spanned [`DslError`] — never a panic.

use crate::ast::*;
use crate::error::{DslError, ErrorKind, Span};
use crate::key::{self, CommFn, ComputeFn, Key, VehicleFn};
use crate::parser::parse;
use crate::value::Value;
use sesame_core::containment::ComputeFaultKind;
use sesame_core::fleet::{FleetGroup, FleetSpec, ShardPolicy, UavProfile};
use sesame_core::scenario::{ScenarioBuilder, ScenarioTemplate, SpoofAttack};
use sesame_middleware::chaos::{CommFaultKind, LinkDirection};
use sesame_types::geo::Vec3;
use sesame_types::ids::UavId;
use sesame_types::time::{SimDuration, SimTime};
use sesame_uav_sim::faults::FaultKind;
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// Maximum scheduled entries (vehicle + comm + compute) per scenario.
pub const MAX_ENTRIES: usize = 65_536;

/// Maximum loop iterations executed per scenario, counted across all
/// (possibly nested) `for` statements — bounds spin time even when the
/// bodies schedule nothing.
pub const MAX_ITERATIONS: u64 = 1_000_000;

/// Maximum `include` nesting depth.
pub const MAX_INCLUDE_DEPTH: usize = 16;

// ---------------------------------------------------------------------
// Environment
// ---------------------------------------------------------------------

struct Env {
    scopes: Vec<BTreeMap<String, Value>>,
}

impl Env {
    fn new() -> Self {
        let mut globals = BTreeMap::new();
        globals.insert("auto".into(), Value::Shard(ShardPolicy::Auto));
        globals.insert("serial".into(), Value::Shard(ShardPolicy::Serial));
        globals.insert("uplink".into(), Value::Direction(LinkDirection::Uplink));
        globals.insert("downlink".into(), Value::Direction(LinkDirection::Downlink));
        Env {
            scopes: vec![globals, BTreeMap::new()],
        }
    }

    fn lookup(&self, name: &str) -> Option<&Value> {
        self.scopes.iter().rev().find_map(|s| s.get(name))
    }

    fn bind(&mut self, name: &str, value: Value) {
        self.scopes
            .last_mut()
            .expect("env always has a scope")
            .insert(name.to_string(), value);
    }

    fn push(&mut self) {
        self.scopes.push(BTreeMap::new());
    }

    fn pop(&mut self) {
        self.scopes.pop();
    }
}

// ---------------------------------------------------------------------
// Expression evaluation
// ---------------------------------------------------------------------

fn err_eval(msg: impl Into<String>, span: Span) -> DslError {
    DslError::new(ErrorKind::Eval, msg, span)
}

fn err_sem(msg: impl Into<String>, span: Span) -> DslError {
    DslError::new(ErrorKind::Semantic, msg, span)
}

fn eval(expr: &Expr, env: &Env) -> Result<Value, DslError> {
    match expr {
        Expr::Int(n, _) => Ok(Value::Int(*n)),
        Expr::Float(x, _) => Ok(Value::Float(*x)),
        Expr::Bool(b, _) => Ok(Value::Bool(*b)),
        Expr::Str(s, _) => Ok(Value::Str(Arc::from(s.as_str()))),
        Expr::DurationMs(ms, _) => Ok(Value::Duration(SimDuration::from_millis(*ms))),
        Expr::Var(name, span) => env
            .lookup(name)
            .cloned()
            .ok_or_else(|| err_eval(format!("undefined name `{name}`"), *span)),
        Expr::Unary {
            op: UnOp::Neg,
            expr,
            span,
        } => match eval(expr, env)? {
            Value::Int(n) => n
                .checked_neg()
                .map(Value::Int)
                .ok_or_else(|| err_eval("integer negation overflows i64", *span)),
            Value::Float(x) => Ok(Value::Float(-x)),
            v => Err(err_eval(
                format!("cannot negate a {}", v.type_name()),
                *span,
            )),
        },
        Expr::Binary { op, lhs, rhs, span } => {
            let l = eval(lhs, env)?;
            let r = eval(rhs, env)?;
            binary(*op, l, r, *span)
        }
        Expr::Tuple(items, _) => {
            let vals: Result<Vec<Value>, DslError> = items.iter().map(|e| eval(e, env)).collect();
            Ok(Value::Tuple(Arc::from(vals?)))
        }
        Expr::Call { name, args, span } => call(name, args, env, *span),
    }
}

fn binary(op: BinOp, l: Value, r: Value, span: Span) -> Result<Value, DslError> {
    use Value::*;
    let type_err = |l: &Value, r: &Value| {
        err_eval(
            format!(
                "cannot apply `{}` to {} and {}",
                op.symbol(),
                l.type_name(),
                r.type_name()
            ),
            span,
        )
    };
    match (&l, &r) {
        (Int(a), Int(b)) => {
            let out = match op {
                BinOp::Add => a.checked_add(*b),
                BinOp::Sub => a.checked_sub(*b),
                BinOp::Mul => a.checked_mul(*b),
                BinOp::Div => {
                    if *b == 0 {
                        return Err(err_eval("division by zero", span));
                    }
                    a.checked_div(*b)
                }
                BinOp::Rem => {
                    if *b == 0 {
                        return Err(err_eval("remainder by zero", span));
                    }
                    a.checked_rem(*b)
                }
            };
            out.map(Value::Int)
                .ok_or_else(|| err_eval("integer arithmetic overflows i64", span))
        }
        (Int(_) | Float(_), Int(_) | Float(_)) => {
            let (a, b) = (l.as_f64().unwrap(), r.as_f64().unwrap());
            let out = match op {
                BinOp::Add => a + b,
                BinOp::Sub => a - b,
                BinOp::Mul => a * b,
                BinOp::Div => a / b,
                BinOp::Rem => a % b,
            };
            if out.is_finite() {
                Ok(Value::Float(out))
            } else {
                Err(err_eval(
                    "float arithmetic produced a non-finite value",
                    span,
                ))
            }
        }
        (Duration(a), Duration(b)) => match op {
            BinOp::Add => a
                .as_millis()
                .checked_add(b.as_millis())
                .map(|ms| Value::Duration(SimDuration::from_millis(ms)))
                .ok_or_else(|| err_eval("duration addition overflows", span)),
            BinOp::Sub => a
                .as_millis()
                .checked_sub(b.as_millis())
                .map(|ms| Value::Duration(SimDuration::from_millis(ms)))
                .ok_or_else(|| err_eval("duration subtraction goes negative", span)),
            _ => Err(type_err(&l, &r)),
        },
        (Duration(d), Int(n)) | (Int(n), Duration(d)) if op == BinOp::Mul => {
            if *n < 0 {
                return Err(err_eval(
                    "cannot scale a duration by a negative amount",
                    span,
                ));
            }
            d.as_millis()
                .checked_mul(*n as u64)
                .map(|ms| Value::Duration(SimDuration::from_millis(ms)))
                .ok_or_else(|| err_eval("duration multiplication overflows", span))
        }
        (Duration(d), Float(x)) | (Float(x), Duration(d)) if op == BinOp::Mul => {
            let ms = d.as_millis() as f64 * x;
            if !ms.is_finite() || ms < 0.0 || ms > u64::MAX as f64 {
                return Err(err_eval("duration multiplication is out of range", span));
            }
            Ok(Value::Duration(SimDuration::from_millis(ms.round() as u64)))
        }
        _ => Err(type_err(&l, &r)),
    }
}

fn call(name: &str, args: &[Expr], env: &Env, span: Span) -> Result<Value, DslError> {
    let eval_one = |what: &str| -> Result<Value, DslError> {
        if args.len() != 1 {
            return Err(err_eval(
                format!("`{name}` takes exactly one argument ({what})"),
                span,
            ));
        }
        eval(&args[0], env)
    };
    match name {
        "secs" => match eval_one("seconds")? {
            Value::Int(n) if n >= 0 => Ok(Value::Duration(SimDuration::from_secs(n as u64))),
            Value::Float(x) if x >= 0.0 => Ok(Value::Duration(SimDuration::from_secs_f64(x))),
            v => Err(err_eval(
                format!("`secs` expects a non-negative number, found {v}"),
                span,
            )),
        },
        "millis" => match eval_one("milliseconds")? {
            Value::Int(n) if n >= 0 => Ok(Value::Duration(SimDuration::from_millis(n as u64))),
            v => Err(err_eval(
                format!("`millis` expects a non-negative integer, found {v}"),
                span,
            )),
        },
        "fixed" => match eval_one("shard count")? {
            Value::Int(n) if n >= 1 => Ok(Value::Shard(ShardPolicy::Fixed { shards: n as usize })),
            v => Err(err_eval(
                format!("`fixed` expects a positive shard count, found {v}"),
                span,
            )),
        },
        other => Err(err_eval(
            format!("unknown function `{other}` (functions: secs, millis, fixed)"),
            span,
        )),
    }
}

// ---------------------------------------------------------------------
// Typed key/value extraction
// ---------------------------------------------------------------------

/// Assignments of one section, interned and evaluated, with duplicate
/// detection. Extraction methods take the interned [`Key`] and produce
/// typed values or spanned errors.
struct Fields {
    section: &'static str,
    vocab: &'static str,
    entries: BTreeMap<&'static str, (Value, Span)>,
}

impl Fields {
    fn collect(
        section: &'static str,
        vocab: &'static str,
        allowed: &[Key],
        assigns: &[Assign],
        env: &Env,
    ) -> Result<Self, DslError> {
        let mut entries = BTreeMap::new();
        for a in assigns {
            let key = key::intern(&a.key)
                .filter(|k| allowed.contains(k))
                .ok_or_else(|| {
                    err_sem(
                        format!(
                            "unknown key `{}` in the {section} section (keys: {vocab})",
                            a.key
                        ),
                        a.span,
                    )
                })?;
            let value = eval(&a.value, env)?;
            if entries.insert(key.name(), (value, a.span)).is_some() {
                return Err(err_sem(
                    format!("duplicate key `{}` in the {section} section", a.key),
                    a.span,
                ));
            }
        }
        Ok(Fields {
            section,
            vocab,
            entries,
        })
    }

    fn take(&mut self, key: Key) -> Option<(Value, Span)> {
        self.entries.remove(key.name())
    }

    fn type_err(&self, key: Key, want: &str, found: &Value, span: Span) -> DslError {
        err_sem(
            format!(
                "the `{}` key in the {} section expects {want}, found {} ({found})",
                key.name(),
                self.section,
                found.type_name()
            ),
            span,
        )
    }

    fn f64(&mut self, key: Key) -> Result<Option<f64>, DslError> {
        match self.take(key) {
            None => Ok(None),
            Some((v, span)) => v
                .as_f64()
                .map(Some)
                .ok_or_else(|| self.type_err(key, "a number", &v, span)),
        }
    }

    fn usize(&mut self, key: Key) -> Result<Option<usize>, DslError> {
        match self.take(key) {
            None => Ok(None),
            Some((v, span)) => v
                .as_usize()
                .map(Some)
                .ok_or_else(|| self.type_err(key, "a non-negative integer", &v, span)),
        }
    }

    fn bool(&mut self, key: Key) -> Result<Option<bool>, DslError> {
        match self.take(key) {
            None => Ok(None),
            Some((v, span)) => v
                .as_bool()
                .map(Some)
                .ok_or_else(|| self.type_err(key, "a boolean", &v, span)),
        }
    }

    fn duration(&mut self, key: Key) -> Result<Option<SimDuration>, DslError> {
        match self.take(key) {
            None => Ok(None),
            Some((v, span)) => v
                .as_duration()
                .map(Some)
                .ok_or_else(|| self.type_err(key, "a duration (e.g. `120s`, `500ms`)", &v, span)),
        }
    }

    fn pair_f64(&mut self, key: Key) -> Result<Option<(f64, f64)>, DslError> {
        match self.take(key) {
            None => Ok(None),
            Some((Value::Tuple(items), span)) if items.len() == 2 => {
                let (Some(a), Some(b)) = (items[0].as_f64(), items[1].as_f64()) else {
                    return Err(self.type_err(
                        key,
                        "a (width, height) tuple of numbers",
                        &Value::Tuple(items.clone()),
                        span,
                    ));
                };
                Ok(Some((a, b)))
            }
            Some((v, span)) => {
                Err(self.type_err(key, "a (width, height) tuple of numbers", &v, span))
            }
        }
    }

    fn vec3(&mut self, key: Key) -> Result<Option<Vec3>, DslError> {
        match self.take(key) {
            None => Ok(None),
            Some((Value::Tuple(items), span)) if items.len() == 3 => {
                let (Some(x), Some(y), Some(z)) =
                    (items[0].as_f64(), items[1].as_f64(), items[2].as_f64())
                else {
                    return Err(self.type_err(
                        key,
                        "an (east, north, up) tuple of numbers",
                        &Value::Tuple(items.clone()),
                        span,
                    ));
                };
                Ok(Some(Vec3::new(x, y, z)))
            }
            Some((v, span)) => {
                Err(self.type_err(key, "an (east, north, up) tuple of numbers", &v, span))
            }
        }
    }

    fn require<T>(&self, got: Option<T>, key: Key, section_span: Span) -> Result<T, DslError> {
        got.ok_or_else(|| {
            err_sem(
                format!(
                    "the {} section requires the `{}` key (keys: {})",
                    self.section,
                    key.name(),
                    self.vocab
                ),
                section_span,
            )
        })
    }

    fn finish(self) -> Result<(), DslError> {
        // Defensive: `collect` only admits allowed keys, and every
        // allowed key is taken by the caller; anything left is a
        // compiler bug surfaced as an error instead of silence.
        if let Some((name, (_, span))) = self.entries.into_iter().next() {
            return Err(err_sem(
                format!(
                    "key `{name}` is not consumed by the {} section",
                    self.section
                ),
                span,
            ));
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------
// Scenario assembly
// ---------------------------------------------------------------------

struct Assembler<'e> {
    env: &'e mut Env,
    builder: ScenarioBuilder,
    entries: usize,
    iterations: u64,
    seen_sections: Vec<&'static str>,
}

impl Assembler<'_> {
    fn section_once(&mut self, name: &'static str, span: Span) -> Result<(), DslError> {
        if self.seen_sections.contains(&name) {
            return Err(err_sem(format!("duplicate {name} section"), span));
        }
        self.seen_sections.push(name);
        Ok(())
    }

    fn world(&mut self, block: &Block) -> Result<(), DslError> {
        self.section_once("world", block.span)?;
        let mut f = Fields::collect(
            "world",
            "area, persons, visibility",
            &[Key::Area, Key::Persons, Key::Visibility],
            &block.assigns,
            self.env,
        )?;
        if let Some((w, h)) = f.pair_f64(Key::Area)? {
            self.builder.config_mut().area_width_m = w;
            self.builder.config_mut().area_height_m = h;
        }
        if let Some(n) = f.usize(Key::Persons)? {
            self.builder.config_mut().person_count = n;
        }
        if let Some(v) = f.f64(Key::Visibility)? {
            self.builder.config_mut().visibility = v;
        }
        f.finish()
    }

    fn fleet(&mut self, span: Span, items: &[FleetItem]) -> Result<(), DslError> {
        self.section_once("fleet", span)?;
        let mut groups: Vec<FleetGroup> = Vec::new();
        let mut policy: Option<(ShardPolicy, Span)> = None;
        for item in items {
            match item {
                FleetItem::Assign(a) => match key::intern(&a.key) {
                    Some(Key::Uavs) => {
                        let v = eval(&a.value, self.env)?;
                        let count = v.as_usize().ok_or_else(|| {
                            err_sem(
                                format!(
                                    "`uavs` expects a non-negative integer, found {} ({v})",
                                    v.type_name()
                                ),
                                a.span,
                            )
                        })?;
                        groups.push(FleetGroup {
                            count,
                            profile: UavProfile::default(),
                        });
                    }
                    Some(Key::Shards) => {
                        let v = eval(&a.value, self.env)?;
                        let Value::Shard(p) = v else {
                            return Err(err_sem(
                                format!(
                                    "`shards` expects `auto`, `serial` or `fixed(n)`, \
                                     found {} ({v})",
                                    v.type_name()
                                ),
                                a.span,
                            ));
                        };
                        if policy.is_some() {
                            return Err(err_sem("duplicate `shards` key", a.span));
                        }
                        policy = Some((p, a.span));
                    }
                    _ => {
                        return Err(err_sem(
                            format!(
                                "unknown key `{}` in the fleet section (keys: uavs, shards, \
                                 group n {{ motors, tolerated, drain }})",
                                a.key
                            ),
                            a.span,
                        ))
                    }
                },
                FleetItem::Group {
                    span,
                    count,
                    assigns,
                } => {
                    let v = eval(count, self.env)?;
                    let count = v.as_usize().ok_or_else(|| {
                        err_sem(
                            format!(
                                "`group` expects a non-negative UAV count, found {} ({v})",
                                v.type_name()
                            ),
                            *span,
                        )
                    })?;
                    let mut f = Fields::collect(
                        "fleet group",
                        "motors, tolerated, drain",
                        &[Key::Motors, Key::Tolerated, Key::Drain],
                        assigns,
                        self.env,
                    )?;
                    let profile = UavProfile {
                        motor_count: f.usize(Key::Motors)?,
                        tolerated_motor_failures: f.usize(Key::Tolerated)?,
                        battery_hover_drain: f.f64(Key::Drain)?,
                    };
                    f.finish()?;
                    groups.push(FleetGroup { count, profile });
                }
            }
        }
        let current = &self.builder.config().fleet;
        let groups = if groups.is_empty() {
            current.groups().to_vec()
        } else {
            groups
        };
        let policy = policy
            .map(|(p, _)| p)
            .unwrap_or_else(|| current.shard_policy());
        let mut spec = FleetSpec::builder();
        for g in groups {
            spec = spec.group(g.count, g.profile);
        }
        self.builder.config_mut().fleet = spec.shard_policy(policy).build();
        Ok(())
    }

    fn mission(&mut self, block: &Block) -> Result<(), DslError> {
        self.section_once("mission", block.span)?;
        let mut f = Fields::collect(
            "mission",
            "sesame, altitude, altitude_adaptation, deadline, battery_swap, \
             battery_hover_drain",
            &[
                Key::Sesame,
                Key::Altitude,
                Key::AltitudeAdaptation,
                Key::Deadline,
                Key::BatterySwap,
                Key::BatteryHoverDrain,
            ],
            &block.assigns,
            self.env,
        )?;
        if let Some(on) = f.bool(Key::Sesame)? {
            self.builder.config_mut().sesame_enabled = on;
        }
        if let Some(alt) = f.f64(Key::Altitude)? {
            self.builder.config_mut().scan_altitude_m = alt;
        }
        if let Some(on) = f.bool(Key::AltitudeAdaptation)? {
            self.builder.config_mut().altitude_adaptation = on;
        }
        if let Some(d) = f.duration(Key::Deadline)? {
            let deadline = SimTime::from_millis(d.as_millis());
            self.builder =
                std::mem::replace(&mut self.builder, ScenarioBuilder::new(0)).deadline(deadline);
        }
        if let Some(d) = f.duration(Key::BatterySwap)? {
            self.builder.config_mut().battery_swap = d;
        }
        if let Some(drain) = f.f64(Key::BatteryHoverDrain)? {
            self.builder.config_mut().battery_hover_drain = drain;
        }
        f.finish()
    }

    fn faults(&mut self, span: Span, stmts: &[FaultStmt]) -> Result<(), DslError> {
        self.section_once("faults", span)?;
        self.fault_stmts(stmts)
    }

    fn fault_stmts(&mut self, stmts: &[FaultStmt]) -> Result<(), DslError> {
        for stmt in stmts {
            match stmt {
                FaultStmt::Entry(e) => self.fault_entry(e)?,
                FaultStmt::For {
                    var,
                    span,
                    start,
                    end,
                    body,
                } => {
                    let s = eval(start, self.env)?;
                    let e = eval(end, self.env)?;
                    let (Some(s), Some(e)) = (s.as_i64(), e.as_i64()) else {
                        return Err(err_sem(
                            format!(
                                "loop bounds must be integers, found {}..{}",
                                s.type_name(),
                                e.type_name()
                            ),
                            *span,
                        ));
                    };
                    for i in s..e.max(s) {
                        self.iterations += 1;
                        if self.iterations > MAX_ITERATIONS {
                            return Err(DslError::new(
                                ErrorKind::Limit,
                                format!("loops exceed {MAX_ITERATIONS} total iterations"),
                                *span,
                            ));
                        }
                        self.env.push();
                        self.env.bind(var, Value::Int(i));
                        let result = self.fault_stmts(body);
                        self.env.pop();
                        result?;
                    }
                }
            }
        }
        Ok(())
    }

    fn fault_entry(&mut self, e: &FaultEntryStmt) -> Result<(), DslError> {
        self.entries += 1;
        if self.entries > MAX_ENTRIES {
            return Err(DslError::new(
                ErrorKind::Limit,
                format!("the schedule exceeds {MAX_ENTRIES} entries"),
                e.span,
            ));
        }
        let at = match eval(&e.at, self.env)? {
            Value::Duration(d) => SimTime::from_millis(d.as_millis()),
            v => {
                return Err(err_sem(
                    format!(
                        "`at` expects a duration from mission start (e.g. `120s`), found {} \
                         ({v})",
                        v.type_name()
                    ),
                    e.at.span(),
                ))
            }
        };
        let duration = match &e.duration {
            None => None,
            Some(d) => match eval(d, self.env)? {
                Value::Duration(dur) => Some(dur),
                v => {
                    return Err(err_sem(
                        format!(
                            "`for` expects a window duration (e.g. `30s`), found {} ({v})",
                            v.type_name()
                        ),
                        d.span(),
                    ))
                }
            },
        };
        match &e.plane {
            FaultPlane::Vehicle { uav } => {
                if e.duration.is_some() {
                    return Err(err_sem(
                        "vehicle faults fire instantaneously; remove the `for <duration>` \
                         window (schedule the matching restore explicitly)",
                        e.span,
                    ));
                }
                let v = eval(uav, self.env)?;
                let index = v.as_usize().ok_or_else(|| {
                    err_sem(
                        format!(
                            "`uav` expects a non-negative fleet index, found {} ({v})",
                            v.type_name()
                        ),
                        uav.span(),
                    )
                })?;
                let kind = self.vehicle_kind(&e.call)?;
                self.builder = std::mem::replace(&mut self.builder, ScenarioBuilder::new(0))
                    .fault(at, index, kind);
            }
            FaultPlane::Comm => {
                let duration = duration.ok_or_else(|| {
                    err_sem(
                        "comm faults need a window: `at <time> for <duration> comm ...`",
                        e.span,
                    )
                })?;
                let kind = self.comm_kind(&e.call)?;
                self.builder = std::mem::replace(&mut self.builder, ScenarioBuilder::new(0))
                    .comm_fault(at, duration, kind);
            }
            FaultPlane::Compute => {
                let duration = duration.ok_or_else(|| {
                    err_sem(
                        "compute faults need a window: `at <time> for <duration> compute ...`",
                        e.span,
                    )
                })?;
                let kind = self.compute_kind(&e.call)?;
                self.builder = std::mem::replace(&mut self.builder, ScenarioBuilder::new(0))
                    .compute_fault(at, duration, kind);
            }
        }
        Ok(())
    }

    fn call_fields(
        &mut self,
        call: &FaultCall,
        vocab: &'static str,
        allowed: &[Key],
    ) -> Result<Fields, DslError> {
        Fields::collect("fault argument", vocab, allowed, &call.args, self.env).map_err(|e| {
            // Re-point "unknown key in the fault argument section" style
            // messages at the constructor for readability.
            if e.message.starts_with("unknown key") {
                err_sem(
                    format!(
                        "{} (arguments of `{}`: {vocab})",
                        e.message.split(" in the ").next().unwrap_or(&e.message),
                        call.name
                    ),
                    e.span,
                )
            } else {
                e
            }
        })
    }

    fn uav_id(&mut self, f: &mut Fields, call: &FaultCall) -> Result<UavId, DslError> {
        let got = f.usize(Key::Uav)?;
        let index = f.require(got, Key::Uav, call.span)?;
        let raw = u32::try_from(index)
            .ok()
            .and_then(|i| i.checked_add(1))
            .ok_or_else(|| err_sem(format!("uav index {index} is out of range"), call.span))?;
        Ok(UavId::new(raw))
    }

    fn vehicle_kind(&mut self, call: &FaultCall) -> Result<FaultKind, DslError> {
        let Some(which) = key::vehicle_fn(&call.name) else {
            return Err(err_sem(
                format!(
                    "unknown vehicle fault `{}` (vehicle faults: {})",
                    call.name,
                    key::VEHICLE_FNS
                ),
                call.span,
            ));
        };
        let kind = match which {
            VehicleFn::BatteryOverTemp => {
                let mut f = self.call_fields(call, "soc_drop", &[Key::SocDrop])?;
                let got = f.f64(Key::SocDrop)?;
                let soc_drop = f.require(got, Key::SocDrop, call.span)?;
                f.finish()?;
                FaultKind::BatteryOverTemp { soc_drop }
            }
            VehicleFn::MotorFailure | VehicleFn::MotorRestore => {
                let mut f = self.call_fields(call, "motor", &[Key::Motor])?;
                let got = f.usize(Key::Motor)?;
                let motor = f.require(got, Key::Motor, call.span)?;
                f.finish()?;
                if which == VehicleFn::MotorFailure {
                    FaultKind::MotorFailure { motor }
                } else {
                    FaultKind::MotorRestore { motor }
                }
            }
            VehicleFn::GpsLoss => {
                self.call_fields(call, "(none)", &[])?.finish()?;
                FaultKind::GpsLoss
            }
            VehicleFn::GpsRestore => {
                self.call_fields(call, "(none)", &[])?.finish()?;
                FaultKind::GpsRestore
            }
            VehicleFn::VisionRestore => {
                self.call_fields(call, "(none)", &[])?.finish()?;
                FaultKind::VisionRestore
            }
            VehicleFn::GpsSpoof => {
                let mut f = self.call_fields(call, "drift", &[Key::Drift])?;
                let got = f.vec3(Key::Drift)?;
                let drift = f.require(got, Key::Drift, call.span)?;
                f.finish()?;
                FaultKind::GpsSpoof { drift }
            }
            VehicleFn::VisionDegraded => {
                let mut f = self.call_fields(call, "health", &[Key::Health])?;
                let got = f.f64(Key::Health)?;
                let health = f.require(got, Key::Health, call.span)?;
                f.finish()?;
                FaultKind::VisionDegraded { health }
            }
        };
        Ok(kind)
    }

    fn comm_kind(&mut self, call: &FaultCall) -> Result<CommFaultKind, DslError> {
        let Some(which) = key::comm_fn(&call.name) else {
            return Err(err_sem(
                format!(
                    "unknown comm fault `{}` (comm faults: {})",
                    call.name,
                    key::COMM_FNS
                ),
                call.span,
            ));
        };
        let kind = match which {
            CommFn::LinkBlackout => {
                let mut f = self.call_fields(call, "uav", &[Key::Uav])?;
                let uav = self.uav_id(&mut f, call)?;
                f.finish()?;
                CommFaultKind::LinkBlackout { uav }
            }
            CommFn::Partition => {
                let mut f =
                    self.call_fields(call, "uav, direction", &[Key::Uav, Key::Direction])?;
                let uav = self.uav_id(&mut f, call)?;
                let direction = match f.take(Key::Direction) {
                    Some((Value::Direction(d), _)) => d,
                    Some((v, span)) => {
                        return Err(err_sem(
                            format!(
                                "`direction` expects `uplink` or `downlink`, found {} ({v})",
                                v.type_name()
                            ),
                            span,
                        ))
                    }
                    None => {
                        return Err(err_sem(
                            "`partition` requires a `direction` argument (uplink or downlink)",
                            call.span,
                        ))
                    }
                };
                f.finish()?;
                CommFaultKind::AsymmetricPartition { uav, direction }
            }
            CommFn::BrokerOutage => {
                self.call_fields(call, "(none)", &[])?.finish()?;
                CommFaultKind::BrokerOutage
            }
            CommFn::Staleness => {
                let mut f = self.call_fields(call, "uav, delay", &[Key::Uav, Key::Delay])?;
                let uav = self.uav_id(&mut f, call)?;
                let got = f.duration(Key::Delay)?;
                let delay = f.require(got, Key::Delay, call.span)?;
                f.finish()?;
                CommFaultKind::TelemetryStaleness { uav, delay }
            }
        };
        Ok(kind)
    }

    fn compute_kind(&mut self, call: &FaultCall) -> Result<ComputeFaultKind, DslError> {
        let Some(which) = key::compute_fn(&call.name) else {
            return Err(err_sem(
                format!(
                    "unknown compute fault `{}` (compute faults: {})",
                    call.name,
                    key::COMPUTE_FNS
                ),
                call.span,
            ));
        };
        let mut f = self.call_fields(call, "uav", &[Key::Uav])?;
        let got = f.usize(Key::Uav)?;
        let uav = f.require(got, Key::Uav, call.span)?;
        f.finish()?;
        Ok(match which {
            ComputeFn::EddiPanic => ComputeFaultKind::EddiPanic { uav },
            ComputeFn::TelemetryNan => ComputeFaultKind::TelemetryNan { uav },
            ComputeFn::TelemetryInf => ComputeFaultKind::TelemetryInf { uav },
            ComputeFn::SolverStall => ComputeFaultKind::SolverStall { uav },
        })
    }

    fn attack(&mut self, block: &Block) -> Result<(), DslError> {
        self.section_once("attack", block.span)?;
        let mut f = Fields::collect(
            "attack",
            "enabled, start, uav, drift, forge_waypoints",
            &[
                Key::Enabled,
                Key::Start,
                Key::Uav,
                Key::Drift,
                Key::ForgeWaypoints,
            ],
            &block.assigns,
            self.env,
        )?;
        let enabled = f.bool(Key::Enabled)?.unwrap_or(true);
        let start = f.duration(Key::Start)?;
        let uav = f.usize(Key::Uav)?;
        let drift = f.vec3(Key::Drift)?;
        let forge = f.bool(Key::ForgeWaypoints)?.unwrap_or(true);
        if !enabled {
            return f.finish();
        }
        let start = f.require(start, Key::Start, block.span)?;
        let uav_index = f.require(uav, Key::Uav, block.span)?;
        let gps_drift = f.require(drift, Key::Drift, block.span)?;
        f.finish()?;
        self.builder = std::mem::replace(&mut self.builder, ScenarioBuilder::new(0)).spoof_attack(
            SpoofAttack {
                start: SimTime::from_millis(start.as_millis()),
                uav_index,
                gps_drift,
                forge_waypoints: forge,
            },
        );
        Ok(())
    }
}

fn assemble(decl: &ScenarioDecl, env: &mut Env) -> Result<CompiledScenario, DslError> {
    let mut asm = Assembler {
        env,
        builder: ScenarioBuilder::new(0),
        entries: 0,
        iterations: 0,
        seen_sections: Vec::new(),
    };
    for section in &decl.sections {
        match section {
            Section::World(b) => asm.world(b)?,
            Section::Fleet { span, items } => asm.fleet(*span, items)?,
            Section::Mission(b) => asm.mission(b)?,
            Section::Faults { span, stmts } => asm.faults(*span, stmts)?,
            Section::Attack(b) => asm.attack(b)?,
        }
    }
    let builder = asm.builder;
    builder.validate().map_err(|e| {
        err_sem(
            format!("scenario \"{}\" is unbuildable: {e}", decl.name),
            decl.span,
        )
    })?;
    Ok(CompiledScenario {
        name: Arc::from(decl.name.as_str()),
        proto: builder,
        source: Arc::from(""),
    })
}

// ---------------------------------------------------------------------
// Compiled output
// ---------------------------------------------------------------------

/// A compiled scenario: a frozen prototype with its source name.
///
/// Instantiating with [`CompiledScenario::builder`] yields a
/// [`ScenarioBuilder`] field-for-field identical to a hand-written one
/// (same [`ScenarioBuilder::base_config`] baseline, same public builder
/// calls), so every determinism property of the Rust API carries over
/// to DSL-compiled scenarios unchanged.
#[derive(Debug, Clone)]
pub struct CompiledScenario {
    name: Arc<str>,
    proto: ScenarioBuilder,
    source: Arc<str>,
}

impl CompiledScenario {
    /// The scenario's declared name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The text of the compilation unit this scenario came from — the
    /// submission surface of the campaign service. The server logs this
    /// text verbatim in its event-sourced run log, and replay recompiles
    /// it with [`compile_str`], so a submission is replayable after a
    /// process restart without any reference to the submitting host's
    /// filesystem. Post-compile adjustments
    /// ([`CompiledScenario::with_deadline_clamped`]) do not rewrite the
    /// source: it always reads as submitted.
    ///
    /// Scenarios assembled by hand in tests (not through
    /// [`Compiler::compile_file`] / [`Compiler::compile_str`]) carry an
    /// empty source.
    pub fn source(&self) -> &str {
        &self.source
    }

    /// A per-seed builder, identical to the prototype apart from the
    /// master seed.
    pub fn builder(&self, seed: u64) -> ScenarioBuilder {
        let mut b = self.proto.clone();
        b.config_mut().seed = seed;
        b
    }

    /// The prototype frozen as a [`ScenarioTemplate`] for seed sweeps
    /// and chaos campaigns.
    pub fn template(&self) -> ScenarioTemplate {
        ScenarioTemplate::new(self.proto.clone())
    }

    /// The compiled run deadline.
    pub fn deadline(&self) -> SimTime {
        self.proto.run_deadline()
    }

    /// A copy with the deadline clamped to at most `max` — the smoke
    /// runner's lever for bounding wall-clock without editing sources.
    pub fn with_deadline_clamped(&self, max: SimTime) -> CompiledScenario {
        let mut out = self.clone();
        if out.proto.run_deadline() > max {
            out.proto = std::mem::replace(&mut out.proto, ScenarioBuilder::new(0)).deadline(max);
        }
        out
    }

    /// A stable, line-oriented rendering of the compiled form — what the
    /// golden snapshots pin. Everything here is derived from the
    /// compiled prototype, so a byte of drift means the compiler's
    /// output changed for this source.
    pub fn describe(&self) -> String {
        let cfg = self.proto.config();
        let mut out = format!("scenario \"{}\"\n", self.name);
        out.push_str(&format!(
            "  world: area = {:?} x {:?} m, persons = {}, visibility = {:?}\n",
            cfg.area_width_m, cfg.area_height_m, cfg.person_count, cfg.visibility
        ));
        let defaults = cfg.fleet_defaults();
        out.push_str(&format!("  fleet: {} uavs", cfg.fleet.total()));
        for g in cfg.fleet.groups() {
            let p = g.profile.resolve(&defaults);
            out.push_str(&format!(
                " [{} x motors = {}, tolerated = {}, drain = {:?}]",
                g.count, p.motor_count, p.tolerated_motor_failures, p.battery_hover_drain
            ));
        }
        out.push_str(&format!(", shards = {:?}\n", cfg.fleet.shard_policy()));
        out.push_str(&format!(
            "  mission: sesame = {}, altitude = {:?} m, altitude_adaptation = {}, \
             deadline = {}, battery_swap = {}\n",
            cfg.sesame_enabled,
            cfg.scan_altitude_m,
            cfg.altitude_adaptation,
            crate::ast::fmt_duration_ms(self.proto.run_deadline().as_millis()),
            crate::ast::fmt_duration_ms(cfg.battery_swap.as_millis()),
        ));
        let faults = self.proto.fault_entries();
        let comm = self.proto.comm_fault_entries();
        let compute = self.proto.compute_fault_entries();
        out.push_str(&format!(
            "  schedule: {} vehicle, {} comm, {} compute\n",
            faults.len(),
            comm.len(),
            compute.len()
        ));
        for f in faults {
            out.push_str(&format!(
                "    at {} uav {} {:?}\n",
                crate::ast::fmt_duration_ms(f.at.as_millis()),
                f.uav_index,
                f.kind
            ));
        }
        for f in comm {
            out.push_str(&format!(
                "    at {} for {} comm {:?}\n",
                crate::ast::fmt_duration_ms(f.at.as_millis()),
                crate::ast::fmt_duration_ms(f.duration.as_millis()),
                f.kind
            ));
        }
        for f in compute {
            out.push_str(&format!(
                "    at {} for {} compute {:?}\n",
                crate::ast::fmt_duration_ms(f.at.as_millis()),
                crate::ast::fmt_duration_ms(f.duration.as_millis()),
                f.kind
            ));
        }
        match self.proto.attack_entry() {
            Some(a) => out.push_str(&format!(
                "  attack: start = {}, uav = {}, drift = ({:?}, {:?}, {:?}), \
                 forge_waypoints = {}\n",
                crate::ast::fmt_duration_ms(a.start.as_millis()),
                a.uav_index,
                a.gps_drift.x,
                a.gps_drift.y,
                a.gps_drift.z,
                a.forge_waypoints
            )),
            None => out.push_str("  attack: none\n"),
        }
        out
    }
}

// ---------------------------------------------------------------------
// The compiler driver: params, includes, file/string entry points
// ---------------------------------------------------------------------

/// The configurable compiler: set parameter overrides, then compile
/// files or strings. Reusable across compiles.
#[derive(Debug, Clone, Default)]
pub struct Compiler {
    params: BTreeMap<String, Value>,
}

struct Driver<'c> {
    compiler: &'c Compiler,
    env: Env,
    scenarios: Vec<CompiledScenario>,
    declared_params: Vec<String>,
    include_stack: Vec<PathBuf>,
}

impl Driver<'_> {
    /// Processes one parsed unit, attributing errors to (`name`, `src`).
    fn unit(
        &mut self,
        name: &str,
        src: &str,
        file: &SourceFile,
        dir: Option<&Path>,
    ) -> Result<(), DslError> {
        let attribute = |e: DslError| e.with_source(name, src);
        for item in &file.items {
            match item {
                Item::Param {
                    name: pname,
                    span,
                    default,
                } => {
                    if self.declared_params.iter().any(|p| p == pname) {
                        return Err(attribute(err_sem(
                            format!("duplicate param `{pname}`"),
                            *span,
                        )));
                    }
                    self.declared_params.push(pname.clone());
                    // The default is always evaluated (so it stays
                    // well-typed), then an override wins.
                    let value = eval(default, &self.env).map_err(attribute)?;
                    let value = self.compiler.params.get(pname).cloned().unwrap_or(value);
                    self.env.bind(pname, value);
                }
                Item::Let {
                    name: lname, value, ..
                } => {
                    let value = eval(value, &self.env).map_err(attribute)?;
                    self.env.bind(lname, value);
                }
                Item::Include { path, span } => {
                    self.include(path, *span, dir).map_err(attribute)?;
                }
                Item::Scenario(decl) => {
                    let compiled = assemble(decl, &mut self.env).map_err(attribute)?;
                    self.scenarios.push(compiled);
                }
            }
        }
        Ok(())
    }

    fn include(&mut self, rel: &str, span: Span, dir: Option<&Path>) -> Result<(), DslError> {
        let Some(dir) = dir else {
            return Err(DslError::new(
                ErrorKind::Include,
                "`include` needs a file-based compile (compile_str has no directory to \
                 resolve against)",
                span,
            ));
        };
        if self.include_stack.len() >= MAX_INCLUDE_DEPTH {
            return Err(DslError::new(
                ErrorKind::Include,
                format!("includes nest deeper than {MAX_INCLUDE_DEPTH}"),
                span,
            ));
        }
        let path = dir.join(rel);
        let canonical = path.canonicalize().map_err(|e| {
            DslError::new(
                ErrorKind::Include,
                format!("cannot include `{rel}`: {e}"),
                span,
            )
        })?;
        if self.include_stack.contains(&canonical) {
            return Err(DslError::new(
                ErrorKind::Include,
                format!("include cycle through `{rel}`"),
                span,
            ));
        }
        let src = std::fs::read_to_string(&canonical).map_err(|e| {
            DslError::new(
                ErrorKind::Include,
                format!("cannot include `{rel}`: {e}"),
                span,
            )
        })?;
        let name = file_label(&path);
        let parsed = parse(&src).map_err(|e| e.with_source(&name, &src))?;
        self.include_stack.push(canonical);
        let result = self.unit(&name, &src, &parsed, path.parent());
        self.include_stack.pop();
        result
    }
}

/// The displayed name of a source file: its final path component, so
/// error renderings (and their golden snapshots) are machine-portable.
fn file_label(path: &Path) -> String {
    path.file_name()
        .map(|n| n.to_string_lossy().into_owned())
        .unwrap_or_else(|| path.display().to_string())
}

impl Compiler {
    /// A compiler with no parameter overrides.
    pub fn new() -> Self {
        Compiler::default()
    }

    /// Overrides a `param`'s default value.
    pub fn param(mut self, name: impl Into<String>, value: impl Into<Value>) -> Self {
        self.params.insert(name.into(), value.into());
        self
    }

    /// Compiles every scenario declared in `path` (and its includes),
    /// in declaration order.
    pub fn compile_file(&self, path: impl AsRef<Path>) -> Result<Vec<CompiledScenario>, DslError> {
        let path = path.as_ref();
        let name = file_label(path);
        let src = std::fs::read_to_string(path).map_err(|e| {
            DslError::new(
                ErrorKind::Include,
                format!("cannot read `{}`: {e}", path.display()),
                Span::new(1, 1, 1),
            )
            .with_source(&name, "")
        })?;
        let parsed = parse(&src).map_err(|e| e.with_source(&name, &src))?;
        let mut driver = Driver {
            compiler: self,
            env: Env::new(),
            scenarios: Vec::new(),
            declared_params: Vec::new(),
            include_stack: Vec::new(),
        };
        if let Ok(canonical) = path.canonicalize() {
            driver.include_stack.push(canonical);
        }
        driver.unit(&name, &src, &parsed, path.parent())?;
        let mut scenarios = driver.scenarios;
        attach_source(&mut scenarios, &src);
        Ok(scenarios)
    }

    /// Compiles every scenario declared in `src`. `name` labels error
    /// messages. `include` items are rejected — strings have no
    /// directory to resolve includes against.
    pub fn compile_str(&self, name: &str, src: &str) -> Result<Vec<CompiledScenario>, DslError> {
        let parsed = parse(src).map_err(|e| e.with_source(name, src))?;
        let mut driver = Driver {
            compiler: self,
            env: Env::new(),
            scenarios: Vec::new(),
            declared_params: Vec::new(),
            include_stack: Vec::new(),
        };
        driver.unit(name, src, &parsed, None)?;
        let mut scenarios = driver.scenarios;
        attach_source(&mut scenarios, src);
        Ok(scenarios)
    }
}

/// Stamps the top-level compilation unit's text onto every scenario it
/// produced (one shared allocation). Scenarios pulled in through
/// `include` get the *including* unit's source — recompiling that text
/// in the same directory reproduces the whole set, which is the
/// contract [`CompiledScenario::source`] documents.
fn attach_source(scenarios: &mut [CompiledScenario], src: &str) {
    let shared: Arc<str> = Arc::from(src);
    for s in scenarios {
        s.source = Arc::clone(&shared);
    }
}

/// Compiles the first scenario of `path` with default parameters.
pub fn compile_file(path: impl AsRef<Path>) -> Result<CompiledScenario, DslError> {
    let path = path.as_ref();
    let scenarios = Compiler::new().compile_file(path)?;
    scenarios.into_iter().next().ok_or_else(|| {
        DslError::new(
            ErrorKind::Semantic,
            "the source declares no scenario",
            Span::new(1, 1, 1),
        )
        .with_source(&file_label(path), "")
    })
}

/// Compiles the first scenario of `src` with default parameters.
pub fn compile_str(name: &str, src: &str) -> Result<CompiledScenario, DslError> {
    let scenarios = Compiler::new().compile_str(name, src)?;
    scenarios.into_iter().next().ok_or_else(|| {
        DslError::new(
            ErrorKind::Semantic,
            "the source declares no scenario",
            Span::new(1, 1, 1),
        )
        .with_source(name, src)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    const FIG6: &str = r#"
param sesame = true
param attack = true

scenario "fig6_spoofing" {
    world { area = (420.0, 300.0), persons = 5 }
    mission {
        sesame = sesame
        deadline = 700s
    }
    attack {
        enabled = attack
        start = 120s
        uav = 0
        drift = (0.0, 4.0, 0.0)
        forge_waypoints = true
    }
}
"#;

    #[test]
    fn fig6_compiles_field_identical_to_hand_written() {
        let compiled = compile_str("fig6.sesame", FIG6).unwrap();
        let hand = sesame_core::experiments::fig6_scenario(7, true, true);
        let dsl = compiled.builder(7);
        assert_eq!(format!("{hand:?}"), format!("{dsl:?}"));
    }

    #[test]
    fn params_override() {
        let scenarios = Compiler::new()
            .param("sesame", false)
            .param("attack", false)
            .compile_str("fig6.sesame", FIG6)
            .unwrap();
        let compiled = &scenarios[0];
        let hand = sesame_core::experiments::fig6_scenario(3, false, false);
        let dsl = compiled.builder(3);
        assert_eq!(format!("{hand:?}"), format!("{dsl:?}"));
    }

    #[test]
    fn loops_unroll_deterministically() {
        let src = r#"
scenario "loops" {
    faults {
        for i in 0..3 {
            at secs(100 + i * 50) uav i gps_loss()
        }
    }
}
"#;
        let compiled = compile_str("loops.sesame", src).unwrap();
        let faults = compiled.builder(0);
        let entries = faults.fault_entries();
        assert_eq!(entries.len(), 3);
        assert_eq!(entries[1].at, SimTime::from_secs(150));
        assert_eq!(entries[2].uav_index, 2);
    }

    #[test]
    fn out_of_range_fault_is_a_spanned_error_not_a_panic() {
        let src = r#"
scenario "broken" {
    faults {
        at 10s uav 7 gps_loss()
    }
}
"#;
        let err = compile_str("broken.sesame", src).unwrap_err();
        assert_eq!(err.kind, ErrorKind::Semantic);
        assert!(err.message.contains("unbuildable"), "{}", err.message);
        assert!(err.span.line >= 1 && err.span.col >= 1);
    }

    #[test]
    fn unknown_key_lists_vocabulary() {
        let err = compile_str("x.sesame", "scenario \"x\" { world { personz = 5 } }").unwrap_err();
        assert!(err.message.contains("personz"), "{}", err.message);
        assert!(
            err.message.contains("area, persons, visibility"),
            "{}",
            err.message
        );
    }

    #[test]
    fn division_by_zero_is_an_error() {
        let err = compile_str("x.sesame", "param x = 1 / 0").unwrap_err();
        assert_eq!(err.kind, ErrorKind::Eval);
    }

    #[test]
    fn fleet_groups_compile() {
        let src = r#"
scenario "mixed" {
    fleet {
        uavs = 2
        group 4 { motors = 6, tolerated = 1, drain = 0.0006 }
        shards = fixed(2)
    }
}
"#;
        let compiled = compile_str("mixed.sesame", src).unwrap();
        let cfg = compiled.builder(0);
        assert_eq!(cfg.config().fleet.total(), 6);
        assert_eq!(
            cfg.config().fleet.shard_policy(),
            ShardPolicy::Fixed { shards: 2 }
        );
    }

    #[test]
    fn comm_uav_argument_is_zero_based() {
        let src = r#"
scenario "comm" {
    faults {
        at 10s for 30s comm link_blackout(uav = 1)
    }
}
"#;
        let compiled = compile_str("comm.sesame", src).unwrap();
        let b = compiled.builder(0);
        assert_eq!(
            b.comm_fault_entries()[0].kind,
            CommFaultKind::LinkBlackout { uav: UavId::new(2) }
        );
    }

    #[test]
    fn compile_str_rejects_includes() {
        let err = compile_str("x.sesame", "include \"other.sesame\"").unwrap_err();
        assert_eq!(err.kind, ErrorKind::Include);
    }

    #[test]
    fn iteration_limit_trips() {
        let src = r#"
scenario "spin" {
    faults {
        for i in 0..2000000 {
        }
    }
}
"#;
        let err = compile_str("spin.sesame", src).unwrap_err();
        assert_eq!(err.kind, ErrorKind::Limit);
    }
}
