//! The abstract syntax tree and its canonical pretty-printer.
//!
//! The printer defines the *canonical form* of a scenario source: one
//! item per line, four-space block indentation, `{:?}`-rendered floats
//! (Rust's shortest round-trip representation), durations as `Ns` when
//! whole seconds and `Nms` otherwise, and minimal precedence-aware
//! parentheses. The fuzz suite pins that printing is a fixed point:
//! `print(parse(print(parse(s)))) == print(parse(s))` for every source
//! `s` that parses at all.

use crate::error::Span;
use std::fmt;

/// A parsed source file.
#[derive(Debug, Clone, PartialEq)]
pub struct SourceFile {
    /// Top-level items in declaration order.
    pub items: Vec<Item>,
}

/// One top-level item.
#[derive(Debug, Clone, PartialEq)]
pub enum Item {
    /// `param NAME = expr` — a compile-time parameter with a default,
    /// overridable by the embedding harness.
    Param {
        /// Parameter name.
        name: String,
        /// Where the name sits.
        span: Span,
        /// Default value expression.
        default: Expr,
    },
    /// `let NAME = expr` — a bound constant.
    Let {
        /// Binding name.
        name: String,
        /// Where the name sits.
        span: Span,
        /// Bound expression.
        value: Expr,
    },
    /// `include "path"` — splice another file's items here.
    Include {
        /// The verbatim include path (resolved relative to the
        /// including file).
        path: String,
        /// Where the path literal sits.
        span: Span,
    },
    /// A scenario declaration.
    Scenario(ScenarioDecl),
}

/// `scenario "name" { sections }`
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioDecl {
    /// The scenario's name.
    pub name: String,
    /// Where the name literal sits.
    pub span: Span,
    /// Sections in declaration order.
    pub sections: Vec<Section>,
}

/// One section of a scenario.
#[derive(Debug, Clone, PartialEq)]
pub enum Section {
    /// `world { key = value ... }`
    World(Block),
    /// `fleet { uavs = n | group n { ... } | shards = policy }`
    Fleet {
        /// Section-opening span.
        span: Span,
        /// Entries in declaration order.
        items: Vec<FleetItem>,
    },
    /// `mission { key = value ... }`
    Mission(Block),
    /// `faults { entries }`
    Faults {
        /// Section-opening span.
        span: Span,
        /// Statements in declaration order.
        stmts: Vec<FaultStmt>,
    },
    /// `attack { key = value ... }`
    Attack(Block),
}

/// A plain key/value section body.
#[derive(Debug, Clone, PartialEq)]
pub struct Block {
    /// Section-opening span.
    pub span: Span,
    /// Assignments in declaration order.
    pub assigns: Vec<Assign>,
}

/// `key = expr`
#[derive(Debug, Clone, PartialEq)]
pub struct Assign {
    /// The key name.
    pub key: String,
    /// Where the key sits.
    pub span: Span,
    /// The assigned expression.
    pub value: Expr,
}

/// One entry of the fleet section.
#[derive(Debug, Clone, PartialEq)]
pub enum FleetItem {
    /// `uavs = n` or `shards = policy`
    Assign(Assign),
    /// `group n { motors = 6, tolerated = 1, drain = 0.0006 }`
    Group {
        /// Where `group` sits.
        span: Span,
        /// UAV count expression.
        count: Expr,
        /// Profile overrides.
        assigns: Vec<Assign>,
    },
}

/// One statement in the faults section.
#[derive(Debug, Clone, PartialEq)]
pub enum FaultStmt {
    /// A scheduled entry.
    Entry(FaultEntryStmt),
    /// `for VAR in start..end { stmts }`
    For {
        /// Loop variable name.
        var: String,
        /// Where the variable sits.
        span: Span,
        /// Inclusive start expression.
        start: Expr,
        /// Exclusive end expression.
        end: Expr,
        /// Loop body.
        body: Vec<FaultStmt>,
    },
}

/// Which fault plane an entry schedules on.
#[derive(Debug, Clone, PartialEq)]
pub enum FaultPlane {
    /// `at T uav IDX kind(...)` — a vehicle fault, instantaneous.
    Vehicle {
        /// Fleet-index expression.
        uav: Expr,
    },
    /// `at T for D comm kind(...)` — a communication fault window.
    Comm,
    /// `at T for D compute kind(...)` — a compute-plane fault window.
    Compute,
}

/// One scheduled fault entry.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultEntryStmt {
    /// Where `at` sits.
    pub span: Span,
    /// Activation time expression.
    pub at: Expr,
    /// Window duration (`for D`), required for comm/compute, forbidden
    /// for vehicle faults.
    pub duration: Option<Expr>,
    /// The plane.
    pub plane: FaultPlane,
    /// The fault constructor call.
    pub call: FaultCall,
}

/// `name(key = value, ...)`
#[derive(Debug, Clone, PartialEq)]
pub struct FaultCall {
    /// Constructor name (`gps_spoof`, `link_blackout`, ...).
    pub name: String,
    /// Where the name sits.
    pub span: Span,
    /// Named arguments.
    pub args: Vec<Assign>,
}

/// A unary operator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnOp {
    /// `-`
    Neg,
}

/// A binary operator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `%`
    Rem,
}

impl BinOp {
    /// Source spelling.
    pub fn symbol(self) -> &'static str {
        match self {
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
            BinOp::Rem => "%",
        }
    }

    fn prec(self) -> u8 {
        match self {
            BinOp::Add | BinOp::Sub => 1,
            BinOp::Mul | BinOp::Div | BinOp::Rem => 2,
        }
    }
}

/// An expression.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Integer literal.
    Int(i64, Span),
    /// Float literal (always finite).
    Float(f64, Span),
    /// Boolean literal.
    Bool(bool, Span),
    /// String literal.
    Str(String, Span),
    /// Duration literal, milliseconds.
    DurationMs(u64, Span),
    /// A name reference (param, let, loop variable or builtin constant).
    Var(String, Span),
    /// Unary operation.
    Unary {
        /// The operator.
        op: UnOp,
        /// The operand.
        expr: Box<Expr>,
        /// Operator span.
        span: Span,
    },
    /// Binary operation.
    Binary {
        /// The operator.
        op: BinOp,
        /// Left operand.
        lhs: Box<Expr>,
        /// Right operand.
        rhs: Box<Expr>,
        /// Operator span.
        span: Span,
    },
    /// `(a, b)` / `(x, y, z)` — a tuple of 2+ expressions.
    Tuple(Vec<Expr>, Span),
    /// `name(args...)` — a builtin call (`secs`, `millis`, `fixed`).
    Call {
        /// Callee name.
        name: String,
        /// Positional arguments.
        args: Vec<Expr>,
        /// Callee span.
        span: Span,
    },
}

impl Expr {
    /// The expression's source position.
    pub fn span(&self) -> Span {
        match self {
            Expr::Int(_, s)
            | Expr::Float(_, s)
            | Expr::Bool(_, s)
            | Expr::Str(_, s)
            | Expr::DurationMs(_, s)
            | Expr::Var(_, s)
            | Expr::Unary { span: s, .. }
            | Expr::Binary { span: s, .. }
            | Expr::Tuple(_, s)
            | Expr::Call { span: s, .. } => *s,
        }
    }

    fn prec(&self) -> u8 {
        match self {
            Expr::Binary { op, .. } => op.prec(),
            Expr::Unary { .. } => 3,
            _ => 4,
        }
    }
}

/// Renders a duration in canonical form: whole seconds as `Ns`,
/// everything else as `Nms`.
pub fn fmt_duration_ms(ms: u64) -> String {
    if ms.is_multiple_of(1000) {
        format!("{}s", ms / 1000)
    } else {
        format!("{ms}ms")
    }
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c => out.push(c),
        }
    }
    out
}

fn write_expr(out: &mut String, e: &Expr, parent_prec: u8) {
    let needs_parens = e.prec() < parent_prec;
    if needs_parens {
        out.push('(');
    }
    match e {
        Expr::Int(n, _) => out.push_str(&n.to_string()),
        Expr::Float(x, _) => out.push_str(&format!("{x:?}")),
        Expr::Bool(b, _) => out.push_str(if *b { "true" } else { "false" }),
        Expr::Str(s, _) => {
            out.push('"');
            out.push_str(&escape(s));
            out.push('"');
        }
        Expr::DurationMs(ms, _) => out.push_str(&fmt_duration_ms(*ms)),
        Expr::Var(name, _) => out.push_str(name),
        Expr::Unary {
            op: UnOp::Neg,
            expr,
            ..
        } => {
            out.push('-');
            write_expr(out, expr, 4);
        }
        Expr::Binary { op, lhs, rhs, .. } => {
            write_expr(out, lhs, op.prec());
            out.push(' ');
            out.push_str(op.symbol());
            out.push(' ');
            write_expr(out, rhs, op.prec() + 1);
        }
        Expr::Tuple(items, _) => {
            out.push('(');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                write_expr(out, item, 0);
            }
            out.push(')');
        }
        Expr::Call { name, args, .. } => {
            out.push_str(name);
            out.push('(');
            for (i, a) in args.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                write_expr(out, a, 0);
            }
            out.push(')');
        }
    }
    if needs_parens {
        out.push(')');
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut s = String::new();
        write_expr(&mut s, self, 0);
        f.write_str(&s)
    }
}

fn write_assigns(out: &mut String, assigns: &[Assign], indent: usize) {
    for a in assigns {
        out.push_str(&"    ".repeat(indent));
        out.push_str(&a.key);
        out.push_str(" = ");
        write_expr(out, &a.value, 0);
        out.push('\n');
    }
}

fn write_call(out: &mut String, call: &FaultCall) {
    out.push_str(&call.name);
    out.push('(');
    for (i, a) in call.args.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        out.push_str(&a.key);
        out.push_str(" = ");
        write_expr(out, &a.value, 0);
    }
    out.push(')');
}

fn write_fault_stmts(out: &mut String, stmts: &[FaultStmt], indent: usize) {
    for stmt in stmts {
        out.push_str(&"    ".repeat(indent));
        match stmt {
            FaultStmt::Entry(e) => {
                out.push_str("at ");
                write_expr(out, &e.at, 0);
                if let Some(d) = &e.duration {
                    out.push_str(" for ");
                    write_expr(out, d, 0);
                }
                match &e.plane {
                    FaultPlane::Vehicle { uav } => {
                        out.push_str(" uav ");
                        write_expr(out, uav, 3);
                    }
                    FaultPlane::Comm => out.push_str(" comm"),
                    FaultPlane::Compute => out.push_str(" compute"),
                }
                out.push(' ');
                write_call(out, &e.call);
                out.push('\n');
            }
            FaultStmt::For {
                var,
                start,
                end,
                body,
                ..
            } => {
                out.push_str("for ");
                out.push_str(var);
                out.push_str(" in ");
                write_expr(out, start, 3);
                out.push_str("..");
                write_expr(out, end, 3);
                out.push_str(" {\n");
                write_fault_stmts(out, body, indent + 1);
                out.push_str(&"    ".repeat(indent));
                out.push_str("}\n");
            }
        }
    }
}

fn write_section(out: &mut String, section: &Section) {
    match section {
        Section::World(b) => {
            out.push_str("    world {\n");
            write_assigns(out, &b.assigns, 2);
            out.push_str("    }\n");
        }
        Section::Fleet { items, .. } => {
            out.push_str("    fleet {\n");
            for item in items {
                match item {
                    FleetItem::Assign(a) => write_assigns(out, std::slice::from_ref(a), 2),
                    FleetItem::Group { count, assigns, .. } => {
                        out.push_str("        group ");
                        write_expr(out, count, 3);
                        out.push_str(" {\n");
                        write_assigns(out, assigns, 3);
                        out.push_str("        }\n");
                    }
                }
            }
            out.push_str("    }\n");
        }
        Section::Mission(b) => {
            out.push_str("    mission {\n");
            write_assigns(out, &b.assigns, 2);
            out.push_str("    }\n");
        }
        Section::Faults { stmts, .. } => {
            out.push_str("    faults {\n");
            write_fault_stmts(out, stmts, 2);
            out.push_str("    }\n");
        }
        Section::Attack(b) => {
            out.push_str("    attack {\n");
            write_assigns(out, &b.assigns, 2);
            out.push_str("    }\n");
        }
    }
}

impl fmt::Display for SourceFile {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut out = String::new();
        for item in &self.items {
            match item {
                Item::Param { name, default, .. } => {
                    out.push_str("param ");
                    out.push_str(name);
                    out.push_str(" = ");
                    write_expr(&mut out, default, 0);
                    out.push('\n');
                }
                Item::Let { name, value, .. } => {
                    out.push_str("let ");
                    out.push_str(name);
                    out.push_str(" = ");
                    write_expr(&mut out, value, 0);
                    out.push('\n');
                }
                Item::Include { path, .. } => {
                    out.push_str("include \"");
                    out.push_str(&escape(path));
                    out.push_str("\"\n");
                }
                Item::Scenario(decl) => {
                    out.push_str("scenario \"");
                    out.push_str(&escape(&decl.name));
                    out.push_str("\" {\n");
                    for section in &decl.sections {
                        write_section(&mut out, section);
                    }
                    out.push_str("}\n");
                }
            }
        }
        f.write_str(&out)
    }
}
