//! Interned keys: every key name the DSL understands is resolved to a
//! small enum exactly once, at compile time, so section assembly
//! dispatches on a `Copy` token instead of re-comparing strings — the
//! minijinja-style "intern at compile, match at run" split. Unknown
//! keys fail interning and surface as spanned semantic errors that list
//! the section's vocabulary.

/// A known assignment key, across every section.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Key {
    /// `area` (world): `(width_m, height_m)` tuple.
    Area,
    /// `persons` (world): ground-truth person count.
    Persons,
    /// `visibility` (world): `[0, 1]`.
    Visibility,
    /// `uavs` (fleet): a group of default-profile UAVs.
    Uavs,
    /// `shards` (fleet): `auto`, `serial` or `fixed(n)`.
    Shards,
    /// `motors` (fleet group): motors per airframe.
    Motors,
    /// `tolerated` (fleet group): tolerated motor failures.
    Tolerated,
    /// `drain` (fleet group): battery hover drain per second.
    Drain,
    /// `sesame` (mission): SESAME stack on/off.
    Sesame,
    /// `altitude` (mission): initial scan altitude, metres.
    Altitude,
    /// `altitude_adaptation` (mission): §V-B policy on/off.
    AltitudeAdaptation,
    /// `deadline` (mission): run deadline.
    Deadline,
    /// `battery_swap` (mission): swap duration at base.
    BatterySwap,
    /// `battery_hover_drain` (mission): platform-wide default drain.
    BatteryHoverDrain,
    /// `enabled` (attack): arms or disarms the section.
    Enabled,
    /// `start` (attack): attack start time.
    Start,
    /// `uav` (attack, fault args): target fleet index.
    Uav,
    /// `drift` (attack, `gps_spoof`): ENU drag velocity tuple.
    Drift,
    /// `forge_waypoints` (attack): forged-waypoint injection on/off.
    ForgeWaypoints,
    /// `soc_drop` (`battery_over_temp`): instant charge loss fraction.
    SocDrop,
    /// `motor` (`motor_failure` / `motor_restore`): motor index.
    Motor,
    /// `health` (`vision_degraded`): remaining health `[0, 1]`.
    Health,
    /// `direction` (`partition`): `uplink` or `downlink`.
    Direction,
    /// `delay` (`staleness`): extra one-way telemetry delay.
    Delay,
}

impl Key {
    /// The key's source spelling.
    pub fn name(self) -> &'static str {
        match self {
            Key::Area => "area",
            Key::Persons => "persons",
            Key::Visibility => "visibility",
            Key::Uavs => "uavs",
            Key::Shards => "shards",
            Key::Motors => "motors",
            Key::Tolerated => "tolerated",
            Key::Drain => "drain",
            Key::Sesame => "sesame",
            Key::Altitude => "altitude",
            Key::AltitudeAdaptation => "altitude_adaptation",
            Key::Deadline => "deadline",
            Key::BatterySwap => "battery_swap",
            Key::BatteryHoverDrain => "battery_hover_drain",
            Key::Enabled => "enabled",
            Key::Start => "start",
            Key::Uav => "uav",
            Key::Drift => "drift",
            Key::ForgeWaypoints => "forge_waypoints",
            Key::SocDrop => "soc_drop",
            Key::Motor => "motor",
            Key::Health => "health",
            Key::Direction => "direction",
            Key::Delay => "delay",
        }
    }
}

/// Resolves a source key name to its interned token, or `None` when the
/// name is not part of the DSL vocabulary at all.
pub fn intern(name: &str) -> Option<Key> {
    Some(match name {
        "area" => Key::Area,
        "persons" => Key::Persons,
        "visibility" => Key::Visibility,
        "uavs" => Key::Uavs,
        "shards" => Key::Shards,
        "motors" => Key::Motors,
        "tolerated" => Key::Tolerated,
        "drain" => Key::Drain,
        "sesame" => Key::Sesame,
        "altitude" => Key::Altitude,
        "altitude_adaptation" => Key::AltitudeAdaptation,
        "deadline" => Key::Deadline,
        "battery_swap" => Key::BatterySwap,
        "battery_hover_drain" => Key::BatteryHoverDrain,
        "enabled" => Key::Enabled,
        "start" => Key::Start,
        "uav" => Key::Uav,
        "drift" => Key::Drift,
        "forge_waypoints" => Key::ForgeWaypoints,
        "soc_drop" => Key::SocDrop,
        "motor" => Key::Motor,
        "health" => Key::Health,
        "direction" => Key::Direction,
        "delay" => Key::Delay,
        _ => return None,
    })
}

/// A vehicle-fault constructor name.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VehicleFn {
    /// `battery_over_temp(soc_drop = f)`
    BatteryOverTemp,
    /// `motor_failure(motor = i)`
    MotorFailure,
    /// `motor_restore(motor = i)`
    MotorRestore,
    /// `gps_loss()`
    GpsLoss,
    /// `gps_spoof(drift = (x, y, z))`
    GpsSpoof,
    /// `gps_restore()`
    GpsRestore,
    /// `vision_degraded(health = f)`
    VisionDegraded,
    /// `vision_restore()`
    VisionRestore,
}

/// A communication-fault constructor name.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CommFn {
    /// `link_blackout(uav = i)`
    LinkBlackout,
    /// `partition(uav = i, direction = uplink|downlink)`
    Partition,
    /// `broker_outage()`
    BrokerOutage,
    /// `staleness(uav = i, delay = d)`
    Staleness,
}

/// A compute-fault constructor name.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ComputeFn {
    /// `eddi_panic(uav = i)`
    EddiPanic,
    /// `telemetry_nan(uav = i)`
    TelemetryNan,
    /// `telemetry_inf(uav = i)`
    TelemetryInf,
    /// `solver_stall(uav = i)`
    SolverStall,
}

/// Resolves a vehicle-fault constructor name.
pub fn vehicle_fn(name: &str) -> Option<VehicleFn> {
    Some(match name {
        "battery_over_temp" => VehicleFn::BatteryOverTemp,
        "motor_failure" => VehicleFn::MotorFailure,
        "motor_restore" => VehicleFn::MotorRestore,
        "gps_loss" => VehicleFn::GpsLoss,
        "gps_spoof" => VehicleFn::GpsSpoof,
        "gps_restore" => VehicleFn::GpsRestore,
        "vision_degraded" => VehicleFn::VisionDegraded,
        "vision_restore" => VehicleFn::VisionRestore,
        _ => return None,
    })
}

/// Resolves a communication-fault constructor name.
pub fn comm_fn(name: &str) -> Option<CommFn> {
    Some(match name {
        "link_blackout" => CommFn::LinkBlackout,
        "partition" => CommFn::Partition,
        "broker_outage" => CommFn::BrokerOutage,
        "staleness" => CommFn::Staleness,
        _ => return None,
    })
}

/// Resolves a compute-fault constructor name.
pub fn compute_fn(name: &str) -> Option<ComputeFn> {
    Some(match name {
        "eddi_panic" => ComputeFn::EddiPanic,
        "telemetry_nan" => ComputeFn::TelemetryNan,
        "telemetry_inf" => ComputeFn::TelemetryInf,
        "solver_stall" => ComputeFn::SolverStall,
        _ => return None,
    })
}

/// The vehicle-fault vocabulary, for "did you mean" error listings.
pub const VEHICLE_FNS: &str =
    "battery_over_temp, motor_failure, motor_restore, gps_loss, gps_spoof, gps_restore, \
     vision_degraded, vision_restore";

/// The comm-fault vocabulary.
pub const COMM_FNS: &str = "link_blackout, partition, broker_outage, staleness";

/// The compute-fault vocabulary.
pub const COMPUTE_FNS: &str = "eddi_panic, telemetry_nan, telemetry_inf, solver_stall";

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_round_trips_every_key() {
        for key in [
            Key::Area,
            Key::Persons,
            Key::Visibility,
            Key::Uavs,
            Key::Shards,
            Key::Motors,
            Key::Tolerated,
            Key::Drain,
            Key::Sesame,
            Key::Altitude,
            Key::AltitudeAdaptation,
            Key::Deadline,
            Key::BatterySwap,
            Key::BatteryHoverDrain,
            Key::Enabled,
            Key::Start,
            Key::Uav,
            Key::Drift,
            Key::ForgeWaypoints,
            Key::SocDrop,
            Key::Motor,
            Key::Health,
            Key::Direction,
            Key::Delay,
        ] {
            assert_eq!(intern(key.name()), Some(key));
        }
        assert_eq!(intern("personz"), None);
    }
}
