//! `sesame-scenario-dsl` — a compiled, text-based scenario language for
//! the SESAME SAR platform.
//!
//! The paper's evaluation rests on hand-coded Rust scenarios; this crate
//! makes the same descriptions declarative so campaigns can cover an
//! order of magnitude more worlds, missions and fault/attack schedules
//! without touching Rust. A `.sesame` source describes a scenario —
//! world, fleet, mission, fault schedule, spoofing attack — with
//! parameters, arithmetic, loops and includes, and compiles **once**
//! into the existing [`sesame_core::scenario`] types.
//!
//! # Pipeline
//!
//! Following minijinja's architecture:
//!
//! 1. **Lexer** ([`lexer`]) — source → spanned tokens; durations
//!    normalize to milliseconds at lex time.
//! 2. **Parser** ([`parser`]) — tokens → [`ast::SourceFile`]; nesting is
//!    depth-capped so hostile input errors instead of overflowing.
//! 3. **Compiler** ([`compiler`]) — AST → [`CompiledScenario`]: keys are
//!    interned ([`key`]) once, expressions evaluate to an [`Arc`]-based
//!    value model ([`value::Value`]), and the result is a frozen
//!    [`sesame_core::scenario::ScenarioBuilder`] prototype.
//!
//! # Determinism
//!
//! A compiled scenario instantiates builders **field-for-field
//! identical** to hand-written ones: both start from
//! [`sesame_core::scenario::ScenarioBuilder::base_config`] and apply the
//! same public builder calls. The differential conformance suite
//! (`tests/scenario_dsl_conformance.rs` at the workspace root) pins
//! digest equality across seeds, serial and sharded. Compilation itself
//! is pure — no wall clock, no ambient randomness, no hash-ordered
//! iteration — so the same source bytes always compile to the same
//! prototype.
//!
//! # Quickstart
//!
//! ```
//! let src = r#"
//! scenario "two_blackouts" {
//!     world { area = (200.0, 120.0), persons = 4 }
//!     mission { deadline = 300s }
//!     faults {
//!         for i in 0..2 {
//!             at secs(60 + i * 30) for 20s comm link_blackout(uav = i)
//!         }
//!     }
//! }
//! "#;
//! let compiled = sesame_scenario_dsl::compile_str("doc.sesame", src).unwrap();
//! assert_eq!(compiled.builder(1).comm_fault_entries().len(), 2);
//! ```
//!
//! [`Arc`]: std::sync::Arc

pub mod ast;
pub mod compiler;
pub mod error;
pub mod key;
pub mod lexer;
pub mod parser;
pub mod value;

pub use compiler::{compile_file, compile_str, CompiledScenario, Compiler};
pub use error::{DslError, ErrorKind, Span};
pub use parser::parse;
pub use value::Value;

// Compiled scenarios ship across campaign worker threads exactly like
// hand-written templates; losing `Send + Sync` must fail at compile
// time.
sesame_types::assert_send_sync!(CompiledScenario, Compiler, DslError, Value);
