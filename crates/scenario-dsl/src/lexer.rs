//! The lexer: source text → a flat token stream with spans.
//!
//! Whitespace and `#`-to-end-of-line comments are insignificant;
//! newlines do not terminate anything (items are self-delimiting, and
//! commas between block entries are optional). Duration literals are a
//! number immediately followed by `s` or `ms` (`120s`, `500ms`, `1.5s`)
//! and normalize to whole milliseconds — the simulation clock's
//! resolution — at lex time.
//!
//! Only `scenario`, `param`, `let`, `include`, `for`, `in`, `group`,
//! `true` and `false` are reserved words; contextual words like `at`,
//! `uav`, `comm` and `compute` lex as plain identifiers so they remain
//! usable as argument keys (`link_blackout(uav = 1)`).

use crate::error::{DslError, ErrorKind, Span};

/// One lexed token.
#[derive(Debug, Clone, PartialEq)]
pub enum Tok {
    /// An identifier or contextual keyword.
    Ident(String),
    /// An integer literal (i64-checked at lex time).
    Int(i64),
    /// A float literal (finite-checked at lex time).
    Float(f64),
    /// A double-quoted string literal, unescaped.
    Str(String),
    /// A duration literal, normalized to milliseconds.
    DurationMs(u64),
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `,`
    Comma,
    /// `=`
    Eq,
    /// `..`
    DotDot,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*`
    Star,
    /// `/`
    Slash,
    /// `%`
    Percent,
    /// `scenario`
    KwScenario,
    /// `param`
    KwParam,
    /// `let`
    KwLet,
    /// `include`
    KwInclude,
    /// `for`
    KwFor,
    /// `in`
    KwIn,
    /// `group`
    KwGroup,
    /// `true`
    KwTrue,
    /// `false`
    KwFalse,
}

impl Tok {
    /// Short human label for "expected X, found Y" messages.
    pub fn describe(&self) -> String {
        match self {
            Tok::Ident(s) => format!("identifier `{s}`"),
            Tok::Int(n) => format!("integer `{n}`"),
            Tok::Float(x) => format!("float `{x:?}`"),
            Tok::Str(_) => "string literal".into(),
            Tok::DurationMs(_) => "duration literal".into(),
            Tok::LBrace => "`{`".into(),
            Tok::RBrace => "`}`".into(),
            Tok::LParen => "`(`".into(),
            Tok::RParen => "`)`".into(),
            Tok::Comma => "`,`".into(),
            Tok::Eq => "`=`".into(),
            Tok::DotDot => "`..`".into(),
            Tok::Plus => "`+`".into(),
            Tok::Minus => "`-`".into(),
            Tok::Star => "`*`".into(),
            Tok::Slash => "`/`".into(),
            Tok::Percent => "`%`".into(),
            Tok::KwScenario => "`scenario`".into(),
            Tok::KwParam => "`param`".into(),
            Tok::KwLet => "`let`".into(),
            Tok::KwInclude => "`include`".into(),
            Tok::KwFor => "`for`".into(),
            Tok::KwIn => "`in`".into(),
            Tok::KwGroup => "`group`".into(),
            Tok::KwTrue => "`true`".into(),
            Tok::KwFalse => "`false`".into(),
        }
    }
}

/// A token plus where it starts.
#[derive(Debug, Clone, PartialEq)]
pub struct Spanned {
    /// The token.
    pub tok: Tok,
    /// Its source location.
    pub span: Span,
}

fn keyword(word: &str) -> Option<Tok> {
    Some(match word {
        "scenario" => Tok::KwScenario,
        "param" => Tok::KwParam,
        "let" => Tok::KwLet,
        "include" => Tok::KwInclude,
        "for" => Tok::KwFor,
        "in" => Tok::KwIn,
        "group" => Tok::KwGroup,
        "true" => Tok::KwTrue,
        "false" => Tok::KwFalse,
        _ => return None,
    })
}

struct Lexer<'a> {
    chars: std::iter::Peekable<std::str::Chars<'a>>,
    line: u32,
    col: u32,
}

impl<'a> Lexer<'a> {
    fn new(src: &'a str) -> Self {
        Lexer {
            chars: src.chars().peekable(),
            line: 1,
            col: 1,
        }
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.chars.next()?;
        if c == '\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }

    fn peek(&mut self) -> Option<char> {
        self.chars.peek().copied()
    }

    fn here(&self, len: u32) -> Span {
        Span::new(self.line, self.col, len)
    }

    fn err(&self, msg: impl Into<String>, span: Span) -> DslError {
        DslError::new(ErrorKind::Lex, msg, span)
    }

    fn number(&mut self, start: Span) -> Result<Tok, DslError> {
        let mut text = String::new();
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            text.push(self.bump().unwrap());
        }
        let mut is_float = false;
        // A fractional part — but `..` after a number is a range, not a
        // malformed float, so look two characters ahead through a clone.
        if self.peek() == Some('.') {
            let mut ahead = self.chars.clone();
            ahead.next();
            if matches!(ahead.peek(), Some(c) if c.is_ascii_digit()) {
                is_float = true;
                text.push(self.bump().unwrap());
                while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                    text.push(self.bump().unwrap());
                }
            }
        }
        // An exponent. `{:?}`-rendered floats (the pretty-printer's
        // format) can carry one, so round-tripping requires it.
        if matches!(self.peek(), Some('e' | 'E')) {
            let mut ahead = self.chars.clone();
            ahead.next();
            let sign = matches!(ahead.peek(), Some('+' | '-'));
            if sign {
                ahead.next();
            }
            if matches!(ahead.peek(), Some(c) if c.is_ascii_digit()) {
                is_float = true;
                text.push(self.bump().unwrap());
                if sign {
                    text.push(self.bump().unwrap());
                }
                while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                    text.push(self.bump().unwrap());
                }
            }
        }
        let span = Span::new(start.line, start.col, text.chars().count() as u32);
        // A duration suffix immediately after the digits: `s` or `ms`.
        if self.peek() == Some('s') || self.peek() == Some('m') {
            let unit_ms = if self.peek() == Some('s') {
                self.bump();
                1000u64
            } else {
                let mut ahead = self.chars.clone();
                ahead.next();
                if ahead.peek() == Some(&'s') {
                    self.bump();
                    self.bump();
                    1u64
                } else {
                    // `120m` is not a duration; let the `m` start the
                    // next identifier (e.g. `5 motors` typo'd together
                    // still errors at parse, not here).
                    0u64
                }
            };
            if unit_ms > 0 {
                let ms = if is_float {
                    let secs: f64 = text
                        .parse()
                        .map_err(|_| self.err(format!("malformed number `{text}`"), span))?;
                    if !secs.is_finite() {
                        return Err(
                            self.err(format!("duration literal `{text}` overflows f64"), span)
                        );
                    }
                    let ms = secs * unit_ms as f64;
                    if ms < 0.0 || ms > u64::MAX as f64 {
                        return Err(
                            self.err(format!("duration literal `{text}` is out of range"), span)
                        );
                    }
                    ms.round() as u64
                } else {
                    let n: u64 = text.parse().map_err(|_| {
                        self.err(format!("duration literal `{text}` overflows"), span)
                    })?;
                    n.checked_mul(unit_ms).ok_or_else(|| {
                        self.err(format!("duration literal `{text}` overflows"), span)
                    })?
                };
                return Ok(Tok::DurationMs(ms));
            }
        }
        if is_float {
            let x: f64 = text
                .parse()
                .map_err(|_| self.err(format!("malformed number `{text}`"), span))?;
            if !x.is_finite() {
                return Err(self.err(format!("float literal `{text}` overflows f64"), span));
            }
            Ok(Tok::Float(x))
        } else {
            let n: i64 = text
                .parse()
                .map_err(|_| self.err(format!("integer literal `{text}` overflows i64"), span))?;
            Ok(Tok::Int(n))
        }
    }

    fn string(&mut self, start: Span) -> Result<Tok, DslError> {
        self.bump(); // opening quote
        let mut out = String::new();
        loop {
            match self.bump() {
                None | Some('\n') => {
                    return Err(self.err("unterminated string literal", start));
                }
                Some('"') => return Ok(Tok::Str(out)),
                Some('\\') => match self.bump() {
                    Some('"') => out.push('"'),
                    Some('\\') => out.push('\\'),
                    Some('n') => out.push('\n'),
                    Some('t') => out.push('\t'),
                    other => {
                        return Err(self.err(
                            format!(
                                "unknown escape `\\{}`",
                                other.map(String::from).unwrap_or_default()
                            ),
                            start,
                        ))
                    }
                },
                Some(c) => out.push(c),
            }
        }
    }
}

/// Lexes `src` to completion. The token stream has no trivia; spans are
/// 1-based line/column of each token's first character.
pub fn lex(src: &str) -> Result<Vec<Spanned>, DslError> {
    let mut lx = Lexer::new(src);
    let mut out = Vec::new();
    loop {
        // Skip whitespace and comments.
        loop {
            match lx.peek() {
                Some(c) if c.is_whitespace() => {
                    lx.bump();
                }
                Some('#') => {
                    while !matches!(lx.peek(), None | Some('\n')) {
                        lx.bump();
                    }
                }
                _ => break,
            }
        }
        let Some(c) = lx.peek() else { break };
        let start = lx.here(1);
        let tok = match c {
            '{' => {
                lx.bump();
                Tok::LBrace
            }
            '}' => {
                lx.bump();
                Tok::RBrace
            }
            '(' => {
                lx.bump();
                Tok::LParen
            }
            ')' => {
                lx.bump();
                Tok::RParen
            }
            ',' => {
                lx.bump();
                Tok::Comma
            }
            '=' => {
                lx.bump();
                Tok::Eq
            }
            '+' => {
                lx.bump();
                Tok::Plus
            }
            '-' => {
                lx.bump();
                Tok::Minus
            }
            '*' => {
                lx.bump();
                Tok::Star
            }
            '/' => {
                lx.bump();
                Tok::Slash
            }
            '%' => {
                lx.bump();
                Tok::Percent
            }
            '.' => {
                lx.bump();
                if lx.peek() == Some('.') {
                    lx.bump();
                    Tok::DotDot
                } else {
                    return Err(lx.err("stray `.` (ranges use `..`)", start));
                }
            }
            '"' => lx.string(start)?,
            c if c.is_ascii_digit() => lx.number(start)?,
            c if c.is_alphabetic() || c == '_' => {
                let mut word = String::new();
                while matches!(lx.peek(), Some(c) if c.is_alphanumeric() || c == '_') {
                    word.push(lx.bump().unwrap());
                }
                keyword(&word).unwrap_or(Tok::Ident(word))
            }
            other => {
                return Err(lx.err(format!("unexpected character `{other}`"), start));
            }
        };
        let len = match &tok {
            Tok::Ident(s) => s.chars().count() as u32,
            Tok::DotDot => 2,
            _ => start.len,
        };
        out.push(Spanned {
            tok,
            span: Span::new(start.line, start.col, len),
        });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(src: &str) -> Vec<Tok> {
        lex(src).unwrap().into_iter().map(|s| s.tok).collect()
    }

    #[test]
    fn durations_normalize_to_millis() {
        assert_eq!(
            toks("120s 500ms 1.5s"),
            vec![
                Tok::DurationMs(120_000),
                Tok::DurationMs(500),
                Tok::DurationMs(1500)
            ]
        );
    }

    #[test]
    fn range_after_int_is_not_a_float() {
        assert_eq!(toks("0..3"), vec![Tok::Int(0), Tok::DotDot, Tok::Int(3)]);
    }

    #[test]
    fn exponent_floats_lex() {
        assert_eq!(toks("6e-4"), vec![Tok::Float(6e-4)]);
        assert_eq!(toks("1.5e3"), vec![Tok::Float(1500.0)]);
    }

    #[test]
    fn comments_and_commas_skip() {
        assert_eq!(
            toks("a = 1, # trailing\nb"),
            vec![
                Tok::Ident("a".into()),
                Tok::Eq,
                Tok::Int(1),
                Tok::Comma,
                Tok::Ident("b".into())
            ]
        );
    }

    #[test]
    fn overflow_int_errors_with_span() {
        let err = lex("99999999999999999999").unwrap_err();
        assert_eq!(err.span.line, 1);
        assert_eq!(err.span.col, 1);
    }

    #[test]
    fn unterminated_string_errors() {
        assert!(lex("include \"x").is_err());
    }

    #[test]
    fn spans_track_lines_and_columns() {
        let ts = lex("a\n  bb").unwrap();
        assert_eq!(ts[0].span, Span::new(1, 1, 1));
        assert_eq!(ts[1].span, Span::new(2, 3, 2));
    }
}
