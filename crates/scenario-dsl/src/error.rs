//! The DSL's error model: every failure — lexing, parsing, evaluation,
//! semantic checks, includes — carries a [`Span`] pointing at the
//! offending source position and renders rustc-style with the source
//! line and a caret. The golden error-message snapshots pin exactly the
//! [`DslError::render`] bytes, so the rendering must stay deterministic:
//! no wall-clock, no absolute paths (the source *name* is whatever the
//! caller passed in), no hash-ordered iteration.

use std::fmt;
use std::sync::Arc;

/// A source position: 1-based line and column of the first offending
/// character, plus the length of the offending token (for the caret
/// run; zero-length spans render a single caret).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Span {
    /// 1-based source line.
    pub line: u32,
    /// 1-based column (in characters, not bytes).
    pub col: u32,
    /// Caret run length in characters (minimum 1 when rendered).
    pub len: u32,
}

impl Span {
    /// A span of `len` characters at `line:col`.
    pub fn new(line: u32, col: u32, len: u32) -> Self {
        Span { line, col, len }
    }
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.line, self.col)
    }
}

/// Which compiler stage rejected the source.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorKind {
    /// The lexer hit a malformed token (bad number, unterminated string,
    /// stray byte).
    Lex,
    /// The parser hit an unexpected token or structure.
    Parse,
    /// Expression evaluation failed (undefined name, type mismatch,
    /// overflow, division by zero).
    Eval,
    /// The description is well-formed but not a valid scenario (unknown
    /// key, missing required key, out-of-range fault target).
    Semantic,
    /// An `include` could not be resolved (missing file, cycle, depth).
    Include,
    /// The resource limits tripped (entry count, loop size, nesting).
    Limit,
}

impl ErrorKind {
    fn label(self) -> &'static str {
        match self {
            ErrorKind::Lex => "lex error",
            ErrorKind::Parse => "parse error",
            ErrorKind::Eval => "eval error",
            ErrorKind::Semantic => "error",
            ErrorKind::Include => "include error",
            ErrorKind::Limit => "limit error",
        }
    }
}

/// A compile error with its source location.
#[derive(Debug, Clone, PartialEq)]
pub struct DslError {
    /// Which stage failed.
    pub kind: ErrorKind,
    /// What went wrong, one sentence, lowercase start, no period.
    pub message: String,
    /// Where (1-based; see [`Span`]).
    pub span: Span,
    /// The source name the compiler was given (file name or pseudo-name
    /// like `<string>`).
    pub source_name: Arc<str>,
    /// The text of `span.line`, when the source was available.
    pub source_line: Option<String>,
}

impl DslError {
    /// Builds an error; the compiler attaches `source_name` and
    /// `source_line` before surfacing it.
    pub fn new(kind: ErrorKind, message: impl Into<String>, span: Span) -> Self {
        DslError {
            kind,
            message: message.into(),
            span,
            source_name: Arc::from("<unknown>"),
            source_line: None,
        }
    }

    /// Attaches the source name and extracts the offending line.
    pub fn with_source(mut self, name: &str, src: &str) -> Self {
        self.source_name = Arc::from(name);
        if self.span.line >= 1 {
            self.source_line = src
                .lines()
                .nth(self.span.line as usize - 1)
                .map(str::to_string);
        }
        self
    }

    /// The rustc-style multi-line rendering the golden error snapshots
    /// pin:
    ///
    /// ```text
    /// error: unknown key `personz` in the world section
    ///   --> maritime_sar.sesame:4:9
    ///    |
    ///  4 |         personz = 5
    ///    |         ^^^^^^^
    /// ```
    pub fn render(&self) -> String {
        let mut out = format!(
            "{}: {}\n  --> {}:{}\n",
            self.kind.label(),
            self.message,
            self.source_name,
            self.span
        );
        if let Some(line) = &self.source_line {
            let n = self.span.line.to_string();
            let pad = " ".repeat(n.len());
            out.push_str(&format!("{pad} |\n"));
            out.push_str(&format!("{n} | {line}\n"));
            let indent: String = line
                .chars()
                .take(self.span.col.saturating_sub(1) as usize)
                .map(|c| if c == '\t' { '\t' } else { ' ' })
                .collect();
            let carets = "^".repeat(self.span.len.max(1) as usize);
            out.push_str(&format!("{pad} | {indent}{carets}\n"));
        }
        out
    }
}

impl fmt::Display for DslError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {} at {}:{}",
            self.kind.label(),
            self.message,
            self.source_name,
            self.span
        )
    }
}

impl std::error::Error for DslError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_includes_caret_line() {
        let src = "world {\n    personz = 5\n}\n";
        let err = DslError::new(
            ErrorKind::Semantic,
            "unknown key `personz` in the world section",
            Span::new(2, 5, 7),
        )
        .with_source("test.sesame", src);
        let rendered = err.render();
        assert!(rendered.contains("--> test.sesame:2:5"), "{rendered}");
        assert!(rendered.contains("2 |     personz = 5"), "{rendered}");
        assert!(rendered.contains("|     ^^^^^^^"), "{rendered}");
    }

    #[test]
    fn render_without_source_line_is_two_lines() {
        let err = DslError::new(
            ErrorKind::Parse,
            "unexpected end of input",
            Span::new(9, 1, 1),
        );
        assert_eq!(err.render().lines().count(), 2);
    }
}
