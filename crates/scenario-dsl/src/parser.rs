//! The recursive-descent parser: token stream → [`SourceFile`].
//!
//! Entries are self-delimiting (assignments, fault entries and sections
//! all end unambiguously), so neither newlines nor commas are required
//! separators — commas are accepted and skipped anywhere between block
//! entries. Expression nesting is capped ([`MAX_DEPTH`]) so adversarial
//! input degrades into a spanned error, never a stack overflow; the
//! fuzz suite drives exactly this property.

use crate::ast::*;
use crate::error::{DslError, ErrorKind, Span};
use crate::lexer::{lex, Spanned, Tok};

/// Maximum expression/statement nesting before the parser bails.
pub const MAX_DEPTH: usize = 64;

struct Parser {
    toks: Vec<Spanned>,
    pos: usize,
    depth: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos).map(|s| &s.tok)
    }

    fn span(&self) -> Span {
        self.toks
            .get(self.pos)
            .map(|s| s.span)
            .or_else(|| self.toks.last().map(|s| s.span))
            .unwrap_or(Span::new(1, 1, 1))
    }

    fn bump(&mut self) -> Option<Spanned> {
        let t = self.toks.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn err(&self, msg: impl Into<String>) -> DslError {
        DslError::new(ErrorKind::Parse, msg, self.span())
    }

    fn found(&self) -> String {
        match self.peek() {
            Some(t) => t.describe(),
            None => "end of input".into(),
        }
    }

    fn expect(&mut self, want: &Tok, what: &str) -> Result<Span, DslError> {
        if self.peek() == Some(want) {
            Ok(self.bump().unwrap().span)
        } else {
            Err(self.err(format!("expected {what}, found {}", self.found())))
        }
    }

    fn expect_ident(&mut self, what: &str) -> Result<(String, Span), DslError> {
        match self.peek() {
            Some(Tok::Ident(_)) => {
                let s = self.bump().unwrap();
                let Tok::Ident(name) = s.tok else {
                    unreachable!()
                };
                Ok((name, s.span))
            }
            _ => Err(self.err(format!("expected {what}, found {}", self.found()))),
        }
    }

    fn expect_str(&mut self, what: &str) -> Result<(String, Span), DslError> {
        match self.peek() {
            Some(Tok::Str(_)) => {
                let s = self.bump().unwrap();
                let Tok::Str(text) = s.tok else {
                    unreachable!()
                };
                Ok((text, s.span))
            }
            _ => Err(self.err(format!("expected {what}, found {}", self.found()))),
        }
    }

    fn skip_commas(&mut self) {
        while self.peek() == Some(&Tok::Comma) {
            self.bump();
        }
    }

    fn enter(&mut self) -> Result<DepthGuard<'_>, DslError> {
        if self.depth >= MAX_DEPTH {
            return Err(DslError::new(
                ErrorKind::Limit,
                format!("nesting exceeds the maximum depth of {MAX_DEPTH}"),
                self.span(),
            ));
        }
        self.depth += 1;
        Ok(DepthGuard { parser: self })
    }

    // ---- expressions -------------------------------------------------

    fn expr(&mut self) -> Result<Expr, DslError> {
        self.additive()
    }

    fn additive(&mut self) -> Result<Expr, DslError> {
        let mut lhs = self.multiplicative()?;
        loop {
            let op = match self.peek() {
                Some(Tok::Plus) => BinOp::Add,
                Some(Tok::Minus) => BinOp::Sub,
                _ => break,
            };
            let span = self.bump().unwrap().span;
            let rhs = self.multiplicative()?;
            lhs = Expr::Binary {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
                span,
            };
        }
        Ok(lhs)
    }

    fn multiplicative(&mut self) -> Result<Expr, DslError> {
        let mut lhs = self.unary()?;
        loop {
            let op = match self.peek() {
                Some(Tok::Star) => BinOp::Mul,
                Some(Tok::Slash) => BinOp::Div,
                Some(Tok::Percent) => BinOp::Rem,
                _ => break,
            };
            let span = self.bump().unwrap().span;
            let rhs = self.unary()?;
            lhs = Expr::Binary {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
                span,
            };
        }
        Ok(lhs)
    }

    fn unary(&mut self) -> Result<Expr, DslError> {
        if self.peek() == Some(&Tok::Minus) {
            let span = self.bump().unwrap().span;
            let guard = self.enter()?;
            let expr = guard.parser.unary()?;
            return Ok(Expr::Unary {
                op: UnOp::Neg,
                expr: Box::new(expr),
                span,
            });
        }
        self.primary()
    }

    fn primary(&mut self) -> Result<Expr, DslError> {
        let span = self.span();
        match self.peek() {
            Some(Tok::Int(_)) => {
                let Some(Spanned {
                    tok: Tok::Int(n),
                    span,
                }) = self.bump()
                else {
                    unreachable!()
                };
                Ok(Expr::Int(n, span))
            }
            Some(Tok::Float(_)) => {
                let Some(Spanned {
                    tok: Tok::Float(x),
                    span,
                }) = self.bump()
                else {
                    unreachable!()
                };
                Ok(Expr::Float(x, span))
            }
            Some(Tok::DurationMs(_)) => {
                let Some(Spanned {
                    tok: Tok::DurationMs(ms),
                    span,
                }) = self.bump()
                else {
                    unreachable!()
                };
                Ok(Expr::DurationMs(ms, span))
            }
            Some(Tok::Str(_)) => {
                let Some(Spanned {
                    tok: Tok::Str(s),
                    span,
                }) = self.bump()
                else {
                    unreachable!()
                };
                Ok(Expr::Str(s, span))
            }
            Some(Tok::KwTrue) => {
                self.bump();
                Ok(Expr::Bool(true, span))
            }
            Some(Tok::KwFalse) => {
                self.bump();
                Ok(Expr::Bool(false, span))
            }
            Some(Tok::Ident(_)) => {
                let (name, span) = self.expect_ident("a name")?;
                if self.peek() == Some(&Tok::LParen) {
                    self.bump();
                    let guard = self.enter()?;
                    let mut args = Vec::new();
                    if guard.parser.peek() != Some(&Tok::RParen) {
                        loop {
                            args.push(guard.parser.expr()?);
                            if guard.parser.peek() == Some(&Tok::Comma) {
                                guard.parser.bump();
                            } else {
                                break;
                            }
                        }
                    }
                    guard.parser.expect(&Tok::RParen, "`)`")?;
                    drop(guard);
                    Ok(Expr::Call { name, args, span })
                } else {
                    Ok(Expr::Var(name, span))
                }
            }
            Some(Tok::LParen) => {
                let span = self.bump().unwrap().span;
                let guard = self.enter()?;
                let first = guard.parser.expr()?;
                if guard.parser.peek() == Some(&Tok::Comma) {
                    let mut items = vec![first];
                    while guard.parser.peek() == Some(&Tok::Comma) {
                        guard.parser.bump();
                        if guard.parser.peek() == Some(&Tok::RParen) {
                            break;
                        }
                        items.push(guard.parser.expr()?);
                    }
                    guard.parser.expect(&Tok::RParen, "`)`")?;
                    Ok(Expr::Tuple(items, span))
                } else {
                    guard.parser.expect(&Tok::RParen, "`)`")?;
                    Ok(first)
                }
            }
            _ => Err(self.err(format!("expected an expression, found {}", self.found()))),
        }
    }

    // ---- items -------------------------------------------------------

    fn assign(&mut self) -> Result<Assign, DslError> {
        let (key, span) = self.expect_ident("a key name")?;
        self.expect(&Tok::Eq, "`=`")?;
        let value = self.expr()?;
        Ok(Assign { key, span, value })
    }

    fn block(&mut self) -> Result<(Span, Vec<Assign>), DslError> {
        let span = self.expect(&Tok::LBrace, "`{`")?;
        let mut assigns = Vec::new();
        loop {
            self.skip_commas();
            if self.peek() == Some(&Tok::RBrace) {
                self.bump();
                return Ok((span, assigns));
            }
            if self.peek().is_none() {
                return Err(self.err("expected `}`, found end of input"));
            }
            assigns.push(self.assign()?);
        }
    }

    fn fleet_section(&mut self) -> Result<Section, DslError> {
        let span = self.expect(&Tok::LBrace, "`{`")?;
        let mut items = Vec::new();
        loop {
            self.skip_commas();
            match self.peek() {
                Some(Tok::RBrace) => {
                    self.bump();
                    return Ok(Section::Fleet { span, items });
                }
                Some(Tok::KwGroup) => {
                    let gspan = self.bump().unwrap().span;
                    let count = self.expr()?;
                    let (_, assigns) = self.block()?;
                    items.push(FleetItem::Group {
                        span: gspan,
                        count,
                        assigns,
                    });
                }
                Some(Tok::Ident(_)) => items.push(FleetItem::Assign(self.assign()?)),
                _ => {
                    return Err(self.err(format!(
                        "expected a fleet entry (`uavs = n`, `group n {{ ... }}`, \
                         `shards = ...`) or `}}`, found {}",
                        self.found()
                    )))
                }
            }
        }
    }

    fn fault_call(&mut self) -> Result<FaultCall, DslError> {
        let (name, span) = self.expect_ident("a fault constructor name")?;
        self.expect(&Tok::LParen, "`(`")?;
        let mut args = Vec::new();
        loop {
            self.skip_commas();
            if self.peek() == Some(&Tok::RParen) {
                self.bump();
                return Ok(FaultCall { name, span, args });
            }
            if self.peek().is_none() {
                return Err(self.err("expected `)`, found end of input"));
            }
            args.push(self.assign()?);
        }
    }

    fn fault_stmts(&mut self) -> Result<Vec<FaultStmt>, DslError> {
        let mut stmts = Vec::new();
        loop {
            self.skip_commas();
            match self.peek() {
                Some(Tok::RBrace) => {
                    self.bump();
                    return Ok(stmts);
                }
                Some(Tok::KwFor) => {
                    self.bump();
                    let (var, span) = self.expect_ident("a loop variable name")?;
                    self.expect(&Tok::KwIn, "`in`")?;
                    let start = self.expr()?;
                    self.expect(&Tok::DotDot, "`..`")?;
                    let end = self.expr()?;
                    self.expect(&Tok::LBrace, "`{`")?;
                    let guard = self.enter()?;
                    let body = guard.parser.fault_stmts()?;
                    drop(guard);
                    stmts.push(FaultStmt::For {
                        var,
                        span,
                        start,
                        end,
                        body,
                    });
                }
                Some(Tok::Ident(word)) if word == "at" => {
                    let span = self.bump().unwrap().span;
                    let at = self.expr()?;
                    let mut duration = None;
                    // `for <duration>` — here `for` is the window
                    // length, only lexed as the loop keyword.
                    if self.peek() == Some(&Tok::KwFor) {
                        self.bump();
                        duration = Some(self.expr()?);
                    }
                    let plane = match self.peek() {
                        Some(Tok::Ident(w)) if w == "uav" => {
                            self.bump();
                            FaultPlane::Vehicle { uav: self.expr()? }
                        }
                        Some(Tok::Ident(w)) if w == "comm" => {
                            self.bump();
                            FaultPlane::Comm
                        }
                        Some(Tok::Ident(w)) if w == "compute" => {
                            self.bump();
                            FaultPlane::Compute
                        }
                        _ => {
                            return Err(self.err(format!(
                                "expected `uav <index>`, `comm` or `compute`, found {}",
                                self.found()
                            )))
                        }
                    };
                    let call = self.fault_call()?;
                    stmts.push(FaultStmt::Entry(FaultEntryStmt {
                        span,
                        at,
                        duration,
                        plane,
                        call,
                    }));
                }
                _ => {
                    return Err(self.err(format!(
                        "expected a fault entry (`at ...`), a `for` loop or `}}`, found {}",
                        self.found()
                    )))
                }
            }
        }
    }

    fn scenario(&mut self) -> Result<ScenarioDecl, DslError> {
        let (name, span) = self.expect_str("a scenario name string")?;
        self.expect(&Tok::LBrace, "`{`")?;
        let mut sections = Vec::new();
        loop {
            self.skip_commas();
            match self.peek() {
                Some(Tok::RBrace) => {
                    self.bump();
                    return Ok(ScenarioDecl {
                        name,
                        span,
                        sections,
                    });
                }
                Some(Tok::Ident(word)) => {
                    let word = word.clone();
                    match word.as_str() {
                        "world" => {
                            self.bump();
                            let (span, assigns) = self.block()?;
                            sections.push(Section::World(Block { span, assigns }));
                        }
                        "fleet" => {
                            self.bump();
                            sections.push(self.fleet_section()?);
                        }
                        "mission" => {
                            self.bump();
                            let (span, assigns) = self.block()?;
                            sections.push(Section::Mission(Block { span, assigns }));
                        }
                        "faults" => {
                            let span = self.bump().unwrap().span;
                            self.expect(&Tok::LBrace, "`{`")?;
                            let stmts = self.fault_stmts()?;
                            sections.push(Section::Faults { span, stmts });
                        }
                        "attack" => {
                            self.bump();
                            let (span, assigns) = self.block()?;
                            sections.push(Section::Attack(Block { span, assigns }));
                        }
                        other => {
                            return Err(self.err(format!(
                                "unknown section `{other}` (sections: world, fleet, mission, \
                                 faults, attack)"
                            )))
                        }
                    }
                }
                _ => {
                    return Err(self.err(format!(
                        "expected a section or `}}`, found {}",
                        self.found()
                    )))
                }
            }
        }
    }

    fn source_file(&mut self) -> Result<SourceFile, DslError> {
        let mut items = Vec::new();
        loop {
            self.skip_commas();
            match self.peek() {
                None => return Ok(SourceFile { items }),
                Some(Tok::KwParam) => {
                    self.bump();
                    let (name, span) = self.expect_ident("a parameter name")?;
                    self.expect(&Tok::Eq, "`=`")?;
                    let default = self.expr()?;
                    items.push(Item::Param {
                        name,
                        span,
                        default,
                    });
                }
                Some(Tok::KwLet) => {
                    self.bump();
                    let (name, span) = self.expect_ident("a binding name")?;
                    self.expect(&Tok::Eq, "`=`")?;
                    let value = self.expr()?;
                    items.push(Item::Let { name, span, value });
                }
                Some(Tok::KwInclude) => {
                    self.bump();
                    let (path, span) = self.expect_str("an include path string")?;
                    items.push(Item::Include { path, span });
                }
                Some(Tok::KwScenario) => {
                    self.bump();
                    items.push(Item::Scenario(self.scenario()?));
                }
                _ => {
                    return Err(self.err(format!(
                        "expected `param`, `let`, `include` or `scenario`, found {}",
                        self.found()
                    )))
                }
            }
        }
    }
}

struct DepthGuard<'a> {
    parser: &'a mut Parser,
}

impl Drop for DepthGuard<'_> {
    fn drop(&mut self) {
        self.parser.depth -= 1;
    }
}

/// Parses a complete source file.
pub fn parse(src: &str) -> Result<SourceFile, DslError> {
    let toks = lex(src)?;
    let mut parser = Parser {
        toks,
        pos: 0,
        depth: 0,
    };
    parser.source_file()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_scenario_parses_and_prints_canonically() {
        let src = r#"
param attack = true
scenario "fig6" {
    world { area = (420.0, 300.0), persons = 5 }
    mission {
        sesame = true
        deadline = 700s
    }
    faults {
        at 250s uav 0 battery_over_temp(soc_drop = 0.4)
        at 200s for 30s comm link_blackout(uav = 1)
        for i in 0..3 {
            at secs(100 + i * 50) uav i gps_loss()
        }
    }
    attack {
        enabled = attack
        start = 120s
        uav = 0
        drift = (0.0, 4.0, 0.0)
        forge_waypoints = true
    }
}
"#;
        let file = parse(src).unwrap();
        let printed = file.to_string();
        let reparsed = parse(&printed).unwrap();
        assert_eq!(printed, reparsed.to_string(), "printing is a fixed point");
    }

    #[test]
    fn fleet_groups_parse() {
        let src = r#"
scenario "mixed" {
    fleet {
        uavs = 2
        group 4 { motors = 6, tolerated = 1, drain = 0.0006 }
        shards = fixed(2)
    }
}
"#;
        let file = parse(src).unwrap();
        let Item::Scenario(decl) = &file.items[0] else {
            panic!()
        };
        let Section::Fleet { items, .. } = &decl.sections[0] else {
            panic!()
        };
        assert_eq!(items.len(), 3);
    }

    #[test]
    fn errors_carry_spans() {
        let err = parse("scenario \"x\" {\n    weird {}\n}").unwrap_err();
        assert_eq!(err.span.line, 2);
        assert_eq!(err.span.col, 5);
    }

    #[test]
    fn deep_nesting_errors_instead_of_overflowing() {
        let mut src = String::from("param x = ");
        src.push_str(&"-".repeat(5000));
        src.push('1');
        let err = parse(&src).unwrap_err();
        assert_eq!(err.kind, crate::error::ErrorKind::Limit);
    }

    #[test]
    fn vehicle_entry_rejects_missing_call_parens() {
        assert!(parse("scenario \"x\" { faults { at 1s uav 0 gps_loss } }").is_err());
    }
}
