//! The evaluated value model.
//!
//! Every expression evaluates to a [`Value`]. Aggregates hang off
//! [`Arc`] so environments clone cheaply across loop iterations and
//! included files, mirroring minijinja's value design. The only numeric
//! coercion is `Int → Float` where an f64 is expected; everything else
//! is a typed, spanned error — a scenario description is a safety
//! artifact, so silent truncation is off the table.

use sesame_core::fleet::ShardPolicy;
use sesame_middleware::chaos::LinkDirection;
use sesame_types::time::SimDuration;
use std::fmt;
use std::sync::Arc;

/// An evaluated value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// A 64-bit signed integer.
    Int(i64),
    /// A finite f64.
    Float(f64),
    /// A boolean.
    Bool(bool),
    /// An immutable string.
    Str(Arc<str>),
    /// A simulated duration (millisecond resolution).
    Duration(SimDuration),
    /// A fixed-arity tuple, e.g. an area extent or an ENU vector.
    Tuple(Arc<[Value]>),
    /// A fleet shard policy (`auto`, `serial`, `fixed(n)`).
    Shard(ShardPolicy),
    /// A link direction (`uplink`, `downlink`).
    Direction(LinkDirection),
}

impl Value {
    /// The value's type name for error messages.
    pub fn type_name(&self) -> &'static str {
        match self {
            Value::Int(_) => "int",
            Value::Float(_) => "float",
            Value::Bool(_) => "bool",
            Value::Str(_) => "string",
            Value::Duration(_) => "duration",
            Value::Tuple(_) => "tuple",
            Value::Shard(_) => "shard policy",
            Value::Direction(_) => "link direction",
        }
    }

    /// As an f64, coercing from `Int`.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(n) => Some(*n as f64),
            Value::Float(x) => Some(*x),
            _ => None,
        }
    }

    /// As an i64 (no coercion).
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(n) => Some(*n),
            _ => None,
        }
    }

    /// As a non-negative index.
    pub fn as_usize(&self) -> Option<usize> {
        match self {
            Value::Int(n) if *n >= 0 => usize::try_from(*n).ok(),
            _ => None,
        }
    }

    /// As a boolean (no coercion).
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// As a duration (no coercion; use `secs(x)` in source to convert).
    pub fn as_duration(&self) -> Option<SimDuration> {
        match self {
            Value::Duration(d) => Some(*d),
            _ => None,
        }
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Self {
        Value::Bool(b)
    }
}

impl From<i64> for Value {
    fn from(n: i64) -> Self {
        Value::Int(n)
    }
}

impl From<f64> for Value {
    fn from(x: f64) -> Self {
        Value::Float(x)
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::Str(Arc::from(s))
    }
}

impl From<SimDuration> for Value {
    fn from(d: SimDuration) -> Self {
        Value::Duration(d)
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(n) => write!(f, "{n}"),
            Value::Float(x) => write!(f, "{x:?}"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Str(s) => write!(f, "\"{s}\""),
            Value::Duration(d) => write!(f, "{}", crate::ast::fmt_duration_ms(d.as_millis())),
            Value::Tuple(items) => {
                write!(f, "(")?;
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{v}")?;
                }
                write!(f, ")")
            }
            Value::Shard(ShardPolicy::Auto) => write!(f, "auto"),
            Value::Shard(ShardPolicy::Serial) => write!(f, "serial"),
            Value::Shard(ShardPolicy::Fixed { shards }) => write!(f, "fixed({shards})"),
            Value::Direction(LinkDirection::Uplink) => write!(f, "uplink"),
            Value::Direction(LinkDirection::Downlink) => write!(f, "downlink"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn int_coerces_to_f64_but_not_back() {
        assert_eq!(Value::Int(3).as_f64(), Some(3.0));
        assert_eq!(Value::Float(3.0).as_i64(), None);
    }

    #[test]
    fn display_is_source_shaped() {
        assert_eq!(
            Value::Duration(SimDuration::from_secs(120)).to_string(),
            "120s"
        );
        assert_eq!(
            Value::Duration(SimDuration::from_millis(500)).to_string(),
            "500ms"
        );
        assert_eq!(
            Value::Tuple(Arc::from([Value::Float(0.0), Value::Int(4)])).to_string(),
            "(0.0, 4)"
        );
        assert_eq!(
            Value::Shard(ShardPolicy::Fixed { shards: 2 }).to_string(),
            "fixed(2)"
        );
    }
}
