//! GPS receiver simulation: noise, quality factors, loss, spoofing.
//!
//! The receiver reports position with Gaussian noise and realistic quality
//! factors (satellite count, HDOP). Two injectable conditions model the
//! paper's scenarios: **signal loss** (the Fig. 7 GPS-denied landing) and
//! **spoofing** — a growing offset dragged onto the solution, which is how
//! the falsified mapping data of Fig. 6 reaches the UAV.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use sesame_types::geo::{GeoPoint, Vec3};
use sesame_types::telemetry::GpsFix;

/// The simulated receiver.
///
/// # Examples
///
/// ```
/// use sesame_types::geo::GeoPoint;
/// use sesame_uav_sim::gps::SimGps;
///
/// let mut gps = SimGps::new(1);
/// let fix = gps.measure(&GeoPoint::new(35.0, 33.0, 40.0), 0.1);
/// assert!(fix.has_fix);
/// assert!(fix.satellites >= 8);
/// ```
#[derive(Debug)]
pub struct SimGps {
    rng: StdRng,
    /// Horizontal noise 1-σ, metres.
    pub sigma_m: f64,
    lost: bool,
    /// Spoofing drag velocity (ENU m/s), `None` when not under attack.
    spoof_drift: Option<Vec3>,
    /// Accumulated spoofing offset (ENU metres).
    spoof_offset: Vec3,
    last_fix: GpsFix,
}

impl SimGps {
    /// A healthy receiver with 1.2 m noise.
    pub fn new(seed: u64) -> Self {
        SimGps {
            rng: StdRng::seed_from_u64(seed),
            sigma_m: 1.2,
            lost: false,
            spoof_drift: None,
            spoof_offset: Vec3::zero(),
            last_fix: GpsFix::default(),
        }
    }

    /// Injects signal loss (no fix until [`SimGps::restore`]).
    pub fn inject_loss(&mut self) {
        self.lost = true;
    }

    /// Starts a spoofing attack: the reported solution is dragged at
    /// `drift` m/s (ENU) away from truth.
    pub fn inject_spoof(&mut self, drift: Vec3) {
        self.spoof_drift = Some(drift);
    }

    /// Ends any injected condition.
    pub fn restore(&mut self) {
        self.lost = false;
        self.spoof_drift = None;
        self.spoof_offset = Vec3::zero();
    }

    /// Whether a spoofing attack is active.
    pub fn is_spoofed(&self) -> bool {
        self.spoof_drift.is_some()
    }

    /// Whether the signal is lost.
    pub fn is_lost(&self) -> bool {
        self.lost
    }

    /// The accumulated spoofing offset in metres.
    pub fn spoof_offset_m(&self) -> f64 {
        self.spoof_offset.norm()
    }

    /// Produces the receiver output for the true position, advancing any
    /// spoof drag by `dt` seconds.
    pub fn measure(&mut self, truth: &GeoPoint, dt: f64) -> GpsFix {
        if self.lost {
            let fix = GpsFix::lost(self.last_fix.position);
            self.last_fix = fix;
            return fix;
        }
        if let Some(drift) = self.spoof_drift {
            self.spoof_offset = self.spoof_offset + drift * dt;
        }
        let noise = Vec3::new(
            self.gaussian() * self.sigma_m,
            self.gaussian() * self.sigma_m,
            self.gaussian() * self.sigma_m * 1.5,
        );
        let offset = self.spoof_offset + noise;
        let position = GeoPoint::from_enu(truth, offset.into());
        // Spoofers often present an unnaturally clean constellation; keep
        // quality factors nominal so naive checks pass (the paper's
        // detection works on innovation, not on quality flags).
        let satellites = 10 + (self.rng.random::<f64>() * 4.0) as u8;
        let hdop = 0.6 + self.rng.random::<f64>() * 0.6;
        let fix = GpsFix {
            has_fix: true,
            satellites,
            hdop,
            position,
        };
        self.last_fix = fix;
        fix
    }

    fn gaussian(&mut self) -> f64 {
        let u1: f64 = self.rng.random::<f64>().max(1e-12);
        let u2: f64 = self.rng.random();
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn truth() -> GeoPoint {
        GeoPoint::new(35.0, 33.0, 40.0)
    }

    #[test]
    fn healthy_fix_is_near_truth() {
        let mut gps = SimGps::new(3);
        let mut worst: f64 = 0.0;
        for _ in 0..200 {
            let fix = gps.measure(&truth(), 0.1);
            assert!(fix.is_usable());
            worst = worst.max(fix.position.distance_3d_m(&truth()));
        }
        assert!(worst < 10.0, "worst error {worst}");
    }

    #[test]
    fn loss_reports_no_fix_and_holds_last_position() {
        let mut gps = SimGps::new(3);
        let before = gps.measure(&truth(), 0.1);
        gps.inject_loss();
        let lost = gps.measure(&truth(), 0.1);
        assert!(!lost.has_fix);
        assert_eq!(lost.satellites, 0);
        assert_eq!(lost.position, before.position);
        gps.restore();
        assert!(gps.measure(&truth(), 0.1).has_fix);
    }

    #[test]
    fn spoof_drags_solution_linearly() {
        let mut gps = SimGps::new(3);
        gps.inject_spoof(Vec3::new(0.0, 5.0, 0.0)); // 5 m/s north
        for _ in 0..100 {
            let _ = gps.measure(&truth(), 0.1);
        }
        // 10 s at 5 m/s = 50 m offset.
        assert!((gps.spoof_offset_m() - 50.0).abs() < 1.0);
        let fix = gps.measure(&truth(), 0.0);
        let err = fix.position.haversine_distance_m(&truth());
        assert!((err - 50.0).abs() < 10.0, "err = {err}");
        assert!(fix.is_usable(), "quality flags stay nominal under spoof");
    }

    #[test]
    fn restore_clears_spoof() {
        let mut gps = SimGps::new(3);
        gps.inject_spoof(Vec3::new(10.0, 0.0, 0.0));
        let _ = gps.measure(&truth(), 1.0);
        assert!(gps.is_spoofed());
        gps.restore();
        assert!(!gps.is_spoofed());
        assert_eq!(gps.spoof_offset_m(), 0.0);
    }

    #[test]
    fn determinism_per_seed() {
        let mut a = SimGps::new(9);
        let mut b = SimGps::new(9);
        for _ in 0..10 {
            assert_eq!(a.measure(&truth(), 0.1), b.measure(&truth(), 0.1));
        }
    }
}
