//! The fixed-step simulator.
//!
//! Owns the world, the environment and the fleet; each [`Simulator::step`]
//! advances 100 ms (configurable): autopilot → kinematics (with wind and
//! thrust limits) → battery/thermal → sensors → telemetry, firing any
//! scheduled faults first. Everything downstream (the SESAME platform in
//! `sesame-core`) consumes [`Simulator::telemetry`] and issues
//! [`crate::autopilot::FlightCommand`]s — exactly the interface a DJI SDK
//! + ROS deployment would offer.

use crate::autopilot::{Autopilot, FlightCommand};
use crate::battery::SimBattery;
use crate::camera::SimCamera;
use crate::environment::Environment;
use crate::faults::{FaultKind, FaultSchedule, ScheduledFault};
use crate::gps::SimGps;
use crate::propulsion::SimPropulsion;
use crate::world::World;
use sesame_types::events::{EventLog, SystemEvent};
use sesame_types::geo::{GeoPoint, Vec3};
use sesame_types::ids::UavId;
use sesame_types::telemetry::{FlightMode, GpsFix, UavTelemetry};
use sesame_types::time::{SimClock, SimDuration, SimTime};

/// Static configuration of one airframe.
#[derive(Debug, Clone)]
pub struct UavConfig {
    /// Number of motors (4, 6 or 8).
    pub motor_count: usize,
    /// Motor losses the flight controller tolerates.
    pub tolerated_motor_failures: usize,
    /// Camera field of view, degrees.
    pub camera_fov_deg: f64,
    /// How strongly wind displaces the airframe (0 = ignores wind).
    pub windage: f64,
    /// Battery hover drain, fraction of capacity per second (scenario
    /// calibration knob; the default supports ≈17 min of hover).
    pub hover_drain_per_sec: f64,
}

impl Default for UavConfig {
    fn default() -> Self {
        UavConfig {
            motor_count: 4,
            tolerated_motor_failures: 0,
            camera_fov_deg: 90.0,
            windage: 0.3,
            hover_drain_per_sec: 0.001,
        }
    }
}

/// Handle to a UAV inside the simulator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct UavHandle(usize);

impl UavHandle {
    /// The [`UavId`] of this handle (index + 1, matching `uav1`… naming).
    pub fn id(&self) -> UavId {
        UavId::new(self.0 as u32 + 1)
    }
}

#[derive(Debug)]
struct SimUav {
    config: UavConfig,
    position: GeoPoint,
    velocity: Vec3,
    autopilot: Autopilot,
    battery: SimBattery,
    propulsion: SimPropulsion,
    gps: SimGps,
    last_fix: GpsFix,
    camera: SimCamera,
    crashed: bool,
}

/// The simulator. See the crate docs for a quickstart.
#[derive(Debug)]
pub struct Simulator {
    world: World,
    environment: Environment,
    seed: u64,
    clock: SimClock,
    uavs: Vec<SimUav>,
    faults: FaultSchedule,
    events: EventLog,
}

impl Simulator {
    /// Creates a simulator over `world` with deterministic noise from
    /// `seed` and the default 100 ms tick.
    pub fn new(world: World, seed: u64) -> Self {
        Simulator {
            world,
            environment: Environment::new(seed ^ 0xEE),
            seed,
            clock: SimClock::new(),
            uavs: Vec::new(),
            faults: FaultSchedule::new(),
            events: EventLog::new(),
        }
    }

    /// Adds a UAV parked at the world base; returns its handle.
    pub fn add_uav(&mut self, config: UavConfig) -> UavHandle {
        let idx = self.uavs.len();
        let base = self.world.base();
        let seed = self.seed ^ 0x5E5A_4E00u64 ^ ((idx as u64) << 8);
        let mut gps = SimGps::new(seed);
        let last_fix = gps.measure(&base, 0.0);
        let mut battery = SimBattery::new();
        battery.hover_drain_per_sec = config.hover_drain_per_sec;
        self.uavs.push(SimUav {
            autopilot: Autopilot::new(base),
            position: base,
            velocity: Vec3::zero(),
            battery,
            propulsion: SimPropulsion::new(config.motor_count),
            gps,
            last_fix,
            camera: SimCamera::new(config.camera_fov_deg),
            crashed: false,
            config,
        });
        UavHandle(idx)
    }

    /// Number of UAVs.
    pub fn uav_count(&self) -> usize {
        self.uavs.len()
    }

    /// The world.
    pub fn world(&self) -> &World {
        &self.world
    }

    /// Mutable world access (visibility changes etc.).
    pub fn world_mut(&mut self) -> &mut World {
        &mut self.world
    }

    /// The environment.
    pub fn environment_mut(&mut self) -> &mut Environment {
        &mut self.environment
    }

    /// Current simulation time.
    pub fn now(&self) -> SimTime {
        self.clock.now()
    }

    /// The event log.
    pub fn events(&self) -> &EventLog {
        &self.events
    }

    /// The fault schedule (add entries before or during the run).
    pub fn faults_mut(&mut self) -> &mut FaultSchedule {
        &mut self.faults
    }

    /// Sends a command to a UAV's autopilot.
    ///
    /// # Panics
    ///
    /// Panics on an invalid handle.
    pub fn command(&mut self, uav: UavHandle, cmd: FlightCommand) {
        let u = &mut self.uavs[uav.0];
        if matches!(cmd, FlightCommand::TakeOff { .. })
            && u.autopilot.mode() == FlightMode::Grounded
            && !u.crashed
        {
            self.events
                .push(self.clock.now(), SystemEvent::TakeOff(uav.id()));
        }
        u.autopilot.command(cmd, &u.position);
    }

    /// Convenience: take off to `altitude_m`.
    pub fn command_takeoff(&mut self, uav: UavHandle, altitude_m: f64) {
        self.command(uav, FlightCommand::TakeOff { altitude_m });
    }

    /// Sets (or clears) a direct velocity override on a UAV — the CL
    /// guidance channel (see [`Autopilot::set_velocity_override`]).
    pub fn command_velocity(&mut self, uav: UavHandle, v: Option<Vec3>) {
        self.uavs[uav.0].autopilot.set_velocity_override(v);
    }

    /// The autopilot mode of a UAV.
    pub fn mode(&self, uav: UavHandle) -> FlightMode {
        self.uavs[uav.0].autopilot.mode()
    }

    /// Remaining mission waypoints of a UAV.
    pub fn remaining_waypoints(&self, uav: UavHandle) -> usize {
        self.uavs[uav.0].autopilot.remaining_waypoints()
    }

    /// Whether the UAV has crashed (controllability or energy lost in
    /// flight).
    pub fn is_crashed(&self, uav: UavHandle) -> bool {
        self.uavs[uav.0].crashed
    }

    /// Swaps the battery of a grounded UAV (the baseline's pit stop).
    pub fn swap_battery(&mut self, uav: UavHandle) {
        let u = &mut self.uavs[uav.0];
        if u.autopilot.mode() == FlightMode::Grounded {
            u.battery.swap();
        }
    }

    /// Ground-truth persons visible to a UAV's camera right now.
    pub fn visible_persons(&self, uav: UavHandle) -> Vec<GeoPoint> {
        let u = &self.uavs[uav.0];
        u.camera
            .visible_persons(&u.position, self.world.persons())
            .into_iter()
            .copied()
            .collect()
    }

    /// Builds the current telemetry snapshot for a UAV. GPS is *not*
    /// re-sampled here — the last measured fix is reported — so calling
    /// this repeatedly is side-effect free.
    pub fn telemetry(&mut self, uav: UavHandle) -> UavTelemetry {
        let now = self.clock.now();
        let u = &mut self.uavs[uav.0];
        let fix = u.last_fix;
        let link_quality = {
            let d = u.position.haversine_distance_m(&self.world.base());
            (1.0 / (1.0 + (d / 1500.0).powi(2))).clamp(0.0, 1.0)
        };
        UavTelemetry {
            uav: uav.id(),
            time: now,
            true_position: u.position,
            velocity: u.velocity,
            battery_soc: u.battery.soc(),
            battery_temp_c: u.battery.temperature_c(),
            motors_ok: u.propulsion.motors_ok().to_vec(),
            gps: fix,
            vision_health: u.camera.health,
            link_quality,
            mode: u.autopilot.mode(),
        }
    }

    /// [`Simulator::telemetry`] into a caller-owned snapshot, reusing its
    /// `motors_ok` buffer — the orchestrator refreshes a fleet-sized
    /// telemetry scratch every tick without per-UAV heap traffic. Field
    /// for field identical to [`Simulator::telemetry`].
    pub fn telemetry_into(&mut self, uav: UavHandle, out: &mut UavTelemetry) {
        let now = self.clock.now();
        let u = &mut self.uavs[uav.0];
        let link_quality = {
            let d = u.position.haversine_distance_m(&self.world.base());
            (1.0 / (1.0 + (d / 1500.0).powi(2))).clamp(0.0, 1.0)
        };
        out.uav = uav.id();
        out.time = now;
        out.true_position = u.position;
        out.velocity = u.velocity;
        out.battery_soc = u.battery.soc();
        out.battery_temp_c = u.battery.temperature_c();
        out.motors_ok.clear();
        out.motors_ok.extend_from_slice(u.propulsion.motors_ok());
        out.gps = u.last_fix;
        out.vision_health = u.camera.health;
        out.link_quality = link_quality;
        out.mode = u.autopilot.mode();
    }

    /// Ground-truth position (for scoring; the platform should use GPS).
    pub fn true_position(&self, uav: UavHandle) -> GeoPoint {
        self.uavs[uav.0].position
    }

    /// Whether a UAV's GPS is currently spoofed (ground truth for
    /// experiments).
    pub fn gps_spoofed(&self, uav: UavHandle) -> bool {
        self.uavs[uav.0].gps.is_spoofed()
    }

    /// Advances the simulation by one tick and returns the new time.
    pub fn step(&mut self) -> SimTime {
        let dt = self.clock.tick_len().as_secs_f64();
        let now = self.clock.tick();

        // Fire due faults.
        for ScheduledFault { uav, kind, .. } in self.faults.due(now) {
            let idx = (uav.index() as usize).saturating_sub(1);
            if idx >= self.uavs.len() {
                continue;
            }
            let u = &mut self.uavs[idx];
            let label = match &kind {
                FaultKind::BatteryOverTemp { soc_drop } => {
                    u.battery.inject_thermal_fault(*soc_drop);
                    "battery_overtemp".to_string()
                }
                FaultKind::MotorFailure { motor } => {
                    if *motor < u.propulsion.motor_count() {
                        u.propulsion.fail_motor(*motor);
                    }
                    format!("motor_failure_{motor}")
                }
                FaultKind::GpsLoss => {
                    u.gps.inject_loss();
                    "gps_loss".to_string()
                }
                FaultKind::GpsSpoof { drift } => {
                    u.gps.inject_spoof(*drift);
                    "gps_spoof".to_string()
                }
                FaultKind::VisionDegraded { health } => {
                    u.camera.degrade(*health);
                    "vision_degraded".to_string()
                }
                FaultKind::GpsRestore => {
                    u.gps.restore();
                    "gps_restore".to_string()
                }
                FaultKind::MotorRestore { motor } => {
                    if *motor < u.propulsion.motor_count() {
                        u.propulsion.restore_motor(*motor);
                    }
                    format!("motor_restore_{motor}")
                }
                FaultKind::VisionRestore => {
                    u.camera.restore();
                    "vision_restore".to_string()
                }
            };
            self.events
                .push(now, SystemEvent::FaultInjected { uav, fault: label });
        }

        // Advance every airframe.
        let ambient = self.environment.ambient_c();
        for (i, u) in self.uavs.iter_mut().enumerate() {
            if u.crashed {
                continue;
            }
            let airborne = u.autopilot.mode().is_airborne();
            // Crash conditions: controllability or energy lost in flight.
            if airborne
                && (!u
                    .propulsion
                    .is_controllable(u.config.tolerated_motor_failures)
                    || u.battery.is_empty())
            {
                u.crashed = true;
                u.position = u.position.with_alt(0.0);
                u.velocity = Vec3::zero();
                self.events.push(
                    now,
                    SystemEvent::Landed(UavId::new(i as u32 + 1), "crashed".into()),
                );
                continue;
            }
            let was_airborne = airborne;
            // The airframe navigates by its GPS fix (the IMU/baro supply
            // the vertical channel), exactly like a real flight stack —
            // which is why a spoofed solution bends the *true* trajectory
            // (Fig. 6). With no fix, the visual-inertial estimate (truth
            // plus negligible drift at these horizons) takes over.
            let fix = u.gps.measure(&u.position, dt);
            u.last_fix = fix;
            let nav_pos = if fix.has_fix {
                fix.position.with_alt(u.position.alt_m)
            } else {
                u.position
            };
            let mut v = u.autopilot.step(&nav_pos);
            // Thrust limitation from lost motors slows everything down.
            let thrust = u.propulsion.thrust_factor();
            v = v * thrust;
            let wind = if was_airborne {
                self.environment.wind_at(now.as_secs_f64()) * u.config.windage
            } else {
                Vec3::zero()
            };
            let total = v + wind;
            let step_enu = total * dt;
            u.position = GeoPoint::from_enu(&u.position, step_enu.into());
            if u.position.alt_m < 0.0 {
                u.position = u.position.with_alt(0.0);
            }
            u.velocity = total;
            // Battery load: hover + motion + climb.
            let load = if u.autopilot.mode().is_airborne() {
                1.0 + 0.3 * (total.norm() / 8.0) + 0.5 * (total.z.max(0.0) / 3.0)
            } else {
                0.0
            };
            u.battery.step(dt, load, ambient);
            if was_airborne && u.autopilot.mode() == FlightMode::Grounded {
                self.events.push(
                    now,
                    SystemEvent::Landed(UavId::new(i as u32 + 1), "landed".into()),
                );
            }
        }
        now
    }

    /// Runs until `deadline` (inclusive).
    pub fn run_until(&mut self, deadline: SimTime) {
        while self.clock.now() < deadline {
            self.step();
        }
    }

    /// The tick length.
    pub fn tick(&self) -> SimDuration {
        self.clock.tick_len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sim_with_one() -> (Simulator, UavHandle) {
        let world = World::rectangle(GeoPoint::new(35.0, 33.0, 0.0), 400.0, 300.0, 4);
        let mut sim = Simulator::new(world, 1);
        let h = sim.add_uav(UavConfig::default());
        (sim, h)
    }

    #[test]
    fn takeoff_and_mission_flight() {
        let (mut sim, h) = sim_with_one();
        sim.command_takeoff(h, 30.0);
        sim.run_until(SimTime::from_secs(20));
        let t = sim.telemetry(h);
        assert!((t.true_position.alt_m - 30.0).abs() < 3.0);
        assert_eq!(t.mode, FlightMode::Mission);
        assert!(sim
            .events()
            .iter()
            .any(|e| matches!(e.event, SystemEvent::TakeOff(_))));
    }

    #[test]
    fn battery_fault_fires_on_schedule() {
        let (mut sim, h) = sim_with_one();
        sim.command_takeoff(h, 30.0);
        sim.faults_mut().add(
            SimTime::from_secs(10),
            h.id(),
            FaultKind::BatteryOverTemp { soc_drop: 0.4 },
        );
        sim.run_until(SimTime::from_secs(9));
        assert!(sim.telemetry(h).battery_soc > 0.55);
        sim.run_until(SimTime::from_secs(11));
        let t = sim.telemetry(h);
        assert!(t.battery_soc < 0.6, "soc = {}", t.battery_soc);
        assert!(t.battery_temp_c >= 45.0);
        assert!(sim
            .events()
            .iter()
            .any(|e| matches!(&e.event, SystemEvent::FaultInjected { fault, .. } if fault == "battery_overtemp")));
    }

    #[test]
    fn quad_crashes_on_motor_loss() {
        let (mut sim, h) = sim_with_one();
        sim.command_takeoff(h, 30.0);
        sim.run_until(SimTime::from_secs(15));
        sim.faults_mut().add(
            SimTime::from_secs(16),
            h.id(),
            FaultKind::MotorFailure { motor: 1 },
        );
        sim.run_until(SimTime::from_secs(17));
        assert!(sim.is_crashed(h));
        assert_eq!(sim.true_position(h).alt_m, 0.0);
    }

    #[test]
    fn hexa_survives_one_motor_loss() {
        let world = World::rectangle(GeoPoint::new(35.0, 33.0, 0.0), 400.0, 300.0, 0);
        let mut sim = Simulator::new(world, 1);
        let h = sim.add_uav(UavConfig {
            motor_count: 6,
            tolerated_motor_failures: 1,
            ..UavConfig::default()
        });
        sim.command_takeoff(h, 30.0);
        sim.run_until(SimTime::from_secs(15));
        sim.faults_mut().add(
            SimTime::from_secs(16),
            h.id(),
            FaultKind::MotorFailure { motor: 1 },
        );
        sim.run_until(SimTime::from_secs(20));
        assert!(!sim.is_crashed(h));
        assert_eq!(sim.telemetry(h).failed_motors(), 1);
    }

    #[test]
    fn motor_restore_recovers_thrust_before_crash() {
        // A hexa tolerating one loss: fail a motor, restore it, fail a
        // second — at no point do two failures overlap, so it never
        // crashes and ends with one failed motor.
        let world = World::rectangle(GeoPoint::new(35.0, 33.0, 0.0), 400.0, 300.0, 0);
        let mut sim = Simulator::new(world, 1);
        let h = sim.add_uav(UavConfig {
            motor_count: 6,
            tolerated_motor_failures: 1,
            ..UavConfig::default()
        });
        sim.command_takeoff(h, 30.0);
        sim.run_until(SimTime::from_secs(15));
        sim.faults_mut().add(
            SimTime::from_secs(16),
            h.id(),
            FaultKind::MotorFailure { motor: 0 },
        );
        sim.faults_mut().add(
            SimTime::from_secs(18),
            h.id(),
            FaultKind::MotorRestore { motor: 0 },
        );
        sim.faults_mut().add(
            SimTime::from_secs(20),
            h.id(),
            FaultKind::MotorFailure { motor: 3 },
        );
        sim.run_until(SimTime::from_secs(25));
        assert!(!sim.is_crashed(h));
        assert_eq!(sim.telemetry(h).failed_motors(), 1);
        assert!(sim
            .events()
            .iter()
            .any(|e| matches!(&e.event, SystemEvent::FaultInjected { fault, .. } if fault == "motor_restore_0")));
    }

    #[test]
    fn vision_restore_recovers_camera_health() {
        let (mut sim, h) = sim_with_one();
        sim.command_takeoff(h, 30.0);
        sim.faults_mut().add(
            SimTime::from_secs(5),
            h.id(),
            FaultKind::VisionDegraded { health: 0.2 },
        );
        sim.run_until(SimTime::from_secs(6));
        assert!((sim.telemetry(h).vision_health - 0.2).abs() < 1e-9);
        sim.faults_mut()
            .add(SimTime::from_secs(7), h.id(), FaultKind::VisionRestore);
        // Restore-after-restore is idempotent at the component level.
        sim.faults_mut()
            .add(SimTime::from_secs(8), h.id(), FaultKind::VisionRestore);
        sim.run_until(SimTime::from_secs(9));
        assert_eq!(sim.telemetry(h).vision_health, 1.0);
    }

    #[test]
    fn flapping_gps_toggles_fix_availability() {
        let (mut sim, h) = sim_with_one();
        sim.command_takeoff(h, 30.0);
        sim.faults_mut().add_flapping(
            SimTime::from_secs(10),
            h.id(),
            FaultKind::GpsLoss,
            SimDuration::from_secs(2),
            SimDuration::from_secs(3),
            2,
        );
        sim.run_until(SimTime::from_secs(11));
        assert!(!sim.telemetry(h).gps.has_fix, "first outage window");
        sim.run_until(SimTime::from_secs(14));
        assert!(sim.telemetry(h).gps.has_fix, "restored between flaps");
        sim.run_until(SimTime::from_secs(16));
        assert!(!sim.telemetry(h).gps.has_fix, "second outage window");
        sim.run_until(SimTime::from_secs(20));
        assert!(sim.telemetry(h).gps.has_fix, "restored after the last flap");
    }

    #[test]
    fn gps_spoof_diverges_fix_from_truth() {
        let (mut sim, h) = sim_with_one();
        sim.command_takeoff(h, 30.0);
        sim.faults_mut().add(
            SimTime::from_secs(10),
            h.id(),
            FaultKind::GpsSpoof {
                drift: Vec3::new(0.0, 4.0, 0.0),
            },
        );
        sim.run_until(SimTime::from_secs(30));
        let t = sim.telemetry(h);
        let err = t.gps.position.haversine_distance_m(&t.true_position);
        assert!(err > 50.0, "spoof offset = {err}");
        assert!(sim.gps_spoofed(h));
    }

    #[test]
    fn mission_waypoints_are_flown() {
        let (mut sim, h) = sim_with_one();
        sim.command_takeoff(h, 30.0);
        sim.run_until(SimTime::from_secs(15));
        let base = sim.world().base();
        let wp = base.destination(90.0, 80.0).with_alt(30.0);
        sim.command(h, FlightCommand::SetMission(vec![wp]));
        sim.run_until(SimTime::from_secs(45));
        assert!(sim.true_position(h).haversine_distance_m(&wp) < 10.0);
        assert_eq!(sim.remaining_waypoints(h), 0);
    }

    #[test]
    fn wind_displaces_the_track() {
        let (mut sim, h) = sim_with_one();
        sim.environment_mut().set_wind(6.0, 270.0); // blows east
        sim.command_takeoff(h, 30.0);
        sim.run_until(SimTime::from_secs(25));
        let enu = sim.true_position(h).to_enu(&sim.world().base());
        assert!(enu.east_m > 5.0, "east drift = {}", enu.east_m);
    }

    #[test]
    fn crashed_uav_stops_everything() {
        let (mut sim, h) = sim_with_one();
        sim.command_takeoff(h, 30.0);
        sim.run_until(SimTime::from_secs(15));
        sim.faults_mut().add(
            SimTime::from_secs(16),
            h.id(),
            FaultKind::MotorFailure { motor: 0 },
        );
        sim.run_until(SimTime::from_secs(17));
        let pos = sim.true_position(h);
        sim.run_until(SimTime::from_secs(30));
        assert_eq!(sim.true_position(h), pos, "crashed airframe stays put");
    }

    #[test]
    fn telemetry_is_side_effect_free() {
        let (mut sim, h) = sim_with_one();
        sim.command_takeoff(h, 30.0);
        sim.run_until(SimTime::from_secs(5));
        let a = sim.telemetry(h).battery_soc;
        let b = sim.telemetry(h).battery_soc;
        assert_eq!(a, b);
    }

    #[test]
    fn battery_swap_only_on_ground() {
        let (mut sim, h) = sim_with_one();
        sim.command_takeoff(h, 30.0);
        sim.run_until(SimTime::from_secs(60));
        let flown = sim.telemetry(h).battery_soc;
        assert!(flown < 1.0);
        sim.swap_battery(h); // airborne: ignored
        assert_eq!(sim.telemetry(h).battery_soc, flown);
        sim.command(h, FlightCommand::EmergencyLand);
        sim.run_until(SimTime::from_secs(90));
        assert_eq!(sim.mode(h), FlightMode::Grounded);
        sim.swap_battery(h);
        assert_eq!(sim.telemetry(h).battery_soc, 1.0);
    }
}
