//! Fixed-step multi-UAV flight simulator.
//!
//! The substrate standing in for the paper's DJI Matrice 300 RTK testbed,
//! DJI Assistant 2 and Gazebo (§IV-B; see DESIGN.md for the substitution
//! argument). Deterministic, 100 ms default tick, seeded noise. The
//! simulator provides exactly the signals the SESAME runtime monitors
//! consume:
//!
//! * [`world`] — the search area, ground-truth persons, the launch base;
//! * [`environment`] — wind and ambient temperature;
//! * [`battery`] — state of charge, thermal dynamics, thermal-runaway
//!   fault (the §V-A 80 % → 40 % drop);
//! * [`propulsion`] — per-motor health with injectable failures;
//! * [`gps`] — receiver quality (satellites, HDOP), loss, and spoofing
//!   offsets (the §V-C attack input);
//! * [`camera`] — ground footprint and visible-person queries;
//! * [`autopilot`] — waypoint following and the flight modes the UAV
//!   ConSert commands (mission / hold / return / land / emergency land);
//! * [`faults`] — the fault/attack schedule;
//! * [`sim`] — the fixed-step [`sim::Simulator`] stepping everything and
//!   emitting telemetry + events.
//!
//! # Examples
//!
//! ```
//! use sesame_uav_sim::sim::{Simulator, UavConfig};
//! use sesame_uav_sim::world::World;
//! use sesame_types::geo::GeoPoint;
//!
//! let world = World::rectangle(GeoPoint::new(35.0, 33.0, 0.0), 400.0, 300.0, 7);
//! let mut sim = Simulator::new(world, 42);
//! let uav = sim.add_uav(UavConfig::default());
//! sim.command_takeoff(uav, 30.0);
//! for _ in 0..100 {
//!     sim.step();
//! }
//! let telemetry = sim.telemetry(uav);
//! assert!(telemetry.true_position.alt_m > 5.0);
//! ```

pub mod autopilot;
pub mod battery;
pub mod camera;
pub mod environment;
pub mod faults;
pub mod geofence;
pub mod gps;
pub mod propulsion;
pub mod sim;
pub mod world;

pub use autopilot::{Autopilot, FlightCommand};
pub use faults::{FaultKind, FaultSchedule, ScheduledFault};
pub use sim::{Simulator, UavConfig, UavHandle};
pub use world::World;
