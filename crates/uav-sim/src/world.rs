//! The mission world: search area, persons, base.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use sesame_types::geo::GeoPoint;

/// A rectangular area of interest with ground-truth persons to find.
///
/// # Examples
///
/// ```
/// use sesame_types::geo::GeoPoint;
/// use sesame_uav_sim::world::World;
///
/// let w = World::rectangle(GeoPoint::new(35.0, 33.0, 0.0), 500.0, 300.0, 5);
/// assert_eq!(w.persons().len(), 5);
/// assert!(w.contains(&w.persons()[0]));
/// ```
#[derive(Debug, Clone)]
pub struct World {
    /// South-west corner of the AOI (also the launch base).
    origin: GeoPoint,
    /// East extent, metres.
    width_m: f64,
    /// North extent, metres.
    height_m: f64,
    persons: Vec<GeoPoint>,
    /// Visibility in `[0, 1]` (1 = clear).
    visibility: f64,
}

impl World {
    /// A rectangular world anchored at `origin` (south-west corner /
    /// launch base) with `person_count` persons placed deterministically
    /// from the world seed embedded in dimensions.
    ///
    /// # Panics
    ///
    /// Panics if dimensions are not positive.
    pub fn rectangle(origin: GeoPoint, width_m: f64, height_m: f64, person_count: usize) -> Self {
        assert!(width_m > 0.0 && height_m > 0.0, "area must be positive");
        let mut rng = StdRng::seed_from_u64(
            (width_m as u64)
                .wrapping_mul(31)
                .wrapping_add(height_m as u64)
                .wrapping_add(person_count as u64),
        );
        let persons = (0..person_count)
            .map(|_| {
                let east = rng.random::<f64>() * width_m;
                let north = rng.random::<f64>() * height_m;
                origin
                    .destination(90.0, east)
                    .destination(0.0, north)
                    .with_alt(0.0)
            })
            .collect();
        World {
            origin,
            width_m,
            height_m,
            persons,
            visibility: 1.0,
        }
    }

    /// The launch base (south-west corner, ground level).
    pub fn base(&self) -> GeoPoint {
        self.origin.with_alt(0.0)
    }

    /// East extent in metres.
    pub fn width_m(&self) -> f64 {
        self.width_m
    }

    /// North extent in metres.
    pub fn height_m(&self) -> f64 {
        self.height_m
    }

    /// The ground-truth persons.
    pub fn persons(&self) -> &[GeoPoint] {
        &self.persons
    }

    /// Current visibility in `[0, 1]`.
    pub fn visibility(&self) -> f64 {
        self.visibility
    }

    /// Sets visibility (clamped to `[0, 1]`).
    pub fn set_visibility(&mut self, v: f64) {
        self.visibility = v.clamp(0.0, 1.0);
    }

    /// Whether a point lies inside the AOI (horizontally).
    pub fn contains(&self, p: &GeoPoint) -> bool {
        let enu = p.to_enu(&self.origin);
        (0.0..=self.width_m).contains(&enu.east_m) && (0.0..=self.height_m).contains(&enu.north_m)
    }

    /// The AOI point at fractional coordinates `(fx, fy) ∈ [0,1]²` at the
    /// given altitude.
    pub fn point_at(&self, fx: f64, fy: f64, alt_m: f64) -> GeoPoint {
        self.origin
            .destination(90.0, fx.clamp(0.0, 1.0) * self.width_m)
            .destination(0.0, fy.clamp(0.0, 1.0) * self.height_m)
            .with_alt(alt_m)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn world() -> World {
        World::rectangle(GeoPoint::new(35.0, 33.0, 0.0), 400.0, 300.0, 8)
    }

    #[test]
    fn persons_inside_area() {
        let w = world();
        assert_eq!(w.persons().len(), 8);
        for p in w.persons() {
            assert!(w.contains(p), "{p}");
            assert_eq!(p.alt_m, 0.0);
        }
    }

    #[test]
    fn corners_and_outside() {
        let w = world();
        assert!(w.contains(&w.point_at(0.0, 0.0, 0.0)));
        assert!(w.contains(&w.point_at(1.0, 1.0, 0.0)));
        let outside = w.base().destination(270.0, 50.0);
        assert!(!w.contains(&outside));
    }

    #[test]
    fn point_at_is_metrically_consistent() {
        let w = world();
        let p = w.point_at(1.0, 0.0, 10.0);
        let d = w.base().haversine_distance_m(&p);
        assert!((d - 400.0).abs() < 1.0, "d = {d}");
        assert_eq!(p.alt_m, 10.0);
    }

    #[test]
    fn deterministic_person_placement() {
        let a = world();
        let b = world();
        assert_eq!(a.persons(), b.persons());
    }

    #[test]
    fn visibility_clamps() {
        let mut w = world();
        assert_eq!(w.visibility(), 1.0);
        w.set_visibility(-2.0);
        assert_eq!(w.visibility(), 0.0);
        w.set_visibility(0.6);
        assert_eq!(w.visibility(), 0.6);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_area_panics() {
        let _ = World::rectangle(GeoPoint::default(), 0.0, 100.0, 1);
    }
}
