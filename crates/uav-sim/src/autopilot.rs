//! Waypoint autopilot and flight modes.
//!
//! Implements the actuation vocabulary of the UAV ConSert: fly the
//! mission, hold position, return to base, land, emergency land. The
//! autopilot produces a desired velocity each tick; the simulator
//! integrates it together with wind.

use sesame_types::geo::{GeoPoint, Vec3};
use sesame_types::telemetry::FlightMode;
use std::collections::VecDeque;

/// Commands the platform can send to the autopilot.
#[derive(Debug, Clone, PartialEq)]
pub enum FlightCommand {
    /// Take off to the given altitude (metres above ground).
    TakeOff {
        /// Target altitude.
        altitude_m: f64,
    },
    /// Replace the mission waypoint queue.
    SetMission(Vec<GeoPoint>),
    /// Append one waypoint to the mission queue.
    PushWaypoint(GeoPoint),
    /// Hover in place.
    Hold,
    /// Resume the mission after a hold.
    Resume,
    /// Fly home and land.
    ReturnToBase,
    /// Land at the current position.
    Land,
    /// Land immediately at maximum safe descent rate.
    EmergencyLand,
    /// Change the mission altitude (e.g. the §V-B descend-to-25 m
    /// adaptation); applies to all remaining waypoints.
    SetMissionAltitude(f64),
}

/// The autopilot for one airframe.
#[derive(Debug, Clone)]
pub struct Autopilot {
    mode: FlightMode,
    mission: VecDeque<GeoPoint>,
    target: Option<GeoPoint>,
    home: GeoPoint,
    velocity_override: Option<Vec3>,
    /// Cruise speed, m/s.
    pub cruise_mps: f64,
    /// Climb rate, m/s.
    pub climb_mps: f64,
    /// Normal descent rate, m/s.
    pub descent_mps: f64,
    /// Emergency descent rate, m/s.
    pub emergency_descent_mps: f64,
    /// Waypoint acceptance radius, metres.
    pub acceptance_m: f64,
}

impl Autopilot {
    /// An autopilot parked at `home`.
    pub fn new(home: GeoPoint) -> Self {
        Autopilot {
            mode: FlightMode::Grounded,
            mission: VecDeque::new(),
            target: None,
            home,
            velocity_override: None,
            cruise_mps: 8.0,
            climb_mps: 3.0,
            descent_mps: 2.0,
            emergency_descent_mps: 5.0,
            acceptance_m: 3.0,
        }
    }

    /// Current flight mode.
    pub fn mode(&self) -> FlightMode {
        self.mode
    }

    /// Remaining mission waypoints.
    pub fn remaining_waypoints(&self) -> usize {
        self.mission.len() + usize::from(self.target.is_some() && self.mode == FlightMode::Mission)
    }

    /// The home (launch) position.
    pub fn home(&self) -> GeoPoint {
        self.home
    }

    /// The current navigation target, if any.
    pub fn target(&self) -> Option<GeoPoint> {
        self.target
    }

    /// Applies a command.
    pub fn command(&mut self, cmd: FlightCommand, position: &GeoPoint) {
        match cmd {
            FlightCommand::TakeOff { altitude_m } => {
                if self.mode == FlightMode::Grounded {
                    self.mode = FlightMode::Mission;
                    self.target = Some(position.with_alt(altitude_m));
                }
            }
            FlightCommand::SetMission(wps) => {
                self.mission = wps.into();
                if self.mode == FlightMode::Mission && self.target.is_none() {
                    self.target = self.mission.pop_front();
                }
            }
            FlightCommand::PushWaypoint(wp) => {
                self.mission.push_back(wp);
            }
            FlightCommand::Hold => {
                if self.mode.is_airborne() {
                    // Remember the interrupted leg.
                    if let Some(t) = self.target.take() {
                        self.mission.push_front(t);
                    }
                    self.mode = FlightMode::Hold;
                }
            }
            FlightCommand::Resume => {
                if self.mode == FlightMode::Hold {
                    self.mode = FlightMode::Mission;
                    self.target = self.mission.pop_front();
                }
            }
            FlightCommand::ReturnToBase => {
                if self.mode.is_airborne() {
                    self.mode = FlightMode::ReturnToBase;
                    self.target = Some(self.home.with_alt(position.alt_m.max(10.0)));
                }
            }
            FlightCommand::Land => {
                if self.mode.is_airborne() {
                    self.mode = FlightMode::Land;
                    self.target = Some(position.with_alt(0.0));
                }
            }
            FlightCommand::EmergencyLand => {
                if self.mode.is_airborne() {
                    self.mode = FlightMode::EmergencyLand;
                    self.target = Some(position.with_alt(0.0));
                }
            }
            FlightCommand::SetMissionAltitude(alt) => {
                for wp in self.mission.iter_mut() {
                    *wp = wp.with_alt(alt);
                }
                if self.mode == FlightMode::Mission {
                    if let Some(t) = self.target.as_mut() {
                        *t = t.with_alt(alt);
                    }
                }
            }
        }
    }

    /// Sets (or clears) an external velocity override: while active and
    /// airborne, the autopilot flies this ENU velocity instead of waypoint
    /// guidance. This is the interface collaborative localization uses to
    /// steer a GPS-denied airframe (IMU velocity control needs no absolute
    /// position). Touching the ground ends the override.
    pub fn set_velocity_override(&mut self, v: Option<Vec3>) {
        self.velocity_override = v;
    }

    /// Whether a velocity override is active.
    pub fn velocity_override_active(&self) -> bool {
        self.velocity_override.is_some()
    }

    /// The desired velocity toward the current target (ENU m/s, before
    /// wind), and mode bookkeeping (waypoint arrival, landing completion).
    pub fn step(&mut self, position: &GeoPoint) -> Vec3 {
        if let Some(v) = self.velocity_override {
            if self.mode.is_airborne() {
                if position.alt_m <= 0.1 && v.z <= 0.0 {
                    self.mode = FlightMode::Grounded;
                    self.velocity_override = None;
                    self.target = None;
                    return Vec3::zero();
                }
                return v;
            }
            self.velocity_override = None;
        }
        match self.mode {
            FlightMode::Grounded => Vec3::zero(),
            FlightMode::Hold => Vec3::zero(),
            FlightMode::Mission | FlightMode::ReturnToBase => {
                let Some(target) = self.target else {
                    // Mission queue exhausted.
                    if self.mode == FlightMode::Mission {
                        if let Some(next) = self.mission.pop_front() {
                            self.target = Some(next);
                            return self.step(position);
                        }
                    }
                    return Vec3::zero();
                };
                let enu = target.to_enu(position);
                if enu.horizontal_norm() < self.acceptance_m && enu.up_m.abs() < 2.0 {
                    // Arrived.
                    if self.mode == FlightMode::ReturnToBase {
                        self.mode = FlightMode::Land;
                        self.target = Some(position.with_alt(0.0));
                    } else {
                        self.target = self.mission.pop_front();
                    }
                    return Vec3::zero();
                }
                let horiz = Vec3::new(enu.east_m, enu.north_m, 0.0);
                let hdir = horiz.normalized();
                let hspeed = self.cruise_mps.min(horiz.norm());
                let vz = enu.up_m.clamp(-self.descent_mps, self.climb_mps);
                Vec3::new(hdir.x * hspeed, hdir.y * hspeed, vz)
            }
            FlightMode::Land | FlightMode::EmergencyLand => {
                if position.alt_m <= 0.1 {
                    self.mode = FlightMode::Grounded;
                    self.target = None;
                    return Vec3::zero();
                }
                let rate = if self.mode == FlightMode::EmergencyLand {
                    self.emergency_descent_mps
                } else {
                    self.descent_mps
                };
                Vec3::new(0.0, 0.0, -rate.min(position.alt_m))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn home() -> GeoPoint {
        GeoPoint::new(35.0, 33.0, 0.0)
    }

    /// Integrates the autopilot from `pos` for `secs` at 10 Hz.
    fn fly(ap: &mut Autopilot, pos: &mut GeoPoint, secs: f64) {
        let steps = (secs * 10.0) as usize;
        for _ in 0..steps {
            let v = ap.step(pos);
            let enu = Vec3::new(v.x * 0.1, v.y * 0.1, v.z * 0.1);
            *pos = GeoPoint::from_enu(pos, enu.into());
        }
    }

    #[test]
    fn takeoff_reaches_altitude() {
        let mut ap = Autopilot::new(home());
        let mut pos = home();
        ap.command(FlightCommand::TakeOff { altitude_m: 30.0 }, &pos);
        assert_eq!(ap.mode(), FlightMode::Mission);
        fly(&mut ap, &mut pos, 15.0);
        assert!((pos.alt_m - 30.0).abs() < 3.0, "alt = {}", pos.alt_m);
    }

    #[test]
    fn mission_visits_waypoints_in_order() {
        let mut ap = Autopilot::new(home());
        let mut pos = home().with_alt(30.0);
        ap.mode = FlightMode::Mission;
        let wp1 = home().destination(90.0, 50.0).with_alt(30.0);
        let wp2 = wp1.destination(0.0, 50.0).with_alt(30.0);
        ap.command(FlightCommand::SetMission(vec![wp1, wp2]), &pos);
        fly(&mut ap, &mut pos, 30.0);
        assert!(pos.haversine_distance_m(&wp2) < 5.0, "ended at {pos}");
        assert_eq!(ap.remaining_waypoints(), 0);
    }

    #[test]
    fn hold_freezes_and_resume_continues() {
        let mut ap = Autopilot::new(home());
        let mut pos = home().with_alt(30.0);
        ap.mode = FlightMode::Mission;
        let wp = home().destination(90.0, 200.0).with_alt(30.0);
        ap.command(FlightCommand::SetMission(vec![wp]), &pos);
        fly(&mut ap, &mut pos, 5.0);
        ap.command(FlightCommand::Hold, &pos);
        let frozen = pos;
        fly(&mut ap, &mut pos, 5.0);
        assert!(pos.haversine_distance_m(&frozen) < 0.01, "held still");
        ap.command(FlightCommand::Resume, &pos);
        fly(&mut ap, &mut pos, 30.0);
        assert!(pos.haversine_distance_m(&wp) < 5.0);
    }

    #[test]
    fn rtb_flies_home_and_lands() {
        let mut ap = Autopilot::new(home());
        let mut pos = home().destination(90.0, 100.0).with_alt(30.0);
        ap.mode = FlightMode::Mission;
        ap.command(FlightCommand::ReturnToBase, &pos);
        assert_eq!(ap.mode(), FlightMode::ReturnToBase);
        fly(&mut ap, &mut pos, 60.0);
        assert_eq!(ap.mode(), FlightMode::Grounded);
        assert!(pos.haversine_distance_m(&home()) < 10.0);
        assert!(pos.alt_m < 0.5);
    }

    #[test]
    fn emergency_land_descends_fast() {
        let mut slow = Autopilot::new(home());
        let mut fast = Autopilot::new(home());
        let mut p1 = home().with_alt(40.0);
        let mut p2 = home().with_alt(40.0);
        slow.mode = FlightMode::Mission;
        fast.mode = FlightMode::Mission;
        slow.command(FlightCommand::Land, &p1);
        fast.command(FlightCommand::EmergencyLand, &p2);
        fly(&mut slow, &mut p1, 5.0);
        fly(&mut fast, &mut p2, 5.0);
        assert!(
            p2.alt_m < p1.alt_m,
            "emergency {} < normal {}",
            p2.alt_m,
            p1.alt_m
        );
        fly(&mut fast, &mut p2, 10.0);
        assert_eq!(fast.mode(), FlightMode::Grounded);
    }

    #[test]
    fn mission_altitude_change_applies_to_queue() {
        let mut ap = Autopilot::new(home());
        let pos = home().with_alt(60.0);
        ap.mode = FlightMode::Mission;
        let wps: Vec<GeoPoint> = (1..4)
            .map(|i| home().destination(90.0, i as f64 * 50.0).with_alt(60.0))
            .collect();
        ap.command(FlightCommand::SetMission(wps), &pos);
        ap.command(FlightCommand::SetMissionAltitude(25.0), &pos);
        // The in-flight target and every queued waypoint take the new
        // altitude (observed by flying the mission and watching targets).
        let mut seen = Vec::new();
        let mut fly_pos = pos;
        for _ in 0..20_000 {
            if let Some(t) = ap.target() {
                seen.push(t.alt_m);
            }
            let v = ap.step(&fly_pos);
            if v == Vec3::zero() && ap.target().is_none() {
                break;
            }
            let step = v * 0.1;
            fly_pos = GeoPoint::from_enu(&fly_pos, step.into());
        }
        assert!(!seen.is_empty());
        assert!(seen.iter().all(|a| (a - 25.0).abs() < 1e-9), "{seen:?}");
    }

    #[test]
    fn velocity_override_preempts_waypoints_and_clears_on_touchdown() {
        let mut ap = Autopilot::new(home());
        let mut pos = home().with_alt(20.0);
        ap.mode = FlightMode::Mission;
        ap.command(
            FlightCommand::SetMission(vec![home().destination(90.0, 500.0).with_alt(20.0)]),
            &pos,
        );
        // Override: fly north instead of the eastbound waypoint.
        ap.set_velocity_override(Some(Vec3::new(0.0, 2.0, 0.0)));
        assert!(ap.velocity_override_active());
        fly(&mut ap, &mut pos, 10.0);
        let enu = pos.to_enu(&home());
        assert!(enu.north_m > 15.0, "north {enu:?}");
        assert!(enu.east_m.abs() < 1.0, "waypoint guidance suppressed");
        // Descend under override until touchdown: the autopilot grounds
        // itself and drops the override.
        ap.set_velocity_override(Some(Vec3::new(0.0, 0.0, -3.0)));
        fly(&mut ap, &mut pos, 10.0);
        assert_eq!(ap.mode(), FlightMode::Grounded);
        assert!(!ap.velocity_override_active());
        assert!(pos.alt_m <= 0.5);
    }

    #[test]
    fn grounded_ignores_hold_and_land() {
        let mut ap = Autopilot::new(home());
        let pos = home();
        ap.command(FlightCommand::Hold, &pos);
        assert_eq!(ap.mode(), FlightMode::Grounded);
        ap.command(FlightCommand::Land, &pos);
        assert_eq!(ap.mode(), FlightMode::Grounded);
        assert_eq!(ap.step(&pos), Vec3::zero());
    }

    #[test]
    fn push_waypoint_extends_mission() {
        let mut ap = Autopilot::new(home());
        ap.command(
            FlightCommand::PushWaypoint(home().destination(0.0, 10.0)),
            &home(),
        );
        ap.command(
            FlightCommand::PushWaypoint(home().destination(0.0, 20.0)),
            &home(),
        );
        assert_eq!(ap.remaining_waypoints(), 2);
    }
}
