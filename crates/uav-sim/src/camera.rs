//! Camera footprint model.
//!
//! The gimballed camera looks straight down; its square ground footprint
//! scales with altitude and the field of view. The SAR pipeline asks which
//! ground-truth persons are currently inside the footprint and hands them
//! to the `sesame-vision` detector.

use sesame_types::geo::GeoPoint;

/// The nadir-looking camera.
///
/// # Examples
///
/// ```
/// use sesame_types::geo::GeoPoint;
/// use sesame_uav_sim::camera::SimCamera;
///
/// let cam = SimCamera::new(90.0);
/// // At 30 m with a 90° FOV the half-width is 30 m.
/// assert!((cam.footprint_half_width_m(30.0) - 30.0).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimCamera {
    /// Full field of view, degrees.
    pub fov_deg: f64,
    /// Health in `[0, 1]` (1 = nominal; degraded by faults).
    pub health: f64,
}

impl SimCamera {
    /// A camera with the given full field of view.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < fov_deg < 180`.
    pub fn new(fov_deg: f64) -> Self {
        assert!(
            fov_deg > 0.0 && fov_deg < 180.0,
            "field of view must be in (0, 180)"
        );
        SimCamera {
            fov_deg,
            health: 1.0,
        }
    }

    /// Half-width of the square ground footprint at `altitude_m`.
    pub fn footprint_half_width_m(&self, altitude_m: f64) -> f64 {
        altitude_m.max(0.0) * (self.fov_deg.to_radians() / 2.0).tan()
    }

    /// The persons currently inside the footprint of a camera at
    /// `position`.
    pub fn visible_persons<'a>(
        &self,
        position: &GeoPoint,
        persons: &'a [GeoPoint],
    ) -> Vec<&'a GeoPoint> {
        if self.health <= 0.0 {
            return Vec::new();
        }
        let half = self.footprint_half_width_m(position.alt_m);
        persons
            .iter()
            .filter(|p| {
                let enu = p.to_enu(&position.with_alt(0.0));
                enu.east_m.abs() <= half && enu.north_m.abs() <= half
            })
            .collect()
    }

    /// Degrades the sensor (fault injection).
    pub fn degrade(&mut self, health: f64) {
        self.health = health.clamp(0.0, 1.0);
    }

    /// Restores the sensor to nominal health (ends any degradation).
    pub fn restore(&mut self) {
        self.health = 1.0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn footprint_scales_with_altitude() {
        let cam = SimCamera::new(90.0);
        assert!(cam.footprint_half_width_m(60.0) > cam.footprint_half_width_m(25.0));
        assert_eq!(cam.footprint_half_width_m(-5.0), 0.0);
    }

    #[test]
    fn visibility_query() {
        let cam = SimCamera::new(90.0);
        let pos = GeoPoint::new(35.0, 33.0, 30.0);
        let inside = pos.with_alt(0.0).destination(45.0, 20.0);
        let outside = pos.with_alt(0.0).destination(45.0, 200.0);
        let persons = vec![inside, outside];
        let vis = cam.visible_persons(&pos, &persons);
        assert_eq!(vis.len(), 1);
        assert!(vis[0].haversine_distance_m(&inside) < 0.01);
    }

    #[test]
    fn dead_sensor_sees_nothing() {
        let mut cam = SimCamera::new(90.0);
        cam.degrade(0.0);
        let pos = GeoPoint::new(35.0, 33.0, 30.0);
        let person = pos.with_alt(0.0);
        assert!(cam.visible_persons(&pos, &[person]).is_empty());
    }

    #[test]
    fn higher_altitude_sees_more() {
        let cam = SimCamera::new(90.0);
        let base = GeoPoint::new(35.0, 33.0, 0.0);
        let persons: Vec<GeoPoint> = (0..10)
            .map(|i| base.destination(90.0, i as f64 * 15.0))
            .collect();
        let low = cam.visible_persons(&base.with_alt(20.0), &persons).len();
        let high = cam.visible_persons(&base.with_alt(80.0), &persons).len();
        assert!(high > low);
    }

    #[test]
    #[should_panic(expected = "field of view")]
    fn bad_fov_panics() {
        let _ = SimCamera::new(180.0);
    }
}
