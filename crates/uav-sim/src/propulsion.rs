//! Motor set simulation with injectable failures.

/// The simulated motor set of one airframe.
///
/// # Examples
///
/// ```
/// use sesame_uav_sim::propulsion::SimPropulsion;
///
/// let mut p = SimPropulsion::new(4);
/// p.fail_motor(2);
/// assert_eq!(p.failed_count(), 1);
/// assert!(!p.is_controllable(0));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimPropulsion {
    motors_ok: Vec<bool>,
}

impl SimPropulsion {
    /// A healthy motor set of `count` motors.
    ///
    /// # Panics
    ///
    /// Panics if `count < 3` (no multirotor flies on fewer).
    pub fn new(count: usize) -> Self {
        assert!(count >= 3, "a multirotor needs at least 3 motors");
        SimPropulsion {
            motors_ok: vec![true; count],
        }
    }

    /// Per-motor health flags.
    pub fn motors_ok(&self) -> &[bool] {
        &self.motors_ok
    }

    /// Number of motors.
    pub fn motor_count(&self) -> usize {
        self.motors_ok.len()
    }

    /// Number of failed motors.
    pub fn failed_count(&self) -> usize {
        self.motors_ok.iter().filter(|ok| !**ok).count()
    }

    /// Fails motor `index` (idempotent).
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn fail_motor(&mut self, index: usize) {
        assert!(index < self.motors_ok.len(), "motor index out of range");
        self.motors_ok[index] = false;
    }

    /// Restores motor `index` after a field repair or transient fault
    /// clearing (idempotent).
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn restore_motor(&mut self, index: usize) {
        assert!(index < self.motors_ok.len(), "motor index out of range");
        self.motors_ok[index] = true;
    }

    /// Whether the airframe remains controllable given it tolerates
    /// `tolerated` motor losses.
    pub fn is_controllable(&self, tolerated: usize) -> bool {
        self.failed_count() <= tolerated
    }

    /// Thrust capability factor in `[0, 1]`: each lost motor reduces
    /// available thrust proportionally.
    pub fn thrust_factor(&self) -> f64 {
        let ok = self.motor_count() - self.failed_count();
        ok as f64 / self.motor_count() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn healthy_set() {
        let p = SimPropulsion::new(6);
        assert_eq!(p.motor_count(), 6);
        assert_eq!(p.failed_count(), 0);
        assert!(p.is_controllable(0));
        assert_eq!(p.thrust_factor(), 1.0);
        assert_eq!(p.motors_ok().len(), 6);
    }

    #[test]
    fn failures_accumulate_idempotently() {
        let mut p = SimPropulsion::new(6);
        p.fail_motor(1);
        p.fail_motor(1);
        assert_eq!(p.failed_count(), 1);
        p.fail_motor(4);
        assert_eq!(p.failed_count(), 2);
        assert!((p.thrust_factor() - 4.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn controllability_threshold() {
        let mut p = SimPropulsion::new(6);
        p.fail_motor(0);
        assert!(p.is_controllable(1), "hexa tolerates one");
        p.fail_motor(1);
        assert!(!p.is_controllable(1));
        assert!(p.is_controllable(2));
    }

    #[test]
    fn restore_reverses_failure_idempotently() {
        let mut p = SimPropulsion::new(4);
        p.fail_motor(2);
        assert!(!p.is_controllable(0));
        p.restore_motor(2);
        assert!(p.is_controllable(0));
        assert_eq!(p.thrust_factor(), 1.0);
        p.restore_motor(2); // restoring a healthy motor is a no-op
        assert_eq!(p.failed_count(), 0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_index_panics() {
        let mut p = SimPropulsion::new(4);
        p.fail_motor(9);
    }

    #[test]
    #[should_panic(expected = "at least 3")]
    fn too_few_motors_panics() {
        let _ = SimPropulsion::new(2);
    }
}
