//! The fault / attack schedule.
//!
//! Experiments declare *what goes wrong when* up front; the simulator
//! fires each entry at its time. This is how the §V-A battery fault
//! ("sharp drop from 80 % to 40 % at the 250th second") and the §V-C
//! spoofing attack enter a run.

use sesame_types::geo::Vec3;
use sesame_types::ids::UavId;
use sesame_types::time::SimTime;

/// The injectable fault kinds.
#[derive(Debug, Clone, PartialEq)]
pub enum FaultKind {
    /// Battery thermal runaway: immediate SoC drop + heating (§V-A).
    BatteryOverTemp {
        /// Fraction of charge lost instantly (paper: 0.4).
        soc_drop: f64,
    },
    /// A motor stops producing thrust.
    MotorFailure {
        /// Motor index.
        motor: usize,
    },
    /// GPS signal loss.
    GpsLoss,
    /// GPS spoofing: the solution is dragged at the given ENU velocity.
    GpsSpoof {
        /// Drag velocity, m/s.
        drift: Vec3,
    },
    /// Vision sensor degradation.
    VisionDegraded {
        /// Remaining health in `[0, 1]`.
        health: f64,
    },
    /// Ends any GPS condition (loss or spoof).
    GpsRestore,
}

/// One scheduled fault.
#[derive(Debug, Clone, PartialEq)]
pub struct ScheduledFault {
    /// When to fire.
    pub at: SimTime,
    /// Which UAV is affected.
    pub uav: UavId,
    /// What happens.
    pub kind: FaultKind,
}

/// An ordered schedule of faults.
///
/// # Examples
///
/// ```
/// use sesame_types::ids::UavId;
/// use sesame_types::time::SimTime;
/// use sesame_uav_sim::faults::{FaultKind, FaultSchedule};
///
/// let mut schedule = FaultSchedule::new();
/// schedule.add(SimTime::from_secs(250), UavId::new(1), FaultKind::BatteryOverTemp { soc_drop: 0.4 });
/// let due = schedule.due(SimTime::from_secs(250));
/// assert_eq!(due.len(), 1);
/// assert!(schedule.due(SimTime::from_secs(251)).is_empty());
/// ```
#[derive(Debug, Clone, Default)]
pub struct FaultSchedule {
    entries: Vec<ScheduledFault>,
    fired: usize,
}

impl FaultSchedule {
    /// An empty schedule.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a fault; entries may be added in any order.
    pub fn add(&mut self, at: SimTime, uav: UavId, kind: FaultKind) {
        let pos = self
            .entries
            .iter()
            .skip(self.fired)
            .position(|e| e.at > at)
            .map(|p| p + self.fired)
            .unwrap_or(self.entries.len());
        assert!(
            pos >= self.fired,
            "cannot schedule a fault in the already-fired past"
        );
        self.entries.insert(pos, ScheduledFault { at, uav, kind });
    }

    /// Returns (and consumes) every entry due at or before `now`.
    pub fn due(&mut self, now: SimTime) -> Vec<ScheduledFault> {
        let mut out = Vec::new();
        while self.fired < self.entries.len() && self.entries[self.fired].at <= now {
            out.push(self.entries[self.fired].clone());
            self.fired += 1;
        }
        out
    }

    /// Entries not yet fired.
    pub fn pending(&self) -> usize {
        self.entries.len() - self.fired
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fires_in_time_order_regardless_of_insertion() {
        let mut s = FaultSchedule::new();
        s.add(SimTime::from_secs(10), UavId::new(1), FaultKind::GpsLoss);
        s.add(
            SimTime::from_secs(5),
            UavId::new(2),
            FaultKind::MotorFailure { motor: 0 },
        );
        assert_eq!(s.pending(), 2);
        let first = s.due(SimTime::from_secs(5));
        assert_eq!(first.len(), 1);
        assert_eq!(first[0].uav, UavId::new(2));
        let second = s.due(SimTime::from_secs(60));
        assert_eq!(second.len(), 1);
        assert!(matches!(second[0].kind, FaultKind::GpsLoss));
        assert_eq!(s.pending(), 0);
    }

    #[test]
    fn nothing_due_before_time() {
        let mut s = FaultSchedule::new();
        s.add(SimTime::from_secs(100), UavId::new(1), FaultKind::GpsLoss);
        assert!(s.due(SimTime::from_secs(99)).is_empty());
        assert_eq!(s.pending(), 1);
    }

    #[test]
    fn multiple_due_at_once() {
        let mut s = FaultSchedule::new();
        for i in 0..3 {
            s.add(
                SimTime::from_secs(10),
                UavId::new(i),
                FaultKind::VisionDegraded { health: 0.5 },
            );
        }
        assert_eq!(s.due(SimTime::from_secs(10)).len(), 3);
    }

    #[test]
    fn consumed_entries_do_not_refire() {
        let mut s = FaultSchedule::new();
        s.add(SimTime::from_secs(1), UavId::new(1), FaultKind::GpsLoss);
        assert_eq!(s.due(SimTime::from_secs(1)).len(), 1);
        assert!(s.due(SimTime::from_secs(1)).is_empty());
        assert!(s.due(SimTime::from_secs(2)).is_empty());
    }
}
