//! The fault / attack schedule.
//!
//! Experiments declare *what goes wrong when* up front; the simulator
//! fires each entry at its time. This is how the §V-A battery fault
//! ("sharp drop from 80 % to 40 % at the 250th second") and the §V-C
//! spoofing attack enter a run.

use sesame_types::geo::Vec3;
use sesame_types::ids::UavId;
use sesame_types::time::{SimDuration, SimTime};

/// The injectable fault kinds.
#[derive(Debug, Clone, PartialEq)]
pub enum FaultKind {
    /// Battery thermal runaway: immediate SoC drop + heating (§V-A).
    BatteryOverTemp {
        /// Fraction of charge lost instantly (paper: 0.4).
        soc_drop: f64,
    },
    /// A motor stops producing thrust.
    MotorFailure {
        /// Motor index.
        motor: usize,
    },
    /// GPS signal loss.
    GpsLoss,
    /// GPS spoofing: the solution is dragged at the given ENU velocity.
    GpsSpoof {
        /// Drag velocity, m/s.
        drift: Vec3,
    },
    /// Vision sensor degradation.
    VisionDegraded {
        /// Remaining health in `[0, 1]`.
        health: f64,
    },
    /// Ends any GPS condition (loss or spoof).
    GpsRestore,
    /// A failed motor comes back (transient ESC fault clearing).
    MotorRestore {
        /// Motor index.
        motor: usize,
    },
    /// The vision sensor returns to nominal health.
    VisionRestore,
}

impl FaultKind {
    /// The restore counterpart of a fault, if one exists: the entry that
    /// undoes this fault's effect. Restores themselves have none.
    pub fn restore_kind(&self) -> Option<FaultKind> {
        match self {
            FaultKind::MotorFailure { motor } => Some(FaultKind::MotorRestore { motor: *motor }),
            FaultKind::GpsLoss | FaultKind::GpsSpoof { .. } => Some(FaultKind::GpsRestore),
            FaultKind::VisionDegraded { .. } => Some(FaultKind::VisionRestore),
            FaultKind::BatteryOverTemp { .. }
            | FaultKind::GpsRestore
            | FaultKind::MotorRestore { .. }
            | FaultKind::VisionRestore => None,
        }
    }
}

/// One scheduled fault.
#[derive(Debug, Clone, PartialEq)]
pub struct ScheduledFault {
    /// When to fire.
    pub at: SimTime,
    /// Which UAV is affected.
    pub uav: UavId,
    /// What happens.
    pub kind: FaultKind,
}

/// An ordered schedule of faults.
///
/// # Examples
///
/// ```
/// use sesame_types::ids::UavId;
/// use sesame_types::time::SimTime;
/// use sesame_uav_sim::faults::{FaultKind, FaultSchedule};
///
/// let mut schedule = FaultSchedule::new();
/// schedule.add(SimTime::from_secs(250), UavId::new(1), FaultKind::BatteryOverTemp { soc_drop: 0.4 });
/// let due = schedule.due(SimTime::from_secs(250));
/// assert_eq!(due.len(), 1);
/// assert!(schedule.due(SimTime::from_secs(251)).is_empty());
/// ```
#[derive(Debug, Clone, Default)]
pub struct FaultSchedule {
    entries: Vec<ScheduledFault>,
    fired: usize,
}

impl FaultSchedule {
    /// An empty schedule.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a fault; entries may be added in any order.
    pub fn add(&mut self, at: SimTime, uav: UavId, kind: FaultKind) {
        let pos = self
            .entries
            .iter()
            .skip(self.fired)
            .position(|e| e.at > at)
            .map(|p| p + self.fired)
            .unwrap_or(self.entries.len());
        assert!(
            pos >= self.fired,
            "cannot schedule a fault in the already-fired past"
        );
        self.entries.insert(pos, ScheduledFault { at, uav, kind });
    }

    /// Schedules an intermittent (flapping) fault: `cycles` repetitions of
    /// fault-then-restore, starting at `start`, with `up` between the
    /// fault firing and its restore and `down` between a restore and the
    /// next onset. Falls back to a single one-shot entry for kinds with no
    /// restore counterpart (e.g. [`FaultKind::BatteryOverTemp`]).
    ///
    /// # Examples
    ///
    /// ```
    /// use sesame_types::ids::UavId;
    /// use sesame_types::time::{SimDuration, SimTime};
    /// use sesame_uav_sim::faults::{FaultKind, FaultSchedule};
    ///
    /// let mut s = FaultSchedule::new();
    /// s.add_flapping(
    ///     SimTime::from_secs(10),
    ///     UavId::new(1),
    ///     FaultKind::GpsLoss,
    ///     SimDuration::from_secs(2),
    ///     SimDuration::from_secs(3),
    ///     2,
    /// );
    /// assert_eq!(s.pending(), 4); // loss@10, restore@12, loss@15, restore@17
    /// ```
    pub fn add_flapping(
        &mut self,
        start: SimTime,
        uav: UavId,
        kind: FaultKind,
        up: SimDuration,
        down: SimDuration,
        cycles: usize,
    ) {
        let Some(restore) = kind.restore_kind() else {
            self.add(start, uav, kind);
            return;
        };
        let mut at = start;
        for _ in 0..cycles.max(1) {
            self.add(at, uav, kind.clone());
            at += up;
            self.add(at, uav, restore.clone());
            at += down;
        }
    }

    /// Returns (and consumes) every entry due at or before `now`.
    pub fn due(&mut self, now: SimTime) -> Vec<ScheduledFault> {
        let mut out = Vec::new();
        while self.fired < self.entries.len() && self.entries[self.fired].at <= now {
            out.push(self.entries[self.fired].clone());
            self.fired += 1;
        }
        out
    }

    /// Entries not yet fired.
    pub fn pending(&self) -> usize {
        self.entries.len() - self.fired
    }
}

// Fault schedules ride inside per-worker scenario clones in parallel
// seed sweeps.
sesame_types::assert_send_sync!(FaultKind, ScheduledFault, FaultSchedule);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fires_in_time_order_regardless_of_insertion() {
        let mut s = FaultSchedule::new();
        s.add(SimTime::from_secs(10), UavId::new(1), FaultKind::GpsLoss);
        s.add(
            SimTime::from_secs(5),
            UavId::new(2),
            FaultKind::MotorFailure { motor: 0 },
        );
        assert_eq!(s.pending(), 2);
        let first = s.due(SimTime::from_secs(5));
        assert_eq!(first.len(), 1);
        assert_eq!(first[0].uav, UavId::new(2));
        let second = s.due(SimTime::from_secs(60));
        assert_eq!(second.len(), 1);
        assert!(matches!(second[0].kind, FaultKind::GpsLoss));
        assert_eq!(s.pending(), 0);
    }

    #[test]
    fn nothing_due_before_time() {
        let mut s = FaultSchedule::new();
        s.add(SimTime::from_secs(100), UavId::new(1), FaultKind::GpsLoss);
        assert!(s.due(SimTime::from_secs(99)).is_empty());
        assert_eq!(s.pending(), 1);
    }

    #[test]
    fn multiple_due_at_once() {
        let mut s = FaultSchedule::new();
        for i in 0..3 {
            s.add(
                SimTime::from_secs(10),
                UavId::new(i),
                FaultKind::VisionDegraded { health: 0.5 },
            );
        }
        assert_eq!(s.due(SimTime::from_secs(10)).len(), 3);
    }

    #[test]
    fn same_tick_mixed_kinds_fire_together_in_insertion_order() {
        let mut s = FaultSchedule::new();
        let t = SimTime::from_secs(10);
        s.add(t, UavId::new(1), FaultKind::MotorFailure { motor: 0 });
        s.add(t, UavId::new(1), FaultKind::GpsLoss);
        s.add(
            t,
            UavId::new(1),
            FaultKind::BatteryOverTemp { soc_drop: 0.4 },
        );
        let due = s.due(t);
        assert_eq!(due.len(), 3);
        assert!(matches!(due[0].kind, FaultKind::MotorFailure { motor: 0 }));
        assert!(matches!(due[1].kind, FaultKind::GpsLoss));
        assert!(matches!(due[2].kind, FaultKind::BatteryOverTemp { .. }));
        assert_eq!(s.pending(), 0);
    }

    #[test]
    fn out_of_order_insertion_interleaved_with_firing() {
        let mut s = FaultSchedule::new();
        s.add(SimTime::from_secs(30), UavId::new(1), FaultKind::GpsLoss);
        s.add(
            SimTime::from_secs(10),
            UavId::new(2),
            FaultKind::VisionRestore,
        );
        assert_eq!(s.due(SimTime::from_secs(10)).len(), 1);
        // New entries may still be added between already-fired and pending
        // ones, as long as they are not in the past.
        s.add(SimTime::from_secs(20), UavId::new(3), FaultKind::GpsRestore);
        let due = s.due(SimTime::from_secs(40));
        assert_eq!(due.len(), 2);
        assert!(matches!(due[0].kind, FaultKind::GpsRestore));
        assert!(matches!(due[1].kind, FaultKind::GpsLoss));
    }

    #[test]
    fn restore_after_restore_is_delivered_for_idempotent_application() {
        let mut s = FaultSchedule::new();
        s.add(SimTime::from_secs(5), UavId::new(1), FaultKind::GpsRestore);
        s.add(SimTime::from_secs(6), UavId::new(1), FaultKind::GpsRestore);
        s.add(
            SimTime::from_secs(7),
            UavId::new(1),
            FaultKind::MotorRestore { motor: 1 },
        );
        s.add(
            SimTime::from_secs(8),
            UavId::new(1),
            FaultKind::MotorRestore { motor: 1 },
        );
        // Both restores surface; applying a restore twice is a no-op at
        // the component level (see sim/propulsion/gps tests).
        assert_eq!(s.due(SimTime::from_secs(10)).len(), 4);
        assert!(s.due(SimTime::from_secs(10)).is_empty());
    }

    #[test]
    fn flapping_expands_to_alternating_pairs() {
        let mut s = FaultSchedule::new();
        s.add_flapping(
            SimTime::from_secs(10),
            UavId::new(1),
            FaultKind::MotorFailure { motor: 2 },
            SimDuration::from_secs(1),
            SimDuration::from_secs(4),
            3,
        );
        assert_eq!(s.pending(), 6);
        let all = s.due(SimTime::from_secs(100));
        let kinds: Vec<&FaultKind> = all.iter().map(|f| &f.kind).collect();
        for (i, k) in kinds.iter().enumerate() {
            if i % 2 == 0 {
                assert!(matches!(k, FaultKind::MotorFailure { motor: 2 }));
            } else {
                assert!(matches!(k, FaultKind::MotorRestore { motor: 2 }));
            }
        }
        assert_eq!(all[0].at, SimTime::from_secs(10));
        assert_eq!(all[1].at, SimTime::from_secs(11));
        assert_eq!(all[2].at, SimTime::from_secs(15));
        assert_eq!(all[5].at, SimTime::from_secs(21));
    }

    #[test]
    fn flapping_without_restore_counterpart_is_one_shot() {
        let mut s = FaultSchedule::new();
        s.add_flapping(
            SimTime::from_secs(10),
            UavId::new(1),
            FaultKind::BatteryOverTemp { soc_drop: 0.2 },
            SimDuration::from_secs(1),
            SimDuration::from_secs(1),
            5,
        );
        assert_eq!(s.pending(), 1);
    }

    #[test]
    fn restore_kind_pairs_each_fault_with_its_inverse() {
        assert_eq!(
            FaultKind::MotorFailure { motor: 3 }.restore_kind(),
            Some(FaultKind::MotorRestore { motor: 3 })
        );
        assert_eq!(
            FaultKind::GpsLoss.restore_kind(),
            Some(FaultKind::GpsRestore)
        );
        assert_eq!(
            FaultKind::VisionDegraded { health: 0.1 }.restore_kind(),
            Some(FaultKind::VisionRestore)
        );
        assert_eq!(FaultKind::GpsRestore.restore_kind(), None);
        assert_eq!(
            FaultKind::BatteryOverTemp { soc_drop: 0.1 }.restore_kind(),
            None
        );
    }

    #[test]
    fn consumed_entries_do_not_refire() {
        let mut s = FaultSchedule::new();
        s.add(SimTime::from_secs(1), UavId::new(1), FaultKind::GpsLoss);
        assert_eq!(s.due(SimTime::from_secs(1)).len(), 1);
        assert!(s.due(SimTime::from_secs(1)).is_empty());
        assert!(s.due(SimTime::from_secs(2)).is_empty());
    }
}
