//! Geofence monitoring.
//!
//! "Safety concerns risks related to UAV navigation in complex or
//! unpredictable environments" (§I): a geofence bounds the operation to
//! the approved volume. The monitor classifies positions into inside /
//! margin / breach, with hysteresis-friendly margins — its output is
//! runtime evidence for the navigation certificates and a trigger for
//! return-to-base actions.

use crate::world::World;
use sesame_types::geo::GeoPoint;

/// Where a position sits relative to the fence.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FenceStatus {
    /// Comfortably inside.
    Inside,
    /// Inside but within the warning margin of the boundary.
    Margin,
    /// Outside the approved volume.
    Breach,
}

/// A rectangular-prism geofence derived from the mission world plus a
/// lateral buffer and an altitude ceiling.
///
/// # Examples
///
/// ```
/// use sesame_types::geo::GeoPoint;
/// use sesame_uav_sim::geofence::{FenceStatus, Geofence};
/// use sesame_uav_sim::world::World;
///
/// let world = World::rectangle(GeoPoint::new(35.0, 33.0, 0.0), 200.0, 100.0, 0);
/// let fence = Geofence::around(&world, 20.0, 120.0);
/// assert_eq!(fence.classify(&world.point_at(0.5, 0.5, 30.0)), FenceStatus::Inside);
/// ```
#[derive(Debug, Clone)]
pub struct Geofence {
    origin: GeoPoint,
    width_m: f64,
    height_m: f64,
    /// Lateral buffer outside the AOI that is still legal, metres.
    pub buffer_m: f64,
    /// Maximum altitude, metres.
    pub ceiling_m: f64,
    /// Margin width that triggers [`FenceStatus::Margin`], metres.
    pub warning_margin_m: f64,
}

impl Geofence {
    /// Builds a fence around a world with the given buffer and ceiling.
    ///
    /// # Panics
    ///
    /// Panics if `buffer_m` is negative or `ceiling_m` is not positive.
    pub fn around(world: &World, buffer_m: f64, ceiling_m: f64) -> Self {
        assert!(buffer_m >= 0.0, "buffer must be ≥ 0");
        assert!(ceiling_m > 0.0, "ceiling must be positive");
        Geofence {
            origin: world.base(),
            width_m: world.width_m(),
            height_m: world.height_m(),
            buffer_m,
            ceiling_m,
            warning_margin_m: 15.0,
        }
    }

    /// Signed lateral clearance: metres to the nearest legal boundary
    /// (positive inside, negative outside).
    pub fn lateral_clearance_m(&self, p: &GeoPoint) -> f64 {
        let enu = p.to_enu(&self.origin);
        let west = enu.east_m + self.buffer_m;
        let east = self.width_m + self.buffer_m - enu.east_m;
        let south = enu.north_m + self.buffer_m;
        let north = self.height_m + self.buffer_m - enu.north_m;
        west.min(east).min(south).min(north)
    }

    /// Classifies a position.
    pub fn classify(&self, p: &GeoPoint) -> FenceStatus {
        let lateral = self.lateral_clearance_m(p);
        let vertical = self.ceiling_m - p.alt_m;
        if lateral < 0.0 || vertical < 0.0 {
            FenceStatus::Breach
        } else if lateral < self.warning_margin_m || vertical < self.warning_margin_m {
            FenceStatus::Margin
        } else {
            FenceStatus::Inside
        }
    }
}

/// Tracks a UAV's fence state over time, reporting transitions once.
#[derive(Debug, Clone)]
pub struct GeofenceMonitor {
    fence: Geofence,
    last: FenceStatus,
}

impl GeofenceMonitor {
    /// Starts a monitor in the `Inside` state.
    pub fn new(fence: Geofence) -> Self {
        GeofenceMonitor {
            fence,
            last: FenceStatus::Inside,
        }
    }

    /// Updates with the latest position; returns the new status when it
    /// *changed* since the previous update (edge-triggered, so the
    /// platform raises one event per transition).
    pub fn update(&mut self, p: &GeoPoint) -> Option<FenceStatus> {
        let status = self.fence.classify(p);
        if status != self.last {
            self.last = status;
            Some(status)
        } else {
            None
        }
    }

    /// The current status.
    pub fn status(&self) -> FenceStatus {
        self.last
    }

    /// The fence.
    pub fn fence(&self) -> &Geofence {
        &self.fence
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (World, Geofence) {
        let world = World::rectangle(GeoPoint::new(35.0, 33.0, 0.0), 200.0, 100.0, 0);
        let fence = Geofence::around(&world, 20.0, 120.0);
        (world, fence)
    }

    #[test]
    fn center_is_inside() {
        let (world, fence) = setup();
        assert_eq!(
            fence.classify(&world.point_at(0.5, 0.5, 30.0)),
            FenceStatus::Inside
        );
        assert!(fence.lateral_clearance_m(&world.point_at(0.5, 0.5, 30.0)) > 50.0);
    }

    #[test]
    fn buffer_zone_is_legal_but_marginal() {
        let (world, fence) = setup();
        // 10 m west of the AOI: inside the 20 m buffer, within the 15 m
        // warning margin of its edge.
        let p = world.base().destination(270.0, 10.0).with_alt(30.0);
        assert_eq!(fence.classify(&p), FenceStatus::Margin);
    }

    #[test]
    fn far_outside_is_breach() {
        let (world, fence) = setup();
        let p = world.base().destination(270.0, 100.0).with_alt(30.0);
        assert_eq!(fence.classify(&p), FenceStatus::Breach);
        assert!(fence.lateral_clearance_m(&p) < 0.0);
    }

    #[test]
    fn ceiling_is_enforced() {
        let (world, fence) = setup();
        let center = world.point_at(0.5, 0.5, 0.0);
        assert_eq!(fence.classify(&center.with_alt(119.0)), FenceStatus::Margin);
        assert_eq!(fence.classify(&center.with_alt(130.0)), FenceStatus::Breach);
        assert_eq!(fence.classify(&center.with_alt(30.0)), FenceStatus::Inside);
    }

    #[test]
    fn monitor_is_edge_triggered() {
        let (world, fence) = setup();
        let mut mon = GeofenceMonitor::new(fence);
        let inside = world.point_at(0.5, 0.5, 30.0);
        let outside = world.base().destination(270.0, 100.0).with_alt(30.0);
        assert_eq!(mon.update(&inside), None, "already inside");
        assert_eq!(mon.update(&outside), Some(FenceStatus::Breach));
        assert_eq!(mon.update(&outside), None, "no repeat while breached");
        assert_eq!(mon.update(&inside), Some(FenceStatus::Inside));
        assert_eq!(mon.status(), FenceStatus::Inside);
    }

    #[test]
    #[should_panic(expected = "ceiling")]
    fn zero_ceiling_panics() {
        let (world, _) = setup();
        let _ = Geofence::around(&world, 10.0, 0.0);
    }
}
