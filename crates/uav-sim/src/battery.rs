//! Battery pack simulation with thermal-runaway fault injection.
//!
//! Discharge scales with commanded thrust (hover + motion); temperature
//! follows a first-order lag toward ambient plus load heating. The
//! injectable fault reproduces the §V-A event exactly: at the fault
//! instant the pack sheds a large fraction of its charge (80 % → 40 % in
//! the paper) and heats sharply.

/// The simulated pack.
///
/// # Examples
///
/// ```
/// use sesame_uav_sim::battery::SimBattery;
///
/// let mut b = SimBattery::new();
/// b.step(0.1, 1.0, 25.0);
/// assert!(b.soc() < 1.0 && b.soc() > 0.99);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct SimBattery {
    soc: f64,
    temp_c: f64,
    /// Fraction of capacity consumed per second at hover load.
    pub hover_drain_per_sec: f64,
    /// Additional drain per unit of extra load.
    pub load_drain_per_sec: f64,
    /// Thermal time constant, seconds.
    pub thermal_tau_s: f64,
    /// Heating above ambient at full load, °C.
    pub load_heating_c: f64,
    faulted: bool,
}

impl SimBattery {
    /// A fresh, full pack at 25 °C. The default drain supports ≈17 min of
    /// hover — Matrice-class endurance under payload.
    pub fn new() -> Self {
        SimBattery {
            soc: 1.0,
            temp_c: 25.0,
            hover_drain_per_sec: 0.001,
            load_drain_per_sec: 0.0005,
            thermal_tau_s: 120.0,
            load_heating_c: 12.0,
            faulted: false,
        }
    }

    /// State of charge in `[0, 1]`.
    pub fn soc(&self) -> f64 {
        self.soc
    }

    /// Pack temperature, °C.
    pub fn temperature_c(&self) -> f64 {
        self.temp_c
    }

    /// Whether the thermal-runaway fault has been injected.
    pub fn is_faulted(&self) -> bool {
        self.faulted
    }

    /// Whether the pack is empty.
    pub fn is_empty(&self) -> bool {
        self.soc <= 0.0
    }

    /// Advances the pack by `dt` seconds at `load` (1 = hover, >1 =
    /// climbing/fast flight, 0 = grounded motors-off).
    pub fn step(&mut self, dt: f64, load: f64, ambient_c: f64) {
        let load = load.max(0.0);
        let drain = if load > 0.0 {
            self.hover_drain_per_sec + self.load_drain_per_sec * (load - 1.0).max(0.0)
        } else {
            0.0
        };
        self.soc = (self.soc - drain * dt).max(0.0);
        // First-order thermal response toward ambient + load heating, plus
        // runaway heating while faulted.
        let mut target = ambient_c + self.load_heating_c * load.min(3.0);
        if self.faulted {
            target += 35.0;
        }
        let alpha = (dt / self.thermal_tau_s).min(1.0);
        self.temp_c += (target - self.temp_c) * alpha;
    }

    /// Injects the §V-A thermal-runaway fault: the state of charge drops
    /// by `soc_drop` immediately (paper: 0.4, i.e. 80 % → 40 %) and the
    /// pack starts heating toward runaway temperatures.
    pub fn inject_thermal_fault(&mut self, soc_drop: f64) {
        self.soc = (self.soc - soc_drop.max(0.0)).max(0.0);
        self.temp_c = self.temp_c.max(45.0);
        self.faulted = true;
    }

    /// Replaces the pack (the baseline's 60 s battery-swap at base).
    pub fn swap(&mut self) {
        *self = SimBattery::new();
    }
}

impl Default for SimBattery {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hover_endurance_is_plausible() {
        let mut b = SimBattery::new();
        let mut secs = 0.0;
        while !b.is_empty() && secs < 3600.0 {
            b.step(1.0, 1.0, 25.0);
            secs += 1.0;
        }
        assert!((900.0..1200.0).contains(&secs), "endurance {secs}s");
    }

    #[test]
    fn grounded_pack_does_not_drain() {
        let mut b = SimBattery::new();
        b.step(1000.0, 0.0, 25.0);
        assert_eq!(b.soc(), 1.0);
    }

    #[test]
    fn higher_load_drains_faster() {
        let mut hover = SimBattery::new();
        let mut fast = SimBattery::new();
        for _ in 0..100 {
            hover.step(1.0, 1.0, 25.0);
            fast.step(1.0, 2.0, 25.0);
        }
        assert!(fast.soc() < hover.soc());
    }

    #[test]
    fn temperature_approaches_load_target() {
        let mut b = SimBattery::new();
        for _ in 0..1000 {
            b.step(1.0, 1.0, 25.0);
        }
        assert!(
            (b.temperature_c() - 37.0).abs() < 1.0,
            "t = {}",
            b.temperature_c()
        );
    }

    #[test]
    fn fault_reproduces_paper_drop() {
        let mut b = SimBattery::new();
        // Discharge to 80 %.
        while b.soc() > 0.8 {
            b.step(1.0, 1.0, 25.0);
        }
        b.inject_thermal_fault(0.4);
        assert!((b.soc() - 0.4).abs() < 0.01, "soc = {}", b.soc());
        assert!(b.is_faulted());
        assert!(b.temperature_c() >= 45.0);
        // Runaway heating continues.
        for _ in 0..600 {
            b.step(1.0, 1.0, 25.0);
        }
        assert!(b.temperature_c() > 60.0, "t = {}", b.temperature_c());
    }

    #[test]
    fn soc_floors_at_zero() {
        let mut b = SimBattery::new();
        b.inject_thermal_fault(5.0);
        assert_eq!(b.soc(), 0.0);
        assert!(b.is_empty());
    }

    #[test]
    fn swap_restores_fresh_pack() {
        let mut b = SimBattery::new();
        b.inject_thermal_fault(0.4);
        b.swap();
        assert_eq!(b.soc(), 1.0);
        assert!(!b.is_faulted());
        assert_eq!(b.temperature_c(), 25.0);
    }
}
