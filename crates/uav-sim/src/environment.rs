//! Wind and ambient temperature.
//!
//! DJI Assistant 2 lets operators "adjust wind speed" in simulation
//! (§IV-B); the environment model provides steady wind plus seeded gusts,
//! and an ambient temperature that feeds the battery thermal model.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use sesame_types::geo::Vec3;

/// The environment model.
///
/// # Examples
///
/// ```
/// use sesame_uav_sim::environment::Environment;
///
/// let mut env = Environment::new(1);
/// env.set_wind(4.0, 90.0);
/// let w = env.wind_at(0.0);
/// assert!(w.norm() > 1.0);
/// ```
#[derive(Debug)]
pub struct Environment {
    rng: StdRng,
    wind_speed_mps: f64,
    wind_from_deg: f64,
    /// Gust intensity as a fraction of steady wind.
    pub gust_fraction: f64,
    /// Ambient temperature in °C.
    pub ambient_c: f64,
}

impl Environment {
    /// Calm, 25 °C environment with seeded gusts.
    pub fn new(seed: u64) -> Self {
        Environment {
            rng: StdRng::seed_from_u64(seed),
            wind_speed_mps: 0.0,
            wind_from_deg: 0.0,
            gust_fraction: 0.2,
            ambient_c: 25.0,
        }
    }

    /// Sets steady wind: `speed` m/s blowing *from* `from_deg` (degrees
    /// clockwise from north).
    pub fn set_wind(&mut self, speed_mps: f64, from_deg: f64) {
        self.wind_speed_mps = speed_mps.max(0.0);
        self.wind_from_deg = from_deg;
    }

    /// The wind vector (ENU, m/s) at the current instant, including a gust
    /// sample. `_time_s` is accepted for future time-varying profiles.
    pub fn wind_at(&mut self, _time_s: f64) -> Vec3 {
        let gust = 1.0 + self.gust_fraction * (self.rng.random::<f64>() * 2.0 - 1.0);
        let speed = self.wind_speed_mps * gust;
        // Blowing FROM from_deg means the velocity vector points the
        // opposite way.
        let to_rad = (self.wind_from_deg + 180.0).to_radians();
        Vec3::new(speed * to_rad.sin(), speed * to_rad.cos(), 0.0)
    }

    /// Ambient temperature in °C.
    pub fn ambient_c(&self) -> f64 {
        self.ambient_c
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn calm_environment_has_no_wind() {
        let mut env = Environment::new(1);
        assert_eq!(env.wind_at(0.0), Vec3::zero());
        assert_eq!(env.ambient_c(), 25.0);
    }

    #[test]
    fn wind_direction_convention() {
        let mut env = Environment::new(1);
        env.gust_fraction = 0.0;
        env.set_wind(10.0, 0.0); // from north -> blows south
        let w = env.wind_at(0.0);
        assert!(w.y < -9.9, "northerly wind blows south: {w:?}");
        env.set_wind(10.0, 270.0); // from west -> blows east
        let w = env.wind_at(0.0);
        assert!(w.x > 9.9, "westerly wind blows east: {w:?}");
    }

    #[test]
    fn gusts_vary_but_stay_bounded() {
        let mut env = Environment::new(2);
        env.set_wind(10.0, 180.0);
        let mut speeds = Vec::new();
        for _ in 0..100 {
            speeds.push(env.wind_at(0.0).norm());
        }
        let min = speeds.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = speeds.iter().cloned().fold(0.0, f64::max);
        assert!(min >= 8.0 - 1e-9 && max <= 12.0 + 1e-9, "{min}..{max}");
        assert!(max - min > 0.1, "gusts must vary");
    }

    #[test]
    fn negative_wind_clamped() {
        let mut env = Environment::new(3);
        env.set_wind(-5.0, 0.0);
        assert_eq!(env.wind_at(0.0).norm(), 0.0);
    }
}
