//! The ConSert model: guarantees, demands, evidence and gate trees.

use std::fmt;

/// Identifier of a runtime-evidence proposition (e.g. `"gps_usable"`).
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RteId(String);

impl RteId {
    /// Creates an evidence id.
    pub fn new(s: impl Into<String>) -> Self {
        RteId(s.into())
    }

    /// The id as a string slice.
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl fmt::Display for RteId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl From<&str> for RteId {
    fn from(s: &str) -> Self {
        RteId::new(s)
    }
}

/// Reference to a guarantee of another (or the same) ConSert.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct GuaranteeRef {
    /// Name of the providing certificate.
    pub consert: String,
    /// Name of the guarantee demanded of it.
    pub guarantee: String,
}

impl GuaranteeRef {
    /// Creates a reference.
    pub fn new(consert: impl Into<String>, guarantee: impl Into<String>) -> Self {
        GuaranteeRef {
            consert: consert.into(),
            guarantee: guarantee.into(),
        }
    }
}

impl fmt::Display for GuaranteeRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}::{}", self.consert, self.guarantee)
    }
}

/// The boolean gate tree under a guarantee.
#[derive(Debug, Clone, PartialEq)]
pub enum Tree {
    /// Always fulfilled — the "default" guarantee of a certificate.
    Always,
    /// A runtime-evidence proposition must currently hold.
    Evidence(RteId),
    /// A demand: the referenced guarantee must currently be fulfilled.
    Demand(GuaranteeRef),
    /// All children must hold.
    And(Vec<Tree>),
    /// At least one child must hold.
    Or(Vec<Tree>),
}

impl Tree {
    /// Convenience: evidence leaf.
    pub fn evidence(id: impl Into<String>) -> Tree {
        Tree::Evidence(RteId::new(id))
    }

    /// Convenience: demand leaf.
    pub fn demand(consert: impl Into<String>, guarantee: impl Into<String>) -> Tree {
        Tree::Demand(GuaranteeRef::new(consert, guarantee))
    }

    /// Every demand reference in the tree.
    pub fn demands(&self) -> Vec<&GuaranteeRef> {
        match self {
            Tree::Always | Tree::Evidence(_) => Vec::new(),
            Tree::Demand(d) => vec![d],
            Tree::And(children) | Tree::Or(children) => {
                children.iter().flat_map(|c| c.demands()).collect()
            }
        }
    }
}

/// A quantified property a guarantee certifies — the `<0.5 m`, `<0.75 m`
/// and `<1 m` accuracy bounds annotating the navigation levels in Fig. 1
/// of the paper.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Dimension {
    /// Navigation/localization accuracy bound, metres (1-σ).
    NavigationAccuracyM(f64),
    /// Reliability band as a maximum probability of failure.
    MaxProbabilityOfFailure(f64),
}

impl fmt::Display for Dimension {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Dimension::NavigationAccuracyM(m) => write!(f, "accuracy < {m} m"),
            Dimension::MaxProbabilityOfFailure(p) => write!(f, "PoF ≤ {p}"),
        }
    }
}

/// One guarantee of a certificate, with its gate tree.
#[derive(Debug, Clone, PartialEq)]
pub struct Guarantee {
    /// Guarantee name (unique within the certificate).
    pub name: String,
    /// The condition for the guarantee to be fulfilled.
    pub tree: Tree,
    /// Optional quantified property the guarantee certifies.
    pub dimension: Option<Dimension>,
}

impl Guarantee {
    /// Creates a guarantee with no quantified dimension.
    pub fn new(name: impl Into<String>, tree: Tree) -> Self {
        Guarantee {
            name: name.into(),
            tree,
            dimension: None,
        }
    }

    /// Builder-style quantified dimension.
    pub fn with_dimension(mut self, dimension: Dimension) -> Self {
        self.dimension = Some(dimension);
        self
    }
}

/// A conditional safety certificate: an ordered list of guarantees, best
/// first. Its runtime output is the first fulfilled guarantee.
#[derive(Debug, Clone, PartialEq)]
pub struct Consert {
    /// Certificate name (unique within a network).
    pub name: String,
    /// Guarantees in preference order (best first).
    pub guarantees: Vec<Guarantee>,
}

impl Consert {
    /// Creates a certificate.
    ///
    /// # Panics
    ///
    /// Panics if two guarantees share a name.
    pub fn new(name: impl Into<String>, guarantees: Vec<Guarantee>) -> Self {
        let mut names: Vec<&str> = guarantees.iter().map(|g| g.name.as_str()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(
            names.len(),
            guarantees.len(),
            "guarantee names must be unique within a certificate"
        );
        Consert {
            name: name.into(),
            guarantees,
        }
    }

    /// Looks up a guarantee by name.
    pub fn guarantee(&self, name: &str) -> Option<&Guarantee> {
        self.guarantees.iter().find(|g| g.name == name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tree_collects_demands() {
        let t = Tree::And(vec![
            Tree::evidence("a"),
            Tree::Or(vec![
                Tree::demand("gps", "acc"),
                Tree::demand("vision", "ok"),
            ]),
        ]);
        let ds = t.demands();
        assert_eq!(ds.len(), 2);
        assert_eq!(ds[0], &GuaranteeRef::new("gps", "acc"));
        assert_eq!(ds[0].to_string(), "gps::acc");
    }

    #[test]
    fn consert_lookup() {
        let c = Consert::new(
            "nav",
            vec![
                Guarantee::new("best", Tree::evidence("x")),
                Guarantee::new("fallback", Tree::Always),
            ],
        );
        assert!(c.guarantee("best").is_some());
        assert!(c.guarantee("missing").is_none());
    }

    #[test]
    #[should_panic(expected = "unique")]
    fn duplicate_guarantee_names_panic() {
        let _ = Consert::new(
            "nav",
            vec![
                Guarantee::new("same", Tree::Always),
                Guarantee::new("same", Tree::Always),
            ],
        );
    }

    #[test]
    fn rte_id_display_and_from() {
        let id: RteId = "gps_usable".into();
        assert_eq!(id.to_string(), "gps_usable");
        assert_eq!(id.as_str(), "gps_usable");
    }
}
