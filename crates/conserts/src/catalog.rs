//! The paper's Fig. 1 certificate hierarchy.
//!
//! One network per UAV (certificate names are prefixed with the UAV name),
//! plus the mission-level decider that folds per-UAV outputs into a fleet
//! decision ("Σ over UAVs").
//!
//! Runtime-evidence vocabulary (fed by the EDDI monitors in
//! `sesame-core`):
//!
//! | Evidence id            | Producer                                  |
//! |------------------------|-------------------------------------------|
//! | `gps_usable`           | GPS quality factors (fix, sats, HDOP)     |
//! | `no_attack`            | Security EDDI (no active attack-tree root) |
//! | `vision_healthy`       | vision sensor health monitor              |
//! | `safeml_ok`            | SafeML verdict ≠ Reject                   |
//! | `comm_ok`              | link quality supports collaboration       |
//! | `neighbors_available`  | ≥ 2 collaborators in range                |
//! | `assistant_available`  | a dedicated assistant UAV is on station   |
//! | `rel_high` / `rel_med` / `rel_low` | SafeDrones reliability level  |

use crate::engine::{evidence_from, ConsertNetwork, Evidence};
use crate::model::{Consert, Dimension, Guarantee, Tree};

/// The per-UAV output vocabulary of the UAV ConSert (Fig. 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum UavAction {
    /// Continue the mission and accept additional tasks.
    ContinueCanTakeMore,
    /// Continue the mission at current load.
    ContinueMission,
    /// Hold position until the critical situation resolves.
    HoldPosition,
    /// Return to base / land normally.
    ReturnToBase,
    /// Immediate emergency landing (the default guarantee).
    EmergencyLand,
}

impl UavAction {
    pub(crate) fn from_guarantee(name: &str) -> Option<UavAction> {
        Some(match name {
            "continue_can_take_more" => UavAction::ContinueCanTakeMore,
            "continue_mission" => UavAction::ContinueMission,
            "hold_position" => UavAction::HoldPosition,
            "return_to_base" => UavAction::ReturnToBase,
            "emergency_land" => UavAction::EmergencyLand,
            _ => return None,
        })
    }

    /// Whether the UAV keeps working on mission tasks under this action.
    pub fn is_mission_capable(&self) -> bool {
        matches!(
            self,
            UavAction::ContinueCanTakeMore | UavAction::ContinueMission
        )
    }
}

impl std::fmt::Display for UavAction {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            UavAction::ContinueCanTakeMore => "continue (can take more tasks)",
            UavAction::ContinueMission => "continue mission",
            UavAction::HoldPosition => "hold position",
            UavAction::ReturnToBase => "return to base / land",
            UavAction::EmergencyLand => "emergency land",
        };
        f.write_str(s)
    }
}

/// Mission-level decision (the Σ-decider of Fig. 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MissionDecision {
    /// Every UAV continues: the mission completes as planned.
    CompleteAsPlanned,
    /// Some UAV dropped out but remaining capacity covers its tasks.
    RedistributeTasks,
    /// The fleet cannot fully complete the mission.
    CannotComplete,
}

impl std::fmt::Display for MissionDecision {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            MissionDecision::CompleteAsPlanned => "mission to be completed as planned",
            MissionDecision::RedistributeTasks => "task redistribution needed",
            MissionDecision::CannotComplete => "mission cannot be fully completed",
        };
        f.write_str(s)
    }
}

/// Boolean evidence snapshot for one UAV, converted to the evidence set the
/// network consumes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UavEvidence {
    /// GPS fix usable (quality factors in range).
    pub gps_usable: bool,
    /// No active security attack detected.
    pub no_attack: bool,
    /// Vision sensor healthy.
    pub vision_healthy: bool,
    /// SafeML does not reject the perception stream.
    pub safeml_ok: bool,
    /// Comm links healthy.
    pub comm_ok: bool,
    /// At least two collaborators in range.
    pub neighbors_available: bool,
    /// A dedicated assistant UAV is available.
    pub assistant_available: bool,
    /// SafeDrones reliability = High.
    pub rel_high: bool,
    /// SafeDrones reliability = Medium.
    pub rel_med: bool,
    /// SafeDrones reliability = Low.
    pub rel_low: bool,
}

impl UavEvidence {
    /// Everything healthy: GPS, security, vision, comms, high reliability.
    pub fn nominal() -> Self {
        UavEvidence {
            gps_usable: true,
            no_attack: true,
            vision_healthy: true,
            safeml_ok: true,
            comm_ok: true,
            neighbors_available: true,
            assistant_available: false,
            rel_high: true,
            rel_med: false,
            rel_low: false,
        }
    }

    /// Packs the ten booleans into a bit mask — the per-tick evidence
    /// fingerprint the incremental layer keys its skip decision on.
    /// Two snapshots share a fingerprint iff they are field-for-field
    /// equal, so a fingerprint match is a sound reason to skip
    /// re-evaluation.
    pub fn fingerprint(self) -> u16 {
        u16::from(self.gps_usable)
            | u16::from(self.no_attack) << 1
            | u16::from(self.vision_healthy) << 2
            | u16::from(self.safeml_ok) << 3
            | u16::from(self.comm_ok) << 4
            | u16::from(self.neighbors_available) << 5
            | u16::from(self.assistant_available) << 6
            | u16::from(self.rel_high) << 7
            | u16::from(self.rel_med) << 8
            | u16::from(self.rel_low) << 9
    }

    /// The fingerprint bit position of an evidence id, or `None` for ids
    /// outside the UAV vocabulary (which [`Self::to_evidence`] never
    /// emits, so they evaluate false). Must stay in lockstep with
    /// [`Self::fingerprint`] and [`Self::to_evidence`] — the compiled
    /// evaluator in `incremental` reads evidence straight off the
    /// fingerprint through this mapping.
    pub(crate) fn evidence_bit(id: &str) -> Option<u8> {
        Some(match id {
            "gps_usable" => 0,
            "no_attack" => 1,
            "vision_healthy" => 2,
            "safeml_ok" => 3,
            "comm_ok" => 4,
            "neighbors_available" => 5,
            "assistant_available" => 6,
            "rel_high" => 7,
            "rel_med" => 8,
            "rel_low" => 9,
            _ => return None,
        })
    }

    /// Converts to the engine's evidence set.
    pub fn to_evidence(self) -> Evidence {
        let mut ids: Vec<&str> = Vec::new();
        if self.gps_usable {
            ids.push("gps_usable");
        }
        if self.no_attack {
            ids.push("no_attack");
        }
        if self.vision_healthy {
            ids.push("vision_healthy");
        }
        if self.safeml_ok {
            ids.push("safeml_ok");
        }
        if self.comm_ok {
            ids.push("comm_ok");
        }
        if self.neighbors_available {
            ids.push("neighbors_available");
        }
        if self.assistant_available {
            ids.push("assistant_available");
        }
        if self.rel_high {
            ids.push("rel_high");
        }
        if self.rel_med {
            ids.push("rel_med");
        }
        if self.rel_low {
            ids.push("rel_low");
        }
        evidence_from(ids)
    }
}

pub(crate) fn scoped(uav: &str, name: &str) -> String {
    format!("{uav}/{name}")
}

/// Builds the full Fig. 1 certificate network for one UAV. Certificate
/// names are `"<uav>/<component>"`.
pub fn uav_consert_network(uav: &str) -> ConsertNetwork {
    let security = Consert::new(
        scoped(uav, "security_eddi"),
        vec![Guarantee::new("no_attack", Tree::evidence("no_attack"))],
    );
    let vision_health = Consert::new(
        scoped(uav, "vision_sensor_health"),
        vec![Guarantee::new(
            "sensor_ok",
            Tree::evidence("vision_healthy"),
        )],
    );
    let gps_loc = Consert::new(
        scoped(uav, "gps_localization"),
        vec![Guarantee::new(
            "acc_0_5m",
            Tree::And(vec![
                Tree::evidence("gps_usable"),
                Tree::demand(scoped(uav, "security_eddi"), "no_attack"),
            ]),
        )],
    );
    let vision_loc = Consert::new(
        scoped(uav, "vision_localization"),
        vec![Guarantee::new(
            "acc_1m",
            Tree::And(vec![
                Tree::demand(scoped(uav, "vision_sensor_health"), "sensor_ok"),
                Tree::evidence("safeml_ok"),
            ]),
        )],
    );
    let comm_loc = Consert::new(
        scoped(uav, "comm_localization"),
        vec![Guarantee::new(
            "acc_0_75m",
            Tree::And(vec![
                Tree::evidence("comm_ok"),
                Tree::evidence("neighbors_available"),
            ]),
        )],
    );
    let safety = Consert::new(
        scoped(uav, "safety_eddi"),
        vec![
            Guarantee::new("rel_high", Tree::evidence("rel_high")),
            Guarantee::new("rel_med", Tree::evidence("rel_med")),
            Guarantee::new("rel_low", Tree::evidence("rel_low")),
        ],
    );
    // Navigation levels, best first (accuracy bands of Fig. 1).
    let navigation = Consert::new(
        scoped(uav, "navigation"),
        vec![
            Guarantee::new(
                "high_performance_0_5m",
                Tree::demand(scoped(uav, "gps_localization"), "acc_0_5m"),
            )
            .with_dimension(Dimension::NavigationAccuracyM(0.5)),
            Guarantee::new(
                "collaborative_0_75m",
                Tree::demand(scoped(uav, "comm_localization"), "acc_0_75m"),
            )
            .with_dimension(Dimension::NavigationAccuracyM(0.75)),
            Guarantee::new(
                "vision_1m",
                Tree::demand(scoped(uav, "vision_localization"), "acc_1m"),
            )
            .with_dimension(Dimension::NavigationAccuracyM(1.0)),
            Guarantee::new("assistant_1m", Tree::evidence("assistant_available"))
                .with_dimension(Dimension::NavigationAccuracyM(1.0)),
            Guarantee::new("default_emergency", Tree::Always),
        ],
    );
    let nav = |g: &str| Tree::demand(scoped(uav, "navigation"), g);
    let rel = |g: &str| Tree::demand(scoped(uav, "safety_eddi"), g);
    let any_nav = || {
        Tree::Or(vec![
            nav("high_performance_0_5m"),
            nav("collaborative_0_75m"),
            nav("vision_1m"),
            nav("assistant_1m"),
        ])
    };
    let uav_consert = Consert::new(
        scoped(uav, "uav"),
        vec![
            Guarantee::new(
                "continue_can_take_more",
                Tree::And(vec![nav("high_performance_0_5m"), rel("rel_high")]),
            ),
            Guarantee::new(
                "continue_mission",
                Tree::And(vec![
                    Tree::Or(vec![
                        nav("high_performance_0_5m"),
                        nav("collaborative_0_75m"),
                    ]),
                    Tree::Or(vec![rel("rel_high"), rel("rel_med")]),
                ]),
            ),
            Guarantee::new(
                "hold_position",
                Tree::And(vec![
                    Tree::Or(vec![nav("vision_1m"), nav("assistant_1m")]),
                    Tree::Or(vec![rel("rel_high"), rel("rel_med")]),
                ]),
            ),
            Guarantee::new("return_to_base", Tree::And(vec![any_nav(), rel("rel_low")])),
            Guarantee::new("emergency_land", Tree::Always),
        ],
    );
    ConsertNetwork::new(vec![
        security,
        vision_health,
        gps_loc,
        vision_loc,
        comm_loc,
        safety,
        navigation,
        uav_consert,
    ])
    .expect("catalog network is statically well-formed")
}

/// Evaluates the network for `uav` under `evidence` and returns the UAV
/// ConSert's action.
///
/// Returns `None` if the network lacks the UAV certificate (wrong name).
pub fn evaluate_uav(
    network: &ConsertNetwork,
    uav: &str,
    evidence: &UavEvidence,
) -> Option<UavAction> {
    let results = network.evaluate(&evidence.to_evidence());
    let r = results.get(&scoped(uav, "uav"))?;
    r.top.as_deref().and_then(UavAction::from_guarantee)
}

/// Looks up the certified navigation accuracy for `uav` under `evidence`:
/// the [`Dimension`] of the navigation certificate's top guarantee
/// (`None` when only the default/emergency level holds).
pub fn certified_navigation_accuracy_m(
    network: &ConsertNetwork,
    uav: &str,
    evidence: &UavEvidence,
) -> Option<f64> {
    let results = network.evaluate(&evidence.to_evidence());
    let nav_name = scoped(uav, "navigation");
    let top = results.get(&nav_name)?.top.clone()?;
    let consert = network.conserts().iter().find(|c| c.name == nav_name)?;
    match consert.guarantee(&top)?.dimension {
        Some(Dimension::NavigationAccuracyM(m)) => Some(m),
        _ => None,
    }
}

/// The Σ-decider at mission level: folds per-UAV actions into a fleet
/// decision. `redistribution_capacity` is true when at least one
/// continuing UAV reported `ContinueCanTakeMore`.
pub fn decide_mission(actions: &[UavAction]) -> MissionDecision {
    if actions.is_empty() {
        return MissionDecision::CannotComplete;
    }
    let aborted = actions
        .iter()
        .filter(|a| matches!(a, UavAction::ReturnToBase | UavAction::EmergencyLand))
        .count();
    if aborted == 0 {
        return MissionDecision::CompleteAsPlanned;
    }
    let spare_capacity = actions.contains(&UavAction::ContinueCanTakeMore);
    if spare_capacity {
        MissionDecision::RedistributeTasks
    } else {
        MissionDecision::CannotComplete
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn act(e: &UavEvidence) -> UavAction {
        let net = uav_consert_network("uav1");
        evaluate_uav(&net, "uav1", e).expect("uav certificate present")
    }

    #[test]
    fn nominal_fleet_takes_more_tasks() {
        assert_eq!(act(&UavEvidence::nominal()), UavAction::ContinueCanTakeMore);
    }

    #[test]
    fn medium_reliability_still_continues() {
        let e = UavEvidence {
            rel_high: false,
            rel_med: true,
            ..UavEvidence::nominal()
        };
        assert_eq!(act(&e), UavAction::ContinueMission);
    }

    #[test]
    fn gps_loss_falls_back_to_collaborative_navigation() {
        let e = UavEvidence {
            gps_usable: false,
            ..UavEvidence::nominal()
        };
        // Collaborative nav (<0.75 m) still supports continuing.
        assert_eq!(act(&e), UavAction::ContinueMission);
    }

    #[test]
    fn attack_invalidates_gps_navigation() {
        // Under attack the GPS localization certificate fails even with a
        // good fix (the spoofed fix cannot be trusted) — Fig. 1's
        // Security-EDDI → GPS-localization dependency.
        let e = UavEvidence {
            no_attack: false,
            comm_ok: false,
            neighbors_available: false,
            ..UavEvidence::nominal()
        };
        // Vision nav remains → hold position.
        assert_eq!(act(&e), UavAction::HoldPosition);
    }

    #[test]
    fn attack_with_collaborators_continues_collaboratively() {
        let e = UavEvidence {
            no_attack: false,
            ..UavEvidence::nominal()
        };
        assert_eq!(act(&e), UavAction::ContinueMission);
    }

    #[test]
    fn low_reliability_returns_to_base() {
        let e = UavEvidence {
            rel_high: false,
            rel_low: true,
            ..UavEvidence::nominal()
        };
        assert_eq!(act(&e), UavAction::ReturnToBase);
    }

    #[test]
    fn everything_lost_emergency_lands() {
        let e = UavEvidence {
            gps_usable: false,
            no_attack: false,
            vision_healthy: false,
            safeml_ok: false,
            comm_ok: false,
            neighbors_available: false,
            assistant_available: false,
            rel_high: false,
            rel_med: false,
            rel_low: true,
        };
        assert_eq!(act(&e), UavAction::EmergencyLand);
    }

    #[test]
    fn vision_only_holds_position() {
        let e = UavEvidence {
            gps_usable: false,
            comm_ok: false,
            neighbors_available: false,
            ..UavEvidence::nominal()
        };
        assert_eq!(act(&e), UavAction::HoldPosition);
    }

    #[test]
    fn mission_decider_matches_figure() {
        use UavAction::*;
        assert_eq!(
            decide_mission(&[ContinueCanTakeMore, ContinueMission, ContinueMission]),
            MissionDecision::CompleteAsPlanned
        );
        assert_eq!(
            decide_mission(&[ContinueCanTakeMore, ContinueMission, EmergencyLand]),
            MissionDecision::RedistributeTasks
        );
        assert_eq!(
            decide_mission(&[ContinueMission, ContinueMission, ReturnToBase]),
            MissionDecision::CannotComplete
        );
        assert_eq!(
            decide_mission(&[HoldPosition, HoldPosition, HoldPosition]),
            MissionDecision::CompleteAsPlanned,
            "holding is not aborting"
        );
        assert_eq!(decide_mission(&[]), MissionDecision::CannotComplete);
    }

    #[test]
    fn action_display_and_capability() {
        assert!(UavAction::ContinueMission.is_mission_capable());
        assert!(!UavAction::HoldPosition.is_mission_capable());
        assert_eq!(
            MissionDecision::RedistributeTasks.to_string(),
            "task redistribution needed"
        );
        assert_eq!(UavAction::EmergencyLand.to_string(), "emergency land");
    }

    #[test]
    fn navigation_accuracy_degrades_with_evidence() {
        let net = uav_consert_network("uav1");
        let nominal = certified_navigation_accuracy_m(&net, "uav1", &UavEvidence::nominal());
        assert_eq!(nominal, Some(0.5), "Fig. 1 high-performance bound");
        let no_gps = certified_navigation_accuracy_m(
            &net,
            "uav1",
            &UavEvidence {
                gps_usable: false,
                ..UavEvidence::nominal()
            },
        );
        assert_eq!(no_gps, Some(0.75), "collaborative bound");
        let vision_only = certified_navigation_accuracy_m(
            &net,
            "uav1",
            &UavEvidence {
                gps_usable: false,
                comm_ok: false,
                neighbors_available: false,
                ..UavEvidence::nominal()
            },
        );
        assert_eq!(vision_only, Some(1.0), "vision bound");
        let nothing = certified_navigation_accuracy_m(
            &net,
            "uav1",
            &UavEvidence {
                gps_usable: false,
                comm_ok: false,
                neighbors_available: false,
                vision_healthy: false,
                safeml_ok: false,
                ..UavEvidence::nominal()
            },
        );
        assert_eq!(nothing, None, "only the default level remains");
    }

    #[test]
    fn two_uavs_have_independent_networks() {
        let n1 = uav_consert_network("uav1");
        let n2 = uav_consert_network("uav2");
        let e = UavEvidence::nominal();
        assert!(evaluate_uav(&n1, "uav1", &e).is_some());
        assert!(evaluate_uav(&n1, "uav2", &e).is_none());
        assert!(evaluate_uav(&n2, "uav2", &e).is_some());
    }
}
