//! Fingerprint-gated ConSert evaluation — the ConSert leg of the EDDI
//! fast path.
//!
//! The naive per-tick flow evaluates the UAV's certificate network
//! **twice** (once in [`catalog::evaluate_uav`] for the action, once in
//! [`catalog::certified_navigation_accuracy_m`] for the accuracy bound),
//! rebuilding a `HashMap<String, EvalResult>` with freshly-cloned `String`
//! keys each time. [`IncrementalConsertNetwork`] folds both lookups into
//! one evaluation, and short-circuits that single evaluation entirely
//! when the ten-boolean evidence snapshot is bit-identical to the
//! previous tick ([`UavEvidence::fingerprint`]).
//!
//! The cache deliberately remembers only the **previous tick** — not an
//! unbounded memo — so evidence that genuinely toggles every tick is
//! re-evaluated every tick (the cache must not win, but must stay
//! correct), while the steady-state common case costs one `u16` compare.
//! [`ConsertNetwork::evaluate`] is a pure function of the evidence set,
//! so replaying a stored decision for equal evidence is exact.

use crate::catalog::{self, UavAction, UavEvidence};
use crate::engine::ConsertNetwork;
use crate::model::Dimension;

/// The per-tick ConSert outcome for one UAV: what the naive path computes
/// with two network evaluations.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ConsertDecision {
    /// The UAV certificate's top guarantee, as an action.
    pub action: Option<UavAction>,
    /// The navigation certificate's certified accuracy bound, metres.
    pub nav_accuracy_m: Option<f64>,
}

/// Hit/miss counters of the fingerprint gate.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ConsertCacheStats {
    /// Ticks whose evidence matched the previous tick bit for bit.
    pub hits: u64,
    /// Ticks that re-evaluated the network.
    pub misses: u64,
}

/// A per-UAV certificate network with the previous-tick decision cached
/// under its evidence fingerprint.
#[derive(Debug, Clone)]
pub struct IncrementalConsertNetwork {
    network: ConsertNetwork,
    uav: String,
    last: Option<(u16, ConsertDecision)>,
    stats: ConsertCacheStats,
}

impl IncrementalConsertNetwork {
    /// Builds the Fig. 1 catalog network for `uav` and wraps it.
    pub fn new(uav: impl Into<String>) -> Self {
        let uav = uav.into();
        IncrementalConsertNetwork {
            network: catalog::uav_consert_network(&uav),
            uav,
            last: None,
            stats: ConsertCacheStats::default(),
        }
    }

    /// The wrapped network.
    pub fn network(&self) -> &ConsertNetwork {
        &self.network
    }

    /// The UAV name the certificate scope uses.
    pub fn uav(&self) -> &str {
        &self.uav
    }

    /// Cache counters.
    pub fn stats(&self) -> ConsertCacheStats {
        self.stats
    }

    /// Evaluates the network for the current evidence — or replays the
    /// previous tick's decision when the fingerprint is unchanged. One
    /// evaluation serves both the action and the navigation accuracy.
    pub fn decide(&mut self, evidence: &UavEvidence) -> ConsertDecision {
        let fp = evidence.fingerprint();
        if let Some((last_fp, decision)) = &self.last {
            if *last_fp == fp {
                self.stats.hits += 1;
                return *decision;
            }
        }
        self.stats.misses += 1;
        let results = self.network.evaluate(&evidence.to_evidence());
        let action = results
            .get(&catalog::scoped(&self.uav, "uav"))
            .and_then(|r| r.top.as_deref())
            .and_then(UavAction::from_guarantee);
        let nav_name = catalog::scoped(&self.uav, "navigation");
        let nav_accuracy_m = results
            .get(&nav_name)
            .and_then(|r| r.top.as_deref())
            .and_then(|top| {
                self.network
                    .conserts()
                    .iter()
                    .find(|c| c.name == nav_name)?
                    .guarantee(top)
                    .and_then(|g| match g.dimension {
                        Some(Dimension::NavigationAccuracyM(m)) => Some(m),
                        _ => None,
                    })
            });
        let decision = ConsertDecision {
            action,
            nav_accuracy_m,
        };
        self.last = Some((fp, decision));
        decision
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::{certified_navigation_accuracy_m, evaluate_uav, uav_consert_network};

    fn naive(net: &ConsertNetwork, uav: &str, e: &UavEvidence) -> ConsertDecision {
        ConsertDecision {
            action: evaluate_uav(net, uav, e),
            nav_accuracy_m: certified_navigation_accuracy_m(net, uav, e),
        }
    }

    /// Sweep all 1024 evidence combinations: the single-evaluation decide
    /// must match the naive two-evaluation path exactly.
    #[test]
    fn decide_matches_naive_over_all_evidence_combinations() {
        let net = uav_consert_network("uav0");
        let mut inc = IncrementalConsertNetwork::new("uav0");
        for mask in 0u16..1024 {
            let e = UavEvidence {
                gps_usable: mask & 1 != 0,
                no_attack: mask & 2 != 0,
                vision_healthy: mask & 4 != 0,
                safeml_ok: mask & 8 != 0,
                comm_ok: mask & 16 != 0,
                neighbors_available: mask & 32 != 0,
                assistant_available: mask & 64 != 0,
                rel_high: mask & 128 != 0,
                rel_med: mask & 256 != 0,
                rel_low: mask & 512 != 0,
            };
            assert_eq!(e.fingerprint(), mask, "fingerprint must mirror the mask");
            assert_eq!(
                inc.decide(&e),
                naive(&net, "uav0", &e),
                "diverged at mask {mask:#06b}"
            );
        }
        // Every mask differs from its predecessor: all misses.
        assert_eq!(inc.stats().misses, 1024);
        assert_eq!(inc.stats().hits, 0);
    }

    #[test]
    fn steady_evidence_short_circuits() {
        let mut inc = IncrementalConsertNetwork::new("uav1");
        let e = UavEvidence::nominal();
        let first = inc.decide(&e);
        for _ in 0..9 {
            assert_eq!(inc.decide(&e), first);
        }
        assert_eq!(inc.stats().misses, 1);
        assert_eq!(inc.stats().hits, 9);
        assert_eq!(first.action, Some(UavAction::ContinueCanTakeMore));
        assert_eq!(first.nav_accuracy_m, Some(0.5));
    }

    /// Evidence toggling every tick never hits the last-tick cache but
    /// every answer stays correct — the issue's explicit edge case.
    #[test]
    fn toggling_evidence_never_hits_but_stays_correct() {
        let net = uav_consert_network("uav2");
        let mut inc = IncrementalConsertNetwork::new("uav2");
        let healthy = UavEvidence::nominal();
        let degraded = UavEvidence {
            gps_usable: false,
            rel_high: false,
            rel_med: true,
            ..UavEvidence::nominal()
        };
        for tick in 0..20 {
            let e = if tick % 2 == 0 { healthy } else { degraded };
            assert_eq!(inc.decide(&e), naive(&net, "uav2", &e), "tick {tick}");
        }
        assert_eq!(inc.stats().hits, 0, "alternating evidence must not hit");
        assert_eq!(inc.stats().misses, 20);
    }
}
