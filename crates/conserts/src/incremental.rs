//! Fingerprint-gated ConSert evaluation — the ConSert leg of the EDDI
//! fast path.
//!
//! The naive per-tick flow evaluates the UAV's certificate network
//! **twice** (once in [`catalog::evaluate_uav`] for the action, once in
//! [`catalog::certified_navigation_accuracy_m`] for the accuracy bound),
//! rebuilding a `HashMap<String, EvalResult>` with freshly-cloned `String`
//! keys each time. [`IncrementalConsertNetwork`] folds both lookups into
//! one evaluation, and short-circuits that single evaluation entirely
//! when the ten-boolean evidence snapshot is bit-identical to the
//! previous tick ([`UavEvidence::fingerprint`]).
//!
//! The cache deliberately remembers only the **previous tick** — not an
//! unbounded memo — so evidence that genuinely toggles every tick is
//! re-evaluated every tick (the cache must not win, but must stay
//! correct), while the steady-state common case costs one `u16` compare.
//! [`ConsertNetwork::evaluate`] is a pure function of the evidence set,
//! so replaying a stored decision for equal evidence is exact.
//!
//! Cache **misses** are allocation-free too: at construction the gate
//! trees are compiled to an index-based form ([`CompiledTree`]) — evidence
//! leaves become fingerprint bit tests, demands become
//! `(certificate, guarantee)` indices into a per-certificate fulfilled
//! bitset — so a re-evaluation walks the same trees in the same order as
//! [`ConsertNetwork::evaluate`] without touching a `String` or a
//! `HashMap` (see DESIGN.md § "Hot-loop memory discipline"). The
//! all-1024-masks conformance test locksteps the compiled evaluator
//! against the naive path.

use crate::catalog::{self, UavAction, UavEvidence};
use crate::engine::ConsertNetwork;
use crate::model::{Dimension, Tree};

/// The per-tick ConSert outcome for one UAV: what the naive path computes
/// with two network evaluations.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ConsertDecision {
    /// The UAV certificate's top guarantee, as an action.
    pub action: Option<UavAction>,
    /// The navigation certificate's certified accuracy bound, metres.
    pub nav_accuracy_m: Option<f64>,
}

/// Hit/miss counters of the fingerprint gate.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ConsertCacheStats {
    /// Ticks whose evidence matched the previous tick bit for bit.
    pub hits: u64,
    /// Ticks that re-evaluated the network.
    pub misses: u64,
}

/// A gate tree compiled to indices: evidence leaves test fingerprint
/// bits, demand leaves test the fulfilled bitset of an already-evaluated
/// certificate. Shape and child order mirror the source [`Tree`] exactly,
/// so evaluation visits the same leaves in the same order.
#[derive(Debug, Clone)]
enum CompiledTree {
    Always,
    /// Fingerprint bit of the evidence id; `None` for an id outside the
    /// UAV vocabulary, which the evidence set never contains.
    Evidence(Option<u8>),
    /// (certificate index, guarantee index) of the demanded guarantee.
    Demand(usize, usize),
    And(Vec<CompiledTree>),
    Or(Vec<CompiledTree>),
}

fn compile(tree: &Tree, conserts: &[crate::model::Consert]) -> CompiledTree {
    match tree {
        Tree::Always => CompiledTree::Always,
        Tree::Evidence(id) => CompiledTree::Evidence(UavEvidence::evidence_bit(id.as_str())),
        Tree::Demand(d) => {
            let ci = conserts
                .iter()
                .position(|c| c.name == d.consert)
                .expect("network construction validated the demand");
            let gi = conserts[ci]
                .guarantees
                .iter()
                .position(|g| g.name == d.guarantee)
                .expect("network construction validated the guarantee");
            CompiledTree::Demand(ci, gi)
        }
        Tree::And(children) => {
            CompiledTree::And(children.iter().map(|c| compile(c, conserts)).collect())
        }
        Tree::Or(children) => {
            CompiledTree::Or(children.iter().map(|c| compile(c, conserts)).collect())
        }
    }
}

/// Evaluates a compiled tree. `fulfilled[ci]` holds one bit per guarantee
/// of certificate `ci`; a demand on a not-yet-evaluated guarantee reads a
/// zero bit — the same "absent means false" the naive evaluator's
/// `unwrap_or(false)` implements.
fn eval_compiled(tree: &CompiledTree, fp: u16, fulfilled: &[u64]) -> bool {
    match tree {
        CompiledTree::Always => true,
        CompiledTree::Evidence(Some(bit)) => fp & (1 << bit) != 0,
        CompiledTree::Evidence(None) => false,
        CompiledTree::Demand(ci, gi) => fulfilled[*ci] & (1 << gi) != 0,
        CompiledTree::And(children) => children.iter().all(|c| eval_compiled(c, fp, fulfilled)),
        CompiledTree::Or(children) => children.iter().any(|c| eval_compiled(c, fp, fulfilled)),
    }
}

/// A per-UAV certificate network with the previous-tick decision cached
/// under its evidence fingerprint and the gate trees pre-compiled for
/// allocation-free misses.
#[derive(Debug, Clone)]
pub struct IncrementalConsertNetwork {
    network: ConsertNetwork,
    uav: String,
    last: Option<(u16, ConsertDecision)>,
    /// Compiled guarantee trees, indexed `[certificate][guarantee]` in
    /// `network.conserts()` order.
    compiled: Vec<Vec<CompiledTree>>,
    /// Per-guarantee action of the UAV certificate, by guarantee index.
    actions: Vec<Option<UavAction>>,
    /// Per-guarantee accuracy bound of the navigation certificate.
    nav_dims: Vec<Option<f64>>,
    uav_idx: usize,
    nav_idx: usize,
    /// Scratch: fulfilled bitset per certificate, reused across misses.
    fulfilled: Vec<u64>,
    stats: ConsertCacheStats,
}

impl IncrementalConsertNetwork {
    /// Builds the Fig. 1 catalog network for `uav` and wraps it,
    /// compiling the gate trees for allocation-free evaluation.
    pub fn new(uav: impl Into<String>) -> Self {
        let uav = uav.into();
        let network = catalog::uav_consert_network(&uav);
        let conserts = network.conserts();
        let compiled: Vec<Vec<CompiledTree>> = conserts
            .iter()
            .map(|c| {
                assert!(
                    c.guarantees.len() <= 64,
                    "fulfilled bitset is one u64 per certificate"
                );
                c.guarantees
                    .iter()
                    .map(|g| compile(&g.tree, conserts))
                    .collect()
            })
            .collect();
        let uav_idx = conserts
            .iter()
            .position(|c| c.name == catalog::scoped(&uav, "uav"))
            .expect("catalog network has the UAV certificate");
        let nav_idx = conserts
            .iter()
            .position(|c| c.name == catalog::scoped(&uav, "navigation"))
            .expect("catalog network has the navigation certificate");
        let actions = conserts[uav_idx]
            .guarantees
            .iter()
            .map(|g| UavAction::from_guarantee(&g.name))
            .collect();
        let nav_dims = conserts[nav_idx]
            .guarantees
            .iter()
            .map(|g| match g.dimension {
                Some(Dimension::NavigationAccuracyM(m)) => Some(m),
                _ => None,
            })
            .collect();
        let fulfilled = vec![0u64; conserts.len()];
        IncrementalConsertNetwork {
            network,
            uav,
            last: None,
            compiled,
            actions,
            nav_dims,
            uav_idx,
            nav_idx,
            fulfilled,
            stats: ConsertCacheStats::default(),
        }
    }

    /// The wrapped network.
    pub fn network(&self) -> &ConsertNetwork {
        &self.network
    }

    /// The UAV name the certificate scope uses.
    pub fn uav(&self) -> &str {
        &self.uav
    }

    /// Cache counters.
    pub fn stats(&self) -> ConsertCacheStats {
        self.stats
    }

    /// Evaluates the network for the current evidence — or replays the
    /// previous tick's decision when the fingerprint is unchanged. One
    /// evaluation serves both the action and the navigation accuracy, and
    /// a miss runs entirely on the compiled trees: no allocation either
    /// way.
    pub fn decide(&mut self, evidence: &UavEvidence) -> ConsertDecision {
        let fp = evidence.fingerprint();
        if let Some((last_fp, decision)) = &self.last {
            if *last_fp == fp {
                self.stats.hits += 1;
                return *decision;
            }
        }
        self.stats.misses += 1;
        // Walk certificates providers-first (the engine's validated
        // order), guarantees in declaration order — exactly what
        // `ConsertNetwork::evaluate` does, so tops agree.
        self.fulfilled.iter_mut().for_each(|b| *b = 0);
        let mut uav_top = None;
        let mut nav_top = None;
        for &ci in self.network.order() {
            let mut first = None;
            for (gi, tree) in self.compiled[ci].iter().enumerate() {
                if eval_compiled(tree, fp, &self.fulfilled) {
                    self.fulfilled[ci] |= 1 << gi;
                    if first.is_none() {
                        first = Some(gi);
                    }
                }
            }
            if ci == self.uav_idx {
                uav_top = first;
            } else if ci == self.nav_idx {
                nav_top = first;
            }
        }
        let decision = ConsertDecision {
            action: uav_top.and_then(|gi| self.actions[gi]),
            nav_accuracy_m: nav_top.and_then(|gi| self.nav_dims[gi]),
        };
        self.last = Some((fp, decision));
        decision
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::{certified_navigation_accuracy_m, evaluate_uav, uav_consert_network};

    fn naive(net: &ConsertNetwork, uav: &str, e: &UavEvidence) -> ConsertDecision {
        ConsertDecision {
            action: evaluate_uav(net, uav, e),
            nav_accuracy_m: certified_navigation_accuracy_m(net, uav, e),
        }
    }

    /// Sweep all 1024 evidence combinations: the single-evaluation decide
    /// must match the naive two-evaluation path exactly.
    #[test]
    fn decide_matches_naive_over_all_evidence_combinations() {
        let net = uav_consert_network("uav0");
        let mut inc = IncrementalConsertNetwork::new("uav0");
        for mask in 0u16..1024 {
            let e = UavEvidence {
                gps_usable: mask & 1 != 0,
                no_attack: mask & 2 != 0,
                vision_healthy: mask & 4 != 0,
                safeml_ok: mask & 8 != 0,
                comm_ok: mask & 16 != 0,
                neighbors_available: mask & 32 != 0,
                assistant_available: mask & 64 != 0,
                rel_high: mask & 128 != 0,
                rel_med: mask & 256 != 0,
                rel_low: mask & 512 != 0,
            };
            assert_eq!(e.fingerprint(), mask, "fingerprint must mirror the mask");
            assert_eq!(
                inc.decide(&e),
                naive(&net, "uav0", &e),
                "diverged at mask {mask:#06b}"
            );
        }
        // Every mask differs from its predecessor: all misses.
        assert_eq!(inc.stats().misses, 1024);
        assert_eq!(inc.stats().hits, 0);
    }

    #[test]
    fn steady_evidence_short_circuits() {
        let mut inc = IncrementalConsertNetwork::new("uav1");
        let e = UavEvidence::nominal();
        let first = inc.decide(&e);
        for _ in 0..9 {
            assert_eq!(inc.decide(&e), first);
        }
        assert_eq!(inc.stats().misses, 1);
        assert_eq!(inc.stats().hits, 9);
        assert_eq!(first.action, Some(UavAction::ContinueCanTakeMore));
        assert_eq!(first.nav_accuracy_m, Some(0.5));
    }

    /// Evidence toggling every tick never hits the last-tick cache but
    /// every answer stays correct — the issue's explicit edge case.
    #[test]
    fn toggling_evidence_never_hits_but_stays_correct() {
        let net = uav_consert_network("uav2");
        let mut inc = IncrementalConsertNetwork::new("uav2");
        let healthy = UavEvidence::nominal();
        let degraded = UavEvidence {
            gps_usable: false,
            rel_high: false,
            rel_med: true,
            ..UavEvidence::nominal()
        };
        for tick in 0..20 {
            let e = if tick % 2 == 0 { healthy } else { degraded };
            assert_eq!(inc.decide(&e), naive(&net, "uav2", &e), "tick {tick}");
        }
        assert_eq!(inc.stats().hits, 0, "alternating evidence must not hit");
        assert_eq!(inc.stats().misses, 20);
    }
}
