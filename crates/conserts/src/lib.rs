//! ConSerts — Conditional Safety Certificates with runtime evaluation.
//!
//! Reproduces the ConSerts approach of the paper (§II-B, \[23\]): each
//! component carries a certificate whose **guarantees** are conditional on
//! **runtime evidence** (boolean propositions fed by monitors) and on
//! **demands** that must be matched by guarantees of other certificates.
//! At runtime the network of certificates is re-evaluated whenever
//! evidence changes; the best fulfilled guarantee of each certificate is
//! its current output, and the mission-level decider folds the per-UAV
//! outputs into a fleet decision.
//!
//! * [`model`] — certificates, guarantees, demands and gate trees;
//! * [`engine`] — the network evaluator (topological over demand links,
//!   cycle-checked);
//! * [`catalog`] — the paper's Fig. 1 hierarchy: GPS / vision / comm
//!   localization ConSerts, vision sensor health, Security EDDI, Safety
//!   EDDI reliability levels, the navigation ConSert (accuracy levels
//!   <0.5 m, <0.75 m, <1 m, default), the UAV ConSert (continue / hold /
//!   return / emergency land) and the mission decider.
//!
//! # Examples
//!
//! ```
//! use sesame_conserts::catalog::{self, UavEvidence};
//!
//! let network = catalog::uav_consert_network("uav1");
//! let nominal = UavEvidence::nominal();
//! let action = catalog::evaluate_uav(&network, "uav1", &nominal).unwrap();
//! assert_eq!(action, catalog::UavAction::ContinueCanTakeMore);
//! ```

pub mod catalog;
pub mod engine;
pub mod export;
pub mod incremental;
pub mod model;

pub use catalog::{MissionDecision, UavAction, UavEvidence};
pub use engine::{ConsertNetwork, EvalError, EvalResult};
pub use incremental::{ConsertCacheStats, ConsertDecision, IncrementalConsertNetwork};
pub use model::{Consert, Dimension, Guarantee, GuaranteeRef, RteId, Tree};
