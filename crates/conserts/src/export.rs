//! Graphviz export of ConSert networks.
//!
//! Renders a [`ConsertNetwork`] like the paper's Fig. 1: one cluster per
//! certificate, guarantees as boxes, runtime evidence as ellipses, demand
//! links as dashed edges between clusters. When an evaluation result is
//! supplied, fulfilled guarantees are filled green.

use crate::engine::{ConsertNetwork, EvalResult};
use crate::model::Tree;
use std::collections::HashMap;
use std::fmt::Write as _;

/// Renders the network as a Graphviz `digraph` with one subgraph cluster
/// per certificate. Pass an evaluation result to highlight fulfilled
/// guarantees, or `None` for the bare structure.
///
/// # Examples
///
/// ```
/// use sesame_conserts::catalog;
/// use sesame_conserts::export::to_dot;
///
/// let network = catalog::uav_consert_network("uav1");
/// let dot = to_dot(&network, None);
/// assert!(dot.contains("cluster"));
/// assert!(dot.contains("navigation"));
/// ```
pub fn to_dot(network: &ConsertNetwork, results: Option<&HashMap<String, EvalResult>>) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "digraph conserts {{");
    let _ = writeln!(out, "  rankdir=BT;");
    let _ = writeln!(out, "  compound=true;");
    let _ = writeln!(out, "  node [fontname=\"Helvetica\"];");

    // Stable node ids: guarantee -> gN, evidence leaves get eN per use.
    let mut guarantee_ids: HashMap<(String, String), String> = HashMap::new();
    for (ci, c) in network.conserts().iter().enumerate() {
        for (gi, g) in c.guarantees.iter().enumerate() {
            guarantee_ids.insert((c.name.clone(), g.name.clone()), format!("g{ci}_{gi}"));
        }
    }
    let mut evidence_counter = 0usize;
    let mut demand_edges: Vec<(String, String)> = Vec::new();

    for (ci, c) in network.conserts().iter().enumerate() {
        let _ = writeln!(out, "  subgraph cluster_{ci} {{");
        let _ = writeln!(out, "    label=\"{}\";", escape(&c.name));
        for g in &c.guarantees {
            let gid = guarantee_ids[&(c.name.clone(), g.name.clone())].clone();
            let fulfilled = results
                .and_then(|r| r.get(&c.name))
                .map(|r| r.fulfilled.contains(&g.name))
                .unwrap_or(false);
            let style = if fulfilled {
                ", style=filled, fillcolor=\"#b3ffb3\""
            } else {
                ""
            };
            let _ = writeln!(
                out,
                "    {gid} [shape=box{style}, label=\"{}\"];",
                escape(&g.name)
            );
            collect_tree(
                &g.tree,
                &gid,
                &mut out,
                &mut evidence_counter,
                &guarantee_ids,
                &mut demand_edges,
            );
        }
        let _ = writeln!(out, "  }}");
    }
    for (from, to) in demand_edges {
        let _ = writeln!(out, "  {from} -> {to} [style=dashed, color=blue];");
    }
    out.push_str("}\n");
    out
}

fn collect_tree(
    tree: &Tree,
    parent: &str,
    out: &mut String,
    evidence_counter: &mut usize,
    guarantee_ids: &HashMap<(String, String), String>,
    demand_edges: &mut Vec<(String, String)>,
) {
    match tree {
        Tree::Always => {}
        Tree::Evidence(id) => {
            let eid = format!("e{}", *evidence_counter);
            *evidence_counter += 1;
            let _ = writeln!(
                out,
                "    {eid} [shape=ellipse, fontsize=10, label=\"{}\"];",
                escape(id.as_str())
            );
            let _ = writeln!(out, "    {eid} -> {parent};");
        }
        Tree::Demand(d) => {
            if let Some(provider) = guarantee_ids.get(&(d.consert.clone(), d.guarantee.clone())) {
                demand_edges.push((provider.clone(), parent.to_string()));
            }
        }
        Tree::And(children) | Tree::Or(children) => {
            for c in children {
                collect_tree(
                    c,
                    parent,
                    out,
                    evidence_counter,
                    guarantee_ids,
                    demand_edges,
                );
            }
        }
    }
}

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::{self, UavEvidence};

    #[test]
    fn structure_export_contains_all_certificates() {
        let network = catalog::uav_consert_network("uav1");
        let dot = to_dot(&network, None);
        for c in [
            "security_eddi",
            "vision_sensor_health",
            "gps_localization",
            "vision_localization",
            "comm_localization",
            "safety_eddi",
            "navigation",
            "uav1/uav",
        ] {
            assert!(dot.contains(c), "missing {c}");
        }
        assert!(!dot.contains("fillcolor"), "no highlights without results");
        assert!(dot.contains("style=dashed"), "demand links present");
    }

    #[test]
    fn evaluated_export_highlights_fulfilled() {
        let network = catalog::uav_consert_network("uav1");
        let results = network.evaluate(&UavEvidence::nominal().to_evidence());
        let dot = to_dot(&network, Some(&results));
        assert!(dot.matches("fillcolor").count() > 5);
        // The default guarantee is always fulfilled.
        assert!(dot.contains("default_emergency"));
    }

    #[test]
    fn demand_edges_count_matches_model() {
        let network = catalog::uav_consert_network("uav1");
        let dot = to_dot(&network, None);
        let demands: usize = network
            .conserts()
            .iter()
            .flat_map(|c| c.guarantees.iter())
            .map(|g| g.tree.demands().len())
            .sum();
        assert_eq!(dot.matches("style=dashed").count(), demands);
    }
}
