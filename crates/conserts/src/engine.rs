//! The ConSert network evaluator.
//!
//! A [`ConsertNetwork`] owns a set of certificates. Evaluation resolves
//! demand links in dependency order (cycles are rejected), computes every
//! guarantee's truth value from the supplied evidence, and reports each
//! certificate's fulfilled set plus its *top* (most preferred fulfilled)
//! guarantee. Evaluation is pure: same evidence, same result.

use crate::model::{Consert, GuaranteeRef, RteId, Tree};
use std::collections::{HashMap, HashSet};

/// Evidence assignment: which runtime-evidence propositions currently hold.
pub type Evidence = HashSet<RteId>;

/// Errors detected when building or evaluating a network.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EvalError {
    /// Two certificates share a name.
    DuplicateConsert(String),
    /// A demand references a certificate that is not in the network.
    UnknownConsert(String),
    /// A demand references a guarantee its provider does not declare.
    UnknownGuarantee(GuaranteeRef),
    /// Demand links form a cycle through these certificates.
    DemandCycle(Vec<String>),
}

impl std::fmt::Display for EvalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EvalError::DuplicateConsert(c) => write!(f, "duplicate certificate `{c}`"),
            EvalError::UnknownConsert(c) => {
                write!(f, "demand references unknown certificate `{c}`")
            }
            EvalError::UnknownGuarantee(g) => {
                write!(f, "demand references unknown guarantee `{g}`")
            }
            EvalError::DemandCycle(cs) => write!(f, "demand cycle through {cs:?}"),
        }
    }
}

impl std::error::Error for EvalError {}

/// The evaluation output for one certificate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EvalResult {
    /// All fulfilled guarantee names.
    pub fulfilled: Vec<String>,
    /// The most preferred fulfilled guarantee, if any.
    pub top: Option<String>,
}

/// A validated network of certificates.
///
/// # Examples
///
/// ```
/// use sesame_conserts::engine::ConsertNetwork;
/// use sesame_conserts::model::{Consert, Guarantee, Tree};
/// use std::collections::HashSet;
///
/// let net = ConsertNetwork::new(vec![
///     Consert::new("sensor", vec![Guarantee::new("ok", Tree::evidence("healthy"))]),
///     Consert::new(
///         "nav",
///         vec![
///             Guarantee::new("precise", Tree::demand("sensor", "ok")),
///             Guarantee::new("fallback", Tree::Always),
///         ],
///     ),
/// ])?;
/// let mut evidence = HashSet::new();
/// evidence.insert("healthy".into());
/// let results = net.evaluate(&evidence);
/// assert_eq!(results["nav"].top.as_deref(), Some("precise"));
/// # Ok::<(), sesame_conserts::engine::EvalError>(())
/// ```
#[derive(Debug, Clone)]
pub struct ConsertNetwork {
    conserts: Vec<Consert>,
    /// Evaluation order (indices into `conserts`), providers first.
    order: Vec<usize>,
}

impl ConsertNetwork {
    /// Builds and validates a network.
    ///
    /// # Errors
    ///
    /// See [`EvalError`] for the rejected structures.
    pub fn new(conserts: Vec<Consert>) -> Result<Self, EvalError> {
        let mut index: HashMap<&str, usize> = HashMap::new();
        for (i, c) in conserts.iter().enumerate() {
            if index.insert(c.name.as_str(), i).is_some() {
                return Err(EvalError::DuplicateConsert(c.name.clone()));
            }
        }
        // Validate demands and build the dependency graph (consumer -> providers).
        let mut deps: Vec<HashSet<usize>> = vec![HashSet::new(); conserts.len()];
        for (i, c) in conserts.iter().enumerate() {
            for g in &c.guarantees {
                for d in g.tree.demands() {
                    let Some(&p) = index.get(d.consert.as_str()) else {
                        return Err(EvalError::UnknownConsert(d.consert.clone()));
                    };
                    if conserts[p].guarantee(&d.guarantee).is_none() {
                        return Err(EvalError::UnknownGuarantee(d.clone()));
                    }
                    if p != i {
                        deps[i].insert(p);
                    }
                }
            }
        }
        // Kahn topological order, providers first.
        let n = conserts.len();
        let mut remaining: Vec<usize> = (0..n).map(|i| deps[i].len()).collect();
        let mut order = Vec::with_capacity(n);
        let mut ready: Vec<usize> = (0..n).filter(|&i| remaining[i] == 0).collect();
        ready.sort_unstable();
        while let Some(next) = ready.pop() {
            order.push(next);
            for i in 0..n {
                if deps[i].contains(&next) {
                    remaining[i] -= 1;
                    if remaining[i] == 0 {
                        ready.push(i);
                    }
                }
            }
        }
        if order.len() != n {
            let cyclic: Vec<String> = (0..n)
                .filter(|&i| remaining[i] > 0)
                .map(|i| conserts[i].name.clone())
                .collect();
            return Err(EvalError::DemandCycle(cyclic));
        }
        Ok(ConsertNetwork { conserts, order })
    }

    /// The certificates in the network.
    pub fn conserts(&self) -> &[Consert] {
        &self.conserts
    }

    /// The validated evaluation order (indices into [`Self::conserts`],
    /// providers first) — what [`Self::evaluate`] walks; the compiled
    /// evaluator in `incremental` walks the same order.
    pub(crate) fn order(&self) -> &[usize] {
        &self.order
    }

    /// Evaluates the whole network under `evidence`, returning per-
    /// certificate results keyed by certificate name.
    pub fn evaluate(&self, evidence: &Evidence) -> HashMap<String, EvalResult> {
        // fulfilled[(consert, guarantee)] = bool, filled in provider order.
        let mut fulfilled: HashMap<(String, String), bool> = HashMap::new();
        let mut results = HashMap::with_capacity(self.conserts.len());
        for &i in &self.order {
            let c = &self.conserts[i];
            let mut names = Vec::new();
            for g in &c.guarantees {
                let ok = Self::eval_tree(&g.tree, evidence, &fulfilled);
                fulfilled.insert((c.name.clone(), g.name.clone()), ok);
                if ok {
                    names.push(g.name.clone());
                }
            }
            let top = names.first().cloned();
            results.insert(
                c.name.clone(),
                EvalResult {
                    fulfilled: names,
                    top,
                },
            );
        }
        results
    }

    fn eval_tree(
        tree: &Tree,
        evidence: &Evidence,
        fulfilled: &HashMap<(String, String), bool>,
    ) -> bool {
        match tree {
            Tree::Always => true,
            Tree::Evidence(id) => evidence.contains(id),
            Tree::Demand(d) => *fulfilled
                .get(&(d.consert.clone(), d.guarantee.clone()))
                .unwrap_or(&false),
            Tree::And(children) => children
                .iter()
                .all(|c| Self::eval_tree(c, evidence, fulfilled)),
            Tree::Or(children) => children
                .iter()
                .any(|c| Self::eval_tree(c, evidence, fulfilled)),
        }
    }
}

/// Builds an [`Evidence`] set from string ids.
pub fn evidence_from<I, S>(ids: I) -> Evidence
where
    I: IntoIterator<Item = S>,
    S: Into<String>,
{
    ids.into_iter().map(|s| RteId::new(s.into())).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::Guarantee;

    fn simple_network() -> ConsertNetwork {
        ConsertNetwork::new(vec![
            Consert::new(
                "sensor",
                vec![Guarantee::new("ok", Tree::evidence("healthy"))],
            ),
            Consert::new(
                "nav",
                vec![
                    Guarantee::new(
                        "precise",
                        Tree::And(vec![
                            Tree::demand("sensor", "ok"),
                            Tree::evidence("gps_usable"),
                        ]),
                    ),
                    Guarantee::new("coarse", Tree::demand("sensor", "ok")),
                    Guarantee::new("fallback", Tree::Always),
                ],
            ),
        ])
        .unwrap()
    }

    #[test]
    fn top_guarantee_follows_preference_order() {
        let net = simple_network();
        let full = net.evaluate(&evidence_from(["healthy", "gps_usable"]));
        assert_eq!(full["nav"].top.as_deref(), Some("precise"));
        assert_eq!(full["nav"].fulfilled.len(), 3);

        let degraded = net.evaluate(&evidence_from(["healthy"]));
        assert_eq!(degraded["nav"].top.as_deref(), Some("coarse"));

        let bare = net.evaluate(&evidence_from::<_, String>([]));
        assert_eq!(bare["nav"].top.as_deref(), Some("fallback"));
        assert_eq!(bare["sensor"].top, None);
    }

    #[test]
    fn evaluation_is_pure() {
        let net = simple_network();
        let e = evidence_from(["healthy"]);
        assert_eq!(net.evaluate(&e), net.evaluate(&e));
    }

    #[test]
    fn unknown_consert_rejected() {
        let err = ConsertNetwork::new(vec![Consert::new(
            "nav",
            vec![Guarantee::new("x", Tree::demand("ghost", "ok"))],
        )])
        .unwrap_err();
        assert_eq!(err, EvalError::UnknownConsert("ghost".into()));
    }

    #[test]
    fn unknown_guarantee_rejected() {
        let err = ConsertNetwork::new(vec![
            Consert::new("sensor", vec![Guarantee::new("ok", Tree::Always)]),
            Consert::new(
                "nav",
                vec![Guarantee::new("x", Tree::demand("sensor", "missing"))],
            ),
        ])
        .unwrap_err();
        assert!(matches!(err, EvalError::UnknownGuarantee(_)));
    }

    #[test]
    fn duplicate_consert_rejected() {
        let err = ConsertNetwork::new(vec![
            Consert::new("a", vec![Guarantee::new("x", Tree::Always)]),
            Consert::new("a", vec![Guarantee::new("y", Tree::Always)]),
        ])
        .unwrap_err();
        assert_eq!(err, EvalError::DuplicateConsert("a".into()));
    }

    #[test]
    fn demand_cycle_rejected() {
        let err = ConsertNetwork::new(vec![
            Consert::new("a", vec![Guarantee::new("x", Tree::demand("b", "y"))]),
            Consert::new("b", vec![Guarantee::new("y", Tree::demand("a", "x"))]),
        ])
        .unwrap_err();
        assert!(matches!(err, EvalError::DemandCycle(_)));
    }

    #[test]
    fn self_demand_within_consert_allowed() {
        // A guarantee may reference a sibling guarantee (evaluated in
        // declaration order).
        let net = ConsertNetwork::new(vec![Consert::new(
            "c",
            vec![
                Guarantee::new("base", Tree::evidence("e")),
                Guarantee::new("derived", Tree::demand("c", "base")),
            ],
        )])
        .unwrap();
        let r = net.evaluate(&evidence_from(["e"]));
        assert_eq!(r["c"].fulfilled, vec!["base", "derived"]);
    }

    #[test]
    fn three_level_chain_propagates() {
        let net = ConsertNetwork::new(vec![
            Consert::new("gps", vec![Guarantee::new("fix", Tree::evidence("sats"))]),
            Consert::new(
                "loc",
                vec![Guarantee::new("acc", Tree::demand("gps", "fix"))],
            ),
            Consert::new(
                "nav",
                vec![Guarantee::new("go", Tree::demand("loc", "acc"))],
            ),
        ])
        .unwrap();
        let ok = net.evaluate(&evidence_from(["sats"]));
        assert_eq!(ok["nav"].top.as_deref(), Some("go"));
        let lost = net.evaluate(&evidence_from::<_, String>([]));
        assert_eq!(lost["nav"].top, None);
    }

    #[test]
    fn or_gate_takes_either_branch() {
        let net = ConsertNetwork::new(vec![Consert::new(
            "c",
            vec![Guarantee::new(
                "g",
                Tree::Or(vec![Tree::evidence("a"), Tree::evidence("b")]),
            )],
        )])
        .unwrap();
        assert!(net.evaluate(&evidence_from(["a"]))["c"].top.is_some());
        assert!(net.evaluate(&evidence_from(["b"]))["c"].top.is_some());
        assert!(net.evaluate(&evidence_from(["z"]))["c"].top.is_none());
    }
}
