//! Property tests of the ConSert evaluation engine.

use proptest::prelude::*;
use sesame_conserts::engine::{evidence_from, ConsertNetwork};
use sesame_conserts::model::{Consert, Guarantee, Tree};

/// Builds a random negation-free tree over evidence ids e0..e3 and demands
/// on provider `p`'s guarantee `g`.
fn tree(depth: u32) -> BoxedStrategy<Tree> {
    let leaf = prop_oneof![
        Just(Tree::Always),
        (0u8..4).prop_map(|i| Tree::evidence(format!("e{i}"))),
        Just(Tree::demand("p", "g")),
    ];
    leaf.prop_recursive(depth, 16, 3, |inner| {
        prop_oneof![
            proptest::collection::vec(inner.clone(), 1..4).prop_map(Tree::And),
            proptest::collection::vec(inner, 1..4).prop_map(Tree::Or),
        ]
    })
    .boxed()
}

fn network(t: Tree) -> ConsertNetwork {
    ConsertNetwork::new(vec![
        Consert::new("p", vec![Guarantee::new("g", Tree::evidence("e0"))]),
        Consert::new(
            "c",
            vec![
                Guarantee::new("main", t),
                Guarantee::new("fallback", Tree::Always),
            ],
        ),
    ])
    .expect("negation-free trees over known providers are valid")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Evaluation is pure: identical evidence gives identical results.
    #[test]
    fn evaluation_is_deterministic(t in tree(3), bits in 0u8..16) {
        let net = network(t);
        let ids: Vec<String> = (0..4)
            .filter(|i| bits & (1 << i) != 0)
            .map(|i| format!("e{i}"))
            .collect();
        let ev = evidence_from(ids);
        prop_assert_eq!(net.evaluate(&ev), net.evaluate(&ev));
    }

    /// Monotonicity: adding evidence never defeats a fulfilled guarantee
    /// (the trees have no negation).
    #[test]
    fn evaluation_is_monotone(t in tree(3), bits in 0u8..16, extra in 0u8..4) {
        let net = network(t);
        let small: Vec<String> = (0..4)
            .filter(|i| bits & (1 << i) != 0)
            .map(|i| format!("e{i}"))
            .collect();
        let mut big = small.clone();
        big.push(format!("e{extra}"));
        let r_small = net.evaluate(&evidence_from(small));
        let r_big = net.evaluate(&evidence_from(big));
        for (name, res) in &r_small {
            for g in &res.fulfilled {
                prop_assert!(r_big[name].fulfilled.contains(g));
            }
        }
    }

    /// The fallback guarantee (Always) is fulfilled under any evidence, so
    /// the certificate always has a top guarantee.
    #[test]
    fn always_guarantee_never_fails(t in tree(3), bits in 0u8..16) {
        let net = network(t);
        let ids: Vec<String> = (0..4)
            .filter(|i| bits & (1 << i) != 0)
            .map(|i| format!("e{i}"))
            .collect();
        let results = net.evaluate(&evidence_from(ids));
        prop_assert!(results["c"].top.is_some());
        prop_assert!(results["c"].fulfilled.contains(&"fallback".to_string()));
    }

    /// With full evidence, every guarantee whose tree lacks demands on
    /// unfulfilled providers is fulfilled.
    #[test]
    fn full_evidence_fulfills_main(t in tree(3)) {
        let net = network(t);
        let all = evidence_from(["e0", "e1", "e2", "e3"]);
        let results = net.evaluate(&all);
        // Provider has e0, so its guarantee holds; with every leaf true,
        // any negation-free tree evaluates true.
        prop_assert!(results["c"].fulfilled.contains(&"main".to_string()));
    }
}
