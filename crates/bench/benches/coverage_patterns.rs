//! Ablation: coverage-pattern choice — boustrophedon sweep vs inward
//! spiral. Generation cost and resulting path length per strip geometry.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sesame_sar::area::split_strips;
use sesame_sar::coverage::{boustrophedon_path, path_length_m, spiral_path};
use sesame_types::geo::GeoPoint;
use std::hint::black_box;

fn bench_generation(c: &mut Criterion) {
    let origin = GeoPoint::new(35.0, 33.0, 0.0);
    let mut group = c.benchmark_group("coverage/generate");
    for (w, h) in [(200.0, 150.0), (600.0, 400.0), (1200.0, 800.0)] {
        let strip = split_strips(3)[1];
        group.bench_with_input(
            BenchmarkId::new("boustrophedon", format!("{w}x{h}")),
            &(w, h),
            |b, &(w, h)| {
                b.iter(|| black_box(boustrophedon_path(&origin, w, h, &strip, 30.0, 25.0)))
            },
        );
        group.bench_with_input(
            BenchmarkId::new("spiral", format!("{w}x{h}")),
            &(w, h),
            |b, &(w, h)| b.iter(|| black_box(spiral_path(&origin, w, h, &strip, 30.0, 25.0))),
        );
    }
    group.finish();
}

fn bench_path_length(c: &mut Criterion) {
    // Not a timing ablation: report the length ratio as a bench so it
    // lands in bench_output.txt next to the costs.
    let origin = GeoPoint::new(35.0, 33.0, 0.0);
    let strip = split_strips(3)[1];
    let b_len = path_length_m(&boustrophedon_path(
        &origin, 600.0, 400.0, &strip, 30.0, 25.0,
    ));
    let s_len = path_length_m(&spiral_path(&origin, 600.0, 400.0, &strip, 30.0, 25.0));
    println!(
        "coverage/length: boustrophedon {b_len:.0} m, spiral {s_len:.0} m (ratio {:.2})",
        s_len / b_len
    );
    c.bench_function("coverage/length_eval", |bch| {
        let path = boustrophedon_path(&origin, 600.0, 400.0, &strip, 30.0, 25.0);
        bch.iter(|| black_box(path_length_m(&path)));
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(20)
        .warm_up_time(std::time::Duration::from_millis(400))
        .measurement_time(std::time::Duration::from_secs(2));
    targets = bench_generation, bench_path_length
}
criterion_main!(benches);
