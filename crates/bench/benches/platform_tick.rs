//! The integrated platform loop: cost of one 100 ms tick with the full
//! SESAME stack versus the bare baseline — the runtime-overhead question
//! behind "UAVs are highly constrained devices … requiring the use of
//! lightweight technologies" (paper abstract).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sesame_core::orchestrator::{Platform, PlatformConfig};
use std::hint::black_box;

fn platform(sesame: bool) -> Platform {
    let mut p = Platform::new(PlatformConfig {
        sesame_enabled: sesame,
        area_width_m: 300.0,
        area_height_m: 200.0,
        person_count: 4,
        seed: 7,
        ..PlatformConfig::default()
    });
    p.launch();
    // Warm up: reach cruise and upload routes.
    for _ in 0..200 {
        p.step();
    }
    p
}

fn bench_tick(c: &mut Criterion) {
    let mut group = c.benchmark_group("platform/tick");
    group.sample_size(20);
    for sesame in [false, true] {
        group.bench_with_input(
            BenchmarkId::from_parameter(if sesame { "sesame" } else { "baseline" }),
            &sesame,
            |b, &sesame| {
                let mut p = platform(sesame);
                b.iter(|| black_box(p.step()));
            },
        );
    }
    group.finish();
}

fn bench_construction(c: &mut Criterion) {
    let mut group = c.benchmark_group("platform/construct");
    group.sample_size(10);
    group.bench_function("with_sesame", |b| {
        b.iter(|| {
            black_box(Platform::new(PlatformConfig {
                seed: 7,
                ..PlatformConfig::default()
            }))
        });
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(20)
        .warm_up_time(std::time::Duration::from_millis(400))
        .measurement_time(std::time::Duration::from_secs(2));
    targets = bench_tick, bench_construction
}
criterion_main!(benches);
