//! Fig. 5 bench: the SafeDrones reliability pipeline under the §V-A
//! battery fault — per-tick monitor cost and the full scenario kernel.

use criterion::{criterion_group, criterion_main, Criterion};
use sesame_safedrones::monitor::{SafeDronesConfig, SafeDronesMonitor};
use sesame_types::geo::GeoPoint;
use sesame_types::ids::UavId;
use sesame_types::telemetry::UavTelemetry;
use sesame_types::time::{SimDuration, SimTime};
use std::hint::black_box;

fn telemetry(t: u64, soc: f64, temp: f64) -> UavTelemetry {
    let mut tel = UavTelemetry::nominal(
        UavId::new(1),
        SimTime::from_secs(t),
        GeoPoint::new(35.0, 33.0, 30.0),
    );
    tel.battery_soc = soc;
    tel.battery_temp_c = temp;
    tel
}

fn bench_monitor_tick(c: &mut Criterion) {
    c.bench_function("fig5/safedrones_tick_nominal", |b| {
        let mut mon = SafeDronesMonitor::new(SafeDronesConfig::default());
        mon.set_remaining_mission(SimDuration::from_secs(300));
        let mut t = 0u64;
        b.iter(|| {
            t += 1;
            mon.ingest(&telemetry(t, 0.9, 25.0));
            mon.advance(SimDuration::from_millis(100));
            black_box(mon.probability_of_failure())
        });
    });
    c.bench_function("fig5/safedrones_tick_faulted", |b| {
        let mut cfg = SafeDronesConfig::default();
        cfg.battery.activation_energy_ev = 1.0;
        let mut mon = SafeDronesMonitor::new(cfg);
        mon.set_remaining_mission(SimDuration::from_secs(300));
        mon.ingest(&telemetry(0, 0.8, 25.0));
        mon.ingest(&telemetry(1, 0.4, 60.0)); // the §V-A fault
        let mut t = 1u64;
        b.iter(|| {
            t += 1;
            mon.ingest(&telemetry(t, 0.4, 60.0));
            mon.advance(SimDuration::from_millis(100));
            black_box(mon.estimate())
        });
    });
}

fn bench_fault_to_threshold(c: &mut Criterion) {
    // The §V-A kernel: from the fault to the 0.9 threshold, at 1 Hz.
    c.bench_function("fig5/fault_to_threshold_sweep", |b| {
        b.iter(|| {
            let mut cfg = SafeDronesConfig::default();
            cfg.battery.activation_energy_ev = 1.0;
            cfg.battery.lambda_base = 3.0e-6;
            let mut mon = SafeDronesMonitor::new(cfg);
            mon.ingest(&telemetry(0, 0.8, 25.0));
            mon.ingest(&telemetry(1, 0.4, 60.0));
            let mut t = 1u64;
            while mon.probability_of_failure() < 0.9 && t < 2000 {
                t += 1;
                mon.ingest(&telemetry(t, 0.4, 62.0));
                mon.advance(SimDuration::from_secs(1));
            }
            black_box(t)
        });
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(20)
        .warm_up_time(std::time::Duration::from_millis(400))
        .measurement_time(std::time::Duration::from_secs(2));
    targets = bench_monitor_tick, bench_fault_to_threshold
}
criterion_main!(benches);
