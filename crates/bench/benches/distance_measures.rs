//! Ablation: statistical distance measures vs window size — the SafeML
//! design choice called out in DESIGN.md. KS and Kuiper are O(n log n);
//! the integral measures pay more per point.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use sesame_safeml::distance::DistanceMeasure;
use std::hint::black_box;

fn sample(n: usize, shift: f64, seed: u64) -> Vec<f64> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n).map(|_| rng.random::<f64>() + shift).collect()
}

fn bench_measures(c: &mut Criterion) {
    let mut group = c.benchmark_group("distance/measure_x_window");
    for window in [50usize, 200, 1000] {
        let a = sample(window, 0.0, 1);
        let b = sample(window, 0.3, 2);
        for m in DistanceMeasure::ALL {
            group.bench_with_input(
                BenchmarkId::new(m.name(), window),
                &(&a, &b),
                |bench, (a, b)| bench.iter(|| black_box(m.compute(a, b))),
            );
        }
    }
    group.finish();
}

fn bench_permutation_test(c: &mut Criterion) {
    c.bench_function("distance/permutation_test_ks_100x50", |b| {
        let a = sample(50, 0.0, 3);
        let y = sample(50, 0.5, 4);
        b.iter(|| {
            black_box(sesame_safeml::bootstrap::permutation_test(
                DistanceMeasure::KolmogorovSmirnov,
                &a,
                &y,
                100,
                7,
            ))
        });
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(20)
        .warm_up_time(std::time::Duration::from_millis(400))
        .measurement_time(std::time::Duration::from_secs(2));
    targets = bench_measures, bench_permutation_test
}
criterion_main!(benches);
