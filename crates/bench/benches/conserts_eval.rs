//! Fig. 1 bench: ConSert network construction and evaluation latency —
//! the certificate re-evaluation runs on every platform tick, so it must
//! be cheap.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sesame_conserts::catalog::{self, UavEvidence};
use sesame_conserts::engine::ConsertNetwork;
use sesame_conserts::model::{Consert, Guarantee, Tree};
use std::hint::black_box;

fn bench_catalog(c: &mut Criterion) {
    c.bench_function("conserts/build_uav_network", |b| {
        b.iter(|| black_box(catalog::uav_consert_network("uav1")));
    });
    c.bench_function("conserts/evaluate_uav_network", |b| {
        let network = catalog::uav_consert_network("uav1");
        let evidence = UavEvidence::nominal();
        b.iter(|| black_box(catalog::evaluate_uav(&network, "uav1", &evidence)));
    });
}

/// Scaling ablation: evaluation latency vs certificate-chain depth.
fn bench_chain_depth(c: &mut Criterion) {
    let mut group = c.benchmark_group("conserts/chain_depth");
    for depth in [4usize, 16, 64] {
        group.bench_with_input(BenchmarkId::from_parameter(depth), &depth, |b, &depth| {
            let mut conserts = vec![Consert::new(
                "c0",
                vec![Guarantee::new("g", Tree::evidence("e"))],
            )];
            for i in 1..depth {
                conserts.push(Consert::new(
                    format!("c{i}"),
                    vec![Guarantee::new(
                        "g",
                        Tree::demand(format!("c{}", i - 1), "g"),
                    )],
                ));
            }
            let net = ConsertNetwork::new(conserts).unwrap();
            let evidence = sesame_conserts::engine::evidence_from(["e"]);
            b.iter(|| black_box(net.evaluate(&evidence)));
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(20)
        .warm_up_time(std::time::Duration::from_millis(400))
        .measurement_time(std::time::Duration::from_secs(2));
    targets = bench_catalog, bench_chain_depth
}
criterion_main!(benches);
