//! Ablation: bus throughput — publish/step/drain cycles with and without
//! the attack plane's taps and tampers, plus a threaded harness that
//! exercises the Send bounds by preparing messages on worker threads.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sesame_middleware::bus::MessageBus;
use sesame_middleware::message::{Message, Payload};
use sesame_types::time::SimTime;
use std::hint::black_box;
use std::sync::mpsc;

fn bench_bus_cycle(c: &mut Criterion) {
    let mut group = c.benchmark_group("bus/publish_step_drain");
    for tampered in [false, true] {
        group.bench_with_input(
            BenchmarkId::from_parameter(if tampered { "tampered" } else { "clean" }),
            &tampered,
            |b, &tampered| {
                let mut bus = MessageBus::seeded(1);
                let sub = bus.subscribe("#");
                if tampered {
                    bus.install_tamper(
                        "#",
                        Box::new(|m| {
                            if let Payload::Text(t) = &mut m.payload {
                                t.push('!');
                                true
                            } else {
                                false
                            }
                        }),
                    );
                }
                let mut t = 0u64;
                b.iter(|| {
                    t += 1;
                    let now = SimTime::from_millis(t * 100);
                    for i in 0..32 {
                        bus.publish(now, "n", format!("/t/{i}"), Payload::Text("x".into()));
                    }
                    bus.step(now + sesame_types::time::SimDuration::from_millis(100));
                    black_box(bus.drain(sub).expect("live subscription").len())
                });
            },
        );
    }
    group.finish();
}

fn bench_threaded_producers(c: &mut Criterion) {
    // Messages are Send: build them on four worker threads, deliver on the
    // bus thread — the deployment shape of a multi-process ROS graph.
    c.bench_function("bus/threaded_producers_4x64", |b| {
        b.iter(|| {
            let (tx, rx) = mpsc::channel::<Message>();
            std::thread::scope(|scope| {
                for w in 0..4 {
                    let tx = tx.clone();
                    scope.spawn(move || {
                        for i in 0..64u64 {
                            let m = Message::new(
                                format!("/w{w}/t"),
                                format!("worker{w}"),
                                i,
                                SimTime::from_millis(i),
                                Payload::Text("payload".into()),
                            );
                            tx.send(m).expect("receiver alive");
                        }
                    });
                }
                drop(tx);
                let mut bus = MessageBus::seeded(2);
                let sub = bus.subscribe("#");
                for m in rx.iter() {
                    bus.publish_message(m);
                }
                bus.step(SimTime::from_secs(1));
                black_box(bus.drain(sub).expect("live subscription").len())
            });
        });
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(20)
        .warm_up_time(std::time::Duration::from_millis(400))
        .measurement_time(std::time::Duration::from_secs(2));
    targets = bench_bus_cycle, bench_threaded_producers
}
criterion_main!(benches);
