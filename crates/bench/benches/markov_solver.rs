//! Ablation: CTMC transient-solver cost vs chain size and step length —
//! the SafeDrones design choice of advancing beliefs piecewise per tick
//! versus solving longer horizons at once.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sesame_safedrones::markov::{Ctmc, CtmcProcess};
use std::hint::black_box;

fn chain(n: usize, rate: f64) -> Ctmc {
    let mut c = Ctmc::new(n);
    for i in 0..n - 1 {
        c.set_rate(i, i + 1, rate);
        if i > 0 {
            c.set_rate(i, i - 1, rate * 0.3);
        }
    }
    c
}

fn bench_transient(c: &mut Criterion) {
    let mut group = c.benchmark_group("markov/transient_size");
    for n in [2usize, 4, 8, 16] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            let chain = chain(n, 0.01);
            let mut p0 = vec![0.0; n];
            p0[0] = 1.0;
            b.iter(|| black_box(chain.transient(&p0, 60.0)));
        });
    }
    group.finish();
}

fn bench_step_size(c: &mut Criterion) {
    // 600 simulated seconds advanced in ticks of various lengths: the
    // accuracy is identical (Markov property); the cost is not.
    let mut group = c.benchmark_group("markov/step_size_600s");
    for step in [0.1f64, 1.0, 10.0, 60.0] {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{step}s")),
            &step,
            |b, &step| {
                b.iter(|| {
                    let mut proc = CtmcProcess::new(chain(4, 0.01), 0);
                    let steps = (600.0 / step) as usize;
                    for _ in 0..steps {
                        proc.advance(step);
                    }
                    black_box(proc.mass_in(&[3]))
                });
            },
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(20)
        .warm_up_time(std::time::Duration::from_millis(400))
        .measurement_time(std::time::Duration::from_secs(2));
    targets = bench_transient, bench_step_size
}
criterion_main!(benches);
