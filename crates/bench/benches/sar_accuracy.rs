//! §V-B bench: the perception-uncertainty pipeline (feature extraction →
//! SafeML window → DeepKnowledge trace → SINADRA inference) at the two
//! operating altitudes, plus the altitude-policy decision.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sesame_deepknowledge::nn::{Activation, Mlp};
use sesame_deepknowledge::transfer::TransferAnalyzer;
use sesame_deepknowledge::uncertainty::UncertaintyMonitor;
use sesame_safeml::monitor::{SafeMlConfig, SafeMlMonitor};
use sesame_sar::accuracy::AltitudePolicy;
use sesame_sinadra::risk::{SarRiskModel, SituationInputs};
use sesame_vision::features::{FeatureExtractor, SceneCondition};
use std::hint::black_box;

fn bench_uncertainty_pipeline(c: &mut Criterion) {
    let mut group = c.benchmark_group("sar_accuracy/uncertainty_tick");
    for altitude in [25.0, 60.0] {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{altitude}m")),
            &altitude,
            |b, &altitude| {
                let mut fx = FeatureExtractor::new(8, 1);
                let reference = fx.reference_set(200);
                let mut safeml =
                    SafeMlMonitor::new(reference.clone(), SafeMlConfig::default()).unwrap();
                let model = Mlp::new(&[8, 12, 1], Activation::Tanh, 2);
                let analyzer = TransferAnalyzer::analyze(&model, &reference, &reference, 0.5);
                let mut dk = UncertaintyMonitor::new(analyzer, 40);
                let sinadra = SarRiskModel::new();
                let scene = SceneCondition {
                    altitude_m: altitude,
                    visibility: 1.0,
                };
                b.iter(|| {
                    let frame = fx.extract(&scene);
                    safeml.push_sample(&frame).unwrap();
                    let u_ml = safeml.dissimilarity();
                    let u_dk = dk.assess(&model, &frame);
                    let risk = sinadra.assess(&SituationInputs {
                        detection_uncertainty: u_ml.max(u_dk),
                        altitude_high: altitude > 40.0,
                        visibility_poor: false,
                        person_likely: true,
                        time_pressure_high: true,
                    });
                    black_box(risk)
                });
            },
        );
    }
    group.finish();
}

fn bench_policy(c: &mut Criterion) {
    c.bench_function("sar_accuracy/altitude_policy_decide", |b| {
        let policy = AltitudePolicy::paper_defaults();
        let mut u = 0.0;
        b.iter(|| {
            u = (u + 0.013) % 1.0;
            black_box(policy.decide(60.0, u))
        });
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(20)
        .warm_up_time(std::time::Duration::from_millis(400))
        .measurement_time(std::time::Duration::from_secs(2));
    targets = bench_uncertainty_pipeline, bench_policy
}
criterion_main!(benches);
