//! Ablation: Bayesian-network inference cost — the SAR risk model query
//! that runs per tick, and variable elimination vs network size.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sesame_sinadra::bn::BayesianNetwork;
use sesame_sinadra::inference::{query, Evidence};
use sesame_sinadra::risk::{SarRiskModel, SituationInputs};
use std::hint::black_box;

fn bench_risk_model(c: &mut Criterion) {
    c.bench_function("sinadra/sar_risk_assess", |b| {
        let model = SarRiskModel::new();
        let mut u = 0.0;
        b.iter(|| {
            u = (u + 0.017) % 1.0;
            black_box(model.assess(&SituationInputs {
                detection_uncertainty: u,
                altitude_high: u > 0.5,
                visibility_poor: false,
                person_likely: true,
                time_pressure_high: true,
            }))
        });
    });
}

/// A binary chain A1 -> A2 -> ... -> An; query the last node given soft
/// evidence on the first.
fn chain_network(n: usize) -> BayesianNetwork {
    let mut bn = BayesianNetwork::new();
    for i in 0..n {
        bn.add_variable(&format!("x{i}"), &["f", "t"]).unwrap();
    }
    bn.set_prior("x0", &[0.7, 0.3]).unwrap();
    for i in 1..n {
        bn.set_cpt(
            &format!("x{i}"),
            &[&format!("x{}", i - 1)],
            &[0.9, 0.1, 0.2, 0.8],
        )
        .unwrap();
    }
    bn.validate().unwrap()
}

fn bench_chain_inference(c: &mut Criterion) {
    let mut group = c.benchmark_group("sinadra/chain_inference");
    for n in [4usize, 8, 16, 32] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            let bn = chain_network(n);
            let last = bn.variable_id(&format!("x{}", n - 1)).unwrap();
            let ev = Evidence::new().likelihood(0, vec![0.2, 0.8]);
            b.iter(|| black_box(query(&bn, last, &ev).unwrap()));
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(20)
        .warm_up_time(std::time::Duration::from_millis(400))
        .measurement_time(std::time::Duration::from_secs(2));
    targets = bench_risk_model, bench_chain_inference
}
criterion_main!(benches);
