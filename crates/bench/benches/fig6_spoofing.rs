//! Fig. 6 bench: the spoofing-detection path — IDS inspection throughput
//! on clean vs forged traffic, and the innovation-gate spoof detector.

use criterion::{criterion_group, criterion_main, Criterion};
use sesame_middleware::auth::{AuthKey, MessageAuth};
use sesame_middleware::message::{Message, Payload};
use sesame_security::ids::{Ids, IdsConfig};
use sesame_security::spoof::SpoofDetector;
use sesame_types::geo::{GeoPoint, Vec3};
use sesame_types::ids::UavId;
use sesame_types::time::SimTime;
use std::hint::black_box;

fn signed_waypoint(auth: &MessageAuth, seq: u64) -> Message {
    let mut m = Message::new(
        "/uav1/cmd/waypoint",
        "node:gcs",
        seq,
        SimTime::from_millis(seq * 100),
        Payload::WaypointCommand {
            uav: UavId::new(1),
            waypoint: GeoPoint::new(35.0, 33.0, 30.0),
        },
    );
    auth.sign(&mut m);
    m
}

fn bench_ids(c: &mut Criterion) {
    let auth = MessageAuth::new(AuthKey::new(5));
    c.bench_function("fig6/ids_inspect_clean", |b| {
        let mut ids = Ids::new(IdsConfig::default(), Some(auth));
        ids.register_plan(UavId::new(1), vec![GeoPoint::new(35.0, 33.0, 30.0)]);
        let mut seq = 0u64;
        b.iter(|| {
            seq += 1;
            let m = signed_waypoint(&auth, seq);
            black_box(ids.inspect(&m, SimTime::from_millis(seq * 100)))
        });
    });
    c.bench_function("fig6/ids_inspect_forged", |b| {
        let mut ids = Ids::new(IdsConfig::default(), Some(auth));
        ids.register_plan(UavId::new(1), vec![GeoPoint::new(35.0, 33.0, 30.0)]);
        let mut seq = 0u64;
        b.iter(|| {
            seq += 1;
            // Unsigned, off-plan: trips two rules per message.
            let m = Message::new(
                "/uav1/cmd/waypoint",
                "node:gcs",
                seq,
                SimTime::from_millis(seq * 100),
                Payload::WaypointCommand {
                    uav: UavId::new(1),
                    waypoint: GeoPoint::new(35.02, 33.0, 30.0),
                },
            );
            black_box(ids.inspect(&m, SimTime::from_millis(seq * 100)))
        });
    });
}

fn bench_spoof_detector(c: &mut Criterion) {
    c.bench_function("fig6/spoof_detector_check", |b| {
        let start = GeoPoint::new(35.0, 33.0, 40.0);
        let mut det = SpoofDetector::new(start, 20.0);
        let mut t = 0u64;
        b.iter(|| {
            t += 1;
            let fix = start.destination(90.0, 5.0 * t as f64);
            black_box(det.check(&fix, Vec3::new(5.0, 0.0, 0.0), SimTime::from_secs(t)))
        });
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(20)
        .warm_up_time(std::time::Duration::from_millis(400))
        .measurement_time(std::time::Duration::from_secs(2));
    targets = bench_ids, bench_spoof_detector
}
criterion_main!(benches);
