//! Ablation: collaborative-localization fusion accuracy and cost vs the
//! number of observers — the design question behind the paper's choice of
//! two assisting UAVs.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sesame_collab_loc::fusion::fuse_estimates;
use sesame_collab_loc::geometry::{estimate_from_observation, PositionEstimate};
use sesame_types::geo::GeoPoint;
use sesame_vision::drone_detect::DroneObservation;
use std::hint::black_box;

fn estimates(n: usize) -> Vec<PositionEstimate> {
    let anchor = GeoPoint::new(35.0, 33.0, 0.0);
    (0..n)
        .map(|i| {
            let observer = anchor
                .destination(i as f64 * 360.0 / n as f64, 25.0)
                .with_alt(35.0);
            estimate_from_observation(
                &observer,
                &DroneObservation {
                    bearing_deg: (180.0 + i as f64 * 360.0 / n as f64) % 360.0,
                    elevation_deg: -10.0,
                    range_m: 27.0,
                    range_sigma_m: 2.0,
                    angle_sigma_deg: 1.5,
                },
            )
        })
        .collect()
}

fn bench_fusion(c: &mut Criterion) {
    let mut group = c.benchmark_group("collab/fusion_observers");
    for n in [1usize, 2, 3, 5, 8] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            let ests = estimates(n);
            b.iter(|| black_box(fuse_estimates(&ests)));
        });
    }
    group.finish();
}

fn bench_geometry(c: &mut Criterion) {
    c.bench_function("collab/sighting_to_estimate", |b| {
        let observer = GeoPoint::new(35.0, 33.0, 35.0);
        let obs = DroneObservation {
            bearing_deg: 123.0,
            elevation_deg: -7.0,
            range_m: 42.0,
            range_sigma_m: 2.5,
            angle_sigma_deg: 1.5,
        };
        b.iter(|| black_box(estimate_from_observation(&observer, &obs)));
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(20)
        .warm_up_time(std::time::Duration::from_millis(400))
        .measurement_time(std::time::Duration::from_secs(2));
    targets = bench_fusion, bench_geometry
}
criterion_main!(benches);
