//! Fig. 7 bench: one collaborative-localization round (two observers →
//! sighting geometry → fusion → Kalman smoothing) and the guidance law.

use criterion::{criterion_group, criterion_main, Criterion};
use sesame_collab_loc::agent::CollaborativeAgent;
use sesame_collab_loc::session::{CollabSession, LandingGuidance};
use sesame_types::geo::GeoPoint;
use sesame_types::time::SimTime;
use std::hint::black_box;

fn bench_cl_round(c: &mut Criterion) {
    c.bench_function("fig7/cl_session_round", |b| {
        let anchor = GeoPoint::new(35.0, 33.0, 0.0);
        let mut session = CollabSession::new(
            vec![
                CollaborativeAgent::new("a", 1),
                CollaborativeAgent::new("b", 2),
            ],
            anchor,
        );
        let observers = [
            anchor.destination(0.0, 25.0).with_alt(35.0),
            anchor.destination(90.0, 25.0).with_alt(35.0),
        ];
        let target = anchor.destination(45.0, 35.0).with_alt(30.0);
        let mut t = 0u64;
        b.iter(|| {
            t += 1;
            black_box(session.step(SimTime::from_millis(t * 100), &observers, &target))
        });
    });
}

fn bench_guidance(c: &mut Criterion) {
    c.bench_function("fig7/landing_guidance_command", |b| {
        let pad = GeoPoint::new(35.0, 33.0, 0.0);
        let guidance = LandingGuidance::new(pad);
        let mut step = 0u64;
        b.iter(|| {
            step += 1;
            let est = pad.destination((step % 360) as f64, 30.0).with_alt(20.0);
            black_box(guidance.velocity_command(&est))
        });
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(20)
        .warm_up_time(std::time::Duration::from_millis(400))
        .measurement_time(std::time::Duration::from_secs(2));
    targets = bench_cl_round, bench_guidance
}
criterion_main!(benches);
