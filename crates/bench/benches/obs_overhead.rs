//! Observability overhead: the platform tick is permanently
//! instrumented (TickSpan + counters + trace absorption), so this bench
//! answers "what does that instrumentation cost?" two ways: the obs
//! primitives in isolation, and the per-tick obs workload next to the
//! full platform tick it rides inside. The acceptance bar is that the
//! obs workload stays within 10% of the tick cost — in practice it is
//! orders of magnitude below it.

use criterion::{criterion_group, criterion_main, Criterion};
use sesame_core::orchestrator::{Platform, PlatformConfig};
use sesame_obs::span::phase;
use sesame_obs::{MetricsRegistry, TickSpan, TraceEvent, TraceLog};
use std::hint::black_box;

fn warmed_platform() -> Platform {
    let mut p = Platform::new(PlatformConfig {
        area_width_m: 300.0,
        area_height_m: 200.0,
        person_count: 4,
        seed: 7,
        ..PlatformConfig::default()
    });
    p.launch();
    for _ in 0..200 {
        p.step();
    }
    p
}

fn bench_primitives(c: &mut Criterion) {
    let mut group = c.benchmark_group("obs/primitives");

    group.bench_function("counter_inc", |b| {
        let mut m = MetricsRegistry::new();
        b.iter(|| {
            m.inc(black_box("platform.ticks"));
            black_box(m.counter("platform.ticks"))
        });
    });

    group.bench_function("histogram_observe", |b| {
        let mut m = MetricsRegistry::new();
        let mut v = 0.0f64;
        b.iter(|| {
            v = (v + 7.3) % 1500.0;
            m.observe(black_box("tick.total"), black_box(v));
        });
    });

    group.bench_function("trace_push_bounded", |b| {
        let mut log = TraceLog::with_capacity(256);
        b.iter(|| {
            log.push(
                black_box(100),
                TraceEvent::IdsAlert {
                    detector: "seq".into(),
                    detail: "stale sequence".into(),
                },
            );
        });
    });

    group.finish();
}

/// The full per-tick obs workload as `Platform::step` performs it: a
/// 10-phase span, the counter/gauge updates, and a trace absorption.
fn obs_tick_workload(m: &mut MetricsRegistry, main: &mut TraceLog, sub: &mut TraceLog) {
    let mut span = TickSpan::start();
    for name in phase::ALL {
        span.enter(name);
    }
    m.inc("platform.ticks");
    m.inc("eddi.evals.uav0");
    m.inc("eddi.evals.uav1");
    m.inc("eddi.evals.uav2");
    m.set_counter("bus.published", 12_345);
    m.set_counter("bus.delivered", 12_000);
    m.set_counter("bus.dropped", 42);
    m.set_gauge("fleet.airborne", 3.0);
    m.set_gauge("mission.completion", 0.5);
    main.absorb(sub);
    span.finish(m);
}

fn bench_tick_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("obs/tick_overhead");
    group.sample_size(20);

    group.bench_function("platform_tick_instrumented", |b| {
        let mut p = warmed_platform();
        b.iter(|| black_box(p.step()));
    });

    group.bench_function("obs_workload_alone", |b| {
        let mut m = MetricsRegistry::new();
        let mut main = TraceLog::default();
        let mut sub = TraceLog::default();
        b.iter(|| obs_tick_workload(&mut m, &mut main, &mut sub));
    });

    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(20)
        .warm_up_time(std::time::Duration::from_millis(400))
        .measurement_time(std::time::Duration::from_secs(2));
    targets = bench_primitives, bench_tick_overhead
}
criterion_main!(benches);
