//! Zero-copy fanout vs the cache-free reference bus, under criterion.
//!
//! The same 64-subscriber wildcard-heavy workload as `--bin busbench`,
//! measured per publish/step/drain round. The optimized bus must clear
//! 3× the reference throughput — `busbench` enforces that gate in CI;
//! this bench gives the statistically careful per-round numbers.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sesame_middleware::bus::MessageBus;
use sesame_middleware::message::Payload;
use sesame_middleware::reference::ReferenceBus;
use sesame_types::time::{SimDuration, SimTime};
use std::hint::black_box;

const UAVS: usize = 8;

fn topics() -> Vec<String> {
    let mut t = Vec::new();
    for i in 0..UAVS {
        t.push(format!("/uav{i}/telemetry/pos"));
        t.push(format!("/uav{i}/telemetry/battery"));
        t.push(format!("/uav{i}/cmd/waypoint"));
        t.push(format!("/uav{i}/status"));
    }
    t
}

fn patterns() -> Vec<String> {
    let mut p = Vec::new();
    for i in 0..UAVS {
        p.push(format!("/uav{i}/#"));
        p.push(format!("/uav{i}/telemetry/#"));
        p.push(format!("/uav{i}/telemetry/+"));
        p.push(format!("/uav{i}/+/waypoint"));
        p.push(format!("/uav{i}/cmd/#"));
        p.push(format!("/uav{i}/status"));
        p.push(format!("/uav{i}/+/pos"));
    }
    for _ in 0..4 {
        p.push("#".to_string());
    }
    p.push("+/telemetry/#".to_string());
    p.push("+/telemetry/pos".to_string());
    p.push("+/status".to_string());
    p.push("+/cmd/+".to_string());
    p
}

fn bench_fanout(c: &mut Criterion) {
    let mut group = c.benchmark_group("bus/fanout_64sub_wildcard");
    let topics = topics();

    group.bench_with_input(BenchmarkId::from_parameter("optimized"), &(), |b, ()| {
        let mut bus = MessageBus::seeded(42);
        let subs: Vec<_> = patterns().into_iter().map(|p| bus.subscribe(p)).collect();
        let mut round = 0u64;
        b.iter(|| {
            round += 1;
            let now = SimTime::from_millis(round * 100);
            for t in &topics {
                bus.publish(now, "bench", t.as_str(), Payload::Text("payload".into()));
            }
            bus.step(now + SimDuration::from_millis(100));
            let mut drained = 0usize;
            for &s in &subs {
                drained += bus.drain(s).expect("live subscription").len();
            }
            black_box(drained)
        });
    });

    group.bench_with_input(BenchmarkId::from_parameter("reference"), &(), |b, ()| {
        let mut bus = ReferenceBus::seeded(42);
        let subs: Vec<_> = patterns().into_iter().map(|p| bus.subscribe(p)).collect();
        let mut round = 0u64;
        b.iter(|| {
            round += 1;
            let now = SimTime::from_millis(round * 100);
            for t in &topics {
                bus.publish(now, "bench", t.as_str(), Payload::Text("payload".into()));
            }
            bus.step(now + SimDuration::from_millis(100));
            let mut drained = 0usize;
            for &s in &subs {
                drained += bus.drain(s).len();
            }
            black_box(drained)
        });
    });

    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(20)
        .warm_up_time(std::time::Duration::from_millis(400))
        .measurement_time(std::time::Duration::from_secs(2));
    targets = bench_fanout
}
criterion_main!(benches);
