//! Shared CLI conventions and the JSON report schema for the bench
//! binaries (`busbench`, `eddibench`, `chaos`, `experiments`,
//! `fleetbench`).
//!
//! Every binary understands the same flags:
//!
//! * `--jobs N` / `-j N` / `SESAME_JOBS=N` — worker count for parallel
//!   sweeps (default: the machine's available parallelism);
//! * `--seeds N` — how many seeds a seed-sweeping bench runs;
//! * `--json PATH` — additionally write the JSON report to `PATH`
//!   (stdout always gets it, so `bench > FILE` keeps working);
//! * `--scenario PATH` — run over a `.sesame` scenario file compiled by
//!   `sesame-scenario-dsl` instead of the built-in hand-written base;
//! * `smoke` — the short CI-sized workload.
//!
//! JSON reports share one schema: a flat object whose first key is
//! always `"schema_version"` followed by `"workload"`, then
//! bench-specific fields in a stable order. `scripts/bench_gate.sh`
//! extracts the *first* occurrence of each gated key, so summary
//! numbers must precede any nested per-configuration objects —
//! [`JsonReport`] preserves insertion order to make that easy to audit.

use crate::parallel;
use std::fmt::Write as _;

/// Version of the bench JSON schema. Bump when a report's keys change
/// meaning, so downstream tooling can tell old artifacts from new.
pub const SCHEMA_VERSION: u64 = 1;

/// The flags shared by every bench binary, parsed off `argv` with the
/// bench-specific positionals left in [`BenchArgs::rest`].
#[derive(Debug, Clone, PartialEq)]
pub struct BenchArgs {
    /// `smoke` — run the short CI-sized workload.
    pub smoke: bool,
    /// Raw `--jobs N` value; resolve with [`BenchArgs::effective_jobs`].
    pub jobs: Option<usize>,
    /// `--seeds N` — seed count for sweeping benches.
    pub seeds: Option<u64>,
    /// `--json PATH` — duplicate the JSON report into `PATH`.
    pub json_path: Option<String>,
    /// `--scenario PATH` — a `.sesame` scenario file to run over.
    pub scenario: Option<String>,
    /// Everything not consumed above, in original order.
    pub rest: Vec<String>,
}

impl BenchArgs {
    /// Parses the process arguments.
    pub fn parse() -> Self {
        Self::from_vec(std::env::args().skip(1).collect())
    }

    /// Parses an explicit argument vector (for tests).
    pub fn from_vec(mut args: Vec<String>) -> Self {
        let jobs = parallel::take_jobs_arg(&mut args);
        let seeds = take_value(&mut args, "--seeds");
        let json_path = take_value(&mut args, "--json");
        let scenario = take_value(&mut args, "--scenario");
        let smoke = take_flag(&mut args, "smoke");
        BenchArgs {
            smoke,
            jobs,
            seeds,
            json_path,
            scenario,
            rest: args,
        }
    }

    /// Compiles the `--scenario` file, if one was given. Exits the
    /// process with status 2 on a compile error, after printing the
    /// rendered diagnostic — the bench binaries share this behaviour so
    /// a typo in a `.sesame` file reads the same everywhere.
    pub fn compiled_scenario(&self) -> Option<sesame_scenario_dsl::CompiledScenario> {
        let path = self.scenario.as_deref()?;
        match sesame_scenario_dsl::compile_file(path) {
            Ok(compiled) => Some(compiled),
            Err(e) => {
                eprintln!("{}", e.render());
                std::process::exit(2);
            }
        }
    }

    /// Worker count: `--jobs`, else `SESAME_JOBS`, else the machine's
    /// available parallelism. Always at least 1.
    pub fn effective_jobs(&self) -> usize {
        parallel::effective_jobs(self.jobs)
    }
}

/// Strips `--flag V` / `--flag=V` from `args` and parses the value.
fn take_value<T: std::str::FromStr>(args: &mut Vec<String>, flag: &str) -> Option<T> {
    let mut value = None;
    let mut i = 0;
    while i < args.len() {
        if args[i] == flag {
            if let Some(v) = args.get(i + 1).and_then(|v| v.parse().ok()) {
                value = Some(v);
                args.drain(i..=i + 1);
                continue;
            }
            args.remove(i);
            continue;
        }
        if let Some(v) = args[i]
            .strip_prefix(&format!("{flag}="))
            .and_then(|v| v.parse().ok())
        {
            value = Some(v);
            args.remove(i);
            continue;
        }
        i += 1;
    }
    value
}

/// Strips a bare `name` flag from `args`, reporting whether it was there.
fn take_flag(args: &mut Vec<String>, name: &str) -> bool {
    let before = args.len();
    args.retain(|a| a != name);
    args.len() != before
}

/// An insertion-ordered JSON object builder for bench reports. The first
/// two keys are always `schema_version` and `workload`; callers append
/// summary numbers before nested per-configuration objects so
/// first-occurrence key extraction (`scripts/bench_gate.sh`) reads the
/// headline values.
#[derive(Debug, Clone)]
pub struct JsonReport {
    fields: Vec<(String, String)>,
}

impl JsonReport {
    /// Starts a report for `workload` with the schema header.
    pub fn new(workload: &str) -> Self {
        let mut r = JsonReport { fields: Vec::new() };
        r.fields
            .push(("schema_version".into(), SCHEMA_VERSION.to_string()));
        r.fields
            .push(("workload".into(), format!("\"{workload}\"")));
        r
    }

    /// Appends an integer field.
    pub fn int(mut self, key: &str, value: u64) -> Self {
        self.fields.push((key.into(), value.to_string()));
        self
    }

    /// Appends a float field rendered with `decimals` fraction digits.
    pub fn num(mut self, key: &str, value: f64, decimals: usize) -> Self {
        self.fields
            .push((key.into(), format!("{value:.decimals$}")));
        self
    }

    /// Appends a string field.
    pub fn str(mut self, key: &str, value: &str) -> Self {
        self.fields.push((key.into(), format!("\"{value}\"")));
        self
    }

    /// Appends pre-rendered JSON (a nested object or array) verbatim.
    pub fn raw(mut self, key: &str, value: &str) -> Self {
        self.fields.push((key.into(), value.into()));
        self
    }

    /// Renders the object: one field per line, two-space indent,
    /// insertion order.
    pub fn render(&self) -> String {
        let mut out = String::from("{\n");
        for (i, (k, v)) in self.fields.iter().enumerate() {
            let comma = if i + 1 == self.fields.len() { "" } else { "," };
            let _ = writeln!(out, "  \"{k}\": {v}{comma}");
        }
        out.push('}');
        out
    }

    /// Prints the report to stdout and, when `--json PATH` was given,
    /// also writes it to `PATH`.
    pub fn emit(&self, json_path: Option<&str>) {
        let rendered = self.render();
        println!("{rendered}");
        if let Some(path) = json_path {
            if let Err(e) = std::fs::write(path, format!("{rendered}\n")) {
                eprintln!("bench: could not write {path}: {e}");
                std::process::exit(1);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vec_of(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn shared_flags_are_stripped_in_any_order() {
        let a = BenchArgs::from_vec(vec_of(&[
            "smoke", "--seeds", "12", "50", "--jobs=4", "--json", "out.json",
        ]));
        assert!(a.smoke);
        assert_eq!(a.jobs, Some(4));
        assert_eq!(a.seeds, Some(12));
        assert_eq!(a.json_path.as_deref(), Some("out.json"));
        assert_eq!(a.rest, vec!["50".to_string()]);
    }

    #[test]
    fn absent_flags_default_sanely() {
        let a = BenchArgs::from_vec(vec_of(&["replay"]));
        assert!(!a.smoke);
        assert_eq!(a.jobs, None);
        assert_eq!(a.seeds, None);
        assert_eq!(a.json_path, None);
        assert_eq!(a.rest, vec!["replay".to_string()]);
        assert!(a.effective_jobs() >= 1);
    }

    #[test]
    fn equals_form_parses() {
        let a = BenchArgs::from_vec(vec_of(&["--seeds=7", "--json=x.json"]));
        assert_eq!(a.seeds, Some(7));
        assert_eq!(a.json_path.as_deref(), Some("x.json"));
    }

    #[test]
    fn report_schema_header_comes_first() {
        let r = JsonReport::new("demo")
            .num("speedup", 2.5, 2)
            .int("rounds", 10)
            .raw("nested", "{\"x\": 1}");
        let s = r.render();
        let schema_at = s.find("schema_version").unwrap();
        let workload_at = s.find("workload").unwrap();
        let speedup_at = s.find("speedup").unwrap();
        assert!(schema_at < workload_at && workload_at < speedup_at);
        assert!(s.starts_with("{\n"));
        assert!(s.ends_with('}'));
        assert!(s.contains("\"speedup\": 2.50,"));
        assert!(s.contains("\"nested\": {\"x\": 1}\n}"));
    }
}
