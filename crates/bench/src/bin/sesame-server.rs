//! The campaign-service CLI: serve, submit, watch, and audit campaigns
//! over the `sesame-server` line protocol.
//!
//! ```text
//! sesame-server serve  [--log PATH] [--addr HOST:PORT] [--jobs N]
//! sesame-server submit <file.sesame> [--addr A] [--seed-start S] [--seeds N] [--clamp-ms M]
//! sesame-server status <job>        [--addr A]
//! sesame-server wait   <job>        [--addr A]
//! sesame-server jobs                [--addr A]
//! sesame-server stream <job|all>    [--addr A]
//! sesame-server replay <job> <seed> [--addr A | --log PATH]
//! sesame-server chain               [--addr A]
//! sesame-server shutdown            [--addr A]
//! ```
//!
//! Shared flags come from `sesame_bench::cli::BenchArgs` (`--jobs`,
//! `--seeds`, `--json`); the server-specific ones are parsed off the
//! remainder here. `--addr` defaults to `127.0.0.1:7788`, `--log` to
//! `sesame-server.runlog` in the working directory. `replay --log`
//! audits a log offline — no server needed, which is how an operator
//! proves after the fact what a dead deployment computed.

use sesame_bench::cli::{BenchArgs, JsonReport};
use sesame_server::{replay_offline, Client, JobId, JobSpec, Server, ServerConfig, ServerRuntime};
use std::time::Duration;

const DEFAULT_ADDR: &str = "127.0.0.1:7788";

fn take_str(rest: &mut Vec<String>, flag: &str) -> Option<String> {
    let mut value = None;
    let mut i = 0;
    while i < rest.len() {
        if rest[i] == flag {
            if i + 1 < rest.len() {
                value = Some(rest.remove(i + 1));
            }
            rest.remove(i);
            continue;
        }
        if let Some(v) = rest[i].strip_prefix(&format!("{flag}=")) {
            value = Some(v.to_string());
            rest.remove(i);
            continue;
        }
        i += 1;
    }
    value
}

fn parse_job(token: &str) -> Option<JobId> {
    token
        .strip_prefix("job-")
        .unwrap_or(token)
        .parse()
        .ok()
        .map(JobId)
}

fn fail(msg: &str) -> ! {
    eprintln!("sesame-server: {msg}");
    std::process::exit(1);
}

fn connect(addr: &str) -> Client {
    Client::connect(addr).unwrap_or_else(|e| fail(&format!("connect {addr}: {e}")))
}

fn usage() -> ! {
    eprintln!(
        "usage: sesame-server <serve|submit|status|wait|jobs|stream|replay|chain|shutdown> ..."
    );
    eprintln!("  serve  [--log PATH] [--addr HOST:PORT] [--jobs N]");
    eprintln!("  submit <file.sesame> [--addr A] [--seed-start S] [--seeds N] [--clamp-ms M]");
    eprintln!("  status <job> [--addr A]        wait <job> [--addr A]");
    eprintln!("  jobs [--addr A]                stream <job|all> [--addr A]");
    eprintln!("  replay <job> <seed> [--addr A | --log PATH]");
    eprintln!("  chain [--addr A]               shutdown [--addr A]");
    std::process::exit(2);
}

fn main() {
    let args = BenchArgs::parse();
    let mut rest = args.rest.clone();
    let addr = take_str(&mut rest, "--addr").unwrap_or_else(|| DEFAULT_ADDR.to_string());
    let log = take_str(&mut rest, "--log");
    let seed_start: u64 = take_str(&mut rest, "--seed-start")
        .and_then(|v| v.parse().ok())
        .unwrap_or(0);
    let clamp_ms: u64 = take_str(&mut rest, "--clamp-ms")
        .and_then(|v| v.parse().ok())
        .unwrap_or(0);
    let mut positionals = rest.into_iter();
    let Some(command) = positionals.next() else {
        usage()
    };

    match command.as_str() {
        "serve" => {
            let log = log.unwrap_or_else(|| "sesame-server.runlog".to_string());
            let config = ServerConfig {
                workers: args.effective_jobs(),
                ..ServerConfig::default()
            };
            let runtime = ServerRuntime::start(&log, config)
                .unwrap_or_else(|e| fail(&format!("start on {log}: {e}")));
            let mut server = Server::bind(runtime.clone(), &addr)
                .unwrap_or_else(|e| fail(&format!("bind {addr}: {e}")));
            println!("sesame-server: serving on {} (log {log})", server.addr());
            for status in runtime.jobs() {
                println!("recovered {}", status.render_line());
            }
            while !server.is_stopped() {
                std::thread::sleep(Duration::from_millis(200));
            }
            server.stop();
            println!("sesame-server: stopped");
        }
        "submit" => {
            let Some(path) = positionals.next() else {
                usage()
            };
            let source = std::fs::read_to_string(&path)
                .unwrap_or_else(|e| fail(&format!("read {path}: {e}")));
            let name = std::path::Path::new(&path)
                .file_stem()
                .and_then(|s| s.to_str())
                .unwrap_or("campaign")
                .to_string();
            let spec =
                JobSpec::new(name, source, seed_start, args.seeds.unwrap_or(1)).clamp_ms(clamp_ms);
            let mut client = connect(&addr);
            match client.submit(&spec) {
                Ok(id) => println!("{id} submitted ({} seeds)", spec.seed_count),
                Err(e) => fail(&e),
            }
        }
        "status" | "wait" => {
            let Some(job) = positionals.next().as_deref().and_then(parse_job) else {
                usage()
            };
            let mut client = connect(&addr);
            let result = if command == "wait" {
                client.wait(job)
            } else {
                client.status(job)
            };
            match result {
                Ok(status) => {
                    println!("{}", status.line);
                    if status.state == "failed" {
                        std::process::exit(1);
                    }
                }
                Err(e) => fail(&e),
            }
        }
        "jobs" => {
            let mut client = connect(&addr);
            match client.jobs() {
                Ok(lines) => {
                    for line in lines {
                        println!("{line}");
                    }
                }
                Err(e) => fail(&e),
            }
        }
        "stream" => {
            let target = match positionals.next().as_deref() {
                Some("all") | None => None,
                Some(token) => match parse_job(token) {
                    Some(id) => Some(id),
                    None => usage(),
                },
            };
            let mut client = connect(&addr);
            match client.stream(target, |line| println!("{line}")) {
                Ok(events) => eprintln!("stream closed after {events} events"),
                Err(e) => fail(&e),
            }
        }
        "replay" => {
            let job = positionals.next().as_deref().and_then(parse_job);
            let seed = positionals.next().and_then(|t| t.parse::<u64>().ok());
            let (Some(job), Some(seed)) = (job, seed) else {
                usage()
            };
            let report = if let Some(log) = log {
                // Offline audit straight from the log file.
                match replay_offline(&log, job, seed) {
                    Ok(r) => r,
                    Err(e) => fail(&format!("offline replay: {e}")),
                }
            } else {
                let mut client = connect(&addr);
                match client.replay(job, seed) {
                    Ok(matches) => {
                        println!(
                            "{job} seed {seed}: {}",
                            if matches { "match" } else { "MISMATCH" }
                        );
                        std::process::exit(i32::from(!matches));
                    }
                    Err(e) => fail(&e),
                }
            };
            let verdict = if report.matches() {
                "match"
            } else {
                "MISMATCH"
            };
            JsonReport::new("replay")
                .str("job", &job.to_string())
                .int("seed", seed)
                .int("ticks", report.ticks)
                .str("digest", &format!("{:#018x}", report.digest))
                .str("logged_digest", &format!("{:#018x}", report.logged.digest))
                .str("verdict", verdict)
                .emit(args.json_path.as_deref());
            std::process::exit(i32::from(!report.matches()));
        }
        "chain" => {
            let mut client = connect(&addr);
            match client.chain() {
                Ok(chain) => println!("chain={chain:#018x}"),
                Err(e) => fail(&e),
            }
        }
        "shutdown" => {
            let mut client = connect(&addr);
            match client.shutdown() {
                Ok(()) => println!("server shutting down"),
                Err(e) => fail(&e),
            }
        }
        _ => usage(),
    }
}
