//! The scenario-library tool: compile, run and smoke-test `.sesame`
//! files.
//!
//! ```text
//! cargo run -p sesame-bench --release --bin scenario -- check scenarios/*.sesame
//! cargo run -p sesame-bench --release --bin scenario -- run scenarios/maritime_sar.sesame
//! cargo run -p sesame-bench --release --bin scenario -- run FILE --seeds 5 --jobs 4
//! cargo run -p sesame-bench --release --bin scenario -- smoke scenarios/*.sesame
//! ```
//!
//! * `check` — compile every file and print one summary line per
//!   scenario (the `describe()` header); exit 1 on the first diagnostic.
//!   This is the cheap CI gate: it proves the whole library parses,
//!   evaluates and validates without simulating anything.
//! * `run` — compile one file and run it to its deadline, once per seed
//!   (`--seeds N`, default 1, spread over `--jobs` workers), printing
//!   per-seed completion, event count and the conformance digest.
//! * `smoke` — `run` for a library: every file, one seed, deadline
//!   clamped to 30 simulated seconds, so CI can prove each scenario
//!   *executes* (faults fire, the platform survives) in a few seconds.
//!
//! Diagnostics render in the compiler's caret format and go to stderr;
//! summary lines go to stdout.

use sesame_bench::cli::BenchArgs;
use sesame_bench::parallel;
use sesame_core::checkpoint::digest_platform;
use sesame_scenario_dsl::{CompiledScenario, Compiler};
use sesame_types::time::SimTime;

fn main() {
    let args = BenchArgs::parse();
    let mut rest = args.rest.clone();
    // The shared flag parser consumes a bare `smoke` (the CI-workload
    // convention), so the smoke mode arrives via `args.smoke` rather
    // than as a positional.
    let mode = if args.smoke {
        "smoke".to_string()
    } else if rest.is_empty() {
        eprintln!("usage: scenario <check|run|smoke> <file.sesame>... [--seeds N] [--jobs N]");
        std::process::exit(2);
    } else {
        rest.remove(0)
    };
    if rest.is_empty() {
        eprintln!("scenario {mode}: no .sesame files given");
        std::process::exit(2);
    }
    match mode.as_str() {
        "check" => check(&rest),
        "run" => run(&rest, &args),
        "smoke" => smoke(&rest, &args),
        other => {
            eprintln!("unknown mode `{other}`; use check|run|smoke");
            std::process::exit(2);
        }
    }
}

fn compile_all(paths: &[String]) -> Vec<CompiledScenario> {
    let mut out = Vec::new();
    for path in paths {
        match Compiler::new().compile_file(path) {
            Ok(scenarios) if scenarios.is_empty() => {
                eprintln!("{path}: the file declares no scenario");
                std::process::exit(1);
            }
            Ok(scenarios) => out.extend(scenarios),
            Err(e) => {
                eprintln!("{}", e.render());
                std::process::exit(1);
            }
        }
    }
    out
}

fn check(paths: &[String]) {
    let scenarios = compile_all(paths);
    for s in &scenarios {
        // First line of describe(): name, then the world/fleet summary.
        let description = s.describe();
        let mut lines = description.lines();
        let head = lines.next().unwrap_or_default();
        let world = lines.next().unwrap_or_default();
        let fleet = lines.next().unwrap_or_default();
        println!("{head}: {} | {}", world.trim(), fleet.trim());
    }
    println!("{} scenario(s) compile and validate", scenarios.len());
}

/// Runs one compiled scenario to its deadline and reports the digest.
fn run_one(compiled: &CompiledScenario, seed: u64) -> String {
    let mut scenario = compiled.builder(seed).build();
    scenario.launch();
    let mut now = scenario.platform().now();
    while !scenario.should_stop(now) {
        now = scenario.step_once();
    }
    let platform = scenario.platform();
    format!(
        "seed {seed}: t={} s, {} events, digest {:#018x}",
        now.as_millis() / 1000,
        platform.events().len(),
        digest_platform(platform)
    )
}

fn run(paths: &[String], args: &BenchArgs) {
    if paths.len() != 1 {
        eprintln!(
            "scenario run: exactly one .sesame file, got {}",
            paths.len()
        );
        std::process::exit(2);
    }
    let compiled = compile_all(paths).remove(0);
    let seeds: Vec<u64> = (0..args.seeds.unwrap_or(1)).collect();
    println!("scenario \"{}\" ({} seed(s))", compiled.name(), seeds.len());
    let rows = parallel::run_indexed(args.effective_jobs(), seeds.len(), |i| {
        run_one(&compiled, seeds[i])
    });
    for row in rows {
        println!("  {row}");
    }
}

fn smoke(paths: &[String], args: &BenchArgs) {
    let clamp = SimTime::from_secs(30);
    let scenarios = compile_all(paths);
    let rows = parallel::run_indexed(args.effective_jobs(), scenarios.len(), |i| {
        let short = scenarios[i].with_deadline_clamped(clamp);
        format!("{}: {}", short.name(), run_one(&short, 0))
    });
    for row in rows {
        println!("  {row}");
    }
    println!("{} scenario(s) smoke-ran clean", scenarios.len());
}
