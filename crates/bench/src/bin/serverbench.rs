//! Campaign-service soak bench: N concurrent TCP clients × M campaigns
//! over a live `sesame-server`, with a kill-and-restart in the middle
//! and a full replay audit at the end.
//!
//! ```text
//! cargo run -p sesame-bench --release --bin serverbench           # full soak
//! cargo run -p sesame-bench --release --bin serverbench -- smoke  # CI soak
//! ```
//!
//! The soak runs four phases against one run log:
//!
//! 1. **Load** — 8 client threads each submit campaigns over TCP and
//!    block on `WAIT`; submit→complete latency is recorded per campaign.
//! 2. **Kill** — two larger "victim" campaigns are submitted, and once
//!    at least one of their runs is in the log the runtime is shut down
//!    with work still queued — exactly what a process death looks like
//!    to the log.
//! 3. **Restart** — a second runtime opens the same log (verifying the
//!    whole digest chain), recovers the victims' completed runs,
//!    re-enqueues the missing seeds, and serves a second full client
//!    wave concurrently with the victims finishing. A streaming
//!    subscriber tails one campaign to keep the fanout path hot.
//! 4. **Audit** — every completed seed of every campaign is replayed
//!    from the log's own submission record and must be digest-identical
//!    to the live run. Any mismatch, failed job, or unfinished campaign
//!    exits nonzero.
//!
//! The JSON report goes to stdout (`serverbench > BENCH_server.json` in
//! `scripts/check.sh`); `scripts/bench_gate.sh` gates `runs_per_sec`
//! and `campaigns_per_sec` as floors and `latency_p99_ms` as a ceiling.

use sesame_bench::cli::{BenchArgs, JsonReport};
use sesame_server::{Client, JobId, JobSpec, Server, ServerConfig, ServerRuntime, StreamEvent};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// One small campaign's scenario: a fleet of 3 over a compact area,
/// clamped tight so a run is milliseconds and the soak exercises
/// scheduling, not simulation length.
const CAMPAIGN_SRC: &str = r#"
scenario "soak_campaign" {
    world { area = (80.0, 60.0), persons = 2 }
    mission { deadline = 120s }
}
"#;

const CLIENTS: usize = 8;
const CLAMP_MS: u64 = 10_000;

struct SoakConfig {
    campaigns_per_client: usize,
    seeds_per_campaign: u64,
}

fn percentile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

/// One client wave: `CLIENTS` threads, each its own TCP connection,
/// each submitting `campaigns_per_client` campaigns sequentially and
/// blocking on completion. Returns per-campaign latencies (ms) and the
/// campaign count; increments `aborts` on anything unexpected.
fn client_wave(
    addr: std::net::SocketAddr,
    soak: &SoakConfig,
    seed_base: u64,
    aborts: &Arc<AtomicU64>,
) -> Vec<f64> {
    let mut threads = Vec::new();
    for client_idx in 0..CLIENTS {
        let aborts = Arc::clone(aborts);
        let campaigns = soak.campaigns_per_client;
        let seeds = soak.seeds_per_campaign;
        threads.push(std::thread::spawn(move || {
            let mut latencies = Vec::new();
            let mut client = match Client::connect(addr) {
                Ok(c) => c,
                Err(e) => {
                    eprintln!("serverbench: client {client_idx} connect: {e}");
                    aborts.fetch_add(1, Ordering::Relaxed);
                    return latencies;
                }
            };
            for campaign_idx in 0..campaigns {
                let seed_start = seed_base + (client_idx * campaigns + campaign_idx) as u64 * seeds;
                let spec = JobSpec::new("soak_campaign", CAMPAIGN_SRC, seed_start, seeds)
                    .clamp_ms(CLAMP_MS);
                let started = Instant::now();
                let outcome = client.submit(&spec).and_then(|id| client.wait(id));
                match outcome {
                    Ok(status) if status.is_completed() => {
                        latencies.push(started.elapsed().as_secs_f64() * 1e3);
                    }
                    Ok(status) => {
                        eprintln!("serverbench: campaign did not complete: {}", status.line);
                        aborts.fetch_add(1, Ordering::Relaxed);
                    }
                    Err(e) => {
                        eprintln!("serverbench: client {client_idx} campaign failed: {e}");
                        aborts.fetch_add(1, Ordering::Relaxed);
                    }
                }
            }
            latencies
        }));
    }
    threads
        .into_iter()
        .flat_map(|t| t.join().unwrap_or_default())
        .collect()
}

fn main() {
    let args = BenchArgs::parse();
    let soak = if args.smoke {
        SoakConfig {
            campaigns_per_client: 2,
            seeds_per_campaign: 2,
        }
    } else {
        SoakConfig {
            campaigns_per_client: 4,
            seeds_per_campaign: args.seeds.unwrap_or(3),
        }
    };
    let workers = args.effective_jobs();
    let mut log_path = std::env::temp_dir();
    log_path.push(format!("serverbench-{}.runlog", std::process::id()));
    std::fs::remove_file(&log_path).ok();
    let aborts = Arc::new(AtomicU64::new(0));
    let wall = Instant::now();

    eprintln!(
        "serverbench: {CLIENTS} clients x {} campaigns x {} seeds, {workers} workers, log {}",
        soak.campaigns_per_client,
        soak.seeds_per_campaign,
        log_path.display()
    );

    // Phase 1: first client wave against a fresh service.
    let config = ServerConfig {
        workers,
        snapshot_every_ticks: 10,
    };
    let rt = ServerRuntime::start(&log_path, config.clone()).expect("start runtime");
    let mut server = Server::bind(rt.clone(), "127.0.0.1:0").expect("bind");
    let mut latencies = client_wave(server.addr(), &soak, 0, &aborts);
    eprintln!(
        "serverbench: wave 1 complete ({} campaigns)",
        latencies.len()
    );

    // Phase 2: victims — larger campaigns killed mid-flight. Sized so
    // more units exist than worker slots, which guarantees queued work
    // is abandoned by the kill. Submit, wait for at least one victim
    // run to be durably logged, then kill.
    let victim_seeds = (2 * workers as u64).max(6);
    let victims: Vec<JobId> = (0..2)
        .map(|v| {
            rt.submit(
                JobSpec::new(
                    "soak_campaign",
                    CAMPAIGN_SRC,
                    1_000_000 + v * 100,
                    victim_seeds,
                )
                .clamp_ms(CLAMP_MS),
            )
            .expect("submit victim")
        })
        .collect();
    let rx = rt.subscribe(None);
    let deadline = Instant::now() + Duration::from_secs(60);
    let mut victim_runs_before_kill = 0u64;
    while victim_runs_before_kill == 0 && Instant::now() < deadline {
        match rx.recv_timeout(Duration::from_millis(100)) {
            Ok(ev) => {
                if let StreamEvent::RunCompleted { job, .. } = &*ev {
                    if victims.contains(job) {
                        victim_runs_before_kill += 1;
                    }
                }
            }
            Err(std::sync::mpsc::RecvTimeoutError::Timeout) => continue,
            Err(std::sync::mpsc::RecvTimeoutError::Disconnected) => break,
        }
    }
    drop(rx);
    server.stop();
    rt.shutdown();
    let killed_incomplete = victims
        .iter()
        .filter(|id| {
            rt.status(**id)
                .map(|s| s.completed_runs < s.seed_count)
                .unwrap_or(true)
        })
        .count();
    eprintln!(
        "serverbench: killed runtime with {victim_runs_before_kill} victim runs logged, \
         {killed_incomplete}/2 victims incomplete"
    );

    // Phase 3: restart on the same log; second wave runs concurrently
    // with the recovered victims finishing.
    let rt2 = ServerRuntime::start(&log_path, config).expect("restart runtime");
    let mut server2 = Server::bind(rt2.clone(), "127.0.0.1:0").expect("rebind");
    let recovered_runs: u64 = rt2.jobs().iter().map(|s| s.recovered_runs).sum();
    let stream_events = Arc::new(AtomicU64::new(0));
    let streamer = {
        let addr = server2.addr();
        let victim = victims[0];
        let events = Arc::clone(&stream_events);
        std::thread::spawn(move || {
            if let Ok(mut c) = Client::connect(addr) {
                let _ = c.stream(Some(victim), |_| {
                    events.fetch_add(1, Ordering::Relaxed);
                });
            }
        })
    };
    latencies.extend(client_wave(server2.addr(), &soak, 2_000_000, &aborts));
    for id in &victims {
        match rt2.wait(*id) {
            Ok(status) if status.state == sesame_server::JobState::Completed => {}
            Ok(status) => {
                eprintln!(
                    "serverbench: victim did not recover: {}",
                    status.render_line()
                );
                aborts.fetch_add(1, Ordering::Relaxed);
            }
            Err(e) => {
                eprintln!("serverbench: victim wait failed: {e}");
                aborts.fetch_add(1, Ordering::Relaxed);
            }
        }
    }
    let _ = streamer.join();
    let elapsed = wall.elapsed().as_secs_f64();

    // Phase 4: replay audit — every completed seed of every campaign,
    // including runs logged before the kill, must replay bit-identically.
    let mut replay_checked = 0u64;
    let mut replay_mismatches = 0u64;
    let jobs = rt2.jobs();
    for status in &jobs {
        for seed in status.digests.keys() {
            replay_checked += 1;
            match rt2.replay(status.id, *seed) {
                Ok(report) if report.matches() => {}
                Ok(report) => {
                    eprintln!(
                        "serverbench: REPLAY DIVERGED {} seed {seed}: live {:#018x} vs replay {:#018x}",
                        status.id, report.logged.digest, report.digest
                    );
                    replay_mismatches += 1;
                }
                Err(e) => {
                    eprintln!("serverbench: replay {} seed {seed}: {e}", status.id);
                    replay_mismatches += 1;
                }
            }
        }
    }
    let chain = rt2.chain();
    server2.stop();
    rt2.shutdown();

    let campaigns = jobs.len() as u64;
    let completed_campaigns = jobs
        .iter()
        .filter(|s| s.state == sesame_server::JobState::Completed)
        .count() as u64;
    let runs: u64 = jobs.iter().map(|s| s.completed_runs).sum();
    let aborts = aborts.load(Ordering::Relaxed)
        + (campaigns - completed_campaigns)
        + u64::from(victim_runs_before_kill == 0);
    latencies.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let expected_campaigns = (2 * CLIENTS * soak.campaigns_per_client) as u64 + 2;

    let report = JsonReport::new(if args.smoke { "smoke" } else { "full" })
        .int("clients", CLIENTS as u64)
        .int("campaigns", campaigns)
        .int("completed_campaigns", completed_campaigns)
        .int("runs", runs)
        .num("runs_per_sec", runs as f64 / elapsed, 2)
        .num("campaigns_per_sec", campaigns as f64 / elapsed, 3)
        .num("latency_p50_ms", percentile(&latencies, 0.50), 2)
        .num("latency_p99_ms", percentile(&latencies, 0.99), 2)
        .num("elapsed_sec", elapsed, 2)
        .int("workers", workers as u64)
        .int("victim_runs_before_kill", victim_runs_before_kill)
        .int("recovered_runs", recovered_runs)
        .int("replay_checked", replay_checked)
        .int("replay_mismatches", replay_mismatches)
        .int("stream_events", stream_events.load(Ordering::Relaxed))
        .int("aborts", aborts)
        .str("chain", &format!("{chain:#018x}"));
    report.emit(args.json_path.as_deref());

    std::fs::remove_file(&log_path).ok();
    if aborts > 0 || replay_mismatches > 0 || campaigns < expected_campaigns {
        eprintln!(
            "serverbench: FAILED (aborts={aborts} mismatches={replay_mismatches} \
             campaigns={campaigns}/{expected_campaigns})"
        );
        std::process::exit(1);
    }
    eprintln!(
        "serverbench: ok — {campaigns} campaigns, {runs} runs, {replay_checked} replays verified, \
         {recovered_runs} recovered across restart"
    );
}
