//! Whole-platform tick benchmark: end-to-end `Platform::step` throughput
//! of the shipping fast pipeline (incremental EDDI, arena-backed tick
//! scratch, batched CTMC solves) against the naive reference runtimes
//! (`eddi_fast_path: false`), across 3/50/200-UAV fleets.
//!
//! ```text
//! cargo run -p sesame-bench --release --bin tickbench           # full run
//! cargo run -p sesame-bench --release --bin tickbench -- smoke  # CI smoke
//! ```
//!
//! Where `eddibench` isolates the EDDI + ConSert evaluation and
//! `fleetbench` isolates sharding, this bench times the *entire* tick —
//! simulation, telemetry, corruption, EDDI, airspace scan, supervision,
//! ConSerts, bus traffic, observability — so a constant-factor
//! regression anywhere in the pipeline shows up here.
//!
//! The JSON report (schema: `sesame_bench::cli`) goes to stdout
//! (configuration chatter to stderr), so `tickbench > BENCH_tick.json`
//! records the repo's perf trajectory — `scripts/check.sh` does exactly
//! that; `--json PATH` writes a copy. Summary keys are the 3-UAV
//! steady-state numbers (the paper's demonstration fleet, and the
//! workload the ≥3x target is stated against) and come first, which is
//! what `scripts/bench_gate.sh` gates on. Per fleet size the report
//! carries fast and reference ticks per second, the speedup, and the
//! fast path's heap allocations per tick from the counting allocator.
//!
//! Digest before timing: for every size, a fast and a reference platform
//! are stepped from the same seed and must agree bit for bit on the PoF
//! series, the uncertainty series, every certified navigation accuracy,
//! and the event count — the run aborts on divergence, so the speedup is
//! never measured against a platform computing different answers. (The
//! cache counters are the one legitimate difference: the reference path
//! reports zero.)

use sesame_bench::alloc::{allocations, CountingAllocator};
use sesame_bench::cli::{BenchArgs, JsonReport};
use sesame_core::fleet::FleetSpec;
use sesame_core::orchestrator::{Platform, PlatformConfig};
use std::time::Instant;

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator;

/// Fleet sizes for the full curve and the CI smoke subset. The first
/// entry is the headline (gated) workload.
const FULL_SIZES: [usize; 3] = [3, 50, 200];
const SMOKE_SIZES: [usize; 2] = [3, 50];

fn config(uavs: usize, fast_path: bool) -> PlatformConfig {
    PlatformConfig {
        // The fleetbench mid-size area: per-UAV strips shrink as the
        // fleet grows; the per-tick pipeline cost is what's measured.
        area_width_m: 400.0,
        area_height_m: 300.0,
        person_count: 5,
        seed: 42,
        fleet: FleetSpec::uniform(uavs),
        eddi_fast_path: fast_path,
        ..PlatformConfig::default()
    }
}

/// The bit-exact projection both paths must agree on: PoF bits,
/// uncertainty bits, certified nav accuracies, event count. Deliberately
/// excludes the metrics table — cache counters legitimately differ.
type Digest = (Vec<u64>, Vec<u64>, Vec<Option<u64>>, usize);

fn digest(cfg: PlatformConfig, ticks: u64) -> Digest {
    let mut p = Platform::new(cfg);
    p.launch();
    for _ in 0..ticks {
        p.step();
    }
    (
        p.series().pof().iter().map(|(_, v)| v.to_bits()).collect(),
        p.series()
            .uncertainty()
            .iter()
            .map(|(_, v)| v.to_bits())
            .collect(),
        (0..p.uav_count())
            .map(|i| p.certified_nav_accuracy_m(i).map(f64::to_bits))
            .collect(),
        p.events().len(),
    )
}

struct RunResult {
    elapsed_ns: u128,
    ticks: u64,
    allocs: u64,
}

fn run(cfg: PlatformConfig, ticks: u64) -> RunResult {
    let mut p = Platform::new(cfg);
    p.launch();
    // Warmup outside the measurement: climb-out plus first-touch costs
    // (route upload, cache priming, scratch-buffer growth).
    for _ in 0..10 {
        p.step();
    }
    let allocs_before = allocations();
    let start = Instant::now();
    for _ in 0..ticks {
        p.step();
    }
    let elapsed_ns = start.elapsed().as_nanos();
    RunResult {
        elapsed_ns,
        ticks,
        allocs: allocations() - allocs_before,
    }
}

fn ticks_per_sec(r: &RunResult) -> f64 {
    r.ticks as f64 / (r.elapsed_ns as f64 / 1e9)
}

fn main() {
    let args = BenchArgs::parse();
    let sizes: Vec<usize> = if args.smoke {
        SMOKE_SIZES.to_vec()
    } else {
        FULL_SIZES.to_vec()
    };
    let ticks: u64 = if args.smoke { 20 } else { 60 };
    let digest_ticks: u64 = if args.smoke { 20 } else { 30 };
    eprintln!(
        "tickbench: whole-platform ticks, sizes {sizes:?}, {ticks} timed \
         ticks each, fast pipeline vs reference runtimes{}",
        if args.smoke { " (smoke)" } else { "" }
    );

    let mut rows = Vec::new();
    let mut headline = None;
    for &n in &sizes {
        assert_eq!(
            digest(config(n, true), digest_ticks),
            digest(config(n, false), digest_ticks),
            "fast {n}-UAV run diverged from the reference platform — \
             semantics bug, refusing to report"
        );
        // Interleave a warmup of each before timing so neither path pays
        // process-level first-touch costs inside its measurement.
        let _ = run(config(n, false), 2);
        let _ = run(config(n, true), 2);
        let reference = run(config(n, false), ticks);
        let fast = run(config(n, true), ticks);
        let tps = ticks_per_sec(&fast);
        let ref_tps = ticks_per_sec(&reference);
        let speedup = reference.elapsed_ns as f64 / fast.elapsed_ns as f64;
        let allocs_per_tick = fast.allocs as f64 / fast.ticks as f64;
        eprintln!(
            "tickbench: {n:>4} UAVs: {tps:>8.1} ticks/s fast vs \
             {ref_tps:>8.1} reference, speedup {speedup:.2}x, \
             {allocs_per_tick:.0} allocs/tick"
        );
        rows.push(format!(
            "{{\"uavs\": {n}, \"ticks_per_sec\": {tps:.1}, \
             \"uav_ticks_per_sec\": {:.0}, \"reference_ticks_per_sec\": {ref_tps:.1}, \
             \"speedup\": {speedup:.2}, \"allocs_per_tick\": {allocs_per_tick:.0}}}",
            tps * n as f64
        ));
        if headline.is_none() {
            headline = Some((n, tps, speedup, allocs_per_tick));
        }
    }
    let (uavs, tps, speedup, allocs_per_tick) = headline.expect("at least one size");

    // Summary keys (the 3-UAV headline) precede the curve, so
    // first-occurrence key extraction reads the gated values.
    JsonReport::new("platform_tick_fast_vs_reference")
        .int("uavs", uavs as u64)
        .num("speedup", speedup, 2)
        .num("ticks_per_sec", tps, 1)
        .num("allocs_per_tick", allocs_per_tick, 0)
        .int("ticks", ticks)
        .raw("sizes", &format!("[\n    {}\n  ]", rows.join(",\n    ")))
        .emit(args.json_path.as_deref());
    eprintln!("tickbench: {uavs}-UAV steady state at {tps:.1} ticks/s, speedup {speedup:.2}x");
    if speedup < 3.0 {
        eprintln!("tickbench: WARNING — speedup below the 3x target");
        std::process::exit(1);
    }
}
