//! EDDI evaluation microbenchmark: the incremental fast-path runtime
//! against the naive reference runtime, on a steady-state three-UAV scan
//! workload, emitting machine-readable JSON.
//!
//! ```text
//! cargo run -p sesame-bench --release --bin eddibench           # full run
//! cargo run -p sesame-bench --release --bin eddibench -- smoke  # CI smoke
//! ```
//!
//! The JSON report (schema: `sesame_bench::cli`) goes to stdout
//! (configuration chatter to stderr), so `eddibench > BENCH_eddi.json`
//! records the repo's perf trajectory — `scripts/check.sh` does exactly
//! that; `--json PATH` writes a copy. Reported per path: ticks per
//! second, nanoseconds per evaluation, and an allocation-count proxy from
//! a counting global allocator. The fast path additionally reports its
//! evals-skipped ratio (cache hits over hits + misses).
//!
//! Both paths run the identical deterministic workload — same seeds, same
//! telemetry, same scenes — and every per-tick output is compared bit for
//! bit after the timed runs. The run aborts on the first divergence, so
//! the speedup is never measured against a runtime computing different
//! answers.

use sesame_bench::alloc::{allocations, CountingAllocator};
use sesame_bench::cli::{BenchArgs, JsonReport};
use sesame_conserts::catalog::{
    certified_navigation_accuracy_m, evaluate_uav, uav_consert_network, UavAction,
};
use sesame_conserts::IncrementalConsertNetwork;
use sesame_core::{ReferenceEddiRuntime, UavEddiRuntime};
use sesame_safedrones::monitor::SafeDronesConfig;
use sesame_types::geo::GeoPoint;
use sesame_types::ids::UavId;
use sesame_types::telemetry::UavTelemetry;
use sesame_types::time::{SimDuration, SimTime};
use sesame_vision::features::SceneCondition;
use std::time::Instant;

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator;

const UAVS: usize = 3;

fn home() -> GeoPoint {
    GeoPoint::new(35.05, 33.20, 0.0)
}

/// Steady-state scan telemetry: cruising at 30 m, healthy battery, clean
/// GPS. Identical for both paths by construction.
fn telemetry(uav: usize, round: u64) -> UavTelemetry {
    let time = SimTime::from_millis(round * 100);
    let pos = home().destination(90.0, 5.0 * uav as f64).with_alt(30.0);
    let mut tel = UavTelemetry::nominal(UavId::new(uav as u32 + 1), time, pos);
    tel.gps.position = tel.true_position;
    tel
}

fn scene() -> SceneCondition {
    SceneCondition {
        altitude_m: 30.0,
        visibility: 1.0,
    }
}

/// One tick's observable outcome, bit-exact. Collected by both paths and
/// compared after the timed runs.
#[derive(PartialEq, Debug)]
struct TickDigest {
    pof_bits: u64,
    combined_bits: u64,
    risk_bits: u64,
    action: Option<UavAction>,
    nav_bits: Option<u64>,
}

struct RunResult {
    evals: u64,
    elapsed_ns: u128,
    allocs: u64,
    digests: Vec<TickDigest>,
    cache_hits: u64,
    cache_misses: u64,
}

fn run_fast(rounds: u64) -> RunResult {
    let mut eddis: Vec<UavEddiRuntime> = (0..UAVS)
        .map(|i| {
            let mut rt = UavEddiRuntime::new(
                42 ^ ((i as u64 + 1) << 16),
                SafeDronesConfig::default(),
                home(),
            );
            rt.set_remaining_mission(SimDuration::from_secs(600));
            rt
        })
        .collect();
    let mut conserts: Vec<IncrementalConsertNetwork> = (0..UAVS)
        .map(|i| IncrementalConsertNetwork::new(UavId::new(i as u32 + 1).to_string()))
        .collect();
    let sc = scene();
    let mut digests = Vec::with_capacity((rounds as usize) * UAVS);
    let allocs_before = allocations();
    let start = Instant::now();
    for r in 0..rounds {
        for i in 0..UAVS {
            let tel = telemetry(i, r);
            let out = eddis[i].tick(&tel, &sc);
            let evidence = eddis[i].evidence(&tel, false, true);
            let decision = conserts[i].decide(&evidence);
            digests.push(TickDigest {
                pof_bits: out.reliability.pof.to_bits(),
                combined_bits: out.combined_uncertainty.to_bits(),
                risk_bits: out.risk.criticality_high_prob.to_bits(),
                action: decision.action,
                nav_bits: decision.nav_accuracy_m.map(f64::to_bits),
            });
        }
    }
    let elapsed_ns = start.elapsed().as_nanos();
    let allocs = allocations() - allocs_before;
    let mut cache_hits = 0;
    let mut cache_misses = 0;
    for e in &eddis {
        let s = e.cache_stats();
        cache_hits += s.hits;
        cache_misses += s.misses;
    }
    for c in &conserts {
        let s = c.stats();
        cache_hits += s.hits;
        cache_misses += s.misses;
    }
    RunResult {
        evals: rounds * UAVS as u64,
        elapsed_ns,
        allocs,
        digests,
        cache_hits,
        cache_misses,
    }
}

fn run_reference(rounds: u64) -> RunResult {
    let mut eddis: Vec<ReferenceEddiRuntime> = (0..UAVS)
        .map(|i| {
            let mut rt = ReferenceEddiRuntime::new(
                42 ^ ((i as u64 + 1) << 16),
                SafeDronesConfig::default(),
                home(),
            );
            rt.set_remaining_mission(SimDuration::from_secs(600));
            rt
        })
        .collect();
    let networks: Vec<_> = (0..UAVS)
        .map(|i| uav_consert_network(&UavId::new(i as u32 + 1).to_string()))
        .collect();
    let names: Vec<String> = (0..UAVS)
        .map(|i| UavId::new(i as u32 + 1).to_string())
        .collect();
    let sc = scene();
    let mut digests = Vec::with_capacity((rounds as usize) * UAVS);
    let allocs_before = allocations();
    let start = Instant::now();
    for r in 0..rounds {
        for i in 0..UAVS {
            let tel = telemetry(i, r);
            let out = eddis[i].tick(&tel, &sc);
            let evidence = eddis[i].evidence(&tel, false, true);
            let action = evaluate_uav(&networks[i], &names[i], &evidence);
            let nav = certified_navigation_accuracy_m(&networks[i], &names[i], &evidence);
            digests.push(TickDigest {
                pof_bits: out.reliability.pof.to_bits(),
                combined_bits: out.combined_uncertainty.to_bits(),
                risk_bits: out.risk.criticality_high_prob.to_bits(),
                action,
                nav_bits: nav.map(f64::to_bits),
            });
        }
    }
    let elapsed_ns = start.elapsed().as_nanos();
    let allocs = allocations() - allocs_before;
    RunResult {
        evals: rounds * UAVS as u64,
        elapsed_ns,
        allocs,
        digests,
        cache_hits: 0,
        cache_misses: 0,
    }
}

fn render(r: &RunResult) -> String {
    let secs = r.elapsed_ns as f64 / 1e9;
    let ticks_per_sec = r.evals as f64 / secs;
    let ns_per_eval = r.elapsed_ns as f64 / r.evals as f64;
    format!(
        "{{\"elapsed_ns\": {}, \"ticks_per_sec\": {:.0}, \"ns_per_eval\": {:.1}, \
         \"allocs\": {}}}",
        r.elapsed_ns, ticks_per_sec, ns_per_eval, r.allocs
    )
}

fn main() {
    let args = BenchArgs::parse();
    let rounds = if args.smoke { 200 } else { 2000 };
    eprintln!(
        "eddibench: {UAVS}-UAV steady-state EDDI + ConSert evaluation, {rounds} rounds{}",
        if args.smoke { " (smoke)" } else { "" }
    );

    // Interleave a warmup of each before timing so neither path pays
    // first-touch costs (page faults, lazy init) inside its measurement.
    let _ = run_reference(5);
    let _ = run_fast(5);

    let reference = run_reference(rounds);
    let fast = run_fast(rounds);
    assert_eq!(
        fast.evals, reference.evals,
        "workloads must tick identically"
    );
    for (k, (f, r)) in fast.digests.iter().zip(&reference.digests).enumerate() {
        assert_eq!(
            f, r,
            "paths diverged at eval {k} — semantics bug, refusing to report"
        );
    }

    let speedup = reference.elapsed_ns as f64 / fast.elapsed_ns as f64;
    let total = fast.cache_hits + fast.cache_misses;
    let evals_skipped_ratio = fast.cache_hits as f64 / total.max(1) as f64;
    // One tick = one round over all UAVs; the fast path's per-tick
    // allocation count is the arena discipline's scorecard (the
    // steady-state target is zero — pinned by the alloc_regression
    // test; the bench number includes the telemetry construction the
    // workload itself pays).
    let allocs_per_tick = fast.allocs as f64 / rounds as f64;
    // Summary keys precede the nested per-path objects, so the first
    // occurrence of each gated key is the headline (fast-path) number.
    JsonReport::new("eddi_steady_state_3uav")
        .int("rounds", rounds)
        .int("evals", fast.evals)
        .num("speedup", speedup, 2)
        .num("allocs_per_tick", allocs_per_tick, 2)
        .num("evals_skipped_ratio", evals_skipped_ratio, 3)
        .int("cache_hits", fast.cache_hits)
        .int("cache_misses", fast.cache_misses)
        .raw("fast", &render(&fast))
        .raw("reference", &render(&reference))
        .emit(args.json_path.as_deref());
    eprintln!(
        "eddibench: speedup {speedup:.2}x, evals skipped {:.1}%",
        evals_skipped_ratio * 100.0
    );
    if speedup < 3.0 {
        eprintln!("eddibench: WARNING — speedup below the 3x target");
        std::process::exit(1);
    }
}
