//! Bus fanout microbenchmark: the optimized zero-copy `MessageBus`
//! against the cache-free `ReferenceBus`, on the 64-subscriber
//! wildcard-heavy workload, emitting machine-readable JSON.
//!
//! ```text
//! cargo run -p sesame-bench --release --bin busbench           # full run
//! cargo run -p sesame-bench --release --bin busbench -- smoke  # CI smoke
//! ```
//!
//! The JSON report (schema: `sesame_bench::cli`) goes to stdout
//! (configuration chatter to stderr), so `busbench > BENCH_bus.json`
//! records the repo's perf trajectory — `scripts/check.sh` does exactly
//! that; `--json PATH` writes a copy. Reported per bus: messages per
//! second, nanoseconds per delivery, and an allocation-count proxy from a
//! counting global allocator (allocations per delivery is the honest
//! zero-copy scorecard: the reference bus pays one deep `Message` clone
//! per subscriber, the optimized bus one `Arc` refcount bump).
//!
//! Both buses run the identical deterministic workload and must agree on
//! the delivery count — the run aborts if they diverge, so the speedup is
//! never measured against a bus doing different work.

use sesame_bench::alloc::{allocations, CountingAllocator};
use sesame_bench::cli::{BenchArgs, JsonReport};
use sesame_middleware::bus::MessageBus;
use sesame_middleware::message::Payload;
use sesame_middleware::reference::ReferenceBus;
use sesame_types::time::{SimDuration, SimTime};
use std::time::Instant;

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator;

const UAVS: usize = 8;

/// The concrete topics the publishers cycle through.
fn topics() -> Vec<String> {
    let mut t = Vec::new();
    for i in 0..UAVS {
        t.push(format!("/uav{i}/telemetry/pos"));
        t.push(format!("/uav{i}/telemetry/battery"));
        t.push(format!("/uav{i}/cmd/waypoint"));
        t.push(format!("/uav{i}/status"));
    }
    t
}

/// 64 wildcard-heavy subscriber filters (7 per UAV + 8 fleet-wide).
fn patterns() -> Vec<String> {
    let mut p = Vec::new();
    for i in 0..UAVS {
        p.push(format!("/uav{i}/#"));
        p.push(format!("/uav{i}/telemetry/#"));
        p.push(format!("/uav{i}/telemetry/+"));
        p.push(format!("/uav{i}/+/waypoint"));
        p.push(format!("/uav{i}/cmd/#"));
        p.push(format!("/uav{i}/status"));
        p.push(format!("/uav{i}/+/pos"));
    }
    for _ in 0..4 {
        p.push("#".to_string());
    }
    p.push("+/telemetry/#".to_string());
    p.push("+/telemetry/pos".to_string());
    p.push("+/status".to_string());
    p.push("+/cmd/+".to_string());
    assert_eq!(p.len(), 64);
    p
}

/// Rule set both buses carry: latency overrides and loss rules matching
/// no live topic — pure scan cost for the reference bus.
fn latency_rules() -> Vec<(&'static str, SimDuration)> {
    vec![
        ("/uav0/#", SimDuration::from_millis(40)),
        ("+/cmd/#", SimDuration::from_millis(60)),
        ("/uav3/telemetry/#", SimDuration::from_millis(30)),
        ("#", SimDuration::from_millis(20)),
    ]
}

fn loss_rules() -> Vec<(&'static str, f64)> {
    vec![("/uav9/#", 1.0), ("/ghost/+", 0.5)]
}

struct RunResult {
    published: u64,
    deliveries: u64,
    elapsed_ns: u128,
    allocs: u64,
}

fn run_optimized(rounds: u64) -> RunResult {
    let topics = topics();
    let mut bus = MessageBus::seeded(42);
    for (p, l) in latency_rules() {
        bus.set_topic_latency(p, l);
    }
    for (p, q) in loss_rules() {
        bus.set_loss(p, q);
    }
    let subs: Vec<_> = patterns().into_iter().map(|p| bus.subscribe(p)).collect();
    let mut published = 0u64;
    let mut deliveries = 0u64;
    let allocs_before = allocations();
    let start = Instant::now();
    for r in 0..rounds {
        let now = SimTime::from_millis(r * 100);
        for t in &topics {
            bus.publish(now, "bench", t.as_str(), Payload::Text("payload".into()));
            published += 1;
        }
        deliveries += bus.step(now + SimDuration::from_millis(100)) as u64;
        for &s in &subs {
            deliveries -= bus.drain(s).expect("live subscription").len() as u64;
        }
    }
    let elapsed_ns = start.elapsed().as_nanos();
    let allocs = allocations() - allocs_before;
    assert_eq!(deliveries, 0, "every delivery must be drained");
    RunResult {
        published,
        deliveries: bus.counters().delivered,
        elapsed_ns,
        allocs,
    }
}

fn run_reference(rounds: u64) -> RunResult {
    let topics = topics();
    let mut bus = ReferenceBus::seeded(42);
    for (p, l) in latency_rules() {
        bus.set_topic_latency(p, l);
    }
    for (p, q) in loss_rules() {
        bus.set_loss(p, q);
    }
    let subs: Vec<_> = patterns().into_iter().map(|p| bus.subscribe(p)).collect();
    let mut published = 0u64;
    let mut deliveries = 0u64;
    let allocs_before = allocations();
    let start = Instant::now();
    for r in 0..rounds {
        let now = SimTime::from_millis(r * 100);
        for t in &topics {
            bus.publish(now, "bench", t.as_str(), Payload::Text("payload".into()));
            published += 1;
        }
        deliveries += bus.step(now + SimDuration::from_millis(100)) as u64;
        for &s in &subs {
            deliveries -= bus.drain(s).len() as u64;
        }
    }
    let elapsed_ns = start.elapsed().as_nanos();
    let allocs = allocations() - allocs_before;
    assert_eq!(deliveries, 0, "every delivery must be drained");
    RunResult {
        published,
        deliveries: bus.stats().delivered,
        elapsed_ns,
        allocs,
    }
}

fn render(r: &RunResult) -> String {
    let secs = r.elapsed_ns as f64 / 1e9;
    let msgs_per_sec = r.published as f64 / secs;
    let ns_per_delivery = r.elapsed_ns as f64 / r.deliveries as f64;
    let allocs_per_delivery = r.allocs as f64 / r.deliveries as f64;
    format!(
        "{{\"elapsed_ns\": {}, \"msgs_per_sec\": {:.0}, \"ns_per_delivery\": {:.1}, \
         \"allocs\": {}, \"allocs_per_delivery\": {:.2}}}",
        r.elapsed_ns, msgs_per_sec, ns_per_delivery, r.allocs, allocs_per_delivery
    )
}

fn main() {
    let args = BenchArgs::parse();
    let rounds = if args.smoke { 100 } else { 2000 };
    eprintln!(
        "busbench: 64-subscriber wildcard fanout, {} topics, {rounds} rounds{}",
        topics().len(),
        if args.smoke { " (smoke)" } else { "" }
    );

    // Interleave a warmup of each before timing so neither bus pays
    // first-touch costs (page faults, lazy init) inside its measurement.
    let _ = run_reference(5);
    let _ = run_optimized(5);

    let reference = run_reference(rounds);
    let optimized = run_optimized(rounds);
    assert_eq!(
        optimized.published, reference.published,
        "workloads must publish identically"
    );
    assert_eq!(
        optimized.deliveries, reference.deliveries,
        "buses disagreed on deliveries — semantics bug, refusing to report"
    );

    let speedup = reference.elapsed_ns as f64 / optimized.elapsed_ns as f64;
    let allocs_ratio = reference.allocs as f64 / optimized.allocs.max(1) as f64;
    // Summary keys precede the nested per-bus objects, so the first
    // occurrence of each gated key is the headline (optimized) number.
    JsonReport::new("bus_fanout_64sub_wildcard")
        .int("rounds", rounds)
        .int("published", optimized.published)
        .int("deliveries", optimized.deliveries)
        .num("speedup", speedup, 2)
        .num("allocs_ratio", allocs_ratio, 2)
        .raw("optimized", &render(&optimized))
        .raw("reference", &render(&reference))
        .emit(args.json_path.as_deref());
    eprintln!("busbench: speedup {speedup:.2}x, allocs ratio {allocs_ratio:.2}x");
    if speedup < 3.0 {
        eprintln!("busbench: WARNING — speedup below the 3x target");
        std::process::exit(1);
    }
}
