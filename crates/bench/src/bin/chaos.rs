//! The chaos-campaign binary: N seeded random fault schedules swept over
//! full scenario runs, with the robustness invariants checked per run.
//!
//! ```text
//! cargo run -p sesame-bench --release --bin chaos                  # 50 seeds
//! cargo run -p sesame-bench --release --bin chaos -- 10            # 10 seeds
//! cargo run -p sesame-bench --release --bin chaos -- 10 smoke     # short runs
//! cargo run -p sesame-bench --release --bin chaos -- 50 replay    # + replay check
//! ```
//!
//! Exit status is non-zero when any invariant was violated, so CI can
//! gate on it directly.

use sesame_core::chaos::{CampaignConfig, ChaosCampaign};
use sesame_types::time::SimTime;

fn main() {
    let runs: u64 = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(50);
    let mode = std::env::args().nth(2).unwrap_or_default();
    let config = CampaignConfig {
        runs,
        base_seed: 1,
        deadline: if mode == "smoke" {
            SimTime::from_secs(120)
        } else {
            SimTime::from_secs(180)
        },
        replay_check: mode == "replay",
        ..CampaignConfig::default()
    };
    println!(
        "chaos campaign: {} seeds, {} s deadline, replay check {}",
        config.runs,
        config.deadline.as_millis() / 1000,
        if config.replay_check { "on" } else { "off" }
    );
    let report = ChaosCampaign::new(config).run();
    print!("{}", report.render());
    if !report.all_clean() {
        eprintln!("chaos campaign FAILED: {} violations", report.total_violations());
        std::process::exit(1);
    }
    println!("chaos campaign clean");
}
