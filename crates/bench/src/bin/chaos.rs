//! The chaos-campaign binary: N seeded random fault schedules swept over
//! full scenario runs, with the robustness invariants checked per run.
//!
//! ```text
//! cargo run -p sesame-bench --release --bin chaos                      # 50 seeds
//! cargo run -p sesame-bench --release --bin chaos -- --seeds 10        # 10 seeds
//! cargo run -p sesame-bench --release --bin chaos -- 10 smoke         # short runs
//! cargo run -p sesame-bench --release --bin chaos -- 50 replay        # + replay check
//! cargo run -p sesame-bench --release --bin chaos -- 50 --jobs 8      # parallel sweep
//! cargo run -p sesame-bench --release --bin chaos -- 50 panics        # + compute faults
//! cargo run -p sesame-bench --release --bin chaos -- \
//!     --scenario scenarios/maritime_sar.sesame                        # DSL base scenario
//! ```
//!
//! The flags are the shared bench conventions (`sesame_bench::cli`):
//! `--seeds N` (a bare leading number still works), `smoke`, and
//! `--jobs N` (or `SESAME_JOBS=N`) to spread the seeds over a worker
//! pool; the default is the machine's available parallelism. The
//! report — per-seed rows and merged deterministic metrics — goes to
//! stdout and is byte-identical at any worker count (configuration
//! chatter goes to stderr so `chaos ... > report.txt` output can be
//! diffed across `--jobs` values directly; `scripts/check.sh` gates on
//! exactly that diff).
//!
//! Exit status is non-zero when any invariant was violated, so CI can
//! gate on it directly.

use sesame_bench::cli::BenchArgs;
use sesame_bench::parallel;
use sesame_core::chaos::{CampaignConfig, ChaosCampaign};
use sesame_types::time::SimTime;

fn main() {
    let args = BenchArgs::parse();
    let jobs = args.effective_jobs();
    let runs: u64 = args
        .seeds
        .or_else(|| args.rest.first().and_then(|a| a.parse().ok()))
        .unwrap_or(50);
    let replay = args.rest.iter().any(|a| a == "replay");
    // `panics` arms the compute-fault plane: scheduled EDDI panics,
    // NaN/Inf telemetry and solver stalls on top of the vehicle/comm
    // mix. The campaign-level catch_unwind turns any escaped panic into
    // a violation, so the exit status is the zero-aborts gate.
    let panics = args.rest.iter().any(|a| a == "panics");
    // `--scenario FILE` sweeps the campaign's random fault schedules
    // over a DSL-compiled base scenario instead of the built-in
    // three-UAV world. The scenario's own deadline governs each run
    // (clamped under `smoke` so CI stays short); the campaign config's
    // deadline is kept in lockstep because it sizes the fault-time draw.
    let base = args.compiled_scenario().map(|compiled| {
        if args.smoke {
            compiled.with_deadline_clamped(SimTime::from_secs(120))
        } else {
            compiled
        }
    });
    let config = CampaignConfig {
        runs,
        base_seed: 1,
        deadline: match &base {
            Some(compiled) => compiled.deadline(),
            None if args.smoke => SimTime::from_secs(120),
            None => SimTime::from_secs(180),
        },
        compute_faults_per_run: if panics { 2 } else { 0 },
        replay_check: replay,
        ..CampaignConfig::default()
    };
    eprintln!(
        "chaos campaign: {} seeds, {} s deadline, {} compute fault(s)/run, \
         replay check {}, {} worker{}{}",
        config.runs,
        config.deadline.as_millis() / 1000,
        config.compute_faults_per_run,
        if config.replay_check { "on" } else { "off" },
        jobs,
        if jobs == 1 { "" } else { "s" },
        match &base {
            Some(compiled) => format!(", base scenario \"{}\"", compiled.name()),
            None => String::new(),
        }
    );
    let campaign = match base {
        Some(compiled) => ChaosCampaign::with_template(config, compiled.template()),
        None => ChaosCampaign::new(config),
    };
    let report = parallel::run_campaign(&campaign, jobs);
    print!("{}", report.render_full());
    if !report.all_clean() {
        eprintln!(
            "chaos campaign FAILED: {} violations",
            report.total_violations()
        );
        std::process::exit(1);
    }
    println!("chaos campaign clean");
}
