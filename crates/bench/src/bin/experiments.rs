//! The experiment harness: regenerates every table/figure of §V.
//!
//! ```text
//! cargo run -p sesame-bench --release --bin experiments            # all
//! cargo run -p sesame-bench --release --bin experiments -- fig5
//! cargo run -p sesame-bench --release --bin experiments -- sar-acc
//! cargo run -p sesame-bench --release --bin experiments -- fig6
//! cargo run -p sesame-bench --release --bin experiments -- fig7
//! cargo run -p sesame-bench --release --bin experiments -- conserts
//! cargo run -p sesame-bench --release --bin experiments -- fig6 \
//!     --scenario scenarios/fig6_spoofing.sesame
//! ```
//!
//! `--jobs N` (or `SESAME_JOBS=N`, the shared `sesame_bench::cli`
//! convention) runs the independent legs of the multi-run experiments
//! (the three Fig. 6 runs, the per-seed robustness pairs) on a worker
//! pool; reduction is in a fixed order, so the printed tables are
//! byte-identical at any worker count.
//!
//! Output is the paper's rows/series plus our measured values, ready to be
//! pasted into EXPERIMENTS.md.

use sesame_bench::cli::BenchArgs;
use sesame_bench::{fig6_summary_table, format_series, parallel, sparkline};
use sesame_conserts::catalog::{self, UavEvidence};
use sesame_core::experiments;

const SEED: u64 = 42;

fn main() {
    let args = BenchArgs::parse();
    let jobs = args.effective_jobs();
    let arg = args.rest.first().cloned().unwrap_or_else(|| "all".into());
    // `--scenario FILE` swaps the Fig. 6 legs for ones compiled from a
    // `.sesame` file carrying `sesame`/`attack` params (the shipped
    // `scenarios/fig6_spoofing.sesame` is the conformance-pinned port).
    let scenario = args.scenario.as_deref();
    match arg.as_str() {
        "fig5" => fig5(),
        "sar-acc" => sar_acc(),
        "fig6" => fig6(jobs, scenario),
        "fig7" => fig7(),
        "conserts" => conserts(),
        "robustness" => robustness(jobs),
        "all" => {
            fig5();
            sar_acc();
            fig6(jobs, scenario);
            fig7();
            conserts();
        }
        other => {
            eprintln!(
                "unknown experiment `{other}`; use fig5|sar-acc|fig6|fig7|conserts|robustness|all \
                 (optionally with --jobs N)"
            );
            std::process::exit(2);
        }
    }
}

fn header(title: &str) {
    println!("\n==== {title} ====");
}

fn fig5() {
    header("Fig. 5 / §V-A — Probability of failure under a battery fault");
    let r = experiments::fig5(SEED);
    println!(
        "paper:    availability 91% (SESAME) vs 80% (baseline); 11% completion-time improvement;"
    );
    println!("          PoF threshold 0.9 reached ≈510 s (mission end), fault at 250 s");
    println!(
        "measured: availability {:.1}% (SESAME) vs {:.1}% (baseline) on the affected UAV",
        r.with_sesame.affected_availability * 100.0,
        r.baseline.affected_availability * 100.0
    );
    println!(
        "          completion {} s (SESAME) vs {} s (baseline) -> improvement {:.1}%",
        r.with_sesame
            .completion_secs
            .map(|s| format!("{s:.0}"))
            .unwrap_or_else(|| "n/a".into()),
        r.baseline
            .completion_secs
            .map(|s| format!("{s:.0}"))
            .unwrap_or_else(|| "n/a".into()),
        r.completion_time_improvement.unwrap_or(f64::NAN) * 100.0
    );
    println!(
        "          PoF crossed 0.9 at {}",
        r.threshold_crossed_secs
            .map(|s| format!("{s:.0} s"))
            .unwrap_or_else(|| "never".into())
    );
    println!("PoF(t) series (SESAME run, affected UAV):");
    println!("  {}", sparkline(&r.pof_series, 72));
    println!("  {}", format_series(&r.pof_series, 60));
}

fn sar_acc() {
    header("§V-B — SAR accuracy via uncertainty-driven altitude adaptation");
    let r = experiments::sar_accuracy(SEED);
    println!("paper:    uncertainty >90% at high altitude -> descend -> ≈75% uncertainty, 99.8% accuracy");
    println!(
        "measured: high-altitude uncertainty {:.1}%, post-descent {:.1}%",
        r.high_altitude_uncertainty * 100.0,
        r.low_altitude_uncertainty * 100.0
    );
    println!(
        "          descent commanded at {}",
        r.descent_commanded_secs
            .map(|s| format!("{s:.0} s"))
            .unwrap_or_else(|| "never".into())
    );
    println!(
        "          model accuracy: {:.1}% @25 m vs {:.1}% @60 m",
        r.accuracy_low * 100.0,
        r.accuracy_high * 100.0
    );
    println!(
        "          empirical detection accuracy: {:.1}% (adaptive) vs {:.1}% (fixed 60 m)",
        r.measured_accuracy * 100.0,
        r.baseline_accuracy * 100.0
    );
    println!("uncertainty(t):");
    println!("  {}", sparkline(&r.uncertainty_series, 72));
}

fn fig6(jobs: usize, scenario: Option<&str>) {
    header("Fig. 6 / §V-C — Area-mapping trajectory under ROS/GPS spoofing");
    let r = match scenario {
        Some(path) => {
            // One compile per leg: the `sesame`/`attack` params select
            // the leg, so the file stays a single source of truth.
            let legs = experiments::FIG6_LEGS.map(|(sesame, attack)| {
                let mut scenarios = sesame_scenario_dsl::Compiler::new()
                    .param("sesame", sesame)
                    .param("attack", attack)
                    .compile_file(path)
                    .unwrap_or_else(|e| {
                        eprintln!("{}", e.render());
                        std::process::exit(2);
                    });
                if scenarios.is_empty() {
                    eprintln!("{path}: the file declares no scenario");
                    std::process::exit(2);
                }
                scenarios.remove(0).builder(SEED)
            });
            eprintln!("fig6 legs compiled from {path}");
            parallel::fig6_from_builders(legs, jobs)
        }
        None => parallel::fig6(SEED, jobs),
    };
    println!("paper:    spoofed trajectory (red) deviates from the correct one (blue);");
    println!("          with SESAME the Security EDDI detects the attack immediately");
    println!(
        "measured: attack at {:.0} s; max deviation without SESAME {:.0} m",
        r.attack_start_secs, r.max_deviation_m
    );
    println!(
        "          SESAME detection latency {}; deviation at detection {:.1} m",
        r.detection_latency_secs
            .map(|s| format!("{s:.1} s"))
            .unwrap_or_else(|| "none".into()),
        r.deviation_at_detection_m
    );
    println!("deviation(t) between clean and attacked runs:");
    println!("  {}", sparkline(&r.deviation_series, 72));
    println!("  {}", format_series(&r.deviation_series, 60));
    print!("{}", fig6_summary_table(&r));
}

fn fig7() {
    header("Fig. 7 / §V-C — Collaborative localization safe landing (GPS-denied)");
    let r = experiments::fig7(SEED);
    println!("paper:    spoofed UAV lands at a high-precision location with no GPS signal,");
    println!("          guided by the assisting UAVs");
    println!(
        "measured: detected at {}; landed at {}; GPS-denied: {}",
        r.detected_secs
            .map(|s| format!("{s:.0} s"))
            .unwrap_or_else(|| "never".into()),
        r.landed_secs
            .map(|s| format!("{s:.0} s"))
            .unwrap_or_else(|| "never".into()),
        r.gps_denied
    );
    println!(
        "          landing miss {}; mean CL fix error {:.2} m over {} fixes",
        r.landing_miss_m
            .map(|m| format!("{m:.2} m"))
            .unwrap_or_else(|| "n/a".into()),
        r.mean_cl_error_m,
        r.cl_error_series.len()
    );
}

fn robustness(jobs: usize) {
    header("Robustness — Fig. 5 shape across seeds");
    let seeds = [7u64, 42, 1234];
    let r = parallel::fig5_robustness(&seeds, jobs);
    println!(
        "{:<8} {:>14} {:>18}",
        "seed", "improvement", "availability gain"
    );
    for i in 0..r.seeds.len() {
        println!(
            "{:<8} {:>13.1}% {:>17.1}pp",
            r.seeds[i],
            r.improvements[i] * 100.0,
            r.availability_gains[i] * 100.0
        );
    }
    println!(
        "shape holds (SESAME wins both metrics) on {}/{} seeds",
        r.shape_holds_count,
        r.seeds.len()
    );
}

fn conserts() {
    header("Fig. 1 — ConSert hierarchy decision table (structural check)");
    let network = catalog::uav_consert_network("uav1");
    let rows: Vec<(&str, UavEvidence)> = vec![
        ("nominal", UavEvidence::nominal()),
        (
            "medium reliability",
            UavEvidence {
                rel_high: false,
                rel_med: true,
                ..UavEvidence::nominal()
            },
        ),
        (
            "gps lost",
            UavEvidence {
                gps_usable: false,
                ..UavEvidence::nominal()
            },
        ),
        (
            "under attack",
            UavEvidence {
                no_attack: false,
                ..UavEvidence::nominal()
            },
        ),
        (
            "attack + isolated",
            UavEvidence {
                no_attack: false,
                comm_ok: false,
                neighbors_available: false,
                ..UavEvidence::nominal()
            },
        ),
        (
            "low reliability",
            UavEvidence {
                rel_high: false,
                rel_low: true,
                ..UavEvidence::nominal()
            },
        ),
        (
            "everything lost",
            UavEvidence {
                gps_usable: false,
                no_attack: false,
                vision_healthy: false,
                safeml_ok: false,
                comm_ok: false,
                neighbors_available: false,
                assistant_available: false,
                rel_high: false,
                rel_med: false,
                rel_low: true,
            },
        ),
    ];
    println!("{:<22} -> action", "situation");
    for (name, ev) in rows {
        let action = catalog::evaluate_uav(&network, "uav1", &ev)
            .map(|a| a.to_string())
            .unwrap_or_else(|| "<no certificate>".into());
        println!("{name:<22} -> {action}");
    }
}
