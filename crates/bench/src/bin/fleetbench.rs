//! Fleet-scale platform benchmark: full `Platform::step` throughput as
//! the fleet grows from the paper's 3 UAVs to 500, sharded vs serial.
//!
//! ```text
//! cargo run -p sesame-bench --release --bin fleetbench           # 3..500 UAVs
//! cargo run -p sesame-bench --release --bin fleetbench -- smoke  # CI sizes
//! cargo run -p sesame-bench --release --bin fleetbench -- --jobs 4
//! cargo run -p sesame-bench --release --bin fleetbench -- \
//!     --scenario scenarios/multi_incident_triage.sesame   # DSL-described world
//! ```
//!
//! The JSON report (schema: `sesame_bench::cli`) goes to stdout
//! (configuration chatter to stderr), so `fleetbench > BENCH_fleet.json`
//! records the repo's scaling trajectory — `scripts/check.sh` does
//! exactly that; `--json PATH` writes a copy. Per fleet size the report
//! carries whole-platform ticks per second, the per-UAV normalization
//! (`uav_ticks_per_sec` — flat means linear scaling of the per-UAV
//! phases; the O(n²) airspace scan bends it at the top end), the shard
//! count actually used, the sharded-over-serial speedup, and the heap
//! allocations per tick inside the timed span (counting allocator). The
//! summary keys are the largest fleet's numbers and come first, which is
//! what `scripts/bench_gate.sh` gates on.
//!
//! `--jobs N` forces `ShardPolicy::Fixed { shards: N }`; the size
//! sweep's default is one shard per 32 UAVs (see [`sweep_policy`] for
//! why it deliberately sidesteps `ShardPolicy::Auto`'s core-count
//! clamp). Whatever the partition, the sharded
//! run must agree with the serial oracle — every pair of runs is
//! compared on the wall-clock-free metrics projection, event count and
//! PoF series bits before its numbers are reported, so the speedup is
//! never measured against a fleet computing different answers.
//!
//! `--inject-panics` switches to the recovery workload instead: one
//! fleet size, a clean run and a run with scheduled compute faults
//! (EDDI panic, solver stall, NaN telemetry), each measured serial and
//! sharded with the same digest cross-checks. The report
//! (`BENCH_recovery.json` via `scripts/check.sh`) carries the faulted
//! per-UAV throughput and `recovery_ratio` — faulted over clean
//! throughput, i.e. what panic isolation, quarantine, revival probes
//! and the watchdog demotion cost; `scripts/bench_gate.sh` gates its
//! floor.

use sesame_bench::alloc::{allocations, CountingAllocator};
use sesame_bench::cli::{BenchArgs, JsonReport};
use sesame_core::containment::ComputeFaultKind;
use sesame_core::fleet::{FleetSpec, ShardPolicy};
use sesame_core::orchestrator::{Platform, PlatformConfig};
use sesame_types::time::{SimDuration, SimTime};
use std::time::Instant;

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator;

/// Fleet sizes for the full curve and the CI smoke subset.
const FULL_SIZES: [usize; 5] = [3, 10, 50, 200, 500];
const SMOKE_SIZES: [usize; 3] = [3, 50, 200];

/// The size sweep's sharding policy: `--jobs N` forces `Fixed { N }`;
/// otherwise one shard per 32 UAVs, *uncapped by the core count*.
/// `ShardPolicy::Auto` clamps to `available_parallelism`, which on a
/// single-core CI box resolves every size to serial — the sweep would
/// then measure the serial path twice and report `shards: 1` for every
/// row. Forcing the partition keeps the sharded runtime (worker pool,
/// chunk merge, excision bookkeeping) in the measurement and makes the
/// recorded shard count the one actually used.
fn sweep_policy(jobs: Option<usize>, uavs: usize) -> ShardPolicy {
    match jobs {
        Some(n) => ShardPolicy::Fixed { shards: n },
        None => ShardPolicy::Fixed {
            shards: uavs.div_ceil(32),
        },
    }
}

fn config(uavs: usize, policy: ShardPolicy) -> PlatformConfig {
    PlatformConfig {
        // A fixed mid-size area: per-UAV strips shrink as the fleet
        // grows, but the per-tick work (EDDI, monitors, ConSerts) is
        // what the curve measures.
        area_width_m: 400.0,
        area_height_m: 300.0,
        person_count: 5,
        seed: 42,
        fleet: FleetSpec::builder().uavs(uavs).shard_policy(policy).build(),
        ..PlatformConfig::default()
    }
}

/// A scheduled compute fault for the recovery workload.
type Fault = (SimTime, SimDuration, ComputeFaultKind);

struct RunResult {
    shards: usize,
    elapsed_ns: u128,
    ticks: u64,
    /// Heap allocations inside the timed span (counting allocator).
    allocs: u64,
    /// `uav.quarantine.entered` at the end of the run.
    quarantines: u64,
    // Conformance digest: wall-clock-free metrics + events + PoF bits.
    digest: (String, usize, Vec<u64>),
}

fn run(uavs: usize, policy: ShardPolicy, ticks: u64) -> RunResult {
    run_with_faults(uavs, policy, ticks, &[])
}

fn run_with_faults(uavs: usize, policy: ShardPolicy, ticks: u64, faults: &[Fault]) -> RunResult {
    run_platform(config(uavs, policy), ticks, faults)
}

fn run_platform(cfg: PlatformConfig, ticks: u64, faults: &[Fault]) -> RunResult {
    let mut p = Platform::new(cfg);
    for &(at, duration, kind) in faults {
        p.compute_faults_mut().schedule(at, duration, kind);
    }
    p.launch();
    // Warmup outside the measurement: climb-out plus first-touch costs
    // (route upload, cache priming).
    for _ in 0..10 {
        p.step();
    }
    let allocs_before = allocations();
    let start = Instant::now();
    for _ in 0..ticks {
        p.step();
    }
    let elapsed_ns = start.elapsed().as_nanos();
    let allocs = allocations() - allocs_before;
    let snapshot = p.metrics_snapshot();
    let digest = (
        snapshot.without_wall_clock().render_table(),
        p.events().len(),
        p.series().pof().iter().map(|(_, v)| v.to_bits()).collect(),
    );
    RunResult {
        shards: p.shard_count(),
        elapsed_ns,
        ticks,
        allocs,
        quarantines: snapshot.counter("uav.quarantine.entered"),
        digest,
    }
}

fn ticks_per_sec(r: &RunResult) -> f64 {
    r.ticks as f64 / (r.elapsed_ns as f64 / 1e9)
}

/// The `--inject-panics` workload: clean vs compute-faulted runs, each
/// cross-checked serial vs sharded, reporting the throughput the
/// containment machinery (isolation, quarantine, probes, watchdog)
/// costs under fault load.
fn recovery_bench(args: &BenchArgs) {
    let uavs = if args.smoke { 10 } else { 50 };
    let ticks: u64 = if args.smoke { 30 } else { 60 };
    let policy = match args.jobs {
        Some(n) => ShardPolicy::Fixed { shards: n },
        None => ShardPolicy::Auto,
    };
    // Warmup is 10 ticks (1 s of sim time at 100 ms/tick); every window
    // opens inside the shortest (smoke) measured span so each fault
    // class — panic, stall, NaN telemetry — actually fires.
    let faults: Vec<Fault> = vec![
        (
            SimTime::from_millis(1500),
            SimDuration::from_millis(800),
            ComputeFaultKind::EddiPanic { uav: 1 },
        ),
        (
            SimTime::from_millis(2000),
            SimDuration::from_millis(1000),
            ComputeFaultKind::SolverStall { uav: 3 },
        ),
        (
            SimTime::from_millis(2500),
            SimDuration::from_millis(500),
            ComputeFaultKind::TelemetryNan { uav: 5 },
        ),
    ];
    eprintln!(
        "fleetbench: recovery workload, {uavs} UAVs, {ticks} timed ticks, \
         {} scheduled compute faults, policy {policy:?}{}",
        faults.len(),
        if args.smoke { " (smoke)" } else { "" }
    );

    let clean_serial = run(uavs, ShardPolicy::Serial, ticks);
    let clean_sharded = run(uavs, policy, ticks);
    assert_eq!(
        clean_serial.digest, clean_sharded.digest,
        "clean sharded run diverged from the serial oracle with supervision \
         enabled — containment must be invisible on the fault-free path"
    );
    let faulted_serial = run_with_faults(uavs, ShardPolicy::Serial, ticks, &faults);
    let faulted_sharded = run_with_faults(uavs, policy, ticks, &faults);
    assert_eq!(
        faulted_serial.digest, faulted_sharded.digest,
        "faulted sharded run diverged from the serial oracle — panic \
         isolation must be plan-independent, refusing to report"
    );
    assert!(
        faulted_sharded.quarantines >= 1,
        "the scheduled EDDI panic left no quarantine entry behind"
    );

    let clean_tps = ticks_per_sec(&clean_sharded) * uavs as f64;
    let faulted_tps = ticks_per_sec(&faulted_sharded) * uavs as f64;
    let ratio = faulted_tps / clean_tps;
    eprintln!(
        "fleetbench: faulted {faulted_tps:.0} UAV-ticks/s vs clean \
         {clean_tps:.0} ({ratio:.2}x), {} quarantine(s)",
        faulted_sharded.quarantines
    );
    JsonReport::new("fleet_recovery_supervised_tick")
        .int("uavs", uavs as u64)
        .int("shards", faulted_sharded.shards as u64)
        .num("uav_ticks_per_sec", faulted_tps, 0)
        .num("clean_uav_ticks_per_sec", clean_tps, 0)
        .num("recovery_ratio", ratio, 2)
        .int("quarantines", faulted_sharded.quarantines)
        .int("ticks", ticks)
        .emit(args.json_path.as_deref());
}

/// Rebuilds a fleet spec with a different shard policy, keeping every
/// profile group.
fn with_policy(spec: &FleetSpec, policy: ShardPolicy) -> FleetSpec {
    let mut b = FleetSpec::builder().shard_policy(policy);
    for g in spec.groups() {
        b = b.group(g.count, g.profile);
    }
    b.build()
}

/// The `--scenario FILE` workload: whole-platform throughput of the
/// world/fleet/mission a `.sesame` file describes, sharded against the
/// serial oracle with the same digest cross-check the size sweep uses.
/// The scenario's *fault schedules* are not injected — this measures the
/// platform the scenario configures, not the scripted incidents.
fn scenario_bench(args: &BenchArgs, compiled: sesame_scenario_dsl::CompiledScenario) {
    let ticks = if args.smoke { 30 } else { 60 };
    let cfg = compiled.builder(42).config().clone();
    // `--jobs N` overrides; otherwise the scenario's own `shards` choice
    // is what gets measured.
    let policy = match args.jobs {
        Some(n) => ShardPolicy::Fixed { shards: n },
        None => cfg.fleet.shard_policy(),
    };
    let uavs = cfg.fleet.total();
    eprintln!(
        "fleetbench: scenario \"{}\", {uavs} UAVs, {ticks} timed ticks, policy {policy:?}{}",
        compiled.name(),
        if args.smoke { " (smoke)" } else { "" }
    );

    let mut serial_cfg = cfg.clone();
    serial_cfg.fleet = with_policy(&cfg.fleet, ShardPolicy::Serial);
    let mut sharded_cfg = cfg.clone();
    sharded_cfg.fleet = with_policy(&cfg.fleet, policy);
    let serial = run_platform(serial_cfg, ticks, &[]);
    let sharded = run_platform(sharded_cfg, ticks, &[]);
    assert_eq!(
        serial.digest,
        sharded.digest,
        "sharded run of scenario \"{}\" diverged from the serial oracle — \
         semantics bug, refusing to report",
        compiled.name()
    );

    let tps = ticks_per_sec(&sharded);
    let speedup = tps / ticks_per_sec(&serial);
    eprintln!(
        "fleetbench: {:.0} ticks/s ({:.0} UAV-ticks/s), {} shard(s), {speedup:.2}x over serial",
        tps,
        tps * uavs as f64,
        sharded.shards
    );
    JsonReport::new("fleet_scenario_tick")
        .str("scenario", compiled.name())
        .int("uavs", uavs as u64)
        .int("shards", sharded.shards as u64)
        .num("ticks_per_sec", tps, 0)
        .num("uav_ticks_per_sec", tps * uavs as f64, 0)
        .num("sharded_speedup", speedup, 2)
        .int("ticks", ticks)
        .emit(args.json_path.as_deref());
}

fn main() {
    let args = BenchArgs::parse();
    if let Some(compiled) = args.compiled_scenario() {
        scenario_bench(&args, compiled);
        return;
    }
    if args.rest.iter().any(|a| a == "--inject-panics") {
        recovery_bench(&args);
        return;
    }
    let sizes: Vec<usize> = if args.smoke {
        SMOKE_SIZES.to_vec()
    } else {
        FULL_SIZES.to_vec()
    };
    let ticks = if args.smoke { 30 } else { 60 };
    eprintln!(
        "fleetbench: sizes {sizes:?}, {ticks} timed ticks each, one shard \
         per 32 UAVs{}{}",
        match args.jobs {
            Some(n) => format!(" (overridden: --jobs {n})"),
            None => String::new(),
        },
        if args.smoke { " (smoke)" } else { "" }
    );

    let mut rows = Vec::new();
    let mut last = None;
    for &n in &sizes {
        let serial = run(n, ShardPolicy::Serial, ticks);
        let sharded = run(n, sweep_policy(args.jobs, n), ticks);
        assert_eq!(
            serial.digest, sharded.digest,
            "sharded {n}-UAV run diverged from the serial oracle — \
             semantics bug, refusing to report"
        );
        let tps = ticks_per_sec(&sharded);
        let per_uav = tps * n as f64;
        let speedup = ticks_per_sec(&sharded) / ticks_per_sec(&serial);
        let allocs_per_tick = sharded.allocs as f64 / sharded.ticks as f64;
        eprintln!(
            "fleetbench: {n:>4} UAVs, {:>2} shard(s): {tps:>8.1} ticks/s \
             ({per_uav:>9.0} UAV-ticks/s), speedup {speedup:.2}x, \
             {allocs_per_tick:.0} allocs/tick",
            sharded.shards
        );
        rows.push(format!(
            "{{\"uavs\": {n}, \"shards\": {}, \"ticks_per_sec\": {tps:.1}, \
             \"uav_ticks_per_sec\": {per_uav:.0}, \"serial_ticks_per_sec\": {:.1}, \
             \"speedup\": {speedup:.2}, \"allocs_per_tick\": {allocs_per_tick:.0}}}",
            sharded.shards,
            ticks_per_sec(&serial)
        ));
        last = Some((n, per_uav, speedup, sharded));
    }
    let (largest, per_uav, speedup, sharded) = last.expect("at least one size");

    // Summary keys (the largest fleet's numbers) precede the curve, so
    // first-occurrence key extraction reads the headline values.
    JsonReport::new("fleet_scale_sharded_tick")
        .int("largest_fleet", largest as u64)
        .int("shards", sharded.shards as u64)
        .num("uav_ticks_per_sec", per_uav, 0)
        .num("speedup", speedup, 2)
        .num(
            "allocs_per_tick",
            sharded.allocs as f64 / sharded.ticks as f64,
            0,
        )
        .int("ticks", ticks)
        .raw("sizes", &format!("[\n    {}\n  ]", rows.join(",\n    ")))
        .emit(args.json_path.as_deref());
    eprintln!(
        "fleetbench: {largest} UAVs at {per_uav:.0} UAV-ticks/s, \
         sharded speedup {speedup:.2}x over serial"
    );
}
