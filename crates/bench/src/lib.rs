//! Shared helpers for the experiment harness and the Criterion benches.
//!
//! The real content of this crate lives in `src/bin/` (the binaries that
//! regenerate every §V figure/row of the paper and the perf scorecards),
//! in [`parallel`] (the work-stealing deterministic seed-sweep executor
//! the binaries use for `--jobs N`), in [`cli`] (the shared flag
//! conventions and JSON report schema), in [`alloc`] (the counting
//! global allocator behind every `allocs_per_*` number), and in
//! `benches/` (one Criterion bench per figure plus the ablations listed
//! in DESIGN.md).

pub mod alloc;
pub mod cli;
pub mod parallel;

use sesame_core::experiments::Fig6Result;

/// Renders the Fig. 6 experiment summary as a fixed-format table built
/// only from simulation-state values (wall-clock phase timings are
/// stripped from the observability section). Two runs of the same seed
/// — serial or parallel, today or in CI — must render the same bytes;
/// the golden-snapshot test pins this string.
pub fn fig6_summary_table(r: &Fig6Result) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(out, "fig6 summary (seeded, deterministic)");
    let _ = writeln!(
        out,
        "  attack start              {:>10.0} s",
        r.attack_start_secs
    );
    let _ = writeln!(
        out,
        "  max deviation (no SESAME) {:>10.1} m",
        r.max_deviation_m
    );
    let _ = writeln!(
        out,
        "  detection latency         {:>10}",
        r.detection_latency_secs
            .map(|s| format!("{s:.1} s"))
            .unwrap_or_else(|| "none".into())
    );
    let _ = writeln!(
        out,
        "  deviation at detection    {:>10.1} m",
        r.deviation_at_detection_m
    );
    let _ = writeln!(
        out,
        "  deviation samples         {:>10}",
        r.deviation_series.len()
    );
    let _ = writeln!(
        out,
        "observability (protected run, deterministic projection):"
    );
    out.push_str(&r.protected_metrics.without_wall_clock().render_table());
    out
}

/// Formats a float series as compact `t:v` pairs for terminal plots.
pub fn format_series(series: &[(f64, f64)], every: usize) -> String {
    series
        .iter()
        .step_by(every.max(1))
        .map(|(t, v)| format!("{t:.0}s:{v:.3}"))
        .collect::<Vec<_>>()
        .join("  ")
}

/// Renders a crude ASCII sparkline of a series (for terminal figures).
pub fn sparkline(series: &[(f64, f64)], width: usize) -> String {
    if series.is_empty() || width == 0 {
        return String::new();
    }
    const GLYPHS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    let min = series.iter().map(|(_, v)| *v).fold(f64::INFINITY, f64::min);
    let max = series
        .iter()
        .map(|(_, v)| *v)
        .fold(f64::NEG_INFINITY, f64::max);
    let span = (max - min).max(1e-12);
    let step = (series.len() as f64 / width as f64).max(1.0);
    let mut out = String::with_capacity(width);
    let mut i = 0.0;
    while (i as usize) < series.len() && out.chars().count() < width {
        let v = series[i as usize].1;
        let idx = (((v - min) / span) * 7.0).round() as usize;
        out.push(GLYPHS[idx.min(7)]);
        i += step;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn series_formatting() {
        let s = vec![(0.0, 0.1), (1.0, 0.2), (2.0, 0.3)];
        assert_eq!(format_series(&s, 2), "0s:0.100  2s:0.300");
        assert_eq!(format_series(&[], 1), "");
    }

    #[test]
    fn sparkline_shape() {
        let s: Vec<(f64, f64)> = (0..100).map(|i| (i as f64, i as f64)).collect();
        let line = sparkline(&s, 10);
        assert_eq!(line.chars().count(), 10);
        assert!(line.starts_with('▁'));
        // The last rendered sample is near (not exactly at) the maximum.
        assert!(line.ends_with('▇') || line.ends_with('█'), "{line}");
        assert_eq!(sparkline(&[], 10), "");
    }
}
