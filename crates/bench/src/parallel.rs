//! `sesame-bench::parallel` — the work-stealing, std-only parallel
//! scenario executor.
//!
//! The paper's §V tables and the chaos campaigns are seeded Monte Carlo
//! sweeps: many full scenario runs that share no state and differ only
//! in their seed. Running them serially caps how many seeds tier-1
//! verification can afford; running them naively in parallel risks the
//! one property the whole reproduction stands on — bit-identical
//! determinism. This module does both at once:
//!
//! * **Parallel**: a fixed pool of `std::thread::scope` workers pulls
//!   work items from a shared atomic cursor (work stealing with a
//!   one-item grain — an idle worker always takes the next undone
//!   item, so a slow seed never stalls the queue behind it).
//! * **Deterministic**: each item's result is written into its own
//!   pre-allocated slot, and reduction happens *after* the scope joins,
//!   in item order — never completion order. Seed-keyed reductions
//!   ([`run_seeds`]) land in a [`BTreeMap`], so aggregate output is
//!   byte-identical to the serial path at any worker count.
//!
//! Isolation is the caller's contract: the closure must derive every
//! RNG stream from the item it is handed (the campaign and experiment
//! runners derive all randomness from the seed) and must not touch
//! shared mutable state. The `Fn(..) + Sync` bound enforces the sharing
//! half of that contract at compile time; the `Send + Sync` audits in
//! `sesame-core`/`sesame-middleware`/`sesame-uav-sim` enforce it for
//! the scenario state the closure constructs per run.
//!
//! ```
//! use sesame_bench::parallel;
//!
//! let squares = parallel::run_indexed(4, 8, |i| i * i);
//! assert_eq!(squares, vec![0, 1, 4, 9, 16, 25, 36, 49]);
//! ```

use sesame_core::chaos::{CampaignReport, ChaosCampaign};
use sesame_core::experiments::{
    self, fig6_reduce, fig6_scenario, Fig6Result, RobustnessResult, FIG6_LEGS,
};
use std::collections::BTreeMap;

/// How many workers a sweep should use, resolved from (in priority
/// order) an explicit `--jobs N` CLI value, the `SESAME_JOBS`
/// environment variable, and finally the machine's available
/// parallelism. Always at least 1.
pub fn effective_jobs(cli: Option<usize>) -> usize {
    cli.or_else(jobs_from_env)
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        })
        .max(1)
}

/// Parses `SESAME_JOBS` (ignored when unset, empty or unparsable).
pub fn jobs_from_env() -> Option<usize> {
    std::env::var("SESAME_JOBS")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&n| n > 0)
}

/// Strips a `--jobs N` / `--jobs=N` / `-j N` flag out of `args` and
/// returns its value. Leaves every other argument in place, so
/// positional parsing can proceed on the remainder.
pub fn take_jobs_arg(args: &mut Vec<String>) -> Option<usize> {
    let mut jobs = None;
    let mut i = 0;
    while i < args.len() {
        let arg = &args[i];
        if arg == "--jobs" || arg == "-j" {
            if let Some(v) = args.get(i + 1).and_then(|v| v.parse().ok()) {
                jobs = Some(v);
                args.drain(i..=i + 1);
                continue;
            }
            args.remove(i);
            continue;
        }
        if let Some(v) = arg.strip_prefix("--jobs=").and_then(|v| v.parse().ok()) {
            jobs = Some(v);
            args.remove(i);
            continue;
        }
        i += 1;
    }
    jobs.filter(|&n| n > 0)
}

/// Runs `f(0..count)` on a pool of `jobs` workers and returns the
/// results in *index order*, regardless of which worker finished which
/// item when.
///
/// With `jobs <= 1` (or a single item) no threads are spawned and the
/// items run inline in index order — the serial reference path. The
/// parallel path produces the exact same `Vec` because every item's
/// result is placed by index, not by arrival.
///
/// A panic inside `f` propagates out of the scope after the remaining
/// workers drain (the campaign runners `catch_unwind` internally, so a
/// chaotic seed reports a violation instead of panicking the sweep).
///
/// The pool itself lives in [`sesame_core::shard`] — the same executor
/// that drives the fleet-sharded platform tick — so bench sweeps and the
/// orchestrator share one determinism-audited implementation.
pub fn run_indexed<T, F>(jobs: usize, count: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    sesame_core::shard::run_indexed(jobs, count, f)
}

/// Sweeps `f` over `seeds` on `jobs` workers and reduces into a
/// seed-keyed [`BTreeMap`] — iteration order is seed order, so any
/// fold over the map is independent of worker count and scheduling.
pub fn run_seeds<T, F>(jobs: usize, seeds: &[u64], f: F) -> BTreeMap<u64, T>
where
    T: Send,
    F: Fn(u64) -> T + Sync,
{
    let results = run_indexed(jobs, seeds.len(), |i| f(seeds[i]));
    seeds.iter().copied().zip(results).collect()
}

/// Sweeps a chaos campaign's seeds across `jobs` workers. The campaign
/// is shared immutably (`ChaosCampaign: Sync`); every worker stamps its
/// runs out of the campaign's prebuilt scenario template and derives
/// all randomness from the seed it pulled, so the assembled report —
/// per-seed rows *and* merged aggregates — is byte-identical to
/// [`ChaosCampaign::run`] at any worker count.
pub fn run_campaign(campaign: &ChaosCampaign, jobs: usize) -> CampaignReport {
    let seeds = campaign.seeds();
    CampaignReport::from_runs(run_seeds(jobs, &seeds, |s| campaign.run_seed(s)).into_values())
}

/// Runs the three independent legs of the Fig. 6 experiment (clean,
/// attacked, protected) on up to three workers and reduces exactly as
/// the serial [`experiments::fig6`] does.
pub fn fig6(seed: u64, jobs: usize) -> Fig6Result {
    let outcomes = run_indexed(jobs, FIG6_LEGS.len(), |i| {
        let (sesame, attack) = FIG6_LEGS[i];
        fig6_scenario(seed, sesame, attack).build().run()
    });
    fig6_reduce(&outcomes[0], &outcomes[1], &outcomes[2])
}

/// Runs the Fig. 6 experiment over three explicit leg descriptions in
/// [`FIG6_LEGS`] order — e.g. legs compiled from a `.sesame` DSL file
/// with per-leg `sesame`/`attack` parameters — across `jobs` workers.
pub fn fig6_from_builders(
    legs: [sesame_core::scenario::ScenarioBuilder; 3],
    jobs: usize,
) -> Fig6Result {
    let outcomes = run_indexed(jobs, legs.len(), |i| legs[i].clone().build().run());
    fig6_reduce(&outcomes[0], &outcomes[1], &outcomes[2])
}

/// Runs the Fig. 5 robustness sweep (one SESAME/baseline run pair per
/// seed) across `jobs` workers; reduction is in seed order.
pub fn fig5_robustness(seeds: &[u64], jobs: usize) -> RobustnessResult {
    let results = run_indexed(jobs, seeds.len(), |i| experiments::fig5(seeds[i]));
    RobustnessResult::from_runs(seeds, &results)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn results_are_in_index_order_at_any_worker_count() {
        let serial = run_indexed(1, 100, |i| i * 3);
        for jobs in [2, 4, 8, 16] {
            assert_eq!(run_indexed(jobs, 100, |i| i * 3), serial, "jobs={jobs}");
        }
    }

    #[test]
    fn every_item_runs_exactly_once() {
        let calls = AtomicU64::new(0);
        let out = run_indexed(8, 257, |i| {
            calls.fetch_add(1, Ordering::Relaxed);
            i
        });
        assert_eq!(calls.load(Ordering::Relaxed), 257);
        assert_eq!(out.len(), 257);
        assert!(out.iter().enumerate().all(|(i, &v)| i == v));
    }

    #[test]
    fn more_workers_than_items_is_fine() {
        assert_eq!(run_indexed(64, 3, |i| i), vec![0, 1, 2]);
        assert_eq!(run_indexed(4, 0, |i| i), Vec::<usize>::new());
        assert_eq!(run_indexed(0, 2, |i| i), vec![0, 1], "jobs=0 clamps to 1");
    }

    #[test]
    fn seeds_reduce_into_seed_order() {
        let seeds = [9u64, 3, 7, 1];
        let map = run_seeds(4, &seeds, |s| s * 10);
        let keys: Vec<u64> = map.keys().copied().collect();
        assert_eq!(keys, vec![1, 3, 7, 9]);
        assert_eq!(map[&7], 70);
    }

    #[test]
    fn jobs_arg_parsing_strips_flag_variants() {
        let mut args = vec![
            "50".to_string(),
            "--jobs".into(),
            "4".into(),
            "smoke".into(),
        ];
        assert_eq!(take_jobs_arg(&mut args), Some(4));
        assert_eq!(args, vec!["50".to_string(), "smoke".into()]);

        let mut args = vec!["--jobs=8".to_string()];
        assert_eq!(take_jobs_arg(&mut args), Some(8));
        assert!(args.is_empty());

        let mut args = vec!["-j".to_string(), "2".into(), "10".into()];
        assert_eq!(take_jobs_arg(&mut args), Some(2));
        assert_eq!(args, vec!["10".to_string()]);

        let mut args = vec!["10".to_string()];
        assert_eq!(take_jobs_arg(&mut args), None);
        assert_eq!(args, vec!["10".to_string()]);
    }

    #[test]
    fn effective_jobs_prefers_cli() {
        assert_eq!(effective_jobs(Some(3)), 3);
        assert!(effective_jobs(None) >= 1);
    }
}
