//! The counting global allocator shared by the bench binaries and the
//! allocation-regression tests.
//!
//! Rust requires the `#[global_allocator]` attribute to sit in the crate
//! that gets the allocator, so each binary installs its own static of
//! this type:
//!
//! ```ignore
//! #[global_allocator]
//! static ALLOCATOR: sesame_bench::alloc::CountingAllocator =
//!     sesame_bench::alloc::CountingAllocator;
//! ```
//!
//! and then reads [`allocations`] around a measured span. The counter is
//! process-global and monotonic; callers diff two readings rather than
//! resetting it, so concurrent readers never race a reset.
//!
//! Only *allocations* are counted — `dealloc` is passthrough. The number
//! serves as a proxy for allocator pressure on the hot path (the honest
//! zero-copy scorecard), not as a leak detector. When the installing
//! crate forgets the attribute the counter simply stays at zero; the
//! allocation-regression test guards against that footgun by asserting
//! the counter moves for a known-allocating operation first.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

/// Counts every heap allocation made by the process — the allocs-proxy.
pub struct CountingAllocator;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

/// Total allocations since process start (zero if no binary installed
/// [`CountingAllocator`] as its global allocator). Diff two readings to
/// bracket a measured span.
pub fn allocations() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}
