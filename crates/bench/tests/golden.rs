//! Golden-snapshot tests: the fig6 experiment summary table and the
//! chaos campaign report are serialized to strings and compared against
//! committed fixtures byte-for-byte.
//!
//! Both strings are built exclusively from simulation-state values
//! (wall-clock phase timings are stripped by the deterministic
//! projection), so any byte of drift means real behaviour drifted —
//! a changed default, a reordered reduction, a renamed metric. When the
//! change is intentional, regenerate and commit the fixtures:
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test -p sesame-bench --test golden
//! ```
//!
//! Both snapshots are produced through the *parallel* executor, so the
//! fixtures also pin that the parallel path renders the same bytes on
//! every machine, at any worker count.

use sesame_bench::{fig6_summary_table, parallel};
use sesame_core::chaos::{CampaignConfig, ChaosCampaign};
use sesame_types::time::SimTime;
use std::fs;
use std::path::PathBuf;

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(name)
}

fn check_golden(name: &str, actual: &str) {
    let path = golden_path(name);
    if std::env::var("UPDATE_GOLDEN").as_deref() == Ok("1") {
        fs::create_dir_all(path.parent().unwrap()).unwrap();
        fs::write(&path, actual).unwrap();
        eprintln!("regenerated {}", path.display());
        return;
    }
    let expected = fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden fixture {} ({e}); regenerate with \
             UPDATE_GOLDEN=1 cargo test -p sesame-bench --test golden",
            path.display()
        )
    });
    assert_eq!(
        actual,
        expected,
        "output drifted from {}; if intentional, regenerate with \
         UPDATE_GOLDEN=1 cargo test -p sesame-bench --test golden and commit",
        path.display()
    );
}

#[test]
fn chaos_campaign_report_matches_golden() {
    let campaign = ChaosCampaign::new(CampaignConfig {
        runs: 3,
        base_seed: 1,
        deadline: SimTime::from_secs(60),
        ..CampaignConfig::default()
    });
    let report = parallel::run_campaign(&campaign, 2);
    check_golden("chaos_report.txt", &report.render_full());
}

#[test]
fn fig6_summary_table_matches_golden() {
    // The experiments binary's seed; three legs on up to three workers.
    let result = parallel::fig6(42, 3);
    check_golden("fig6_summary.txt", &fig6_summary_table(&result));
}
