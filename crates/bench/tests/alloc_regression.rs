//! Allocation-regression gate for the hot-loop memory discipline
//! (DESIGN.md § "Hot-loop memory discipline").
//!
//! The tentpole claim of the arena/inline-storage work is that a quiet
//! steady-state tick of the per-UAV safety pipeline — EDDI evaluation
//! (SafeDrones CTMC + FTA, SafeML, SINADRA, DeepKnowledge, attack tree)
//! plus the ConSert decide — performs **zero heap allocations** once its
//! caches and scratch buffers are warm. This test pins that claim under
//! the counting global allocator: any future `clone()`, `format!` or
//! `Vec::new` sneaking into the steady-state path turns the counter and
//! fails the build.
//!
//! Telemetry snapshots are prebuilt outside the measured span (the
//! platform amortizes that construction through `telemetry_into`; here
//! it would just measure the workload generator). The full
//! `Platform::step` is *not* asserted to be zero-alloc — the bus publish
//! path (owned topic strings, payload `Arc`s) and the observability ring
//! buffers allocate by design; `tickbench` reports those as
//! `allocs_per_tick`.

use sesame_bench::alloc::{allocations, CountingAllocator};
use sesame_conserts::IncrementalConsertNetwork;
use sesame_core::UavEddiRuntime;
use sesame_safedrones::monitor::SafeDronesConfig;
use sesame_types::geo::GeoPoint;
use sesame_types::ids::UavId;
use sesame_types::telemetry::UavTelemetry;
use sesame_types::time::{SimDuration, SimTime};
use sesame_vision::features::SceneCondition;

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator;

const UAVS: usize = 3;
/// Must exceed the SafeML sliding window (50 samples): until the window
/// is full, every `push_sample` legitimately allocates its row buffer.
const WARMUP_ROUNDS: u64 = 60;
const MEASURED_ROUNDS: u64 = 50;

fn home() -> GeoPoint {
    GeoPoint::new(35.05, 33.20, 0.0)
}

/// Steady-state scan telemetry, identical to the eddibench workload:
/// cruising at 30 m, healthy battery, clean GPS.
fn telemetry(uav: usize, round: u64) -> UavTelemetry {
    let time = SimTime::from_millis(round * 100);
    let pos = home().destination(90.0, 5.0 * uav as f64).with_alt(30.0);
    let mut tel = UavTelemetry::nominal(UavId::new(uav as u32 + 1), time, pos);
    tel.gps.position = tel.true_position;
    tel
}

#[test]
fn steady_state_three_uav_tick_allocates_nothing() {
    // Guard against the silent-zero footgun: if this test binary somehow
    // lost the #[global_allocator] attribute, the counter would sit at
    // zero forever and the assertion below would pass vacuously.
    let probe_before = allocations();
    let probe = vec![0u8; 64];
    assert!(
        allocations() > probe_before,
        "counting allocator is not installed — the zero-alloc assertion \
         would be vacuous"
    );
    drop(probe);

    let mut eddis: Vec<UavEddiRuntime> = (0..UAVS)
        .map(|i| {
            let mut rt = UavEddiRuntime::new(
                42 ^ ((i as u64 + 1) << 16),
                SafeDronesConfig::default(),
                home(),
            );
            rt.set_remaining_mission(SimDuration::from_secs(600));
            rt
        })
        .collect();
    let mut conserts: Vec<IncrementalConsertNetwork> = (0..UAVS)
        .map(|i| IncrementalConsertNetwork::new(UavId::new(i as u32 + 1).to_string()))
        .collect();
    let scene = SceneCondition {
        altitude_m: 30.0,
        visibility: 1.0,
    };

    // Prebuild every telemetry snapshot outside the measured span.
    let rounds = WARMUP_ROUNDS + MEASURED_ROUNDS;
    let tels: Vec<Vec<UavTelemetry>> = (0..rounds)
        .map(|r| (0..UAVS).map(|i| telemetry(i, r)).collect())
        .collect();

    // Warmup: solver-profile caches, SafeML presort, scratch buffers and
    // ConSert fingerprints all reach steady state.
    for round in tels.iter().take(WARMUP_ROUNDS as usize) {
        for i in 0..UAVS {
            let tel = &round[i];
            let out = eddis[i].tick(tel, &scene);
            let evidence = eddis[i].evidence(tel, false, true);
            let decision = conserts[i].decide(&evidence);
            assert!(out.reliability.pof.is_finite());
            assert!(decision.action.is_some() || decision.action.is_none());
        }
    }

    let before = allocations();
    let mut checksum = 0u64;
    for round in tels.iter().skip(WARMUP_ROUNDS as usize) {
        for i in 0..UAVS {
            let tel = &round[i];
            let out = eddis[i].tick(tel, &scene);
            let evidence = eddis[i].evidence(tel, false, true);
            let decision = conserts[i].decide(&evidence);
            checksum ^= out.reliability.pof.to_bits();
            checksum ^= decision.nav_accuracy_m.map_or(0, f64::to_bits);
        }
    }
    let allocs = allocations() - before;

    assert_ne!(checksum, 0, "the measured loop must do real work");
    assert_eq!(
        allocs, 0,
        "steady-state EDDI + ConSert ticks allocated {allocs} times over \
         {MEASURED_ROUNDS} rounds x {UAVS} UAVs — the hot loop regressed \
         (see DESIGN.md, Hot-loop memory discipline)"
    );
}
