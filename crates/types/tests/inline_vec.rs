//! Property tests of [`sesame_types::inline::InlineVec`].
//!
//! The hot-loop collections (bus route tables, attack-tree frontiers,
//! solve-class member lists, SINADRA factor storage) all ride on
//! `InlineVec`, so its observable behaviour must match `Vec<T>` exactly —
//! across the inline representation, the spill boundary, and the spilled
//! heap representation. These tests drive an `InlineVec` and a `Vec`
//! oracle through randomized operation schedules and assert lockstep
//! agreement, plus representation-independence of `Eq`/`Ord`/`Hash`
//! (an inline and a spilled vector with equal elements must be
//! indistinguishable to a `HashMap` or `BTreeMap` key lookup).

use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};

use proptest::prelude::*;
use sesame_types::inline::InlineVec;

/// One step of a randomized operation schedule.
#[derive(Debug, Clone)]
enum Op {
    Push(i32),
    Pop,
    Clear,
    ExtendFromSlice(Vec<i32>),
    MutateAt(usize, i32),
}

fn op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (-1000i32..1000).prop_map(Op::Push),
        (-1000i32..1000).prop_map(Op::Push),
        (-1000i32..1000).prop_map(Op::Push),
        Just(Op::Pop),
        Just(Op::Clear),
        proptest::collection::vec(-1000i32..1000, 0..6).prop_map(Op::ExtendFromSlice),
        (0usize..64, -1000i32..1000).prop_map(|(i, v)| Op::MutateAt(i, v)),
    ]
}

fn hash_of<T: Hash>(value: &T) -> u64 {
    let mut h = DefaultHasher::new();
    value.hash(&mut h);
    h.finish()
}

/// Builds an `InlineVec<i32, 16>` holding `xs` in the **spilled**
/// representation: pushes past the inline capacity to trigger the spill
/// (one-way), then pops back down to the original content.
fn force_spilled(xs: &[i32]) -> InlineVec<i32, 16> {
    let mut v: InlineVec<i32, 16> = xs.iter().copied().collect();
    while !v.spilled() {
        v.push(0);
    }
    while v.len() > xs.len() {
        v.pop();
    }
    v
}

/// Runs a schedule against both containers, asserting lockstep agreement
/// after every step. `N = 4` keeps the spill boundary in constant play.
fn run_schedule(ops: &[Op]) -> Result<(), TestCaseError> {
    let mut v: InlineVec<i32, 4> = InlineVec::new();
    let mut oracle: Vec<i32> = Vec::new();
    for op in ops {
        match op {
            Op::Push(x) => {
                v.push(*x);
                oracle.push(*x);
            }
            Op::Pop => {
                prop_assert_eq!(v.pop(), oracle.pop());
            }
            Op::Clear => {
                v.clear();
                oracle.clear();
            }
            Op::ExtendFromSlice(xs) => {
                v.extend_from_slice(xs);
                oracle.extend_from_slice(xs);
            }
            Op::MutateAt(i, x) => {
                if !oracle.is_empty() {
                    let i = i % oracle.len();
                    v.as_mut_slice()[i] = *x;
                    oracle[i] = *x;
                }
            }
        }
        prop_assert_eq!(v.as_slice(), oracle.as_slice());
        prop_assert_eq!(v.len(), oracle.len());
        prop_assert_eq!(v.is_empty(), oracle.is_empty());
    }
    // Iteration, FromIterator round-trip and Debug agree at the end.
    prop_assert_eq!(v.iter().copied().collect::<Vec<_>>(), oracle.clone());
    let rebuilt: InlineVec<i32, 4> = oracle.iter().copied().collect();
    prop_assert_eq!(&rebuilt, &v);
    prop_assert_eq!(format!("{v:?}"), format!("{oracle:?}"));
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// `InlineVec` and `Vec` agree after every step of any schedule.
    #[test]
    fn lockstep_with_vec(ops in proptest::collection::vec(op(), 0..40)) {
        run_schedule(&ops)?;
    }

    /// Equality, ordering and hashing are representation-independent:
    /// the same elements held inline (large `N`) and spilled (tiny `N`)
    /// compare equal, order identically against other content, and hash
    /// to the same value — required for `SolveKey` map lookups to be
    /// oblivious to whether a key spilled.
    #[test]
    fn eq_ord_hash_ignore_representation(
        xs in proptest::collection::vec(-3i32..3, 0..8),
        ys in proptest::collection::vec(-3i32..3, 0..8),
    ) {
        let inline_x: InlineVec<i32, 16> = xs.iter().copied().collect();
        let spilled_x = force_spilled(&xs);
        let inline_y: InlineVec<i32, 16> = ys.iter().copied().collect();
        let spilled_y = force_spilled(&ys);
        prop_assert!(!inline_x.spilled() && spilled_x.spilled());

        prop_assert_eq!(&inline_x, &spilled_x);
        prop_assert_eq!(hash_of(&inline_x), hash_of(&spilled_x));
        prop_assert_eq!(inline_x.cmp(&spilled_x), std::cmp::Ordering::Equal);

        // Cross-content comparisons track the slice semantics of `Vec`.
        prop_assert_eq!(inline_x == inline_y, xs == ys);
        prop_assert_eq!(inline_x.cmp(&inline_y), xs.cmp(&ys));
        prop_assert_eq!(spilled_x.cmp(&spilled_y), xs.cmp(&ys));
        prop_assert_eq!(
            inline_x.partial_cmp(&spilled_y),
            xs.partial_cmp(&ys)
        );
        if xs == ys {
            prop_assert_eq!(hash_of(&inline_x), hash_of(&spilled_y));
        }
    }

    /// The spill point is exactly `N`: `N` pushes stay inline, the
    /// `N+1`-th spills, and `clear` keeps the heap buffer while `reset`
    /// returns to inline storage.
    #[test]
    fn spill_boundary_is_exact(xs in proptest::collection::vec(-1000i32..1000, 5..20)) {
        let mut v: InlineVec<i32, 4> = InlineVec::new();
        for (i, x) in xs.iter().enumerate() {
            v.push(*x);
            prop_assert_eq!(v.spilled(), i + 1 > 4, "len {}", i + 1);
        }
        v.clear();
        prop_assert!(v.spilled(), "clear keeps the heap buffer");
        prop_assert!(v.is_empty());
        v.reset();
        prop_assert!(!v.spilled(), "reset returns to inline storage");
    }

    /// `drain_to_vec` empties the container and yields the elements in
    /// order, for both representations.
    #[test]
    fn drain_to_vec_matches(xs in proptest::collection::vec(-1000i32..1000, 0..12)) {
        let mut inline: InlineVec<i32, 16> = xs.iter().copied().collect();
        let mut spilled: InlineVec<i32, 1> = xs.iter().copied().collect();
        prop_assert_eq!(inline.drain_to_vec(), xs.clone());
        prop_assert_eq!(spilled.drain_to_vec(), xs.clone());
        prop_assert!(inline.is_empty());
        prop_assert!(spilled.is_empty());
    }
}
