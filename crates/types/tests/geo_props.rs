//! Property tests of the geodesy primitives.

use proptest::prelude::*;
use sesame_types::geo::{Enu, GeoPoint, Vec3};
use sesame_types::time::{SimDuration, SimTime};

fn point() -> impl Strategy<Value = GeoPoint> {
    (-70.0..70.0f64, -179.0..179.0f64, 0.0..200.0f64)
        .prop_map(|(lat, lon, alt)| GeoPoint::new(lat, lon, alt))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Haversine obeys the triangle inequality.
    #[test]
    fn haversine_triangle(a in point(), b in point(), c in point()) {
        let ab = a.haversine_distance_m(&b);
        let bc = b.haversine_distance_m(&c);
        let ac = a.haversine_distance_m(&c);
        prop_assert!(ac <= ab + bc + 1e-6);
    }

    /// Bearings are always in [0, 360).
    #[test]
    fn bearing_range(a in point(), b in point()) {
        let brg = a.bearing_deg(&b);
        prop_assert!((0.0..360.0).contains(&brg), "bearing {brg}");
    }

    /// Walking out and back along opposite bearings returns home.
    #[test]
    fn out_and_back(a in point(), bearing in 0.0..360.0f64, d in 1.0..20_000.0f64) {
        let out = a.destination(bearing, d);
        let back_bearing = out.bearing_deg(&a);
        let home = out.destination(back_bearing, d);
        prop_assert!(a.haversine_distance_m(&home) < d * 1e-3 + 0.5);
    }

    /// 3-D distance dominates both the horizontal distance and the
    /// altitude difference.
    #[test]
    fn distance_3d_dominates(a in point(), b in point()) {
        let d3 = a.distance_3d_m(&b);
        prop_assert!(d3 >= a.haversine_distance_m(&b) - 1e-9);
        prop_assert!(d3 >= (a.alt_m - b.alt_m).abs() - 1e-9);
    }

    /// ENU offsets add linearly: applying (u then v) equals applying u+v.
    #[test]
    fn enu_addition(
        origin in point(),
        e1 in -500.0..500.0f64, n1 in -500.0..500.0f64,
        e2 in -500.0..500.0f64, n2 in -500.0..500.0f64,
    ) {
        let step1 = GeoPoint::from_enu(&origin, Enu::new(e1, n1, 0.0));
        let two_step = GeoPoint::from_enu(&step1, Enu::new(e2, n2, 0.0));
        let direct = GeoPoint::from_enu(&origin, Enu::new(e1 + e2, n1 + n2, 0.0));
        prop_assert!(two_step.haversine_distance_m(&direct) < 0.5);
    }

    /// Vec3 norm obeys the Cauchy–Schwarz inequality with dot products.
    #[test]
    fn cauchy_schwarz(
        ax in -10.0..10.0f64, ay in -10.0..10.0f64, az in -10.0..10.0f64,
        bx in -10.0..10.0f64, by in -10.0..10.0f64, bz in -10.0..10.0f64,
    ) {
        let a = Vec3::new(ax, ay, az);
        let b = Vec3::new(bx, by, bz);
        prop_assert!(a.dot(&b).abs() <= a.norm() * b.norm() + 1e-9);
    }

    /// Time arithmetic is consistent: (t + d) - t == d.
    #[test]
    fn time_add_sub(t in 0u64..1_000_000, d in 0u64..1_000_000) {
        let base = SimTime::from_millis(t);
        let dur = SimDuration::from_millis(d);
        prop_assert_eq!((base + dur) - base, dur);
        prop_assert!((base + dur) >= base);
    }
}
