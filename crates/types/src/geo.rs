//! Geodesy on a spherical earth.
//!
//! The paper's collaborative-localization tool refines UAV positions with
//! "trigonometric calculations and the Haversine formula" (§III-C). This
//! module provides exactly that toolbox: [`GeoPoint`] with haversine
//! distance, initial bearing, destination-point computation, and a local
//! east-north-up ([`Enu`]) tangent frame used by the flight simulator and the
//! triangulation code.

use std::fmt;

/// Mean earth radius in metres (IUGG value), the constant used by the
/// haversine formula throughout the workspace.
pub const EARTH_RADIUS_M: f64 = 6_371_008.8;

/// A WGS-84-style geodetic position: latitude/longitude in degrees and
/// altitude above the reference surface in metres.
///
/// # Examples
///
/// ```
/// use sesame_types::geo::GeoPoint;
///
/// let a = GeoPoint::new(35.0, 33.0, 50.0);
/// let b = a.destination(90.0, 1000.0);
/// assert!((a.haversine_distance_m(&b) - 1000.0).abs() < 1e-6);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct GeoPoint {
    /// Latitude in degrees, positive north.
    pub lat_deg: f64,
    /// Longitude in degrees, positive east.
    pub lon_deg: f64,
    /// Altitude above the reference surface in metres.
    pub alt_m: f64,
}

impl GeoPoint {
    /// Creates a geodetic point from latitude, longitude (degrees) and
    /// altitude (metres).
    pub fn new(lat_deg: f64, lon_deg: f64, alt_m: f64) -> Self {
        Self {
            lat_deg,
            lon_deg,
            alt_m,
        }
    }

    /// Great-circle (haversine) surface distance to `other` in metres,
    /// ignoring the altitude difference.
    ///
    /// This is the formula cited by the paper (\[38\]) for the final position
    /// refinement in collaborative localization.
    pub fn haversine_distance_m(&self, other: &GeoPoint) -> f64 {
        let (lat1, lon1) = (self.lat_deg.to_radians(), self.lon_deg.to_radians());
        let (lat2, lon2) = (other.lat_deg.to_radians(), other.lon_deg.to_radians());
        let dlat = lat2 - lat1;
        let dlon = lon2 - lon1;
        let a = (dlat / 2.0).sin().powi(2) + lat1.cos() * lat2.cos() * (dlon / 2.0).sin().powi(2);
        2.0 * EARTH_RADIUS_M * a.sqrt().asin()
    }

    /// Three-dimensional distance to `other` in metres: haversine surface
    /// distance combined with the altitude difference.
    pub fn distance_3d_m(&self, other: &GeoPoint) -> f64 {
        let horiz = self.haversine_distance_m(other);
        let dz = other.alt_m - self.alt_m;
        (horiz * horiz + dz * dz).sqrt()
    }

    /// Initial great-circle bearing from `self` to `other`, degrees in
    /// `[0, 360)` clockwise from true north.
    pub fn bearing_deg(&self, other: &GeoPoint) -> f64 {
        let (lat1, lon1) = (self.lat_deg.to_radians(), self.lon_deg.to_radians());
        let (lat2, lon2) = (other.lat_deg.to_radians(), other.lon_deg.to_radians());
        let dlon = lon2 - lon1;
        let y = dlon.sin() * lat2.cos();
        let x = lat1.cos() * lat2.sin() - lat1.sin() * lat2.cos() * dlon.cos();
        let deg = y.atan2(x).to_degrees();
        (deg + 360.0) % 360.0
    }

    /// Destination point reached by travelling `distance_m` metres along the
    /// great circle with initial bearing `bearing_deg` (degrees clockwise
    /// from north). Altitude is preserved.
    pub fn destination(&self, bearing_deg: f64, distance_m: f64) -> GeoPoint {
        let brg = bearing_deg.to_radians();
        let lat1 = self.lat_deg.to_radians();
        let lon1 = self.lon_deg.to_radians();
        let ang = distance_m / EARTH_RADIUS_M;
        let lat2 = (lat1.sin() * ang.cos() + lat1.cos() * ang.sin() * brg.cos()).asin();
        let lon2 =
            lon1 + (brg.sin() * ang.sin() * lat1.cos()).atan2(ang.cos() - lat1.sin() * lat2.sin());
        GeoPoint {
            lat_deg: lat2.to_degrees(),
            lon_deg: normalize_lon(lon2.to_degrees()),
            alt_m: self.alt_m,
        }
    }

    /// Returns a copy of this point with a different altitude.
    pub fn with_alt(&self, alt_m: f64) -> GeoPoint {
        GeoPoint { alt_m, ..*self }
    }

    /// Converts this point to local east-north-up coordinates relative to
    /// `origin`, using a small-area equirectangular approximation that is
    /// accurate to centimetres over SAR-mission scales (a few kilometres).
    pub fn to_enu(&self, origin: &GeoPoint) -> Enu {
        let lat0 = origin.lat_deg.to_radians();
        let east = (self.lon_deg - origin.lon_deg).to_radians() * lat0.cos() * EARTH_RADIUS_M;
        let north = (self.lat_deg - origin.lat_deg).to_radians() * EARTH_RADIUS_M;
        Enu {
            east_m: east,
            north_m: north,
            up_m: self.alt_m - origin.alt_m,
        }
    }

    /// Inverse of [`GeoPoint::to_enu`]: reconstructs the geodetic point that
    /// lies at local coordinates `enu` relative to `origin`.
    pub fn from_enu(origin: &GeoPoint, enu: Enu) -> GeoPoint {
        let lat0 = origin.lat_deg.to_radians();
        GeoPoint {
            lat_deg: origin.lat_deg + (enu.north_m / EARTH_RADIUS_M).to_degrees(),
            lon_deg: origin.lon_deg + (enu.east_m / (EARTH_RADIUS_M * lat0.cos())).to_degrees(),
            alt_m: origin.alt_m + enu.up_m,
        }
    }

    /// Linear interpolation between `self` and `other` with parameter
    /// `t ∈ [0, 1]`, in local coordinates. `t` is clamped.
    pub fn lerp(&self, other: &GeoPoint, t: f64) -> GeoPoint {
        let t = t.clamp(0.0, 1.0);
        let enu = other.to_enu(self);
        GeoPoint::from_enu(
            self,
            Enu {
                east_m: enu.east_m * t,
                north_m: enu.north_m * t,
                up_m: enu.up_m * t,
            },
        )
    }
}

impl fmt::Display for GeoPoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "({:.6}°, {:.6}°, {:.1} m)",
            self.lat_deg, self.lon_deg, self.alt_m
        )
    }
}

fn normalize_lon(lon: f64) -> f64 {
    let mut l = lon;
    while l > 180.0 {
        l -= 360.0;
    }
    while l < -180.0 {
        l += 360.0;
    }
    l
}

/// Local east-north-up coordinates in metres relative to some origin.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Enu {
    /// Metres east of the origin.
    pub east_m: f64,
    /// Metres north of the origin.
    pub north_m: f64,
    /// Metres above the origin.
    pub up_m: f64,
}

impl Enu {
    /// Creates an ENU offset.
    pub fn new(east_m: f64, north_m: f64, up_m: f64) -> Self {
        Self {
            east_m,
            north_m,
            up_m,
        }
    }

    /// Euclidean norm of the offset in metres.
    pub fn norm(&self) -> f64 {
        (self.east_m * self.east_m + self.north_m * self.north_m + self.up_m * self.up_m).sqrt()
    }

    /// Horizontal (east/north only) norm in metres.
    pub fn horizontal_norm(&self) -> f64 {
        (self.east_m * self.east_m + self.north_m * self.north_m).sqrt()
    }
}

/// A plain 3-vector used for velocities and local offsets (metres or m/s,
/// axes east/north/up).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Vec3 {
    /// X / east component.
    pub x: f64,
    /// Y / north component.
    pub y: f64,
    /// Z / up component.
    pub z: f64,
}

impl Vec3 {
    /// Creates a vector from components.
    pub fn new(x: f64, y: f64, z: f64) -> Self {
        Self { x, y, z }
    }

    /// The zero vector.
    pub fn zero() -> Self {
        Self::default()
    }

    /// Euclidean norm.
    pub fn norm(&self) -> f64 {
        (self.x * self.x + self.y * self.y + self.z * self.z).sqrt()
    }

    /// Returns the vector scaled by `k`.
    pub fn scaled(&self, k: f64) -> Vec3 {
        Vec3::new(self.x * k, self.y * k, self.z * k)
    }

    /// Returns a unit vector in the same direction, or zero if the norm is
    /// (numerically) zero.
    pub fn normalized(&self) -> Vec3 {
        let n = self.norm();
        if n < 1e-12 {
            Vec3::zero()
        } else {
            self.scaled(1.0 / n)
        }
    }

    /// Dot product with `other`.
    pub fn dot(&self, other: &Vec3) -> f64 {
        self.x * other.x + self.y * other.y + self.z * other.z
    }
}

impl std::ops::Add for Vec3 {
    type Output = Vec3;
    fn add(self, rhs: Vec3) -> Vec3 {
        Vec3::new(self.x + rhs.x, self.y + rhs.y, self.z + rhs.z)
    }
}

impl std::ops::Sub for Vec3 {
    type Output = Vec3;
    fn sub(self, rhs: Vec3) -> Vec3 {
        Vec3::new(self.x - rhs.x, self.y - rhs.y, self.z - rhs.z)
    }
}

impl std::ops::Mul<f64> for Vec3 {
    type Output = Vec3;
    fn mul(self, rhs: f64) -> Vec3 {
        self.scaled(rhs)
    }
}

impl From<Enu> for Vec3 {
    fn from(e: Enu) -> Vec3 {
        Vec3::new(e.east_m, e.north_m, e.up_m)
    }
}

impl From<Vec3> for Enu {
    fn from(v: Vec3) -> Enu {
        Enu::new(v.x, v.y, v.z)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn haversine_zero_for_identical_points() {
        let p = GeoPoint::new(35.0, 33.0, 100.0);
        assert_eq!(p.haversine_distance_m(&p), 0.0);
    }

    #[test]
    fn haversine_matches_known_pair() {
        // Paris -> London is about 344 km.
        let paris = GeoPoint::new(48.8566, 2.3522, 0.0);
        let london = GeoPoint::new(51.5074, -0.1278, 0.0);
        let d = paris.haversine_distance_m(&london);
        assert!((330_000.0..350_000.0).contains(&d), "d = {d}");
    }

    #[test]
    fn destination_round_trips_distance_and_bearing() {
        let start = GeoPoint::new(35.1, 33.4, 30.0);
        for bearing in [0.0, 45.0, 90.0, 180.0, 270.0, 359.0] {
            let dest = start.destination(bearing, 500.0);
            let d = start.haversine_distance_m(&dest);
            assert!(
                (d - 500.0).abs() < 1e-6,
                "distance {d} for bearing {bearing}"
            );
            let b = start.bearing_deg(&dest);
            let diff = (b - bearing).abs().min(360.0 - (b - bearing).abs());
            assert!(diff < 1e-6, "bearing {b} expected {bearing}");
        }
    }

    #[test]
    fn enu_round_trip() {
        let origin = GeoPoint::new(35.0, 33.0, 10.0);
        let p = GeoPoint::new(35.003, 33.004, 60.0);
        let enu = p.to_enu(&origin);
        let back = GeoPoint::from_enu(&origin, enu);
        assert!(p.haversine_distance_m(&back) < 0.01);
        assert!((p.alt_m - back.alt_m).abs() < 1e-9);
    }

    #[test]
    fn enu_distance_agrees_with_haversine_at_small_scale() {
        let origin = GeoPoint::new(35.0, 33.0, 0.0);
        let p = origin.destination(37.0, 1200.0);
        let enu = p.to_enu(&origin);
        assert!((enu.horizontal_norm() - 1200.0).abs() < 1.0);
    }

    #[test]
    fn bearing_east_is_90() {
        let a = GeoPoint::new(0.0, 0.0, 0.0);
        let b = GeoPoint::new(0.0, 1.0, 0.0);
        assert!((a.bearing_deg(&b) - 90.0).abs() < 1e-9);
    }

    #[test]
    fn lerp_endpoints_and_midpoint() {
        let a = GeoPoint::new(35.0, 33.0, 0.0);
        let b = a.destination(90.0, 1000.0);
        assert!(a.lerp(&b, 0.0).haversine_distance_m(&a) < 1e-9);
        assert!(a.lerp(&b, 1.0).haversine_distance_m(&b) < 0.01);
        let mid = a.lerp(&b, 0.5);
        assert!((a.haversine_distance_m(&mid) - 500.0).abs() < 0.5);
    }

    #[test]
    fn lerp_clamps_parameter() {
        let a = GeoPoint::new(35.0, 33.0, 0.0);
        let b = a.destination(0.0, 100.0);
        assert!(a.lerp(&b, -1.0).haversine_distance_m(&a) < 1e-9);
        assert!(a.lerp(&b, 2.0).haversine_distance_m(&b) < 0.01);
    }

    #[test]
    fn distance_3d_includes_altitude() {
        let a = GeoPoint::new(35.0, 33.0, 0.0);
        let b = a.with_alt(30.0);
        assert!((a.distance_3d_m(&b) - 30.0).abs() < 1e-9);
    }

    #[test]
    fn vec3_algebra() {
        let v = Vec3::new(3.0, 4.0, 0.0);
        assert!((v.norm() - 5.0).abs() < 1e-12);
        assert!((v.normalized().norm() - 1.0).abs() < 1e-12);
        let w = v + Vec3::new(1.0, 1.0, 1.0);
        assert_eq!(w, Vec3::new(4.0, 5.0, 1.0));
        assert_eq!((w - v), Vec3::new(1.0, 1.0, 1.0));
        assert_eq!(v * 2.0, Vec3::new(6.0, 8.0, 0.0));
        assert!((v.dot(&Vec3::new(0.0, 0.0, 1.0))).abs() < 1e-12);
        assert_eq!(Vec3::zero().normalized(), Vec3::zero());
    }

    #[test]
    fn lon_normalization_wraps() {
        let p = GeoPoint::new(0.0, 179.9, 0.0);
        let d = p.destination(90.0, 50_000.0);
        assert!(d.lon_deg < -179.0 || d.lon_deg > 179.9);
        assert!((-180.0..=180.0).contains(&d.lon_deg));
    }
}
