//! Cross-cutting event model.
//!
//! Faults injected by the simulator, alerts raised by the IDS, decisions
//! taken by ConSerts — everything observable lands in one [`EventLog`] so
//! that tests and experiment harnesses can assert on ordered, timestamped
//! histories.

use crate::ids::{TaskId, UavId};
use crate::time::SimTime;
use std::fmt;

/// Coarse severity scale shared by safety and security events.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Informational: normal operation milestones.
    Info,
    /// Degraded but mission-capable.
    Warning,
    /// Requires a mitigation (hold, descend, reallocate).
    Critical,
    /// Requires aborting the affected UAV (emergency land / RTB).
    Emergency,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Severity::Info => "INFO",
            Severity::Warning => "WARNING",
            Severity::Critical => "CRITICAL",
            Severity::Emergency => "EMERGENCY",
        };
        f.write_str(s)
    }
}

/// Everything the platform can observe or decide, in one enum.
#[derive(Debug, Clone, PartialEq)]
pub enum SystemEvent {
    /// A UAV took off.
    TakeOff(UavId),
    /// A UAV landed (reason in the message).
    Landed(UavId, String),
    /// The simulator injected a fault.
    FaultInjected { uav: UavId, fault: String },
    /// A runtime monitor raised a finding.
    MonitorFinding {
        uav: UavId,
        monitor: String,
        severity: Severity,
        detail: String,
    },
    /// The IDS published an alert.
    SecurityAlert {
        uav: UavId,
        rule: String,
        severity: Severity,
    },
    /// An attack tree root was reached (adversary goal achieved / detected).
    AttackGoalDetected { uav: UavId, tree: String },
    /// A ConSert changed its top guarantee for a UAV.
    ConsertDecision { uav: UavId, guarantee: String },
    /// The mission-level decider reallocated a task.
    TaskReallocated {
        task: TaskId,
        from: UavId,
        to: UavId,
    },
    /// A person was detected by the SAR pipeline.
    PersonDetected {
        uav: UavId,
        confidence: f64,
        true_positive: bool,
    },
    /// Collaborative localization produced a position estimate.
    CollabFix { uav: UavId, error_m: f64 },
    /// The mission completed (fully or partially).
    MissionComplete { completed_fraction: f64 },
    /// Free-form note for anything else worth recording.
    Note(String),
}

/// A [`SystemEvent`] stamped with its simulation time.
#[derive(Debug, Clone, PartialEq)]
pub struct TimedEvent {
    /// When the event happened.
    pub time: SimTime,
    /// What happened.
    pub event: SystemEvent,
}

/// An append-only, time-ordered event history.
///
/// # Examples
///
/// ```
/// use sesame_types::events::{EventLog, SystemEvent};
/// use sesame_types::ids::UavId;
/// use sesame_types::time::SimTime;
///
/// let mut log = EventLog::new();
/// log.push(SimTime::from_secs(1), SystemEvent::TakeOff(UavId::new(1)));
/// assert_eq!(log.len(), 1);
/// assert!(log.iter().any(|e| matches!(e.event, SystemEvent::TakeOff(_))));
/// ```
#[derive(Debug, Clone, Default)]
pub struct EventLog {
    events: Vec<TimedEvent>,
}

impl EventLog {
    /// Creates an empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends an event at `time`.
    ///
    /// # Panics
    ///
    /// Panics if `time` is earlier than the last recorded event — the log is
    /// a faithful history and must stay monotone.
    pub fn push(&mut self, time: SimTime, event: SystemEvent) {
        if let Some(last) = self.events.last() {
            assert!(
                time >= last.time,
                "event log must be time-monotone: {time} < {}",
                last.time
            );
        }
        self.events.push(TimedEvent { time, event });
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the log is empty.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Iterates over the events in time order.
    pub fn iter(&self) -> std::slice::Iter<'_, TimedEvent> {
        self.events.iter()
    }

    /// The first event matching `pred`, if any.
    pub fn first_matching<F>(&self, pred: F) -> Option<&TimedEvent>
    where
        F: Fn(&SystemEvent) -> bool,
    {
        self.events.iter().find(|e| pred(&e.event))
    }

    /// Events within the half-open window `[from, to)`.
    pub fn window(&self, from: SimTime, to: SimTime) -> impl Iterator<Item = &TimedEvent> {
        self.events
            .iter()
            .filter(move |e| e.time >= from && e.time < to)
    }
}

impl<'a> IntoIterator for &'a EventLog {
    type Item = &'a TimedEvent;
    type IntoIter = std::slice::Iter<'a, TimedEvent>;
    fn into_iter(self) -> Self::IntoIter {
        self.events.iter()
    }
}

impl Extend<TimedEvent> for EventLog {
    fn extend<T: IntoIterator<Item = TimedEvent>>(&mut self, iter: T) {
        for e in iter {
            self.push(e.time, e.event);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn uav() -> UavId {
        UavId::new(1)
    }

    #[test]
    fn log_preserves_order_and_counts() {
        let mut log = EventLog::new();
        assert!(log.is_empty());
        log.push(SimTime::from_secs(1), SystemEvent::TakeOff(uav()));
        log.push(
            SimTime::from_secs(2),
            SystemEvent::FaultInjected {
                uav: uav(),
                fault: "battery_overtemp".into(),
            },
        );
        assert_eq!(log.len(), 2);
        let times: Vec<_> = log.iter().map(|e| e.time.as_millis()).collect();
        assert_eq!(times, vec![1000, 2000]);
    }

    #[test]
    #[should_panic(expected = "time-monotone")]
    fn log_rejects_time_travel() {
        let mut log = EventLog::new();
        log.push(SimTime::from_secs(5), SystemEvent::Note("a".into()));
        log.push(SimTime::from_secs(4), SystemEvent::Note("b".into()));
    }

    #[test]
    fn first_matching_and_window() {
        let mut log = EventLog::new();
        for s in 0..10u64 {
            log.push(SimTime::from_secs(s), SystemEvent::Note(format!("n{s}")));
        }
        log.push(
            SimTime::from_secs(10),
            SystemEvent::SecurityAlert {
                uav: uav(),
                rule: "spoof".into(),
                severity: Severity::Critical,
            },
        );
        let hit = log
            .first_matching(|e| matches!(e, SystemEvent::SecurityAlert { .. }))
            .expect("alert present");
        assert_eq!(hit.time, SimTime::from_secs(10));
        let count = log
            .window(SimTime::from_secs(2), SimTime::from_secs(5))
            .count();
        assert_eq!(count, 3);
    }

    #[test]
    fn severity_is_ordered() {
        assert!(Severity::Info < Severity::Warning);
        assert!(Severity::Warning < Severity::Critical);
        assert!(Severity::Critical < Severity::Emergency);
        assert_eq!(Severity::Emergency.to_string(), "EMERGENCY");
    }

    #[test]
    fn extend_appends_in_order() {
        let mut log = EventLog::new();
        log.extend((0..3).map(|s| TimedEvent {
            time: SimTime::from_secs(s),
            event: SystemEvent::Note(format!("{s}")),
        }));
        assert_eq!(log.len(), 3);
    }
}
