//! Strongly-typed identifiers.
//!
//! Newtypes keep UAV, mission, task and topic identifiers from being mixed
//! up at compile time (C-NEWTYPE). All of them are cheap `Copy`/`Clone`
//! values except [`TopicName`], which wraps a string path like
//! `"/uav1/telemetry"`.

use std::fmt;

/// Identifier of a single UAV in the fleet (the paper's platform hosts
/// three, but any count is supported).
///
/// # Examples
///
/// ```
/// use sesame_types::ids::UavId;
///
/// let u = UavId::new(1);
/// assert_eq!(u.to_string(), "uav1");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct UavId(u32);

impl UavId {
    /// Creates a UAV id from a small integer.
    pub fn new(n: u32) -> Self {
        UavId(n)
    }

    /// The raw index.
    pub fn index(&self) -> u32 {
        self.0
    }
}

impl fmt::Display for UavId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "uav{}", self.0)
    }
}

/// Identifier of a mission managed by the ground control station.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct MissionId(u32);

impl MissionId {
    /// Creates a mission id.
    pub fn new(n: u32) -> Self {
        MissionId(n)
    }

    /// The raw index.
    pub fn index(&self) -> u32 {
        self.0
    }
}

impl fmt::Display for MissionId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "mission{}", self.0)
    }
}

/// Identifier of a task inside a mission (e.g. one coverage strip of the
/// search area).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct TaskId(u32);

impl TaskId {
    /// Creates a task id.
    pub fn new(n: u32) -> Self {
        TaskId(n)
    }

    /// The raw index.
    pub fn index(&self) -> u32 {
        self.0
    }
}

impl fmt::Display for TaskId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "task{}", self.0)
    }
}

/// A slash-separated topic path on the message bus, e.g.
/// `"/uav1/cmd/waypoint"`.
///
/// Topic names are plain data; pattern matching (MQTT-style `+`/`#`
/// wildcards) lives in `sesame-middleware`.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct TopicName(String);

impl TopicName {
    /// Creates a topic name from any string-like value.
    pub fn new(s: impl Into<String>) -> Self {
        TopicName(s.into())
    }

    /// The topic path as a string slice.
    pub fn as_str(&self) -> &str {
        &self.0
    }

    /// The slash-separated segments of the topic path, ignoring a leading
    /// slash.
    pub fn segments(&self) -> impl Iterator<Item = &str> {
        self.0.split('/').filter(|s| !s.is_empty())
    }
}

impl fmt::Display for TopicName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl From<&str> for TopicName {
    fn from(s: &str) -> Self {
        TopicName::new(s)
    }
}

impl From<String> for TopicName {
    fn from(s: String) -> Self {
        TopicName::new(s)
    }
}

impl AsRef<str> for TopicName {
    fn as_ref(&self) -> &str {
        self.as_str()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn ids_display_and_roundtrip() {
        assert_eq!(UavId::new(2).to_string(), "uav2");
        assert_eq!(UavId::new(2).index(), 2);
        assert_eq!(MissionId::new(7).to_string(), "mission7");
        assert_eq!(TaskId::new(3).to_string(), "task3");
        assert_eq!(TaskId::new(3).index(), 3);
        assert_eq!(MissionId::new(9).index(), 9);
    }

    #[test]
    fn ids_are_hashable_and_ordered() {
        let mut set = HashSet::new();
        set.insert(UavId::new(1));
        set.insert(UavId::new(1));
        set.insert(UavId::new(2));
        assert_eq!(set.len(), 2);
        assert!(UavId::new(1) < UavId::new(2));
    }

    #[test]
    fn topic_segments_skip_leading_slash() {
        let t = TopicName::new("/uav1/cmd/waypoint");
        let segs: Vec<_> = t.segments().collect();
        assert_eq!(segs, vec!["uav1", "cmd", "waypoint"]);
        assert_eq!(t.as_str(), "/uav1/cmd/waypoint");
        assert_eq!(t.as_ref(), "/uav1/cmd/waypoint");
    }

    #[test]
    fn topic_from_conversions() {
        let a: TopicName = "/x".into();
        let b: TopicName = String::from("/x").into();
        assert_eq!(a, b);
    }
}
