//! Telemetry records shared between the simulator, the middleware and the
//! EDDI monitors.
//!
//! One [`UavTelemetry`] snapshot is produced per UAV per tick; it carries
//! exactly the signals the paper's runtime monitors consume: position and
//! velocity, battery state-of-charge and temperature (SafeDrones §III-A1),
//! GPS quality factors (GPS localization ConSert), motor health, and the
//! autopilot flight mode.

use crate::geo::{GeoPoint, Vec3};
use crate::ids::UavId;
use crate::time::SimTime;

/// The autopilot's top-level flight mode — the actuation vocabulary of the
/// UAV ConSert in Fig. 1 of the paper (continue mission, hold position,
/// return to base / land, emergency land).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum FlightMode {
    /// On the ground, motors off.
    #[default]
    Grounded,
    /// Executing the uploaded mission waypoints.
    Mission,
    /// Hovering in place waiting for a critical situation to resolve.
    Hold,
    /// Flying back to the launch point to land.
    ReturnToBase,
    /// Controlled descent at the current (or commanded) location.
    Land,
    /// Immediate minimal-risk descent.
    EmergencyLand,
}

impl FlightMode {
    /// Whether the UAV is airborne in this mode.
    pub fn is_airborne(&self) -> bool {
        !matches!(self, FlightMode::Grounded)
    }

    /// Whether this mode still contributes to the SAR mission (scanning its
    /// assigned area). Used by the availability metric of §V-A.
    pub fn is_productive(&self) -> bool {
        matches!(self, FlightMode::Mission)
    }
}

/// GPS receiver quality snapshot — the "GPS-related quality factors" the GPS
/// localization ConSert monitors.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GpsFix {
    /// Whether the receiver reports a 3-D fix at all.
    pub has_fix: bool,
    /// Number of satellites used in the solution.
    pub satellites: u8,
    /// Horizontal dilution of precision (lower is better; < 2 is good).
    pub hdop: f64,
    /// The position reported by the receiver (spoofed if under attack).
    pub position: GeoPoint,
}

impl GpsFix {
    /// A lost-signal fix: no satellites, unusable.
    pub fn lost(last_position: GeoPoint) -> Self {
        GpsFix {
            has_fix: false,
            satellites: 0,
            hdop: 99.9,
            position: last_position,
        }
    }

    /// Rough usability check used by the navigation ConSert: a 3-D fix with
    /// at least 6 satellites and HDOP below 2.5.
    pub fn is_usable(&self) -> bool {
        self.has_fix && self.satellites >= 6 && self.hdop < 2.5
    }
}

impl Default for GpsFix {
    fn default() -> Self {
        GpsFix {
            has_fix: true,
            satellites: 12,
            hdop: 0.8,
            position: GeoPoint::default(),
        }
    }
}

/// One per-tick telemetry snapshot for a UAV.
#[derive(Debug, Clone, PartialEq)]
pub struct UavTelemetry {
    /// Which UAV produced the snapshot.
    pub uav: UavId,
    /// Simulation time of the snapshot.
    pub time: SimTime,
    /// Ground-truth position (what the simulator knows; the platform should
    /// use `gps` or fused estimates instead).
    pub true_position: GeoPoint,
    /// Velocity in local ENU metres/second.
    pub velocity: Vec3,
    /// Battery state of charge in `[0, 1]`.
    pub battery_soc: f64,
    /// Battery temperature in °C.
    pub battery_temp_c: f64,
    /// Per-motor health flags (`true` = operational).
    pub motors_ok: Vec<bool>,
    /// GPS receiver output.
    pub gps: GpsFix,
    /// Vision sensor health in `[0, 1]` (1 = nominal).
    pub vision_health: f64,
    /// Radio link quality to the ground station in `[0, 1]`.
    pub link_quality: f64,
    /// Current autopilot mode.
    pub mode: FlightMode,
}

impl UavTelemetry {
    /// A nominal snapshot at `position`, useful as a test fixture and as a
    /// starting point for builders.
    pub fn nominal(uav: UavId, time: SimTime, position: GeoPoint) -> Self {
        UavTelemetry {
            uav,
            time,
            true_position: position,
            velocity: Vec3::zero(),
            battery_soc: 1.0,
            battery_temp_c: 25.0,
            motors_ok: vec![true; 4],
            gps: GpsFix {
                position,
                ..GpsFix::default()
            },
            vision_health: 1.0,
            link_quality: 1.0,
            mode: FlightMode::Grounded,
        }
    }

    /// Number of failed motors in this snapshot.
    pub fn failed_motors(&self) -> usize {
        self.motors_ok.iter().filter(|ok| !**ok).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flight_mode_classification() {
        assert!(!FlightMode::Grounded.is_airborne());
        assert!(FlightMode::Mission.is_airborne());
        assert!(FlightMode::Mission.is_productive());
        assert!(!FlightMode::Hold.is_productive());
        assert!(!FlightMode::EmergencyLand.is_productive());
        assert_eq!(FlightMode::default(), FlightMode::Grounded);
    }

    #[test]
    fn gps_usability_thresholds() {
        let mut fix = GpsFix::default();
        assert!(fix.is_usable());
        fix.satellites = 5;
        assert!(!fix.is_usable());
        fix.satellites = 8;
        fix.hdop = 3.0;
        assert!(!fix.is_usable());
        let lost = GpsFix::lost(GeoPoint::default());
        assert!(!lost.is_usable());
        assert!(!lost.has_fix);
    }

    #[test]
    fn nominal_telemetry_is_healthy() {
        let t = UavTelemetry::nominal(UavId::new(1), SimTime::ZERO, GeoPoint::new(35.0, 33.0, 0.0));
        assert_eq!(t.failed_motors(), 0);
        assert_eq!(t.battery_soc, 1.0);
        assert!(t.gps.is_usable());
    }

    #[test]
    fn failed_motor_count() {
        let mut t =
            UavTelemetry::nominal(UavId::new(1), SimTime::ZERO, GeoPoint::new(35.0, 33.0, 0.0));
        t.motors_ok = vec![true, false, true, false];
        assert_eq!(t.failed_motors(), 2);
    }
}
