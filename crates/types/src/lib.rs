//! Shared primitives for the SESAME multi-UAV stack.
//!
//! This crate hosts the vocabulary types used by every other crate in the
//! workspace: geodetic positions and the spherical-earth geodesy the paper's
//! collaborative-localization tool relies on (haversine distances, bearings,
//! destination points), simulation time, strongly-typed identifiers,
//! telemetry records, and the cross-cutting event model.
//!
//! Everything here is deliberately free of behaviour-heavy dependencies so
//! that substrate crates (`sesame-uav-sim`, `sesame-middleware`, …) and
//! technology crates (`sesame-safedrones`, `sesame-conserts`, …) can share a
//! common language without coupling to each other.
//!
//! # Examples
//!
//! ```
//! use sesame_types::geo::GeoPoint;
//!
//! let nicosia = GeoPoint::new(35.1856, 33.3823, 0.0);
//! let limassol = GeoPoint::new(34.7071, 33.0226, 0.0);
//! let d = nicosia.haversine_distance_m(&limassol);
//! assert!((60_000.0..70_000.0).contains(&d));
//! ```

pub mod arena;
pub mod events;
pub mod geo;
pub mod ids;
pub mod inline;
pub mod telemetry;
pub mod time;

/// Compile-time proof that types are `Send + Sync` (and so may cross
/// the parallel campaign executor's worker threads). Expands to a
/// `const` block that fails to compile — with the offending type in the
/// error — if any listed type loses thread-safety, e.g. by growing an
/// `Rc` or un-`Sync` interior mutability.
///
/// ```
/// sesame_types::assert_send_sync!(sesame_types::GeoPoint, sesame_types::UavId);
/// ```
#[macro_export]
macro_rules! assert_send_sync {
    ($($ty:ty),+ $(,)?) => {
        const _: () = {
            const fn _assert_send_sync<T: Send + Sync>() {}
            $(_assert_send_sync::<$ty>();)+
        };
    };
}

pub use arena::ScratchArena;
pub use events::{EventLog, Severity, SystemEvent, TimedEvent};
pub use geo::{Enu, GeoPoint, Vec3};
pub use ids::{MissionId, TaskId, TopicName, UavId};
pub use inline::InlineVec;
pub use telemetry::{FlightMode, GpsFix, UavTelemetry};
pub use time::{SimClock, SimDuration, SimTime};

// The vocabulary types cross worker threads in parallel sweeps.
assert_send_sync!(
    ScratchArena,
    InlineVec<u64, 4>,
    EventLog,
    TimedEvent,
    GeoPoint,
    Enu,
    Vec3,
    UavId,
    UavTelemetry,
    SimTime,
    SimDuration
);
