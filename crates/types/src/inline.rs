//! `InlineVec<T, N>`: a std-only small-vector with inline storage.
//!
//! The tick pipeline's hottest collections — bus route tables, attack-tree
//! child lists, solve-class member lists, detection-event buffers — are
//! almost always tiny (a handful of entries) but were stored in `Vec`s,
//! which heap-allocate on first push and again on growth. `InlineVec`
//! keeps up to `N` elements in a fixed inline array and only *spills* to a
//! heap `Vec` when the length exceeds `N`. Steady-state ticks whose
//! collections stay within `N` therefore perform zero allocations.
//!
//! Design constraints, in order:
//! * **No `unsafe`.** Inline storage is a plain `[T; N]` initialised with
//!   `T::default()`, so every slot is always a live value and slices can
//!   be handed out safely. That costs `T: Default + Clone` (satisfied by
//!   the hot element types: indices, ids, small Copy structs) instead of
//!   `MaybeUninit` gymnastics.
//! * **`Vec`-compatible observable behaviour.** `push`, `pop`, `clear`,
//!   `len`, iteration order and slice contents match `Vec<T>` exactly —
//!   the property tests in `crates/types/tests/inline_vec.rs` pin this by
//!   driving both through randomized operation schedules.
//! * **One-way spill.** Once spilled, the buffer stays heap-backed until
//!   `clear()`; shrinking back on `pop` would thrash at the boundary.
//!
//! # Examples
//!
//! ```
//! use sesame_types::inline::InlineVec;
//!
//! let mut v: InlineVec<u32, 4> = InlineVec::new();
//! for i in 0..4 {
//!     v.push(i);
//! }
//! assert!(!v.spilled());
//! v.push(99); // fifth element: spills to the heap
//! assert!(v.spilled());
//! assert_eq!(v.as_slice(), &[0, 1, 2, 3, 99]);
//! ```

use std::fmt;
use std::ops::{Deref, DerefMut};

/// A growable vector that stores up to `N` elements inline and spills to
/// a heap `Vec` beyond that. See the module docs for the contract.
#[derive(Clone)]
pub enum InlineVec<T, const N: usize> {
    /// Inline storage: `buf[..len]` are the live elements, `buf[len..]`
    /// hold default placeholders.
    Inline {
        /// Number of live elements in `buf`.
        len: usize,
        /// Fixed inline storage.
        buf: [T; N],
    },
    /// Heap storage after exceeding `N` elements.
    Spilled(Vec<T>),
}

impl<T: Default + Clone, const N: usize> InlineVec<T, N> {
    /// Creates an empty vector (no heap allocation).
    pub fn new() -> Self {
        InlineVec::Inline {
            len: 0,
            buf: std::array::from_fn(|_| T::default()),
        }
    }

    /// Appends an element, spilling to the heap when the inline capacity
    /// is exceeded.
    pub fn push(&mut self, value: T) {
        match self {
            InlineVec::Inline { len, buf } => {
                if *len < N {
                    buf[*len] = value;
                    *len += 1;
                } else {
                    let mut v = Vec::with_capacity(N * 2);
                    v.extend_from_slice(&buf[..*len]);
                    v.push(value);
                    *self = InlineVec::Spilled(v);
                }
            }
            InlineVec::Spilled(v) => v.push(value),
        }
    }

    /// Removes and returns the last element, or `None` when empty. A
    /// popped inline slot is reset to `T::default()` so the storage
    /// invariant (every slot live) holds.
    pub fn pop(&mut self) -> Option<T> {
        match self {
            InlineVec::Inline { len, buf } => {
                if *len == 0 {
                    None
                } else {
                    *len -= 1;
                    Some(std::mem::take(&mut buf[*len]))
                }
            }
            InlineVec::Spilled(v) => v.pop(),
        }
    }

    /// Drops every element. A spilled buffer returns to inline storage
    /// only via [`InlineVec::reset`]; `clear` keeps the heap capacity so
    /// a hot loop that spilled once does not re-allocate every tick.
    pub fn clear(&mut self) {
        match self {
            InlineVec::Inline { len, buf } => {
                for slot in &mut buf[..*len] {
                    *slot = T::default();
                }
                *len = 0;
            }
            InlineVec::Spilled(v) => v.clear(),
        }
    }

    /// Clears and returns to inline storage, releasing any heap buffer.
    pub fn reset(&mut self) {
        *self = InlineVec::new();
    }

    /// Number of live elements.
    pub fn len(&self) -> usize {
        match self {
            InlineVec::Inline { len, .. } => *len,
            InlineVec::Spilled(v) => v.len(),
        }
    }

    /// Whether the vector is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Whether the contents have spilled to the heap.
    pub fn spilled(&self) -> bool {
        matches!(self, InlineVec::Spilled(_))
    }

    /// The live elements as a slice.
    pub fn as_slice(&self) -> &[T] {
        match self {
            InlineVec::Inline { len, buf } => &buf[..*len],
            InlineVec::Spilled(v) => v.as_slice(),
        }
    }

    /// The live elements as a mutable slice.
    pub fn as_mut_slice(&mut self) -> &mut [T] {
        match self {
            InlineVec::Inline { len, buf } => &mut buf[..*len],
            InlineVec::Spilled(v) => v.as_mut_slice(),
        }
    }

    /// Iterates over the live elements.
    pub fn iter(&self) -> std::slice::Iter<'_, T> {
        self.as_slice().iter()
    }

    /// Appends every element of `slice`.
    pub fn extend_from_slice(&mut self, slice: &[T]) {
        for item in slice {
            self.push(item.clone());
        }
    }

    /// Moves the live elements out, leaving the vector empty.
    pub fn drain_to_vec(&mut self) -> Vec<T> {
        match self {
            InlineVec::Inline { len, buf } => {
                let mut out = Vec::with_capacity(*len);
                for slot in &mut buf[..*len] {
                    out.push(std::mem::take(slot));
                }
                *len = 0;
                out
            }
            InlineVec::Spilled(v) => std::mem::take(v),
        }
    }
}

impl<T: Default + Clone, const N: usize> Default for InlineVec<T, N> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T: Default + Clone, const N: usize> Deref for InlineVec<T, N> {
    type Target = [T];

    fn deref(&self) -> &[T] {
        self.as_slice()
    }
}

impl<T: Default + Clone, const N: usize> DerefMut for InlineVec<T, N> {
    fn deref_mut(&mut self) -> &mut [T] {
        self.as_mut_slice()
    }
}

impl<T: Default + Clone + fmt::Debug, const N: usize> fmt::Debug for InlineVec<T, N> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_list().entries(self.as_slice()).finish()
    }
}

impl<T: Default + Clone + PartialEq, const N: usize> PartialEq for InlineVec<T, N> {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl<T: Default + Clone + Eq, const N: usize> Eq for InlineVec<T, N> {}

impl<T: Default + Clone + std::hash::Hash, const N: usize> std::hash::Hash for InlineVec<T, N> {
    /// Hashes as the contained slice (like `Vec`): an inline and a
    /// spilled vector with equal elements hash equally.
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state);
    }
}

impl<T: Default + Clone + PartialOrd, const N: usize> PartialOrd for InlineVec<T, N> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        self.as_slice().partial_cmp(other.as_slice())
    }
}

impl<T: Default + Clone + Ord, const N: usize> Ord for InlineVec<T, N> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.as_slice().cmp(other.as_slice())
    }
}

impl<T: Default + Clone, const N: usize> FromIterator<T> for InlineVec<T, N> {
    fn from_iter<I: IntoIterator<Item = T>>(iter: I) -> Self {
        let mut v = InlineVec::new();
        for item in iter {
            v.push(item);
        }
        v
    }
}

impl<'a, T: Default + Clone, const N: usize> IntoIterator for &'a InlineVec<T, N> {
    type Item = &'a T;
    type IntoIter = std::slice::Iter<'a, T>;

    fn into_iter(self) -> Self::IntoIter {
        self.as_slice().iter()
    }
}

impl<T: Default + Clone, const N: usize> Extend<T> for InlineVec<T, N> {
    fn extend<I: IntoIterator<Item = T>>(&mut self, iter: I) {
        for item in iter {
            self.push(item);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stays_inline_up_to_capacity() {
        let mut v: InlineVec<usize, 3> = InlineVec::new();
        assert!(v.is_empty());
        for i in 0..3 {
            v.push(i);
            assert!(!v.spilled(), "still inline at len {}", v.len());
        }
        assert_eq!(v.as_slice(), &[0, 1, 2]);
        assert_eq!(v.len(), 3);
    }

    #[test]
    fn spills_beyond_capacity_and_preserves_order() {
        let mut v: InlineVec<usize, 2> = InlineVec::new();
        for i in 0..5 {
            v.push(i);
        }
        assert!(v.spilled());
        assert_eq!(v.as_slice(), &[0, 1, 2, 3, 4]);
    }

    #[test]
    fn pop_matches_vec_semantics_across_the_spill_boundary() {
        let mut v: InlineVec<u8, 2> = InlineVec::new();
        let mut oracle: Vec<u8> = Vec::new();
        for i in 0..4 {
            v.push(i);
            oracle.push(i);
        }
        for _ in 0..5 {
            assert_eq!(v.pop(), oracle.pop());
            assert_eq!(v.as_slice(), oracle.as_slice());
        }
    }

    #[test]
    fn clear_keeps_spilled_capacity_reset_releases_it() {
        let mut v: InlineVec<u32, 1> = InlineVec::new();
        v.push(1);
        v.push(2);
        assert!(v.spilled());
        v.clear();
        assert!(v.is_empty());
        assert!(v.spilled(), "clear keeps the heap buffer");
        v.reset();
        assert!(!v.spilled(), "reset returns to inline storage");
    }

    #[test]
    fn mutable_slice_and_iteration() {
        let mut v: InlineVec<i64, 4> = (0..4).collect();
        for x in v.as_mut_slice() {
            *x *= 10;
        }
        assert_eq!(v.iter().copied().collect::<Vec<_>>(), vec![0, 10, 20, 30]);
        assert_eq!(v[2], 20, "deref to slice indexes");
    }

    #[test]
    fn drain_to_vec_empties_both_representations() {
        let mut inline: InlineVec<u8, 4> = (0..3).collect();
        assert_eq!(inline.drain_to_vec(), vec![0, 1, 2]);
        assert!(inline.is_empty());
        let mut spilled: InlineVec<u8, 2> = (0..4).collect();
        assert_eq!(spilled.drain_to_vec(), vec![0, 1, 2, 3]);
        assert!(spilled.is_empty());
    }

    #[test]
    fn equality_ignores_representation() {
        let inline: InlineVec<u8, 8> = (0..3).collect();
        let mut spilled: InlineVec<u8, 1> = (0..3).collect();
        assert!(spilled.spilled());
        assert_eq!(inline.as_slice(), spilled.as_slice());
        spilled.push(9);
        assert_ne!(inline.as_slice(), spilled.as_slice());
    }
}
