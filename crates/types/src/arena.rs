//! A reusable per-tick scratch arena.
//!
//! The orchestrator's tick pipeline used to allocate fresh `Vec`s for its
//! per-tick temporaries — solved Markov distributions, telemetry staging,
//! per-phase index lists — on every single tick. [`ScratchArena`] is a
//! bump-style pool: buffers are *leased* with [`ScratchArena::take_f64`],
//! used for the duration of one tick phase, and *returned* with
//! [`ScratchArena::give_f64`]. The arena keeps returned buffers (capacity
//! intact) and hands them back on the next lease, so after a warm-up tick
//! the steady state performs **zero heap allocations**: the arena grows
//! monotonically to its high-water mark and then only recycles.
//!
//! Lifetime rules (also documented in DESIGN.md "Hot-loop memory
//! discipline"):
//!
//! 1. A leased buffer is owned by exactly one tick phase and must be
//!    returned before the tick ends (the orchestrator returns its leases
//!    at the end of the solve/finish phases).
//! 2. Leased buffers arrive **empty** (`len == 0`) but with whatever
//!    capacity history left behind; callers must not assume contents.
//! 3. Losing a buffer (dropping instead of returning) is safe but
//!    regresses the zero-alloc property — [`ScratchArena::stats`] exposes
//!    lease/recycle counters so benches can assert recycling works.
//!
//! The arena is deliberately type-narrow (`f64` and `usize` pools cover
//! the tick pipeline's hot temporaries) instead of a raw byte bump
//! allocator: leases stay ordinary `Vec`s, no `unsafe`, and the borrow
//! checker keeps phase ownership honest.
//!
//! # Examples
//!
//! ```
//! use sesame_types::arena::ScratchArena;
//!
//! let mut arena = ScratchArena::new();
//! let mut buf = arena.take_f64(4); // warm-up: allocates once
//! buf.extend_from_slice(&[1.0, 2.0, 3.0, 4.0]);
//! arena.give_f64(buf);
//! let again = arena.take_f64(4); // steady state: recycled, no allocation
//! assert!(again.capacity() >= 4);
//! assert!(again.is_empty());
//! assert_eq!(arena.stats().recycled, 1);
//! ```

/// Lease/recycle counters of a [`ScratchArena`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ArenaStats {
    /// Total buffer leases served.
    pub leases: u64,
    /// Leases served from the pool (no allocation).
    pub recycled: u64,
    /// Buffers currently held by the pool, across both type pools.
    pub pooled: usize,
}

/// A bump-style pool of reusable scratch buffers. See the module docs for
/// the ownership contract.
#[derive(Debug, Default)]
pub struct ScratchArena {
    f64_pool: Vec<Vec<f64>>,
    usize_pool: Vec<Vec<usize>>,
    leases: u64,
    recycled: u64,
}

impl ScratchArena {
    /// An empty arena; pools fill as buffers are returned.
    pub fn new() -> Self {
        Self::default()
    }

    /// Leases an empty `f64` buffer with capacity at least `capacity`.
    /// Recycles a pooled buffer when one exists (growing it in place if
    /// its capacity is short), otherwise allocates a fresh one.
    pub fn take_f64(&mut self, capacity: usize) -> Vec<f64> {
        self.leases += 1;
        match self.f64_pool.pop() {
            Some(mut buf) => {
                self.recycled += 1;
                buf.clear();
                if buf.capacity() < capacity {
                    buf.reserve(capacity - buf.len());
                }
                buf
            }
            None => Vec::with_capacity(capacity),
        }
    }

    /// Returns a leased `f64` buffer to the pool.
    pub fn give_f64(&mut self, buf: Vec<f64>) {
        self.f64_pool.push(buf);
    }

    /// Leases an empty `usize` buffer with capacity at least `capacity`.
    pub fn take_usize(&mut self, capacity: usize) -> Vec<usize> {
        self.leases += 1;
        match self.usize_pool.pop() {
            Some(mut buf) => {
                self.recycled += 1;
                buf.clear();
                if buf.capacity() < capacity {
                    buf.reserve(capacity - buf.len());
                }
                buf
            }
            None => Vec::with_capacity(capacity),
        }
    }

    /// Returns a leased `usize` buffer to the pool.
    pub fn give_usize(&mut self, buf: Vec<usize>) {
        self.usize_pool.push(buf);
    }

    /// Lease/recycle counters.
    pub fn stats(&self) -> ArenaStats {
        ArenaStats {
            leases: self.leases,
            recycled: self.recycled,
            pooled: self.f64_pool.len() + self.usize_pool.len(),
        }
    }

    /// Releases every pooled buffer (the arena stays usable; the next
    /// leases re-warm it).
    pub fn shrink(&mut self) {
        self.f64_pool.clear();
        self.usize_pool.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recycles_returned_buffers_with_capacity() {
        let mut arena = ScratchArena::new();
        let mut a = arena.take_f64(16);
        a.resize(16, 1.0);
        let cap = a.capacity();
        arena.give_f64(a);
        let b = arena.take_f64(8);
        assert!(b.is_empty(), "recycled buffers arrive empty");
        assert_eq!(b.capacity(), cap, "capacity survives the round trip");
        let s = arena.stats();
        assert_eq!((s.leases, s.recycled), (2, 1));
    }

    #[test]
    fn grows_short_recycled_buffers_in_place() {
        let mut arena = ScratchArena::new();
        arena.give_f64(Vec::with_capacity(2));
        let buf = arena.take_f64(64);
        assert!(buf.capacity() >= 64);
    }

    #[test]
    fn usize_pool_is_independent() {
        let mut arena = ScratchArena::new();
        arena.give_usize(vec![1, 2, 3]);
        let b = arena.take_usize(1);
        assert!(b.is_empty());
        assert_eq!(arena.stats().recycled, 1);
        assert_eq!(arena.stats().pooled, 0);
    }

    #[test]
    fn shrink_empties_pools() {
        let mut arena = ScratchArena::new();
        arena.give_f64(vec![0.0; 8]);
        arena.give_usize(vec![0; 8]);
        assert_eq!(arena.stats().pooled, 2);
        arena.shrink();
        assert_eq!(arena.stats().pooled, 0);
    }
}
