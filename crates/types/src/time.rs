//! Simulation time.
//!
//! The whole workspace runs on a discrete, deterministic clock: one
//! [`SimTime`] is a count of milliseconds since mission start. Using integer
//! milliseconds (rather than `f64` seconds) keeps event ordering exact and
//! makes every experiment bit-reproducible.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A point in simulated time, measured in integer milliseconds since the
/// start of the scenario.
///
/// # Examples
///
/// ```
/// use sesame_types::time::{SimDuration, SimTime};
///
/// let t = SimTime::from_secs_f64(250.0);
/// assert_eq!(t.as_millis(), 250_000);
/// assert_eq!(t + SimDuration::from_millis(500), SimTime::from_millis(250_500));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

impl SimTime {
    /// The scenario start (t = 0).
    pub const ZERO: SimTime = SimTime(0);

    /// Creates a time from milliseconds since start.
    pub fn from_millis(ms: u64) -> Self {
        SimTime(ms)
    }

    /// Creates a time from whole seconds since start.
    pub fn from_secs(s: u64) -> Self {
        SimTime(s * 1000)
    }

    /// Creates a time from fractional seconds, rounding to the nearest
    /// millisecond. Negative inputs clamp to zero.
    pub fn from_secs_f64(s: f64) -> Self {
        SimTime((s.max(0.0) * 1000.0).round() as u64)
    }

    /// Milliseconds since scenario start.
    pub fn as_millis(&self) -> u64 {
        self.0
    }

    /// Seconds since scenario start as a float.
    pub fn as_secs_f64(&self) -> f64 {
        self.0 as f64 / 1000.0
    }

    /// Time elapsed since `earlier`, saturating at zero if `earlier` is in
    /// the future.
    pub fn since(&self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={:.3}s", self.as_secs_f64())
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

/// A span of simulated time in integer milliseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimDuration {
    /// The zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Creates a duration from milliseconds.
    pub fn from_millis(ms: u64) -> Self {
        SimDuration(ms)
    }

    /// Creates a duration from whole seconds.
    pub fn from_secs(s: u64) -> Self {
        SimDuration(s * 1000)
    }

    /// Creates a duration from fractional seconds, rounding to the nearest
    /// millisecond. Negative inputs clamp to zero.
    pub fn from_secs_f64(s: f64) -> Self {
        SimDuration((s.max(0.0) * 1000.0).round() as u64)
    }

    /// The duration in milliseconds.
    pub fn as_millis(&self) -> u64 {
        self.0
    }

    /// The duration in seconds as a float.
    pub fn as_secs_f64(&self) -> f64 {
        self.0 as f64 / 1000.0
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}s", self.as_secs_f64())
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

/// The master clock advanced by the simulator's fixed-step loop.
///
/// # Examples
///
/// ```
/// use sesame_types::time::{SimClock, SimDuration};
///
/// let mut clock = SimClock::with_tick(SimDuration::from_millis(100));
/// clock.tick();
/// clock.tick();
/// assert_eq!(clock.now().as_millis(), 200);
/// ```
#[derive(Debug, Clone)]
pub struct SimClock {
    now: SimTime,
    tick: SimDuration,
}

impl SimClock {
    /// A clock with the workspace-default 100 ms tick.
    pub fn new() -> Self {
        Self::with_tick(SimDuration::from_millis(100))
    }

    /// A clock with a custom tick length.
    ///
    /// # Panics
    ///
    /// Panics if `tick` is zero — a zero-length tick would stall every
    /// fixed-step loop in the workspace.
    pub fn with_tick(tick: SimDuration) -> Self {
        assert!(tick > SimDuration::ZERO, "tick must be non-zero");
        Self {
            now: SimTime::ZERO,
            tick,
        }
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The fixed tick length.
    pub fn tick_len(&self) -> SimDuration {
        self.tick
    }

    /// Advances the clock by one tick and returns the new time.
    pub fn tick(&mut self) -> SimTime {
        self.now += self.tick;
        self.now
    }
}

impl Default for SimClock {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_conversions() {
        assert_eq!(SimTime::from_secs(3).as_millis(), 3000);
        assert_eq!(SimTime::from_secs_f64(1.2345).as_millis(), 1235);
        assert_eq!(SimTime::from_secs_f64(-5.0), SimTime::ZERO);
        assert!((SimTime::from_millis(1500).as_secs_f64() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn duration_arithmetic() {
        let a = SimDuration::from_millis(300);
        let b = SimDuration::from_secs(1);
        assert_eq!((a + b).as_millis(), 1300);
        assert_eq!(SimDuration::from_secs_f64(0.25).as_millis(), 250);
        assert_eq!(SimDuration::from_secs_f64(-1.0), SimDuration::ZERO);
    }

    #[test]
    fn time_ordering_and_subtraction() {
        let t1 = SimTime::from_millis(100);
        let t2 = SimTime::from_millis(400);
        assert!(t1 < t2);
        assert_eq!((t2 - t1).as_millis(), 300);
        // Saturating: earlier - later is zero, not underflow.
        assert_eq!((t1 - t2).as_millis(), 0);
        assert_eq!(t2.since(t1).as_millis(), 300);
    }

    #[test]
    fn clock_advances_by_tick() {
        let mut c = SimClock::new();
        assert_eq!(c.now(), SimTime::ZERO);
        assert_eq!(c.tick_len().as_millis(), 100);
        for i in 1..=10 {
            let t = c.tick();
            assert_eq!(t.as_millis(), i * 100);
        }
    }

    #[test]
    #[should_panic(expected = "tick must be non-zero")]
    fn zero_tick_panics() {
        let _ = SimClock::with_tick(SimDuration::ZERO);
    }

    #[test]
    fn display_formats() {
        assert_eq!(SimTime::from_millis(1500).to_string(), "t=1.500s");
        assert_eq!(SimDuration::from_millis(250).to_string(), "0.250s");
    }
}
