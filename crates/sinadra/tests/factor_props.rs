//! Property tests of the factor algebra underlying SINADRA inference.

use proptest::prelude::*;
use sesame_sinadra::factor::Factor;

fn factor_over(vars: Vec<(usize, usize)>, values: Vec<f64>) -> Factor {
    Factor::new(vars, values).expect("strategy builds valid factors")
}

fn values(n: usize) -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(0.0..10.0f64, n..=n)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Factor product is commutative.
    #[test]
    fn product_commutes(a in values(4), b in values(2)) {
        let fa = factor_over(vec![(0, 2), (1, 2)], a);
        let fb = factor_over(vec![(2, 2)], b);
        prop_assert_eq!(fa.product(&fb), fb.product(&fa));
    }

    /// Factor product is associative on disjoint scopes.
    #[test]
    fn product_associates(a in values(2), b in values(2), c in values(2)) {
        let fa = factor_over(vec![(0, 2)], a);
        let fb = factor_over(vec![(1, 2)], b);
        let fc = factor_over(vec![(2, 2)], c);
        let left = fa.product(&fb).product(&fc);
        let right = fa.product(&fb.product(&fc));
        prop_assert_eq!(left.vars(), right.vars());
        for (l, r) in left.values().iter().zip(right.values()) {
            prop_assert!((l - r).abs() < 1e-9);
        }
    }

    /// Marginalization commutes: summing out X then Y equals Y then X.
    #[test]
    fn marginalization_commutes(v in values(8)) {
        let f = factor_over(vec![(0, 2), (1, 2), (2, 2)], v);
        let xy = f.marginalize(0).marginalize(1);
        let yx = f.marginalize(1).marginalize(0);
        prop_assert_eq!(xy.vars(), yx.vars());
        for (a, b) in xy.values().iter().zip(yx.values()) {
            prop_assert!((a - b).abs() < 1e-9);
        }
    }

    /// Reducing then summing the complement equals indexing the table.
    #[test]
    fn reduce_preserves_mass_split(v in values(4), state in 0usize..2) {
        let f = factor_over(vec![(0, 2), (1, 2)], v);
        let reduced0 = f.reduce(0, 0).sum();
        let reduced1 = f.reduce(0, 1).sum();
        prop_assert!((reduced0 + reduced1 - f.sum()).abs() < 1e-9);
        let _ = state;
    }

    /// Product with the identity leaves any factor unchanged.
    #[test]
    fn identity_is_neutral(v in values(6)) {
        let f = factor_over(vec![(0, 3), (1, 2)], v);
        prop_assert_eq!(f.product(&Factor::identity()), f);
    }

    /// Normalization yields a distribution and is idempotent.
    #[test]
    fn normalization_idempotent(v in proptest::collection::vec(0.01..10.0f64, 4)) {
        let f = factor_over(vec![(0, 2), (1, 2)], v);
        let n1 = f.normalized();
        prop_assert!((n1.sum() - 1.0).abs() < 1e-12);
        let n2 = n1.normalized();
        for (a, b) in n1.values().iter().zip(n2.values()) {
            prop_assert!((a - b).abs() < 1e-12);
        }
    }
}
