//! Discrete Bayesian networks.
//!
//! A [`BayesianNetwork`] is a DAG of named discrete variables, each with a
//! conditional probability table P(X | parents(X)). Construction validates
//! acyclicity, CPT shapes and normalization, so inference can assume a
//! well-formed model.

use crate::factor::Factor;
use std::collections::HashMap;

/// Errors from network construction.
#[derive(Debug, Clone, PartialEq)]
pub enum BnError {
    /// Two variables share a name.
    DuplicateVariable(String),
    /// A CPT references an unknown variable.
    UnknownVariable(String),
    /// The CPT row count does not match the parent state combinations.
    WrongCptShape {
        /// Variable whose CPT is malformed.
        variable: String,
        /// Expected number of probabilities.
        expected: usize,
        /// Provided number of probabilities.
        got: usize,
    },
    /// A CPT row does not sum to 1.
    UnnormalizedCpt {
        /// Variable whose CPT is malformed.
        variable: String,
        /// The offending row sum.
        sum: f64,
    },
    /// The parent relation contains a cycle.
    Cyclic,
    /// A variable has no CPT.
    MissingCpt(String),
}

impl std::fmt::Display for BnError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BnError::DuplicateVariable(v) => write!(f, "duplicate variable `{v}`"),
            BnError::UnknownVariable(v) => write!(f, "unknown variable `{v}`"),
            BnError::WrongCptShape {
                variable,
                expected,
                got,
            } => write!(
                f,
                "CPT for `{variable}` has {got} entries, expected {expected}"
            ),
            BnError::UnnormalizedCpt { variable, sum } => {
                write!(f, "a CPT row for `{variable}` sums to {sum}, expected 1")
            }
            BnError::Cyclic => write!(f, "parent relation contains a cycle"),
            BnError::MissingCpt(v) => write!(f, "variable `{v}` has no CPT"),
        }
    }
}

impl std::error::Error for BnError {}

#[derive(Debug, Clone)]
struct VariableDef {
    name: String,
    states: Vec<String>,
    parents: Vec<usize>,
    cpt: Option<Factor>,
}

/// Builder-style Bayesian network.
///
/// # Examples
///
/// ```
/// use sesame_sinadra::bn::BayesianNetwork;
///
/// let mut bn = BayesianNetwork::new();
/// bn.add_variable("rain", &["no", "yes"])?;
/// bn.add_variable("wet", &["no", "yes"])?;
/// bn.set_prior("rain", &[0.8, 0.2])?;
/// bn.set_cpt("wet", &["rain"], &[
///     0.95, 0.05, // rain = no
///     0.1, 0.9,   // rain = yes
/// ])?;
/// let bn = bn.validate()?;
/// assert_eq!(bn.variable_count(), 2);
/// # Ok::<(), sesame_sinadra::bn::BnError>(())
/// ```
#[derive(Debug, Clone, Default)]
pub struct BayesianNetwork {
    vars: Vec<VariableDef>,
    index: HashMap<String, usize>,
    validated: bool,
}

impl BayesianNetwork {
    /// Creates an empty network.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a variable with the given state names.
    ///
    /// # Errors
    ///
    /// Returns [`BnError::DuplicateVariable`] if the name is taken.
    pub fn add_variable(&mut self, name: &str, states: &[&str]) -> Result<usize, BnError> {
        if self.index.contains_key(name) {
            return Err(BnError::DuplicateVariable(name.to_string()));
        }
        assert!(states.len() >= 2, "a variable needs at least two states");
        let id = self.vars.len();
        self.vars.push(VariableDef {
            name: name.to_string(),
            states: states.iter().map(|s| s.to_string()).collect(),
            parents: Vec::new(),
            cpt: None,
        });
        self.index.insert(name.to_string(), id);
        self.validated = false;
        Ok(id)
    }

    /// Sets the prior of a root variable (CPT with no parents).
    ///
    /// # Errors
    ///
    /// Returns shape/normalization errors per [`BnError`].
    pub fn set_prior(&mut self, name: &str, probs: &[f64]) -> Result<(), BnError> {
        self.set_cpt(name, &[], probs)
    }

    /// Sets P(`name` | `parents`). The table is row-major over parent
    /// combinations (first parent slowest), with the child's states fastest;
    /// each row must sum to 1.
    ///
    /// # Errors
    ///
    /// Returns shape/normalization errors per [`BnError`].
    pub fn set_cpt(&mut self, name: &str, parents: &[&str], probs: &[f64]) -> Result<(), BnError> {
        let child = *self
            .index
            .get(name)
            .ok_or_else(|| BnError::UnknownVariable(name.to_string()))?;
        let mut parent_ids = Vec::with_capacity(parents.len());
        for p in parents {
            let pid = *self
                .index
                .get(*p)
                .ok_or_else(|| BnError::UnknownVariable(p.to_string()))?;
            parent_ids.push(pid);
        }
        let child_card = self.vars[child].states.len();
        let rows: usize = parent_ids
            .iter()
            .map(|&p| self.vars[p].states.len())
            .product();
        let expected = rows * child_card;
        if probs.len() != expected {
            return Err(BnError::WrongCptShape {
                variable: name.to_string(),
                expected,
                got: probs.len(),
            });
        }
        for row in probs.chunks(child_card) {
            let s: f64 = row.iter().sum();
            if (s - 1.0).abs() > 1e-9 {
                return Err(BnError::UnnormalizedCpt {
                    variable: name.to_string(),
                    sum: s,
                });
            }
        }
        // Factor over (parents..., child) in given order, child fastest.
        let mut fvars: Vec<(usize, usize)> = parent_ids
            .iter()
            .map(|&p| (p, self.vars[p].states.len()))
            .collect();
        fvars.push((child, child_card));
        let factor = Factor::new(fvars, probs.to_vec()).expect("shape pre-validated");
        self.vars[child].parents = parent_ids;
        self.vars[child].cpt = Some(factor);
        self.validated = false;
        Ok(())
    }

    /// Validates the network: every variable has a CPT and the parent
    /// relation is acyclic. Returns `self` for chaining.
    ///
    /// # Errors
    ///
    /// Returns [`BnError::MissingCpt`] or [`BnError::Cyclic`].
    pub fn validate(mut self) -> Result<Self, BnError> {
        for v in &self.vars {
            if v.cpt.is_none() {
                return Err(BnError::MissingCpt(v.name.clone()));
            }
        }
        // Kahn's algorithm for cycle detection.
        let n = self.vars.len();
        let mut indegree = vec![0usize; n];
        for v in &self.vars {
            indegree[self.index[&v.name]] = v.parents.len();
        }
        let mut queue: Vec<usize> = (0..n).filter(|&i| indegree[i] == 0).collect();
        let mut seen = 0;
        while let Some(u) = queue.pop() {
            seen += 1;
            for (i, v) in self.vars.iter().enumerate() {
                if v.parents.contains(&u) {
                    indegree[i] -= 1;
                    if indegree[i] == 0 {
                        queue.push(i);
                    }
                }
            }
        }
        if seen != n {
            return Err(BnError::Cyclic);
        }
        self.validated = true;
        Ok(self)
    }

    /// Whether [`BayesianNetwork::validate`] has succeeded since the last
    /// mutation.
    pub fn is_validated(&self) -> bool {
        self.validated
    }

    /// Number of variables.
    pub fn variable_count(&self) -> usize {
        self.vars.len()
    }

    /// Id of a variable by name.
    pub fn variable_id(&self, name: &str) -> Option<usize> {
        self.index.get(name).copied()
    }

    /// Name of a variable by id.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn variable_name(&self, id: usize) -> &str {
        &self.vars[id].name
    }

    /// State index of `state` for variable `name`.
    pub fn state_id(&self, name: &str, state: &str) -> Option<usize> {
        let v = &self.vars[*self.index.get(name)?];
        v.states.iter().position(|s| s == state)
    }

    /// Cardinality of variable `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn cardinality(&self, id: usize) -> usize {
        self.vars[id].states.len()
    }

    /// The CPT factors of all variables (used by inference).
    pub(crate) fn factors(&self) -> Vec<Factor> {
        self.vars
            .iter()
            .map(|v| v.cpt.clone().expect("validated network"))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sprinkler() -> BayesianNetwork {
        let mut bn = BayesianNetwork::new();
        bn.add_variable("rain", &["no", "yes"]).unwrap();
        bn.add_variable("sprinkler", &["off", "on"]).unwrap();
        bn.add_variable("wet", &["no", "yes"]).unwrap();
        bn.set_prior("rain", &[0.8, 0.2]).unwrap();
        bn.set_cpt("sprinkler", &["rain"], &[0.6, 0.4, 0.99, 0.01])
            .unwrap();
        bn.set_cpt(
            "wet",
            &["rain", "sprinkler"],
            &[
                1.0, 0.0, // rain=no, spr=off
                0.1, 0.9, // rain=no, spr=on
                0.2, 0.8, // rain=yes, spr=off
                0.01, 0.99, // rain=yes, spr=on
            ],
        )
        .unwrap();
        bn
    }

    #[test]
    fn build_and_validate() {
        let bn = sprinkler().validate().unwrap();
        assert!(bn.is_validated());
        assert_eq!(bn.variable_count(), 3);
        assert_eq!(bn.variable_id("wet"), Some(2));
        assert_eq!(bn.variable_name(0), "rain");
        assert_eq!(bn.state_id("sprinkler", "on"), Some(1));
        assert_eq!(bn.cardinality(2), 2);
    }

    #[test]
    fn missing_cpt_detected() {
        let mut bn = BayesianNetwork::new();
        bn.add_variable("a", &["x", "y"]).unwrap();
        assert_eq!(bn.validate().unwrap_err(), BnError::MissingCpt("a".into()));
    }

    #[test]
    fn cycle_detected() {
        let mut bn = BayesianNetwork::new();
        bn.add_variable("a", &["0", "1"]).unwrap();
        bn.add_variable("b", &["0", "1"]).unwrap();
        bn.set_cpt("a", &["b"], &[0.5, 0.5, 0.5, 0.5]).unwrap();
        bn.set_cpt("b", &["a"], &[0.5, 0.5, 0.5, 0.5]).unwrap();
        assert_eq!(bn.validate().unwrap_err(), BnError::Cyclic);
    }

    #[test]
    fn wrong_shapes_rejected() {
        let mut bn = BayesianNetwork::new();
        bn.add_variable("a", &["0", "1"]).unwrap();
        assert!(matches!(
            bn.set_prior("a", &[0.5]),
            Err(BnError::WrongCptShape { .. })
        ));
        assert!(matches!(
            bn.set_prior("a", &[0.5, 0.6]),
            Err(BnError::UnnormalizedCpt { .. })
        ));
        assert!(matches!(
            bn.set_prior("zzz", &[0.5, 0.5]),
            Err(BnError::UnknownVariable(_))
        ));
    }

    #[test]
    fn duplicate_variable_rejected() {
        let mut bn = BayesianNetwork::new();
        bn.add_variable("a", &["0", "1"]).unwrap();
        assert_eq!(
            bn.add_variable("a", &["0", "1"]).unwrap_err(),
            BnError::DuplicateVariable("a".into())
        );
    }

    #[test]
    fn mutation_invalidates() {
        let bn = sprinkler().validate().unwrap();
        let mut bn2 = bn.clone();
        bn2.add_variable("extra", &["0", "1"]).unwrap();
        assert!(!bn2.is_validated());
    }
}
