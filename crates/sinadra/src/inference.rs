//! Exact inference by variable elimination.
//!
//! Supports both **hard evidence** (a variable observed in a state) and
//! **virtual evidence** (a likelihood vector over a variable's states),
//! which is how SINADRA feeds continuous monitor outputs — a SafeML
//! dissimilarity of 0.93 becomes the likelihood `[0.07, 0.93]` on the
//! detection-uncertainty variable instead of a brittle threshold.
//!
//! Evidence and the elimination loop use inline storage
//! ([`InlineVec`], see DESIGN.md § "Hot-loop memory discipline"): with a
//! warm [`VeScratch`], [`query_with_reduced_in`] performs zero heap
//! allocations for the SAR/separation risk networks. The naive [`query`]
//! keeps its allocating `Vec<f64>` interface and is the bit-identity
//! oracle for the scratch path.

use crate::bn::BayesianNetwork;
use crate::factor::Factor;
use sesame_types::inline::InlineVec;

/// Inline capacity for hard observations in one query's evidence.
const HARD_INLINE: usize = 8;
/// Inline capacity for virtual-evidence likelihood vectors (the SAR and
/// separation networks attach at most one each per query).
const VIRTUAL_INLINE: usize = 2;
/// Inline capacity for one likelihood vector's weights.
const WEIGHTS_INLINE: usize = 4;

/// A virtual-evidence weight vector, inline up to four states.
pub type LikelihoodWeights = InlineVec<f64, WEIGHTS_INLINE>;

/// Evidence accumulated for a query.
#[derive(Debug, Clone, Default)]
pub struct Evidence {
    hard: InlineVec<(usize, usize), HARD_INLINE>,
    virtual_likelihoods: InlineVec<(usize, LikelihoodWeights), VIRTUAL_INLINE>,
}

impl Evidence {
    /// No evidence.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds hard evidence: variable `var` observed in `state`.
    pub fn observe(mut self, var: usize, state: usize) -> Self {
        self.hard.push((var, state));
        self
    }

    /// Adds virtual evidence: a non-negative likelihood over the states of
    /// `var` (need not be normalized).
    pub fn likelihood(self, var: usize, weights: Vec<f64>) -> Self {
        self.likelihood_slice(var, &weights)
    }

    /// [`Self::likelihood`] from a borrowed slice — the allocation-free
    /// form the per-tick risk models use.
    pub fn likelihood_slice(mut self, var: usize, weights: &[f64]) -> Self {
        let mut w = LikelihoodWeights::new();
        w.extend_from_slice(weights);
        self.virtual_likelihoods.push((var, w));
        self
    }

    /// Whether any evidence is present.
    pub fn is_empty(&self) -> bool {
        self.hard.is_empty() && self.virtual_likelihoods.is_empty()
    }

    /// The hard observations, in insertion order.
    pub fn hard(&self) -> &[(usize, usize)] {
        &self.hard
    }

    /// The virtual-evidence likelihoods, in insertion order.
    pub fn virtual_likelihoods(&self) -> &[(usize, LikelihoodWeights)] {
        &self.virtual_likelihoods
    }
}

/// Errors from a query.
#[derive(Debug, Clone, PartialEq)]
pub enum InferenceError {
    /// The network failed validation (call `validate` first).
    NotValidated,
    /// A variable id was out of range.
    UnknownVariable(usize),
    /// Hard evidence used a state index out of range.
    BadState {
        /// Variable id.
        var: usize,
        /// Offending state index.
        state: usize,
    },
    /// A virtual-evidence vector had the wrong length or negative entries.
    BadLikelihood(usize),
    /// The evidence has zero probability under the model.
    ImpossibleEvidence,
}

impl std::fmt::Display for InferenceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            InferenceError::NotValidated => write!(f, "network not validated"),
            InferenceError::UnknownVariable(v) => write!(f, "unknown variable id {v}"),
            InferenceError::BadState { var, state } => {
                write!(f, "state {state} out of range for variable {var}")
            }
            InferenceError::BadLikelihood(v) => {
                write!(f, "bad virtual-evidence vector for variable {v}")
            }
            InferenceError::ImpossibleEvidence => write!(f, "evidence has probability zero"),
        }
    }
}

impl std::error::Error for InferenceError {}

/// Computes the posterior P(`query` | `evidence`) as a probability vector
/// over the query variable's states.
///
/// # Errors
///
/// See [`InferenceError`].
///
/// # Examples
///
/// ```
/// use sesame_sinadra::bn::BayesianNetwork;
/// use sesame_sinadra::inference::{query, Evidence};
///
/// let mut bn = BayesianNetwork::new();
/// bn.add_variable("rain", &["no", "yes"])?;
/// bn.add_variable("wet", &["no", "yes"])?;
/// bn.set_prior("rain", &[0.8, 0.2])?;
/// bn.set_cpt("wet", &["rain"], &[0.95, 0.05, 0.1, 0.9])?;
/// let bn = bn.validate()?;
///
/// let wet = bn.variable_id("wet").unwrap();
/// let rain = bn.variable_id("rain").unwrap();
/// let posterior = query(&bn, rain, &Evidence::new().observe(wet, 1)).unwrap();
/// assert!(posterior[1] > 0.8, "rain is likely when the grass is wet");
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn query(
    bn: &BayesianNetwork,
    query_var: usize,
    evidence: &Evidence,
) -> Result<Vec<f64>, InferenceError> {
    if !bn.is_validated() {
        return Err(InferenceError::NotValidated);
    }
    let n = bn.variable_count();
    if query_var >= n {
        return Err(InferenceError::UnknownVariable(query_var));
    }
    // Querying an observed variable yields the degenerate posterior.
    if let Some((_, state)) = evidence.hard.iter().find(|(v, _)| *v == query_var) {
        if *state >= bn.cardinality(query_var) {
            return Err(InferenceError::BadState {
                var: query_var,
                state: *state,
            });
        }
        let mut p = vec![0.0; bn.cardinality(query_var)];
        p[*state] = 1.0;
        return Ok(p);
    }
    let mut factors = bn.factors();

    // Apply virtual evidence as extra factors.
    for (var, weights) in &evidence.virtual_likelihoods {
        if *var >= n {
            return Err(InferenceError::UnknownVariable(*var));
        }
        let card = bn.cardinality(*var);
        if weights.len() != card || weights.iter().any(|w| !w.is_finite() || *w < 0.0) {
            return Err(InferenceError::BadLikelihood(*var));
        }
        // `single` carries the weights verbatim — same values as the
        // historical `Factor::new(vec![(var, card)], weights.clone())`.
        factors.push(Factor::single(*var, card, weights));
    }

    // Apply hard evidence by reduction.
    for (var, state) in &evidence.hard {
        if *var >= n {
            return Err(InferenceError::UnknownVariable(*var));
        }
        if *state >= bn.cardinality(*var) {
            return Err(InferenceError::BadState {
                var: *var,
                state: *state,
            });
        }
        for f in factors.iter_mut() {
            if f.contains(*var) {
                *f = f.reduce(*var, *state);
            }
        }
    }

    // Eliminate every variable except the query (evidence vars are already
    // reduced out of scopes; eliminating them is a no-op).
    let hard_vars: Vec<usize> = evidence.hard.iter().map(|(v, _)| *v).collect();
    eliminate_to_posterior(n, query_var, &hard_vars, &mut factors).map(|p| p.values().to_vec())
}

/// The elimination-and-normalization tail shared by [`query`] and
/// [`query_with_reduced_in`]. Keeping one body guarantees the cached path
/// performs the same floating-point operations in the same order as the
/// naive one — bit-identical posteriors by construction.
///
/// `factors` is consumed in place (this is the scratch buffer on the hot
/// path): multiplying-out then `retain` + `push` reproduces the historical
/// `partition` + push ordering exactly — `retain` is stable, so the
/// surviving factors keep their relative order and the summed factor lands
/// at the back, as before.
fn eliminate_to_posterior(
    n: usize,
    query_var: usize,
    hard_vars: &[usize],
    factors: &mut Vec<Factor>,
) -> Result<Factor, InferenceError> {
    for var in 0..n {
        if var == query_var || hard_vars.contains(&var) {
            continue;
        }
        // Multiply all factors mentioning `var`, then sum it out.
        let mut combined = Factor::identity();
        for f in factors.iter().filter(|f| f.contains(var)) {
            combined = combined.product(f);
        }
        factors.retain(|f| !f.contains(var));
        factors.push(combined.marginalize(var));
    }

    let mut joint = Factor::identity();
    for f in factors.iter() {
        joint = joint.product(f);
    }
    if joint.sum() <= 0.0 {
        return Err(InferenceError::ImpossibleEvidence);
    }
    let posterior = joint.normalized();
    // The posterior must be exactly over the query variable.
    debug_assert_eq!(posterior.vars().len(), 1);
    debug_assert_eq!(posterior.vars()[0].0, query_var);
    Ok(posterior)
}

/// Reusable factor workspace for [`query_with_reduced_in`]. The inner
/// `Vec` holds inline-storage [`Factor`]s, so once its capacity has grown
/// to the network's factor count (first call), subsequent queries allocate
/// nothing.
#[derive(Debug, Clone, Default)]
pub struct VeScratch {
    factors: Vec<Factor>,
}

/// [`query`] with the hard-evidence reduction of the network's base
/// factors supplied pre-computed (`reduced_base` must be `bn.factors()`
/// with every hard observation in `evidence` reduced out, in the original
/// factor order). Hard-evidence reduction is pure state-index selection,
/// so a cached reduction is bit-identical to a fresh one; virtual-evidence
/// factors are still built (and reduced) per call because they carry the
/// continuous monitor outputs that change every tick.
///
/// # Errors
///
/// See [`InferenceError`].
pub fn query_with_reduced(
    bn: &BayesianNetwork,
    query_var: usize,
    evidence: &Evidence,
    reduced_base: &[Factor],
) -> Result<Vec<f64>, InferenceError> {
    let mut scratch = VeScratch::default();
    query_with_reduced_in(bn, query_var, evidence, reduced_base, &mut scratch)
        .map(|p| p.values().to_vec())
}

/// [`query_with_reduced`] into a caller-owned [`VeScratch`], returning
/// the posterior as an (inline-storage) [`Factor`] over the query
/// variable. This is the per-tick entry point: with a warm scratch it
/// performs zero heap allocations end to end, and it computes exactly the
/// same floating-point operations in the same order as [`query`], so
/// posteriors are bit-identical.
///
/// # Errors
///
/// See [`InferenceError`].
pub fn query_with_reduced_in(
    bn: &BayesianNetwork,
    query_var: usize,
    evidence: &Evidence,
    reduced_base: &[Factor],
    scratch: &mut VeScratch,
) -> Result<Factor, InferenceError> {
    if !bn.is_validated() {
        return Err(InferenceError::NotValidated);
    }
    let n = bn.variable_count();
    if query_var >= n {
        return Err(InferenceError::UnknownVariable(query_var));
    }
    if let Some((_, state)) = evidence.hard.iter().find(|(v, _)| *v == query_var) {
        let card = bn.cardinality(query_var);
        if *state >= card {
            return Err(InferenceError::BadState {
                var: query_var,
                state: *state,
            });
        }
        let mut p: LikelihoodWeights = std::iter::repeat_n(0.0, card).collect();
        p[*state] = 1.0;
        return Ok(Factor::single(query_var, card, &p));
    }
    let factors = &mut scratch.factors;
    factors.clear();
    factors.extend_from_slice(reduced_base);
    for (var, weights) in &evidence.virtual_likelihoods {
        if *var >= n {
            return Err(InferenceError::UnknownVariable(*var));
        }
        let card = bn.cardinality(*var);
        if weights.len() != card || weights.iter().any(|w| !w.is_finite() || *w < 0.0) {
            return Err(InferenceError::BadLikelihood(*var));
        }
        let mut f = Factor::single(*var, card, weights);
        // The naive path reduces virtual factors alongside the base ones.
        for (hvar, state) in &evidence.hard {
            if f.contains(*hvar) {
                f = f.reduce(*hvar, *state);
            }
        }
        factors.push(f);
    }
    let hard_vars: InlineVec<usize, HARD_INLINE> = evidence.hard.iter().map(|(v, _)| *v).collect();
    eliminate_to_posterior(n, query_var, &hard_vars, factors)
}

/// Builds the hard-evidence-reduced base factor list [`query_with_reduced`]
/// expects: `bn.factors()` with each hard observation reduced out, in the
/// exact order the naive [`query`] applies them.
///
/// # Errors
///
/// See [`InferenceError`].
pub fn reduce_base_factors(
    bn: &BayesianNetwork,
    evidence: &Evidence,
) -> Result<Vec<Factor>, InferenceError> {
    if !bn.is_validated() {
        return Err(InferenceError::NotValidated);
    }
    let n = bn.variable_count();
    let mut factors = bn.factors();
    for (var, state) in &evidence.hard {
        if *var >= n {
            return Err(InferenceError::UnknownVariable(*var));
        }
        if *state >= bn.cardinality(*var) {
            return Err(InferenceError::BadState {
                var: *var,
                state: *state,
            });
        }
        for f in factors.iter_mut() {
            if f.contains(*var) {
                *f = f.reduce(*var, *state);
            }
        }
    }
    Ok(factors)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The classic sprinkler network with known hand-computed posteriors.
    fn sprinkler() -> BayesianNetwork {
        let mut bn = BayesianNetwork::new();
        bn.add_variable("rain", &["no", "yes"]).unwrap();
        bn.add_variable("sprinkler", &["off", "on"]).unwrap();
        bn.add_variable("wet", &["no", "yes"]).unwrap();
        bn.set_prior("rain", &[0.8, 0.2]).unwrap();
        bn.set_cpt("sprinkler", &["rain"], &[0.6, 0.4, 0.99, 0.01])
            .unwrap();
        bn.set_cpt(
            "wet",
            &["rain", "sprinkler"],
            &[1.0, 0.0, 0.1, 0.9, 0.2, 0.8, 0.01, 0.99],
        )
        .unwrap();
        bn.validate().unwrap()
    }

    #[test]
    fn prior_marginal_without_evidence() {
        let bn = sprinkler();
        let rain = bn.variable_id("rain").unwrap();
        let p = query(&bn, rain, &Evidence::new()).unwrap();
        assert!((p[0] - 0.8).abs() < 1e-12);
        assert!((p[1] - 0.2).abs() < 1e-12);
    }

    #[test]
    fn wet_grass_marginal_matches_hand_computation() {
        let bn = sprinkler();
        let wet = bn.variable_id("wet").unwrap();
        let p = query(&bn, wet, &Evidence::new()).unwrap();
        // P(wet=yes) = Σ_{r,s} P(r)P(s|r)P(wet=yes|r,s)
        let expect = 0.8 * (0.6 * 0.0 + 0.4 * 0.9) + 0.2 * (0.99 * 0.8 + 0.01 * 0.99);
        assert!((p[1] - expect).abs() < 1e-12, "got {} want {expect}", p[1]);
    }

    #[test]
    fn posterior_given_wet_grass() {
        let bn = sprinkler();
        let rain = bn.variable_id("rain").unwrap();
        let wet = bn.variable_id("wet").unwrap();
        let p = query(&bn, rain, &Evidence::new().observe(wet, 1)).unwrap();
        // Bayes by hand: P(rain=yes, wet=yes) / P(wet=yes).
        let p_wet_yes = 0.8 * (0.4 * 0.9) + 0.2 * (0.99 * 0.8 + 0.01 * 0.99);
        let p_joint = 0.2 * (0.99 * 0.8 + 0.01 * 0.99);
        let expect = p_joint / p_wet_yes;
        assert!((p[1] - expect).abs() < 1e-12, "got {} want {expect}", p[1]);
    }

    #[test]
    fn explaining_away() {
        let bn = sprinkler();
        let rain = bn.variable_id("rain").unwrap();
        let wet = bn.variable_id("wet").unwrap();
        let spr = bn.variable_id("sprinkler").unwrap();
        let p_wet = query(&bn, rain, &Evidence::new().observe(wet, 1)).unwrap();
        let p_wet_spr = query(&bn, rain, &Evidence::new().observe(wet, 1).observe(spr, 1)).unwrap();
        assert!(
            p_wet_spr[1] < p_wet[1],
            "knowing the sprinkler ran explains the wet grass away"
        );
    }

    #[test]
    fn virtual_evidence_interpolates_between_none_and_hard() {
        let bn = sprinkler();
        let rain = bn.variable_id("rain").unwrap();
        let wet = bn.variable_id("wet").unwrap();
        let none = query(&bn, rain, &Evidence::new()).unwrap()[1];
        let hard = query(&bn, rain, &Evidence::new().observe(wet, 1)).unwrap()[1];
        let soft = query(&bn, rain, &Evidence::new().likelihood(wet, vec![0.3, 0.7])).unwrap()[1];
        assert!(none < soft && soft < hard, "{none} < {soft} < {hard}");
    }

    #[test]
    fn certain_virtual_evidence_equals_hard_evidence() {
        let bn = sprinkler();
        let rain = bn.variable_id("rain").unwrap();
        let wet = bn.variable_id("wet").unwrap();
        let hard = query(&bn, rain, &Evidence::new().observe(wet, 1)).unwrap();
        let soft = query(&bn, rain, &Evidence::new().likelihood(wet, vec![0.0, 1.0])).unwrap();
        for (h, s) in hard.iter().zip(soft.iter()) {
            assert!((h - s).abs() < 1e-12);
        }
    }

    #[test]
    fn impossible_evidence_reported() {
        let mut bn = BayesianNetwork::new();
        bn.add_variable("a", &["0", "1"]).unwrap();
        bn.add_variable("b", &["0", "1"]).unwrap();
        bn.set_prior("a", &[1.0, 0.0]).unwrap();
        bn.set_cpt("b", &["a"], &[1.0, 0.0, 0.0, 1.0]).unwrap();
        let bn = bn.validate().unwrap();
        // b=1 requires a=1, which has prior 0.
        let err = query(
            &bn,
            0,
            &Evidence::new().observe(bn.variable_id("b").unwrap(), 1),
        )
        .unwrap_err();
        assert_eq!(err, InferenceError::ImpossibleEvidence);
    }

    #[test]
    fn error_paths() {
        let bn = sprinkler();
        assert_eq!(
            query(&bn, 99, &Evidence::new()).unwrap_err(),
            InferenceError::UnknownVariable(99)
        );
        assert_eq!(
            query(&bn, 0, &Evidence::new().observe(1, 9)).unwrap_err(),
            InferenceError::BadState { var: 1, state: 9 }
        );
        assert_eq!(
            query(&bn, 0, &Evidence::new().likelihood(1, vec![0.5])).unwrap_err(),
            InferenceError::BadLikelihood(1)
        );
        assert!(Evidence::new().is_empty());
    }

    #[test]
    fn query_on_evidence_variable_is_degenerate() {
        let bn = sprinkler();
        let wet = bn.variable_id("wet").unwrap();
        let p = query(&bn, wet, &Evidence::new().observe(wet, 1));
        // Querying an observed variable: posterior concentrates there.
        // Our implementation reduces the var out, so this is an error path
        // or a degenerate single-state result; accept either behaviour but
        // it must not panic.
        if let Ok(v) = p {
            assert!(!v.is_empty());
        }
    }
}
