//! The SAR missed-person risk model.
//!
//! Encodes the paper's §III-A4 behaviour as a Bayesian network:
//!
//! ```text
//!   Altitude ─┐                 PersonPresence ─┐
//!             ├─► DetectionUncertainty ─────────┼─► MissedPerson ─┐
//!   Visibility┘        ▲ (virtual evidence                        ├─► Criticality
//!                        from SafeML / DeepKnowledge)  TimePressure┘
//! ```
//!
//! `assess` attaches the continuous uncertainty reading from the ML
//! monitors as *virtual evidence* on `DetectionUncertainty`, conditions on
//! the flight situation, and reads out the probability that a person was
//! missed and that the situation is critical. High criticality advises an
//! immediate re-scan; low criticality lets the UAV proceed to the next
//! task.

use crate::bn::BayesianNetwork;
use crate::inference::{query, Evidence};

/// Situation snapshot fed to the risk model each assessment.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SituationInputs {
    /// Combined detection uncertainty from SafeML / DeepKnowledge, `[0,1]`.
    pub detection_uncertainty: f64,
    /// Whether the UAV currently scans from high altitude.
    pub altitude_high: bool,
    /// Whether visibility is degraded (dusk, smoke, rain).
    pub visibility_poor: bool,
    /// Whether mission intel makes a person in this cell likely.
    pub person_likely: bool,
    /// Whether the mission is under high time pressure.
    pub time_pressure_high: bool,
}

impl Default for SituationInputs {
    fn default() -> Self {
        SituationInputs {
            detection_uncertainty: 0.0,
            altitude_high: false,
            visibility_poor: false,
            person_likely: false,
            time_pressure_high: false,
        }
    }
}

/// The model's output for one assessment.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RiskAssessment {
    /// P(a present person was missed by the scan).
    pub missed_person_prob: f64,
    /// P(criticality = high).
    pub criticality_high_prob: f64,
    /// Whether an immediate re-scan of the area is advised.
    pub rescan_advised: bool,
}

/// The prebuilt SAR risk network with a configurable re-scan threshold.
#[derive(Debug, Clone)]
pub struct SarRiskModel {
    bn: BayesianNetwork,
    rescan_threshold: f64,
}

impl SarRiskModel {
    /// Builds the network with the default re-scan threshold of 0.5 on
    /// criticality.
    pub fn new() -> Self {
        Self::with_threshold(0.5)
    }

    /// Builds the network with an explicit criticality threshold.
    ///
    /// # Panics
    ///
    /// Panics if `rescan_threshold` is outside `(0, 1)`.
    pub fn with_threshold(rescan_threshold: f64) -> Self {
        assert!(
            rescan_threshold > 0.0 && rescan_threshold < 1.0,
            "threshold must be in (0, 1)"
        );
        let mut bn = BayesianNetwork::new();
        bn.add_variable("altitude", &["low", "high"]).unwrap();
        bn.add_variable("visibility", &["good", "poor"]).unwrap();
        bn.add_variable("uncertainty", &["low", "high"]).unwrap();
        bn.add_variable("presence", &["unlikely", "likely"])
            .unwrap();
        bn.add_variable("missed", &["no", "yes"]).unwrap();
        bn.add_variable("pressure", &["low", "high"]).unwrap();
        bn.add_variable("criticality", &["low", "high"]).unwrap();

        bn.set_prior("altitude", &[0.5, 0.5]).unwrap();
        bn.set_prior("visibility", &[0.7, 0.3]).unwrap();
        bn.set_prior("presence", &[0.7, 0.3]).unwrap();
        bn.set_prior("pressure", &[0.5, 0.5]).unwrap();
        // P(uncertainty | altitude, visibility): height and haze both push
        // the detector out of its training distribution.
        bn.set_cpt(
            "uncertainty",
            &["altitude", "visibility"],
            &[
                0.9, 0.1, // low alt, good vis
                0.6, 0.4, // low alt, poor vis
                0.4, 0.6, // high alt, good vis
                0.1, 0.9, // high alt, poor vis
            ],
        )
        .unwrap();
        // P(missed | uncertainty, presence): you can only miss someone who
        // is there; high uncertainty makes missing likely.
        bn.set_cpt(
            "missed",
            &["uncertainty", "presence"],
            &[
                0.999, 0.001, // unc low, presence unlikely
                0.95, 0.05, // unc low, presence likely
                0.98, 0.02, // unc high, presence unlikely
                0.35, 0.65, // unc high, presence likely
            ],
        )
        .unwrap();
        // P(criticality | missed, pressure).
        bn.set_cpt(
            "criticality",
            &["missed", "pressure"],
            &[
                0.98, 0.02, // not missed, low pressure
                0.9, 0.1, // not missed, high pressure
                0.4, 0.6, // missed, low pressure
                0.05, 0.95, // missed, high pressure
            ],
        )
        .unwrap();
        let bn = bn.validate().expect("static model is well-formed");
        SarRiskModel {
            bn,
            rescan_threshold,
        }
    }

    /// Assesses the current situation. The continuous
    /// `detection_uncertainty` enters as virtual evidence on the
    /// uncertainty node; the boolean situation factors are hard evidence.
    pub fn assess(&self, inputs: &SituationInputs) -> RiskAssessment {
        let u = inputs.detection_uncertainty.clamp(0.0, 1.0);
        let id = |name: &str| self.bn.variable_id(name).expect("known variable");
        let mut ev = Evidence::new()
            .observe(id("altitude"), usize::from(inputs.altitude_high))
            .observe(id("visibility"), usize::from(inputs.visibility_poor))
            .observe(id("presence"), usize::from(inputs.person_likely))
            .observe(id("pressure"), usize::from(inputs.time_pressure_high));
        if u > 0.0 {
            ev = ev.likelihood_slice(id("uncertainty"), &[1.0 - u, u]);
        }
        let missed = query(&self.bn, id("missed"), &ev).expect("valid query");
        let criticality = query(&self.bn, id("criticality"), &ev).expect("valid query");
        RiskAssessment {
            missed_person_prob: missed[1],
            criticality_high_prob: criticality[1],
            rescan_advised: criticality[1] >= self.rescan_threshold,
        }
    }

    /// The underlying network (e.g. for the benchmark sweep).
    pub fn network(&self) -> &BayesianNetwork {
        &self.bn
    }

    /// The configured criticality threshold for advising a re-scan.
    pub fn rescan_threshold(&self) -> f64 {
        self.rescan_threshold
    }
}

impl Default for SarRiskModel {
    fn default() -> Self {
        Self::new()
    }
}

/// Inputs to the separation (mid-air collision) risk model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SeparationInputs {
    /// Distance to the nearest other UAV, metres.
    pub nearest_range_m: f64,
    /// Whether the two tracks are converging.
    pub converging: bool,
    /// Confidence of the nearby-drone detection in `[0, 1]` (the
    /// vision-based nearby-drone-detection output of Fig. 1).
    pub detection_confidence: f64,
}

/// Output of a separation assessment.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SeparationAssessment {
    /// P(separation loss within the planning horizon).
    pub conflict_prob: f64,
    /// Whether a hold manoeuvre is advised.
    pub hold_advised: bool,
}

/// The separation-risk network: proximity and geometry drive the conflict
/// probability, with the vision detection entering as virtual evidence —
/// a low-confidence sighting still raises the risk, without thresholding.
///
/// ```text
///   Proximity ──┐
///               ├─► Conflict
///   Converging ─┘      ▲ virtual evidence: detection confidence on
///                        the "intruder present" variable
/// ```
#[derive(Debug, Clone)]
pub struct SeparationRiskModel {
    bn: BayesianNetwork,
    hold_threshold: f64,
}

impl SeparationRiskModel {
    /// Builds the network with a 0.3 hold threshold.
    pub fn new() -> Self {
        let mut bn = BayesianNetwork::new();
        bn.add_variable("proximity", &["far", "near"]).unwrap();
        bn.add_variable("converging", &["no", "yes"]).unwrap();
        bn.add_variable("intruder", &["absent", "present"]).unwrap();
        bn.add_variable("conflict", &["no", "yes"]).unwrap();
        bn.set_prior("proximity", &[0.8, 0.2]).unwrap();
        bn.set_prior("converging", &[0.6, 0.4]).unwrap();
        bn.set_prior("intruder", &[0.7, 0.3]).unwrap();
        // Conflict requires an intruder; proximity and convergence amplify.
        bn.set_cpt(
            "conflict",
            &["proximity", "converging", "intruder"],
            &[
                1.0, 0.0, // far, diverging, absent
                0.98, 0.02, // far, diverging, present
                1.0, 0.0, // far, converging, absent
                0.85, 0.15, // far, converging, present
                1.0, 0.0, // near, diverging, absent
                0.7, 0.3, // near, diverging, present
                1.0, 0.0, // near, converging, absent
                0.15, 0.85, // near, converging, present
            ],
        )
        .unwrap();
        SeparationRiskModel {
            bn: bn.validate().expect("static model is well-formed"),
            hold_threshold: 0.3,
        }
    }

    /// Assesses the situation. Ranges under 50 m count as "near".
    pub fn assess(&self, inputs: &SeparationInputs) -> SeparationAssessment {
        let id = |n: &str| self.bn.variable_id(n).expect("known variable");
        let conf = inputs.detection_confidence.clamp(0.0, 1.0);
        let mut ev = Evidence::new()
            .observe(id("proximity"), usize::from(inputs.nearest_range_m < 50.0))
            .observe(id("converging"), usize::from(inputs.converging));
        if conf > 0.0 {
            ev = ev.likelihood_slice(id("intruder"), &[1.0 - conf, conf]);
        }
        let conflict = query(&self.bn, id("conflict"), &ev).expect("valid query");
        SeparationAssessment {
            conflict_prob: conflict[1],
            hold_advised: conflict[1] >= self.hold_threshold,
        }
    }
}

impl Default for SeparationRiskModel {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base_inputs() -> SituationInputs {
        SituationInputs {
            detection_uncertainty: 0.5,
            altitude_high: false,
            visibility_poor: false,
            person_likely: true,
            time_pressure_high: false,
        }
    }

    #[test]
    fn high_uncertainty_raises_missed_person_risk() {
        let m = SarRiskModel::new();
        let lo = m.assess(&SituationInputs {
            detection_uncertainty: 0.1,
            ..base_inputs()
        });
        let hi = m.assess(&SituationInputs {
            detection_uncertainty: 0.95,
            ..base_inputs()
        });
        assert!(hi.missed_person_prob > lo.missed_person_prob * 2.0);
    }

    #[test]
    fn paper_scenario_high_altitude_prompts_rescan() {
        // §V-B: at high altitude the uncertainty exceeds 90 % and the UAV
        // must act; at low altitude (~75 % uncertainty) it can proceed with
        // better accuracy.
        let m = SarRiskModel::new();
        let high = m.assess(&SituationInputs {
            detection_uncertainty: 0.93,
            altitude_high: true,
            visibility_poor: false,
            person_likely: true,
            time_pressure_high: true,
        });
        assert!(high.rescan_advised, "criticality = {high:?}");
        let low = m.assess(&SituationInputs {
            detection_uncertainty: 0.3,
            altitude_high: false,
            visibility_poor: false,
            person_likely: true,
            time_pressure_high: true,
        });
        assert!(!low.rescan_advised, "criticality = {low:?}");
    }

    #[test]
    fn no_person_means_low_criticality_even_when_blind() {
        let m = SarRiskModel::new();
        let r = m.assess(&SituationInputs {
            detection_uncertainty: 0.99,
            altitude_high: true,
            visibility_poor: true,
            person_likely: false,
            time_pressure_high: false,
        });
        assert!(r.missed_person_prob < 0.1);
        assert!(!r.rescan_advised);
    }

    #[test]
    fn time_pressure_amplifies_criticality() {
        let m = SarRiskModel::new();
        let calm = m.assess(&SituationInputs {
            time_pressure_high: false,
            detection_uncertainty: 0.9,
            ..base_inputs()
        });
        let rushed = m.assess(&SituationInputs {
            time_pressure_high: true,
            detection_uncertainty: 0.9,
            ..base_inputs()
        });
        assert!(rushed.criticality_high_prob > calm.criticality_high_prob);
    }

    #[test]
    fn uncertainty_clamped() {
        let m = SarRiskModel::new();
        let r = m.assess(&SituationInputs {
            detection_uncertainty: 7.0,
            ..base_inputs()
        });
        assert!(r.missed_person_prob <= 1.0);
    }

    #[test]
    fn threshold_controls_decision() {
        let strict = SarRiskModel::with_threshold(0.05);
        let lax = SarRiskModel::with_threshold(0.95);
        let inputs = SituationInputs {
            detection_uncertainty: 0.9,
            altitude_high: true,
            person_likely: true,
            time_pressure_high: true,
            visibility_poor: false,
        };
        assert!(strict.assess(&inputs).rescan_advised);
        assert!(!lax.assess(&inputs).rescan_advised);
    }

    #[test]
    #[should_panic(expected = "threshold")]
    fn bad_threshold_panics() {
        let _ = SarRiskModel::with_threshold(1.5);
    }

    #[test]
    fn separation_risk_needs_proximity_and_convergence() {
        let m = SeparationRiskModel::new();
        let benign = m.assess(&SeparationInputs {
            nearest_range_m: 300.0,
            converging: false,
            detection_confidence: 0.9,
        });
        assert!(benign.conflict_prob < 0.1);
        assert!(!benign.hold_advised);
        let hot = m.assess(&SeparationInputs {
            nearest_range_m: 20.0,
            converging: true,
            detection_confidence: 0.9,
        });
        assert!(hot.conflict_prob > 0.5, "p = {}", hot.conflict_prob);
        assert!(hot.hold_advised);
    }

    #[test]
    fn separation_confidence_scales_risk_smoothly() {
        let m = SeparationRiskModel::new();
        let at = |c: f64| {
            m.assess(&SeparationInputs {
                nearest_range_m: 20.0,
                converging: true,
                detection_confidence: c,
            })
            .conflict_prob
        };
        assert!(at(0.2) < at(0.5) && at(0.5) < at(0.95));
        // Without any sighting, the prior intruder belief still carries
        // some risk in a near/converging geometry.
        assert!(at(0.0) > 0.1);
    }

    #[test]
    fn zero_uncertainty_skips_virtual_evidence() {
        let m = SarRiskModel::new();
        let r = m.assess(&SituationInputs {
            detection_uncertainty: 0.0,
            ..base_inputs()
        });
        assert!(r.missed_person_prob < 0.2);
    }
}
