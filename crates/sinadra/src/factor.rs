//! Discrete factors and their algebra.
//!
//! A [`Factor`] is a non-negative table over an ordered set of discrete
//! variables (identified by `usize` ids with known cardinalities). Variable
//! elimination is just repeated [`Factor::product`] and
//! [`Factor::marginalize`].
//!
//! Storage is inline ([`InlineVec`]): scopes up to four variables and
//! value tables up to sixteen entries live on the stack, so the factor
//! algebra — products, reductions, marginalizations — performs **zero
//! heap allocations** for the SAR/separation risk networks (whose
//! post-evidence scopes never exceed three binary variables). Wider
//! factors spill to the heap transparently; results are identical either
//! way, and the arithmetic (value order, operation order) is exactly the
//! historical `Vec` implementation's, so posteriors are bit-identical
//! (see DESIGN.md § "Hot-loop memory discipline").

use sesame_types::inline::InlineVec;
use std::collections::BTreeMap;

/// Inline capacity for a factor's variable scope.
const VARS_INLINE: usize = 4;
/// Inline capacity for a factor's value table (2^`VARS_INLINE` for an
/// all-binary scope).
const VALUES_INLINE: usize = 16;

type Vars = InlineVec<(usize, usize), VARS_INLINE>;
type Values = InlineVec<f64, VALUES_INLINE>;
type Strides = InlineVec<usize, VARS_INLINE>;

/// Row-major strides (last variable fastest) for a sorted scope.
fn strides_of(vars: &[(usize, usize)]) -> Strides {
    let n = vars.len();
    let mut s: Strides = std::iter::repeat_n(1usize, n).collect();
    for i in (0..n.saturating_sub(1)).rev() {
        s[i] = s[i + 1] * vars[i + 1].1;
    }
    s
}

/// A factor φ(X₁, …, Xₖ) over discrete variables.
///
/// Values are stored row-major with the **last** variable varying fastest.
/// Variables are kept sorted by id, which makes products deterministic.
///
/// # Examples
///
/// ```
/// use sesame_sinadra::factor::Factor;
///
/// // φ(A) with A binary.
/// let fa = Factor::new(vec![(0, 2)], vec![0.3, 0.7]).expect("valid");
/// // φ(A, B) = P(B | A), B binary.
/// let fb = Factor::new(vec![(0, 2), (1, 2)], vec![0.9, 0.1, 0.2, 0.8]).expect("valid");
/// let joint = fa.product(&fb);
/// let pb = joint.marginalize(0);
/// let p = pb.normalized();
/// assert!((p.values()[0] - (0.3 * 0.9 + 0.7 * 0.2)).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Factor {
    /// Sorted (variable id, cardinality) pairs.
    vars: Vars,
    /// Row-major values, last variable fastest.
    values: Values,
}

/// Errors from factor construction.
#[derive(Debug, Clone, PartialEq)]
pub enum FactorError {
    /// A variable id appeared twice.
    DuplicateVariable(usize),
    /// A cardinality was zero.
    ZeroCardinality(usize),
    /// The value table length does not equal the product of cardinalities.
    WrongLength {
        /// Expected number of entries.
        expected: usize,
        /// Provided number of entries.
        got: usize,
    },
    /// A value was negative or non-finite.
    InvalidValue(f64),
}

impl std::fmt::Display for FactorError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FactorError::DuplicateVariable(v) => write!(f, "variable {v} appears twice"),
            FactorError::ZeroCardinality(v) => write!(f, "variable {v} has zero states"),
            FactorError::WrongLength { expected, got } => {
                write!(f, "value table has {got} entries, expected {expected}")
            }
            FactorError::InvalidValue(v) => write!(f, "invalid factor value {v}"),
        }
    }
}

impl std::error::Error for FactorError {}

impl Factor {
    /// Builds a factor over `vars` (id, cardinality) with the given values
    /// (row-major, **in the order the vars are given**, last fastest).
    /// Variables are re-sorted by id internally, transposing the table as
    /// needed.
    ///
    /// # Errors
    ///
    /// See [`FactorError`].
    pub fn new(vars: Vec<(usize, usize)>, values: Vec<f64>) -> Result<Self, FactorError> {
        let mut seen = BTreeMap::new();
        for (v, c) in &vars {
            if *c == 0 {
                return Err(FactorError::ZeroCardinality(*v));
            }
            if seen.insert(*v, *c).is_some() {
                return Err(FactorError::DuplicateVariable(*v));
            }
        }
        let expected: usize = vars.iter().map(|(_, c)| c).product();
        if values.len() != expected {
            return Err(FactorError::WrongLength {
                expected,
                got: values.len(),
            });
        }
        for v in &values {
            if !v.is_finite() || *v < 0.0 {
                return Err(FactorError::InvalidValue(*v));
            }
        }
        // Re-order variables to sorted-by-id, permuting the value table.
        let sorted: Vec<(usize, usize)> = seen.into_iter().collect();
        if sorted == vars {
            return Ok(Factor {
                vars: sorted.into_iter().collect(),
                values: values.into_iter().collect(),
            });
        }
        let mut out = vec![0.0; values.len()];
        let n = vars.len();
        // Strides in the input layout.
        let mut in_stride = vec![1usize; n];
        for i in (0..n.saturating_sub(1)).rev() {
            in_stride[i] = in_stride[i + 1] * vars[i + 1].1;
        }
        // For each input var, its position in the sorted layout.
        let pos_in_sorted: Vec<usize> = vars
            .iter()
            .map(|(v, _)| sorted.iter().position(|(sv, _)| sv == v).expect("present"))
            .collect();
        let mut out_stride = vec![1usize; n];
        for i in (0..n.saturating_sub(1)).rev() {
            out_stride[i] = out_stride[i + 1] * sorted[i + 1].1;
        }
        for (idx, &val) in values.iter().enumerate() {
            let mut out_idx = 0;
            for (i, st) in in_stride.iter().enumerate() {
                let state = (idx / st) % vars[i].1;
                out_idx += state * out_stride[pos_in_sorted[i]];
            }
            out[out_idx] = val;
        }
        Ok(Factor {
            vars: sorted.into_iter().collect(),
            values: out.into_iter().collect(),
        })
    }

    /// A single-variable factor carrying `weights` verbatim — the
    /// allocation-free constructor the inference hot path uses for
    /// virtual-evidence likelihoods. The caller guarantees
    /// `weights.len() == card` and non-negative finite entries (both
    /// query paths validate before constructing).
    pub(crate) fn single(var: usize, card: usize, weights: &[f64]) -> Self {
        debug_assert_eq!(weights.len(), card);
        let mut vars = Vars::new();
        vars.push((var, card));
        let mut values = Values::new();
        values.extend_from_slice(weights);
        Factor { vars, values }
    }

    /// A factor of 1 over no variables (the product identity).
    pub fn identity() -> Self {
        let mut values = Values::new();
        values.push(1.0);
        Factor {
            vars: Vars::new(),
            values,
        }
    }

    /// The (id, cardinality) pairs, sorted by id.
    pub fn vars(&self) -> &[(usize, usize)] {
        &self.vars
    }

    /// The raw value table.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Whether the factor mentions variable `var`.
    pub fn contains(&self, var: usize) -> bool {
        self.vars.iter().any(|(v, _)| *v == var)
    }

    fn strides(&self) -> Strides {
        strides_of(&self.vars)
    }

    /// Pointwise product φ·ψ over the union of variables.
    pub fn product(&self, other: &Factor) -> Factor {
        // Union of vars (both sorted).
        let mut union: Vars = Vars::new();
        union.extend_from_slice(&self.vars);
        for (v, c) in &other.vars {
            if !union.iter().any(|(uv, _)| uv == v) {
                union.push((*v, *c));
            }
        }
        union.sort_unstable();
        let total: usize = union.iter().map(|(_, c)| c).product();
        let u_strides = strides_of(&union);
        // Strides hoisted out of the flat loop (the historical closure
        // recomputed them per index; pure indexing, same products).
        let self_strides = self.strides();
        let other_strides = other.strides();
        let map_index = |f: &Factor, fs: &Strides, assignment: &[usize]| -> usize {
            let mut idx = 0;
            for (i, (v, _)) in f.vars.iter().enumerate() {
                let pos = union.iter().position(|(uv, _)| uv == v).expect("in union");
                idx += assignment[pos] * fs[i];
            }
            idx
        };
        let mut values = Values::new();
        let mut assignment: InlineVec<usize, VARS_INLINE> =
            std::iter::repeat_n(0usize, union.len()).collect();
        for flat in 0..total {
            for (i, st) in u_strides.iter().enumerate() {
                assignment[i] = (flat / st) % union[i].1;
            }
            values.push(
                self.values[map_index(self, &self_strides, &assignment)]
                    * other.values[map_index(other, &other_strides, &assignment)],
            );
        }
        Factor {
            vars: union,
            values,
        }
    }

    /// Sums out variable `var`. If the factor does not mention `var`, the
    /// factor is returned unchanged.
    pub fn marginalize(&self, var: usize) -> Factor {
        let Some(pos) = self.vars.iter().position(|(v, _)| *v == var) else {
            return self.clone();
        };
        let card = self.vars[pos].1;
        let strides = self.strides();
        let stride = strides[pos];
        let new_vars: Vars = self
            .vars
            .iter()
            .copied()
            .filter(|(v, _)| *v != var)
            .collect();
        let total: usize = new_vars.iter().map(|(_, c)| c).product::<usize>().max(1);
        let mut values: Values = std::iter::repeat_n(0.0, total).collect();
        // Walk the original table; project each index.
        let block = stride * card;
        for (idx, &val) in self.values.iter().enumerate() {
            let outer = idx / block;
            let inner = idx % stride;
            values[outer * stride + inner] += val;
        }
        Factor {
            vars: new_vars,
            values,
        }
    }

    /// Fixes variable `var` to `state`, dropping it from the scope.
    ///
    /// # Panics
    ///
    /// Panics if `state` is out of range for `var`. A factor that does not
    /// mention `var` is returned unchanged.
    pub fn reduce(&self, var: usize, state: usize) -> Factor {
        let Some(pos) = self.vars.iter().position(|(v, _)| *v == var) else {
            return self.clone();
        };
        let card = self.vars[pos].1;
        assert!(state < card, "state {state} out of range for var {var}");
        let strides = self.strides();
        let stride = strides[pos];
        let block = stride * card;
        let new_vars: Vars = self
            .vars
            .iter()
            .copied()
            .filter(|(v, _)| *v != var)
            .collect();
        let mut values = Values::new();
        for outer in 0..self.values.len() / block {
            let base = outer * block + state * stride;
            values.extend_from_slice(&self.values[base..base + stride]);
        }
        Factor {
            vars: new_vars,
            values,
        }
    }

    /// Returns the factor scaled so its entries sum to 1.
    ///
    /// # Panics
    ///
    /// Panics if all entries are zero (the distribution is undefined —
    /// usually impossible evidence).
    pub fn normalized(&self) -> Factor {
        let s: f64 = self.values.iter().sum();
        assert!(s > 0.0, "cannot normalize an all-zero factor");
        Factor {
            vars: self.vars.clone(),
            values: self.values.iter().map(|v| v / s).collect(),
        }
    }

    /// Sum of all entries.
    pub fn sum(&self) -> f64 {
        self.values.iter().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_validates() {
        assert!(matches!(
            Factor::new(vec![(0, 2), (0, 2)], vec![1.0; 4]),
            Err(FactorError::DuplicateVariable(0))
        ));
        assert!(matches!(
            Factor::new(vec![(0, 0)], vec![]),
            Err(FactorError::ZeroCardinality(0))
        ));
        assert!(matches!(
            Factor::new(vec![(0, 2)], vec![1.0]),
            Err(FactorError::WrongLength {
                expected: 2,
                got: 1
            })
        ));
        assert!(matches!(
            Factor::new(vec![(0, 2)], vec![1.0, -0.5]),
            Err(FactorError::InvalidValue(_))
        ));
    }

    #[test]
    fn unsorted_vars_are_transposed() {
        // φ(B, A) given with B=var1 first; table entries (b, a).
        let f = Factor::new(
            vec![(1, 2), (0, 3)],
            vec![
                // b=0: a=0,1,2
                1.0, 2.0, 3.0, // b=1: a=0,1,2
                4.0, 5.0, 6.0,
            ],
        )
        .unwrap();
        // After sorting vars = [(0,3),(1,2)], layout (a, b).
        assert_eq!(f.vars(), &[(0, 3), (1, 2)]);
        assert_eq!(f.values(), &[1.0, 4.0, 2.0, 5.0, 3.0, 6.0]);
    }

    #[test]
    fn product_of_disjoint_factors_is_outer_product() {
        let fa = Factor::new(vec![(0, 2)], vec![0.3, 0.7]).unwrap();
        let fb = Factor::new(vec![(1, 2)], vec![0.1, 0.9]).unwrap();
        let p = fa.product(&fb);
        assert_eq!(p.vars(), &[(0, 2), (1, 2)]);
        let expect = [0.3 * 0.1, 0.3 * 0.9, 0.7 * 0.1, 0.7 * 0.9];
        for (a, b) in p.values().iter().zip(expect.iter()) {
            assert!((a - b).abs() < 1e-15);
        }
    }

    #[test]
    fn product_with_identity_is_noop() {
        let fa = Factor::new(vec![(0, 3)], vec![0.2, 0.3, 0.5]).unwrap();
        let p = fa.product(&Factor::identity());
        assert_eq!(p, fa);
    }

    #[test]
    fn marginalize_sums_out() {
        let f = Factor::new(vec![(0, 2), (1, 2)], vec![0.1, 0.2, 0.3, 0.4]).unwrap();
        let m0 = f.marginalize(0);
        assert_eq!(m0.vars(), &[(1, 2)]);
        assert!((m0.values()[0] - 0.4).abs() < 1e-15);
        assert!((m0.values()[1] - 0.6).abs() < 1e-15);
        let m1 = f.marginalize(1);
        assert!((m1.values()[0] - 0.3).abs() < 1e-15);
        assert!((m1.values()[1] - 0.7).abs() < 1e-15);
        // Marginalizing an absent var is a no-op.
        assert_eq!(f.marginalize(7), f);
    }

    #[test]
    fn reduce_fixes_a_state() {
        let f = Factor::new(vec![(0, 2), (1, 3)], vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]).unwrap();
        let r = f.reduce(0, 1);
        assert_eq!(r.vars(), &[(1, 3)]);
        assert_eq!(r.values(), &[4.0, 5.0, 6.0]);
        let r2 = f.reduce(1, 2);
        assert_eq!(r2.vars(), &[(0, 2)]);
        assert_eq!(r2.values(), &[3.0, 6.0]);
    }

    #[test]
    fn chain_rule_recovers_marginal() {
        // P(A): [0.6, 0.4]; P(B|A): A=0 -> [0.9, 0.1], A=1 -> [0.5, 0.5].
        let pa = Factor::new(vec![(0, 2)], vec![0.6, 0.4]).unwrap();
        let pba = Factor::new(vec![(0, 2), (1, 2)], vec![0.9, 0.1, 0.5, 0.5]).unwrap();
        let pb = pa.product(&pba).marginalize(0);
        assert!((pb.values()[0] - (0.6 * 0.9 + 0.4 * 0.5)).abs() < 1e-12);
        assert!((pb.sum() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn normalized_sums_to_one() {
        let f = Factor::new(vec![(0, 2)], vec![2.0, 6.0]).unwrap();
        let n = f.normalized();
        assert!((n.values()[0] - 0.25).abs() < 1e-15);
        assert!((n.sum() - 1.0).abs() < 1e-15);
    }

    #[test]
    #[should_panic(expected = "all-zero")]
    fn normalizing_zero_factor_panics() {
        let f = Factor::new(vec![(0, 2)], vec![0.0, 0.0]).unwrap();
        let _ = f.normalized();
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn reduce_bad_state_panics() {
        let f = Factor::new(vec![(0, 2)], vec![0.5, 0.5]).unwrap();
        let _ = f.reduce(0, 5);
    }

    #[test]
    fn marginalize_to_scalar() {
        let f = Factor::new(vec![(0, 3)], vec![0.2, 0.3, 0.5]).unwrap();
        let s = f.marginalize(0);
        assert!(s.vars().is_empty());
        assert!((s.values()[0] - 1.0).abs() < 1e-15);
    }
}
