//! Factor-product caching for the SAR risk model — the SINADRA leg of the
//! incremental EDDI fast path.
//!
//! Two cache layers, both provably bit-identical to the naive
//! [`SarRiskModel::assess`]:
//!
//! 1. a **reduced-base-factor cache**: the hard-evidence reduction of the
//!    network's base factors depends only on the four boolean situation
//!    flags, so it is kept until a flag flips (a dirty bit keyed on the
//!    packed flags). Hard reduction is pure state-index selection, so the
//!    cached factors carry the exact bits a fresh reduction would produce.
//! 2. a **full-result memo** keyed on the exact bit pattern of the clamped
//!    uncertainty plus the packed flags: repeated identical situations
//!    (common while a UAV loiters or holds) skip inference entirely. Keys
//!    compare by `f64::to_bits`, so even a NaN-bearing uncertainty hits
//!    only against the very same NaN payload.
//!
//! The continuous uncertainty changes almost every tick in flight, so the
//! memo mostly documents the steady-state; the reduced-base cache is the
//! layer that earns its keep per tick.

use crate::inference::{query_with_reduced_in, reduce_base_factors, Evidence, VeScratch};
use crate::risk::{RiskAssessment, SarRiskModel, SituationInputs};
use crate::Factor;
use std::collections::HashMap;

/// Counters for both cache layers.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BnCacheStats {
    /// Assessments answered from the full-result memo.
    pub memo_hits: u64,
    /// Assessments that ran inference.
    pub memo_misses: u64,
    /// Inference runs that reused the reduced base factors.
    pub base_hits: u64,
    /// Inference runs that had to re-reduce (a situation flag flipped).
    pub base_misses: u64,
}

impl BnCacheStats {
    /// Total cache hits across both layers.
    pub fn hits(&self) -> u64 {
        self.memo_hits + self.base_hits
    }

    /// Total cache misses across both layers.
    pub fn misses(&self) -> u64 {
        self.memo_misses + self.base_misses
    }
}

/// Upper bound on memo entries; reaching it clears the memo (the key space
/// is effectively unbounded because the uncertainty is continuous).
const MEMO_CAP: usize = 1024;

#[derive(Debug, Clone)]
struct ReducedBase {
    flags: u8,
    factors: Vec<Factor>,
}

/// [`SarRiskModel`] wrapped with the two cache layers. Results are
/// bit-identical to the wrapped model's [`SarRiskModel::assess`] for every
/// input — the conformance suite locksteps the two over randomized
/// schedules.
#[derive(Debug, Clone)]
pub struct CachedSarRiskModel {
    model: SarRiskModel,
    reduced: Option<ReducedBase>,
    memo: HashMap<(u64, u8), RiskAssessment>,
    scratch: VeScratch,
    stats: BnCacheStats,
}

impl CachedSarRiskModel {
    /// Wraps a risk model.
    pub fn new(model: SarRiskModel) -> Self {
        CachedSarRiskModel {
            model,
            reduced: None,
            // Pre-sized to MEMO_CAP so steady-state inserts never rehash:
            // the memo holds at most MEMO_CAP entries (it is cleared at the
            // cap, which keeps the buckets), so with the capacity reserved
            // up front the memo performs zero allocations after this point.
            memo: HashMap::with_capacity(MEMO_CAP),
            scratch: VeScratch::default(),
            stats: BnCacheStats::default(),
        }
    }

    /// The wrapped model.
    pub fn model(&self) -> &SarRiskModel {
        &self.model
    }

    /// Cache counters.
    pub fn stats(&self) -> BnCacheStats {
        self.stats
    }

    /// [`SarRiskModel::assess`], served through the caches.
    pub fn assess(&mut self, inputs: &SituationInputs) -> RiskAssessment {
        let u = inputs.detection_uncertainty.clamp(0.0, 1.0);
        let flags = u8::from(inputs.altitude_high)
            | u8::from(inputs.visibility_poor) << 1
            | u8::from(inputs.person_likely) << 2
            | u8::from(inputs.time_pressure_high) << 3;
        let key = (u.to_bits(), flags);
        if let Some(hit) = self.memo.get(&key) {
            self.stats.memo_hits += 1;
            return *hit;
        }
        self.stats.memo_misses += 1;

        // Build the evidence exactly as the naive assess() does.
        let bn = self.model.network();
        let id = |name: &str| bn.variable_id(name).expect("known variable");
        let mut ev = Evidence::new()
            .observe(id("altitude"), usize::from(inputs.altitude_high))
            .observe(id("visibility"), usize::from(inputs.visibility_poor))
            .observe(id("presence"), usize::from(inputs.person_likely))
            .observe(id("pressure"), usize::from(inputs.time_pressure_high));
        if u > 0.0 {
            ev = ev.likelihood_slice(id("uncertainty"), &[1.0 - u, u]);
        }

        let stale = !matches!(&self.reduced, Some(r) if r.flags == flags);
        if stale {
            self.stats.base_misses += 1;
            self.reduced = Some(ReducedBase {
                flags,
                factors: reduce_base_factors(bn, &ev).expect("valid evidence"),
            });
        } else {
            self.stats.base_hits += 1;
        }
        let base = &self.reduced.as_ref().expect("just ensured").factors;

        let missed = query_with_reduced_in(bn, id("missed"), &ev, base, &mut self.scratch)
            .expect("valid query");
        let missed = missed.values()[1];
        let criticality =
            query_with_reduced_in(bn, id("criticality"), &ev, base, &mut self.scratch)
                .expect("valid query");
        let criticality = criticality.values()[1];
        let out = RiskAssessment {
            missed_person_prob: missed,
            criticality_high_prob: criticality,
            rescan_advised: criticality >= self.model.rescan_threshold(),
        };
        if self.memo.len() >= MEMO_CAP {
            self.memo.clear();
        }
        self.memo.insert(key, out);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bits(r: &RiskAssessment) -> (u64, u64, bool) {
        (
            r.missed_person_prob.to_bits(),
            r.criticality_high_prob.to_bits(),
            r.rescan_advised,
        )
    }

    /// A deterministic schedule sweeping uncertainties and flag patterns:
    /// the cached model must agree with the naive one bit for bit.
    #[test]
    fn cached_assess_is_bit_identical_to_naive() {
        let naive = SarRiskModel::new();
        let mut cached = CachedSarRiskModel::new(SarRiskModel::new());
        for step in 0..400u32 {
            // Flags hold for 50-step stretches (base-cache hits), then
            // flip (dirty-bit re-reductions); uncertainty moves each step.
            let phase = step / 50;
            let inputs = SituationInputs {
                detection_uncertainty: f64::from(step % 97) / 96.0,
                altitude_high: phase % 3 == 0,
                visibility_poor: phase % 5 == 0,
                person_likely: phase % 2 == 0,
                time_pressure_high: phase % 7 == 0,
            };
            let a = naive.assess(&inputs);
            let b = cached.assess(&inputs);
            assert_eq!(bits(&a), bits(&b), "diverged at step {step}");
        }
        let stats = cached.stats();
        assert!(stats.base_hits > 0, "steady flags must reuse the base");
        assert!(stats.base_misses > 1, "flag flips must re-reduce");
    }

    #[test]
    fn identical_inputs_hit_the_memo() {
        let mut cached = CachedSarRiskModel::new(SarRiskModel::new());
        let inputs = SituationInputs {
            detection_uncertainty: 0.42,
            altitude_high: true,
            visibility_poor: false,
            person_likely: true,
            time_pressure_high: true,
        };
        let first = cached.assess(&inputs);
        let second = cached.assess(&inputs);
        assert_eq!(bits(&first), bits(&second));
        assert_eq!(cached.stats().memo_hits, 1);
        assert_eq!(cached.stats().memo_misses, 1);
    }

    #[test]
    fn clamp_happens_before_the_memo_key() {
        let mut cached = CachedSarRiskModel::new(SarRiskModel::new());
        let naive = SarRiskModel::new();
        for u in [7.0, 1.0, -3.0, 0.0] {
            let inputs = SituationInputs {
                detection_uncertainty: u,
                altitude_high: false,
                visibility_poor: false,
                person_likely: true,
                time_pressure_high: false,
            };
            assert_eq!(bits(&naive.assess(&inputs)), bits(&cached.assess(&inputs)));
        }
        // 7.0 and 1.0 clamp to the same key: the second is a memo hit.
        assert!(cached.stats().memo_hits >= 1);
    }
}
