//! SINADRA — situation-aware dynamic risk assessment.
//!
//! Reproduces the SINADRA technology of the paper (§III-A4, \[35\]): Bayesian
//! networks let the system "leverage situation-specific risk factors and
//! causal influences, akin to human decision-making, to dynamically
//! determine risk at runtime". The crate provides:
//!
//! * [`factor::Factor`] — discrete factors with product / marginalize /
//!   reduce, the algebra of exact inference;
//! * [`bn::BayesianNetwork`] — networks of named discrete variables with
//!   CPTs, validated at build time;
//! * [`inference`] — variable elimination with hard *and* virtual
//!   (likelihood) evidence, so continuous monitor outputs (SafeML /
//!   DeepKnowledge uncertainties) can enter the network without
//!   thresholding;
//! * [`risk`] — the SAR missed-person risk model: "When person detection
//!   uncertainty is high, SINADRA estimates the risk and criticality of
//!   missed persons … High criticality prompts immediate re-scanning of an
//!   area, whereas low criticality allows UAVs to proceed to the next
//!   task."
//!
//! # Examples
//!
//! ```
//! use sesame_sinadra::risk::{SarRiskModel, SituationInputs};
//!
//! let model = SarRiskModel::new();
//! let risky = model.assess(&SituationInputs {
//!     detection_uncertainty: 0.95,
//!     altitude_high: true,
//!     visibility_poor: true,
//!     person_likely: true,
//!     time_pressure_high: true,
//! });
//! assert!(risky.criticality_high_prob > 0.5);
//! assert!(risky.rescan_advised);
//! ```

pub mod bn;
pub mod factor;
pub mod incremental;
pub mod inference;
pub mod risk;

pub use bn::{BayesianNetwork, BnError};
pub use factor::Factor;
pub use incremental::{BnCacheStats, CachedSarRiskModel};
pub use inference::{Evidence, InferenceError};
pub use risk::{
    RiskAssessment, SarRiskModel, SeparationAssessment, SeparationInputs, SeparationRiskModel,
    SituationInputs,
};
