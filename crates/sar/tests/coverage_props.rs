//! Property tests of the coverage planner and allocation.

use proptest::prelude::*;
use sesame_sar::allocation::Allocation;
use sesame_sar::area::split_strips;
use sesame_sar::coverage::{boustrophedon_path, path_length_m};
use sesame_types::geo::GeoPoint;
use sesame_types::ids::{TaskId, UavId};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Strips always partition [0, 1] without gaps or overlaps.
    #[test]
    fn strips_partition(n in 1usize..12) {
        let strips = split_strips(n);
        prop_assert_eq!(strips.len(), n);
        prop_assert!((strips[0].x_min).abs() < 1e-12);
        prop_assert!((strips[n - 1].x_max - 1.0).abs() < 1e-12);
        for w in strips.windows(2) {
            prop_assert!((w[0].x_max - w[1].x_min).abs() < 1e-12);
        }
    }

    /// Every lane of a boustrophedon path lies inside its strip, and
    /// consecutive-lane spacing never exceeds the coverage diameter.
    #[test]
    fn lanes_inside_strip_and_covering(
        width in 60.0..800.0f64,
        height in 60.0..800.0f64,
        n in 1usize..5,
        footprint in 10.0..60.0f64,
    ) {
        let origin = GeoPoint::new(35.0, 33.0, 0.0);
        for strip in split_strips(n) {
            let path = boustrophedon_path(&origin, width, height, &strip, 30.0, footprint);
            prop_assert!(path.len() >= 2);
            let lanes: Vec<f64> = path
                .iter()
                .step_by(2)
                .map(|p| p.to_enu(&origin).east_m)
                .collect();
            for lane in &lanes {
                prop_assert!(
                    *lane >= strip.x_min * width - footprint - 1.0
                        && *lane <= strip.x_max * width + 1.0,
                    "lane {lane} outside strip [{}, {}]",
                    strip.x_min * width,
                    strip.x_max * width
                );
            }
            for w in lanes.windows(2) {
                prop_assert!(w[1] - w[0] <= 2.0 * footprint + 1e-6, "gap {}", w[1] - w[0]);
            }
        }
    }

    /// Path length is monotone in area height for a fixed strip.
    #[test]
    fn path_length_monotone_in_height(h1 in 60.0..400.0f64, extra in 10.0..400.0f64) {
        let origin = GeoPoint::new(35.0, 33.0, 0.0);
        let strip = split_strips(1)[0];
        let short = boustrophedon_path(&origin, 200.0, h1, &strip, 30.0, 25.0);
        let tall = boustrophedon_path(&origin, 200.0, h1 + extra, &strip, 30.0, 25.0);
        prop_assert!(path_length_m(&tall) > path_length_m(&short));
    }

    /// Redistribution conserves total remaining work.
    #[test]
    fn redistribution_conserves_work(
        works in proptest::collection::vec(10.0..500.0f64, 3..6),
        progress in proptest::collection::vec(0.0..1.0f64, 3..6),
    ) {
        let n = works.len().min(progress.len());
        let mut alloc = Allocation::new();
        for i in 0..n {
            alloc.assign(TaskId::new(i as u32), UavId::new(i as u32 + 1), works[i]);
            alloc.record_progress(TaskId::new(i as u32), works[i] * progress[i]);
        }
        let before: f64 = (0..n).map(|i| alloc.remaining(TaskId::new(i as u32))).sum();
        let capable: Vec<UavId> = (1..n).map(|i| UavId::new(i as u32 + 1)).collect();
        let _ = alloc.redistribute_from(UavId::new(1), &capable);
        let after: f64 = (0..n).map(|i| alloc.remaining(TaskId::new(i as u32))).sum();
        prop_assert!((before - after).abs() < 1e-9);
        if !capable.is_empty() {
            prop_assert!(alloc.tasks_of(UavId::new(1))
                .iter()
                .all(|t| alloc.remaining(*t) == 0.0));
        }
    }
}
