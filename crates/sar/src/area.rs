//! Area decomposition into per-UAV strips.

use sesame_types::geo::GeoPoint;

/// One vertical strip of the area of interest, in fractional AOI
/// coordinates (`x` east, `y` north, both in `[0, 1]`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Strip {
    /// West edge, fractional.
    pub x_min: f64,
    /// East edge, fractional.
    pub x_max: f64,
}

impl Strip {
    /// Fractional width of the strip.
    pub fn width(&self) -> f64 {
        self.x_max - self.x_min
    }

    /// Fractional centre of the strip.
    pub fn center_x(&self) -> f64 {
        (self.x_min + self.x_max) / 2.0
    }
}

/// Splits the AOI into `n` equal vertical strips, one per UAV — the
/// parallel-lane pattern of Fig. 4.
///
/// # Panics
///
/// Panics if `n == 0`.
///
/// # Examples
///
/// ```
/// use sesame_sar::area::split_strips;
///
/// let strips = split_strips(3);
/// assert_eq!(strips.len(), 3);
/// assert!((strips[1].x_min - 1.0 / 3.0).abs() < 1e-12);
/// ```
pub fn split_strips(n: usize) -> Vec<Strip> {
    assert!(n > 0, "need at least one strip");
    (0..n)
        .map(|i| Strip {
            x_min: i as f64 / n as f64,
            x_max: (i + 1) as f64 / n as f64,
        })
        .collect()
}

/// Converts a fractional AOI coordinate to a world position at `alt_m`,
/// given the AOI's south-west `origin` and extents.
pub fn to_world(
    origin: &GeoPoint,
    width_m: f64,
    height_m: f64,
    fx: f64,
    fy: f64,
    alt_m: f64,
) -> GeoPoint {
    origin
        .destination(90.0, fx.clamp(0.0, 1.0) * width_m)
        .destination(0.0, fy.clamp(0.0, 1.0) * height_m)
        .with_alt(alt_m)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strips_partition_unit_interval() {
        let strips = split_strips(4);
        assert_eq!(strips[0].x_min, 0.0);
        assert_eq!(strips[3].x_max, 1.0);
        for w in strips.windows(2) {
            assert!((w[0].x_max - w[1].x_min).abs() < 1e-12, "no gaps");
        }
        let total: f64 = strips.iter().map(|s| s.width()).sum();
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn single_strip_covers_everything() {
        let strips = split_strips(1);
        assert_eq!(strips.len(), 1);
        assert_eq!(strips[0].width(), 1.0);
        assert_eq!(strips[0].center_x(), 0.5);
    }

    #[test]
    fn to_world_is_metric() {
        let origin = GeoPoint::new(35.0, 33.0, 0.0);
        let p = to_world(&origin, 300.0, 200.0, 0.5, 1.0, 30.0);
        let enu = p.to_enu(&origin);
        assert!((enu.east_m - 150.0).abs() < 0.5);
        assert!((enu.north_m - 200.0).abs() < 0.5);
        assert_eq!(p.alt_m, 30.0);
    }

    #[test]
    #[should_panic(expected = "at least one strip")]
    fn zero_strips_panics() {
        let _ = split_strips(0);
    }
}
