//! The SAR mission state machine.
//!
//! Tracks per-task waypoint progress, person findings (with spatial
//! de-duplication so the same person reported by two UAVs counts once),
//! and the overall completion fraction — the quantity behind the paper's
//! availability and mission-completion metrics (§V-A).

use sesame_types::geo::GeoPoint;
use sesame_types::ids::{TaskId, UavId};
use sesame_types::time::SimTime;

/// Progress state of one coverage task.
#[derive(Debug, Clone, PartialEq)]
pub struct TaskState {
    /// Task id.
    pub id: TaskId,
    /// Current owner.
    pub owner: UavId,
    /// Full waypoint list.
    pub waypoints: Vec<GeoPoint>,
    /// Index of the next waypoint to visit.
    pub next_waypoint: usize,
}

impl TaskState {
    /// Fraction of waypoints visited.
    pub fn progress(&self) -> f64 {
        if self.waypoints.is_empty() {
            return 1.0;
        }
        self.next_waypoint as f64 / self.waypoints.len() as f64
    }

    /// Whether every waypoint has been visited.
    pub fn is_complete(&self) -> bool {
        self.next_waypoint >= self.waypoints.len()
    }

    /// The remaining waypoints.
    pub fn remaining(&self) -> &[GeoPoint] {
        &self.waypoints[self.next_waypoint.min(self.waypoints.len())..]
    }
}

/// One detected person (after de-duplication).
#[derive(Debug, Clone, PartialEq)]
pub struct Finding {
    /// Estimated position.
    pub position: GeoPoint,
    /// Reporting UAV.
    pub by: UavId,
    /// Detection confidence.
    pub confidence: f64,
    /// When first reported.
    pub time: SimTime,
}

/// The mission: tasks plus findings.
#[derive(Debug, Clone, Default)]
pub struct SarMission {
    tasks: Vec<TaskState>,
    findings: Vec<Finding>,
    /// Two reports closer than this are the same person, metres.
    pub dedup_radius_m: f64,
}

impl SarMission {
    /// An empty mission with a 10 m de-duplication radius.
    pub fn new() -> Self {
        SarMission {
            tasks: Vec::new(),
            findings: Vec::new(),
            dedup_radius_m: 10.0,
        }
    }

    /// Adds a coverage task.
    pub fn add_task(&mut self, id: TaskId, owner: UavId, waypoints: Vec<GeoPoint>) {
        self.tasks.push(TaskState {
            id,
            owner,
            waypoints,
            next_waypoint: 0,
        });
    }

    /// All tasks.
    pub fn tasks(&self) -> &[TaskState] {
        &self.tasks
    }

    /// Mutable task lookup.
    pub fn task_mut(&mut self, id: TaskId) -> Option<&mut TaskState> {
        self.tasks.iter_mut().find(|t| t.id == id)
    }

    /// Task lookup.
    pub fn task(&self, id: TaskId) -> Option<&TaskState> {
        self.tasks.iter().find(|t| t.id == id)
    }

    /// Marks waypoints of `task` visited while the UAV is within
    /// `acceptance_m` of the next one. Returns how many were newly
    /// visited.
    pub fn visit(&mut self, task: TaskId, position: &GeoPoint, acceptance_m: f64) -> usize {
        let Some(t) = self.task_mut(task) else {
            return 0;
        };
        let mut visited = 0;
        while t.next_waypoint < t.waypoints.len() {
            let wp = &t.waypoints[t.next_waypoint];
            if wp.haversine_distance_m(position) <= acceptance_m {
                t.next_waypoint += 1;
                visited += 1;
            } else {
                break;
            }
        }
        visited
    }

    /// Reassigns a task to a new owner (redistribution).
    pub fn reassign(&mut self, task: TaskId, to: UavId) -> bool {
        match self.task_mut(task) {
            Some(t) => {
                t.owner = to;
                true
            }
            None => false,
        }
    }

    /// Reports a person detection; duplicates within
    /// [`SarMission::dedup_radius_m`] update confidence instead of adding
    /// a new finding. Returns `true` for a *new* finding.
    pub fn report_person(
        &mut self,
        position: GeoPoint,
        by: UavId,
        confidence: f64,
        time: SimTime,
    ) -> bool {
        for f in self.findings.iter_mut() {
            if f.position.haversine_distance_m(&position) <= self.dedup_radius_m {
                if confidence > f.confidence {
                    f.confidence = confidence;
                    f.position = position;
                }
                return false;
            }
        }
        self.findings.push(Finding {
            position,
            by,
            confidence,
            time,
        });
        true
    }

    /// De-duplicated findings.
    pub fn findings(&self) -> &[Finding] {
        &self.findings
    }

    /// Completion fraction over all tasks (waypoint-weighted).
    pub fn completion(&self) -> f64 {
        let total: usize = self.tasks.iter().map(|t| t.waypoints.len()).sum();
        if total == 0 {
            return 1.0;
        }
        let done: usize = self.tasks.iter().map(|t| t.next_waypoint).sum();
        done as f64 / total as f64
    }

    /// Whether every task is complete.
    pub fn is_complete(&self) -> bool {
        self.tasks.iter().all(|t| t.is_complete())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn wp(i: usize) -> GeoPoint {
        GeoPoint::new(35.0, 33.0, 30.0).destination(90.0, i as f64 * 50.0)
    }

    fn mission() -> SarMission {
        let mut m = SarMission::new();
        m.add_task(TaskId::new(0), UavId::new(1), vec![wp(0), wp(1), wp(2)]);
        m.add_task(TaskId::new(1), UavId::new(2), vec![wp(3), wp(4)]);
        m
    }

    #[test]
    fn visiting_advances_progress_in_order() {
        let mut m = mission();
        assert_eq!(m.visit(TaskId::new(0), &wp(0), 5.0), 1);
        assert_eq!(m.task(TaskId::new(0)).unwrap().next_waypoint, 1);
        // Being near waypoint 2 without passing 1 does not skip.
        assert_eq!(m.visit(TaskId::new(0), &wp(2), 5.0), 0);
        assert_eq!(m.visit(TaskId::new(0), &wp(1), 5.0), 1);
        assert_eq!(m.visit(TaskId::new(0), &wp(2), 5.0), 1);
        assert!(m.task(TaskId::new(0)).unwrap().is_complete());
    }

    #[test]
    fn completion_is_waypoint_weighted() {
        let mut m = mission();
        assert_eq!(m.completion(), 0.0);
        m.visit(TaskId::new(0), &wp(0), 5.0);
        assert!((m.completion() - 0.2).abs() < 1e-12);
        for i in 1..3 {
            m.visit(TaskId::new(0), &wp(i), 5.0);
        }
        m.visit(TaskId::new(1), &wp(3), 5.0);
        m.visit(TaskId::new(1), &wp(4), 5.0);
        assert_eq!(m.completion(), 1.0);
        assert!(m.is_complete());
    }

    #[test]
    fn empty_mission_is_complete() {
        let m = SarMission::new();
        assert_eq!(m.completion(), 1.0);
        assert!(m.is_complete());
    }

    #[test]
    fn reassignment_changes_owner() {
        let mut m = mission();
        assert!(m.reassign(TaskId::new(1), UavId::new(1)));
        assert_eq!(m.task(TaskId::new(1)).unwrap().owner, UavId::new(1));
        assert!(!m.reassign(TaskId::new(9), UavId::new(1)));
    }

    #[test]
    fn person_reports_deduplicate() {
        let mut m = mission();
        let p = GeoPoint::new(35.001, 33.001, 0.0);
        assert!(m.report_person(p, UavId::new(1), 0.8, SimTime::ZERO));
        // Same person seen 3 m away by another UAV: no new finding, but
        // the better confidence wins.
        let nearby = p.destination(0.0, 3.0);
        assert!(!m.report_person(nearby, UavId::new(2), 0.95, SimTime::from_secs(1)));
        assert_eq!(m.findings().len(), 1);
        assert_eq!(m.findings()[0].confidence, 0.95);
        // A person 50 m away is someone else.
        let other = p.destination(0.0, 50.0);
        assert!(m.report_person(other, UavId::new(2), 0.7, SimTime::from_secs(2)));
        assert_eq!(m.findings().len(), 2);
    }

    #[test]
    fn lower_confidence_duplicate_does_not_downgrade() {
        let mut m = mission();
        let p = GeoPoint::new(35.001, 33.001, 0.0);
        m.report_person(p, UavId::new(1), 0.9, SimTime::ZERO);
        m.report_person(p, UavId::new(2), 0.5, SimTime::from_secs(1));
        assert_eq!(m.findings()[0].confidence, 0.9);
    }

    #[test]
    fn remaining_waypoints_view() {
        let mut m = mission();
        m.visit(TaskId::new(0), &wp(0), 5.0);
        let t = m.task(TaskId::new(0)).unwrap();
        assert_eq!(t.remaining().len(), 2);
        assert!((t.progress() - 1.0 / 3.0).abs() < 1e-12);
    }
}
