//! Task allocation and redistribution.
//!
//! Strips start one-per-UAV. When the mission decider reports a UAV loss
//! with spare capacity ("Redistribute task among remaining capable UAVs",
//! Fig. 1), the orphaned strips are handed greedily to the capable UAV
//! with the least remaining work.

use sesame_types::ids::{TaskId, UavId};
use std::collections::BTreeMap;

/// The live assignment of tasks (strips) to UAVs.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Allocation {
    /// task -> owner.
    owners: BTreeMap<TaskId, UavId>,
    /// Remaining work per task, metres of path.
    remaining: BTreeMap<TaskId, f64>,
}

impl Allocation {
    /// Empty allocation.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a task with its owner and workload.
    pub fn assign(&mut self, task: TaskId, owner: UavId, work_m: f64) {
        self.owners.insert(task, owner);
        self.remaining.insert(task, work_m.max(0.0));
    }

    /// The owner of a task.
    pub fn owner(&self, task: TaskId) -> Option<UavId> {
        self.owners.get(&task).copied()
    }

    /// Remaining work of a task, metres.
    pub fn remaining(&self, task: TaskId) -> f64 {
        self.remaining.get(&task).copied().unwrap_or(0.0)
    }

    /// Records progress on a task (remaining work floors at zero).
    pub fn record_progress(&mut self, task: TaskId, done_m: f64) {
        if let Some(r) = self.remaining.get_mut(&task) {
            *r = (*r - done_m.max(0.0)).max(0.0);
        }
    }

    /// Tasks owned by a UAV.
    pub fn tasks_of(&self, uav: UavId) -> Vec<TaskId> {
        self.owners
            .iter()
            .filter(|(_, o)| **o == uav)
            .map(|(t, _)| *t)
            .collect()
    }

    /// Total remaining work of a UAV, metres.
    pub fn load_of(&self, uav: UavId) -> f64 {
        self.tasks_of(uav).iter().map(|t| self.remaining(*t)).sum()
    }

    /// Redistributes every unfinished task of `lost` to the UAV in
    /// `capable` with the smallest current load (greedy, one task at a
    /// time). Returns the reassignments as `(task, from, to)`.
    pub fn redistribute_from(
        &mut self,
        lost: UavId,
        capable: &[UavId],
    ) -> Vec<(TaskId, UavId, UavId)> {
        if capable.is_empty() {
            return Vec::new();
        }
        let mut orphans: Vec<TaskId> = self
            .tasks_of(lost)
            .into_iter()
            .filter(|t| self.remaining(*t) > 0.0)
            .collect();
        // Hand out the biggest orphan first.
        orphans.sort_by(|a, b| {
            self.remaining(*b)
                .partial_cmp(&self.remaining(*a))
                .expect("finite work")
        });
        let mut moves = Vec::new();
        for task in orphans {
            let target = capable
                .iter()
                .copied()
                .filter(|u| *u != lost)
                .min_by(|a, b| {
                    self.load_of(*a)
                        .partial_cmp(&self.load_of(*b))
                        .expect("finite load")
                });
            let Some(to) = target else { break };
            self.owners.insert(task, to);
            moves.push((task, lost, to));
        }
        moves
    }

    /// Completion fraction over all registered work.
    pub fn completion(&self, original_total_m: f64) -> f64 {
        if original_total_m <= 0.0 {
            return 1.0;
        }
        let left: f64 = self.remaining.values().sum();
        (1.0 - left / original_total_m).clamp(0.0, 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> Allocation {
        let mut a = Allocation::new();
        a.assign(TaskId::new(0), UavId::new(1), 300.0);
        a.assign(TaskId::new(1), UavId::new(2), 300.0);
        a.assign(TaskId::new(2), UavId::new(3), 300.0);
        a
    }

    #[test]
    fn initial_assignment() {
        let a = setup();
        assert_eq!(a.owner(TaskId::new(0)), Some(UavId::new(1)));
        assert_eq!(a.load_of(UavId::new(2)), 300.0);
        assert_eq!(a.tasks_of(UavId::new(3)), vec![TaskId::new(2)]);
    }

    #[test]
    fn progress_reduces_load_and_floors() {
        let mut a = setup();
        a.record_progress(TaskId::new(0), 120.0);
        assert_eq!(a.remaining(TaskId::new(0)), 180.0);
        a.record_progress(TaskId::new(0), 1e9);
        assert_eq!(a.remaining(TaskId::new(0)), 0.0);
        a.record_progress(TaskId::new(0), -50.0);
        assert_eq!(
            a.remaining(TaskId::new(0)),
            0.0,
            "negative progress ignored"
        );
    }

    #[test]
    fn redistribution_moves_unfinished_work() {
        let mut a = setup();
        a.record_progress(TaskId::new(2), 100.0); // UAV 3 did 100 of 300
        let moves = a.redistribute_from(UavId::new(3), &[UavId::new(1), UavId::new(2)]);
        assert_eq!(moves.len(), 1);
        let (task, from, to) = moves[0];
        assert_eq!(task, TaskId::new(2));
        assert_eq!(from, UavId::new(3));
        assert!(to == UavId::new(1) || to == UavId::new(2));
        assert_eq!(a.tasks_of(UavId::new(3)), vec![]);
        assert_eq!(a.remaining(TaskId::new(2)), 200.0, "progress preserved");
    }

    #[test]
    fn redistribution_balances_load() {
        let mut a = Allocation::new();
        a.assign(TaskId::new(0), UavId::new(1), 100.0);
        a.assign(TaskId::new(1), UavId::new(2), 500.0);
        a.assign(TaskId::new(2), UavId::new(3), 300.0);
        a.assign(TaskId::new(3), UavId::new(3), 200.0);
        let moves = a.redistribute_from(UavId::new(3), &[UavId::new(1), UavId::new(2)]);
        assert_eq!(moves.len(), 2);
        // Biggest orphan (300) goes to the lighter UAV 1 (100), then the
        // 200 m orphan again to UAV 1 (now 400) vs UAV 2 (500) -> UAV 1.
        assert_eq!(a.load_of(UavId::new(1)), 600.0);
        assert_eq!(a.load_of(UavId::new(2)), 500.0);
    }

    #[test]
    fn finished_tasks_are_not_moved() {
        let mut a = setup();
        a.record_progress(TaskId::new(2), 300.0);
        let moves = a.redistribute_from(UavId::new(3), &[UavId::new(1)]);
        assert!(moves.is_empty());
    }

    #[test]
    fn no_capable_uavs_means_no_moves() {
        let mut a = setup();
        assert!(a.redistribute_from(UavId::new(3), &[]).is_empty());
        assert_eq!(a.owner(TaskId::new(2)), Some(UavId::new(3)));
    }

    #[test]
    fn completion_fraction() {
        let mut a = setup();
        assert_eq!(a.completion(900.0), 0.0);
        a.record_progress(TaskId::new(0), 300.0);
        a.record_progress(TaskId::new(1), 150.0);
        assert!((a.completion(900.0) - 0.5).abs() < 1e-12);
        a.record_progress(TaskId::new(1), 150.0);
        a.record_progress(TaskId::new(2), 300.0);
        assert_eq!(a.completion(900.0), 1.0);
        assert_eq!(Allocation::new().completion(0.0), 1.0);
    }
}
