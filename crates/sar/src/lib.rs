//! Search-and-rescue algorithms: coverage planning, task allocation,
//! mission tracking, accuracy adaptation.
//!
//! The paper's use case (§IV) flies three UAVs over a designated area in
//! parallel strips ("the red, light red, and green lines" of Fig. 4),
//! detecting persons and reallocating strips when a UAV drops out. This
//! crate provides:
//!
//! * [`area`] — decomposition of the rectangular area of interest into
//!   per-UAV strips;
//! * [`coverage`] — boustrophedon (lawnmower) waypoint generation with
//!   line spacing derived from the camera footprint;
//! * [`allocation`] — strip assignment and the greedy redistribution that
//!   implements the mission decider's "redistribute task among remaining
//!   capable UAVs";
//! * [`mission`] — the SAR mission state machine: per-task progress,
//!   person findings with de-duplication, completion fraction;
//! * [`accuracy`] — the §V-B uncertainty-driven altitude adaptation
//!   policy (descend when uncertainty exceeds the threshold).

pub mod accuracy;
pub mod allocation;
pub mod area;
pub mod coverage;
pub mod mission;

pub use accuracy::{AltitudeDecision, AltitudePolicy};
pub use allocation::Allocation;
pub use area::Strip;
pub use coverage::boustrophedon_path;
pub use mission::{Finding, SarMission, TaskState};
