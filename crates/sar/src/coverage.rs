//! Boustrophedon coverage paths.
//!
//! Each strip is swept with north-south lawnmower legs whose spacing
//! equals the camera footprint width at the scan altitude (slightly
//! overlapped), so a complete sweep photographs every point of the strip.

use crate::area::{to_world, Strip};
use sesame_types::geo::GeoPoint;

/// Generates the boustrophedon waypoints for `strip` of an AOI with the
/// given extents, scanning at `alt_m` with a camera whose ground footprint
/// half-width at that altitude is `footprint_half_m`.
///
/// Legs run south→north, north→south, alternating; spacing is 1.8× the
/// half-width (10 % overlap between swaths).
///
/// # Panics
///
/// Panics if extents or the footprint are not positive.
///
/// # Examples
///
/// ```
/// use sesame_sar::area::{split_strips};
/// use sesame_sar::coverage::boustrophedon_path;
/// use sesame_types::geo::GeoPoint;
///
/// let origin = GeoPoint::new(35.0, 33.0, 0.0);
/// let strips = split_strips(3);
/// let path = boustrophedon_path(&origin, 300.0, 200.0, &strips[0], 30.0, 30.0);
/// assert!(path.len() >= 4);
/// assert!(path.iter().all(|wp| (wp.alt_m - 30.0).abs() < 1e-9));
/// ```
pub fn boustrophedon_path(
    origin: &GeoPoint,
    width_m: f64,
    height_m: f64,
    strip: &Strip,
    alt_m: f64,
    footprint_half_m: f64,
) -> Vec<GeoPoint> {
    assert!(width_m > 0.0 && height_m > 0.0, "extents must be positive");
    assert!(footprint_half_m > 0.0, "footprint must be positive");
    let spacing_m = 1.8 * footprint_half_m;
    let strip_width_m = strip.width() * width_m;
    let legs = ((strip_width_m / spacing_m).ceil() as usize).max(1);
    let mut path = Vec::with_capacity(legs * 2);
    for leg in 0..legs {
        // Lane centre in fractional coordinates.
        let fx = strip.x_min
            + ((leg as f64 + 0.5) * spacing_m / width_m)
                .min(strip.width() - 1e-9)
                .max(0.0);
        let (start_y, end_y) = if leg % 2 == 0 { (0.0, 1.0) } else { (1.0, 0.0) };
        path.push(to_world(origin, width_m, height_m, fx, start_y, alt_m));
        path.push(to_world(origin, width_m, height_m, fx, end_y, alt_m));
    }
    path
}

/// Total length of a waypoint path in metres.
pub fn path_length_m(path: &[GeoPoint]) -> f64 {
    path.windows(2).map(|w| w[0].distance_3d_m(&w[1])).sum()
}

/// Generates a rectangular inward-spiral coverage path over the strip —
/// the alternative pattern used by swarm path planners the paper cites
/// (\[4\]): the UAV circles the strip perimeter, stepping inward by the
/// swath width each lap, ending near the centre.
///
/// Compared to the boustrophedon sweep, the spiral keeps the UAV near
/// already-covered ground (useful for progressive-assurance missions) at
/// the cost of more turns.
///
/// # Panics
///
/// Panics if extents or the footprint are not positive.
pub fn spiral_path(
    origin: &GeoPoint,
    width_m: f64,
    height_m: f64,
    strip: &Strip,
    alt_m: f64,
    footprint_half_m: f64,
) -> Vec<GeoPoint> {
    assert!(width_m > 0.0 && height_m > 0.0, "extents must be positive");
    assert!(footprint_half_m > 0.0, "footprint must be positive");
    let step = 1.8 * footprint_half_m;
    let (mut x0, mut x1) = (strip.x_min * width_m, strip.x_max * width_m);
    let (mut y0, mut y1) = (0.0, height_m);
    // Start half a swath inside the perimeter so the footprint covers the
    // edge.
    x0 += footprint_half_m;
    x1 -= footprint_half_m;
    y0 += footprint_half_m;
    y1 -= footprint_half_m;
    let mut path = Vec::new();
    let to_world = |x: f64, y: f64| {
        origin
            .destination(90.0, x.clamp(0.0, width_m))
            .destination(0.0, y.clamp(0.0, height_m))
            .with_alt(alt_m)
    };
    while x0 <= x1 && y0 <= y1 {
        path.push(to_world(x0, y0));
        path.push(to_world(x1, y0));
        path.push(to_world(x1, y1));
        path.push(to_world(x0, y1));
        // Close the lap one step up so the next lap starts inward.
        x0 += step;
        x1 -= step;
        y0 += step;
        y1 -= step;
        if x0 <= x1 && y0 <= y1 {
            path.push(to_world(x0 - step, y0));
        }
    }
    if path.is_empty() {
        // A strip narrower than one swath: a single centre pass.
        path.push(to_world((strip.x_min + strip.x_max) / 2.0 * width_m, 0.0));
        path.push(to_world(
            (strip.x_min + strip.x_max) / 2.0 * width_m,
            height_m,
        ));
    }
    path
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::area::split_strips;

    fn origin() -> GeoPoint {
        GeoPoint::new(35.0, 33.0, 0.0)
    }

    #[test]
    fn path_alternates_direction() {
        let strips = split_strips(1);
        let path = boustrophedon_path(&origin(), 120.0, 200.0, &strips[0], 30.0, 20.0);
        assert!(path.len() >= 6, "several legs expected: {}", path.len());
        // First leg goes north, second comes back south.
        let leg1 = path[1].to_enu(&path[0]);
        assert!(leg1.north_m > 150.0);
        let leg2_start = path[2].to_enu(&path[1]);
        assert!(leg2_start.east_m > 0.0, "moves east between legs");
        let leg2 = path[3].to_enu(&path[2]);
        assert!(leg2.north_m < -150.0);
    }

    #[test]
    fn lane_spacing_covers_strip() {
        let strips = split_strips(1);
        let half = 15.0;
        let path = boustrophedon_path(&origin(), 100.0, 100.0, &strips[0], 30.0, half);
        // Every east coordinate in [0, 100] must be within footprint of a lane.
        let lanes: Vec<f64> = path
            .iter()
            .step_by(2)
            .map(|p| p.to_enu(&origin()).east_m)
            .collect();
        for x in 0..=100 {
            let covered = lanes.iter().any(|l| (l - x as f64).abs() <= half + 1e-6);
            assert!(covered, "east {x} uncovered by lanes {lanes:?}");
        }
    }

    #[test]
    fn separate_strips_do_not_overlap_lanes() {
        let strips = split_strips(3);
        let a = boustrophedon_path(&origin(), 300.0, 100.0, &strips[0], 30.0, 20.0);
        let b = boustrophedon_path(&origin(), 300.0, 100.0, &strips[1], 30.0, 20.0);
        let max_a = a
            .iter()
            .map(|p| p.to_enu(&origin()).east_m)
            .fold(0.0, f64::max);
        let min_b = b
            .iter()
            .map(|p| p.to_enu(&origin()).east_m)
            .fold(f64::INFINITY, f64::min);
        assert!(
            max_a < min_b,
            "strip 0 lanes end before strip 1 lanes begin"
        );
    }

    #[test]
    fn higher_altitude_needs_fewer_legs() {
        let strips = split_strips(1);
        let low = boustrophedon_path(&origin(), 200.0, 100.0, &strips[0], 25.0, 25.0);
        let high = boustrophedon_path(&origin(), 200.0, 100.0, &strips[0], 60.0, 60.0);
        assert!(high.len() < low.len());
        assert!(path_length_m(&high) < path_length_m(&low));
    }

    #[test]
    fn path_length_of_single_leg() {
        let a = origin().with_alt(30.0);
        let b = a.destination(0.0, 100.0);
        assert!((path_length_m(&[a, b]) - 100.0).abs() < 1e-6);
        assert_eq!(path_length_m(&[a]), 0.0);
    }

    #[test]
    #[should_panic(expected = "footprint")]
    fn zero_footprint_panics() {
        let strips = split_strips(1);
        let _ = boustrophedon_path(&origin(), 100.0, 100.0, &strips[0], 30.0, 0.0);
    }

    #[test]
    fn spiral_stays_inside_strip_and_shrinks_inward() {
        let strips = split_strips(1);
        let path = spiral_path(&origin(), 200.0, 200.0, &strips[0], 30.0, 20.0);
        assert!(path.len() >= 8, "multiple laps expected");
        let enus: Vec<_> = path.iter().map(|p| p.to_enu(&origin())).collect();
        for e in &enus {
            assert!((-1.0..=201.0).contains(&e.east_m), "{e:?}");
            assert!((-1.0..=201.0).contains(&e.north_m), "{e:?}");
        }
        // Later laps are strictly inside the first lap's bounding box.
        let first_min_e = enus[..4].iter().map(|e| e.east_m).fold(f64::MAX, f64::min);
        let last = &enus[enus.len() - 1];
        assert!(last.east_m > first_min_e, "spiral moves inward");
    }

    #[test]
    fn spiral_on_tiny_strip_falls_back_to_single_pass() {
        let strips = split_strips(4); // 25 m wide strips of a 100 m area
        let path = spiral_path(&origin(), 100.0, 100.0, &strips[1], 30.0, 30.0);
        assert_eq!(path.len(), 2);
        let a = path[0].to_enu(&origin());
        assert!((a.east_m - 37.5).abs() < 1.0, "centre pass at {}", a.east_m);
    }

    #[test]
    fn spiral_and_boustrophedon_have_comparable_length() {
        let strips = split_strips(1);
        let b = path_length_m(&boustrophedon_path(
            &origin(),
            200.0,
            200.0,
            &strips[0],
            30.0,
            20.0,
        ));
        let s = path_length_m(&spiral_path(
            &origin(),
            200.0,
            200.0,
            &strips[0],
            30.0,
            20.0,
        ));
        let ratio = s / b;
        assert!((0.5..2.0).contains(&ratio), "ratio {ratio}");
    }
}
