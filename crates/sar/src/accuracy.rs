//! Uncertainty-driven altitude adaptation (§V-B).
//!
//! "An uncertainty threshold of 90 % is assumed. When the UAV operates at
//! a higher altitude, the uncertainty levels from the output of SafeML,
//! DeepKnowledge, and SINADRA exceed 90 %. Consequently, it is determined
//! that the UAV should descend to a lower altitude to increase SAR
//! accuracy." The policy below encodes exactly that rule, with hysteresis
//! so the fleet does not oscillate between altitudes.

/// The policy's recommendation for the current tick.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum AltitudeDecision {
    /// Keep the current scan altitude.
    Maintain,
    /// Descend to the embedded target altitude (metres).
    DescendTo(f64),
    /// Uncertainty is fine and the UAV may climb back for wider coverage.
    ClimbTo(f64),
}

/// The §V-B adaptation policy.
///
/// # Examples
///
/// ```
/// use sesame_sar::accuracy::{AltitudeDecision, AltitudePolicy};
///
/// let policy = AltitudePolicy::paper_defaults();
/// // Flying high with 93 % uncertainty: descend to the low scan altitude.
/// assert_eq!(
///     policy.decide(60.0, 0.93),
///     AltitudeDecision::DescendTo(25.0)
/// );
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AltitudePolicy {
    /// Uncertainty at or above which the UAV must descend (paper: 0.9).
    pub descend_threshold: f64,
    /// Uncertainty below which the UAV may climb back (hysteresis band).
    pub climb_threshold: f64,
    /// The low scan altitude, metres (paper operating point: 25 m).
    pub low_altitude_m: f64,
    /// The high scan altitude, metres (wide coverage, 60 m).
    pub high_altitude_m: f64,
}

impl AltitudePolicy {
    /// The thresholds of the §V-B evaluation: descend at ≥90 %
    /// uncertainty, low altitude 25 m, high altitude 60 m; climbing back
    /// requires the uncertainty to fall below 40 %.
    pub fn paper_defaults() -> Self {
        AltitudePolicy {
            descend_threshold: 0.9,
            climb_threshold: 0.4,
            low_altitude_m: 25.0,
            high_altitude_m: 60.0,
        }
    }

    /// Decides the action for a UAV at `current_alt_m` with the combined
    /// uncertainty `uncertainty ∈ [0, 1]`.
    ///
    /// # Panics
    ///
    /// Panics if the policy is inconsistent (`climb >= descend`).
    pub fn decide(&self, current_alt_m: f64, uncertainty: f64) -> AltitudeDecision {
        assert!(
            self.climb_threshold < self.descend_threshold,
            "hysteresis band must be ordered"
        );
        let u = uncertainty.clamp(0.0, 1.0);
        let mid = (self.low_altitude_m + self.high_altitude_m) / 2.0;
        if u >= self.descend_threshold && current_alt_m > self.low_altitude_m + 1.0 {
            AltitudeDecision::DescendTo(self.low_altitude_m)
        } else if u < self.climb_threshold && current_alt_m < mid {
            AltitudeDecision::ClimbTo(self.high_altitude_m)
        } else {
            AltitudeDecision::Maintain
        }
    }
}

impl Default for AltitudePolicy {
    fn default() -> Self {
        Self::paper_defaults()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_scenario_descends() {
        let p = AltitudePolicy::paper_defaults();
        assert_eq!(p.decide(60.0, 0.93), AltitudeDecision::DescendTo(25.0));
    }

    #[test]
    fn already_low_maintains_despite_uncertainty() {
        let p = AltitudePolicy::paper_defaults();
        // At 25 m with 75 % uncertainty (the paper's post-descent state):
        // keep scanning.
        assert_eq!(p.decide(25.0, 0.75), AltitudeDecision::Maintain);
        // Even at 95 % there is no lower altitude to go to.
        assert_eq!(p.decide(25.0, 0.95), AltitudeDecision::Maintain);
    }

    #[test]
    fn hysteresis_prevents_oscillation() {
        let p = AltitudePolicy::paper_defaults();
        // Low altitude, uncertainty between the thresholds: stay.
        assert_eq!(p.decide(25.0, 0.6), AltitudeDecision::Maintain);
        // Only genuinely low uncertainty allows climbing back.
        assert_eq!(p.decide(25.0, 0.2), AltitudeDecision::ClimbTo(60.0));
    }

    #[test]
    fn high_and_confident_maintains() {
        let p = AltitudePolicy::paper_defaults();
        assert_eq!(p.decide(60.0, 0.3), AltitudeDecision::Maintain);
    }

    #[test]
    fn uncertainty_clamped() {
        let p = AltitudePolicy::paper_defaults();
        assert_eq!(p.decide(60.0, 7.0), AltitudeDecision::DescendTo(25.0));
        assert_eq!(p.decide(25.0, -1.0), AltitudeDecision::ClimbTo(60.0));
    }

    #[test]
    #[should_panic(expected = "hysteresis")]
    fn inconsistent_policy_panics() {
        let p = AltitudePolicy {
            descend_threshold: 0.3,
            climb_threshold: 0.5,
            low_altitude_m: 25.0,
            high_altitude_m: 60.0,
        };
        let _ = p.decide(30.0, 0.5);
    }
}
