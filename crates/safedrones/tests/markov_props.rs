//! Property tests of the CTMC solver and the fault-tree evaluator.

use proptest::prelude::*;
use sesame_safedrones::fta::{BasicEventId, FaultTree, Node};
use sesame_safedrones::markov::{Ctmc, CtmcProcess};
use std::collections::HashMap;

fn random_chain() -> impl Strategy<Value = Ctmc> {
    (2usize..6).prop_flat_map(|n| {
        proptest::collection::vec(0.0..0.5f64, n * n).prop_map(move |rates| {
            let mut c = Ctmc::new(n);
            for i in 0..n {
                for j in 0..n {
                    if i != j {
                        c.set_rate(i, j, rates[i * n + j]);
                    }
                }
            }
            c
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The transient distribution stays a probability vector for any
    /// generator and horizon.
    #[test]
    fn transient_is_a_distribution(chain in random_chain(), t in 0.0..200.0f64) {
        let n = chain.len();
        let mut p0 = vec![0.0; n];
        p0[0] = 1.0;
        let p = chain.transient(&p0, t);
        prop_assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        prop_assert!(p.iter().all(|x| *x >= -1e-12));
    }

    /// Chapman–Kolmogorov: advancing t then s equals advancing t + s.
    #[test]
    fn chapman_kolmogorov(chain in random_chain(), t in 0.0..50.0f64, s in 0.0..50.0f64) {
        let n = chain.len();
        let mut p0 = vec![0.0; n];
        p0[0] = 1.0;
        let two_step = chain.transient(&chain.transient(&p0, t), s);
        let one_step = chain.transient(&p0, t + s);
        for (a, b) in two_step.iter().zip(one_step.iter()) {
            prop_assert!((a - b).abs() < 1e-7, "{a} vs {b}");
        }
    }

    /// Absorption probability is monotone in time for chains whose last
    /// state is absorbing.
    #[test]
    fn absorption_monotone(rates in proptest::collection::vec(0.001..0.2f64, 3)) {
        let mut chain = Ctmc::new(4);
        for (i, r) in rates.iter().enumerate() {
            chain.set_rate(i, i + 1, *r);
        }
        let mut proc = CtmcProcess::new(chain, 0);
        let mut last = 0.0;
        for _ in 0..20 {
            proc.advance(5.0);
            let p = proc.mass_in(&[3]);
            prop_assert!(p >= last - 1e-12, "absorption decreased: {last} -> {p}");
            last = p;
        }
    }

    /// De Morgan-ish duality: OR over leaves equals 1 - AND over
    /// complements.
    #[test]
    fn or_and_duality(ps in proptest::collection::vec(0.0..1.0f64, 2..6)) {
        let leaves: Vec<Node> = (0..ps.len()).map(|i| Node::basic(format!("e{i}"))).collect();
        let or_tree = FaultTree::new(Node::or(leaves.clone())).unwrap();
        let and_tree = FaultTree::new(Node::and(leaves)).unwrap();
        let direct: HashMap<BasicEventId, f64> = ps
            .iter()
            .enumerate()
            .map(|(i, p)| (BasicEventId::new(format!("e{i}")), *p))
            .collect();
        let complement: HashMap<BasicEventId, f64> = ps
            .iter()
            .enumerate()
            .map(|(i, p)| (BasicEventId::new(format!("e{i}")), 1.0 - *p))
            .collect();
        let or_p = or_tree.evaluate(&direct).unwrap();
        let and_q = and_tree.evaluate(&complement).unwrap();
        prop_assert!((or_p - (1.0 - and_q)).abs() < 1e-12);
    }

    /// A k-out-of-n voter is monotone in k (more required failures, lower
    /// probability).
    #[test]
    fn voter_monotone_in_k(ps in proptest::collection::vec(0.0..1.0f64, 4..7)) {
        let leaves: Vec<Node> = (0..ps.len()).map(|i| Node::basic(format!("e{i}"))).collect();
        let probs: HashMap<BasicEventId, f64> = ps
            .iter()
            .enumerate()
            .map(|(i, p)| (BasicEventId::new(format!("e{i}")), *p))
            .collect();
        let mut prev = 1.0 + 1e-12;
        for k in 1..=ps.len() {
            let t = FaultTree::new(Node::at_least(k, leaves.clone())).unwrap();
            let p = t.evaluate(&probs).unwrap();
            prop_assert!(p <= prev + 1e-12, "k={k}: {p} > {prev}");
            prev = p;
        }
    }
}
