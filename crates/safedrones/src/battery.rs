//! Temperature-accelerated battery reliability.
//!
//! The §V-A evaluation injects a battery fault "due to high temperature,
//! causing a sharp drop from 80 % to 40 %" of charge. This module provides
//! the Markov battery model that turns such telemetry into a probability of
//! failure:
//!
//! * a four-state chain Healthy → Stressed → Critical → Failed, with the
//!   base degradation rate multiplied by an **Arrhenius acceleration
//!   factor** in temperature and by a depth-of-discharge stress term;
//! * an energy-exhaustion check: given the observed discharge rate, the
//!   probability the pack is empty before the mission ends.

use crate::markov::{Ctmc, CtmcProcess};

/// Boltzmann constant in eV/K.
const K_B_EV: f64 = 8.617_333e-5;

/// State indices of the battery chain.
pub mod state {
    /// Nominal cell behaviour.
    pub const HEALTHY: usize = 0;
    /// Elevated temperature / deep discharge observed.
    pub const STRESSED: usize = 1;
    /// Imminent-failure symptoms (voltage sag, thermal runaway onset).
    pub const CRITICAL: usize = 2;
    /// Absorbing failure.
    pub const FAILED: usize = 3;
}

/// Arrhenius acceleration factor relative to a reference temperature.
///
/// `AF = exp[(Ea/k) · (1/T_ref − 1/T)]` with temperatures in Kelvin; above
/// the reference the factor exceeds 1 and degradation accelerates.
///
/// # Examples
///
/// ```
/// use sesame_safedrones::battery::arrhenius_factor;
///
/// assert!((arrhenius_factor(25.0, 25.0, 0.5) - 1.0).abs() < 1e-12);
/// assert!(arrhenius_factor(60.0, 25.0, 0.5) > 5.0);
/// ```
pub fn arrhenius_factor(temp_c: f64, ref_temp_c: f64, activation_energy_ev: f64) -> f64 {
    let t = temp_c + 273.15;
    let tr = ref_temp_c + 273.15;
    ((activation_energy_ev / K_B_EV) * (1.0 / tr - 1.0 / t)).exp()
}

/// Configuration of the battery reliability model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BatteryParams {
    /// Base Healthy→Stressed rate at the reference temperature, per second.
    pub lambda_base: f64,
    /// Escalation multiplier for Stressed→Critical over the base rate.
    pub escalate_factor: f64,
    /// Escalation multiplier for Critical→Failed over the base rate.
    pub fail_factor: f64,
    /// Arrhenius activation energy in eV.
    pub activation_energy_ev: f64,
    /// Reference temperature in °C.
    pub ref_temp_c: f64,
    /// State of charge below which depletion stress kicks in.
    pub low_soc: f64,
}

impl Default for BatteryParams {
    fn default() -> Self {
        BatteryParams {
            lambda_base: 2e-6,
            escalate_factor: 8.0,
            fail_factor: 40.0,
            activation_energy_ev: 0.5,
            ref_temp_c: 25.0,
            low_soc: 0.2,
        }
    }
}

/// The runtime battery reliability model.
///
/// Call [`BatteryModel::update_telemetry`] with the latest temperature and
/// state of charge, then [`BatteryModel::advance`] each tick; the failure
/// probability accounts for both chemical degradation (Markov chain) and
/// energy exhaustion.
#[derive(Debug, Clone)]
pub struct BatteryModel {
    params: BatteryParams,
    process: CtmcProcess,
    temp_c: f64,
    soc: f64,
    /// Observed discharge rate (fraction of capacity per second).
    discharge_rate: f64,
}

impl BatteryModel {
    /// Creates a model with the given parameters, starting healthy at 25 °C
    /// and full charge.
    pub fn new(params: BatteryParams) -> Self {
        let chain = Self::build_chain(&params, 25.0, 1.0);
        BatteryModel {
            params,
            process: CtmcProcess::new(chain, state::HEALTHY),
            temp_c: 25.0,
            soc: 1.0,
            discharge_rate: 0.0,
        }
    }

    fn build_chain(p: &BatteryParams, temp_c: f64, soc: f64) -> Ctmc {
        let mut chain = Ctmc::new(4);
        Self::write_rates(p, temp_c, soc, &mut chain);
        chain
    }

    /// Writes the temperature/SoC-dependent rates into `chain` in place —
    /// bit-identical to a fresh [`BatteryModel::build_chain`] but without
    /// allocating, so the per-telemetry refresh stays off the heap.
    fn write_rates(p: &BatteryParams, temp_c: f64, soc: f64, chain: &mut Ctmc) {
        let af = arrhenius_factor(temp_c, p.ref_temp_c, p.activation_energy_ev);
        // Depth-of-discharge stress: 1 at full charge, ramping up sharply
        // below `low_soc`.
        let soc_stress = if soc >= p.low_soc {
            1.0 + (1.0 - soc)
        } else {
            2.0 + 20.0 * (p.low_soc - soc) / p.low_soc
        };
        let l = p.lambda_base * af * soc_stress;
        chain.clear_rates();
        chain.set_rate(state::HEALTHY, state::STRESSED, l);
        chain.set_rate(state::STRESSED, state::CRITICAL, l * p.escalate_factor);
        chain.set_rate(state::CRITICAL, state::FAILED, l * p.fail_factor);
        // Mild self-recovery while not failed (cooling down, load shed).
        chain.set_rate(state::STRESSED, state::HEALTHY, p.lambda_base);
    }

    /// Feeds the latest telemetry. A *sharp* state-of-charge drop (more
    /// than 20 percentage points against the trend) is diagnosed as a fault
    /// and collapses the belief to the Critical state — this is the §V-A
    /// trigger.
    pub fn update_telemetry(&mut self, temp_c: f64, soc: f64, dt_secs: f64) {
        let soc = soc.clamp(0.0, 1.0);
        if dt_secs > 0.0 {
            let drop = self.soc - soc;
            if drop > 0.2 {
                // Sharp drop — observed fault, not normal discharge; the
                // discharge-trend estimate must not absorb the step.
                self.process.observe_state(state::CRITICAL);
            } else {
                // Exponentially smoothed discharge trend.
                let instant = (drop / dt_secs).max(0.0);
                self.discharge_rate = if self.discharge_rate == 0.0 {
                    instant
                } else {
                    0.9 * self.discharge_rate + 0.1 * instant
                };
            }
        }
        self.temp_c = temp_c;
        self.soc = soc;
        Self::write_rates(&self.params, temp_c, soc, self.process.chain_mut());
    }

    /// Advances the degradation chain by `dt_secs`.
    pub fn advance(&mut self, dt_secs: f64) {
        self.process.advance(dt_secs);
    }

    /// Enables the bit-identical rate-keyed solver cache on the
    /// underlying Markov process (see [`CtmcProcess::enable_solver_cache`]).
    /// The per-telemetry chain rebuild in
    /// [`BatteryModel::update_telemetry`] self-invalidates it whenever the
    /// rebuilt rates differ bit-wise from the cached ones.
    pub fn enable_solver_cache(&mut self) {
        self.process.enable_solver_cache();
    }

    /// Hit/miss counters of the solver cache.
    pub fn solver_cache_stats(&self) -> crate::markov::SolverCacheStats {
        self.process.solver_cache_stats()
    }

    /// The solve identity of the next [`BatteryModel::advance`] with step
    /// `dt_secs` (see [`crate::markov::CtmcProcess::solve_key`]).
    pub fn solve_key(&self, dt_secs: f64) -> crate::markov::SolveKey {
        self.process.solve_key(dt_secs)
    }

    /// The distribution [`BatteryModel::advance`] would produce, pure
    /// (see [`crate::markov::CtmcProcess::solve_dist`]).
    pub fn solve_dist(&self, dt_secs: f64) -> Vec<f64> {
        self.process.solve_dist(dt_secs)
    }

    /// [`BatteryModel::advance`] with an optional precomputed distribution
    /// (see [`crate::markov::CtmcProcess::advance_primed`]).
    pub fn advance_primed(&mut self, dt_secs: f64, primed: Option<&[f64]>) {
        self.process.advance_primed(dt_secs, primed);
    }

    /// Read-only access to the underlying Markov process, for fleet-level
    /// batched solve scheduling (see
    /// [`crate::markov::CtmcProcess::solve_dists_batch`]).
    pub fn process(&self) -> &CtmcProcess {
        &self.process
    }

    /// Probability the battery has failed chemically by now.
    pub fn probability_of_failure(&self) -> f64 {
        self.process.mass_in(&[state::FAILED])
    }

    /// Probability the battery fails within a further `horizon_secs`
    /// (prognosis; does not mutate the belief).
    pub fn pof_within(&self, horizon_secs: f64) -> f64 {
        let dist = self
            .process
            .chain()
            .transient(self.process.distribution(), horizon_secs);
        dist[state::FAILED]
    }

    /// Probability that the pack is *empty* before `remaining_mission_secs`
    /// elapse, from the observed discharge trend. Deterministic projection
    /// smoothed into a probability with a logistic margin.
    pub fn energy_exhaustion_risk(&self, remaining_mission_secs: f64) -> f64 {
        if self.discharge_rate <= 0.0 {
            return 0.0;
        }
        let endurance = self.soc / self.discharge_rate;
        // Margin in units of 10% of the remaining mission time.
        let margin = (endurance - remaining_mission_secs) / (0.1 * remaining_mission_secs + 1.0);
        1.0 / (1.0 + margin.exp())
    }

    /// Latest state of charge.
    pub fn soc(&self) -> f64 {
        self.soc
    }

    /// Latest temperature in °C.
    pub fn temperature_c(&self) -> f64 {
        self.temp_c
    }

    /// The belief over the four chain states.
    pub fn belief(&self) -> &[f64] {
        self.process.distribution()
    }
}

impl Default for BatteryModel {
    fn default() -> Self {
        Self::new(BatteryParams::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arrhenius_is_one_at_reference() {
        assert!((arrhenius_factor(25.0, 25.0, 0.5) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn arrhenius_monotone_in_temperature() {
        let f30 = arrhenius_factor(30.0, 25.0, 0.5);
        let f50 = arrhenius_factor(50.0, 25.0, 0.5);
        let f70 = arrhenius_factor(70.0, 25.0, 0.5);
        assert!(1.0 < f30 && f30 < f50 && f50 < f70);
        assert!(arrhenius_factor(0.0, 25.0, 0.5) < 1.0, "cold slows aging");
    }

    #[test]
    fn nominal_operation_keeps_pof_tiny() {
        let mut b = BatteryModel::default();
        for _ in 0..600 {
            b.update_telemetry(25.0, 1.0 - 0.0001, 1.0);
            b.advance(1.0);
        }
        assert!(b.probability_of_failure() < 1e-4);
    }

    #[test]
    fn high_temperature_accelerates_failure() {
        let run = |temp: f64| {
            let mut b = BatteryModel::default();
            b.update_telemetry(temp, 0.8, 1.0);
            b.advance(3600.0);
            b.probability_of_failure()
        };
        assert!(run(70.0) > run(25.0) * 3.0);
    }

    #[test]
    fn sharp_soc_drop_collapses_to_critical() {
        let mut b = BatteryModel::default();
        b.update_telemetry(25.0, 0.8, 1.0);
        b.advance(1.0);
        // The §V-A event: 80 % -> 40 % in one tick.
        b.update_telemetry(60.0, 0.4, 1.0);
        assert!(b.belief()[state::CRITICAL] > 0.99);
        // From Critical at 60 °C, failure accumulates fast relative to base.
        let pof_10min = b.pof_within(600.0);
        assert!(pof_10min > 0.05, "pof after fault = {pof_10min}");
    }

    #[test]
    fn gradual_discharge_is_not_a_fault() {
        let mut b = BatteryModel::default();
        let mut soc = 1.0;
        for _ in 0..100 {
            soc -= 0.001;
            b.update_telemetry(25.0, soc, 1.0);
            b.advance(1.0);
        }
        assert!(b.belief()[state::CRITICAL] < 0.01);
    }

    #[test]
    fn exhaustion_risk_tracks_endurance() {
        let mut b = BatteryModel::default();
        b.update_telemetry(25.0, 1.0, 0.0);
        // Discharge 0.1%/s -> endurance 500 s at soc 0.5.
        b.update_telemetry(25.0, 0.999, 1.0);
        let plenty = b.energy_exhaustion_risk(10.0);
        let tight = b.energy_exhaustion_risk(2000.0);
        assert!(plenty < 0.05, "plenty = {plenty}");
        assert!(tight > 0.5, "tight = {tight}");
        assert!(b.energy_exhaustion_risk(0.0) <= 1.0);
    }

    #[test]
    fn no_discharge_means_no_exhaustion_risk() {
        let b = BatteryModel::default();
        assert_eq!(b.energy_exhaustion_risk(1e6), 0.0);
    }

    #[test]
    fn soc_clamped_into_unit_interval() {
        let mut b = BatteryModel::default();
        b.update_telemetry(25.0, 1.7, 1.0);
        assert_eq!(b.soc(), 1.0);
        b.update_telemetry(25.0, -0.3, 1.0);
        assert_eq!(b.soc(), 0.0);
        assert_eq!(b.temperature_c(), 25.0);
    }
}
