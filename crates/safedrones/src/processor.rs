//! Processor (companion computer) reliability.
//!
//! SafeDrones "includes the estimation of the probability of failure,
//! taking into account various components such as the battery, processor
//! \[31\], and UAV rotors" (§III-A1). The processor model follows the
//! soft-error-rate view of \[31\]: an exponential failure law whose rate is
//! the sum of a permanent-fault rate and an SER contribution scaled by
//! utilization (busier silicon flips more architecturally-visible bits).

/// Processor reliability model.
///
/// # Examples
///
/// ```
/// use sesame_safedrones::processor::ProcessorModel;
///
/// let mut p = ProcessorModel::new(1e-7, 5e-7);
/// p.set_utilization(0.8);
/// p.advance(3600.0);
/// assert!(p.probability_of_failure() > 0.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ProcessorModel {
    lambda_permanent: f64,
    lambda_ser: f64,
    utilization: f64,
    /// Accumulated hazard ∫λ dt.
    hazard: f64,
}

impl ProcessorModel {
    /// Creates a model with a permanent-fault rate and a full-utilization
    /// soft-error rate, both per second.
    ///
    /// # Panics
    ///
    /// Panics if either rate is negative or non-finite.
    pub fn new(lambda_permanent: f64, lambda_ser: f64) -> Self {
        assert!(
            lambda_permanent.is_finite() && lambda_permanent >= 0.0,
            "permanent rate must be ≥ 0"
        );
        assert!(
            lambda_ser.is_finite() && lambda_ser >= 0.0,
            "SER rate must be ≥ 0"
        );
        ProcessorModel {
            lambda_permanent,
            lambda_ser,
            utilization: 0.5,
            hazard: 0.0,
        }
    }

    /// Sets the current utilization in `[0, 1]` (clamped).
    pub fn set_utilization(&mut self, u: f64) {
        self.utilization = u.clamp(0.0, 1.0);
    }

    /// Current utilization.
    pub fn utilization(&self) -> f64 {
        self.utilization
    }

    /// The effective failure rate right now.
    pub fn effective_rate(&self) -> f64 {
        self.lambda_permanent + self.lambda_ser * self.utilization
    }

    /// Accumulates `dt_secs` of operation at the current utilization.
    pub fn advance(&mut self, dt_secs: f64) {
        self.hazard += self.effective_rate() * dt_secs.max(0.0);
    }

    /// Probability the processor has failed by now.
    pub fn probability_of_failure(&self) -> f64 {
        1.0 - (-self.hazard).exp()
    }

    /// Probability of failure within a further `horizon_secs` at the
    /// current utilization, conditional on having survived so far.
    pub fn pof_within(&self, horizon_secs: f64) -> f64 {
        1.0 - (-self.effective_rate() * horizon_secs.max(0.0)).exp()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_exponential_closed_form() {
        let mut p = ProcessorModel::new(1e-6, 0.0);
        p.advance(1e5);
        let expect = 1.0 - (-0.1f64).exp();
        assert!((p.probability_of_failure() - expect).abs() < 1e-12);
    }

    #[test]
    fn utilization_scales_ser() {
        let mut idle = ProcessorModel::new(0.0, 1e-6);
        idle.set_utilization(0.0);
        let mut busy = ProcessorModel::new(0.0, 1e-6);
        busy.set_utilization(1.0);
        idle.advance(1e5);
        busy.advance(1e5);
        assert_eq!(idle.probability_of_failure(), 0.0);
        assert!(busy.probability_of_failure() > 0.0);
        assert!((busy.effective_rate() - 1e-6).abs() < 1e-18);
    }

    #[test]
    fn utilization_clamps() {
        let mut p = ProcessorModel::new(0.0, 1e-6);
        p.set_utilization(3.0);
        assert_eq!(p.utilization(), 1.0);
        p.set_utilization(-1.0);
        assert_eq!(p.utilization(), 0.0);
    }

    #[test]
    fn piecewise_utilization_accumulates_hazard() {
        let mut p = ProcessorModel::new(0.0, 1e-6);
        p.set_utilization(1.0);
        p.advance(1000.0);
        p.set_utilization(0.0);
        p.advance(1e9); // idle forever adds nothing
        let expect = 1.0 - (-1e-3f64).exp();
        assert!((p.probability_of_failure() - expect).abs() < 1e-12);
    }

    #[test]
    fn prognosis_uses_current_rate() {
        let mut p = ProcessorModel::new(1e-6, 1e-6);
        p.set_utilization(0.5);
        let want = 1.0 - (-(1e-6 + 5e-7) * 100.0f64).exp();
        assert!((p.pof_within(100.0) - want).abs() < 1e-15);
    }

    #[test]
    fn negative_dt_ignored() {
        let mut p = ProcessorModel::new(1e-6, 0.0);
        p.advance(-100.0);
        assert_eq!(p.probability_of_failure(), 0.0);
    }

    #[test]
    #[should_panic(expected = "must be ≥ 0")]
    fn negative_rate_panics() {
        let _ = ProcessorModel::new(-1.0, 0.0);
    }
}
