//! Graphviz export of fault trees.
//!
//! DDIs are exchanged between tools as design-time artefacts (the paper
//! cites the Open Dependability Exchange metamodel \[26\]); this module
//! provides the inspection half of that story: render any
//! [`FaultTree`] as DOT for review alongside the
//! runtime models it drives.

use crate::fta::{FaultTree, Gate, Node};
use std::fmt::Write as _;

/// Renders the tree as a Graphviz `digraph`.
///
/// Gates are boxes labelled with their kind, basic events are ellipses;
/// edges point from gates to their children (top event at the top).
///
/// # Examples
///
/// ```
/// use sesame_safedrones::export::to_dot;
/// use sesame_safedrones::fta::{FaultTree, Node};
///
/// let tree = FaultTree::new(Node::or(vec![
///     Node::basic("battery"),
///     Node::basic("motor"),
/// ]))?;
/// let dot = to_dot(&tree, "uav_loss");
/// assert!(dot.contains("digraph"));
/// assert!(dot.contains("battery"));
/// # Ok::<(), sesame_safedrones::fta::FtaError>(())
/// ```
pub fn to_dot(tree: &FaultTree, name: &str) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "digraph \"{}\" {{", escape(name));
    let _ = writeln!(out, "  rankdir=TB;");
    let _ = writeln!(out, "  node [fontname=\"Helvetica\"];");
    let mut counter = 0usize;
    walk(tree.top(), &mut out, &mut counter);
    out.push_str("}\n");
    out
}

fn walk(node: &Node, out: &mut String, counter: &mut usize) -> String {
    let id = format!("n{}", *counter);
    *counter += 1;
    match node {
        Node::Basic(b) => {
            let _ = writeln!(
                out,
                "  {id} [shape=ellipse, label=\"{}\"];",
                escape(b.as_str())
            );
        }
        Node::Gate { kind, children } => {
            let label = match kind {
                Gate::And => "AND".to_string(),
                Gate::Or => "OR".to_string(),
                Gate::AtLeast(k) => format!("≥{k}"),
            };
            let _ = writeln!(out, "  {id} [shape=box, label=\"{label}\"];");
            for c in children {
                let child_id = walk(c, out, counter);
                let _ = writeln!(out, "  {id} -> {child_id};");
            }
        }
    }
    id
}

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fta::{FaultTree, Node};

    fn tree() -> FaultTree {
        FaultTree::new(Node::or(vec![
            Node::basic("battery"),
            Node::and(vec![Node::basic("link_a"), Node::basic("link_b")]),
            Node::at_least(
                2,
                vec![Node::basic("m1"), Node::basic("m2"), Node::basic("m3")],
            ),
        ]))
        .unwrap()
    }

    #[test]
    fn dot_contains_every_leaf_and_gate() {
        let dot = to_dot(&tree(), "uav");
        for leaf in ["battery", "link_a", "link_b", "m1", "m2", "m3"] {
            assert!(dot.contains(leaf), "missing {leaf}\n{dot}");
        }
        assert!(dot.contains("OR"));
        assert!(dot.contains("AND"));
        assert!(dot.contains("≥2"));
        assert!(dot.starts_with("digraph"));
        assert!(dot.trim_end().ends_with('}'));
    }

    #[test]
    fn edges_match_structure() {
        let dot = to_dot(&tree(), "uav");
        // Root OR has 3 children; AND has 2; voter has 3 => 8 edges.
        let edges = dot.matches("->").count();
        assert_eq!(edges, 8);
    }

    #[test]
    fn labels_are_escaped() {
        let t = FaultTree::new(Node::basic("evil\"label")).unwrap();
        let dot = to_dot(&t, "x\"y");
        assert!(dot.contains("evil\\\"label"));
        assert!(dot.contains("x\\\"y"));
    }
}
