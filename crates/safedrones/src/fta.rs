//! Fault tree analysis with complex basic events.
//!
//! SafeDrones extends classical FTA with *complex basic events* — leaves
//! whose probability comes from a live Markov model instead of a fixed
//! failure rate (\[29\] in the paper). Here a [`FaultTree`] is a DAG of
//! AND / OR / k-out-of-N gates over named [`BasicEventId`] leaves, and
//! evaluation takes the current leaf probabilities as input, so any leaf
//! can be "complex": the caller feeds it from a
//! [`crate::markov::CtmcProcess`] each tick.
//!
//! Evaluation assumes statistically independent leaves (the standard FTA
//! assumption, stated in DESIGN.md).

use sesame_types::InlineVec;
use std::collections::HashMap;
use std::fmt;

/// Name of a basic event (leaf) in a fault tree.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BasicEventId(String);

impl BasicEventId {
    /// Creates a basic-event id.
    pub fn new(name: impl Into<String>) -> Self {
        BasicEventId(name.into())
    }

    /// The name as a string slice.
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl fmt::Display for BasicEventId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl From<&str> for BasicEventId {
    fn from(s: &str) -> Self {
        BasicEventId::new(s)
    }
}

/// Gate kinds supported by the tree.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Gate {
    /// Output fails iff **all** children fail.
    And,
    /// Output fails iff **any** child fails.
    Or,
    /// Output fails iff **at least `k`** children fail (a voter gate; the
    /// paper's propulsion reconfiguration maps naturally onto this).
    AtLeast(usize),
}

/// One node of the tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Node {
    /// A (possibly complex) basic event.
    Basic(BasicEventId),
    /// A gate over child nodes.
    Gate {
        /// The combinator.
        kind: Gate,
        /// Child subtrees.
        children: Vec<Node>,
    },
}

impl Node {
    /// Convenience constructor for a basic-event leaf.
    pub fn basic(name: impl Into<String>) -> Node {
        Node::Basic(BasicEventId::new(name))
    }

    /// Convenience constructor for an AND gate.
    pub fn and(children: Vec<Node>) -> Node {
        Node::Gate {
            kind: Gate::And,
            children,
        }
    }

    /// Convenience constructor for an OR gate.
    pub fn or(children: Vec<Node>) -> Node {
        Node::Gate {
            kind: Gate::Or,
            children,
        }
    }

    /// Convenience constructor for a k-out-of-N gate.
    pub fn at_least(k: usize, children: Vec<Node>) -> Node {
        Node::Gate {
            kind: Gate::AtLeast(k),
            children,
        }
    }
}

/// Errors from building or evaluating a fault tree.
#[derive(Debug, Clone, PartialEq)]
pub enum FtaError {
    /// A gate has no children.
    EmptyGate,
    /// An `AtLeast(k)` gate has fewer than `k` children.
    InfeasibleVote {
        /// Required failures.
        k: usize,
        /// Available children.
        n: usize,
    },
    /// Evaluation was asked for a leaf with no supplied probability.
    MissingProbability(BasicEventId),
    /// A supplied probability was outside `[0, 1]`.
    InvalidProbability(BasicEventId, f64),
}

impl fmt::Display for FtaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FtaError::EmptyGate => write!(f, "gate with no children"),
            FtaError::InfeasibleVote { k, n } => {
                write!(f, "at-least-{k} gate with only {n} children")
            }
            FtaError::MissingProbability(id) => {
                write!(f, "no probability supplied for basic event `{id}`")
            }
            FtaError::InvalidProbability(id, p) => {
                write!(f, "probability {p} for `{id}` outside [0, 1]")
            }
        }
    }
}

impl std::error::Error for FtaError {}

/// A validated fault tree with a single top event.
///
/// # Examples
///
/// ```
/// use sesame_safedrones::fta::{FaultTree, Node};
/// use std::collections::HashMap;
///
/// // Top fails if the battery fails OR both redundant comm links fail.
/// let tree = FaultTree::new(Node::or(vec![
///     Node::basic("battery"),
///     Node::and(vec![Node::basic("link_a"), Node::basic("link_b")]),
/// ]))?;
///
/// let mut p = HashMap::new();
/// p.insert("battery".into(), 0.1);
/// p.insert("link_a".into(), 0.2);
/// p.insert("link_b".into(), 0.3);
/// let top = tree.evaluate(&p)?;
/// assert!((top - (1.0 - 0.9 * (1.0 - 0.06))).abs() < 1e-12);
/// # Ok::<(), sesame_safedrones::fta::FtaError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct FaultTree {
    top: Node,
    leaves: Vec<BasicEventId>,
}

impl FaultTree {
    /// Builds a tree, validating gate arities.
    ///
    /// # Errors
    ///
    /// Returns [`FtaError::EmptyGate`] or [`FtaError::InfeasibleVote`] if
    /// the structure is malformed.
    pub fn new(top: Node) -> Result<Self, FtaError> {
        let mut leaves = Vec::new();
        Self::validate(&top, &mut leaves)?;
        leaves.sort();
        leaves.dedup();
        Ok(FaultTree { top, leaves })
    }

    fn validate(node: &Node, leaves: &mut Vec<BasicEventId>) -> Result<(), FtaError> {
        match node {
            Node::Basic(id) => {
                leaves.push(id.clone());
                Ok(())
            }
            Node::Gate { kind, children } => {
                if children.is_empty() {
                    return Err(FtaError::EmptyGate);
                }
                if let Gate::AtLeast(k) = kind {
                    if *k == 0 || *k > children.len() {
                        return Err(FtaError::InfeasibleVote {
                            k: *k,
                            n: children.len(),
                        });
                    }
                }
                for c in children {
                    Self::validate(c, leaves)?;
                }
                Ok(())
            }
        }
    }

    /// The distinct basic events referenced by the tree, sorted by name.
    pub fn basic_events(&self) -> &[BasicEventId] {
        &self.leaves
    }

    /// The top node.
    pub fn top(&self) -> &Node {
        &self.top
    }

    /// Evaluates the top-event probability given independent leaf
    /// probabilities.
    ///
    /// # Errors
    ///
    /// Returns [`FtaError::MissingProbability`] if a leaf has no entry and
    /// [`FtaError::InvalidProbability`] if an entry is outside `[0, 1]`.
    pub fn evaluate(&self, probs: &HashMap<BasicEventId, f64>) -> Result<f64, FtaError> {
        self.evaluate_with(&mut |id| probs.get(id).copied())
    }

    /// [`FaultTree::evaluate`] with leaf probabilities supplied by a
    /// callback instead of a map. This is the tick-loop entry point: with
    /// a non-allocating lookup (e.g. a match over known leaf names) the
    /// whole evaluation performs zero heap allocations for AND/OR trees
    /// and for voter gates up to 8 children. Bit-identical to
    /// [`FaultTree::evaluate`]: gates fold their children in the same
    /// order the map-based path multiplied them.
    ///
    /// # Errors
    ///
    /// Returns [`FtaError::MissingProbability`] if `lookup` returns `None`
    /// for a leaf and [`FtaError::InvalidProbability`] if a returned
    /// probability is outside `[0, 1]`.
    pub fn evaluate_with(
        &self,
        lookup: &mut dyn FnMut(&BasicEventId) -> Option<f64>,
    ) -> Result<f64, FtaError> {
        Self::eval_node_with(&self.top, lookup)
    }

    fn eval_node_with(
        node: &Node,
        lookup: &mut dyn FnMut(&BasicEventId) -> Option<f64>,
    ) -> Result<f64, FtaError> {
        match node {
            Node::Basic(id) => {
                let p = lookup(id).ok_or_else(|| FtaError::MissingProbability(id.clone()))?;
                if !(0.0..=1.0).contains(&p) || !p.is_finite() {
                    return Err(FtaError::InvalidProbability(id.clone(), p));
                }
                Ok(p)
            }
            Node::Gate { kind, children } => match kind {
                // `iter().product()` folds from 1.0 in child order; these
                // running folds are the same operation sequence.
                Gate::And => {
                    let mut p = 1.0;
                    for c in children {
                        p *= Self::eval_node_with(c, lookup)?;
                    }
                    Ok(p)
                }
                Gate::Or => {
                    let mut q = 1.0;
                    for c in children {
                        q *= 1.0 - Self::eval_node_with(c, lookup)?;
                    }
                    Ok(1.0 - q)
                }
                Gate::AtLeast(k) => {
                    let mut ps: InlineVec<f64, 8> = InlineVec::new();
                    for c in children {
                        ps.push(Self::eval_node_with(c, lookup)?);
                    }
                    Ok(at_least_k(&ps, *k))
                }
            },
        }
    }
}

/// Probability that at least `k` of the independent events with
/// probabilities `ps` occur, by the standard Poisson-binomial DP.
fn at_least_k(ps: &[f64], k: usize) -> f64 {
    // dp[j] = P(exactly j occurred) over the prefix processed so far.
    let mut dp: InlineVec<f64, 9> = InlineVec::new();
    for _ in 0..=ps.len() {
        dp.push(0.0);
    }
    dp[0] = 1.0;
    for (i, &p) in ps.iter().enumerate() {
        for j in (0..=i + 1).rev() {
            let stay = dp[j] * (1.0 - p);
            let come = if j > 0 { dp[j - 1] * p } else { 0.0 };
            dp[j] = stay + come;
        }
    }
    dp[k..].iter().sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn probs(pairs: &[(&str, f64)]) -> HashMap<BasicEventId, f64> {
        pairs
            .iter()
            .map(|(n, p)| (BasicEventId::new(*n), *p))
            .collect()
    }

    #[test]
    fn single_leaf_passthrough() {
        let t = FaultTree::new(Node::basic("x")).unwrap();
        assert_eq!(t.evaluate(&probs(&[("x", 0.42)])).unwrap(), 0.42);
        assert_eq!(t.basic_events(), &[BasicEventId::new("x")]);
    }

    #[test]
    fn and_gate_multiplies() {
        let t = FaultTree::new(Node::and(vec![Node::basic("a"), Node::basic("b")])).unwrap();
        let p = t.evaluate(&probs(&[("a", 0.5), ("b", 0.4)])).unwrap();
        assert!((p - 0.2).abs() < 1e-15);
    }

    #[test]
    fn or_gate_complements() {
        let t = FaultTree::new(Node::or(vec![Node::basic("a"), Node::basic("b")])).unwrap();
        let p = t.evaluate(&probs(&[("a", 0.5), ("b", 0.4)])).unwrap();
        assert!((p - 0.7).abs() < 1e-15);
    }

    #[test]
    fn two_out_of_three_voter() {
        let t = FaultTree::new(Node::at_least(
            2,
            vec![Node::basic("a"), Node::basic("b"), Node::basic("c")],
        ))
        .unwrap();
        // Equal p: P(>=2 of 3) = 3p²(1-p) + p³.
        let p = 0.3;
        let expect = 3.0 * p * p * (1.0 - p) + p * p * p;
        let got = t.evaluate(&probs(&[("a", p), ("b", p), ("c", p)])).unwrap();
        assert!((got - expect).abs() < 1e-12);
    }

    #[test]
    fn at_least_one_equals_or() {
        let leaves = vec![Node::basic("a"), Node::basic("b"), Node::basic("c")];
        let voter = FaultTree::new(Node::at_least(1, leaves.clone())).unwrap();
        let or = FaultTree::new(Node::or(leaves)).unwrap();
        let p = probs(&[("a", 0.1), ("b", 0.2), ("c", 0.3)]);
        assert!((voter.evaluate(&p).unwrap() - or.evaluate(&p).unwrap()).abs() < 1e-12);
    }

    #[test]
    fn at_least_n_equals_and() {
        let leaves = vec![Node::basic("a"), Node::basic("b")];
        let voter = FaultTree::new(Node::at_least(2, leaves.clone())).unwrap();
        let and = FaultTree::new(Node::and(leaves)).unwrap();
        let p = probs(&[("a", 0.7), ("b", 0.2)]);
        assert!((voter.evaluate(&p).unwrap() - and.evaluate(&p).unwrap()).abs() < 1e-12);
    }

    #[test]
    fn nested_tree_matches_hand_computation() {
        // OR(battery, AND(link_a, link_b), AtLeast(2, m1..m4))
        let t = FaultTree::new(Node::or(vec![
            Node::basic("battery"),
            Node::and(vec![Node::basic("link_a"), Node::basic("link_b")]),
            Node::at_least(
                2,
                vec![
                    Node::basic("m1"),
                    Node::basic("m2"),
                    Node::basic("m3"),
                    Node::basic("m4"),
                ],
            ),
        ]))
        .unwrap();
        let pm = 0.1;
        let p = probs(&[
            ("battery", 0.05),
            ("link_a", 0.2),
            ("link_b", 0.3),
            ("m1", pm),
            ("m2", pm),
            ("m3", pm),
            ("m4", pm),
        ]);
        let p_vote = {
            // P(>=2 of 4) with equal p.
            let q: f64 = 1.0 - pm;
            1.0 - (q.powi(4) + 4.0 * pm * q.powi(3))
        };
        let expect = 1.0 - (1.0 - 0.05) * (1.0 - 0.06) * (1.0 - p_vote);
        assert!((t.evaluate(&p).unwrap() - expect).abs() < 1e-12);
    }

    #[test]
    fn evaluate_with_is_bit_identical_to_map_evaluation() {
        let t = FaultTree::new(Node::or(vec![
            Node::basic("battery"),
            Node::and(vec![Node::basic("link_a"), Node::basic("link_b")]),
            Node::at_least(
                2,
                vec![
                    Node::basic("m1"),
                    Node::basic("m2"),
                    Node::basic("m3"),
                    Node::basic("m4"),
                ],
            ),
        ]))
        .unwrap();
        let p = probs(&[
            ("battery", 0.017),
            ("link_a", 0.21),
            ("link_b", 0.33),
            ("m1", 0.09),
            ("m2", 0.11),
            ("m3", 0.05),
            ("m4", 0.2),
        ]);
        let via_map = t.evaluate(&p).unwrap();
        let via_lookup = t.evaluate_with(&mut |id| p.get(id).copied()).unwrap();
        assert_eq!(via_map.to_bits(), via_lookup.to_bits());
    }

    #[test]
    fn evaluate_with_reports_missing_and_invalid_leaves() {
        let t = FaultTree::new(Node::or(vec![Node::basic("a"), Node::basic("b")])).unwrap();
        let err = t
            .evaluate_with(&mut |id| (id.as_str() == "a").then_some(0.5))
            .unwrap_err();
        assert_eq!(err, FtaError::MissingProbability(BasicEventId::new("b")));
        let err = t.evaluate_with(&mut |_| Some(f64::NAN)).unwrap_err();
        assert!(matches!(err, FtaError::InvalidProbability(_, _)));
    }

    #[test]
    fn voter_gate_beyond_inline_capacity_still_evaluates() {
        // 12 children spill the InlineVec buffers; results must not change.
        let leaves: Vec<Node> = (0..12).map(|i| Node::basic(format!("e{i}"))).collect();
        let t = FaultTree::new(Node::at_least(3, leaves)).unwrap();
        let got = t.evaluate_with(&mut |_| Some(0.5)).unwrap();
        // P(X >= 3), X ~ Binomial(12, 0.5) = 1 - (C(12,0)+C(12,1)+C(12,2))/4096.
        let expect = 1.0 - (1.0 + 12.0 + 66.0) / 4096.0;
        assert!((got - expect).abs() < 1e-12, "got {got} want {expect}");
    }

    #[test]
    fn missing_probability_errors() {
        let t = FaultTree::new(Node::basic("x")).unwrap();
        let err = t.evaluate(&HashMap::new()).unwrap_err();
        assert!(matches!(err, FtaError::MissingProbability(_)));
        assert!(err.to_string().contains('x'));
    }

    #[test]
    fn invalid_probability_errors() {
        let t = FaultTree::new(Node::basic("x")).unwrap();
        let err = t.evaluate(&probs(&[("x", 1.5)])).unwrap_err();
        assert!(matches!(err, FtaError::InvalidProbability(_, _)));
    }

    #[test]
    fn empty_gate_rejected() {
        assert_eq!(
            FaultTree::new(Node::or(vec![])).unwrap_err(),
            FtaError::EmptyGate
        );
    }

    #[test]
    fn infeasible_vote_rejected() {
        let err = FaultTree::new(Node::at_least(3, vec![Node::basic("a")])).unwrap_err();
        assert_eq!(err, FtaError::InfeasibleVote { k: 3, n: 1 });
        let err0 = FaultTree::new(Node::at_least(0, vec![Node::basic("a")])).unwrap_err();
        assert!(matches!(err0, FtaError::InfeasibleVote { .. }));
    }

    #[test]
    fn duplicate_leaves_listed_once() {
        let t = FaultTree::new(Node::or(vec![Node::basic("a"), Node::basic("a")])).unwrap();
        assert_eq!(t.basic_events().len(), 1);
    }

    #[test]
    fn monotone_in_leaf_probability() {
        let t = FaultTree::new(Node::or(vec![
            Node::basic("a"),
            Node::and(vec![Node::basic("b"), Node::basic("c")]),
        ]))
        .unwrap();
        let lo = t
            .evaluate(&probs(&[("a", 0.1), ("b", 0.5), ("c", 0.5)]))
            .unwrap();
        let hi = t
            .evaluate(&probs(&[("a", 0.2), ("b", 0.5), ("c", 0.5)]))
            .unwrap();
        assert!(hi > lo);
    }
}
