//! The SafeDrones runtime monitor.
//!
//! Glues the subsystem models into the UAV-level fault tree and exposes the
//! runtime loop of the paper's §III-A1: every tick, feed telemetry, advance
//! the Markov beliefs, evaluate the tree, and compare the probability of
//! failure against the mission-abort threshold (0.9 in the §V-A
//! evaluation). The monitor is the "Safety EDDI" executable model for one
//! UAV; `sesame-core` hosts one per airframe.

use crate::battery::{BatteryModel, BatteryParams};
use crate::comms::CommsModel;
use crate::fta::{BasicEventId, FaultTree, Node};
use crate::markov::{CtmcProcess, ProfileKey, SolveKey, SolverCacheStats};
use crate::processor::ProcessorModel;
use crate::propulsion::{MotorLayout, PropulsionModel};
use crate::ReliabilityLevel;
use sesame_types::telemetry::UavTelemetry;
use sesame_types::time::{SimDuration, SimTime};

/// Configuration of a [`SafeDronesMonitor`].
#[derive(Debug, Clone)]
pub struct SafeDronesConfig {
    /// Airframe layout.
    pub layout: MotorLayout,
    /// Per-motor failure rate, per second.
    pub lambda_motor: f64,
    /// Battery model parameters.
    pub battery: BatteryParams,
    /// Processor permanent-fault rate, per second.
    pub lambda_processor: f64,
    /// Processor full-utilization soft-error rate, per second.
    pub lambda_ser: f64,
    /// Comms drop rate at perfect link quality, per second.
    pub lambda_comms: f64,
    /// Comms recovery rate at perfect link quality, per second.
    pub mu_comms: f64,
    /// PoF at or above which the monitor demands an emergency landing —
    /// the paper's "predefined failure probability threshold (0.9)".
    pub pof_threshold: f64,
    /// PoF below which reliability is High.
    pub high_max: f64,
    /// PoF below which reliability is Medium (and above which Low).
    pub medium_max: f64,
}

impl Default for SafeDronesConfig {
    fn default() -> Self {
        SafeDronesConfig {
            layout: MotorLayout::Quad,
            lambda_motor: 1e-6,
            battery: BatteryParams::default(),
            lambda_processor: 1e-8,
            lambda_ser: 5e-8,
            lambda_comms: 1e-5,
            mu_comms: 0.05,
            pof_threshold: 0.9,
            high_max: 0.1,
            medium_max: 0.5,
        }
    }
}

/// What the monitor recommends to the ConSert layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ReliabilityAction {
    /// Reliability supports continuing the mission.
    Continue,
    /// Degraded: finish gracefully, take no new tasks, return when
    /// convenient.
    ReturnToBase,
    /// PoF reached the abort threshold: land immediately.
    EmergencyLand,
}

/// A full reliability report for one tick.
#[derive(Debug, Clone, PartialEq)]
pub struct ReliabilityEstimate {
    /// When the estimate was produced.
    pub time: SimTime,
    /// Top-event (UAV loss) probability.
    pub pof: f64,
    /// Banded level fed to the Safety EDDI ConSert.
    pub level: ReliabilityLevel,
    /// Recommended action.
    pub action: ReliabilityAction,
    /// Propulsion-subsystem PoF.
    pub pof_propulsion: f64,
    /// Battery chemical-failure PoF.
    pub pof_battery: f64,
    /// Energy-exhaustion risk before mission end.
    pub pof_energy: f64,
    /// Processor PoF.
    pub pof_processor: f64,
    /// Comms-down probability.
    pub pof_comms: f64,
}

/// Number of CTMC-backed subsystems a monitor advances per tick —
/// propulsion, battery, comms — i.e. the width of
/// [`SafeDronesMonitor::solve_keys`] and the prime array of
/// [`SafeDronesMonitor::advance_primed`].
pub const MARKOV_SLOTS: usize = 3;

/// The per-UAV SafeDrones monitor. See the crate docs for an example.
#[derive(Debug, Clone)]
pub struct SafeDronesMonitor {
    config: SafeDronesConfig,
    propulsion: PropulsionModel,
    battery: BatteryModel,
    processor: ProcessorModel,
    comms: CommsModel,
    tree: FaultTree,
    now: SimTime,
    last_telemetry: Option<SimTime>,
    remaining_mission_secs: f64,
}

impl SafeDronesMonitor {
    /// Creates a monitor from a configuration.
    pub fn new(config: SafeDronesConfig) -> Self {
        let tree = FaultTree::new(Node::or(vec![
            Node::basic("propulsion"),
            Node::basic("battery"),
            Node::basic("energy"),
            Node::basic("processor"),
            Node::basic("comms"),
        ]))
        .expect("static tree is well-formed");
        SafeDronesMonitor {
            propulsion: PropulsionModel::new(config.layout, config.lambda_motor),
            battery: BatteryModel::new(config.battery),
            processor: ProcessorModel::new(config.lambda_processor, config.lambda_ser),
            comms: CommsModel::new(config.lambda_comms, config.mu_comms),
            config,
            tree,
            now: SimTime::ZERO,
            last_telemetry: None,
            remaining_mission_secs: 0.0,
        }
    }

    /// Sets how much mission time remains (drives the energy-exhaustion
    /// term).
    pub fn set_remaining_mission(&mut self, remaining: SimDuration) {
        self.remaining_mission_secs = remaining.as_secs_f64();
    }

    /// Feeds one telemetry snapshot: motor flags, battery temperature and
    /// state of charge, and link quality.
    pub fn ingest(&mut self, telemetry: &UavTelemetry) {
        let dt = match self.last_telemetry {
            Some(prev) => telemetry.time.since(prev).as_secs_f64(),
            None => 0.0,
        };
        self.last_telemetry = Some(telemetry.time);
        self.propulsion
            .observe_motor_failures_if_changed(telemetry.failed_motors());
        self.battery
            .update_telemetry(telemetry.battery_temp_c, telemetry.battery_soc, dt);
        self.comms.update_link_quality(telemetry.link_quality);
    }

    /// Advances every subsystem belief by `dt`.
    pub fn advance(&mut self, dt: SimDuration) {
        let s = dt.as_secs_f64();
        self.propulsion.advance(s);
        self.battery.advance(s);
        self.processor.advance(s);
        self.comms.advance(s);
        self.now += dt;
    }

    /// Top-event probability of failure right now.
    pub fn probability_of_failure(&self) -> f64 {
        self.estimate().pof
    }

    /// The full per-subsystem report.
    pub fn estimate(&self) -> ReliabilityEstimate {
        let pof_propulsion = self.propulsion.probability_of_failure();
        let pof_battery = self.battery.probability_of_failure();
        let pof_energy = self
            .battery
            .energy_exhaustion_risk(self.remaining_mission_secs);
        let pof_processor = self.processor.probability_of_failure();
        let pof_comms = self.comms.probability_of_failure();
        // Leaf lookup by name match instead of a freshly built HashMap:
        // bit-identical tree evaluation with zero heap allocations per
        // tick (see DESIGN.md "Hot-loop memory discipline").
        let pof = self
            .tree
            .evaluate_with(&mut |id: &BasicEventId| match id.as_str() {
                "propulsion" => Some(pof_propulsion),
                "battery" => Some(pof_battery),
                "energy" => Some(pof_energy),
                "processor" => Some(pof_processor),
                "comms" => Some(pof_comms),
                _ => None,
            })
            .expect("all leaves supplied with valid probabilities");
        let level = ReliabilityLevel::from_pof(pof, self.config.high_max, self.config.medium_max);
        let action = if pof >= self.config.pof_threshold {
            ReliabilityAction::EmergencyLand
        } else if level == ReliabilityLevel::Low {
            ReliabilityAction::ReturnToBase
        } else {
            ReliabilityAction::Continue
        };
        ReliabilityEstimate {
            time: self.now,
            pof,
            level,
            action,
            pof_propulsion,
            pof_battery,
            pof_energy,
            pof_processor,
            pof_comms,
        }
    }

    /// Direct access to the battery model (used by experiments to inspect
    /// the belief).
    pub fn battery(&self) -> &BatteryModel {
        &self.battery
    }

    /// Direct access to the propulsion model.
    pub fn propulsion(&self) -> &PropulsionModel {
        &self.propulsion
    }

    /// The configured abort threshold.
    pub fn pof_threshold(&self) -> f64 {
        self.config.pof_threshold
    }

    /// Enables the bit-identical rate-keyed Markov solver cache on every
    /// CTMC-backed subsystem model (propulsion, battery, comms; the
    /// processor model is closed-form and has nothing to cache). The
    /// belief trajectory is unchanged — only repeated exit-rate and
    /// uniformization-rate computations are skipped while the
    /// failure-rate vector stays bit-identical across ticks.
    pub fn enable_solver_cache(&mut self) {
        self.propulsion.enable_solver_cache();
        self.battery.enable_solver_cache();
        self.comms.enable_solver_cache();
    }

    /// The solve identities of the next [`SafeDronesMonitor::advance`]
    /// with step `dt` — one key per CTMC-backed subsystem, in the order
    /// `[propulsion, battery, comms]` (matching
    /// [`SafeDronesMonitor::advance_primed`]'s prime slots; the processor
    /// model is closed-form and has no solve to share). Monitors whose
    /// keys agree on a slot would compute bit-identical solves there, so a
    /// fleet scheduler can solve each distinct key once and prime the
    /// rest.
    pub fn solve_keys(&self, dt: SimDuration) -> [SolveKey; MARKOV_SLOTS] {
        let s = dt.as_secs_f64();
        [
            self.propulsion.solve_key(s),
            self.battery.solve_key(s),
            self.comms.solve_key(s),
        ]
    }

    /// The distribution the given Markov slot (indexed as in
    /// [`SafeDronesMonitor::solve_keys`]) would adopt on the next
    /// [`SafeDronesMonitor::advance`] with step `dt`. Pure.
    ///
    /// # Panics
    ///
    /// Panics if `slot >= MARKOV_SLOTS`.
    pub fn solve_dist(&self, slot: usize, dt: SimDuration) -> Vec<f64> {
        let s = dt.as_secs_f64();
        match slot {
            0 => self.propulsion.solve_dist(s),
            1 => self.battery.solve_dist(s),
            2 => self.comms.solve_dist(s),
            _ => panic!("markov slot {slot} out of range"),
        }
    }

    /// The batching identities of the next advance with step `dt` — one
    /// [`ProfileKey`] per CTMC-backed subsystem, slot order as in
    /// [`SafeDronesMonitor::solve_keys`]. Unlike solve keys, profile keys
    /// ignore the live belief: monitors sharing a slot's profile key can
    /// have that slot advanced together in one SoA pass via
    /// [`CtmcProcess::solve_dists_batch`] on any member's
    /// [`SafeDronesMonitor::markov_process`], with bit-identical results.
    pub fn profile_keys(&self, dt: SimDuration) -> [ProfileKey; MARKOV_SLOTS] {
        let s = dt.as_secs_f64();
        [
            self.propulsion.process().profile_key(s),
            self.battery.process().profile_key(s),
            self.comms.process().profile_key(s),
        ]
    }

    /// Read-only access to the CTMC process behind the given Markov slot
    /// (indexed as in [`SafeDronesMonitor::solve_keys`]): the live belief
    /// for gathering batch inputs, and the batched solver entry point.
    ///
    /// # Panics
    ///
    /// Panics if `slot >= MARKOV_SLOTS`.
    pub fn markov_process(&self, slot: usize) -> &CtmcProcess {
        match slot {
            0 => self.propulsion.process(),
            1 => self.battery.process(),
            2 => self.comms.process(),
            _ => panic!("markov slot {slot} out of range"),
        }
    }

    /// [`SafeDronesMonitor::advance`] with optional precomputed
    /// distributions per Markov slot (indexed as in
    /// [`SafeDronesMonitor::solve_keys`]). `[None, None, None]` is exactly
    /// `advance(dt)`; a primed slot skips its transient solve but keeps
    /// belief and cache counters bit-identical to the solving path.
    pub fn advance_primed(&mut self, dt: SimDuration, primes: [Option<&[f64]>; MARKOV_SLOTS]) {
        let s = dt.as_secs_f64();
        self.propulsion.advance_primed(s, primes[0]);
        self.battery.advance_primed(s, primes[1]);
        self.processor.advance(s);
        self.comms.advance_primed(s, primes[2]);
        self.now += dt;
    }

    /// Aggregated solver-cache counters across all subsystem models.
    pub fn solver_cache_stats(&self) -> SolverCacheStats {
        let parts = [
            self.propulsion.solver_cache_stats(),
            self.battery.solver_cache_stats(),
            self.comms.solver_cache_stats(),
        ];
        parts
            .iter()
            .fold(SolverCacheStats::default(), |acc, s| SolverCacheStats {
                hits: acc.hits + s.hits,
                misses: acc.misses + s.misses,
            })
    }
}

impl PropulsionModel {
    /// Observes a failed-motor count only when it differs from the last
    /// observation (re-observing the same diagnosis every tick would keep
    /// resetting the Markov belief).
    pub fn observe_motor_failures_if_changed(&mut self, failed: usize) {
        if failed != self.observed_failures() {
            self.observe_motor_failures(failed);
        }
    }
}

#[cfg(test)]
#[allow(clippy::field_reassign_with_default)]
mod tests {
    use super::*;
    use sesame_types::geo::GeoPoint;
    use sesame_types::ids::UavId;

    fn telemetry(t_secs: u64, soc: f64, temp: f64) -> UavTelemetry {
        let mut tel = UavTelemetry::nominal(
            UavId::new(1),
            SimTime::from_secs(t_secs),
            GeoPoint::new(35.0, 33.0, 30.0),
        );
        tel.battery_soc = soc;
        tel.battery_temp_c = temp;
        tel
    }

    #[test]
    fn nominal_mission_stays_high_reliability() {
        let mut mon = SafeDronesMonitor::new(SafeDronesConfig::default());
        mon.set_remaining_mission(SimDuration::from_secs(600));
        for t in 0..600u64 {
            let soc = 1.0 - t as f64 * 0.0005; // gentle discharge
            mon.ingest(&telemetry(t, soc, 25.0));
            mon.advance(SimDuration::from_secs(1));
        }
        let est = mon.estimate();
        assert!(est.pof < 0.05, "pof = {}", est.pof);
        assert_eq!(est.level, ReliabilityLevel::High);
        assert_eq!(est.action, ReliabilityAction::Continue);
    }

    #[test]
    fn battery_fault_escalates_and_crosses_threshold() {
        // Reproduces the §V-A dynamics in miniature: sharp SoC drop + heat,
        // PoF climbs until the 0.9 threshold commands an emergency landing.
        let mut cfg = SafeDronesConfig::default();
        cfg.battery.activation_energy_ev = 1.0;
        let mut mon = SafeDronesMonitor::new(cfg);
        mon.set_remaining_mission(SimDuration::from_secs(260));
        mon.ingest(&telemetry(0, 0.8, 25.0));
        mon.advance(SimDuration::from_secs(1));
        let before = mon.probability_of_failure();
        // Fault: 80 % -> 40 % within a second, 60 °C pack.
        mon.ingest(&telemetry(1, 0.4, 60.0));
        let mut crossed_at = None;
        for t in 2..1500u64 {
            mon.advance(SimDuration::from_secs(1));
            mon.ingest(&telemetry(t, 0.4, 60.0));
            let est = mon.estimate();
            if est.action == ReliabilityAction::EmergencyLand {
                crossed_at = Some(t);
                break;
            }
        }
        let t_cross = crossed_at.expect("threshold must eventually be crossed");
        assert!(before < 0.01);
        assert!(
            (120..=1200).contains(&t_cross),
            "crossing time {t_cross}s out of plausible band"
        );
    }

    #[test]
    fn motor_failure_drops_level() {
        let mut cfg = SafeDronesConfig::default();
        cfg.layout = MotorLayout::Quad;
        let mut mon = SafeDronesMonitor::new(cfg);
        let mut tel = telemetry(1, 0.9, 25.0);
        tel.motors_ok = vec![true, true, false, true];
        mon.ingest(&tel);
        let est = mon.estimate();
        // Quad with one motor out has lost controllability.
        assert!(est.pof > 0.9, "pof = {}", est.pof);
        assert_eq!(est.action, ReliabilityAction::EmergencyLand);
    }

    #[test]
    fn hexa_tolerates_one_motor() {
        let mut cfg = SafeDronesConfig::default();
        cfg.layout = MotorLayout::Hexa;
        let mut mon = SafeDronesMonitor::new(cfg);
        let mut tel = telemetry(1, 0.9, 25.0);
        tel.motors_ok = vec![true, true, false, true, true, true];
        mon.ingest(&tel);
        let est = mon.estimate();
        assert!(est.pof < 0.5, "pof = {}", est.pof);
        assert_ne!(est.action, ReliabilityAction::EmergencyLand);
    }

    #[test]
    fn repeated_identical_motor_observation_does_not_reset_belief() {
        let mut cfg = SafeDronesConfig::default();
        cfg.lambda_motor = 1e-4;
        let mut mon = SafeDronesMonitor::new(cfg);
        for t in 0..100u64 {
            mon.ingest(&telemetry(t, 0.9, 25.0));
            mon.advance(SimDuration::from_secs(10));
        }
        // With per-tick resets this would stay at exactly zero.
        assert!(mon.estimate().pof_propulsion > 0.0);
    }

    #[test]
    fn energy_term_reacts_to_remaining_mission() {
        let mut mon = SafeDronesMonitor::new(SafeDronesConfig::default());
        mon.ingest(&telemetry(0, 0.5, 25.0));
        mon.ingest(&telemetry(10, 0.49, 25.0)); // 0.1 %/s discharge
        mon.set_remaining_mission(SimDuration::from_secs(10));
        let short = mon.estimate().pof_energy;
        mon.set_remaining_mission(SimDuration::from_secs(5000));
        let long = mon.estimate().pof_energy;
        assert!(long > short);
    }

    /// Two monitors fed identical telemetry share all three solve keys;
    /// solving once on one and priming the other keeps the estimates and
    /// the cache counters bit-identical through a fault transient.
    #[test]
    fn primed_monitor_tracks_solving_monitor_bit_for_bit() {
        let mut cfg = SafeDronesConfig::default();
        cfg.battery.activation_energy_ev = 1.0;
        let mut solver = SafeDronesMonitor::new(cfg.clone());
        let mut primed = SafeDronesMonitor::new(cfg);
        solver.enable_solver_cache();
        primed.enable_solver_cache();
        let dt = SimDuration::from_secs(1);
        for t in 0..40u64 {
            // Hot pack halfway through: rates change, keys still agree.
            let (soc, temp) = if t < 20 { (0.9, 25.0) } else { (0.4, 60.0) };
            solver.ingest(&telemetry(t, soc, temp));
            primed.ingest(&telemetry(t, soc, temp));
            let keys_a = solver.solve_keys(dt);
            let keys_b = primed.solve_keys(dt);
            assert_eq!(keys_a, keys_b, "identical monitors share keys");
            let dists: Vec<Vec<f64>> = (0..MARKOV_SLOTS)
                .map(|s| solver.solve_dist(s, dt))
                .collect();
            solver.advance(dt);
            primed.advance_primed(
                dt,
                [
                    Some(&dists[0][..]),
                    Some(&dists[1][..]),
                    Some(&dists[2][..]),
                ],
            );
            let a = solver.estimate();
            let b = primed.estimate();
            assert_eq!(a.pof.to_bits(), b.pof.to_bits(), "diverged at t={t}");
            assert_eq!(a.level, b.level);
        }
        assert_eq!(solver.solver_cache_stats(), primed.solver_cache_stats());
    }

    #[test]
    fn estimate_fields_are_consistent() {
        let mon = SafeDronesMonitor::new(SafeDronesConfig::default());
        let est = mon.estimate();
        // OR-tree output dominates every subsystem term.
        for sub in [
            est.pof_propulsion,
            est.pof_battery,
            est.pof_energy,
            est.pof_processor,
            est.pof_comms,
        ] {
            assert!(est.pof >= sub - 1e-12);
        }
        assert!(mon.pof_threshold() > 0.0);
    }
}
