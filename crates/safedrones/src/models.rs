//! Time-dependent basic-event models.
//!
//! Classical FTA leaves carry lifetime distributions rather than fixed
//! probabilities; SafeDrones' *complex* basic events extend this with
//! Markov models (\[29\]). This module provides the classical leaf models —
//! exponential, Weibull, constant — plus an evaluation helper that binds a
//! model per leaf and evaluates the whole tree at mission time `t`,
//! bridging the design-time view (rates from handbooks) and the runtime
//! view (probabilities from monitors).

use crate::fta::{BasicEventId, FaultTree, FtaError};
use std::collections::HashMap;

/// A lifetime model for one basic event.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum BasicEventModel {
    /// Constant failure rate λ (per second): `F(t) = 1 − e^{−λt}`.
    Exponential {
        /// Failure rate per second.
        lambda: f64,
    },
    /// Weibull lifetime with shape `k` and scale `eta` (seconds):
    /// `F(t) = 1 − e^{−(t/η)^k}`. `k > 1` models wear-out, `k < 1` infant
    /// mortality.
    Weibull {
        /// Shape parameter.
        shape: f64,
        /// Scale parameter, seconds.
        scale: f64,
    },
    /// A fixed probability independent of time (e.g. an on-demand check).
    Constant {
        /// The probability.
        p: f64,
    },
}

impl BasicEventModel {
    /// The failure probability at mission time `t` seconds.
    ///
    /// # Panics
    ///
    /// Panics on negative `t` or invalid parameters (non-finite, negative
    /// rate/scale, `p` outside `[0, 1]`).
    pub fn probability_at(&self, t: f64) -> f64 {
        assert!(t.is_finite() && t >= 0.0, "time must be ≥ 0");
        match self {
            BasicEventModel::Exponential { lambda } => {
                assert!(lambda.is_finite() && *lambda >= 0.0, "rate must be ≥ 0");
                1.0 - (-lambda * t).exp()
            }
            BasicEventModel::Weibull { shape, scale } => {
                assert!(
                    shape.is_finite() && *shape > 0.0 && scale.is_finite() && *scale > 0.0,
                    "Weibull parameters must be positive"
                );
                1.0 - (-(t / scale).powf(*shape)).exp()
            }
            BasicEventModel::Constant { p } => {
                assert!((0.0..=1.0).contains(p), "probability must be in [0, 1]");
                *p
            }
        }
    }
}

/// A fault tree bound to per-leaf lifetime models.
///
/// # Examples
///
/// ```
/// use sesame_safedrones::fta::{FaultTree, Node};
/// use sesame_safedrones::models::{BasicEventModel, TimedFaultTree};
///
/// let tree = FaultTree::new(Node::or(vec![
///     Node::basic("battery"),
///     Node::basic("motor"),
/// ]))?;
/// let timed = TimedFaultTree::new(tree)
///     .with_model("battery", BasicEventModel::Exponential { lambda: 1e-5 })
///     .with_model("motor", BasicEventModel::Weibull { shape: 2.0, scale: 1e5 });
/// let early = timed.probability_at(600.0)?;
/// let late = timed.probability_at(6_000.0)?;
/// assert!(late > early);
/// # Ok::<(), sesame_safedrones::fta::FtaError>(())
/// ```
#[derive(Debug, Clone)]
pub struct TimedFaultTree {
    tree: FaultTree,
    models: HashMap<BasicEventId, BasicEventModel>,
}

impl TimedFaultTree {
    /// Wraps a tree with an empty model binding.
    pub fn new(tree: FaultTree) -> Self {
        TimedFaultTree {
            tree,
            models: HashMap::new(),
        }
    }

    /// Binds a model to a leaf (builder style).
    pub fn with_model(mut self, leaf: impl Into<String>, model: BasicEventModel) -> Self {
        self.models.insert(BasicEventId::new(leaf), model);
        self
    }

    /// The underlying tree.
    pub fn tree(&self) -> &FaultTree {
        &self.tree
    }

    /// Evaluates the top event at mission time `t` seconds.
    ///
    /// # Errors
    ///
    /// Returns [`FtaError::MissingProbability`] for leaves without a bound
    /// model.
    pub fn probability_at(&self, t: f64) -> Result<f64, FtaError> {
        let probs: HashMap<BasicEventId, f64> = self
            .models
            .iter()
            .map(|(id, m)| (id.clone(), m.probability_at(t)))
            .collect();
        self.tree.evaluate(&probs)
    }

    /// Evaluates the top event over a uniform time grid, returning
    /// `(t, probability)` pairs — the PoF(t) curve of Fig. 5 for a purely
    /// design-time model.
    ///
    /// # Errors
    ///
    /// Propagates evaluation errors from any grid point.
    ///
    /// # Panics
    ///
    /// Panics if `steps == 0` or `horizon` is not positive.
    pub fn curve(&self, horizon: f64, steps: usize) -> Result<Vec<(f64, f64)>, FtaError> {
        assert!(steps > 0, "need at least one step");
        assert!(horizon > 0.0, "horizon must be positive");
        (0..=steps)
            .map(|i| {
                let t = horizon * i as f64 / steps as f64;
                Ok((t, self.probability_at(t)?))
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fta::Node;

    #[test]
    fn exponential_matches_closed_form() {
        let m = BasicEventModel::Exponential { lambda: 1e-4 };
        assert_eq!(m.probability_at(0.0), 0.0);
        let p = m.probability_at(1e4);
        assert!((p - (1.0 - (-1.0f64).exp())).abs() < 1e-12);
    }

    #[test]
    fn weibull_shape_controls_wearout() {
        let wearout = BasicEventModel::Weibull {
            shape: 3.0,
            scale: 1000.0,
        };
        let infant = BasicEventModel::Weibull {
            shape: 0.5,
            scale: 1000.0,
        };
        // Early on, infant mortality dominates; at the scale both are
        // 1 - 1/e; far out wear-out dominates.
        assert!(infant.probability_at(10.0) > wearout.probability_at(10.0));
        let at_scale = 1.0 - (-1.0f64).exp();
        assert!((wearout.probability_at(1000.0) - at_scale).abs() < 1e-12);
        assert!((infant.probability_at(1000.0) - at_scale).abs() < 1e-12);
        assert!(wearout.probability_at(3000.0) > infant.probability_at(3000.0));
    }

    #[test]
    fn constant_ignores_time() {
        let m = BasicEventModel::Constant { p: 0.25 };
        assert_eq!(m.probability_at(0.0), 0.25);
        assert_eq!(m.probability_at(1e9), 0.25);
    }

    #[test]
    fn timed_tree_curve_is_monotone_without_constant_leaves() {
        let tree = FaultTree::new(Node::or(vec![
            Node::basic("a"),
            Node::and(vec![Node::basic("b"), Node::basic("c")]),
        ]))
        .unwrap();
        let timed = TimedFaultTree::new(tree)
            .with_model("a", BasicEventModel::Exponential { lambda: 1e-5 })
            .with_model(
                "b",
                BasicEventModel::Weibull {
                    shape: 2.0,
                    scale: 5e4,
                },
            )
            .with_model("c", BasicEventModel::Exponential { lambda: 5e-5 });
        let curve = timed.curve(1e5, 50).unwrap();
        assert_eq!(curve.len(), 51);
        for w in curve.windows(2) {
            assert!(w[1].1 >= w[0].1 - 1e-12, "curve must be monotone");
        }
        assert!(curve[0].1 < 1e-9);
        assert!(curve.last().unwrap().1 > 0.5);
    }

    #[test]
    fn missing_model_is_reported() {
        let tree = FaultTree::new(Node::basic("x")).unwrap();
        let timed = TimedFaultTree::new(tree);
        assert!(matches!(
            timed.probability_at(1.0),
            Err(FtaError::MissingProbability(_))
        ));
    }

    #[test]
    #[should_panic(expected = "Weibull parameters")]
    fn invalid_weibull_panics() {
        let m = BasicEventModel::Weibull {
            shape: -1.0,
            scale: 100.0,
        };
        let _ = m.probability_at(1.0);
    }

    #[test]
    #[should_panic(expected = "time must be ≥ 0")]
    fn negative_time_panics() {
        let m = BasicEventModel::Constant { p: 0.5 };
        let _ = m.probability_at(-1.0);
    }
}
