//! Continuous-time Markov chains with a uniformization transient solver.
//!
//! SafeDrones models each UAV subsystem as a small CTMC whose failure
//! states are absorbing. The monitor needs the *transient* distribution —
//! "what is the probability the propulsion system has failed by time t,
//! given the rates observed so far" — which [`Ctmc::transient`] computes by
//! uniformization (Jensen's method): with `Λ ≥ max|q_ii|` and
//! `P = I + Q/Λ`,
//!
//! ```text
//! p(t) = Σ_k  e^{-Λt} (Λt)^k / k!  ·  p(0) P^k
//! ```
//!
//! truncated when the accumulated Poisson mass exceeds `1 − tol`. Rates may
//! change between ticks (temperature jumps, motor failures); the monitor
//! simply advances the distribution piecewise with the current generator.
//!
//! # Step-count bound
//!
//! The truncation point grows with `Λt`; extreme rate inputs (surfaced by
//! the scenario-DSL fuzz corpus) can push `Λt` past 10¹⁴, which would turn
//! one solve into an effective hang. The iteration count is therefore
//! clamped to [`MAX_UNIFORMIZATION_STEPS`]. When the Poisson window lies
//! entirely beyond the clamp the solver returns the DTMC power iterate at
//! the clamp, `p(0)·Pᵏ` with `k = MAX_UNIFORMIZATION_STEPS` — for the
//! absorbing-failure chains SafeDrones uses, the iterate has converged to
//! the long-run distribution well before that many steps, so the answer
//! is the correct `t → ∞` limit rather than a truncation artifact.
//!
//! # Memory discipline
//!
//! All solver entry points funnel into one in-place kernel that works on
//! caller-provided [`UniformizationScratch`] buffers; with a warm scratch
//! (and a warm solver cache) a steady-state solve performs zero heap
//! allocations. The batched entry points ([`CtmcProcess::solve_dists_batch`])
//! advance every distribution that shares a solve profile in a single
//! state-major SoA pass: the Poisson weights and the truncation point
//! depend only on `Λt`, so they are computed once for the whole batch,
//! and the per-distribution accumulation order is exactly the scalar
//! order — batched results are bit-identical to one-at-a-time solves.

use sesame_types::inline::InlineVec;

/// Inline capacity of a [`SolveKey`]: rate-matrix words (`n²`, `n ≤ 6`
/// for every SafeDrones chain) plus distribution words plus the step —
/// built fresh every tick by [`CtmcProcess::solve_key`], so it must not
/// touch the heap (see DESIGN.md § "Hot-loop memory discipline").
const SOLVE_KEY_INLINE: usize = 48;

/// A continuous-time Markov chain over states `0..n`.
///
/// # Examples
///
/// ```
/// use sesame_safedrones::markov::Ctmc;
///
/// // Two states: 0 = working, 1 = failed (absorbing), rate 0.1 /s.
/// let mut c = Ctmc::new(2);
/// c.set_rate(0, 1, 0.1);
/// let p = c.transient(&[1.0, 0.0], 10.0);
/// // P(failed by 10 s) = 1 - e^{-1}
/// assert!((p[1] - (1.0 - (-1.0f64).exp())).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Ctmc {
    n: usize,
    /// Row-major rate matrix; `rates[i*n + j]` is the transition rate
    /// i → j for i ≠ j. Diagonals are derived.
    rates: Vec<f64>,
}

impl Ctmc {
    /// Creates a chain with `n` states and no transitions.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "chain needs at least one state");
        Ctmc {
            n,
            rates: vec![0.0; n * n],
        }
    }

    /// Number of states.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether the chain has no states (never true by construction).
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Sets the transition rate `from → to` (per second).
    ///
    /// # Panics
    ///
    /// Panics if `from == to`, if either index is out of range, or if the
    /// rate is negative or non-finite.
    pub fn set_rate(&mut self, from: usize, to: usize, rate: f64) {
        assert!(from < self.n && to < self.n, "state out of range");
        assert!(from != to, "self-transitions are implicit");
        assert!(rate.is_finite() && rate >= 0.0, "rate must be ≥ 0");
        self.rates[from * self.n + to] = rate;
    }

    /// Resets every transition rate to zero without reallocating.
    ///
    /// Per-tick model refreshes (battery temperature/SoC, comms link
    /// quality) rebuild their rate matrix from scratch; clearing the
    /// existing buffer and re-issuing [`Ctmc::set_rate`] calls produces a
    /// chain bit-identical to a fresh [`Ctmc::new`] + `set_rate` sequence
    /// while keeping the steady-state tick allocation-free (see
    /// DESIGN.md, "Hot-loop memory discipline").
    pub fn clear_rates(&mut self) {
        self.rates.fill(0.0);
    }

    /// The transition rate `from → to`.
    pub fn rate(&self, from: usize, to: usize) -> f64 {
        if from == to {
            0.0
        } else {
            self.rates[from * self.n + to]
        }
    }

    /// Total exit rate of state `i` (the negated diagonal of the
    /// generator).
    pub fn exit_rate(&self, i: usize) -> f64 {
        (0..self.n).map(|j| self.rate(i, j)).sum()
    }

    /// Whether state `i` is absorbing (no outgoing transitions).
    pub fn is_absorbing(&self, i: usize) -> bool {
        self.exit_rate(i) == 0.0
    }

    /// Transient distribution after `t` seconds starting from `p0`,
    /// computed by uniformization with truncation tolerance `1e-12`.
    ///
    /// # Panics
    ///
    /// Panics if `p0.len() != self.len()`, if `t` is negative/non-finite,
    /// or if `p0` is not (approximately) a probability vector.
    pub fn transient(&self, p0: &[f64], t: f64) -> Vec<f64> {
        self.transient_with_tol(p0, t, 1e-12)
    }

    /// [`Ctmc::transient`] with an explicit truncation tolerance.
    pub fn transient_with_tol(&self, p0: &[f64], t: f64, tol: f64) -> Vec<f64> {
        // The profile is the exact same exit-rate sums and Λ the naive
        // solver used to recompute inline, so the result is bit-identical.
        let profile = SolveProfile::build(self);
        let mut out = Vec::new();
        let mut scratch = UniformizationScratch::default();
        self.uniformize_into(p0, 1, t, tol, &profile, &mut out, &mut scratch);
        out
    }

    /// [`Ctmc::transient_with_tol`] with the rate-matrix-dependent
    /// quantities supplied from a memoized [`SolveProfile`]. Bit-identical
    /// to the naive solver (same sums, same operation order).
    fn transient_cached(&self, p0: &[f64], t: f64, tol: f64, profile: &SolveProfile) -> Vec<f64> {
        let mut out = Vec::new();
        let mut scratch = UniformizationScratch::default();
        self.uniformize_into(p0, 1, t, tol, profile, &mut out, &mut scratch);
        out
    }

    /// The shared in-place uniformization kernel: advances `m` stacked
    /// distributions (`p0s[d*n..][..n]` is distribution `d`) by `t`
    /// seconds in one state-major SoA pass, writing the results to `out`
    /// in the same dist-major layout. All work happens in `scratch`; with
    /// warm buffers the kernel performs zero heap allocations.
    ///
    /// Bit-identity: the Poisson weights and the truncation point depend
    /// only on `Λt`, so they are shared by the whole batch, and each
    /// distribution's accumulation sequence (diagonal term first, then
    /// off-diagonal targets in ascending order, sources in ascending
    /// order, weighted sum in state order) is exactly the scalar solver's
    /// order — a batch of `m` is bit-identical to `m` scalar solves.
    #[allow(clippy::too_many_arguments)]
    fn uniformize_into(
        &self,
        p0s: &[f64],
        m: usize,
        t: f64,
        tol: f64,
        profile: &SolveProfile,
        out: &mut Vec<f64>,
        scratch: &mut UniformizationScratch,
    ) {
        let n = self.n;
        assert_eq!(p0s.len(), n * m, "initial distribution size mismatch");
        assert!(t.is_finite() && t >= 0.0, "time must be ≥ 0");
        for d in 0..m {
            let p0 = &p0s[d * n..(d + 1) * n];
            let sum: f64 = p0.iter().sum();
            assert!(
                (sum - 1.0).abs() < 1e-6 && p0.iter().all(|p| *p >= -1e-12),
                "p0 must be a probability vector (sums to {sum})"
            );
        }
        if t == 0.0 || profile.lambda_raw == 0.0 {
            // Nothing moves (zero step, or no transitions anywhere).
            out.clear();
            out.extend_from_slice(p0s);
            return;
        }
        // Slight inflation improves numerical behaviour.
        let lambda = profile.lambda_raw * 1.02;
        let lt = lambda * t;

        // State-major working set: v[i*m + d] is state i of distribution
        // d, so the innermost per-distribution loops run over contiguous
        // memory and vectorize.
        let v = &mut scratch.v;
        v.clear();
        v.resize(n * m, 0.0);
        for d in 0..m {
            for i in 0..n {
                v[i * m + d] = p0s[d * n + i];
            }
        }
        scratch.next.clear();
        scratch.next.resize(n * m, 0.0);
        scratch.acc.clear();
        scratch.acc.resize(n * m, 0.0);

        // Poisson weights e^{-lt} lt^k / k!, computed iteratively in log
        // space via scaling to avoid under/overflow for large lt. The
        // truncation point is clamped (see the module docs): beyond the
        // clamp the weighted sum may capture no mass at all, in which
        // case the power iterate at the clamp is the answer.
        let mut log_w = -lt; // log weight of k = 0
        let mut mass = 0.0;
        let k_max = (((lt + 8.0 * lt.sqrt() + 20.0).ceil()) as usize).min(MAX_UNIFORMIZATION_STEPS);
        for k in 0..=k_max {
            if k > 0 {
                log_w += (lt).ln() - (k as f64).ln();
                // One DTMC step, next = v·P with P = I + Q/Λ, preserving
                // the scalar accumulation order per distribution.
                for x in scratch.next.iter_mut() {
                    *x = 0.0;
                }
                for i in 0..n {
                    let exit = profile.exits[i];
                    let diag = 1.0 - exit / lambda;
                    let row = i * m;
                    for d in 0..m {
                        let vi = scratch.v[row + d];
                        if vi != 0.0 {
                            scratch.next[row + d] += vi * diag;
                        }
                    }
                    for j in 0..n {
                        if i == j {
                            continue;
                        }
                        let r = self.rates[i * n + j];
                        if r > 0.0 {
                            let dst = j * m;
                            for d in 0..m {
                                let vi = scratch.v[row + d];
                                if vi != 0.0 {
                                    scratch.next[dst + d] += vi * r / lambda;
                                }
                            }
                        }
                    }
                }
                std::mem::swap(&mut scratch.v, &mut scratch.next);
            }
            let w = log_w.exp();
            if w > 0.0 {
                for (a, vi) in scratch.acc.iter_mut().zip(scratch.v.iter()) {
                    *a += w * vi;
                }
                mass += w;
            }
            if 1.0 - mass < tol {
                break;
            }
        }
        out.clear();
        out.resize(n * m, 0.0);
        for d in 0..m {
            // Renormalize the tiny truncation remainder, per distribution.
            let mut s = 0.0;
            for i in 0..n {
                s += scratch.acc[i * m + d];
            }
            if s > 0.0 {
                for i in 0..n {
                    out[d * n + i] = scratch.acc[i * m + d] / s;
                }
            } else {
                // The whole Poisson window sat beyond the step clamp: the
                // weighted sum captured no mass. Return the power iterate
                // at the clamp — the t → ∞ limit for chains that have
                // converged by then (see the module docs).
                for i in 0..n {
                    out[d * n + i] = scratch.v[i * m + d];
                }
            }
        }
    }
}

/// Upper bound on uniformization steps per solve. `Λt` beyond ~10⁵ would
/// otherwise iterate once per expected Poisson event — extreme (but
/// finite) rate inputs from the scenario-DSL fuzz corpus produced `Λt`
/// past 10¹⁴, an effective hang. See the module docs for the semantics of
/// a clamped solve.
pub const MAX_UNIFORMIZATION_STEPS: usize = 100_000;

/// Reusable working buffers for the in-place uniformization kernel. Keep
/// one per solver call site and reuse it across ticks: after the first
/// (warm-up) solve the buffers hold their high-water capacity and
/// steady-state solves allocate nothing.
#[derive(Debug, Clone, Default)]
pub struct UniformizationScratch {
    v: Vec<f64>,
    next: Vec<f64>,
    acc: Vec<f64>,
}

/// Working buffers for [`CtmcProcess::solve_dists_batch`]: the stacked
/// input distributions plus the kernel scratch. Reuse across ticks for
/// allocation-free batched solves.
#[derive(Debug, Clone, Default)]
pub struct BatchSolveScratch {
    stacked: Vec<f64>,
    uniform: UniformizationScratch,
}

/// A value-identity key for one transient solve: the exact bit patterns
/// of the rate matrix, the current distribution, and the time step. Two
/// processes with equal keys would compute bit-identical solves, so a
/// fleet-level scheduler can solve one representative and prime the rest
/// (see [`CtmcProcess::advance_primed`]). The key is pure data — hashable,
/// comparable, and decoupled from the process it was derived from.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SolveKey(InlineVec<u64, SOLVE_KEY_INLINE>);

impl SolveKey {
    /// Number of packed words (rates + distribution + dt).
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether the key is empty (never true by construction).
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }
}

/// The batching identity of one transient solve: the exact bit patterns
/// of the rate matrix and the time step — everything a [`SolveProfile`]
/// and the shared Poisson weights depend on, but *not* the distribution.
/// Processes sharing a profile key can be advanced together in one SoA
/// pass ([`CtmcProcess::solve_dists_batch`]) with bit-identical results,
/// even when their distributions differ.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ProfileKey(Vec<u64>);

impl ProfileKey {
    /// Number of packed words (rates + dt).
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether the key is empty (never true by construction).
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }
}

/// Hit/miss counters of a process-level solver cache.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SolverCacheStats {
    /// Solves served with a profile reused from an earlier tick.
    pub hits: u64,
    /// Solves that had to rebuild the profile (rate matrix changed).
    pub misses: u64,
}

/// The memoized, rate-matrix-keyed part of a uniformization solve: the
/// per-state exit rates and the (uninflated) uniformization rate Λ. Both
/// depend only on the rate matrix, so they are reusable across ticks as
/// long as the rates are bit-identical.
#[derive(Debug, Clone)]
struct SolveProfile {
    rates_bits: Vec<u64>,
    exits: Vec<f64>,
    lambda_raw: f64,
}

impl SolveProfile {
    fn build(chain: &Ctmc) -> Self {
        let n = chain.len();
        let exits: Vec<f64> = (0..n).map(|i| chain.exit_rate(i)).collect();
        let lambda_raw = exits.iter().copied().fold(0.0_f64, f64::max);
        SolveProfile {
            rates_bits: chain.rates.iter().map(|r| r.to_bits()).collect(),
            exits,
            lambda_raw,
        }
    }

    fn matches(&self, chain: &Ctmc) -> bool {
        self.rates_bits.len() == chain.rates.len()
            && self
                .rates_bits
                .iter()
                .zip(chain.rates.iter())
                .all(|(b, r)| *b == r.to_bits())
    }
}

/// A CTMC paired with a live state distribution, advanced tick by tick.
/// This is the "complex basic event" carrier: rates can be swapped at any
/// tick and the distribution keeps integrating forward.
///
/// With [`CtmcProcess::enable_solver_cache`] the per-solve exit-rate and
/// uniformization-rate computations are memoized keyed on the exact bit
/// pattern of the rate matrix (the failure-rate vector); the cached solve
/// is bit-identical to the naive one, so enabling the cache never changes
/// the belief trajectory.
#[derive(Debug, Clone)]
pub struct CtmcProcess {
    chain: Ctmc,
    dist: Vec<f64>,
    cache: Option<Box<SolveProfile>>,
    cache_enabled: bool,
    stats: SolverCacheStats,
    /// In-place solver working set, reused across ticks so steady-state
    /// advances allocate nothing. Pure accelerator state: excluded from
    /// `PartialEq` along with the cache.
    scratch: UniformizationScratch,
    /// Solve output buffer, swapped with `dist` after each advance.
    solve_out: Vec<f64>,
}

impl PartialEq for CtmcProcess {
    fn eq(&self, other: &Self) -> bool {
        // The solver cache is a pure accelerator; two processes with the
        // same chain and belief are the same process.
        self.chain == other.chain && self.dist == other.dist
    }
}

impl CtmcProcess {
    /// Starts the process in state `initial` with certainty.
    ///
    /// # Panics
    ///
    /// Panics if `initial` is out of range.
    pub fn new(chain: Ctmc, initial: usize) -> Self {
        assert!(initial < chain.len(), "initial state out of range");
        let mut dist = vec![0.0; chain.len()];
        dist[initial] = 1.0;
        CtmcProcess {
            chain,
            dist,
            cache: None,
            cache_enabled: false,
            stats: SolverCacheStats::default(),
            scratch: UniformizationScratch::default(),
            solve_out: Vec::new(),
        }
    }

    /// Turns on the rate-keyed solver cache for subsequent
    /// [`CtmcProcess::advance`] calls.
    pub fn enable_solver_cache(&mut self) {
        self.cache_enabled = true;
    }

    /// Hit/miss counters of the solver cache (all zero when disabled).
    pub fn solver_cache_stats(&self) -> SolverCacheStats {
        self.stats
    }

    /// The live distribution.
    pub fn distribution(&self) -> &[f64] {
        &self.dist
    }

    /// Mutable access to the chain, for runtime rate updates.
    pub fn chain_mut(&mut self) -> &mut Ctmc {
        &mut self.chain
    }

    /// The chain.
    pub fn chain(&self) -> &Ctmc {
        &self.chain
    }

    /// Advances the distribution by `dt_secs` with the current rates.
    ///
    /// When the solver cache is enabled, the exit-rate/uniformization-rate
    /// profile is reused as long as the rate matrix is bit-identical to
    /// the one the profile was built from; callers that mutate rates via
    /// [`CtmcProcess::chain_mut`] therefore self-invalidate the cache.
    pub fn advance(&mut self, dt_secs: f64) {
        if !self.cache_enabled {
            self.dist = self.chain.transient(&self.dist, dt_secs);
            return;
        }
        let fresh = !matches!(&self.cache, Some(profile) if profile.matches(&self.chain));
        if fresh {
            self.cache = Some(Box::new(SolveProfile::build(&self.chain)));
            self.stats.misses += 1;
        } else {
            self.stats.hits += 1;
        }
        let profile = self.cache.as_ref().expect("profile just ensured");
        // Solve in place through the persistent scratch: with a warm
        // cache and warm buffers this path performs zero heap
        // allocations. Bit-identical to the allocating path (same kernel).
        self.chain.uniformize_into(
            &self.dist,
            1,
            dt_secs,
            1e-12,
            profile,
            &mut self.solve_out,
            &mut self.scratch,
        );
        std::mem::swap(&mut self.dist, &mut self.solve_out);
    }

    /// The solve identity of the *next* [`CtmcProcess::advance`] call with
    /// step `dt_secs`: rate-matrix bits, distribution bits, and the step's
    /// bits. Processes sharing a key compute bit-identical solves.
    pub fn solve_key(&self, dt_secs: f64) -> SolveKey {
        let mut bits: InlineVec<u64, SOLVE_KEY_INLINE> = InlineVec::new();
        bits.extend(self.chain.rates.iter().map(|r| r.to_bits()));
        bits.extend(self.dist.iter().map(|p| p.to_bits()));
        bits.push(dt_secs.to_bits());
        SolveKey(bits)
    }

    /// The batching identity of the *next* advance with step `dt_secs`:
    /// rate-matrix bits plus the step's bits, *without* the distribution.
    /// Processes sharing a profile key share the solve profile and the
    /// Poisson weights, so they can be advanced together with
    /// [`CtmcProcess::solve_dists_batch`].
    pub fn profile_key(&self, dt_secs: f64) -> ProfileKey {
        let mut bits = Vec::with_capacity(self.chain.rates.len() + 1);
        bits.extend(self.chain.rates.iter().map(|r| r.to_bits()));
        bits.push(dt_secs.to_bits());
        ProfileKey(bits)
    }

    /// Solves `dists` — distributions over *this process's chain*, e.g.
    /// the beliefs of other UAVs whose [`CtmcProcess::profile_key`] equals
    /// this one's — for one shared step in a single SoA uniformization
    /// pass. Results land in `out`, dist-major (`out[d*n..][..n]` is the
    /// advanced `dists[d]`), and are bit-identical to calling
    /// [`CtmcProcess::solve_dist`] once per distribution. Does not mutate
    /// the process; with warm buffers the pass allocates nothing beyond a
    /// cold profile rebuild.
    ///
    /// # Panics
    ///
    /// Panics if any distribution has the wrong length or is not a
    /// probability vector.
    pub fn solve_dists_batch(
        &self,
        dists: &[&[f64]],
        dt_secs: f64,
        out: &mut Vec<f64>,
        scratch: &mut BatchSolveScratch,
    ) {
        let n = self.chain.len();
        scratch.stacked.clear();
        for d in dists {
            assert_eq!(d.len(), n, "batched distribution size mismatch");
            scratch.stacked.extend_from_slice(d);
        }
        match &self.cache {
            Some(profile) if self.cache_enabled && profile.matches(&self.chain) => {
                self.chain.uniformize_into(
                    &scratch.stacked,
                    dists.len(),
                    dt_secs,
                    1e-12,
                    profile,
                    out,
                    &mut scratch.uniform,
                );
            }
            _ => {
                let profile = SolveProfile::build(&self.chain);
                self.chain.uniformize_into(
                    &scratch.stacked,
                    dists.len(),
                    dt_secs,
                    1e-12,
                    &profile,
                    out,
                    &mut scratch.uniform,
                );
            }
        }
    }

    /// Computes the distribution [`CtmcProcess::advance`] would assign for
    /// step `dt_secs` — without mutating the process or its cache
    /// counters. Bit-identical to the mutating path (cached and naive
    /// solvers agree bit for bit, see the module invariant), so the result
    /// can prime any process with an equal [`CtmcProcess::solve_key`].
    pub fn solve_dist(&self, dt_secs: f64) -> Vec<f64> {
        match &self.cache {
            Some(profile) if self.cache_enabled && profile.matches(&self.chain) => self
                .chain
                .transient_cached(&self.dist, dt_secs, 1e-12, profile),
            _ if self.cache_enabled => {
                let profile = SolveProfile::build(&self.chain);
                self.chain
                    .transient_cached(&self.dist, dt_secs, 1e-12, &profile)
            }
            _ => self.chain.transient(&self.dist, dt_secs),
        }
    }

    /// [`CtmcProcess::advance`] with an optional precomputed distribution.
    ///
    /// With `primed: None` this is exactly `advance(dt_secs)`. With
    /// `Some(dist)` the solve is skipped and `dist` adopted — but the
    /// cache/stats bookkeeping still runs exactly as `advance` would, so a
    /// primed process is bit-indistinguishable (belief *and* counters)
    /// from one that solved locally. The caller guarantees `dist` is the
    /// solve result for this process's current [`CtmcProcess::solve_key`].
    ///
    /// # Panics
    ///
    /// Panics if a primed distribution has the wrong length.
    pub fn advance_primed(&mut self, dt_secs: f64, primed: Option<&[f64]>) {
        let Some(dist) = primed else {
            self.advance(dt_secs);
            return;
        };
        assert_eq!(dist.len(), self.dist.len(), "primed distribution size");
        if self.cache_enabled {
            let fresh = !matches!(&self.cache, Some(profile) if profile.matches(&self.chain));
            if fresh {
                self.cache = Some(Box::new(SolveProfile::build(&self.chain)));
                self.stats.misses += 1;
            } else {
                self.stats.hits += 1;
            }
        }
        // Copy in place; adopting a primed distribution allocates nothing.
        self.dist.clear();
        self.dist.extend_from_slice(dist);
    }

    /// Probability mass currently in the given states (e.g. the absorbing
    /// failure states).
    pub fn mass_in(&self, states: &[usize]) -> f64 {
        states.iter().map(|&s| self.dist[s]).sum()
    }

    /// Collapses the distribution back to certainty in `state` — used when
    /// a failure is *observed* (diagnosis replaces belief).
    ///
    /// # Panics
    ///
    /// Panics if `state` is out of range.
    pub fn observe_state(&mut self, state: usize) {
        assert!(state < self.chain.len(), "state out of range");
        self.dist.iter_mut().for_each(|p| *p = 0.0);
        self.dist[state] = 1.0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_state(rate: f64) -> Ctmc {
        let mut c = Ctmc::new(2);
        c.set_rate(0, 1, rate);
        c
    }

    #[test]
    fn exponential_failure_matches_closed_form() {
        let c = two_state(0.05);
        for t in [0.0, 1.0, 10.0, 50.0, 200.0] {
            let p = c.transient(&[1.0, 0.0], t);
            let expect = 1.0 - (-0.05 * t).exp();
            assert!(
                (p[1] - expect).abs() < 1e-9,
                "t={t}: got {} want {expect}",
                p[1]
            );
            assert!((p[0] + p[1] - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn extreme_rates_hit_the_step_clamp_and_still_absorb() {
        // Λt ≈ 1.02e15 here; unclamped uniformization would iterate once
        // per expected Poisson event — an effective hang surfaced by the
        // scenario-DSL fuzz corpus. The clamp must keep the solve prompt
        // and return the converged (fully absorbed) distribution.
        let c = two_state(1e12);
        let p = c.transient(&[1.0, 0.0], 1000.0);
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-9, "stochastic");
        assert!(p[1] > 1.0 - 1e-9, "mass must be absorbed in the limit");

        // A clamped repairable chain lands on its steady state
        // p_fail = λ/(λ+μ) instead of a truncation artifact.
        let mut c = Ctmc::new(2);
        c.set_rate(0, 1, 2e11);
        c.set_rate(1, 0, 8e11);
        let p = c.transient(&[1.0, 0.0], 1e6);
        assert!((p[1] - 0.2).abs() < 1e-6, "steady state, got {}", p[1]);
    }

    #[test]
    fn moderate_solves_stay_below_the_clamp() {
        // The monitor's realistic Λt values truncate after tens of steps,
        // far below the clamp, so clamping changes nothing there.
        let lt_max = 10.0_f64; // rates ≤ ~0.1/s, dt ≤ ~100 s
        let k = (lt_max + 8.0 * lt_max.sqrt() + 20.0).ceil() as usize;
        assert!(k < MAX_UNIFORMIZATION_STEPS / 100);
    }

    #[test]
    fn batched_solve_is_bit_identical_to_scalar_solves() {
        let mut c = Ctmc::new(4);
        c.set_rate(0, 1, 0.3);
        c.set_rate(0, 2, 0.05);
        c.set_rate(1, 0, 0.4);
        c.set_rate(1, 3, 0.2);
        c.set_rate(2, 3, 0.6);
        let mut rep = CtmcProcess::new(c, 0);
        rep.enable_solver_cache();
        rep.advance(1.0); // warm the cache

        // Distinct distributions sharing the chain and the step.
        let dists: Vec<Vec<f64>> = vec![
            vec![1.0, 0.0, 0.0, 0.0],
            vec![0.25, 0.25, 0.25, 0.25],
            vec![0.0, 0.7, 0.3, 0.0],
            rep.distribution().to_vec(),
        ];
        let refs: Vec<&[f64]> = dists.iter().map(|d| d.as_slice()).collect();
        let mut out = Vec::new();
        let mut scratch = BatchSolveScratch::default();
        rep.solve_dists_batch(&refs, 2.5, &mut out, &mut scratch);

        for (d, dist) in dists.iter().enumerate() {
            let mut one = CtmcProcess::new(rep.chain().clone(), 0);
            one.enable_solver_cache();
            let scalar = {
                // Adopt the batched input as the live belief, then solve.
                one.observe_state(0);
                one.advance_primed(0.0, Some(dist));
                one.solve_dist(2.5)
            };
            let batched = &out[d * 4..(d + 1) * 4];
            for i in 0..4 {
                assert_eq!(
                    scalar[i].to_bits(),
                    batched[i].to_bits(),
                    "dist {d} state {i}: batched must be bit-identical"
                );
            }
        }
    }

    #[test]
    fn profile_key_ignores_the_distribution() {
        let mut a = CtmcProcess::new(two_state(0.1), 0);
        let b = CtmcProcess::new(two_state(0.1), 1);
        assert_ne!(a.solve_key(1.0), b.solve_key(1.0), "beliefs differ");
        assert_eq!(a.profile_key(1.0), b.profile_key(1.0), "same chain + dt");
        assert_ne!(a.profile_key(1.0), a.profile_key(2.0), "dt matters");
        a.chain_mut().set_rate(0, 1, 0.2);
        assert_ne!(a.profile_key(1.0), b.profile_key(1.0), "rates matter");
    }

    #[test]
    fn steady_state_advance_allocates_nothing_after_warmup() {
        // Indirect check: the scratch high-water marks stop growing after
        // the first cached solve (the allocation-regression test in
        // sesame-bench pins the stronger global-allocator property).
        let mut p = CtmcProcess::new(two_state(0.05), 0);
        p.enable_solver_cache();
        p.advance(1.0);
        let caps = (
            p.scratch.v.capacity(),
            p.scratch.next.capacity(),
            p.scratch.acc.capacity(),
            p.solve_out.capacity(),
        );
        for _ in 0..100 {
            p.advance(1.0);
        }
        assert_eq!(
            caps,
            (
                p.scratch.v.capacity(),
                p.scratch.next.capacity(),
                p.scratch.acc.capacity(),
                p.solve_out.capacity(),
            ),
            "warm buffers must not regrow"
        );
        assert_eq!(p.solver_cache_stats().misses, 1);
    }

    #[test]
    fn absorbing_state_retains_mass() {
        let c = two_state(1.0);
        let p = c.transient(&[0.0, 1.0], 100.0);
        assert!((p[1] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn birth_death_chain_conserves_probability() {
        // 0 -> 1 -> 2 (absorbing), plus repair 1 -> 0.
        let mut c = Ctmc::new(3);
        c.set_rate(0, 1, 0.3);
        c.set_rate(1, 0, 0.5);
        c.set_rate(1, 2, 0.2);
        let p = c.transient(&[1.0, 0.0, 0.0], 25.0);
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert!(p[2] > 0.5, "most mass should be absorbed eventually");
        assert!(c.is_absorbing(2));
        assert!(!c.is_absorbing(0));
    }

    #[test]
    fn repairable_system_approaches_steady_state() {
        // Working <-> failed with repair; steady state p_fail = λ/(λ+μ).
        let mut c = Ctmc::new(2);
        c.set_rate(0, 1, 0.1);
        c.set_rate(1, 0, 0.4);
        let p = c.transient(&[1.0, 0.0], 500.0);
        assert!((p[1] - 0.2).abs() < 1e-6, "p_fail = {}", p[1]);
    }

    #[test]
    fn large_lambda_t_is_stable() {
        // Fast rates over long horizons stress the Poisson truncation.
        let mut c = Ctmc::new(2);
        c.set_rate(0, 1, 50.0);
        c.set_rate(1, 0, 50.0);
        let p = c.transient(&[1.0, 0.0], 10.0);
        assert!((p[0] - 0.5).abs() < 1e-6);
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn zero_time_returns_initial() {
        let c = two_state(0.1);
        assert_eq!(c.transient(&[0.3, 0.7], 0.0), vec![0.3, 0.7]);
    }

    #[test]
    fn piecewise_advancement_equals_single_solve() {
        let c = two_state(0.02);
        let mut proc = CtmcProcess::new(c.clone(), 0);
        for _ in 0..100 {
            proc.advance(1.0);
        }
        let direct = c.transient(&[1.0, 0.0], 100.0);
        assert!((proc.distribution()[1] - direct[1]).abs() < 1e-8);
    }

    #[test]
    fn rate_swap_mid_flight() {
        let mut proc = CtmcProcess::new(two_state(0.0), 0);
        proc.advance(100.0);
        assert!(proc.mass_in(&[1]) < 1e-12, "no failures at zero rate");
        proc.chain_mut().set_rate(0, 1, 0.1);
        proc.advance(10.0);
        let expect = 1.0 - (-1.0f64).exp();
        assert!((proc.mass_in(&[1]) - expect).abs() < 1e-9);
    }

    #[test]
    fn observe_state_collapses_belief() {
        let mut proc = CtmcProcess::new(two_state(0.5), 0);
        proc.advance(5.0);
        proc.observe_state(0);
        assert_eq!(proc.distribution(), &[1.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "rate must be ≥ 0")]
    fn negative_rate_panics() {
        let mut c = Ctmc::new(2);
        c.set_rate(0, 1, -1.0);
    }

    #[test]
    #[should_panic(expected = "probability vector")]
    fn bad_initial_distribution_panics() {
        let c = two_state(0.1);
        let _ = c.transient(&[0.5, 0.1], 1.0);
    }

    #[test]
    #[should_panic(expected = "self-transitions")]
    fn self_transition_panics() {
        let mut c = Ctmc::new(2);
        c.set_rate(1, 1, 0.1);
    }

    /// A four-state chain with asymmetric rates, exercised over a mixed
    /// schedule of advances and mid-flight rate swaps: the cached solver
    /// must track the naive one bit for bit and self-invalidate on every
    /// rate mutation.
    #[test]
    fn solver_cache_is_bit_identical_and_self_invalidating() {
        let mut chain = Ctmc::new(4);
        chain.set_rate(0, 1, 0.3);
        chain.set_rate(0, 2, 0.05);
        chain.set_rate(1, 2, 0.7);
        chain.set_rate(1, 3, 0.01);
        chain.set_rate(2, 3, 1.3);
        let mut naive = CtmcProcess::new(chain.clone(), 0);
        let mut cached = CtmcProcess::new(chain, 0);
        cached.enable_solver_cache();

        let dts = [0.1, 0.1, 2.5, 0.0, 0.1, 7.0, 0.1, 0.1];
        for (k, dt) in dts.iter().enumerate() {
            if k == 4 {
                naive.chain_mut().set_rate(0, 1, 0.9);
                cached.chain_mut().set_rate(0, 1, 0.9);
            }
            naive.advance(*dt);
            cached.advance(*dt);
            let bits = |p: &CtmcProcess| -> Vec<u64> {
                p.distribution().iter().map(|x| x.to_bits()).collect()
            };
            assert_eq!(bits(&naive), bits(&cached), "diverged at step {k}");
        }
        let stats = cached.solver_cache_stats();
        assert_eq!(stats.misses, 2, "initial build + one rate-swap rebuild");
        assert_eq!(stats.hits as usize, dts.len() - 2);
        assert_eq!(naive.solver_cache_stats(), SolverCacheStats::default());
    }

    /// Equal solve keys mean equal (rates, dist, dt); any difference in
    /// one of the three changes the key.
    #[test]
    fn solve_key_tracks_rates_dist_and_dt() {
        let mut a = CtmcProcess::new(two_state(0.1), 0);
        let b = CtmcProcess::new(two_state(0.1), 0);
        assert_eq!(a.solve_key(1.0), b.solve_key(1.0));
        assert_ne!(a.solve_key(1.0), b.solve_key(2.0), "dt differs");
        a.advance(1.0);
        assert_ne!(a.solve_key(1.0), b.solve_key(1.0), "dist differs");
        let mut c = CtmcProcess::new(two_state(0.2), 0);
        assert_ne!(c.solve_key(1.0), b.solve_key(1.0), "rates differ");
        assert!(!c.solve_key(1.0).is_empty());
        assert_eq!(c.solve_key(1.0).len(), 4 + 2 + 1);
        c.chain_mut().set_rate(0, 1, 0.1);
        assert_eq!(c.solve_key(1.0), b.solve_key(1.0));
    }

    /// Priming one process with another's `solve_dist` leaves both
    /// bit-identical in belief *and* cache counters, across rate swaps.
    #[test]
    fn primed_advance_is_bit_identical_including_stats() {
        let mut chain = Ctmc::new(3);
        chain.set_rate(0, 1, 0.4);
        chain.set_rate(1, 2, 0.9);
        let mut solver = CtmcProcess::new(chain.clone(), 0);
        let mut primed = CtmcProcess::new(chain, 0);
        solver.enable_solver_cache();
        primed.enable_solver_cache();

        for k in 0..6 {
            let dt = 0.5 + k as f64 * 0.25;
            if k == 3 {
                solver.chain_mut().set_rate(0, 1, 0.7);
                primed.chain_mut().set_rate(0, 1, 0.7);
            }
            assert_eq!(solver.solve_key(dt), primed.solve_key(dt));
            let dist = solver.solve_dist(dt);
            solver.advance(dt);
            assert_eq!(
                solver.distribution(),
                dist.as_slice(),
                "solve_dist must equal what advance computes"
            );
            primed.advance_primed(dt, Some(&dist));
            let bits = |p: &CtmcProcess| -> Vec<u64> {
                p.distribution().iter().map(|x| x.to_bits()).collect()
            };
            assert_eq!(bits(&solver), bits(&primed), "diverged at step {k}");
        }
        assert_eq!(solver.solver_cache_stats(), primed.solver_cache_stats());
        assert_eq!(solver.solver_cache_stats().misses, 2);
    }

    /// `advance_primed(_, None)` is exactly `advance`.
    #[test]
    fn unprimed_advance_primed_delegates() {
        let mut a = CtmcProcess::new(two_state(0.3), 0);
        let mut b = CtmcProcess::new(two_state(0.3), 0);
        a.advance(2.0);
        b.advance_primed(2.0, None);
        assert_eq!(a.distribution(), b.distribution());
    }
}
