//! SafeDrones — real-time reliability evaluation of UAVs.
//!
//! Reproduces the SafeDrones technology of the paper (§III-A1, \[28\]): a
//! runtime safety monitor that combines **fault tree analysis** with
//! **Markov-based complex basic events** to produce a continuously updated
//! probability of failure (PoF) for each UAV, covering the propulsion
//! system, the battery, the processor and the communication subsystem.
//!
//! The flow mirrors the paper:
//!
//! 1. Each subsystem is a continuous-time Markov chain ([`markov::Ctmc`])
//!    whose rates respond to live telemetry — motor failures reshape the
//!    propulsion chain ([`propulsion`]), battery temperature accelerates
//!    degradation through an Arrhenius factor ([`battery`]).
//! 2. The subsystem failure probabilities enter a UAV-level fault tree
//!    ([`fta::FaultTree`]) as *complex basic events*.
//! 3. [`monitor::SafeDronesMonitor`] advances everything per tick, yields
//!    the current PoF and a [`ReliabilityLevel`], and recommends an action
//!    (continue / return / emergency land) against a configurable PoF
//!    threshold — the 0.9 threshold of the paper's §V-A battery scenario.
//!
//! # Examples
//!
//! ```
//! use sesame_safedrones::monitor::{SafeDronesConfig, SafeDronesMonitor};
//! use sesame_types::time::SimDuration;
//!
//! let mut mon = SafeDronesMonitor::new(SafeDronesConfig::default());
//! // One second of nominal operation barely moves the PoF.
//! for _ in 0..10 {
//!     mon.advance(SimDuration::from_millis(100));
//! }
//! assert!(mon.probability_of_failure() < 1e-3);
//! ```

pub mod battery;
pub mod comms;
pub mod export;
pub mod fta;
pub mod markov;
pub mod models;
pub mod monitor;
pub mod processor;
pub mod propulsion;

pub use fta::{BasicEventId, FaultTree, Gate};
pub use markov::{Ctmc, SolveKey, SolverCacheStats};
pub use monitor::{
    ReliabilityAction, ReliabilityEstimate, SafeDronesConfig, SafeDronesMonitor, MARKOV_SLOTS,
};

/// The three reliability bands the Safety EDDI ConSert consumes ("High /
/// Medium / Low Reliability" guarantees in Fig. 1 of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum ReliabilityLevel {
    /// PoF below the `high` threshold — full mission capability.
    High,
    /// PoF between the thresholds — mission continues, no new tasks.
    Medium,
    /// PoF above the `medium` threshold — abort is advised.
    Low,
}

impl ReliabilityLevel {
    /// Classifies a probability of failure using the given thresholds.
    ///
    /// # Panics
    ///
    /// Panics if `high_max >= medium_max` does not hold a sensible order
    /// (i.e. `high_max > medium_max`).
    pub fn from_pof(pof: f64, high_max: f64, medium_max: f64) -> Self {
        assert!(
            high_max < medium_max,
            "thresholds must satisfy high_max < medium_max"
        );
        if pof < high_max {
            ReliabilityLevel::High
        } else if pof < medium_max {
            ReliabilityLevel::Medium
        } else {
            ReliabilityLevel::Low
        }
    }
}

impl std::fmt::Display for ReliabilityLevel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            ReliabilityLevel::High => "high",
            ReliabilityLevel::Medium => "medium",
            ReliabilityLevel::Low => "low",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn level_classification() {
        assert_eq!(
            ReliabilityLevel::from_pof(0.01, 0.1, 0.5),
            ReliabilityLevel::High
        );
        assert_eq!(
            ReliabilityLevel::from_pof(0.3, 0.1, 0.5),
            ReliabilityLevel::Medium
        );
        assert_eq!(
            ReliabilityLevel::from_pof(0.9, 0.1, 0.5),
            ReliabilityLevel::Low
        );
    }

    #[test]
    #[should_panic(expected = "thresholds")]
    fn bad_thresholds_panic() {
        let _ = ReliabilityLevel::from_pof(0.5, 0.5, 0.1);
    }

    #[test]
    fn levels_are_ordered_best_first() {
        assert!(ReliabilityLevel::High < ReliabilityLevel::Medium);
        assert!(ReliabilityLevel::Medium < ReliabilityLevel::Low);
    }
}
