//! Communication subsystem reliability.
//!
//! The SafeDrones guarantees cover "Reliable Propulsion, Communication,
//! Energy Control" (Fig. 1). The comms model is a two-state repairable
//! Markov chain — links drop and recover — whose failure rate responds to
//! the observed link quality: a weak radio link is both more likely to
//! drop and slower to recover.

use crate::markov::{Ctmc, CtmcProcess};

/// State indices of the comms chain.
pub mod state {
    /// Link operating.
    pub const UP: usize = 0;
    /// Link down (recoverable, so not absorbing).
    pub const DOWN: usize = 1;
}

/// Runtime communication reliability model.
///
/// # Examples
///
/// ```
/// use sesame_safedrones::comms::CommsModel;
///
/// let mut c = CommsModel::new(1e-4, 0.05);
/// c.update_link_quality(0.9);
/// c.advance(60.0);
/// assert!(c.probability_down() < 0.05);
/// ```
#[derive(Debug, Clone)]
pub struct CommsModel {
    lambda_drop: f64,
    mu_recover: f64,
    link_quality: f64,
    process: CtmcProcess,
}

impl CommsModel {
    /// Creates the model with a baseline drop rate and recovery rate (per
    /// second) at perfect link quality.
    ///
    /// # Panics
    ///
    /// Panics if either rate is negative or non-finite.
    pub fn new(lambda_drop: f64, mu_recover: f64) -> Self {
        assert!(
            lambda_drop.is_finite() && lambda_drop >= 0.0,
            "drop rate must be ≥ 0"
        );
        assert!(
            mu_recover.is_finite() && mu_recover >= 0.0,
            "recovery rate must be ≥ 0"
        );
        let mut m = CommsModel {
            lambda_drop,
            mu_recover,
            link_quality: 1.0,
            process: CtmcProcess::new(Ctmc::new(2), state::UP),
        };
        m.rebuild();
        m
    }

    /// Rewrites the link-quality-dependent rates into the existing chain
    /// in place (no allocation; see DESIGN.md, "Hot-loop memory
    /// discipline").
    fn rebuild(&mut self) {
        let q = self.link_quality.clamp(0.01, 1.0);
        let lambda = self.lambda_drop / (q * q);
        let mu = self.mu_recover * q;
        // Weak link: drop rate grows as 1/q², recovery shrinks with q.
        let chain = self.process.chain_mut();
        chain.clear_rates();
        chain.set_rate(state::UP, state::DOWN, lambda);
        chain.set_rate(state::DOWN, state::UP, mu);
    }

    /// Feeds the latest link quality in `[0, 1]`.
    pub fn update_link_quality(&mut self, quality: f64) {
        self.link_quality = quality.clamp(0.0, 1.0);
        self.rebuild();
    }

    /// Advances the belief by `dt_secs`.
    pub fn advance(&mut self, dt_secs: f64) {
        self.process.advance(dt_secs);
    }

    /// Enables the bit-identical rate-keyed solver cache on the
    /// underlying Markov process (see [`CtmcProcess::enable_solver_cache`]).
    pub fn enable_solver_cache(&mut self) {
        self.process.enable_solver_cache();
    }

    /// Hit/miss counters of the solver cache.
    pub fn solver_cache_stats(&self) -> crate::markov::SolverCacheStats {
        self.process.solver_cache_stats()
    }

    /// The solve identity of the next [`CommsModel::advance`] with step
    /// `dt_secs` (see [`CtmcProcess::solve_key`]).
    pub fn solve_key(&self, dt_secs: f64) -> crate::markov::SolveKey {
        self.process.solve_key(dt_secs)
    }

    /// The distribution [`CommsModel::advance`] would produce, pure (see
    /// [`CtmcProcess::solve_dist`]).
    pub fn solve_dist(&self, dt_secs: f64) -> Vec<f64> {
        self.process.solve_dist(dt_secs)
    }

    /// [`CommsModel::advance`] with an optional precomputed distribution
    /// (see [`CtmcProcess::advance_primed`]).
    pub fn advance_primed(&mut self, dt_secs: f64, primed: Option<&[f64]>) {
        self.process.advance_primed(dt_secs, primed);
    }

    /// Read-only access to the underlying Markov process, for fleet-level
    /// batched solve scheduling (see [`CtmcProcess::solve_dists_batch`]).
    pub fn process(&self) -> &CtmcProcess {
        &self.process
    }

    /// Probability the link is down right now.
    pub fn probability_down(&self) -> f64 {
        self.process.mass_in(&[state::DOWN])
    }

    /// Marks the link observed down (e.g. heartbeat loss).
    pub fn observe_down(&mut self) {
        self.process.observe_state(state::DOWN);
    }

    /// Marks the link observed up.
    pub fn observe_up(&mut self) {
        self.process.observe_state(state::UP);
    }

    /// Probability the link is down at any point used as the comms
    /// contribution to the UAV fault tree: we take the current belief.
    pub fn probability_of_failure(&self) -> f64 {
        self.probability_down()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn steady_state_matches_birth_death_formula() {
        let mut c = CommsModel::new(0.01, 0.04);
        c.update_link_quality(1.0);
        c.advance(10_000.0);
        // p_down = λ/(λ+μ) = 0.01/0.05.
        assert!((c.probability_down() - 0.2).abs() < 1e-6);
    }

    #[test]
    fn weak_link_is_less_reliable() {
        let mut strong = CommsModel::new(1e-3, 0.1);
        strong.update_link_quality(1.0);
        let mut weak = CommsModel::new(1e-3, 0.1);
        weak.update_link_quality(0.3);
        strong.advance(600.0);
        weak.advance(600.0);
        assert!(weak.probability_down() > strong.probability_down() * 2.0);
    }

    #[test]
    fn observation_overrides_belief() {
        let mut c = CommsModel::new(1e-4, 0.05);
        c.advance(100.0);
        c.observe_down();
        assert_eq!(c.probability_down(), 1.0);
        c.observe_up();
        assert_eq!(c.probability_down(), 0.0);
    }

    #[test]
    fn recovery_pulls_down_probability_back() {
        let mut c = CommsModel::new(1e-4, 0.1);
        c.observe_down();
        c.advance(60.0);
        assert!(c.probability_down() < 0.1, "p = {}", c.probability_down());
    }

    #[test]
    fn quality_clamped() {
        let mut c = CommsModel::new(1e-3, 0.1);
        c.update_link_quality(7.0);
        c.update_link_quality(-2.0);
        c.advance(1.0);
        assert!(c.probability_of_failure() <= 1.0);
    }
}
