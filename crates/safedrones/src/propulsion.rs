//! Markov propulsion-system reliability with reconfiguration.
//!
//! Implements the Markov-process propulsion model SafeDrones builds on
//! (\[30\] in the paper): the chain's states count failed motors; a
//! multirotor with `n` motors tolerates up to `t` motor losses thanks to
//! controller reconfiguration (quad: 0, hexa: 1, octa: 2), so state `t + 1`
//! is the absorbing "loss of controllability" state. From state `i`, the
//! failure rate is `(n − i)·λ_m` — every surviving motor can fail next —
//! optionally inflated by a degradation factor once the system is flying
//! reconfigured.

use crate::markov::{Ctmc, CtmcProcess};

/// Supported airframe motor layouts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MotorLayout {
    /// Four motors, no tolerance to motor loss.
    Quad,
    /// Six motors, tolerates one motor loss after reconfiguration.
    Hexa,
    /// Eight motors, tolerates two motor losses after reconfiguration.
    Octa,
}

impl MotorLayout {
    /// Number of motors.
    pub fn motor_count(&self) -> usize {
        match self {
            MotorLayout::Quad => 4,
            MotorLayout::Hexa => 6,
            MotorLayout::Octa => 8,
        }
    }

    /// Motor losses tolerated through reconfiguration.
    pub fn tolerated_failures(&self) -> usize {
        match self {
            MotorLayout::Quad => 0,
            MotorLayout::Hexa => 1,
            MotorLayout::Octa => 2,
        }
    }
}

/// The propulsion reliability model: a [`CtmcProcess`] whose states are
/// failed-motor counts.
///
/// # Examples
///
/// ```
/// use sesame_safedrones::propulsion::{MotorLayout, PropulsionModel};
///
/// let mut hexa = PropulsionModel::new(MotorLayout::Hexa, 1e-6);
/// hexa.advance(3600.0); // one hour of flight
/// let pof = hexa.probability_of_failure();
/// assert!(pof > 0.0 && pof < 0.01);
/// ```
#[derive(Debug, Clone)]
pub struct PropulsionModel {
    layout: MotorLayout,
    lambda_motor: f64,
    degradation: f64,
    process: CtmcProcess,
    observed_failures: usize,
}

impl PropulsionModel {
    /// Creates the model for `layout` with per-motor failure rate
    /// `lambda_motor` (per second) and a degradation factor of 1.5 applied
    /// to rates in reconfigured states.
    ///
    /// # Panics
    ///
    /// Panics if `lambda_motor` is negative or non-finite.
    pub fn new(layout: MotorLayout, lambda_motor: f64) -> Self {
        Self::with_degradation(layout, lambda_motor, 1.5)
    }

    /// Creates the model with an explicit degradation factor (`≥ 1`)
    /// applied once the airframe flies reconfigured.
    ///
    /// # Panics
    ///
    /// Panics on non-finite/negative `lambda_motor` or `degradation < 1`.
    pub fn with_degradation(layout: MotorLayout, lambda_motor: f64, degradation: f64) -> Self {
        assert!(
            lambda_motor.is_finite() && lambda_motor >= 0.0,
            "motor failure rate must be ≥ 0"
        );
        assert!(degradation >= 1.0, "degradation factor must be ≥ 1");
        let chain = Self::build_chain(layout, lambda_motor, degradation);
        PropulsionModel {
            layout,
            lambda_motor,
            degradation,
            process: CtmcProcess::new(chain, 0),
            observed_failures: 0,
        }
    }

    fn build_chain(layout: MotorLayout, lambda: f64, degradation: f64) -> Ctmc {
        let n = layout.motor_count();
        let t = layout.tolerated_failures();
        // States 0..=t are operational (i = failed motors); t+1 absorbs.
        let mut chain = Ctmc::new(t + 2);
        for i in 0..=t {
            let stress = if i == 0 { 1.0 } else { degradation };
            chain.set_rate(i, i + 1, (n - i) as f64 * lambda * stress);
        }
        chain
    }

    /// The airframe layout.
    pub fn layout(&self) -> MotorLayout {
        self.layout
    }

    /// The per-motor failure rate, per second.
    pub fn lambda_motor(&self) -> f64 {
        self.lambda_motor
    }

    /// The degradation factor applied in reconfigured states.
    pub fn degradation(&self) -> f64 {
        self.degradation
    }

    /// Advances the belief by `dt_secs` of flight time.
    pub fn advance(&mut self, dt_secs: f64) {
        self.process.advance(dt_secs);
    }

    /// Enables the bit-identical rate-keyed solver cache on the
    /// underlying Markov process (see [`CtmcProcess::enable_solver_cache`]).
    pub fn enable_solver_cache(&mut self) {
        self.process.enable_solver_cache();
    }

    /// Hit/miss counters of the solver cache.
    pub fn solver_cache_stats(&self) -> crate::markov::SolverCacheStats {
        self.process.solver_cache_stats()
    }

    /// The solve identity of the next [`PropulsionModel::advance`] with
    /// step `dt_secs` (see [`CtmcProcess::solve_key`]).
    pub fn solve_key(&self, dt_secs: f64) -> crate::markov::SolveKey {
        self.process.solve_key(dt_secs)
    }

    /// The distribution [`PropulsionModel::advance`] would produce, pure
    /// (see [`CtmcProcess::solve_dist`]).
    pub fn solve_dist(&self, dt_secs: f64) -> Vec<f64> {
        self.process.solve_dist(dt_secs)
    }

    /// [`PropulsionModel::advance`] with an optional precomputed
    /// distribution (see [`CtmcProcess::advance_primed`]).
    pub fn advance_primed(&mut self, dt_secs: f64, primed: Option<&[f64]>) {
        self.process.advance_primed(dt_secs, primed);
    }

    /// Read-only access to the underlying Markov process, for fleet-level
    /// batched solve scheduling (see [`CtmcProcess::solve_dists_batch`]).
    pub fn process(&self) -> &CtmcProcess {
        &self.process
    }

    /// Probability that controllability has been lost by now.
    pub fn probability_of_failure(&self) -> f64 {
        let fail_state = self.layout.tolerated_failures() + 1;
        self.process.mass_in(&[fail_state])
    }

    /// Incorporates an *observed* motor failure (diagnosis from telemetry):
    /// the belief collapses onto the corresponding state. Observing more
    /// failures than the layout tolerates collapses onto the absorbing
    /// failure state.
    pub fn observe_motor_failures(&mut self, failed: usize) {
        let t = self.layout.tolerated_failures();
        let state = failed.min(t + 1);
        self.process.observe_state(state);
        self.observed_failures = failed;
    }

    /// The last observed failed-motor count.
    pub fn observed_failures(&self) -> usize {
        self.observed_failures
    }

    /// Probability of losing controllability within a further `horizon_secs`
    /// from the current belief (prognosis without mutating the belief).
    pub fn pof_within(&self, horizon_secs: f64) -> f64 {
        let fail_state = self.layout.tolerated_failures() + 1;
        let dist = self
            .process
            .chain()
            .transient(self.process.distribution(), horizon_secs);
        dist[fail_state]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layouts_expose_expected_counts() {
        assert_eq!(MotorLayout::Quad.motor_count(), 4);
        assert_eq!(MotorLayout::Hexa.motor_count(), 6);
        assert_eq!(MotorLayout::Octa.motor_count(), 8);
        assert_eq!(MotorLayout::Quad.tolerated_failures(), 0);
        assert_eq!(MotorLayout::Hexa.tolerated_failures(), 1);
        assert_eq!(MotorLayout::Octa.tolerated_failures(), 2);
    }

    #[test]
    fn quad_pof_matches_closed_form() {
        // Quad: failure = any of 4 motors fails; PoF(t) = 1 - e^{-4λt}.
        let lambda = 1e-4;
        let mut m = PropulsionModel::new(MotorLayout::Quad, lambda);
        m.advance(1000.0);
        let expect = 1.0 - (-4.0 * lambda * 1000.0f64).exp();
        assert!((m.probability_of_failure() - expect).abs() < 1e-9);
    }

    #[test]
    fn redundancy_ordering_holds() {
        // For the same per-motor rate and mission time, more tolerance means
        // lower PoF despite more motors.
        let lambda = 1e-5;
        let t = 3600.0;
        let pof = |layout| {
            let mut m = PropulsionModel::new(layout, lambda);
            m.advance(t);
            m.probability_of_failure()
        };
        let (q, h, o) = (
            pof(MotorLayout::Quad),
            pof(MotorLayout::Hexa),
            pof(MotorLayout::Octa),
        );
        assert!(q > h, "quad {q} should exceed hexa {h}");
        assert!(h > o, "hexa {h} should exceed octa {o}");
    }

    #[test]
    fn observed_failure_jumps_pof() {
        let mut m = PropulsionModel::new(MotorLayout::Hexa, 1e-4);
        m.advance(60.0);
        let before = m.pof_within(600.0);
        m.observe_motor_failures(1);
        let after = m.pof_within(600.0);
        assert!(
            after > before * 2.0,
            "reconfigured flight must look much riskier: {before} -> {after}"
        );
        assert_eq!(m.observed_failures(), 1);
    }

    #[test]
    fn exceeding_tolerance_is_certain_failure() {
        let mut m = PropulsionModel::new(MotorLayout::Hexa, 1e-4);
        m.observe_motor_failures(2);
        assert!((m.probability_of_failure() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn pof_within_does_not_mutate() {
        let mut m = PropulsionModel::new(MotorLayout::Octa, 1e-4);
        m.advance(100.0);
        let p1 = m.probability_of_failure();
        let _ = m.pof_within(10_000.0);
        assert_eq!(m.probability_of_failure(), p1);
    }

    #[test]
    fn zero_rate_never_fails() {
        let mut m = PropulsionModel::new(MotorLayout::Quad, 0.0);
        m.advance(1e6);
        assert_eq!(m.probability_of_failure(), 0.0);
    }

    #[test]
    #[should_panic(expected = "degradation")]
    fn degradation_below_one_panics() {
        let _ = PropulsionModel::with_degradation(MotorLayout::Quad, 1e-4, 0.5);
    }
}
