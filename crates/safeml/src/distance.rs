//! Two-sample statistical distance measures.
//!
//! The SafeML paper evaluates a family of ECDF-based distances; this module
//! implements the ones it names. All functions take two raw (unsorted)
//! samples and are deterministic. Every measure is ≥ 0, equals 0 for
//! identical samples, and grows with distributional shift — the property
//! the monitor relies on. KS and Kuiper are bounded by 1 (Kuiper by 2);
//! Wasserstein and energy distance carry the scale of the data.
//!
//! # Panics
//!
//! All measures panic if either sample is empty or contains non-finite
//! values — a monitoring window must never be silently empty.

/// The measure selector used by the monitor and the benchmark sweep.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DistanceMeasure {
    /// Kolmogorov–Smirnov: `sup |F(x) − G(x)|`, in `[0, 1]`.
    KolmogorovSmirnov,
    /// Kuiper: `sup (F−G) + sup (G−F)`, in `[0, 2]`, sensitive to tails.
    Kuiper,
    /// Two-sample Anderson–Darling (rank form), tail-weighted.
    AndersonDarling,
    /// Cramér–von Mises (integral form), in `[0, 1]`-ish scale.
    CramerVonMises,
    /// Wasserstein-1 (earth mover's) distance, in data units.
    Wasserstein,
    /// Székely's energy distance, in data units.
    Energy,
}

impl DistanceMeasure {
    /// Every supported measure, for sweeps.
    pub const ALL: [DistanceMeasure; 6] = [
        DistanceMeasure::KolmogorovSmirnov,
        DistanceMeasure::Kuiper,
        DistanceMeasure::AndersonDarling,
        DistanceMeasure::CramerVonMises,
        DistanceMeasure::Wasserstein,
        DistanceMeasure::Energy,
    ];

    /// Computes this measure between samples `a` and `b`.
    pub fn compute(&self, a: &[f64], b: &[f64]) -> f64 {
        match self {
            DistanceMeasure::KolmogorovSmirnov => kolmogorov_smirnov(a, b),
            DistanceMeasure::Kuiper => kuiper(a, b),
            DistanceMeasure::AndersonDarling => anderson_darling(a, b),
            DistanceMeasure::CramerVonMises => cramer_von_mises(a, b),
            DistanceMeasure::Wasserstein => wasserstein_1(a, b),
            DistanceMeasure::Energy => energy_distance(a, b),
        }
    }

    /// A short lowercase name for reports.
    pub fn name(&self) -> &'static str {
        match self {
            DistanceMeasure::KolmogorovSmirnov => "ks",
            DistanceMeasure::Kuiper => "kuiper",
            DistanceMeasure::AndersonDarling => "anderson_darling",
            DistanceMeasure::CramerVonMises => "cramer_von_mises",
            DistanceMeasure::Wasserstein => "wasserstein",
            DistanceMeasure::Energy => "energy",
        }
    }
}

impl std::fmt::Display for DistanceMeasure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

fn sorted_copy(name: &str, xs: &[f64]) -> Vec<f64> {
    assert!(!xs.is_empty(), "{name} sample is empty");
    assert!(
        xs.iter().all(|x| x.is_finite()),
        "{name} sample contains non-finite values"
    );
    let mut v = xs.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).expect("finite values compare"));
    v
}

/// Walks the merged support of two sorted samples, yielding the signed ECDF
/// difference F(x) − G(x) after each distinct point, along with the gap to
/// the next point (for integral measures).
fn ecdf_diff_walk(a: &[f64], b: &[f64]) -> Vec<(f64, f64, f64)> {
    // Returns (x, diff_after_x, gap_to_next_x); gap of last point is 0.
    let (n, m) = (a.len() as f64, b.len() as f64);
    let mut out = Vec::with_capacity(a.len() + b.len());
    let (mut i, mut j) = (0usize, 0usize);
    while i < a.len() || j < b.len() {
        let x = match (a.get(i), b.get(j)) {
            (Some(&ai), Some(&bj)) => ai.min(bj),
            (Some(&ai), None) => ai,
            (None, Some(&bj)) => bj,
            (None, None) => unreachable!(),
        };
        while i < a.len() && a[i] == x {
            i += 1;
        }
        while j < b.len() && b[j] == x {
            j += 1;
        }
        let diff = i as f64 / n - j as f64 / m;
        out.push((x, diff, 0.0));
    }
    for k in 0..out.len().saturating_sub(1) {
        out[k].2 = out[k + 1].0 - out[k].0;
    }
    out
}

/// Kolmogorov–Smirnov statistic `sup_x |F(x) − G(x)|`.
///
/// # Examples
///
/// ```
/// use sesame_safeml::distance::kolmogorov_smirnov;
///
/// let d = kolmogorov_smirnov(&[1.0, 2.0, 3.0], &[1.0, 2.0, 3.0]);
/// assert_eq!(d, 0.0);
/// ```
pub fn kolmogorov_smirnov(a: &[f64], b: &[f64]) -> f64 {
    let (a, b) = (sorted_copy("first", a), sorted_copy("second", b));
    ecdf_diff_walk(&a, &b)
        .into_iter()
        .map(|(_, d, _)| d.abs())
        .fold(0.0, f64::max)
}

/// [`kolmogorov_smirnov`] with the first sample supplied already sorted
/// (ascending) and validated. The monitor's fast path sorts each reference
/// column once instead of on every tick; since sorting the same finite
/// data always yields the same array, the result is bit-identical to the
/// naive function.
///
/// # Panics
///
/// Panics if `a_sorted` is empty or (in debug builds) not sorted, or if
/// `b` is empty / non-finite.
pub fn kolmogorov_smirnov_presorted(a_sorted: &[f64], b: &[f64]) -> f64 {
    assert!(!a_sorted.is_empty(), "first sample is empty");
    debug_assert!(
        a_sorted.windows(2).all(|w| w[0] <= w[1]),
        "first sample must be pre-sorted"
    );
    let b = sorted_copy("second", b);
    ecdf_diff_walk(a_sorted, &b)
        .into_iter()
        .map(|(_, d, _)| d.abs())
        .fold(0.0, f64::max)
}

/// [`kolmogorov_smirnov_presorted`] with a caller-provided scratch buffer
/// for the second sample's sort and a streaming merge walk — the
/// monitor's zero-alloc tick path: with a warm `scratch` the whole
/// computation performs no heap allocations.
///
/// Bit-identical to [`kolmogorov_smirnov_presorted`]: the unstable sort
/// can only permute entries that compare equal, and the merge walk
/// consumes equal entries together by comparison (`-0.0 == 0.0`
/// included), so the sequence of ECDF diffs — and the running max over
/// `|diff|` — is exactly the allocating variant's.
///
/// # Panics
///
/// Same contract as [`kolmogorov_smirnov_presorted`].
pub fn kolmogorov_smirnov_presorted_scratch(
    a_sorted: &[f64],
    b: &[f64],
    scratch: &mut Vec<f64>,
) -> f64 {
    assert!(!a_sorted.is_empty(), "first sample is empty");
    debug_assert!(
        a_sorted.windows(2).all(|w| w[0] <= w[1]),
        "first sample must be pre-sorted"
    );
    assert!(!b.is_empty(), "second sample is empty");
    assert!(
        b.iter().all(|x| x.is_finite()),
        "second sample contains non-finite values"
    );
    scratch.clear();
    scratch.extend_from_slice(b);
    scratch.sort_unstable_by(|a, b| a.partial_cmp(b).expect("finite values compare"));
    let a = a_sorted;
    let b: &[f64] = scratch;
    let (n, m) = (a.len() as f64, b.len() as f64);
    let (mut i, mut j) = (0usize, 0usize);
    let mut sup = 0.0f64;
    while i < a.len() || j < b.len() {
        let x = match (a.get(i), b.get(j)) {
            (Some(&ai), Some(&bj)) => ai.min(bj),
            (Some(&ai), None) => ai,
            (None, Some(&bj)) => bj,
            (None, None) => unreachable!(),
        };
        while i < a.len() && a[i] == x {
            i += 1;
        }
        while j < b.len() && b[j] == x {
            j += 1;
        }
        let diff = i as f64 / n - j as f64 / m;
        sup = sup.max(diff.abs());
    }
    sup
}

/// Kuiper statistic `sup (F−G) + sup (G−F)`.
pub fn kuiper(a: &[f64], b: &[f64]) -> f64 {
    let (a, b) = (sorted_copy("first", a), sorted_copy("second", b));
    let walk = ecdf_diff_walk(&a, &b);
    let d_plus = walk.iter().map(|(_, d, _)| *d).fold(0.0, f64::max);
    let d_minus = walk.iter().map(|(_, d, _)| -*d).fold(0.0, f64::max);
    d_plus + d_minus
}

/// Two-sample Anderson–Darling statistic in ECDF-integral form with tie
/// handling:
///
/// ```text
/// A² = (n·m / N) Σ_j  w_j · (F(x_j) − G(x_j))² / (H(x_j)·(1 − H(x_j)))
/// ```
///
/// summed over distinct pooled values `x_j` with pooled mass `w_j` and
/// pooled ECDF `H` (the final point, where `H = 1`, contributes nothing).
/// The `H(1 − H)` weight makes the statistic tail-sensitive; it is zero for
/// identical samples and symmetric in its arguments.
pub fn anderson_darling(a: &[f64], b: &[f64]) -> f64 {
    let sa = sorted_copy("first", a);
    let sb = sorted_copy("second", b);
    let n = sa.len() as f64;
    let m = sb.len() as f64;
    let nn = n + m;
    let walk = ecdf_diff_walk(&sa, &sb);
    let fa = |x: f64| sa.partition_point(|v| *v <= x) as f64 / n;
    let fb = |x: f64| sb.partition_point(|v| *v <= x) as f64 / m;
    let mut a2 = 0.0;
    let mut h_prev = 0.0;
    for (x, diff, _) in walk {
        let h = (fa(x) * n + fb(x) * m) / nn;
        let w = h - h_prev;
        h_prev = h;
        if h < 1.0 {
            a2 += w * diff * diff / (h * (1.0 - h));
        }
    }
    (n * m / nn) * a2
}

/// Cramér–von Mises criterion in integral form: the ECDF squared difference
/// integrated against the pooled empirical measure,
/// `T = Σ_pooled (F(x) − G(x))² / N`.
pub fn cramer_von_mises(a: &[f64], b: &[f64]) -> f64 {
    let sa = sorted_copy("first", a);
    let sb = sorted_copy("second", b);
    let n = sa.len();
    let m = sb.len();
    let nn = (n + m) as f64;
    let mut t = 0.0;
    // Evaluate at every pooled point (weighting by multiplicity).
    let ea = |x: f64| sa.partition_point(|v| *v <= x) as f64 / n as f64;
    let eb = |x: f64| sb.partition_point(|v| *v <= x) as f64 / m as f64;
    for &x in sa.iter().chain(sb.iter()) {
        let d = ea(x) - eb(x);
        t += d * d;
    }
    t / nn
}

/// Wasserstein-1 (earth mover's) distance: `∫ |F(x) − G(x)| dx` over the
/// merged support.
pub fn wasserstein_1(a: &[f64], b: &[f64]) -> f64 {
    let (a, b) = (sorted_copy("first", a), sorted_copy("second", b));
    ecdf_diff_walk(&a, &b)
        .into_iter()
        .map(|(_, d, gap)| d.abs() * gap)
        .sum()
}

/// Székely's energy distance `2·E|X−Y| − E|X−X'| − E|Y−Y'|` (non-negative,
/// zero iff the distributions coincide).
pub fn energy_distance(a: &[f64], b: &[f64]) -> f64 {
    let sa = sorted_copy("first", a);
    let sb = sorted_copy("second", b);
    let exy = mean_abs_cross(&sa, &sb);
    let exx = mean_abs_within(&sa);
    let eyy = mean_abs_within(&sb);
    (2.0 * exy - exx - eyy).max(0.0)
}

/// `E|X − X'|` for a sorted sample, via the order-statistics identity
/// `Σ_i (2i − n + 1)·x_(i) · 2 / n²` (0-indexed).
fn mean_abs_within(xs: &[f64]) -> f64 {
    let n = xs.len();
    if n < 2 {
        return 0.0;
    }
    let mut s = 0.0;
    for (i, &x) in xs.iter().enumerate() {
        s += (2.0 * i as f64 - (n as f64 - 1.0)) * x;
    }
    2.0 * s / ((n * n) as f64)
}

/// `E|X − Y|` for two sorted samples via prefix sums.
fn mean_abs_cross(xs: &[f64], ys: &[f64]) -> f64 {
    let mut prefix = Vec::with_capacity(ys.len() + 1);
    prefix.push(0.0);
    for &y in ys {
        prefix.push(prefix.last().unwrap() + y);
    }
    let total: f64 = *prefix.last().unwrap();
    let m = ys.len();
    let mut s = 0.0;
    for &x in xs {
        // ys[..k] <= x < ys[k..]
        let k = ys.partition_point(|v| *v <= x);
        let below = prefix[k];
        let above = total - below;
        s += x * k as f64 - below + (above - x * (m - k) as f64);
    }
    s / ((xs.len() * m) as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    const A: [f64; 8] = [0.1, 0.4, 0.5, 0.7, 1.0, 1.2, 1.4, 2.0];

    fn shifted(by: f64) -> Vec<f64> {
        A.iter().map(|x| x + by).collect()
    }

    #[test]
    fn identical_samples_have_zero_distance() {
        for m in DistanceMeasure::ALL {
            let d = m.compute(&A, &A);
            assert!(d.abs() < 1e-12, "{m} on identical samples gave {d}");
        }
    }

    #[test]
    fn all_measures_grow_with_shift() {
        for m in DistanceMeasure::ALL {
            let small = m.compute(&A, &shifted(0.2));
            let large = m.compute(&A, &shifted(5.0));
            assert!(
                large > small,
                "{m}: shift 5.0 gave {large} <= shift 0.2 gave {small}"
            );
        }
    }

    #[test]
    fn measures_are_symmetric() {
        let b = shifted(0.7);
        for m in DistanceMeasure::ALL {
            let ab = m.compute(&A, &b);
            let ba = m.compute(&b, &A);
            assert!((ab - ba).abs() < 1e-12, "{m} asymmetric: {ab} vs {ba}");
        }
    }

    #[test]
    fn ks_bounds_and_disjoint_supports() {
        assert_eq!(kolmogorov_smirnov(&A, &shifted(100.0)), 1.0);
        let d = kolmogorov_smirnov(&A, &shifted(0.05));
        assert!((0.0..=1.0).contains(&d));
    }

    #[test]
    fn ks_hand_computed_case() {
        // a = {1,2}, b = {1.5, 2.5}: max gap is 0.5.
        let d = kolmogorov_smirnov(&[1.0, 2.0], &[1.5, 2.5]);
        assert!((d - 0.5).abs() < 1e-12);
    }

    #[test]
    fn scratch_ks_is_bit_identical_to_presorted_and_naive() {
        let mut a_sorted = A.to_vec();
        a_sorted.sort_by(|x, y| x.partial_cmp(y).unwrap());
        let mut scratch = Vec::new();
        for b in [
            shifted(0.3),
            shifted(-2.0),
            vec![0.5; 8],                         // massive ties
            vec![0.0, -0.0, 0.4, 1.2, -0.0, 0.7], // signed-zero ties
            vec![42.0],                           // unequal sizes
        ] {
            let naive = kolmogorov_smirnov(&A, &b);
            let pre = kolmogorov_smirnov_presorted(&a_sorted, &b);
            let scr = kolmogorov_smirnov_presorted_scratch(&a_sorted, &b, &mut scratch);
            assert_eq!(naive.to_bits(), pre.to_bits());
            assert_eq!(pre.to_bits(), scr.to_bits());
        }
    }

    #[test]
    fn kuiper_at_least_ks_and_at_most_twice() {
        let b = shifted(0.4);
        let ks = kolmogorov_smirnov(&A, &b);
        let ku = kuiper(&A, &b);
        assert!(ku >= ks - 1e-12);
        assert!(ku <= 2.0 * ks + 1e-12);
    }

    #[test]
    fn kuiper_detects_spread_change_better_than_location() {
        // A spread change moves both tails: Kuiper accumulates both sups.
        let narrow: Vec<f64> = (0..50).map(|i| i as f64 * 0.01).collect();
        let wide: Vec<f64> = (0..50).map(|i| (i as f64 - 25.0) * 0.04 + 0.25).collect();
        let ks = kolmogorov_smirnov(&narrow, &wide);
        let ku = kuiper(&narrow, &wide);
        assert!(
            ku > ks,
            "kuiper {ku} should exceed ks {ks} for spread shift"
        );
    }

    #[test]
    fn wasserstein_of_pure_shift_is_the_shift() {
        let d = wasserstein_1(&A, &shifted(0.5));
        assert!((d - 0.5).abs() < 1e-9, "got {d}");
    }

    #[test]
    fn energy_distance_zero_iff_same_nonneg_otherwise() {
        assert!(energy_distance(&A, &A).abs() < 1e-12);
        assert!(energy_distance(&A, &shifted(1.0)) > 0.0);
    }

    #[test]
    fn energy_distance_of_large_shift_approaches_twice_shift() {
        // For far-separated equal-shape samples, 2E|X−Y| − E|X−X'| − E|Y−Y'|
        // ≈ 2·shift − 2·E|X−X'| ... exactly 2·(shift) − 2·mean_abs_within.
        let shift = 100.0;
        let d = energy_distance(&A, &shifted(shift));
        let within = {
            let mut s = A.to_vec();
            s.sort_by(|a, b| a.partial_cmp(b).unwrap());
            super::mean_abs_within(&s)
        };
        assert!((d - (2.0 * shift - 2.0 * within)).abs() < 1e-9);
    }

    #[test]
    fn anderson_darling_weights_tails() {
        // Same KS gap placed in the tail vs the middle: AD scores the tail
        // shift higher.
        let base: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let mut tail = base.clone();
        for v in tail.iter_mut().take(5) {
            *v -= 50.0;
        }
        let mut middle = base.clone();
        for v in middle.iter_mut().skip(48).take(5) {
            *v += 0.5;
        }
        assert!(anderson_darling(&base, &tail) > anderson_darling(&base, &middle));
    }

    #[test]
    fn cvm_between_zero_and_one() {
        let d = cramer_von_mises(&A, &shifted(0.3));
        assert!((0.0..=1.0).contains(&d));
        // Complete separation tops out at 1/3 under the pooled-integral
        // normalization.
        assert!(cramer_von_mises(&A, &shifted(1e6)) > 0.3);
    }

    #[test]
    fn unequal_sample_sizes_supported() {
        let small = [0.5, 1.5, 2.5];
        for m in DistanceMeasure::ALL {
            let d = m.compute(&A, &small);
            assert!(d.is_finite() && d >= 0.0, "{m} gave {d}");
        }
    }

    #[test]
    fn display_names() {
        assert_eq!(DistanceMeasure::KolmogorovSmirnov.to_string(), "ks");
        assert_eq!(DistanceMeasure::Energy.to_string(), "energy");
    }

    #[test]
    #[should_panic(expected = "sample is empty")]
    fn empty_sample_panics() {
        let _ = kolmogorov_smirnov(&[], &A);
    }

    #[test]
    #[should_panic(expected = "non-finite")]
    fn nan_sample_panics() {
        let _ = wasserstein_1(&[1.0, f64::NAN], &A);
    }

    #[test]
    fn mean_abs_cross_matches_naive() {
        let xs = [0.3f64, 1.2, 2.7];
        let ys = [0.9, 1.1, 3.0, 4.0];
        let naive: f64 = xs
            .iter()
            .flat_map(|x| ys.iter().map(move |y| (x - y).abs()))
            .sum::<f64>()
            / 12.0;
        let mut sx = xs.to_vec();
        let mut sy = ys.to_vec();
        sx.sort_by(|a, b| a.partial_cmp(b).unwrap());
        sy.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert!((mean_abs_cross(&sx, &sy) - naive).abs() < 1e-12);
    }

    #[test]
    fn mean_abs_within_matches_naive() {
        let xs = [0.3f64, 1.2, 2.7, 5.0];
        let naive: f64 = xs
            .iter()
            .flat_map(|a| xs.iter().map(move |b| (a - b).abs()))
            .sum::<f64>()
            / 16.0;
        let mut s = xs.to_vec();
        s.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert!((mean_abs_within(&s) - naive).abs() < 1e-12);
    }
}
