//! SafeML — safety monitoring of ML components through statistical
//! distance measures.
//!
//! Reproduces the SafeML technology of the paper (§III-A2, \[32\]): at
//! runtime, a sliding window of the features seen by the ML component is
//! compared against a reference set drawn from the training data using
//! empirical-CDF distance measures. "The greater the dissimilarity between
//! the input and the reference images, the lower the confidence in the ML
//! model's outcome."
//!
//! * [`ecdf::Ecdf`] — empirical distribution functions;
//! * [`distance`] — the measures from the SafeML paper: Kolmogorov–Smirnov,
//!   Kuiper, Anderson–Darling, Cramér–von Mises, Wasserstein-1 and the
//!   energy distance;
//! * [`bootstrap`] — permutation p-values for any measure;
//! * [`monitor::SafeMlMonitor`] — the sliding-window runtime monitor that
//!   maps aggregated dissimilarity to a confidence level and a verdict
//!   (accept / caution / reject), which ConSerts turns into mitigations.
//!
//! # Examples
//!
//! ```
//! use sesame_safeml::distance::{DistanceMeasure};
//!
//! let reference = [0.0, 0.1, 0.2, 0.3, 0.4, 0.5];
//! let shifted = [5.0, 5.1, 5.2, 5.3, 5.4, 5.5];
//! let d = DistanceMeasure::KolmogorovSmirnov.compute(&reference, &shifted);
//! assert!((d - 1.0).abs() < 1e-12, "disjoint supports give KS = 1");
//! ```

pub mod bootstrap;
pub mod distance;
pub mod ecdf;
pub mod monitor;
pub mod power;

pub use distance::DistanceMeasure;
pub use ecdf::Ecdf;
pub use monitor::{SafeMlConfig, SafeMlMonitor, SafeMlVerdict};
