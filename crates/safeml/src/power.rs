//! Statistical power and window sizing.
//!
//! SafeML deployments must pick a sliding-window length: long enough that
//! a genuine distribution shift is detected reliably, short enough that
//! detection is fast and the window stays fresh. This module estimates,
//! by Monte-Carlo simulation on Gaussian surrogates, the detection power
//! of a measure/threshold pair at a given shift size — and searches for
//! the smallest window achieving a target power.

use crate::distance::DistanceMeasure;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Result of a power estimation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerEstimate {
    /// Window length used.
    pub window: usize,
    /// Fraction of trials where the shifted window exceeded the threshold
    /// (true-positive rate).
    pub power: f64,
    /// Fraction of trials where an unshifted window exceeded the threshold
    /// (false-alarm rate).
    pub false_alarm: f64,
}

fn gaussian(rng: &mut StdRng) -> f64 {
    let u1: f64 = rng.random::<f64>().max(1e-12);
    let u2: f64 = rng.random();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// Estimates detection power for windows of `window` samples against a
/// reference of `reference` samples, for a location shift of
/// `shift_sigmas` standard deviations, judged as `measure ≥ threshold`.
///
/// # Panics
///
/// Panics if `window`, `reference` or `trials` is zero.
///
/// # Examples
///
/// ```
/// use sesame_safeml::distance::DistanceMeasure;
/// use sesame_safeml::power::estimate_power;
///
/// let e = estimate_power(DistanceMeasure::KolmogorovSmirnov, 50, 200, 2.0, 0.5, 100, 7);
/// assert!(e.power > 0.9, "a 2σ shift is easy at n = 50");
/// ```
pub fn estimate_power(
    measure: DistanceMeasure,
    window: usize,
    reference: usize,
    shift_sigmas: f64,
    threshold: f64,
    trials: usize,
    seed: u64,
) -> PowerEstimate {
    assert!(
        window > 0 && reference > 0 && trials > 0,
        "sizes must be positive"
    );
    let mut rng = StdRng::seed_from_u64(seed);
    let mut hits = 0usize;
    let mut false_alarms = 0usize;
    for _ in 0..trials {
        let base: Vec<f64> = (0..reference).map(|_| gaussian(&mut rng)).collect();
        let shifted: Vec<f64> = (0..window)
            .map(|_| gaussian(&mut rng) + shift_sigmas)
            .collect();
        let clean: Vec<f64> = (0..window).map(|_| gaussian(&mut rng)).collect();
        if measure.compute(&base, &shifted) >= threshold {
            hits += 1;
        }
        if measure.compute(&base, &clean) >= threshold {
            false_alarms += 1;
        }
    }
    PowerEstimate {
        window,
        power: hits as f64 / trials as f64,
        false_alarm: false_alarms as f64 / trials as f64,
    }
}

/// Finds the smallest window in `candidates` reaching `target_power`
/// while keeping the false-alarm rate at or below `max_false_alarm`.
/// Returns `None` when no candidate qualifies.
///
/// # Examples
///
/// ```
/// use sesame_safeml::distance::DistanceMeasure;
/// use sesame_safeml::power::smallest_adequate_window;
///
/// let w = smallest_adequate_window(
///     DistanceMeasure::KolmogorovSmirnov,
///     &[10, 25, 50, 100],
///     2.0, 0.5, 0.9, 0.05, 100, 7,
/// );
/// assert!(w.is_some());
/// ```
#[allow(clippy::too_many_arguments)]
pub fn smallest_adequate_window(
    measure: DistanceMeasure,
    candidates: &[usize],
    shift_sigmas: f64,
    threshold: f64,
    target_power: f64,
    max_false_alarm: f64,
    trials: usize,
    seed: u64,
) -> Option<PowerEstimate> {
    let mut sorted = candidates.to_vec();
    sorted.sort_unstable();
    for (i, w) in sorted.into_iter().enumerate() {
        let e = estimate_power(
            measure,
            w,
            200,
            shift_sigmas,
            threshold,
            trials,
            seed ^ (i as u64) << 8,
        );
        if e.power >= target_power && e.false_alarm <= max_false_alarm {
            return Some(e);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn power_grows_with_window() {
        // The threshold must sit below the shift's asymptotic KS (≈0.38
        // for a 1σ location shift) for larger windows to help; above it
        // the statistic concentrates *below* the threshold instead.
        let small = estimate_power(DistanceMeasure::KolmogorovSmirnov, 5, 200, 1.0, 0.3, 200, 3);
        let large = estimate_power(
            DistanceMeasure::KolmogorovSmirnov,
            80,
            200,
            1.0,
            0.3,
            200,
            3,
        );
        assert!(
            large.power > small.power,
            "window 80 ({}) must beat window 5 ({})",
            large.power,
            small.power
        );
        assert!(large.power > 0.9);
    }

    #[test]
    fn threshold_above_asymptote_inverts_window_benefit() {
        // The complementary fact: with the threshold above the asymptotic
        // statistic, growing the window *reduces* (spurious) detections.
        let small = estimate_power(DistanceMeasure::KolmogorovSmirnov, 5, 200, 1.0, 0.5, 200, 3);
        let large = estimate_power(
            DistanceMeasure::KolmogorovSmirnov,
            80,
            200,
            1.0,
            0.5,
            200,
            3,
        );
        assert!(large.power < small.power);
    }

    #[test]
    fn power_grows_with_shift() {
        let weak = estimate_power(
            DistanceMeasure::KolmogorovSmirnov,
            30,
            200,
            0.3,
            0.5,
            200,
            5,
        );
        let strong = estimate_power(
            DistanceMeasure::KolmogorovSmirnov,
            30,
            200,
            3.0,
            0.5,
            200,
            5,
        );
        assert!(strong.power > weak.power);
        assert!(strong.power > 0.95);
    }

    #[test]
    fn false_alarm_low_for_sensible_threshold() {
        let e = estimate_power(
            DistanceMeasure::KolmogorovSmirnov,
            50,
            200,
            2.0,
            0.5,
            200,
            9,
        );
        assert!(e.false_alarm < 0.1, "false alarms {}", e.false_alarm);
        assert_eq!(e.window, 50);
    }

    #[test]
    fn window_search_returns_smallest_adequate() {
        let found = smallest_adequate_window(
            DistanceMeasure::KolmogorovSmirnov,
            &[100, 10, 50, 25],
            2.0,
            0.5,
            0.9,
            0.1,
            100,
            7,
        )
        .expect("a 2σ shift is detectable");
        assert!(found.window <= 50, "found window {}", found.window);
        assert!(found.power >= 0.9);
    }

    #[test]
    fn impossible_target_returns_none() {
        // A negligible shift cannot reach 99% power at tiny windows with a
        // high threshold.
        let none = smallest_adequate_window(
            DistanceMeasure::KolmogorovSmirnov,
            &[5, 10],
            0.05,
            0.9,
            0.99,
            0.05,
            50,
            7,
        );
        assert!(none.is_none());
    }

    #[test]
    fn deterministic_per_seed() {
        let a = estimate_power(DistanceMeasure::Wasserstein, 20, 100, 1.0, 0.8, 50, 11);
        let b = estimate_power(DistanceMeasure::Wasserstein, 20, 100, 1.0, 0.8, 50, 11);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "sizes must be positive")]
    fn zero_trials_panics() {
        let _ = estimate_power(DistanceMeasure::KolmogorovSmirnov, 10, 10, 1.0, 0.5, 0, 1);
    }
}
