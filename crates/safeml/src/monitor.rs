//! The sliding-window SafeML runtime monitor.
//!
//! "SafeML assesses a sliding window of images captured by UAV cameras
//! against a reference set derived from the model's training images"
//! (§III-A2). Here each "image" is a feature vector (produced by
//! `sesame-vision`'s synthetic extractor or any other source); the monitor
//! keeps one reference sample per feature, maintains the runtime window,
//! and aggregates per-feature distances into:
//!
//! * a **dissimilarity** score in `[0, 1]` (bounded measures are used
//!   as-is; unbounded ones are squashed),
//! * a **confidence** `= 1 − dissimilarity` in the ML outcome,
//! * a three-way [`SafeMlVerdict`] against configurable thresholds.

use crate::distance::DistanceMeasure;
use std::collections::VecDeque;

/// Verdict levels the ConSert layer maps to mitigations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SafeMlVerdict {
    /// Runtime data statistically matches the training data.
    Accept,
    /// Noticeable shift: treat ML outputs with caution (e.g. descend to a
    /// more favourable altitude, as in §V-B).
    Caution,
    /// Strong shift: ML outputs should not be trusted.
    Reject,
}

/// Configuration of the monitor.
#[derive(Debug, Clone)]
pub struct SafeMlConfig {
    /// Sliding window length (number of runtime samples).
    pub window: usize,
    /// Distance measure to use.
    pub measure: DistanceMeasure,
    /// Dissimilarity at or above which the verdict is `Caution`.
    pub caution_threshold: f64,
    /// Dissimilarity at or above which the verdict is `Reject`.
    pub reject_threshold: f64,
    /// Scale used to squash unbounded measures: `d ↦ d / (d + scale)`.
    pub squash_scale: f64,
}

impl Default for SafeMlConfig {
    fn default() -> Self {
        SafeMlConfig {
            window: 50,
            measure: DistanceMeasure::KolmogorovSmirnov,
            caution_threshold: 0.5,
            reject_threshold: 0.9,
            squash_scale: 1.0,
        }
    }
}

/// The runtime monitor. Feed it samples with [`SafeMlMonitor::push_sample`]
/// and read [`SafeMlMonitor::dissimilarity`] / [`SafeMlMonitor::verdict`].
///
/// # Examples
///
/// ```
/// use sesame_safeml::monitor::{SafeMlConfig, SafeMlMonitor, SafeMlVerdict};
///
/// // Reference: two features, values near 0.
/// let reference: Vec<Vec<f64>> = (0..100)
///     .map(|i| vec![(i % 10) as f64 * 0.01, (i % 7) as f64 * 0.01])
///     .collect();
/// let mut mon = SafeMlMonitor::new(reference, SafeMlConfig::default())?;
/// // Runtime data shifted far away.
/// for i in 0..50 {
///     mon.push_sample(&[5.0 + (i % 10) as f64 * 0.01, 5.0]);
/// }
/// assert_eq!(mon.verdict(), SafeMlVerdict::Reject);
/// # Ok::<(), sesame_safeml::monitor::SafeMlError>(())
/// ```
#[derive(Debug, Clone)]
pub struct SafeMlMonitor {
    config: SafeMlConfig,
    /// Column-major reference: one Vec per feature.
    reference: Vec<Vec<f64>>,
    /// Sliding window of runtime samples (row-major).
    window: VecDeque<Vec<f64>>,
    samples_seen: u64,
    /// Pre-sorted copy of `reference`, built lazily by
    /// [`SafeMlMonitor::assessment`]. A pure accelerator: sorting the same
    /// finite columns always yields the same arrays, so results are
    /// bit-identical with or without it.
    sorted_reference: Option<Vec<Vec<f64>>>,
    /// Column-gather scratch for the fast path; reused every tick so a
    /// steady-state assessment performs zero heap allocations.
    col_scratch: Vec<f64>,
    /// Sort scratch handed to the streaming KS kernel.
    sort_scratch: Vec<f64>,
}

/// Errors from monitor construction and feeding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SafeMlError {
    /// Reference set was empty.
    EmptyReference,
    /// Reference rows disagree on feature count.
    RaggedReference,
    /// A runtime sample had the wrong number of features.
    FeatureCountMismatch {
        /// Expected feature count.
        expected: usize,
        /// Received feature count.
        got: usize,
    },
    /// Reference or sample contained non-finite values.
    NonFinite,
    /// Config thresholds out of order (`caution >= reject`).
    BadThresholds,
}

impl std::fmt::Display for SafeMlError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SafeMlError::EmptyReference => write!(f, "empty reference set"),
            SafeMlError::RaggedReference => write!(f, "reference rows have differing widths"),
            SafeMlError::FeatureCountMismatch { expected, got } => {
                write!(f, "sample has {got} features, reference has {expected}")
            }
            SafeMlError::NonFinite => write!(f, "non-finite feature value"),
            SafeMlError::BadThresholds => {
                write!(f, "caution threshold must be below reject threshold")
            }
        }
    }
}

impl std::error::Error for SafeMlError {}

impl SafeMlMonitor {
    /// Builds a monitor from row-major reference samples.
    ///
    /// # Errors
    ///
    /// See [`SafeMlError`] for the rejected shapes.
    pub fn new(reference_rows: Vec<Vec<f64>>, config: SafeMlConfig) -> Result<Self, SafeMlError> {
        if reference_rows.is_empty() {
            return Err(SafeMlError::EmptyReference);
        }
        if config.caution_threshold >= config.reject_threshold {
            return Err(SafeMlError::BadThresholds);
        }
        let width = reference_rows[0].len();
        if width == 0 {
            return Err(SafeMlError::EmptyReference);
        }
        let mut reference = vec![Vec::with_capacity(reference_rows.len()); width];
        for row in &reference_rows {
            if row.len() != width {
                return Err(SafeMlError::RaggedReference);
            }
            for (c, v) in row.iter().enumerate() {
                if !v.is_finite() {
                    return Err(SafeMlError::NonFinite);
                }
                reference[c].push(*v);
            }
        }
        Ok(SafeMlMonitor {
            config,
            reference,
            window: VecDeque::new(),
            samples_seen: 0,
            sorted_reference: None,
            col_scratch: Vec::new(),
            sort_scratch: Vec::new(),
        })
    }

    /// Number of features per sample.
    pub fn feature_count(&self) -> usize {
        self.reference.len()
    }

    /// Pushes one runtime sample into the sliding window.
    ///
    /// # Errors
    ///
    /// Returns [`SafeMlError::FeatureCountMismatch`] or
    /// [`SafeMlError::NonFinite`] on malformed samples.
    pub fn push_sample(&mut self, features: &[f64]) -> Result<(), SafeMlError> {
        if features.len() != self.reference.len() {
            return Err(SafeMlError::FeatureCountMismatch {
                expected: self.reference.len(),
                got: features.len(),
            });
        }
        if features.iter().any(|v| !v.is_finite()) {
            return Err(SafeMlError::NonFinite);
        }
        // Recycle the evicted row's buffer: once the window is full the
        // ring steady-states with zero heap allocations per sample.
        let mut slot = if self.window.len() == self.config.window {
            self.window.pop_front().expect("full window is non-empty")
        } else {
            Vec::with_capacity(features.len())
        };
        slot.clear();
        slot.extend_from_slice(features);
        self.window.push_back(slot);
        self.samples_seen += 1;
        Ok(())
    }

    /// Whether the window holds enough samples to judge (at least half the
    /// configured length).
    pub fn is_warmed_up(&self) -> bool {
        self.window.len() * 2 >= self.config.window
    }

    /// Aggregated dissimilarity in `[0, 1]`: the mean per-feature distance,
    /// squashed for unbounded measures. Returns 0 before any samples
    /// arrive.
    pub fn dissimilarity(&self) -> f64 {
        if self.window.is_empty() {
            return 0.0;
        }
        let mut acc = 0.0;
        for (c, ref_col) in self.reference.iter().enumerate() {
            let col: Vec<f64> = self.window.iter().map(|row| row[c]).collect();
            let d = self.config.measure.compute(ref_col, &col);
            acc += self.squash(d);
        }
        acc / self.reference.len() as f64
    }

    fn squash(&self, d: f64) -> f64 {
        match self.config.measure {
            DistanceMeasure::KolmogorovSmirnov => d,
            DistanceMeasure::Kuiper => d / 2.0,
            DistanceMeasure::CramerVonMises => d.min(1.0),
            // AD, Wasserstein and energy are unbounded: squash smoothly.
            _ => d / (d + self.config.squash_scale),
        }
    }

    /// Computes the dissimilarity **once** and derives the verdict from
    /// it — the fast-path equivalent of calling
    /// [`SafeMlMonitor::dissimilarity`] followed by
    /// [`SafeMlMonitor::verdict`], which walk the full window/reference
    /// comparison twice. For the KS measure the reference columns are
    /// additionally pre-sorted once (lazily) and reused across calls;
    /// both results are bit-identical to the naive accessors.
    pub fn assessment(&mut self) -> (f64, SafeMlVerdict) {
        let d = self.dissimilarity_presorted();
        let verdict = if d >= self.config.reject_threshold {
            SafeMlVerdict::Reject
        } else if d >= self.config.caution_threshold {
            SafeMlVerdict::Caution
        } else {
            SafeMlVerdict::Accept
        };
        (d, verdict)
    }

    /// [`SafeMlMonitor::dissimilarity`] using the lazily-built pre-sorted
    /// reference (KS only; other measures fall back to the naive path).
    fn dissimilarity_presorted(&mut self) -> f64 {
        if self.window.is_empty() {
            return 0.0;
        }
        if self.config.measure != DistanceMeasure::KolmogorovSmirnov {
            return self.dissimilarity();
        }
        let sorted = self.sorted_reference.get_or_insert_with(|| {
            self.reference
                .iter()
                .map(|col| {
                    let mut v = col.clone();
                    v.sort_by(|a, b| a.partial_cmp(b).expect("finite values compare"));
                    v
                })
                .collect()
        });
        let mut acc = 0.0;
        for (c, ref_col) in sorted.iter().enumerate() {
            // Gather the window column into reusable scratch and run the
            // streaming KS kernel: zero allocations per tick once warm,
            // bit-identical to the collecting path.
            self.col_scratch.clear();
            self.col_scratch
                .extend(self.window.iter().map(|row| row[c]));
            let d = crate::distance::kolmogorov_smirnov_presorted_scratch(
                ref_col,
                &self.col_scratch,
                &mut self.sort_scratch,
            );
            acc += d; // squash() is the identity for KS
        }
        acc / self.reference.len() as f64
    }

    /// Confidence in the ML component's outcome: `1 − dissimilarity`.
    pub fn confidence(&self) -> f64 {
        1.0 - self.dissimilarity()
    }

    /// The three-way verdict against the configured thresholds.
    pub fn verdict(&self) -> SafeMlVerdict {
        let d = self.dissimilarity();
        if d >= self.config.reject_threshold {
            SafeMlVerdict::Reject
        } else if d >= self.config.caution_threshold {
            SafeMlVerdict::Caution
        } else {
            SafeMlVerdict::Accept
        }
    }

    /// Total samples ever pushed.
    pub fn samples_seen(&self) -> u64 {
        self.samples_seen
    }

    /// Current window occupancy.
    pub fn window_len(&self) -> usize {
        self.window.len()
    }
}

#[cfg(test)]
#[allow(clippy::field_reassign_with_default)]
mod tests {
    use super::*;

    fn reference() -> Vec<Vec<f64>> {
        (0..200)
            .map(|i| {
                vec![
                    (i % 20) as f64 * 0.05,      // uniform-ish 0..1
                    ((i * 7) % 13) as f64 * 0.1, // uniform-ish 0..1.3
                ]
            })
            .collect()
    }

    #[test]
    fn in_distribution_data_accepts() {
        let mut mon = SafeMlMonitor::new(reference(), SafeMlConfig::default()).unwrap();
        for i in 0..50 {
            mon.push_sample(&[(i % 20) as f64 * 0.05, ((i * 7) % 13) as f64 * 0.1])
                .unwrap();
        }
        assert!(mon.is_warmed_up());
        assert!(mon.dissimilarity() < 0.3, "d = {}", mon.dissimilarity());
        assert_eq!(mon.verdict(), SafeMlVerdict::Accept);
        assert!(mon.confidence() > 0.7);
    }

    #[test]
    fn shifted_data_rejects() {
        let mut mon = SafeMlMonitor::new(reference(), SafeMlConfig::default()).unwrap();
        for _ in 0..50 {
            mon.push_sample(&[10.0, -5.0]).unwrap();
        }
        assert_eq!(mon.verdict(), SafeMlVerdict::Reject);
        assert!(mon.confidence() < 0.15);
    }

    #[test]
    fn partial_shift_cautions() {
        // One feature in-distribution, the other fully out: mean KS ≈ 0.5+.
        let mut cfg = SafeMlConfig::default();
        cfg.caution_threshold = 0.4;
        cfg.reject_threshold = 0.8;
        let mut mon = SafeMlMonitor::new(reference(), cfg).unwrap();
        for i in 0..50 {
            mon.push_sample(&[(i % 20) as f64 * 0.05, 99.0]).unwrap();
        }
        assert_eq!(mon.verdict(), SafeMlVerdict::Caution);
    }

    #[test]
    fn window_slides() {
        let mut mon = SafeMlMonitor::new(reference(), SafeMlConfig::default()).unwrap();
        // Fill with shifted data, then flush with in-distribution data.
        for _ in 0..50 {
            mon.push_sample(&[10.0, 10.0]).unwrap();
        }
        let bad = mon.dissimilarity();
        for i in 0..50 {
            mon.push_sample(&[(i % 20) as f64 * 0.05, ((i * 7) % 13) as f64 * 0.1])
                .unwrap();
        }
        let good = mon.dissimilarity();
        assert!(good < bad, "window must forget old shift: {bad} -> {good}");
        assert_eq!(mon.window_len(), 50);
        assert_eq!(mon.samples_seen(), 100);
    }

    #[test]
    fn empty_window_is_neutral() {
        let mon = SafeMlMonitor::new(reference(), SafeMlConfig::default()).unwrap();
        assert_eq!(mon.dissimilarity(), 0.0);
        assert_eq!(mon.verdict(), SafeMlVerdict::Accept);
        assert!(!mon.is_warmed_up());
    }

    #[test]
    fn construction_rejects_bad_shapes() {
        assert_eq!(
            SafeMlMonitor::new(vec![], SafeMlConfig::default()).unwrap_err(),
            SafeMlError::EmptyReference
        );
        assert_eq!(
            SafeMlMonitor::new(vec![vec![]], SafeMlConfig::default()).unwrap_err(),
            SafeMlError::EmptyReference
        );
        assert_eq!(
            SafeMlMonitor::new(vec![vec![1.0], vec![1.0, 2.0]], SafeMlConfig::default())
                .unwrap_err(),
            SafeMlError::RaggedReference
        );
        assert_eq!(
            SafeMlMonitor::new(vec![vec![f64::NAN]], SafeMlConfig::default()).unwrap_err(),
            SafeMlError::NonFinite
        );
        let mut cfg = SafeMlConfig::default();
        cfg.caution_threshold = 0.9;
        cfg.reject_threshold = 0.5;
        assert_eq!(
            SafeMlMonitor::new(vec![vec![1.0]], cfg).unwrap_err(),
            SafeMlError::BadThresholds
        );
    }

    #[test]
    fn sample_shape_checked() {
        let mut mon = SafeMlMonitor::new(reference(), SafeMlConfig::default()).unwrap();
        assert_eq!(
            mon.push_sample(&[1.0]).unwrap_err(),
            SafeMlError::FeatureCountMismatch {
                expected: 2,
                got: 1
            }
        );
        assert_eq!(
            mon.push_sample(&[1.0, f64::INFINITY]).unwrap_err(),
            SafeMlError::NonFinite
        );
        assert_eq!(mon.feature_count(), 2);
    }

    #[test]
    fn assessment_is_bit_identical_to_naive_accessors() {
        let mut mon = SafeMlMonitor::new(reference(), SafeMlConfig::default()).unwrap();
        // Empty window first, then a drifting stream crossing thresholds.
        assert_eq!(mon.assessment(), (0.0, SafeMlVerdict::Accept));
        for i in 0..120u32 {
            let drift = f64::from(i) * 0.15;
            mon.push_sample(&[(i % 20) as f64 * 0.05 + drift, drift])
                .unwrap();
            let naive = (mon.dissimilarity(), mon.verdict());
            let fast = mon.assessment();
            assert_eq!(naive.0.to_bits(), fast.0.to_bits(), "tick {i}");
            assert_eq!(naive.1, fast.1, "tick {i}");
        }
    }

    #[test]
    fn assessment_falls_back_for_non_ks_measures() {
        let mut cfg = SafeMlConfig::default();
        cfg.measure = DistanceMeasure::Wasserstein;
        let mut mon = SafeMlMonitor::new(reference(), cfg).unwrap();
        for i in 0..50 {
            mon.push_sample(&[f64::from(i) * 0.3, 2.0]).unwrap();
            let naive = (mon.dissimilarity(), mon.verdict());
            let fast = mon.assessment();
            assert_eq!(naive.0.to_bits(), fast.0.to_bits());
            assert_eq!(naive.1, fast.1);
        }
    }

    #[test]
    fn unbounded_measure_squashes_into_unit_interval() {
        let mut cfg = SafeMlConfig::default();
        cfg.measure = DistanceMeasure::Wasserstein;
        let mut mon = SafeMlMonitor::new(reference(), cfg).unwrap();
        for _ in 0..50 {
            mon.push_sample(&[1e6, 1e6]).unwrap();
        }
        let d = mon.dissimilarity();
        assert!((0.0..=1.0).contains(&d));
        assert!(d > 0.99);
    }
}
