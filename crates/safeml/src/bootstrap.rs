//! Permutation p-values for distance statistics.
//!
//! SafeML pairs each distance with a significance estimate: under the null
//! "both windows come from the same distribution", relabelling the pooled
//! sample at random must produce distances at least as large as the
//! observed one with probability `p`. A small `p` means the shift is real.

use crate::distance::DistanceMeasure;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Result of a permutation test.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PermutationTest {
    /// The observed statistic.
    pub statistic: f64,
    /// Estimated p-value (with the +1 small-sample correction).
    pub p_value: f64,
    /// Number of permutations drawn.
    pub permutations: usize,
}

/// Runs a permutation test of `measure` between `a` and `b` with
/// `permutations` random relabellings from a deterministic `seed`.
///
/// The returned p-value uses the standard `(k + 1) / (n + 1)` correction so
/// it is never exactly zero.
///
/// # Panics
///
/// Panics if either sample is empty, contains non-finite values, or if
/// `permutations == 0`.
///
/// # Examples
///
/// ```
/// use sesame_safeml::bootstrap::permutation_test;
/// use sesame_safeml::distance::DistanceMeasure;
///
/// let a: Vec<f64> = (0..40).map(|i| i as f64 * 0.1).collect();
/// let b: Vec<f64> = (0..40).map(|i| i as f64 * 0.1 + 10.0).collect();
/// let t = permutation_test(DistanceMeasure::KolmogorovSmirnov, &a, &b, 200, 7);
/// assert!(t.p_value < 0.05, "a 10-sigma shift must be significant");
/// ```
pub fn permutation_test(
    measure: DistanceMeasure,
    a: &[f64],
    b: &[f64],
    permutations: usize,
    seed: u64,
) -> PermutationTest {
    assert!(permutations > 0, "need at least one permutation");
    let statistic = measure.compute(a, b);
    let mut pooled: Vec<f64> = a.iter().chain(b.iter()).copied().collect();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut at_least = 0usize;
    for _ in 0..permutations {
        pooled.shuffle(&mut rng);
        let (pa, pb) = pooled.split_at(a.len());
        if measure.compute(pa, pb) >= statistic - 1e-15 {
            at_least += 1;
        }
    }
    PermutationTest {
        statistic,
        p_value: (at_least + 1) as f64 / (permutations + 1) as f64,
        permutations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ramp(n: usize, offset: f64) -> Vec<f64> {
        (0..n).map(|i| i as f64 * 0.1 + offset).collect()
    }

    #[test]
    fn same_distribution_gives_large_p() {
        let a = ramp(30, 0.0);
        let b = ramp(30, 0.05); // interleaved, essentially same distribution
        let t = permutation_test(DistanceMeasure::KolmogorovSmirnov, &a, &b, 300, 1);
        assert!(t.p_value > 0.2, "p = {}", t.p_value);
    }

    #[test]
    fn shifted_distribution_gives_small_p() {
        let a = ramp(30, 0.0);
        let b = ramp(30, 50.0);
        let t = permutation_test(DistanceMeasure::Wasserstein, &a, &b, 300, 1);
        assert!(t.p_value < 0.02, "p = {}", t.p_value);
        assert!((t.statistic - 50.0).abs() < 1.0);
    }

    #[test]
    fn p_value_never_zero_or_above_one() {
        let a = ramp(10, 0.0);
        let b = ramp(10, 1000.0);
        let t = permutation_test(DistanceMeasure::KolmogorovSmirnov, &a, &b, 50, 3);
        assert!(t.p_value > 0.0 && t.p_value <= 1.0);
        assert_eq!(t.permutations, 50);
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let a = ramp(20, 0.0);
        let b = ramp(20, 0.7);
        let t1 = permutation_test(DistanceMeasure::Energy, &a, &b, 100, 9);
        let t2 = permutation_test(DistanceMeasure::Energy, &a, &b, 100, 9);
        assert_eq!(t1, t2);
    }

    #[test]
    #[should_panic(expected = "at least one permutation")]
    fn zero_permutations_panics() {
        let a = ramp(5, 0.0);
        let _ = permutation_test(DistanceMeasure::KolmogorovSmirnov, &a, &a, 0, 1);
    }
}
