//! Empirical cumulative distribution functions.

/// An empirical CDF built from a finite sample.
///
/// # Examples
///
/// ```
/// use sesame_safeml::ecdf::Ecdf;
///
/// let e = Ecdf::new(&[3.0, 1.0, 2.0]).expect("non-empty");
/// assert_eq!(e.eval(0.5), 0.0);
/// assert!((e.eval(1.5) - 1.0 / 3.0).abs() < 1e-12);
/// assert_eq!(e.eval(3.0), 1.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Ecdf {
    sorted: Vec<f64>,
}

/// Error returned when constructing an [`Ecdf`] from bad data.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EcdfError {
    /// The sample was empty.
    Empty,
    /// The sample contained NaN or infinite values.
    NonFinite,
}

impl std::fmt::Display for EcdfError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EcdfError::Empty => write!(f, "empty sample"),
            EcdfError::NonFinite => write!(f, "sample contains non-finite values"),
        }
    }
}

impl std::error::Error for EcdfError {}

impl Ecdf {
    /// Builds an ECDF from a sample (need not be sorted).
    ///
    /// # Errors
    ///
    /// Returns [`EcdfError::Empty`] for an empty sample and
    /// [`EcdfError::NonFinite`] if any value is NaN or infinite.
    pub fn new(sample: &[f64]) -> Result<Self, EcdfError> {
        if sample.is_empty() {
            return Err(EcdfError::Empty);
        }
        if sample.iter().any(|x| !x.is_finite()) {
            return Err(EcdfError::NonFinite);
        }
        let mut sorted = sample.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite values compare"));
        Ok(Ecdf { sorted })
    }

    /// F(x): the fraction of the sample `≤ x`.
    pub fn eval(&self, x: f64) -> f64 {
        let idx = self.sorted.partition_point(|v| *v <= x);
        idx as f64 / self.sorted.len() as f64
    }

    /// The `q`-quantile (`q ∈ [0, 1]`, clamped) by the inverse-ECDF
    /// (type-1) definition.
    pub fn quantile(&self, q: f64) -> f64 {
        let q = q.clamp(0.0, 1.0);
        let n = self.sorted.len();
        let idx = ((q * n as f64).ceil() as usize).clamp(1, n) - 1;
        self.sorted[idx]
    }

    /// Number of sample points.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// Whether the sample is empty (never true by construction).
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// The sorted sample values.
    pub fn values(&self) -> &[f64] {
        &self.sorted
    }

    /// Sample mean.
    pub fn mean(&self) -> f64 {
        self.sorted.iter().sum::<f64>() / self.sorted.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eval_is_a_step_function() {
        let e = Ecdf::new(&[1.0, 2.0, 2.0, 4.0]).unwrap();
        assert_eq!(e.eval(0.0), 0.0);
        assert_eq!(e.eval(1.0), 0.25);
        assert_eq!(e.eval(2.0), 0.75);
        assert_eq!(e.eval(3.9), 0.75);
        assert_eq!(e.eval(4.0), 1.0);
        assert_eq!(e.eval(1e9), 1.0);
    }

    #[test]
    fn quantiles_pick_order_statistics() {
        let e = Ecdf::new(&[10.0, 20.0, 30.0, 40.0]).unwrap();
        assert_eq!(e.quantile(0.0), 10.0);
        assert_eq!(e.quantile(0.25), 10.0);
        assert_eq!(e.quantile(0.5), 20.0);
        assert_eq!(e.quantile(1.0), 40.0);
        assert_eq!(e.quantile(2.0), 40.0, "clamped");
    }

    #[test]
    fn rejects_bad_input() {
        assert_eq!(Ecdf::new(&[]).unwrap_err(), EcdfError::Empty);
        assert_eq!(
            Ecdf::new(&[1.0, f64::NAN]).unwrap_err(),
            EcdfError::NonFinite
        );
        assert_eq!(
            Ecdf::new(&[f64::INFINITY]).unwrap_err(),
            EcdfError::NonFinite
        );
    }

    #[test]
    fn mean_and_len() {
        let e = Ecdf::new(&[1.0, 2.0, 3.0]).unwrap();
        assert_eq!(e.len(), 3);
        assert!(!e.is_empty());
        assert!((e.mean() - 2.0).abs() < 1e-12);
        assert_eq!(e.values(), &[1.0, 2.0, 3.0]);
    }
}
