//! Property tests of the statistical distance measures and the ECDF.

use proptest::prelude::*;
use sesame_safeml::distance::{kolmogorov_smirnov, wasserstein_1, DistanceMeasure};
use sesame_safeml::ecdf::Ecdf;

fn sample() -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(-50.0..50.0f64, 3..40)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// KS is bounded by 1 and invariant under any strictly increasing
    /// affine transform.
    #[test]
    fn ks_bounds_and_affine_invariance(a in sample(), b in sample(), scale in 0.1..10.0f64, shift in -5.0..5.0f64) {
        let d = kolmogorov_smirnov(&a, &b);
        prop_assert!((0.0..=1.0).contains(&d));
        let ta: Vec<f64> = a.iter().map(|x| x * scale + shift).collect();
        let tb: Vec<f64> = b.iter().map(|x| x * scale + shift).collect();
        prop_assert!((kolmogorov_smirnov(&ta, &tb) - d).abs() < 1e-9);
    }

    /// Wasserstein-1 scales linearly with the data and obeys the triangle
    /// inequality on equal-size samples.
    #[test]
    fn wasserstein_scaling_and_triangle(a in sample(), shift1 in -10.0..10.0f64, shift2 in -10.0..10.0f64) {
        let b: Vec<f64> = a.iter().map(|x| x + shift1).collect();
        let c: Vec<f64> = a.iter().map(|x| x + shift2).collect();
        let ab = wasserstein_1(&a, &b);
        prop_assert!((ab - shift1.abs()).abs() < 1e-6, "pure shift: {ab} vs {}", shift1.abs());
        let bc = wasserstein_1(&b, &c);
        let ac = wasserstein_1(&a, &c);
        prop_assert!(ac <= ab + bc + 1e-9, "triangle: {ac} > {ab} + {bc}");
    }

    /// ECDF is a monotone step function from 0 to 1.
    #[test]
    fn ecdf_monotone(a in sample(), probes in proptest::collection::vec(-60.0..60.0f64, 2..20)) {
        let e = Ecdf::new(&a).unwrap();
        let mut sorted = probes.clone();
        sorted.sort_by(|x, y| x.partial_cmp(y).unwrap());
        let mut last = 0.0;
        for p in sorted {
            let v = e.eval(p);
            prop_assert!((0.0..=1.0).contains(&v));
            prop_assert!(v >= last - 1e-12);
            last = v;
        }
        prop_assert_eq!(e.eval(f64::MAX), 1.0);
        prop_assert_eq!(e.eval(-f64::MAX), 0.0);
    }

    /// Every measure grows (weakly) with a pure location shift's size.
    #[test]
    fn measures_weakly_monotone_in_shift(a in sample(), s in 0.1..5.0f64) {
        for m in DistanceMeasure::ALL {
            let near: Vec<f64> = a.iter().map(|x| x + s).collect();
            let far: Vec<f64> = a.iter().map(|x| x + s * 10.0).collect();
            let dn = m.compute(&a, &near);
            let df = m.compute(&a, &far);
            prop_assert!(df >= dn - 1e-9, "{m}: far {df} < near {dn}");
        }
    }

    /// Pooling a sample with itself leaves the KS distance to any other
    /// sample unchanged (ECDF invariance under duplication).
    #[test]
    fn ks_duplication_invariance(a in sample(), b in sample()) {
        let doubled: Vec<f64> = a.iter().chain(a.iter()).copied().collect();
        let d1 = kolmogorov_smirnov(&a, &b);
        let d2 = kolmogorov_smirnov(&doubled, &b);
        prop_assert!((d1 - d2).abs() < 1e-9);
    }
}
